# B-IoT development targets. Pure stdlib: no tool dependencies beyond Go.

GO ?= go

.PHONY: all build vet test test-short test-chaos test-scenarios test-scenarios-long test-flake test-shard race cover bench bench-gossip bench-store bench-scenarios bench-latency bench-mem bench-shard bench-all figures examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The default test run is race-enabled: the submission pipeline is
# concurrent by design, so a non-race pass proves little. The bench
# smoke pins a tiny -benchtime so the tangle benchmark suite itself
# stays compiling and passing; the concurrent-reader benchmark runs
# under the race detector to exercise SelectTips readers against a
# live attacher.
test: vet
	$(GO) test -race ./...
	$(GO) test -run XXX -bench BenchmarkTangle -benchtime 50x ./internal/tangle/
	$(GO) test -race -run XXX -bench BenchmarkTangleConcurrentSelectDuringAttach -benchtime 100x ./internal/tangle/
	$(GO) test -run XXX -bench BenchmarkGossip -benchtime 20x ./internal/gossip/
	$(GO) run ./cmd/biot-bench -fig chaos -quick
	$(GO) run ./cmd/biot-bench -fig store -quick
	$(GO) run ./cmd/biot-bench -fig latency -quick
	$(GO) run ./cmd/biot-bench -fig mem -quick
	$(GO) run ./cmd/biot-bench -fig shard -quick
	$(GO) test -run 'TestWirePathAllocationBudget|TestSteadyStateZeroAlloc' -count=1 ./internal/txn/
	$(GO) test -race -run 'TestResidentVerticesStayBounded' -count=1 ./internal/tangle/

# The fault-injection suite in one sweep: crash-point torture over the
# journal, the supervised multi-node chaos soak (kills, disk faults,
# network faults, partitions — zero admitted-transaction loss), and the
# supervisor lifecycle tests. A failing soak prints its seed; replay it
# with BIOT_CHAOS_SEED=<seed> make test-chaos.
test-chaos:
	$(GO) test -race -run 'TestCrashPointTorture|TestCrashDuringRecoveryTruncation' -count=1 ./internal/store/
	$(GO) test -race -run 'TestChaosSoak|TestSupervisor' -count=1 -v ./internal/node/
	$(GO) test -race -count=1 ./internal/chaos/
	$(GO) test -fuzz='^FuzzReplay$$' -fuzztime=15s ./internal/store/

# The scenario matrix at the 20-node CI tier (it also runs inside
# `make test` via the package test sweep). A failing cell prints its
# seed; replay it with BIOT_SCENARIO_SEED=<seed> make test-scenarios.
test-scenarios:
	$(GO) test -race -run 'TestScenarioMatrix$$|TestSpecByName' -count=1 -v ./internal/scenario/

# The revocation-storm flake reproducer: the cell that used to fail
# ~8%/run under the live-registry relay gate, at 60 distinct seeds
# (>99% reproduction probability at the old rate). Every run must
# finish with zero relay-path authorization rejects. A 5-seed smoke
# version rides inside the ordinary `make test` sweep.
test-flake:
	BIOT_FLAKE_RUNS=60 $(GO) test -race -run TestRevocationStormFlakeSweep -count=1 -timeout 20m -v ./internal/scenario/

# The scenario matrix at the 100+-node tier (111 nodes per cell).
test-scenarios-long:
	BIOT_SCENARIO_LONG=1 $(GO) test -race -run TestScenarioMatrixLong -count=1 -timeout 30m -v ./internal/scenario/

# The sharded two-tier topology suite, race-enabled: the node-level
# two-shard convergence/leakage property, the multi-region roam
# scenario (device carries credit across regions, border gateway
# crash-reboots mid-run, zero durable loss), and the keyfile identity
# round trip. A failing scenario prints its seed; replay with
# BIOT_SCENARIO_SEED=<seed> make test-shard.
test-shard:
	$(GO) test -race -run 'TestShardedRegionsConvergeWithoutLeakage' -count=1 -v ./internal/node/
	$(GO) test -race -run 'TestMultiRegionRoam' -count=1 -v ./internal/scenario/
	$(GO) test -race -run 'TestKeyfileRoundTripsAcrossSupervisorRestart' -count=1 ./cmd/biot-node/

# Fast feedback loop: no race detector, skip the long soak/stress tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# One testing.B bench per paper figure + ablations (laptop-scale).
# Also snapshots the submission-pipeline scaling curve to
# BENCH_pipeline.json, the ledger depth-scaling curve to
# BENCH_tangle.json and the transport fan-out curve to BENCH_gossip.json
# (the latter two are committed: they carry the anchored-vs-genesis walk
# and pooled-vs-one-shot transport evidence).
bench:
	$(GO) test -run XXX -bench . -benchmem .
	$(GO) test -run XXX -bench BenchmarkTangle -benchmem ./internal/tangle/
	$(GO) test -run XXX -bench BenchmarkGossip -benchmem ./internal/gossip/
	$(GO) run ./cmd/biot-bench -fig pipeline -quick -json BENCH_pipeline.json
	$(GO) run ./cmd/biot-bench -fig tangle -json BENCH_tangle.json
	$(GO) run ./cmd/biot-bench -fig gossip -json BENCH_gossip.json
	$(GO) run ./cmd/biot-bench -fig chaos -json BENCH_chaos.json
	$(GO) run ./cmd/biot-bench -fig store -json BENCH_store.json

# The transport fan-out figure alone (regenerates BENCH_gossip.json).
bench-gossip:
	$(GO) test -run XXX -bench BenchmarkGossip -benchmem ./internal/gossip/
	$(GO) run ./cmd/biot-bench -fig gossip -json BENCH_gossip.json

# The durable-write-path figure alone (regenerates BENCH_store.json):
# per-record fsync vs group commit, plus credit-query rescan vs
# incremental.
bench-store:
	$(GO) run ./cmd/biot-bench -fig store -json BENCH_store.json

# The 100+-node scenario-matrix survival table alone (regenerates
# BENCH_scenarios.json).
bench-scenarios:
	$(GO) run ./cmd/biot-bench -fig scenarios -json BENCH_scenarios.json

# The open-loop admission-latency sweep alone (regenerates
# BENCH_latency.json): offered-rate sweep with batched-verification vs
# per-transaction baseline, coordinated-omission-safe percentiles.
bench-latency:
	$(GO) run ./cmd/biot-bench -fig latency -json BENCH_latency.json

# The bounded-memory figure alone (regenerates BENCH_mem.json):
# steady-state resident/heap vs ledger lifetime with and without epoch
# snapshots, plus snapshot-bootstrap vs full-replay join time.
bench-mem:
	$(GO) run ./cmd/biot-bench -fig mem -json BENCH_mem.json

# The sharded-topology scaling figure alone (regenerates
# BENCH_shard.json): aggregate admitted tx/s at 1..4 region gateways
# with a fixed per-disk fsync latency as the bottleneck; the run
# fails unless 4 gateways deliver ≥0.8× the ideal 4×-baseline line
# with convergence, leakage, and credit-parity gates all green.
bench-shard:
	$(GO) run ./cmd/biot-bench -fig shard -json BENCH_shard.json

# Regenerate every committed BENCH_*.json snapshot in one sweep.
bench-all:
	$(GO) run ./cmd/biot-bench -fig tangle -json BENCH_tangle.json
	$(GO) run ./cmd/biot-bench -fig gossip -json BENCH_gossip.json
	$(GO) run ./cmd/biot-bench -fig chaos -json BENCH_chaos.json
	$(GO) run ./cmd/biot-bench -fig store -json BENCH_store.json
	$(GO) run ./cmd/biot-bench -fig scenarios -json BENCH_scenarios.json
	$(GO) run ./cmd/biot-bench -fig latency -json BENCH_latency.json
	$(GO) run ./cmd/biot-bench -fig mem -json BENCH_mem.json
	$(GO) run ./cmd/biot-bench -fig shard -json BENCH_shard.json

# Regenerate every paper figure with full (Pi-emulated) parameters.
figures:
	$(GO) run ./cmd/biot-bench -fig all

# Run every example scenario end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smartfactory
	$(GO) run ./examples/datasharing
	$(GO) run ./examples/attackdefense
	$(GO) run ./examples/resilience

# Short fuzz pass over the wire-format decoders.
fuzz:
	$(GO) test -fuzz='^FuzzDecode$$' -fuzztime=30s ./internal/txn/
	$(GO) test -fuzz='^FuzzDecodeTransfer$$' -fuzztime=15s ./internal/txn/
	$(GO) test -fuzz='^FuzzDecrypt$$' -fuzztime=30s ./internal/dataauth/
	$(GO) test -fuzz='^FuzzOpenEnvelope$$' -fuzztime=15s ./internal/dataauth/
	$(GO) test -fuzz='^FuzzDecodeMessage$$' -fuzztime=30s ./internal/gossip/
	$(GO) test -fuzz='^FuzzDecodeFrame$$' -fuzztime=15s ./internal/gossip/

clean:
	rm -f cover.out test_output.txt bench_output.txt BENCH_pipeline.json
