# B-IoT development targets. Pure stdlib: no tool dependencies beyond Go.

GO ?= go

.PHONY: all build vet test race cover bench figures examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# One testing.B bench per paper figure + ablations (laptop-scale).
bench:
	$(GO) test -run XXX -bench . -benchmem .

# Regenerate every paper figure with full (Pi-emulated) parameters.
figures:
	$(GO) run ./cmd/biot-bench -fig all

# Run every example scenario end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smartfactory
	$(GO) run ./examples/datasharing
	$(GO) run ./examples/attackdefense
	$(GO) run ./examples/resilience

# Short fuzz pass over the wire-format decoders.
fuzz:
	$(GO) test -fuzz='^FuzzDecode$$' -fuzztime=30s ./internal/txn/
	$(GO) test -fuzz='^FuzzDecodeTransfer$$' -fuzztime=15s ./internal/txn/
	$(GO) test -fuzz='^FuzzDecrypt$$' -fuzztime=30s ./internal/dataauth/
	$(GO) test -fuzz='^FuzzOpenEnvelope$$' -fuzztime=15s ./internal/dataauth/

clean:
	rm -f cover.out test_output.txt bench_output.txt
