// Package biot is the public API of the B-IoT reference implementation:
// a blockchain-driven Internet-of-Things system with a credit-based
// proof-of-work consensus mechanism, reproducing Huang et al., "B-IoT:
// Blockchain Driven Internet of Things with Credit-Based Consensus
// Mechanism" (ICDCS 2019).
//
// The package wires together the internal substrates — the
// DAG-structured tangle ledger, the credit engine, the authorization
// registry, the Fig-4 key-distribution protocol, AES data authority
// management, gossip, and the RESTful RPC surface — behind three
// concepts a deployment needs:
//
//   - System: a factory deployment — the manager full node plus any
//     number of gateways on a shared network;
//   - Gateway: a full node serving light nodes (optionally over HTTP);
//   - Device: a light node (IoT sensor) that validates tips, runs PoW
//     at its credit-determined difficulty, and posts (optionally
//     encrypted) readings.
//
// See examples/ for runnable scenarios and DESIGN.md for the paper→code
// map.
package biot

import (
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/dataauth"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/pow"
	"github.com/b-iot/biot/internal/quality"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// Re-exported core types, so downstream users interact with the system
// through this package alone.
type (
	// Address is a 32-byte account identifier (SHA-256 of the public
	// key).
	Address = identity.Address
	// KeyPair is a blockchain account: Ed25519 signing keys plus the
	// derived X25519 encryption key.
	KeyPair = identity.KeyPair
	// Hash identifies a transaction.
	Hash = hashutil.Hash
	// Transaction is a tangle vertex.
	Transaction = txn.Transaction
	// TxInfo is the ledger view of an attached transaction.
	TxInfo = tangle.Info
	// CreditParams are the credit mechanism constants (Eqns 2-5).
	CreditParams = core.Params
	// Credit is an evaluated (CrP, CrN, Cr) triple.
	Credit = core.Credit
	// DifficultyPolicy maps credit to PoW difficulty (Cr ∝ 1/D).
	DifficultyPolicy = core.DifficultyPolicy
	// PowWorker searches proof-of-work nonces; its CostFactor emulates
	// constrained hardware.
	PowWorker = pow.Worker
	// DataKey is a distributed AES-256 symmetric key.
	DataKey = dataauth.Key
	// QualityValidator checks plaintext sensor readings for
	// plausibility (the §VIII quality-control extension).
	QualityValidator = quality.Validator
	// QualityBand is a plausible value range for one sensor class.
	QualityBand = quality.Band
)

// NewQualityValidator builds a validator over the given per-sensor
// bands; nil selects the built-in smart-factory bands.
func NewQualityValidator(bands map[string]QualityBand) *QualityValidator {
	return quality.NewValidator(bands)
}

// NewKeyPair generates a fresh account.
func NewKeyPair() (*KeyPair, error) { return identity.Generate() }

// DefaultCreditParams returns the paper's §VI-A parameters:
// λ1=1, λ2=0.5, ΔT=30 s, α_l=0.5, α_d=1, D0=11, range [1,14].
func DefaultCreditParams() CreditParams { return core.DefaultParams() }

// AdditivePolicy returns the default bits-domain difficulty policy.
func AdditivePolicy(p CreditParams) DifficultyPolicy {
	return core.DefaultAdditivePolicy(p)
}

// InversePolicy returns the paper-literal D = κ/Cr policy.
func InversePolicy(p CreditParams) DifficultyPolicy {
	return core.DefaultInversePolicy(p)
}

// StaticPolicy returns a fixed-difficulty policy (the "original PoW"
// control of Fig 9).
func StaticPolicy(difficulty int) DifficultyPolicy {
	return core.StaticPolicy{Difficulty: difficulty}
}

// Transaction status values.
const (
	StatusPending   = tangle.StatusPending
	StatusConfirmed = tangle.StatusConfirmed
	StatusRejected  = tangle.StatusRejected
)

// OpenReading parses a data-transaction payload and, when the reading
// is sensitive, decrypts it with key. Passing a nil key for a sensitive
// reading fails — the data-confidentiality property of §IV-C.
func OpenReading(payload []byte, key *DataKey) ([]byte, error) {
	return dataauth.Open(payload, key)
}

// IsSensitive reports whether a data-transaction payload is encrypted.
func IsSensitive(payload []byte) (bool, error) {
	env, err := dataauth.Parse(payload)
	if err != nil {
		return false, err
	}
	return env.Sensitive, nil
}
