// Benchmarks regenerating the paper's evaluation (§VI): one testing.B
// bench per table/figure, plus the ablations DESIGN.md §4 calls out and
// micro-benchmarks of the hot paths. cmd/biot-bench runs the same
// harnesses with the full (Pi-emulated) parameters; these benches use
// laptop-scale parameters so `go test -bench=.` completes quickly.
package biot_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	biot "github.com/b-iot/biot"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/dataauth"
	"github.com/b-iot/biot/internal/experiments"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/keydist"
	"github.com/b-iot/biot/internal/pow"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// BenchmarkFig7PoWDifficulty measures PoW nonce-search time at
// increasing difficulty — the paper's Fig 7 (exponential curve).
func BenchmarkFig7PoWDifficulty(b *testing.B) {
	worker := &pow.Worker{}
	for _, d := range []int{4, 8, 12, 16} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				trunk := hashutil.Sum([]byte(fmt.Sprintf("bench-trunk-%d-%d", d, i)))
				branch := hashutil.Sum([]byte(fmt.Sprintf("bench-branch-%d-%d", d, i)))
				if _, err := worker.Search(context.Background(), trunk, branch, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8CreditTimeline runs the full Fig-8 credit-value
// simulation (100 virtual seconds, one attack) per iteration.
func BenchmarkFig8CreditTimeline(b *testing.B) {
	cfg := experiments.DefaultFig8Config()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.RecoveryGaps) != 1 {
			b.Fatalf("recovery gaps = %d, want 1", len(res.RecoveryGaps))
		}
	}
}

// BenchmarkFig9ControlExperiments runs the four Fig-9 control
// experiments (4 × 90 virtual seconds) per iteration.
func BenchmarkFig9ControlExperiments(b *testing.B) {
	cfg := experiments.DefaultFig9Config()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10AESMessageLength measures AES sealing across the
// paper's message-length sweep — Fig 10 (linear in length).
func BenchmarkFig10AESMessageLength(b *testing.B) {
	key, err := dataauth.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	for _, exp := range []int{6, 10, 14, 18, 20} {
		size := 1 << exp
		msg := make([]byte, size)
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := dataauth.Encrypt(key, msg, dataauth.SchemeGCM); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSecurityMatrix runs the full measured §VI-C security matrix
// per iteration (five live attack scenarios).
func BenchmarkSecurityMatrix(b *testing.B) {
	cfg := experiments.DefaultSecurityConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSecurity(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if !row.Pass {
				b.Fatalf("scenario %q failed: %s", row.Threat, row.Detail)
			}
		}
	}
}

// BenchmarkThroughputDAGvsChain runs the §II DAG-vs-chain comparison
// (reduced workload) per iteration.
func BenchmarkThroughputDAGvsChain(b *testing.B) {
	cfg := experiments.QuickThroughputConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunThroughput(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatalf("rows = %d, want 2", len(res.Rows))
		}
	}
}

// BenchmarkKeyDistProtocol measures one honest Fig-4 exchange (three
// messages, two ECIES ops, four signatures) per iteration.
func BenchmarkKeyDistProtocol(b *testing.B) {
	manager, err := identity.Generate()
	if err != nil {
		b.Fatal(err)
	}
	device, err := identity.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := keydist.NewManagerSession(manager, device.Public())
		if err != nil {
			b.Fatal(err)
		}
		ds := keydist.NewDeviceSession(device, manager.Public())
		m1, err := ms.M1(device.BoxPublic())
		if err != nil {
			b.Fatal(err)
		}
		m2, err := ds.HandleM1(m1)
		if err != nil {
			b.Fatal(err)
		}
		m3, err := ms.HandleM2(m2)
		if err != nil {
			b.Fatal(err)
		}
		if err := ds.HandleM3(m3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDifficultyPolicy compares the three Cr→D mappings on
// the Fig-9 harness — the DESIGN.md §4 policy ablation.
func BenchmarkAblationDifficultyPolicy(b *testing.B) {
	base := experiments.DefaultFig9Config()
	policies := map[string]core.DifficultyPolicy{
		"additive": core.AdditivePolicy{Params: base.Params, Beta: 10, Gamma: 3},
		"inverse":  core.DefaultInversePolicy(base.Params),
		"static":   core.StaticPolicy{Difficulty: base.Params.InitialDifficulty},
	}
	for name, policy := range policies {
		b.Run(name, func(b *testing.B) {
			cfg := base
			cfg.Policy = policy
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig9(cfg)
				if err != nil {
					b.Fatal(err)
				}
				// Report the honest-node speedup as the figure of merit.
				orig := res.Rows[0].AvgPowTime
				norm := res.Rows[1].AvgPowTime
				if norm > 0 {
					b.ReportMetric(orig.Seconds()/norm.Seconds(), "speedup")
				}
			}
		})
	}
}

// BenchmarkAblationTipSelection compares uniform random tip selection
// against the MCMC weighted walk on a growing tangle.
func BenchmarkAblationTipSelection(b *testing.B) {
	for _, strategy := range []tangle.TipStrategy{tangle.StrategyUniform, tangle.StrategyWeightedWalk} {
		b.Run(strategy.String(), func(b *testing.B) {
			key, err := identity.Generate()
			if err != nil {
				b.Fatal(err)
			}
			tg, err := tangle.New(tangle.DefaultConfig(), key.Public(), nil)
			if err != nil {
				b.Fatal(err)
			}
			seedTangle(b, tg, key, 300)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tg.SelectTips(strategy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEncryptionScheme compares the two AES constructions
// at the paper's reference 256 KiB message size.
func BenchmarkAblationEncryptionScheme(b *testing.B) {
	key, err := dataauth.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 256<<10)
	for _, scheme := range []dataauth.Scheme{dataauth.SchemeGCM, dataauth.SchemeCTRHMAC} {
		b.Run(scheme.String(), func(b *testing.B) {
			b.SetBytes(int64(len(msg)))
			for i := 0; i < b.N; i++ {
				if _, err := dataauth.Encrypt(key, msg, scheme); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTangleAttach measures raw ledger attachment (no PoW, no
// signatures) — the full node's structural hot path.
func BenchmarkTangleAttach(b *testing.B) {
	key, err := identity.Generate()
	if err != nil {
		b.Fatal(err)
	}
	tg, err := tangle.New(tangle.DefaultConfig(), key.Public(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trunk, branch, err := tg.SelectTips(tangle.StrategyUniform)
		if err != nil {
			b.Fatal(err)
		}
		t := &txn.Transaction{
			Trunk:   trunk,
			Branch:  branch,
			Kind:    txn.KindData,
			Payload: []byte("bench"),
			Nonce:   uint64(i),
		}
		t.Sign(key)
		if _, err := tg.Attach(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTxEncodeDecode measures the canonical codec round-trip.
func BenchmarkTxEncodeDecode(b *testing.B) {
	key, err := identity.Generate()
	if err != nil {
		b.Fatal(err)
	}
	t := &txn.Transaction{
		Trunk:   hashutil.Sum([]byte("trunk")),
		Branch:  hashutil.Sum([]byte("branch")),
		Kind:    txn.KindData,
		Payload: make([]byte, 256),
	}
	t.Sign(key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := t.Encode()
		if _, err := txn.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndPostReading measures the complete light-node
// pipeline: tip fetch + validation + sign + PoW + admission.
func BenchmarkEndToEndPostReading(b *testing.B) {
	params := biot.DefaultCreditParams()
	params.InitialDifficulty = 8
	params.MinDifficulty = 1
	sys, err := biot.NewSystem(biot.SystemConfig{Credit: params})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	dev, err := sys.NewDevice(biot.DeviceConfig{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	sys.AuthorizeDevice(dev.Key())
	if err := sys.PublishAuthorization(context.Background()); err != nil {
		b.Fatal(err)
	}
	payload := []byte("sensor=temperature;value=21.5")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.PostReading(context.Background(), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// seedTangle attaches n simple transactions.
func seedTangle(tb testing.TB, tg *tangle.Tangle, key *identity.KeyPair, n int) {
	tb.Helper()
	for i := 0; i < n; i++ {
		trunk, branch, err := tg.SelectTips(tangle.StrategyUniform)
		if err != nil {
			tb.Fatal(err)
		}
		t := &txn.Transaction{
			Trunk:   trunk,
			Branch:  branch,
			Kind:    txn.KindData,
			Payload: fmt.Appendf(nil, "seed-%d", i),
			Nonce:   uint64(i),
		}
		t.Sign(key)
		if _, err := tg.Attach(t); err != nil {
			tb.Fatal(err)
		}
	}
}

// BenchmarkScalabilitySweep measures admission throughput as the device
// population grows (the §I scalability goal, measured).
func BenchmarkScalabilitySweep(b *testing.B) {
	cfg := experiments.ScalabilityConfig{
		DeviceCounts: []int{1, 4, 8},
		TxPerDevice:  5,
		Difficulty:   10,
		PayloadBytes: 64,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScalability(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].TPS, "tps@8dev")
	}
}

// BenchmarkTangleSnapshot measures local-snapshot compaction over a
// 2000-vertex tangle.
func BenchmarkTangleSnapshot(b *testing.B) {
	key, err := identity.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
		cfg := tangle.DefaultConfig()
		cfg.ConfirmationWeight = 3
		tg, err := tangle.New(cfg, key.Public(), vc)
		if err != nil {
			b.Fatal(err)
		}
		last := tg.Genesis()[0]
		for j := 0; j < 2000; j++ {
			vc.Advance(time.Second)
			tx := &txn.Transaction{
				Trunk:   last,
				Branch:  last,
				Kind:    txn.KindData,
				Payload: fmt.Appendf(nil, "s-%d", j),
				Nonce:   uint64(j),
			}
			tx.Sign(key)
			info, err := tg.Attach(tx)
			if err != nil {
				b.Fatal(err)
			}
			last = info.ID
		}
		b.StartTimer()
		if dropped := tg.Snapshot(vc.Now(), 5*time.Minute); dropped == 0 {
			b.Fatal("snapshot dropped nothing")
		}
	}
}

// BenchmarkLazyResistAblation runs the §III lazy-tip inflation ablation
// (uniform vs weighted-walk tip selection) per iteration.
func BenchmarkLazyResistAblation(b *testing.B) {
	cfg := experiments.LazyResistConfig{HonestTxs: 100, LazyTips: 30, Selections: 100}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLazyResist(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].AttackerFrac, "uniform_hit")
		b.ReportMetric(res.Rows[1].AttackerFrac, "walk_hit")
	}
}

// BenchmarkAblationLambda2 runs the punishment-strictness sweep — the
// paper's "set λ2 larger" tuning claim, measured.
func BenchmarkAblationLambda2(b *testing.B) {
	cfg := experiments.DefaultLambdaSweepConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLambdaSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].PenaltyRatio, "penalty@2.0")
	}
}

// BenchmarkSubmitPipeline measures the staged submission pipeline's
// scaling with concurrent submitters (lock-free admission → short attach
// critical section → async batched fan-out). The speedup metric is TPS
// relative to the single-submitter sub-benchmark; `make bench` writes the
// same curve to BENCH_pipeline.json via cmd/biot-bench.
func BenchmarkSubmitPipeline(b *testing.B) {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	base := experiments.QuickPipelineConfig()
	var baseline float64
	for _, n := range counts {
		b.Run(fmt.Sprintf("submitters=%d", n), func(b *testing.B) {
			cfg := base
			cfg.SubmitterCounts = []int{n}
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunPipeline(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				b.ReportMetric(row.TPS, "tps")
				if n == 1 {
					baseline = row.TPS
				}
				if baseline > 0 {
					b.ReportMetric(row.TPS/baseline, "speedup")
				}
			}
		})
	}
}
