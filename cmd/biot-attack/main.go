// Command biot-attack drives the §III threat-model attacks against a
// live gateway and reports how the deployment reacts — a red-team tool
// for verifying a B-IoT installation's defenses.
//
//	biot-attack -gateway http://127.0.0.1:14265 -mode sybil -n 20
//	biot-attack -gateway http://127.0.0.1:14265 -mode flood -n 50 \
//	    -key <hex-seed-of-authorized-account>   # flood needs authorization
//
// Sybil mode needs no credentials (that is the point). Flood,
// double-spend and lazy modes act as a compromised authorized device,
// so they require the device's key material; for demo deployments
// generate the account with -mode keygen and authorize it first.
package main

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/b-iot/biot/internal/attack"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "biot-attack:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gatewayURL = flag.String("gateway", "http://127.0.0.1:14265", "gateway RPC base URL")
		mode       = flag.String("mode", "sybil", "attack: sybil, flood, double-spend, lazy, keygen")
		n          = flag.Int("n", 20, "attack volume (identities or transactions)")
		keySeed    = flag.String("key", "", "hex 32-byte seed of the compromised authorized account")
	)
	flag.Parse()
	ctx := context.Background()

	if *mode == "keygen" {
		seed := make([]byte, ed25519.SeedSize)
		if _, err := randRead(seed); err != nil {
			return err
		}
		key, err := keyFromSeed(seed)
		if err != nil {
			return err
		}
		fmt.Printf("seed:       %s\n", hex.EncodeToString(seed))
		fmt.Printf("public key: %s\n", hex.EncodeToString(key.Public()))
		fmt.Printf("address:    %s\n", key.Address().Hex())
		fmt.Println("authorize the public key at the manager, then pass -key <seed>")
		return nil
	}

	client := rpc.NewClient(*gatewayURL)
	if *mode == "sybil" {
		res, err := attack.SybilFlood(ctx, client, nil, nil, *n)
		if err != nil {
			return err
		}
		fmt.Printf("sybil: %d identities, %d rejected, %d accepted\n",
			res.Identities, res.Rejected, res.Accepted)
		if res.Accepted > 0 {
			fmt.Println("VULNERABLE: unauthorized identities were accepted")
			os.Exit(2)
		}
		fmt.Println("defended: authorization list held")
		return nil
	}

	if *keySeed == "" {
		return errors.New("this mode requires -key (see -mode keygen)")
	}
	seed, err := hex.DecodeString(*keySeed)
	if err != nil || len(seed) != ed25519.SeedSize {
		return fmt.Errorf("bad -key: want %d hex bytes", ed25519.SeedSize)
	}
	key, err := keyFromSeed(seed)
	if err != nil {
		return err
	}
	atk, err := attack.New(attack.Config{Key: key, Gateway: client})
	if err != nil {
		return err
	}

	switch *mode {
	case "flood":
		res, err := atk.Flood(ctx, *n)
		if err != nil {
			return err
		}
		fmt.Printf("flood: %d sent, %d accepted, %d rate-limited, %d other errors\n",
			res.Sent, res.Accepted, res.RateLimited, res.OtherErrors)
	case "double-spend":
		v1, err := identity.Generate()
		if err != nil {
			return err
		}
		v2, err := identity.Generate()
		if err != nil {
			return err
		}
		first, second, err := atk.DoubleSpend(ctx, v1.Address(), v2.Address(), 1, 0)
		if err != nil {
			return fmt.Errorf("double spend: %w", err)
		}
		fmt.Printf("double-spend submitted: %s and %s\n", first.ID.Short(), second.ID.Short())
		cr, err := client.Credit(ctx, key.Address())
		if err == nil {
			fmt.Printf("attacker credit now: CrP=%.3f CrN=%.3f Cr=%.3f\n", cr.CrP, cr.CrN, cr.Cr)
		}
		fmt.Printf("attacker difficulty now: %d\n", client.DifficultyFor(key.Address()))
		printEvents(ctx, client, key.Address())
	case "lazy":
		trunk, branch, err := client.TipsForApproval()
		if err != nil {
			return err
		}
		atk.PinLazyParents(trunk, branch)
		accepted, punished := 0, 0
		for i := 0; i < *n; i++ {
			if _, err := atk.LazySubmit(ctx, fmt.Appendf(nil, "lazy %d", i)); err != nil {
				punished++
			} else {
				accepted++
			}
		}
		fmt.Printf("lazy: %d accepted, %d failed/punished, difficulty now %d\n",
			accepted, punished, client.DifficultyFor(key.Address()))
		printEvents(ctx, client, key.Address())
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

// printEvents lists the node's recorded punishments for addr.
func printEvents(ctx context.Context, client *rpc.Client, addr identity.Address) {
	evs, err := client.Events(ctx, addr)
	if err != nil {
		return
	}
	for _, ev := range evs.Events {
		fmt.Printf("  recorded: %s at %s (%s)\n", ev.Behaviour, ev.At, ev.Detail)
	}
}

func keyFromSeed(seed []byte) (*identity.KeyPair, error) {
	return identity.GenerateFrom(deterministicReader(seed))
}

// deterministicReader feeds ed25519.GenerateKey exactly the seed bytes.
type seedReader struct {
	seed []byte
	off  int
}

func deterministicReader(seed []byte) *seedReader {
	return &seedReader{seed: seed}
}

func (r *seedReader) Read(p []byte) (int, error) {
	n := copy(p, r.seed[r.off:])
	r.off += n
	if n == 0 {
		return 0, errors.New("seed exhausted")
	}
	return n, nil
}

func randRead(p []byte) (int, error) {
	return rand.Read(p)
}
