package main

import (
	"bytes"
	"crypto/ed25519"
	"testing"
)

func TestKeyFromSeedDeterministic(t *testing.T) {
	seed := bytes.Repeat([]byte{0x11}, ed25519.SeedSize)
	a, err := keyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := keyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Address() != b.Address() {
		t.Error("same seed produced different accounts")
	}
	other, err := keyFromSeed(bytes.Repeat([]byte{0x22}, ed25519.SeedSize))
	if err != nil {
		t.Fatal(err)
	}
	if other.Address() == a.Address() {
		t.Error("different seeds collided")
	}
}

func TestSeedReaderExhaustion(t *testing.T) {
	r := deterministicReader([]byte{1, 2, 3})
	buf := make([]byte, 2)
	if n, err := r.Read(buf); n != 2 || err != nil {
		t.Fatalf("first read = (%d, %v)", n, err)
	}
	if n, err := r.Read(buf); n != 1 || err != nil {
		t.Fatalf("second read = (%d, %v)", n, err)
	}
	if _, err := r.Read(buf); err == nil {
		t.Error("exhausted reader kept reading")
	}
}

func TestRandRead(t *testing.T) {
	a := make([]byte, 16)
	b := make([]byte, 16)
	if _, err := randRead(a); err != nil {
		t.Fatal(err)
	}
	if _, err := randRead(b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("random reads identical")
	}
}
