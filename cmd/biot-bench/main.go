// Command biot-bench regenerates every table and figure of the paper's
// evaluation (§VI) plus the measured security matrix. See DESIGN.md §3
// for the experiment index and EXPERIMENTS.md for paper-vs-measured
// numbers.
//
// Usage:
//
//	biot-bench -fig all                # everything (default)
//	biot-bench -fig 7                  # PoW time vs difficulty
//	biot-bench -fig 7 -quick           # CI-scale variant
//	biot-bench -fig 8a | 8b            # credit timeline, 1 or 2 attacks
//	biot-bench -fig 9                  # four control experiments
//	biot-bench -fig 10                 # AES time vs message length
//	biot-bench -fig security           # §VI-C threat scenarios, measured
//	biot-bench -fig throughput         # DAG vs chain baseline
//	biot-bench -fig keydist            # Fig-4 protocol experiment
//	biot-bench -fig pipeline           # parallel-submission scaling
//	biot-bench -fig tangle             # ledger hot-path depth scaling
//	biot-bench -fig gossip             # transport fan-out: pooled vs one-shot
//	biot-bench -fig chaos              # crash recovery + replay throughput
//	biot-bench -fig store              # group-commit journal + credit query cost
//	biot-bench -fig scenarios          # 100+-node scenario-matrix survival table
//	biot-bench -fig latency            # open-loop admission-latency sweep
//	biot-bench -fig mem                # bounded-memory ledger + snapshot join time
//	biot-bench -fig shard              # sharded multi-gateway aggregate scaling
//	biot-bench -fig 9 -csv out.csv     # also write CSV
//	biot-bench -fig pipeline -json BENCH_pipeline.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/b-iot/biot/internal/experiments"
)

// renderable is the common surface of all experiment results.
type renderable interface {
	Render(w io.Writer) error
	CSV(w io.Writer) error
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 7, 8a, 8b, 9, 10, security, throughput, keydist, pipeline, tangle, gossip, chaos, store, scenarios, latency, mem, shard, all")
	quick := flag.Bool("quick", false, "CI-scale parameters (smaller sweeps, no device emulation)")
	csvPath := flag.String("csv", "", "also write the result as CSV to this file (single figure only)")
	jsonPath := flag.String("json", "", "also write the result as JSON to this file (single figure only; figures that support it)")
	flag.Parse()

	if err := run(*fig, *quick, *csvPath, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "biot-bench:", err)
		os.Exit(1)
	}
}

// jsonable is implemented by results with a machine-readable snapshot.
type jsonable interface {
	JSON(w io.Writer) error
}

func run(fig string, quick bool, csvPath, jsonPath string) error {
	ctx := context.Background()
	figs := []string{fig}
	if fig == "all" {
		figs = []string{"7", "8a", "8b", "9", "10", "security", "throughput", "keydist", "scale", "lazyresist", "lambda", "pipeline", "tangle", "gossip", "chaos", "store", "scenarios", "latency", "mem", "shard"}
		if csvPath != "" {
			return fmt.Errorf("-csv requires a single figure")
		}
		if jsonPath != "" {
			return fmt.Errorf("-json requires a single figure")
		}
	}
	for i, f := range figs {
		if i > 0 {
			fmt.Println()
		}
		res, err := runOne(ctx, f, quick)
		if err != nil {
			return fmt.Errorf("figure %s: %w", f, err)
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		if csvPath != "" {
			out, err := os.Create(csvPath)
			if err != nil {
				return fmt.Errorf("create csv: %w", err)
			}
			if err := res.CSV(out); err != nil {
				out.Close()
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "csv written to %s\n", csvPath)
		}
		if jsonPath != "" {
			j, ok := res.(jsonable)
			if !ok {
				return fmt.Errorf("figure %s has no JSON snapshot", f)
			}
			out, err := os.Create(jsonPath)
			if err != nil {
				return fmt.Errorf("create json: %w", err)
			}
			if err := j.JSON(out); err != nil {
				out.Close()
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "json written to %s\n", jsonPath)
		}
	}
	return nil
}

func runOne(ctx context.Context, fig string, quick bool) (renderable, error) {
	switch strings.ToLower(fig) {
	case "7":
		cfg := experiments.DefaultFig7Config()
		if quick {
			cfg = experiments.QuickFig7Config()
		}
		return experiments.RunFig7(ctx, cfg)
	case "8a":
		return experiments.RunFig8(experiments.DefaultFig8Config())
	case "8b":
		return experiments.RunFig8(experiments.Fig8bConfig())
	case "9":
		return experiments.RunFig9(experiments.DefaultFig9Config())
	case "10":
		cfg := experiments.DefaultFig10Config()
		if quick {
			cfg.MaxExp = 16
			cfg.Trials = 3
		}
		return experiments.RunFig10(ctx, cfg)
	case "security":
		return experiments.RunSecurity(ctx, experiments.DefaultSecurityConfig())
	case "throughput":
		cfg := experiments.DefaultThroughputConfig()
		if quick {
			cfg = experiments.QuickThroughputConfig()
		}
		return experiments.RunThroughput(ctx, cfg)
	case "keydist":
		return experiments.RunKeyDist(experiments.DefaultKeyDistConfig())
	case "lambda":
		return experiments.RunLambdaSweep(experiments.DefaultLambdaSweepConfig())
	case "lazyresist":
		return experiments.RunLazyResist(experiments.DefaultLazyResistConfig())
	case "pipeline":
		cfg := experiments.DefaultPipelineConfig()
		if quick {
			cfg = experiments.QuickPipelineConfig()
		}
		return experiments.RunPipeline(ctx, cfg)
	case "tangle":
		cfg := experiments.DefaultTangleBenchConfig()
		if quick {
			cfg = experiments.QuickTangleBenchConfig()
		}
		return experiments.RunTangleBench(cfg)
	case "gossip":
		cfg := experiments.DefaultGossipBenchConfig()
		if quick {
			cfg = experiments.QuickGossipBenchConfig()
		}
		return experiments.RunGossipBench(ctx, cfg)
	case "chaos":
		cfg := experiments.DefaultChaosBenchConfig()
		if quick {
			cfg = experiments.QuickChaosBenchConfig()
		}
		return experiments.RunChaosBench(ctx, cfg)
	case "store":
		cfg := experiments.DefaultStoreBenchConfig()
		if quick {
			cfg = experiments.QuickStoreBenchConfig()
		}
		return experiments.RunStoreBench(ctx, cfg)
	case "scenarios":
		cfg := experiments.DefaultScenarioMatrixConfig()
		if quick {
			cfg = experiments.QuickScenarioMatrixConfig()
		}
		return experiments.RunScenarioMatrix(ctx, cfg)
	case "latency":
		cfg := experiments.DefaultLatencyBenchConfig()
		if quick {
			cfg = experiments.QuickLatencyBenchConfig()
		}
		return experiments.RunLatencyBench(ctx, cfg)
	case "mem":
		cfg := experiments.DefaultMemBenchConfig()
		if quick {
			cfg = experiments.QuickMemBenchConfig()
		}
		return experiments.RunMemBench(ctx, cfg)
	case "shard":
		cfg := experiments.DefaultShardBenchConfig()
		if quick {
			cfg = experiments.QuickShardBenchConfig()
		}
		return experiments.RunShardBench(ctx, cfg)
	case "scale":
		cfg := experiments.DefaultScalabilityConfig()
		if quick {
			cfg.DeviceCounts = []int{1, 2, 4}
			cfg.TxPerDevice = 5
			cfg.Difficulty = 8
		}
		return experiments.RunScalability(ctx, cfg)
	default:
		return nil, fmt.Errorf("unknown figure %q", fig)
	}
}
