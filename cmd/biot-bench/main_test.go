package main

import (
	"context"
	"io"
	"testing"
)

// TestRunOneQuickFigures smoke-tests every figure the harness knows, in
// its quick configuration, rendering to io.Discard.
func TestRunOneQuickFigures(t *testing.T) {
	figs := []string{"8a", "8b", "9", "security", "keydist", "lazyresist", "lambda", "gossip", "latency"}
	for _, fig := range figs {
		fig := fig
		t.Run(fig, func(t *testing.T) {
			res, err := runOne(context.Background(), fig, true)
			if err != nil {
				t.Fatalf("runOne(%s): %v", fig, err)
			}
			if err := res.Render(io.Discard); err != nil {
				t.Fatalf("render: %v", err)
			}
			if err := res.CSV(io.Discard); err != nil {
				t.Fatalf("csv: %v", err)
			}
		})
	}
}

func TestRunOneHeavierFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("heavier figures skipped in -short mode")
	}
	for _, fig := range []string{"7", "10", "throughput", "scale"} {
		fig := fig
		t.Run(fig, func(t *testing.T) {
			res, err := runOne(context.Background(), fig, true)
			if err != nil {
				t.Fatalf("runOne(%s): %v", fig, err)
			}
			if err := res.Render(io.Discard); err != nil {
				t.Fatalf("render: %v", err)
			}
		})
	}
}

func TestRunOneUnknownFigure(t *testing.T) {
	if _, err := runOne(context.Background(), "42z", false); err == nil {
		t.Error("unknown figure accepted")
	}
}
