// Command biot-device runs a B-IoT light node: a simulated wireless
// sensor that connects to a gateway's RESTful API, and posts readings
// at a configurable cadence (the counterpart of the paper's PyOTA
// Raspberry Pi client, §V-B).
//
// The device prints its public key at startup; a manager must authorize
// it (biot-node -authorize <hex>, or the manager API) before the
// gateway accepts its transactions — the device retries until then.
//
//	biot-device -gateway http://127.0.0.1:14265 -sensor temperature \
//	    -period 2s -count 100
package main

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/b-iot/biot/internal/device"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/pow"
	"github.com/b-iot/biot/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "biot-device:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gatewayURL = flag.String("gateway", "http://127.0.0.1:14265", "gateway RPC base URL")
		sensorName = flag.String("sensor", "temperature", "sensor model: temperature, humidity, vibration, power, machine-config")
		period     = flag.Duration("period", 2*time.Second, "reading period")
		count      = flag.Int("count", 0, "number of readings to post (0 = until interrupted)")
		costFactor = flag.Int("cost-factor", 1, "PoW hash-cost multiplier emulating constrained hardware")
		seed       = flag.Int64("seed", 1, "sensor model seed")
		keySeed    = flag.String("key", "", "hex 32-byte account seed (empty = fresh random account)")
	)
	flag.Parse()

	kind, err := parseSensor(*sensorName)
	if err != nil {
		return err
	}
	key, err := deviceKey(*keySeed)
	if err != nil {
		return err
	}
	fmt.Printf("b-iot device (%s sensor)\n", kind)
	fmt.Printf("  address:    %s\n", key.Address().Hex())
	fmt.Printf("  public key: %s\n", hex.EncodeToString(key.Public()))
	fmt.Printf("  gateway:    %s\n", *gatewayURL)
	fmt.Println("authorize this device at the manager, then readings will flow")

	client := rpc.NewClient(*gatewayURL)
	light, err := node.NewLight(node.LightConfig{
		Key:     key,
		Gateway: client,
		Worker:  &pow.Worker{CostFactor: *costFactor},
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		cancel()
	}()

	sensor := device.NewSensor(kind, *seed)
	posted := 0
	for *count == 0 || posted < *count {
		reading := sensor.Next(time.Now())
		res, err := light.PostReading(ctx, reading.Blob)
		switch {
		case err == nil:
			posted++
			fmt.Printf("posted %s (difficulty %d, pow %v): %s\n",
				res.Info.ID.Short(), res.Difficulty, res.Pow.Elapsed.Round(time.Microsecond), reading.Blob)
		case errors.Is(err, context.Canceled):
			fmt.Println("interrupted")
			return nil
		case errors.Is(err, node.ErrUnauthorizedDevice):
			fmt.Println("not yet authorized; retrying...")
		default:
			fmt.Printf("post failed: %v\n", err)
		}
		select {
		case <-ctx.Done():
			summary := light.PowTime.Summarize()
			fmt.Printf("pow latency: %v\n", summary)
			return nil
		case <-time.After(*period):
		}
	}
	summary := light.PowTime.Summarize()
	fmt.Printf("done: %d readings posted; pow latency: %v\n", posted, summary)
	return nil
}

// deviceKey builds the device account: from a hex seed when given (so a
// pre-authorized identity can be reused), otherwise fresh.
func deviceKey(hexSeed string) (*identity.KeyPair, error) {
	if hexSeed == "" {
		key, err := identity.Generate()
		if err != nil {
			return nil, fmt.Errorf("generate device account: %w", err)
		}
		return key, nil
	}
	seed, err := hex.DecodeString(hexSeed)
	if err != nil {
		return nil, fmt.Errorf("parse -key: %w", err)
	}
	key, err := identity.GenerateFrom(bytes.NewReader(seed))
	if err != nil {
		return nil, fmt.Errorf("derive account from seed: %w", err)
	}
	return key, nil
}

func parseSensor(name string) (device.SensorKind, error) {
	switch name {
	case "temperature":
		return device.SensorTemperature, nil
	case "humidity":
		return device.SensorHumidity, nil
	case "vibration":
		return device.SensorVibration, nil
	case "power":
		return device.SensorPower, nil
	case "machine-config":
		return device.SensorMachineConfig, nil
	default:
		return 0, fmt.Errorf("unknown sensor model %q", name)
	}
}
