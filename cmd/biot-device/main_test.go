package main

import (
	"encoding/hex"
	"strings"
	"testing"

	"github.com/b-iot/biot/internal/device"
)

func TestParseSensor(t *testing.T) {
	tests := []struct {
		in   string
		want device.SensorKind
	}{
		{"temperature", device.SensorTemperature},
		{"humidity", device.SensorHumidity},
		{"vibration", device.SensorVibration},
		{"power", device.SensorPower},
		{"machine-config", device.SensorMachineConfig},
	}
	for _, tt := range tests {
		got, err := parseSensor(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("parseSensor(%q) = (%v, %v)", tt.in, got, err)
		}
	}
	if _, err := parseSensor("geiger"); err == nil {
		t.Error("unknown sensor accepted")
	}
}

func TestDeviceKey(t *testing.T) {
	// Fresh accounts differ.
	a, err := deviceKey("")
	if err != nil {
		t.Fatal(err)
	}
	b, err := deviceKey("")
	if err != nil {
		t.Fatal(err)
	}
	if a.Address() == b.Address() {
		t.Error("fresh accounts identical")
	}

	// Seeded accounts are deterministic.
	seed := strings.Repeat("ab", 32)
	c, err := deviceKey(seed)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deviceKey(seed)
	if err != nil {
		t.Fatal(err)
	}
	if c.Address() != d.Address() {
		t.Error("seeded accounts differ")
	}
	if hex.EncodeToString(c.Public()) == hex.EncodeToString(a.Public()) {
		t.Error("seeded account collides with fresh one")
	}

	// Bad seeds rejected.
	for _, bad := range []string{"zz", "abcd"} {
		if _, err := deviceKey(bad); err == nil {
			t.Errorf("deviceKey(%q) accepted", bad)
		}
	}
}
