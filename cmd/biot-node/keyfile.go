package main

import (
	"encoding/hex"
	"fmt"
	"os"
	"strings"

	"github.com/b-iot/biot/internal/identity"
)

// loadOrCreateKey gives a node a durable identity. The file holds the
// hex-encoded 32-byte identity seed — the whole secret — so it is
// written 0600 and refused when some other user could read it. A
// missing file means first boot: generate, persist, proceed. Every
// later boot (including a supervisor restart after a crash) derives
// the same address, which is what lets the journal's foreign-log check
// accept the node's own history back.
func loadOrCreateKey(path string) (*identity.KeyPair, error) {
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if info, err := os.Stat(path); err == nil && info.Mode().Perm()&0o077 != 0 {
			return nil, fmt.Errorf("keyfile %s is group/world accessible (%v); chmod 600 it", path, info.Mode().Perm())
		}
		seed, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			return nil, fmt.Errorf("keyfile %s is not hex: %w", path, err)
		}
		key, err := identity.FromSeed(seed)
		if err != nil {
			return nil, fmt.Errorf("keyfile %s: %w", path, err)
		}
		return key, nil
	case os.IsNotExist(err):
		key, err := identity.Generate()
		if err != nil {
			return nil, fmt.Errorf("generate node account: %w", err)
		}
		encoded := hex.EncodeToString(key.Seed()) + "\n"
		if err := os.WriteFile(path, []byte(encoded), 0o600); err != nil {
			return nil, fmt.Errorf("persist keyfile: %w", err)
		}
		return key, nil
	default:
		return nil, fmt.Errorf("read keyfile: %w", err)
	}
}
