package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
)

// TestKeyfileRoundTripsAcrossSupervisorRestart pins the -keyfile
// contract: the first boot mints an identity into a 0600 file, and
// every later boot — here a full supervisor stop/start against the
// node's own journal — derives the same address, so the journal's
// foreign-log check accepts the history back and replays it.
func TestKeyfileRoundTripsAcrossSupervisorRestart(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "node.key")
	journal := filepath.Join(dir, "node.journal")

	key, err := loadOrCreateKey(keyPath)
	if err != nil {
		t.Fatalf("first boot: %v", err)
	}
	info, err := os.Stat(keyPath)
	if err != nil {
		t.Fatalf("keyfile not persisted: %v", err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Fatalf("keyfile mode %v, want 0600", perm)
	}

	// Boot a supervised manager with the persisted identity and commit
	// some history to the journal.
	boot := func(key *identity.KeyPair) *node.Supervisor {
		t.Helper()
		sup, err := node.NewSupervisor(node.SupervisorConfig{
			Build: func() (*node.FullNode, error) {
				return node.NewFull(node.FullConfig{
					Key:        key,
					Role:       identity.RoleManager,
					ManagerPub: key.Public(),
				})
			},
			PersistPath: journal,
		})
		if err != nil {
			t.Fatalf("supervisor: %v", err)
		}
		if err := sup.Start(); err != nil {
			t.Fatalf("start: %v", err)
		}
		return sup
	}
	sup := boot(key)
	mgr, err := node.NewManager(sup.Node())
	if err != nil {
		t.Fatal(err)
	}
	device, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mgr.AuthorizeDevice(device.Public(), device.BoxPublic())
	if _, err := mgr.PublishAuthorization(context.Background()); err != nil {
		t.Fatalf("publish: %v", err)
	}
	addr := sup.Node().Address()
	if err := sup.Stop(context.Background()); err != nil {
		t.Fatalf("stop: %v", err)
	}

	// The restart path: reload the identity from disk, reboot, and the
	// node must be the same account with its history replayed.
	reloaded, err := loadOrCreateKey(keyPath)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if reloaded.Address() != key.Address() {
		t.Fatalf("keyfile changed identity: %s vs %s", reloaded.Address().Hex(), addr.Hex())
	}
	sup2 := boot(reloaded)
	defer sup2.Stop(context.Background())
	if got := sup2.Node().Address(); got != addr {
		t.Fatalf("rebooted node address %s, want %s", got.Hex(), addr.Hex())
	}
	if replayed := sup2.Health().Replayed; replayed == 0 {
		t.Fatal("journal replayed nothing: the reloaded identity was not accepted as the log's owner")
	}

	// A different keyfile is a different account: the contract is the
	// file, not the path's first caller.
	other, err := loadOrCreateKey(filepath.Join(dir, "other.key"))
	if err != nil {
		t.Fatal(err)
	}
	if other.Address() == key.Address() {
		t.Fatal("distinct keyfiles minted the same identity")
	}

	// Tampered or exposed files are refused outright.
	if err := os.WriteFile(filepath.Join(dir, "bad.key"), []byte("not-hex\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOrCreateKey(filepath.Join(dir, "bad.key")); err == nil {
		t.Fatal("non-hex keyfile accepted")
	}
	if err := os.Chmod(keyPath, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOrCreateKey(keyPath); err == nil {
		t.Fatal("world-readable keyfile accepted")
	}
}
