// Command biot-node runs a B-IoT full node — a gateway or the manager —
// with a RESTful HTTP API for light nodes and TCP gossip between full
// nodes (the counterpart of the paper's IRI deployment, §V-A).
//
// Start a manager (it prints the manager key material the deployment
// needs):
//
//	biot-node -role manager -rpc 127.0.0.1:14265 -gossip 127.0.0.1:15600 \
//	    -keyfile manager.key
//
// Start a gateway against it:
//
//	biot-node -role gateway -rpc 127.0.0.1:14266 -gossip 127.0.0.1:15601 \
//	    -manager-pub <hex from the manager> -peers 127.0.0.1:15600
//
// A manager node additionally authorizes devices listed in -authorize
// (comma-separated hex public keys) at startup.
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/quality"
	"github.com/b-iot/biot/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "biot-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role             = flag.String("role", "gateway", "node role: manager or gateway")
		rpcAddr          = flag.String("rpc", "127.0.0.1:14265", "RESTful API listen address")
		gossipAddr       = flag.String("gossip", "127.0.0.1:15600", "gossip listen address")
		peers            = flag.String("peers", "", "comma-separated gossip addresses of peer full nodes")
		managerPub       = flag.String("manager-pub", "", "hex manager public key (required for gateways)")
		authorize        = flag.String("authorize", "", "comma-separated hex device public keys to authorize (manager only)")
		difficulty       = flag.Int("difficulty", 11, "initial PoW difficulty D0")
		rateLimit        = flag.Int("rate-limit", 50, "per-device submissions per second (0 = unlimited)")
		persistPath      = flag.String("persist", "", "transaction log path; the ledger survives restarts when set")
		journalBatch     = flag.Int("journal-batch", 0, "max admitted records per journal fsync (0 = store default, 1 = fsync per record)")
		journalDelay     = flag.Duration("journal-delay", 0, "how long the journal commit leader lingers for a fuller batch (0 = flush immediately)")
		withQuality      = flag.Bool("quality", false, "enable sensor data quality control on plaintext readings")
		snapshotKeep     = flag.Duration("snapshot-keep", 0, "compact the ledger periodically, keeping this much history (0 = never)")
		snapshotInterval = flag.Duration("snapshot-interval", 0, "quantize compaction cutoffs to this epoch so all gateways cut at the same boundary (0 = unaligned)")
		keyfile          = flag.String("keyfile", "", "persisted node identity: hex seed file, created 0600 on first boot")
		shard            = flag.Uint("shard", 0, "tangle namespace this gateway admits device traffic into (0 = single-tier)")
		backboneAddr     = flag.String("backbone", "", "inter-gateway backbone listen address (empty = no backbone tier)")
		backbonePeers    = flag.String("backbone-peers", "", "comma-separated backbone addresses of other region gateways / the manager")
	)
	flag.Parse()
	if *backbonePeers != "" && *backboneAddr == "" {
		return errors.New("-backbone-peers requires -backbone")
	}

	var key *identity.KeyPair
	var err error
	if *keyfile != "" {
		if key, err = loadOrCreateKey(*keyfile); err != nil {
			return err
		}
	} else if key, err = identity.Generate(); err != nil {
		return fmt.Errorf("generate node account: %w", err)
	}

	var nodeRole identity.Role
	var mgrPub identity.PublicKey
	switch *role {
	case "manager":
		nodeRole = identity.RoleManager
		mgrPub = key.Public()
	case "gateway":
		nodeRole = identity.RoleGateway
		if *managerPub == "" {
			return errors.New("gateway requires -manager-pub")
		}
		if mgrPub, err = identity.DecodePublic(*managerPub); err != nil {
			return fmt.Errorf("parse -manager-pub: %w", err)
		}
	default:
		return fmt.Errorf("unknown role %q", *role)
	}

	// The supervised unit: network attachment + node. Build runs on
	// every (re)start — a watchdog restart after a poisoned journal or a
	// dead transport rebinds the gossip listener and replays the journal
	// into a fresh node.
	params := defaultParamsWithDifficulty(*difficulty)
	build := func() (*node.FullNode, error) {
		net, err := gossip.ListenTCP(*gossipAddr)
		if err != nil {
			return nil, err
		}
		for _, p := range splitList(*peers) {
			net.AddPeer(p)
		}
		var validator *quality.Validator
		if *withQuality {
			validator = quality.NewValidator(nil)
		}
		var backbone gossip.Network
		if *backboneAddr != "" {
			bb, err := gossip.ListenTCP(*backboneAddr)
			if err != nil {
				net.Close()
				return nil, fmt.Errorf("backbone listener: %w", err)
			}
			for _, p := range splitList(*backbonePeers) {
				bb.AddPeer(p)
			}
			backbone = bb
		}
		full, err := node.NewFull(node.FullConfig{
			Key:        key,
			Role:       nodeRole,
			ManagerPub: mgrPub,
			Credit:     params,
			Network:    net,
			RateLimit:  *rateLimit,
			RateWindow: time.Second,
			Quality:    validator,

			ShardID:  uint32(*shard),
			Backbone: backbone,

			JournalMaxBatch: *journalBatch,
			JournalMaxDelay: *journalDelay,
			SnapshotEpoch:   *snapshotInterval,
		})
		if err != nil {
			if backbone != nil {
				backbone.Close()
			}
			net.Close()
			return nil, err
		}
		return full, nil
	}

	compactEvery := time.Duration(0)
	if *snapshotKeep > 0 {
		// Compact twice per keep window by default; with epoch-aligned
		// cuts, once per epoch is enough (the cutoff only moves then).
		compactEvery = *snapshotKeep / 2
		if *snapshotInterval > 0 {
			compactEvery = *snapshotInterval
		}
	}
	sup, err := node.NewSupervisor(node.SupervisorConfig{
		Build:         build,
		PersistPath:   *persistPath,
		WatchInterval: 2 * time.Second,
		CompactEvery:  compactEvery,
		CompactKeep:   *snapshotKeep,
	})
	if err != nil {
		return err
	}
	if err := sup.Start(); err != nil {
		return err
	}

	full := sup.Node()
	fmt.Printf("b-iot %s node\n", nodeRole)
	fmt.Printf("  address:     %s\n", full.Address().Hex())
	fmt.Printf("  public key:  %s\n", hex.EncodeToString(key.Public()))
	fmt.Printf("  rpc:         http://%s\n", *rpcAddr)
	fmt.Printf("  gossip:      %s (peers: %s)\n", full.Network().Self(), *peers)
	if *keyfile != "" {
		fmt.Printf("  identity:    %s (persisted)\n", *keyfile)
	}
	if *backboneAddr != "" {
		fmt.Printf("  backbone:    %s shard %d (peers: %s)\n",
			full.Backbone().Self(), *shard, *backbonePeers)
	}
	if *persistPath != "" {
		fmt.Printf("  persisted:   %s (%d records replayed)\n",
			*persistPath, sup.Health().Replayed)
	}

	if nodeRole == identity.RoleManager {
		mgr, err := node.NewManager(full)
		if err != nil {
			return err
		}
		for _, hexKey := range splitList(*authorize) {
			pub, err := identity.DecodePublic(hexKey)
			if err != nil {
				return fmt.Errorf("parse -authorize key %q: %w", hexKey, err)
			}
			mgr.AuthorizeDevice(pub, nil)
		}
		if *authorize != "" {
			if _, err := mgr.PublishAuthorization(context.Background()); err != nil {
				return fmt.Errorf("publish authorization: %w", err)
			}
			fmt.Printf("  authorized:  %d device(s)\n", len(splitList(*authorize)))
		}
	} else {
		// Joining gateway: snapshot-shipped bootstrap when a peer can
		// serve one (O(frontier) join), full paged replay otherwise.
		stats, err := full.Bootstrap(context.Background())
		if err != nil {
			fmt.Printf("  bootstrap:   failed (%v); continuing with live gossip\n", err)
		} else {
			fmt.Printf("  joined:      %s mode from %q — %d boundary roots, %d live txs in %v\n",
				stats.Mode, stats.Peer, stats.Boundary, full.Tangle().Size(), stats.Elapsed.Round(time.Millisecond))
		}
	}

	// The RPC server re-resolves the node per request, so a watchdog
	// restart swaps the instance under it without dropping the listener;
	// /healthz and /readyz expose the supervisor's verdict to
	// orchestrators.
	srv := rpc.NewServer(nil, rpc.WithNodeSource(sup.Node), rpc.WithHealth(sup))
	if err := srv.Start(*rpcAddr); err != nil {
		sup.Stop(context.Background())
		return err
	}
	defer srv.Close()

	// Sharded tier: reconcile control-plane history and credit digests
	// over the backbone on the default cadence. The loop re-resolves the
	// node each tick so it follows watchdog restarts transparently.
	if *backboneAddr != "" {
		reconcileCtx, stopReconcile := context.WithCancel(context.Background())
		defer stopReconcile()
		go func() {
			ticker := time.NewTicker(2 * time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-reconcileCtx.Done():
					return
				case <-ticker.C:
					if n := sup.Node(); n != nil {
						n.Reconcile(reconcileCtx)
					}
				}
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	// Graceful drain: readiness flips off, buffered broadcasts flush to
	// peers, the journal syncs and closes — bounded so a wedged peer
	// cannot hold shutdown hostage.
	fmt.Println("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return sup.Stop(ctx)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func defaultParamsWithDifficulty(d int) core.Params {
	p := core.DefaultParams()
	p.InitialDifficulty = d
	if d < p.MinDifficulty {
		p.MinDifficulty = 1
	}
	if d+6 > p.MaxDifficulty {
		p.MaxDifficulty = d + 6
	}
	return p
}
