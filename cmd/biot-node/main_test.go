package main

import (
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a,b,c", []string{"a", "b", "c"}},
		{" a , b ", []string{"a", "b"}},
		{"a,,b,", []string{"a", "b"}},
		{" , ", nil},
	}
	for _, tt := range tests {
		got := splitList(tt.in)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("splitList(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestDefaultParamsWithDifficulty(t *testing.T) {
	p := defaultParamsWithDifficulty(11)
	if p.InitialDifficulty != 11 {
		t.Errorf("initial = %d", p.InitialDifficulty)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("params invalid: %v", err)
	}
	// Low difficulty keeps the range valid.
	p = defaultParamsWithDifficulty(2)
	if err := p.Validate(); err != nil {
		t.Errorf("low-difficulty params invalid: %v", err)
	}
	// High difficulty widens the max.
	p = defaultParamsWithDifficulty(20)
	if p.MaxDifficulty < 26 {
		t.Errorf("max = %d, want headroom above 20", p.MaxDifficulty)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("high-difficulty params invalid: %v", err)
	}
}
