package biot

import (
	"context"
	"fmt"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/metrics"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/rpc"
	"github.com/b-iot/biot/internal/txn"
)

// Device is an IoT light node: it holds an account, talks to one
// gateway, validates tips, runs credit-priced PoW, and posts readings.
type Device struct {
	key   *KeyPair
	light *node.LightNode
}

// DeviceConfig configures a device.
type DeviceConfig struct {
	// Key is the device account; nil generates a fresh one.
	Key *KeyPair
	// Worker runs PoW; its CostFactor emulates the device's hardware
	// class (nil selects an unconstrained worker).
	Worker *PowWorker
}

// NewDevice creates a device attached to a gateway of the system. The
// device still needs authorization (System.AuthorizeDevice +
// PublishAuthorization) before its submissions are accepted.
func (s *System) NewDevice(cfg DeviceConfig, gw *Gateway) (*Device, error) {
	if gw == nil {
		gw = s.ManagerGateway()
	}
	return newDevice(cfg, gw.full, s.cfg.Clock)
}

// ConnectDevice creates a device that talks to a remote gateway over
// its RESTful RPC API (cmd/biot-device does this).
func ConnectDevice(cfg DeviceConfig, gatewayURL string) (*Device, error) {
	return newDevice(cfg, rpc.NewClient(gatewayURL), nil)
}

func newDevice(cfg DeviceConfig, gw node.Gateway, clk clock.Clock) (*Device, error) {
	key := cfg.Key
	if key == nil {
		var err error
		if key, err = NewKeyPair(); err != nil {
			return nil, fmt.Errorf("generate device account: %w", err)
		}
	}
	light, err := node.NewLight(node.LightConfig{
		Key:     key,
		Gateway: gw,
		Worker:  cfg.Worker,
		Clock:   clk,
	})
	if err != nil {
		return nil, err
	}
	return &Device{key: key, light: light}, nil
}

// Key returns the device's account.
func (d *Device) Key() *KeyPair { return d.key }

// Address returns the device's account address.
func (d *Device) Address() Address { return d.key.Address() }

// PostReading publishes a sensor reading. If the device has been issued
// a data key (System.DistributeKey), the reading is AES-encrypted
// before it touches the transparent ledger.
func (d *Device) PostReading(ctx context.Context, reading []byte) (TxInfo, error) {
	res, err := d.light.PostReading(ctx, reading)
	if err != nil {
		return TxInfo{}, err
	}
	return res.Info, nil
}

// Transfer moves tokens to another account.
func (d *Device) Transfer(ctx context.Context, to Address, amount uint64) (TxInfo, error) {
	res, err := d.light.Transfer(ctx, to, amount)
	if err != nil {
		return TxInfo{}, err
	}
	return res.Info, nil
}

// HasDataKey reports whether key distribution completed for this
// device.
func (d *Device) HasDataKey() bool { return d.light.HasDataKey() }

// PowStats summarizes the device's observed PoW latencies (the Fig-9
// quantity).
func (d *Device) PowStats() metrics.Summary { return d.light.PowTime.Summarize() }

// FetchReading retrieves a data transaction from the device's gateway
// and decrypts it with the given key (nil for plaintext readings).
func (d *Device) FetchReading(id Hash, key *DataKey) ([]byte, error) {
	t, err := d.light.Gateway().GetTransaction(id)
	if err != nil {
		return nil, err
	}
	if t.Kind != txn.KindData {
		return nil, fmt.Errorf("transaction %s is %v, not data", id.Short(), t.Kind)
	}
	return OpenReading(t.Payload, key)
}
