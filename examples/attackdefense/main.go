// Attack and defense: the credit-based PoW mechanism reacting to the
// paper's §III threat model, live.
//
// An honest sensor builds positive credit and watches its PoW
// difficulty fall. A double-spender and a lazy-tips attacker are
// detected by the ledger; their difficulty jumps, making further
// attacks exponentially more expensive (§IV-B). A Sybil flood bounces
// off the authorization list.
//
//	go run ./examples/attackdefense
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	biot "github.com/b-iot/biot"
	"github.com/b-iot/biot/internal/attack"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/tangle"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	params := biot.DefaultCreditParams()
	params.InitialDifficulty = 8
	params.MinDifficulty = 1
	params.MaxDifficulty = 18
	// Compress the lazy-tip staleness threshold so the demo finishes in
	// seconds (production default: 30 s).
	tangleCfg := tangle.DefaultConfig()
	tangleCfg.LazyParentAge = 2 * time.Second
	sys, err := biot.NewSystem(biot.SystemConfig{Credit: params, Tangle: tangleCfg})
	if err != nil {
		return err
	}
	defer sys.Close()
	gateway := sys.ManagerGateway()

	// Honest device: credit up, difficulty down.
	honest, err := sys.NewDevice(biot.DeviceConfig{}, gateway)
	if err != nil {
		return err
	}
	spender, err := biot.NewKeyPair()
	if err != nil {
		return err
	}
	lazy, err := biot.NewKeyPair()
	if err != nil {
		return err
	}
	sys.AuthorizeDevice(honest.Key())
	sys.AuthorizeDevice(spender)
	sys.AuthorizeDevice(lazy)
	if err := sys.PublishAuthorization(ctx); err != nil {
		return err
	}
	sys.Mint(spender.Address(), 100)

	fmt.Println("== honest behaviour ==")
	before := sys.DifficultyFor(honest.Address())
	for i := 0; i < 12; i++ {
		if _, err := honest.PostReading(ctx, fmt.Appendf(nil, "reading %d", i)); err != nil {
			return err
		}
	}
	fmt.Printf("honest difficulty: %d → %d (credit %.3f)\n",
		before, sys.DifficultyFor(honest.Address()), sys.CreditOf(honest.Address()).Cr)

	fmt.Println("== double-spending attack ==")
	atk, err := attack.New(attack.Config{Key: spender, Gateway: gateway.Node()})
	if err != nil {
		return err
	}
	victim1, err := biot.NewKeyPair()
	if err != nil {
		return err
	}
	victim2, err := biot.NewKeyPair()
	if err != nil {
		return err
	}
	dsBefore := sys.DifficultyFor(spender.Address())
	first, second, err := atk.DoubleSpend(ctx, victim1.Address(), victim2.Address(), 40, 0)
	if err != nil {
		return err
	}
	firstInfo, err := gateway.Node().InfoOf(first.ID)
	if err != nil {
		return err
	}
	secondInfo, err := gateway.Node().InfoOf(second.ID)
	if err != nil {
		return err
	}
	fmt.Printf("conflicting spends: %s=%v, %s=%v\n",
		first.ID.Short(), firstInfo.Status, second.ID.Short(), secondInfo.Status)
	fmt.Printf("spender difficulty: %d → %d\n", dsBefore, sys.DifficultyFor(spender.Address()))
	for _, ev := range sys.Events(spender.Address()) {
		fmt.Printf("  recorded: %v (%s)\n", ev.Behaviour, ev.Detail)
	}

	fmt.Println("== lazy-tips attack ==")
	lazyAtk, err := attack.New(attack.Config{Key: lazy, Gateway: gateway.Node()})
	if err != nil {
		return err
	}
	trunk, branch, err := gateway.Node().TipsForApproval()
	if err != nil {
		return err
	}
	lazyAtk.PinLazyParents(trunk, branch)
	// Honest traffic moves the frontier past the (compressed) lazy
	// threshold.
	for i := 0; i < 3; i++ {
		if _, err := honest.PostReading(ctx, []byte("fresh traffic")); err != nil {
			return err
		}
		time.Sleep(time.Second)
	}
	lzBefore := sys.DifficultyFor(lazy.Address())
	if _, err := lazyAtk.LazySubmit(ctx, []byte("lazy tx")); err != nil {
		return err
	}
	fmt.Printf("lazy attacker difficulty: %d → %d\n",
		lzBefore, sys.DifficultyFor(lazy.Address()))
	for _, ev := range sys.Events(lazy.Address()) {
		if ev.Behaviour == core.BehaviourLazyTips {
			fmt.Printf("  recorded: %v (%s)\n", ev.Behaviour, ev.Detail)
		}
	}

	fmt.Println("== Sybil flood ==")
	res, err := attack.SybilFlood(ctx, gateway.Node(), nil, nil, 10)
	if err != nil {
		return err
	}
	fmt.Printf("fabricated identities: %d, rejected: %d, accepted: %d\n",
		res.Identities, res.Rejected, res.Accepted)
	return nil
}
