// Data sharing across factories (paper §IV-A4): "if factories need to
// configure their machines operating parameters for processing a
// certain kind of parts, they do not need to debug machines
// independently. They can request solutions of the same parts from
// other factories which have configured them through B-IoT."
//
// Factory A's commissioning rig publishes machine-configuration records
// to the shared tangle. Factory B's device discovers and reuses them —
// the ledger's tamper-evidence is what lets B trust A's data without a
// trusted intermediary. The sharing key is distributed to B's reader
// with the same Fig-4 protocol, so even cross-factory sharing keeps the
// data confidential from the public.
//
//	go run ./examples/datasharing
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	biot "github.com/b-iot/biot"
	"github.com/b-iot/biot/internal/device"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	params := biot.DefaultCreditParams()
	params.InitialDifficulty = 8
	params.MinDifficulty = 1
	sys, err := biot.NewSystem(biot.SystemConfig{Credit: params})
	if err != nil {
		return err
	}
	defer sys.Close()

	// One shared public tangle; each factory fronts it with its own
	// gateway ("the tangle network in our system is a public blockchain
	// network, any party can access").
	factoryA, err := sys.AddGateway(ctx)
	if err != nil {
		return err
	}
	factoryB, err := sys.AddGateway(ctx)
	if err != nil {
		return err
	}

	// Factory A's commissioning rig publishes configuration records.
	rigA, err := sys.NewDevice(biot.DeviceConfig{}, factoryA)
	if err != nil {
		return err
	}
	// Factory B's machine controller reads them.
	readerB, err := sys.NewDevice(biot.DeviceConfig{}, factoryB)
	if err != nil {
		return err
	}
	sys.AuthorizeDevice(rigA.Key())
	sys.AuthorizeDevice(readerB.Key())
	if err := sys.PublishAuthorization(ctx); err != nil {
		return err
	}

	// Machine configurations are sensitive: factory A gets a data key
	// and publishes encrypted records.
	if err := sys.DistributeKey(ctx, rigA); err != nil {
		return err
	}
	configs := device.NewSensor(device.SensorMachineConfig, 7)
	now := time.Now()
	var published []biot.Hash
	for i := 0; i < 3; i++ {
		reading := configs.Next(now)
		info, err := rigA.PostReading(ctx, reading.Blob)
		if err != nil {
			return err
		}
		published = append(published, info.ID)
		fmt.Printf("factory A published config %s: %s\n", info.ID.Short(), reading.Blob)
	}

	// Broadcast is asynchronous; wait for fan-out before reading factory
	// A's records through factory B's gateway.
	if err := sys.Flush(ctx); err != nil {
		return err
	}

	// Factory B fetches the records through its own gateway. Without
	// the sharing key the payloads are opaque.
	if _, err := readerB.FetchReading(published[0], nil); err != nil {
		fmt.Printf("factory B without sharing key: %v\n", err)
	}

	// Factory A agrees to share: the manager re-issues rig A's group
	// key to factory B's reader through its own Fig-4 exchange — the
	// key itself never travels outside the protocol.
	if err := sys.ShareKey(ctx, rigA, readerB); err != nil {
		return fmt.Errorf("share key with factory B: %w", err)
	}
	fmt.Println("group key shared with factory B via Fig-4 exchange")
	keyA, ok := sys.IssuedKey(rigA)
	if !ok {
		return fmt.Errorf("factory A has no issued key")
	}
	for _, id := range published {
		body, err := readerB.FetchReading(id, &keyA)
		if err != nil {
			return fmt.Errorf("factory B decrypt %s: %w", id.Short(), err)
		}
		if !strings.Contains(string(body), "spindle_rpm") {
			return fmt.Errorf("unexpected config payload %q", body)
		}
		fmt.Printf("factory B reused config %s: %s\n", id.Short(), body)
	}

	fmt.Println("cross-factory sharing complete: no central data silo involved")
	return nil
}
