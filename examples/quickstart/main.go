// Quickstart: boot an in-process B-IoT deployment, authorize one IoT
// device, post a sensor reading to the tangle, and read it back.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	biot "github.com/b-iot/biot"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// A system is a factory deployment: the manager full node whose
	// public key is pinned in the genesis configuration.
	params := biot.DefaultCreditParams()
	params.InitialDifficulty = 8 // quick PoW for the demo
	params.MinDifficulty = 1
	sys, err := biot.NewSystem(biot.SystemConfig{Credit: params})
	if err != nil {
		return err
	}
	defer sys.Close()

	// Devices generate a blockchain account (PK, SK) when initialized.
	dev, err := sys.NewDevice(biot.DeviceConfig{}, nil)
	if err != nil {
		return err
	}
	fmt.Printf("device account: %s\n", dev.Address().Short())

	// Unauthorized devices are rejected at the gateway — the Sybil/DDoS
	// defense.
	if _, err := dev.PostReading(ctx, []byte("temp=21.5C")); err != nil {
		fmt.Printf("before authorization: %v\n", err)
	}

	// The manager authorizes the device by publishing a signed
	// authorization list to the ledger (Eqn 1 of the paper).
	sys.AuthorizeDevice(dev.Key())
	if err := sys.PublishAuthorization(ctx); err != nil {
		return err
	}

	// The device now follows the Fig-6 workflow: get two tips, validate
	// them, bundle its transaction via PoW, submit.
	info, err := dev.PostReading(ctx, []byte("temp=21.5C"))
	if err != nil {
		return err
	}
	fmt.Printf("reading attached: tx %s (difficulty %d for this device)\n",
		info.ID.Short(), sys.DifficultyFor(dev.Address()))

	// Anyone can read the (non-sensitive) data back from the ledger.
	body, err := dev.FetchReading(info.ID, nil)
	if err != nil {
		return err
	}
	fmt.Printf("read back from tangle: %s\n", body)

	// Posting more readings builds positive credit; the device's PoW
	// difficulty drops below the initial value.
	for i := 0; i < 10; i++ {
		if _, err := dev.PostReading(ctx, fmt.Appendf(nil, "temp=%.1fC", 21.5+float64(i)/10)); err != nil {
			return err
		}
	}
	credit := sys.CreditOf(dev.Address())
	fmt.Printf("after 11 readings: CrP=%.3f Cr=%.3f difficulty=%d (initial %d)\n",
		credit.CrP, credit.Cr, sys.DifficultyFor(dev.Address()), params.InitialDifficulty)

	stats := sys.Stats()
	fmt.Printf("tangle: %d transactions, %d tips, %d confirmed\n",
		stats.Transactions, stats.Tips, stats.Confirmed)
	return nil
}
