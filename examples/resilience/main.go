// Resilience: the two §VIII future-work extensions working together —
// durable storage and sensor data quality control.
//
// A gateway journals every admitted transaction; it is then "restarted"
// (a fresh process state replaying the same journal) and proves nothing
// was lost: tangle contents, device authorization, and credit history
// all survive. Meanwhile a faulty sensor emits implausible readings;
// the gateway's quality validator flags them and the credit mechanism
// raises that device's PoW difficulty, exactly as it does for protocol
// attackers.
//
//	go run ./examples/resilience
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/quality"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func params() core.Params {
	p := core.DefaultParams()
	p.InitialDifficulty = 8
	p.MinDifficulty = 1
	return p
}

func boot(managerKey *identity.KeyPair, journal string) (*node.Manager, *node.FullNode, int, error) {
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     params(),
		Quality:    quality.NewValidator(nil),
	})
	if err != nil {
		return nil, nil, 0, err
	}
	replayed, err := full.EnablePersistence(journal)
	if err != nil {
		return nil, nil, 0, err
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		return nil, nil, 0, err
	}
	return mgr, full, replayed, nil
}

func run() error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "biot-resilience")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "gateway.log")

	managerKey, err := identity.Generate()
	if err != nil {
		return err
	}
	deviceKey, err := identity.Generate()
	if err != nil {
		return err
	}

	fmt.Println("== first life ==")
	mgr, full, replayed, err := boot(managerKey, journal)
	if err != nil {
		return err
	}
	fmt.Printf("journal %s: %d records replayed (fresh)\n", filepath.Base(journal), replayed)

	device, err := node.NewLight(node.LightConfig{Key: deviceKey, Gateway: full})
	if err != nil {
		return err
	}
	mgr.AuthorizeDevice(deviceKey.Public(), deviceKey.BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		return err
	}

	// Healthy readings build credit...
	for i := 1; i <= 5; i++ {
		payload := fmt.Sprintf("sensor=temperature;seq=%d;t=%d;value=%.1f", i, i, 20.0+float64(i)*0.2)
		if _, err := device.PostReading(ctx, []byte(payload)); err != nil {
			return err
		}
	}
	fmt.Printf("5 healthy readings posted; difficulty for device: %d\n",
		full.DifficultyFor(deviceKey.Address()))

	// ...then the sensor develops a fault.
	faulty := "sensor=temperature;seq=6;t=6;value=482.0" // outside [-40, 125]
	if _, err := device.PostReading(ctx, []byte(faulty)); err != nil {
		return err
	}
	fmt.Printf("faulty reading accepted as evidence; quality violations: %d\n",
		full.CountersView().QualityViolations.Value())
	fmt.Printf("difficulty for device after violation: %d\n",
		full.DifficultyFor(deviceKey.Address()))
	for _, ev := range full.Engine().Ledger().Events(deviceKey.Address()) {
		fmt.Printf("  recorded: %v (%s)\n", ev.Behaviour, ev.Detail)
	}

	sizeBefore := full.Tangle().Size()
	if err := full.ClosePersistence(); err != nil {
		return err
	}

	fmt.Println("== gateway restart ==")
	_, full2, replayed2, err := boot(managerKey, journal)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d records; tangle %d → %d transactions\n",
		replayed2, 2, full2.Tangle().Size())
	if full2.Tangle().Size() != sizeBefore {
		return fmt.Errorf("ledger size mismatch after restart: %d != %d",
			full2.Tangle().Size(), sizeBefore)
	}
	if !full2.Registry().IsAuthorizedDevice(deviceKey.Address()) {
		return fmt.Errorf("authorization lost across restart")
	}
	fmt.Printf("authorization survived; punishment survived (difficulty %d)\n",
		full2.DifficultyFor(deviceKey.Address()))

	// The restarted gateway keeps serving the same device.
	device2, err := node.NewLight(node.LightConfig{Key: deviceKey, Gateway: full2})
	if err != nil {
		return err
	}
	if _, err := device2.PostReading(ctx, []byte("sensor=temperature;seq=7;t=7;value=21.0")); err != nil {
		return err
	}
	fmt.Println("post-restart reading accepted: no data, no trust lost")
	return full2.ClosePersistence()
}
