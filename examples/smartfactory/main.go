// Smart factory: the paper's case study (§IV-A, Fig 5-6) end to end.
//
// A manager and two gateways run the tangle. Four wireless sensors are
// authorized: temperature and humidity publish in clear; vibration and
// power are classified sensitive, receive symmetric keys through the
// Fig-4 distribution protocol, and publish AES-encrypted readings. An
// unauthorized rogue sensor is rejected at the gateway.
//
//	go run ./examples/smartfactory
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	biot "github.com/b-iot/biot"
	"github.com/b-iot/biot/internal/device"
)

type sensorSpec struct {
	kind device.SensorKind
	seed int64
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	params := biot.DefaultCreditParams()
	params.InitialDifficulty = 8
	params.MinDifficulty = 1
	sys, err := biot.NewSystem(biot.SystemConfig{Credit: params})
	if err != nil {
		return err
	}
	defer sys.Close()

	// Step 1 (Fig 6): the manager initializes gateways.
	gwA, err := sys.AddGateway(ctx)
	if err != nil {
		return err
	}
	gwB, err := sys.AddGateway(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("gateways up: %s, %s\n", gwA.Address().Short(), gwB.Address().Short())

	// Step 2: the manager authorizes the factory's sensors.
	specs := []sensorSpec{
		{device.SensorTemperature, 1},
		{device.SensorHumidity, 2},
		{device.SensorVibration, 3},
		{device.SensorPower, 4},
	}
	gws := []*biot.Gateway{gwA, gwB}
	devices := make([]*biot.Device, len(specs))
	sensors := make([]*device.Sensor, len(specs))
	for i, spec := range specs {
		dev, err := sys.NewDevice(biot.DeviceConfig{}, gws[i%len(gws)])
		if err != nil {
			return err
		}
		devices[i] = dev
		sensors[i] = device.NewSensor(spec.kind, spec.seed)
		sys.AuthorizeDevice(dev.Key())
	}
	if err := sys.PublishAuthorization(ctx); err != nil {
		return err
	}

	// Step 3: key distribution — only to sensitive-data devices
	// ("the manager only distributes secret key to those devices which
	// collect sensitive data").
	for i, spec := range specs {
		if !spec.kind.Sensitive() {
			continue
		}
		if err := sys.DistributeKey(ctx, devices[i]); err != nil {
			return fmt.Errorf("distribute key to %v sensor: %w", spec.kind, err)
		}
		fmt.Printf("%-14v sensor %s received symmetric key\n",
			spec.kind, devices[i].Address().Short())
	}

	// Steps 4-5: sensors report; sensitive payloads are encrypted
	// transparently because the device holds a data key.
	now := time.Now()
	var lastSensitive, lastPlain biot.Hash
	for round := 0; round < 5; round++ {
		for i, spec := range specs {
			reading := sensors[i].Next(now.Add(time.Duration(round) * time.Second))
			info, err := devices[i].PostReading(ctx, reading.Blob)
			if err != nil {
				return fmt.Errorf("%v sensor: %w", spec.kind, err)
			}
			switch spec.kind {
			case device.SensorVibration:
				lastSensitive = info.ID
			case device.SensorTemperature:
				lastPlain = info.ID
			}
		}
	}
	// Wait for cross-gateway fan-out before reading through the other
	// gateway below.
	if err := sys.Flush(ctx); err != nil {
		return err
	}
	stats := sys.Stats()
	fmt.Printf("posted readings: tangle has %d transactions (%d confirmed)\n",
		stats.Transactions, stats.Confirmed)

	// A rogue, unauthorized sensor is turned away.
	rogue, err := sys.NewDevice(biot.DeviceConfig{}, gwA)
	if err != nil {
		return err
	}
	if _, err := rogue.PostReading(ctx, []byte("rogue")); err != nil {
		fmt.Printf("rogue sensor rejected: %v\n", err)
	} else {
		return fmt.Errorf("rogue sensor was accepted")
	}

	// Privacy check: the sensitive reading is unreadable without the
	// key, readable with it.
	reader, err := sys.NewDevice(biot.DeviceConfig{}, gwB)
	if err != nil {
		return err
	}
	if _, err := reader.FetchReading(lastSensitive, nil); err != nil {
		fmt.Printf("sensitive reading without key: %v\n", err)
	}
	vibrationDev := devices[2]
	key, ok := sys.IssuedKey(vibrationDev)
	if ok {
		if body, err := vibrationDev.FetchReading(lastSensitive, &key); err == nil {
			fmt.Printf("sensitive reading with issued key: %s\n", body)
		}
	}
	if body, err := reader.FetchReading(lastPlain, nil); err == nil {
		fmt.Printf("plaintext reading, open access:    %s\n", body)
	}
	return nil
}
