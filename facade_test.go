package biot_test

import (
	"context"
	"testing"
	"time"

	biot "github.com/b-iot/biot"
	"github.com/b-iot/biot/internal/core"
)

func newAuthorizedSystem(t *testing.T, cfg biot.SystemConfig) (*biot.System, *biot.Device) {
	t.Helper()
	sys, err := biot.NewSystem(cfg)
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	dev, err := sys.NewDevice(biot.DeviceConfig{}, nil)
	if err != nil {
		t.Fatalf("new device: %v", err)
	}
	sys.AuthorizeDevice(dev.Key())
	if err := sys.PublishAuthorization(context.Background()); err != nil {
		t.Fatalf("publish authorization: %v", err)
	}
	return sys, dev
}

func TestFacadeTransferAndSettlement(t *testing.T) {
	ctx := context.Background()
	sys, dev := newAuthorizedSystem(t, biot.SystemConfig{Credit: fastParams()})

	recipient, err := biot.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	sys.Mint(dev.Address(), 100)

	info, err := dev.Transfer(ctx, recipient.Address(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status == biot.StatusRejected {
		t.Fatalf("transfer rejected: %+v", info)
	}
	// Drive confirmation with follow-up readings.
	for i := 0; i < 12; i++ {
		if _, err := dev.PostReading(ctx, []byte("filler")); err != nil {
			t.Fatal(err)
		}
	}
	tokens := sys.Manager().Node().Tokens()
	if got := tokens.Balance(recipient.Address()); got != 25 {
		t.Errorf("recipient balance = %d, want 25", got)
	}
	if got := tokens.Balance(dev.Address()); got != 75 {
		t.Errorf("sender balance = %d, want 75", got)
	}
}

func TestFacadeCreditAndEvents(t *testing.T) {
	ctx := context.Background()
	sys, dev := newAuthorizedSystem(t, biot.SystemConfig{Credit: fastParams()})

	for i := 0; i < 8; i++ {
		if _, err := dev.PostReading(ctx, []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	cr := sys.CreditOf(dev.Address())
	if cr.CrP <= 0 || cr.Cr <= 0 {
		t.Errorf("credit = %+v after honest activity", cr)
	}
	if len(sys.Events(dev.Address())) != 0 {
		t.Error("honest device has malicious events")
	}
	if d := sys.DifficultyFor(dev.Address()); d > fastParams().InitialDifficulty {
		t.Errorf("difficulty %d rose for honest device", d)
	}
	stats := sys.Stats()
	if stats.Transactions < 9 {
		t.Errorf("stats transactions = %d", stats.Transactions)
	}
}

func TestFacadeDeauthorization(t *testing.T) {
	ctx := context.Background()
	sys, dev := newAuthorizedSystem(t, biot.SystemConfig{Credit: fastParams()})

	if _, err := dev.PostReading(ctx, []byte("while authorized")); err != nil {
		t.Fatal(err)
	}
	sys.DeauthorizeDevice(dev.Key())
	if err := sys.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.PostReading(ctx, []byte("after deauthorization")); err == nil {
		t.Error("deauthorized device still accepted")
	}
}

func TestFacadeQualityIntegration(t *testing.T) {
	ctx := context.Background()
	sys, dev := newAuthorizedSystem(t, biot.SystemConfig{
		Credit:  fastParams(),
		Quality: biot.NewQualityValidator(nil),
	})
	before := sys.DifficultyFor(dev.Address())
	if _, err := dev.PostReading(ctx, []byte("sensor=humidity;seq=1;t=1;value=250")); err != nil {
		t.Fatal(err)
	}
	if got := sys.DifficultyFor(dev.Address()); got <= before {
		t.Errorf("difficulty %d → %d, want punished for implausible reading", before, got)
	}
	events := sys.Events(dev.Address())
	if len(events) != 1 || events[0].Behaviour != core.BehaviourProtocol {
		t.Errorf("events = %+v", events)
	}
}

func TestFacadePersistence(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	managerKey, err := biot.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	deviceKey, err := biot.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}

	cfg := biot.SystemConfig{Credit: fastParams(), PersistDir: dir}
	sys, err := biot.NewSystemWithKey(cfg, managerKey)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := sys.NewDevice(biot.DeviceConfig{Key: deviceKey}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.AuthorizeDevice(dev.Key())
	if err := sys.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	info, err := dev.PostReading(ctx, []byte("journaled"))
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := sys.Stats().Transactions
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot the deployment under the same manager key and journal dir.
	sys2, err := biot.NewSystemWithKey(cfg, managerKey)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if got := sys2.Stats().Transactions; got != sizeBefore {
		t.Errorf("transactions after reboot = %d, want %d", got, sizeBefore)
	}
	dev2, err := sys2.NewDevice(biot.DeviceConfig{Key: deviceKey}, nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := dev2.FetchReading(info.ID, nil)
	if err != nil {
		t.Fatalf("fetch after reboot: %v", err)
	}
	if string(body) != "journaled" {
		t.Errorf("reading = %q", body)
	}
}

func TestFacadeMultiGatewayConsistency(t *testing.T) {
	ctx := context.Background()
	sys, err := biot.NewSystem(biot.SystemConfig{Credit: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	gwA, err := sys.AddGateway(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gwB, err := sys.AddGateway(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Gateways()) != 2 {
		t.Fatalf("gateways = %d", len(sys.Gateways()))
	}

	devA, err := sys.NewDevice(biot.DeviceConfig{}, gwA)
	if err != nil {
		t.Fatal(err)
	}
	sys.AuthorizeDevice(devA.Key())
	if err := sys.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	info, err := devA.PostReading(ctx, []byte("via A"))
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast is asynchronous; Flush is the cross-gateway barrier.
	if err := sys.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	devB, err := sys.NewDevice(biot.DeviceConfig{Key: devA.Key()}, gwB)
	if err != nil {
		t.Fatal(err)
	}
	body, err := devB.FetchReading(info.ID, nil)
	if err != nil {
		t.Fatalf("fetch via B: %v", err)
	}
	if string(body) != "via A" {
		t.Errorf("reading = %q", body)
	}
}

func TestFacadePolicyOptions(t *testing.T) {
	params := fastParams()
	for _, policy := range []biot.DifficultyPolicy{
		biot.AdditivePolicy(params),
		biot.InversePolicy(params),
		biot.StaticPolicy(params.InitialDifficulty),
	} {
		sys, err := biot.NewSystem(biot.SystemConfig{Credit: params, Policy: policy})
		if err != nil {
			t.Fatalf("policy %s: %v", policy.Name(), err)
		}
		addr := sys.Manager().Address()
		if d := sys.DifficultyFor(addr); d < 1 {
			t.Errorf("policy %s difficulty = %d", policy.Name(), d)
		}
		_ = sys.Close()
	}
}

func TestFacadeIsSensitiveHelper(t *testing.T) {
	ctx := context.Background()
	sys, dev := newAuthorizedSystem(t, biot.SystemConfig{Credit: fastParams()})
	info, err := dev.PostReading(ctx, []byte("plain"))
	if err != nil {
		t.Fatal(err)
	}
	tx, err := sys.ManagerGateway().Node().GetTransaction(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	sensitive, err := biot.IsSensitive(tx.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if sensitive {
		t.Error("plaintext flagged sensitive")
	}
}

func TestFacadeKeyLifecycle(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sys, owner := newAuthorizedSystem(t, biot.SystemConfig{Credit: fastParams()})
	reader, err := sys.NewDevice(biot.DeviceConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.AuthorizeDevice(reader.Key())
	if err := sys.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}

	if err := sys.DistributeKey(ctx, owner); err != nil {
		t.Fatalf("distribute: %v", err)
	}
	first, _ := sys.IssuedKey(owner)

	// Share with the reader: both now hold the same key.
	if err := sys.ShareKey(ctx, owner, reader); err != nil {
		t.Fatalf("share: %v", err)
	}
	if !reader.HasDataKey() {
		t.Fatal("reader missing shared key")
	}
	info, err := owner.PostReading(ctx, []byte("group data"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := reader.FetchReading(info.ID, &first)
	if err != nil || string(body) != "group data" {
		t.Errorf("shared fetch: %q, %v", body, err)
	}

	// Rotate the owner's key: a fresh key replaces the old one.
	if err := sys.RotateKey(ctx, owner); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	second, ok := sys.IssuedKey(owner)
	if !ok {
		t.Fatal("no key after rotation")
	}
	if second == first {
		t.Error("rotation kept the old key")
	}
	info2, err := owner.PostReading(ctx, []byte("rotated data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.FetchReading(info2.ID, &first); err == nil {
		t.Error("old key decrypted rotated data")
	}
	if body, err := owner.FetchReading(info2.ID, &second); err != nil || string(body) != "rotated data" {
		t.Errorf("rotated fetch: %q, %v", body, err)
	}
}

func TestGatewayServeRPCLifecycle(t *testing.T) {
	ctx := context.Background()
	sys, err := biot.NewSystem(biot.SystemConfig{Credit: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	gw, err := sys.AddGateway(ctx)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.ServeRPC("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		t.Fatal("empty bound address")
	}
	if _, err := gw.ServeRPC("127.0.0.1:0"); err == nil {
		t.Error("double ServeRPC accepted")
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if len(sys.ManagerPublic()) == 0 {
		t.Error("empty manager public key")
	}
}

func TestDeviceFetchReadingWrongKind(t *testing.T) {
	ctx := context.Background()
	sys, dev := newAuthorizedSystem(t, biot.SystemConfig{Credit: fastParams()})
	sys.Mint(dev.Address(), 10)
	info, err := dev.Transfer(ctx, dev.Address(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.FetchReading(info.ID, nil); err == nil {
		t.Error("FetchReading accepted a transfer transaction")
	}
}

func TestSystemZeroConfigDefaults(t *testing.T) {
	// A downstream user's first program: zero-value config must work
	// out of the box with the paper's default parameters (D0 = 11,
	// ≈2048 expected hashes per PoW — fast even on modest hardware).
	ctx := context.Background()
	sys, err := biot.NewSystem(biot.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	dev, err := sys.NewDevice(biot.DeviceConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.AuthorizeDevice(dev.Key())
	if err := sys.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	info, err := dev.PostReading(ctx, []byte("hello, tangle"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := dev.FetchReading(info.ID, nil)
	if err != nil || string(body) != "hello, tangle" {
		t.Errorf("zero-config round trip: %q, %v", body, err)
	}
	if d := sys.DifficultyFor(dev.Address()); d != 11 {
		t.Errorf("default difficulty = %d, want the paper's 11", d)
	}
}
