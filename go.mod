module github.com/b-iot/biot

go 1.22
