// Package attack implements injectors for the paper's §III threat
// model: double-spending, lazy tips, Sybil flooding, and DDoS-style
// submission floods. The security experiments (§VI-C, reproduced by
// internal/experiments.SecurityMatrix) drive these against a live
// deployment and measure the system's reaction: authorization rejects
// the Sybil/DDoS traffic, the tangle detects lazy tips and conflicts,
// and the credit mechanism raises the attackers' PoW difficulty.
package attack

import (
	"context"
	"errors"
	"fmt"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/pow"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// Attacker is a malicious light node: it shares an honest device's key
// machinery but bypasses the honest submission pipeline to craft
// protocol-violating transactions.
type Attacker struct {
	key    *identity.KeyPair
	gw     node.Gateway
	worker *pow.Worker
	clk    clock.Clock

	// lazyTrunk/lazyBranch is the "fixed pair of very old transactions"
	// a lazy attacker keeps approving; pinned on first use.
	lazyTrunk  hashutil.Hash
	lazyBranch hashutil.Hash
}

// Config configures an attacker.
type Config struct {
	// Key is the attacker's account (may be authorized or not,
	// depending on the scenario).
	Key *identity.KeyPair
	// Gateway is the full node under attack.
	Gateway node.Gateway
	// Worker runs the attacker's PoW; the paper assumes "attackers have
	// limited computation capability ... close to IoT devices".
	Worker *pow.Worker
	// Clock stamps transactions; nil selects the real clock.
	Clock clock.Clock
}

// ErrNoAttackSurface reports a missing gateway or key.
var ErrNoAttackSurface = errors.New("attacker requires a key and a gateway")

// New creates an attacker.
func New(cfg Config) (*Attacker, error) {
	if cfg.Key == nil || cfg.Gateway == nil {
		return nil, ErrNoAttackSurface
	}
	w := cfg.Worker
	if w == nil {
		w = &pow.Worker{}
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real()
	}
	return &Attacker{key: cfg.Key, gw: cfg.Gateway, worker: w, clk: clk}, nil
}

// Address returns the attacker's account address.
func (a *Attacker) Address() identity.Address { return a.key.Address() }

// buildAndSubmit signs, mines at the gateway-required difficulty, and
// submits one transaction with the given parents.
func (a *Attacker) buildAndSubmit(ctx context.Context, trunk, branch hashutil.Hash, kind txn.Kind, payload []byte) (tangle.Info, error) {
	t := &txn.Transaction{
		Trunk:     trunk,
		Branch:    branch,
		Timestamp: a.clk.Now(),
		Kind:      kind,
		Payload:   payload,
	}
	t.Sign(a.key)
	difficulty := a.gw.DifficultyFor(a.key.Address())
	if _, err := a.worker.Attach(ctx, t, difficulty); err != nil {
		return tangle.Info{}, fmt.Errorf("attacker pow: %w", err)
	}
	return a.gw.Submit(ctx, t)
}

// DoubleSpend submits two conflicting transfers of the same spend
// sequence to different recipients — "a malicious node wants to spend
// the same token twice or more through submitting multiple transactions
// before the previous one is verified". It returns both submission
// results; the second may succeed at admission (the conflict is a
// ledger-level event) or be rejected outright.
func (a *Attacker) DoubleSpend(ctx context.Context, victim1, victim2 identity.Address, amount, seq uint64) (first, second tangle.Info, err error) {
	trunk, branch, err := a.gw.TipsForApproval()
	if err != nil {
		return tangle.Info{}, tangle.Info{}, fmt.Errorf("get tips: %w", err)
	}
	first, err = a.buildAndSubmit(ctx, trunk, branch, txn.KindTransfer,
		txn.EncodeTransfer(txn.Transfer{To: victim1, Amount: amount, Seq: seq}))
	if err != nil {
		return tangle.Info{}, tangle.Info{}, fmt.Errorf("first spend: %w", err)
	}
	// The conflicting spend approves fresh tips so both attach cleanly.
	trunk2, branch2, err := a.gw.TipsForApproval()
	if err != nil {
		return first, tangle.Info{}, fmt.Errorf("get tips: %w", err)
	}
	second, err = a.buildAndSubmit(ctx, trunk2, branch2, txn.KindTransfer,
		txn.EncodeTransfer(txn.Transfer{To: victim2, Amount: amount, Seq: seq}))
	if err != nil {
		return first, tangle.Info{}, fmt.Errorf("second spend: %w", err)
	}
	return first, second, nil
}

// PinLazyParents fixes the parent pair the lazy attacker will keep
// approving. Call once while those transactions are fresh; subsequent
// LazySubmit calls reuse them forever.
func (a *Attacker) PinLazyParents(trunk, branch hashutil.Hash) {
	a.lazyTrunk = trunk
	a.lazyBranch = branch
}

// ErrNoLazyParents reports LazySubmit before PinLazyParents.
var ErrNoLazyParents = errors.New("lazy parents not pinned")

// LazySubmit issues a transaction that approves the pinned stale pair
// instead of current tips — the §III "lazy tips" behaviour.
func (a *Attacker) LazySubmit(ctx context.Context, payload []byte) (tangle.Info, error) {
	if a.lazyTrunk.IsZero() || a.lazyBranch.IsZero() {
		return tangle.Info{}, ErrNoLazyParents
	}
	return a.buildAndSubmit(ctx, a.lazyTrunk, a.lazyBranch, txn.KindData, payload)
}

// HonestSubmit posts a well-formed data transaction (the attacker
// behaving, e.g. before turning malicious in Fig 8's timeline).
func (a *Attacker) HonestSubmit(ctx context.Context, payload []byte) (tangle.Info, error) {
	trunk, branch, err := a.gw.TipsForApproval()
	if err != nil {
		return tangle.Info{}, fmt.Errorf("get tips: %w", err)
	}
	return a.buildAndSubmit(ctx, trunk, branch, txn.KindData, payload)
}

// SybilResult summarizes a Sybil flood.
type SybilResult struct {
	Identities int
	Accepted   int
	Rejected   int
}

// SybilFlood fabricates n fresh identities and submits one transaction
// from each — "evil nodes, which pretend multiple identities
// illegitimately". Against a correct deployment every submission is
// rejected at the authorization gate, before any ledger work happens.
func SybilFlood(ctx context.Context, gw node.Gateway, worker *pow.Worker, clk clock.Clock, n int) (SybilResult, error) {
	res := SybilResult{Identities: n}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		key, err := identity.Generate()
		if err != nil {
			return res, fmt.Errorf("fabricate identity: %w", err)
		}
		atk, err := New(Config{Key: key, Gateway: gw, Worker: worker, Clock: clk})
		if err != nil {
			return res, err
		}
		if _, err := atk.HonestSubmit(ctx, []byte("sybil probe")); err != nil {
			res.Rejected++
		} else {
			res.Accepted++
		}
	}
	return res, nil
}

// FloodResult summarizes a DDoS-style submission flood.
type FloodResult struct {
	Sent        int
	Accepted    int
	RateLimited int
	OtherErrors int
}

// Flood submits n transactions from one (authorized) identity as fast
// as PoW allows, measuring how many the gateway's rate limiter absorbs.
func (a *Attacker) Flood(ctx context.Context, n int) (FloodResult, error) {
	var res FloodResult
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Sent++
		_, err := a.HonestSubmit(ctx, []byte(fmt.Sprintf("flood %d", i)))
		switch {
		case err == nil:
			res.Accepted++
		case errors.Is(err, node.ErrRateLimited):
			res.RateLimited++
		default:
			res.OtherErrors++
		}
	}
	return res, nil
}
