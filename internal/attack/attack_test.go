package attack

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/tangle"
)

type fixture struct {
	mgr  *node.Manager
	full *node.FullNode
	clk  *clock.Virtual
}

func newFixture(t *testing.T, rateLimit int) *fixture {
	t.Helper()
	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams()
	params.InitialDifficulty = 4
	params.MinDifficulty = 1
	params.MaxDifficulty = 20
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     params,
		Clock:      clk,
		RateLimit:  rateLimit,
		RateWindow: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{mgr: mgr, full: full, clk: clk}
}

func (f *fixture) authorize(t *testing.T) *identity.KeyPair {
	t.Helper()
	key, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	f.mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
	if _, err := f.mgr.PublishAuthorization(context.Background()); err != nil {
		t.Fatal(err)
	}
	return key
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoAttackSurface) {
		t.Errorf("err = %v", err)
	}
}

func TestDoubleSpendPunished(t *testing.T) {
	f := newFixture(t, 0)
	key := f.authorize(t)
	atk, err := New(Config{Key: key, Gateway: f.full, Clock: f.clk})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := identity.Generate()
	v2, _ := identity.Generate()

	before := f.full.DifficultyFor(atk.Address())
	first, second, err := atk.DoubleSpend(context.Background(), v1.Address(), v2.Address(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Second)
	after := f.full.DifficultyFor(atk.Address())
	if after <= before {
		t.Errorf("difficulty %d → %d, want raised", before, after)
	}
	events := f.full.Engine().Ledger().Events(atk.Address())
	found := false
	for _, ev := range events {
		if ev.Behaviour == core.BehaviourDoubleSpend {
			found = true
		}
	}
	if !found {
		t.Error("no double-spend event recorded")
	}
	fi, err := f.full.InfoOf(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	si, err := f.full.InfoOf(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	if fi.Status == tangle.StatusRejected {
		rejected++
	}
	if si.Status == tangle.StatusRejected {
		rejected++
	}
	if rejected != 1 {
		t.Errorf("rejected = %d conflicting spends, want exactly 1", rejected)
	}
}

func TestLazyAttackerDetected(t *testing.T) {
	f := newFixture(t, 0)
	honest := f.authorize(t)
	lazyKey := f.authorize(t)

	honestDev, err := node.NewLight(node.LightConfig{Key: honest, Gateway: f.full, Clock: f.clk})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := honestDev.PostReading(context.Background(), []byte("seed")); err != nil {
		t.Fatal(err)
	}
	trunk, branch, err := f.full.TipsForApproval()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := New(Config{Key: lazyKey, Gateway: f.full, Clock: f.clk})
	if err != nil {
		t.Fatal(err)
	}
	atk.PinLazyParents(trunk, branch)

	// Frontier moves; time passes beyond the 30 s lazy threshold.
	for i := 0; i < 3; i++ {
		f.clk.Advance(20 * time.Second)
		if _, err := honestDev.PostReading(context.Background(), []byte("fresh")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := atk.LazySubmit(context.Background(), []byte("lazy")); err != nil {
		t.Fatal(err)
	}
	events := f.full.Engine().Ledger().Events(atk.Address())
	lazy := 0
	for _, ev := range events {
		if ev.Behaviour == core.BehaviourLazyTips {
			lazy++
		}
	}
	if lazy != 1 {
		t.Errorf("lazy events = %d, want 1", lazy)
	}
}

func TestLazySubmitRequiresPinnedParents(t *testing.T) {
	f := newFixture(t, 0)
	key := f.authorize(t)
	atk, err := New(Config{Key: key, Gateway: f.full, Clock: f.clk})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atk.LazySubmit(context.Background(), []byte("x")); !errors.Is(err, ErrNoLazyParents) {
		t.Errorf("err = %v", err)
	}
}

func TestSybilFloodAllRejected(t *testing.T) {
	f := newFixture(t, 0)
	res, err := SybilFlood(context.Background(), f.full, nil, f.clk, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Rejected != 15 {
		t.Errorf("sybil result = %+v", res)
	}
	// The ledger carries no trace beyond genesis: the gate held before
	// any tangle work.
	if size := f.full.Tangle().Size(); size != 2 {
		t.Errorf("tangle size = %d after sybil flood", size)
	}
}

func TestFloodHitsRateLimit(t *testing.T) {
	f := newFixture(t, 5)
	key := f.authorize(t)
	atk, err := New(Config{Key: key, Gateway: f.full, Clock: f.clk})
	if err != nil {
		t.Fatal(err)
	}
	res, err := atk.Flood(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	// Virtual clock is frozen, so all 20 land in one window: 5 pass.
	if res.Accepted > 6 {
		t.Errorf("accepted = %d with limit 5", res.Accepted)
	}
	if res.RateLimited < 14 {
		t.Errorf("rate limited = %d", res.RateLimited)
	}
}

func TestHonestSubmitBuildsCredit(t *testing.T) {
	f := newFixture(t, 0)
	key := f.authorize(t)
	atk, err := New(Config{Key: key, Gateway: f.full, Clock: f.clk})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := atk.HonestSubmit(context.Background(), []byte("good")); err != nil {
			t.Fatal(err)
		}
	}
	c := f.full.Engine().CreditOf(atk.Address(), f.clk.Now())
	if c.CrP <= 0 || c.CrN != 0 {
		t.Errorf("credit after honest behaviour = %+v", c)
	}
}
