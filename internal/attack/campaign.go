package attack

import (
	"context"
	"errors"
	"fmt"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/pow"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// ParasiteChainResult summarizes a parasite-chain campaign.
type ParasiteChainResult struct {
	// HonestSpend is the attacker's public spend.
	HonestSpend tangle.Info
	// ParasiteSpend is the conflicting spend the side chain tries to
	// bury into acceptance.
	ParasiteSpend tangle.Info
	// Links counts side-chain transactions attempted on top of the
	// parasite spend; Accepted/Rejected split them by admission result.
	Links    int
	Accepted int
	Rejected int
}

// ParasiteChain mounts the §III double-spend variant that evades lazy-
// tip detection: the attacker publishes an honest-looking transfer,
// then immediately re-spends the same sequence rooted at the *same*
// pre-spend tips, and grows a self-approving side chain on top of the
// conflicting spend — each link approves only the attacker's own
// previous transaction instead of validating honest tips. Because
// every parent in the chain is fresh, the tangle's stale-anchor check
// never fires; the defence that must hold is the conflict event (the
// credit penalty raising the attacker's difficulty) plus cumulative-
// weight conflict resolution.
func (a *Attacker) ParasiteChain(ctx context.Context, victim1, victim2 identity.Address, amount, seq uint64, links int) (ParasiteChainResult, error) {
	var res ParasiteChainResult
	trunk, branch, err := a.gw.TipsForApproval()
	if err != nil {
		return res, fmt.Errorf("get root tips: %w", err)
	}
	res.HonestSpend, err = a.buildAndSubmit(ctx, trunk, branch, txn.KindTransfer,
		txn.EncodeTransfer(txn.Transfer{To: victim1, Amount: amount, Seq: seq}))
	if err != nil {
		return res, fmt.Errorf("honest spend: %w", err)
	}
	// The conflicting spend approves the pre-spend tips, so the side
	// chain forks the ledger from just before the honest spend.
	res.ParasiteSpend, err = a.buildAndSubmit(ctx, trunk, branch, txn.KindTransfer,
		txn.EncodeTransfer(txn.Transfer{To: victim2, Amount: amount, Seq: seq}))
	if err != nil {
		return res, fmt.Errorf("parasite spend: %w", err)
	}
	prev := res.ParasiteSpend.ID
	for i := 0; i < links; i++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Links++
		info, err := a.buildAndSubmit(ctx, prev, prev, txn.KindData,
			[]byte(fmt.Sprintf("parasite link %d", i)))
		if err != nil {
			// The double-spend event lands between the difficulty query
			// and admission exactly once; one refresh absorbs it.
			if errors.Is(err, node.ErrWrongDifficulty) {
				if info, err = a.buildAndSubmit(ctx, prev, prev, txn.KindData,
					[]byte(fmt.Sprintf("parasite link %d retry", i))); err == nil {
					res.Accepted++
					prev = info.ID
					continue
				}
			}
			res.Rejected++
			continue
		}
		res.Accepted++
		prev = info.ID
	}
	return res, nil
}

// CreditFarmResult summarizes a credit-farming campaign.
type CreditFarmResult struct {
	// Colluders is the ring size; Submitted/Accepted/Rejected count the
	// ring's micro-transactions.
	Colluders int
	Submitted int
	Accepted  int
	Rejected  int
	// StartDifficulty is the PoW demand for a ring member before
	// farming; EndDifficulty is the lowest demand across the ring after
	// — the quantity the farm tries to drive to the clamp floor.
	StartDifficulty int
	EndDifficulty   int
}

// CreditFarm mounts a credit-farming campaign: a ring of *authorized*
// colluding devices rapidly submits well-formed micro-transactions
// purely to inflate their positive credit and drive their PoW
// difficulty toward the clamp floor, banking cheap capacity for a
// later attack. The submissions are individually honest — the defence
// under test is the credit window itself (rolling CrP expiry and the
// difficulty clamp), not admission.
func CreditFarm(ctx context.Context, gw node.Gateway, worker *pow.Worker, clk clock.Clock, keys []*identity.KeyPair, perKey int) (CreditFarmResult, error) {
	res := CreditFarmResult{Colluders: len(keys)}
	if len(keys) == 0 {
		return res, ErrNoAttackSurface
	}
	attackers := make([]*Attacker, len(keys))
	for i, key := range keys {
		atk, err := New(Config{Key: key, Gateway: gw, Worker: worker, Clock: clk})
		if err != nil {
			return res, err
		}
		attackers[i] = atk
	}
	res.StartDifficulty = gw.DifficultyFor(keys[0].Address())
	// Round-robin so every ring member's credit window fills evenly.
	for i := 0; i < perKey; i++ {
		for k, atk := range attackers {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			res.Submitted++
			_, err := atk.HonestSubmit(ctx, []byte(fmt.Sprintf("farm %d/%d", k, i)))
			if err != nil {
				res.Rejected++
				continue
			}
			res.Accepted++
		}
	}
	res.EndDifficulty = gw.DifficultyFor(keys[0].Address())
	for _, key := range keys[1:] {
		if d := gw.DifficultyFor(key.Address()); d < res.EndDifficulty {
			res.EndDifficulty = d
		}
	}
	return res, nil
}
