package attack

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/identity"
)

// assertCreditParity checks every known account's incrementally-
// maintained credit against the from-scratch RescanCredit oracle at
// the given instant. The incremental evaluator caches a rolling CrP
// window and a CrN decay snapshot; attack-shaped event streams (bursts
// of same-instant records, malicious events landing mid-window,
// evaluation instants jumping around) are exactly the inputs that
// would expose a stale cache.
func assertCreditParity(t *testing.T, ledger *core.Ledger, now time.Time) {
	t.Helper()
	const eps = 1e-9
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
	}
	for _, addr := range ledger.Nodes() {
		oracle := ledger.RescanCredit(addr, now)
		got := ledger.CreditOf(addr, now)
		if !close(got.CrP, oracle.CrP) || !close(got.CrN, oracle.CrN) || !close(got.Cr, oracle.Cr) {
			t.Fatalf("credit parity broken for %s at %v:\n  incremental %+v\n  oracle      %+v",
				addr.Short(), now, got, oracle)
		}
	}
}

func TestParasiteChainPunishedWithCreditParity(t *testing.T) {
	f := newFixture(t, 0)
	honest := f.authorize(t)
	atkKey := f.authorize(t)
	ctx := context.Background()

	hon, err := New(Config{Key: honest, Gateway: f.full, Clock: f.clk})
	if err != nil {
		t.Fatal(err)
	}
	// Honest background traffic so the parasite has a frontier to fork.
	for i := 0; i < 3; i++ {
		if _, err := hon.HonestSubmit(ctx, []byte("background")); err != nil {
			t.Fatal(err)
		}
		f.clk.Advance(time.Second)
	}

	atk, err := New(Config{Key: atkKey, Gateway: f.full, Clock: f.clk})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := identity.Generate()
	v2, _ := identity.Generate()
	before := f.full.DifficultyFor(atk.Address())

	res, err := atk.ParasiteChain(ctx, v1.Address(), v2.Address(), 10, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 {
		t.Fatalf("parasite chain grew no links: %+v", res)
	}

	ledger := f.full.Engine().Ledger()
	events := ledger.Events(atk.Address())
	doubleSpends := 0
	for _, ev := range events {
		if ev.Behaviour == core.BehaviourDoubleSpend {
			doubleSpends++
		}
	}
	if doubleSpends == 0 {
		t.Error("parasite chain's conflicting spend left no double-spend event")
	}
	f.clk.Advance(time.Second)
	if after := f.full.DifficultyFor(atk.Address()); after <= before {
		t.Errorf("attacker difficulty %d → %d, want raised", before, after)
	}
	if hd := f.full.DifficultyFor(hon.Address()); f.full.DifficultyFor(atk.Address()) <= hd {
		t.Errorf("attacker difficulty %d not above honest %d",
			f.full.DifficultyFor(atk.Address()), hd)
	}

	// Parity at a spread of instants: mid-window, at the window edge
	// (records expiring), and far past it (CrN decayed to nothing).
	assertCreditParity(t, ledger, f.clk.Now())
	for _, step := range []time.Duration{time.Second, 10 * time.Second, 25 * time.Second, 2 * time.Minute} {
		f.clk.Advance(step)
		assertCreditParity(t, ledger, f.clk.Now())
	}
	// Evaluating in the past (a skewed peer's view) must also agree.
	assertCreditParity(t, ledger, f.clk.Now().Add(-15*time.Second))
	assertCreditParity(t, ledger, f.clk.Now())
}

func TestCreditFarmRingDifficultyAndParity(t *testing.T) {
	f := newFixture(t, 0)
	ctx := context.Background()
	keys := make([]*identity.KeyPair, 3)
	for i := range keys {
		keys[i] = f.authorize(t)
	}

	res, err := CreditFarm(ctx, f.full, nil, f.clk, keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != res.Submitted || res.Rejected != 0 {
		t.Fatalf("authorized ring should farm unimpeded at admission: %+v", res)
	}
	if res.EndDifficulty > res.StartDifficulty {
		t.Errorf("farming raised difficulty %d → %d; want monotone non-increasing toward the clamp floor",
			res.StartDifficulty, res.EndDifficulty)
	}
	ledger := f.full.Engine().Ledger()
	if floor := ledger.Params().MinDifficulty; res.EndDifficulty < floor {
		t.Errorf("difficulty %d fell below the clamp floor %d", res.EndDifficulty, floor)
	}

	assertCreditParity(t, ledger, f.clk.Now())

	// The farmed CrP must expire with the rolling window: once ΔT
	// passes with the ring silent, its difficulty advantage is gone —
	// and the incremental window must agree with the oracle both while
	// draining and after.
	deltaT := ledger.Params().DeltaT
	for i := 0; i < 4; i++ {
		f.clk.Advance(deltaT / 3)
		assertCreditParity(t, ledger, f.clk.Now())
	}
	post := f.full.Engine().CreditOf(keys[0].Address(), f.clk.Now())
	if post.CrP != 0 {
		t.Errorf("farmed CrP = %v after the window drained, want 0", post.CrP)
	}

	// Pruning expired records rebuilds incremental state; parity must
	// survive it.
	ledger.Prune(f.clk.Now(), deltaT)
	assertCreditParity(t, ledger, f.clk.Now())
	f.clk.Advance(time.Second)
	assertCreditParity(t, ledger, f.clk.Now())
}
