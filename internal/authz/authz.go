// Package authz implements B-IoT's blockchain-based device management
// (paper §IV-A3, Eqn 1):
//
//	TX = Sign_SKM(PK_d1, PK_d2, ..., PK_dn)
//
// "Only the manager has the rights to publish or update the
// authorization list of devices"; the manager's public key is pinned in
// the genesis configuration. Gateways fetch the latest list from the
// ledger and "decline to provide services for unauthorized IoT devices",
// which is the system's defense against Sybil and DDoS attacks (§VI-C).
package authz

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

// List is the payload of a KindAuthorization transaction: the complete
// current set of authorized entities. Lists are whole-state (not deltas)
// so "deauthorize" is simply publishing a list without the device; the
// highest sequence wins.
type List struct {
	// Seq orders list updates; gateways apply the highest seen.
	Seq uint64 `json:"seq"`
	// Devices are hex-encoded public keys of authorized IoT devices.
	Devices []string `json:"devices"`
	// Gateways are hex-encoded public keys of recognized full nodes.
	Gateways []string `json:"gateways"`
}

// EncodeList serializes a list payload.
func EncodeList(l List) ([]byte, error) {
	data, err := json.Marshal(l)
	if err != nil {
		return nil, fmt.Errorf("encode authorization list: %w", err)
	}
	return data, nil
}

// DecodeList parses a list payload.
func DecodeList(data []byte) (List, error) {
	var l List
	if err := json.Unmarshal(data, &l); err != nil {
		return List{}, fmt.Errorf("decode authorization list: %w", err)
	}
	return l, nil
}

// Registry is the gateway-side view of the authorization state. Safe for
// concurrent use.
type Registry struct {
	manager identity.Address

	mu        sync.RWMutex
	seq       uint64
	appliedAt time.Time
	devices   map[identity.Address]identity.PublicKey
	gateways  map[identity.Address]identity.PublicKey

	// Historical list versions for evidence-at-admission checks (see
	// window.go): sequence → member-set, bounded by maxVersions and the
	// snapshot-grid PruneVersions. prunedThrough is the floor below
	// which versions have been discarded.
	versions      map[uint64]*memberView
	prunedThrough uint64
	maxVersions   int
}

// Registry errors.
var (
	ErrNotManager    = errors.New("authorization update not issued by the manager")
	ErrNotAuthList   = errors.New("transaction is not an authorization list")
	ErrStaleList     = errors.New("authorization list sequence not newer than applied")
	ErrUnauthorized  = errors.New("device not authorized")
	ErrBadListedKey  = errors.New("authorization list contains malformed key")
	ErrNilManagerKey = errors.New("registry requires the manager address")
)

// NewRegistry creates a registry trusting lists signed by manager — the
// address whose key is "hard-coded into genesis config".
func NewRegistry(manager identity.Address) (*Registry, error) {
	if manager.IsZero() {
		return nil, ErrNilManagerKey
	}
	return &Registry{
		manager:     manager,
		devices:     make(map[identity.Address]identity.PublicKey),
		gateways:    make(map[identity.Address]identity.PublicKey),
		versions:    make(map[uint64]*memberView),
		maxVersions: DefaultMaxVersions,
	}, nil
}

// Manager returns the pinned manager address.
func (r *Registry) Manager() identity.Address { return r.manager }

// Apply validates and applies an authorization transaction: the issuer
// must be the pinned manager, the transaction signature must already be
// verified by the caller (gateways verify before attach), and the list
// sequence must be newer than any applied. A stale sequence returns
// ErrStaleList — but the list is still recorded in the historical
// version window first (it is authoritative for its own sequence);
// callers that treat stale deliveries as ordinary history should use
// Observe instead.
func (r *Registry) Apply(t *txn.Transaction, at time.Time) error {
	applied, list, err := r.observe(t, at)
	if err != nil {
		return err
	}
	if !applied {
		return fmt.Errorf("%w: got %d, applied %d", ErrStaleList, list.Seq, r.Seq())
	}
	return nil
}

// IsAuthorizedDevice reports whether addr may submit transactions. The
// manager itself is always authorized.
func (r *Registry) IsAuthorizedDevice(addr identity.Address) bool {
	if addr == r.manager {
		return true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.devices[addr]
	return ok
}

// IsGateway reports whether addr is a recognized full node.
func (r *Registry) IsGateway(addr identity.Address) bool {
	if addr == r.manager {
		return true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.gateways[addr]
	return ok
}

// DeviceKey returns the public key registered for a device address.
func (r *Registry) DeviceKey(addr identity.Address) (identity.PublicKey, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pub, ok := r.devices[addr]
	return pub, ok
}

// Seq returns the applied list sequence.
func (r *Registry) Seq() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seq
}

// Devices returns the authorized device addresses, sorted.
func (r *Registry) Devices() []identity.Address {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]identity.Address, 0, len(r.devices))
	for addr := range r.devices {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Builder helps the manager construct successive authorization lists.
type Builder struct {
	mu       sync.Mutex
	seq      uint64
	devices  map[string]struct{}
	gateways map[string]struct{}
}

// NewBuilder creates an empty list builder.
func NewBuilder() *Builder {
	return &Builder{
		devices:  make(map[string]struct{}),
		gateways: make(map[string]struct{}),
	}
}

// AuthorizeDevice adds a device key to the next list.
func (b *Builder) AuthorizeDevice(pub identity.PublicKey) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.devices[identity.EncodePublic(pub)] = struct{}{}
}

// DeauthorizeDevice removes a device key from the next list.
func (b *Builder) DeauthorizeDevice(pub identity.PublicKey) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.devices, identity.EncodePublic(pub))
}

// RegisterGateway adds a gateway key to the next list.
func (b *Builder) RegisterGateway(pub identity.PublicKey) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gateways[identity.EncodePublic(pub)] = struct{}{}
}

// SeedSeq raises the builder's sequence so the next list supersedes an
// already-applied one. A restarted manager replays its own published
// lists out of the journal (they are retained across snapshots); its
// next list must continue that sequence, not collide with it.
func (b *Builder) SeedSeq(seq uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if seq > b.seq {
		b.seq = seq
	}
}

// Next produces the next List payload, bumping the sequence.
func (b *Builder) Next() List {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	list := List{Seq: b.seq}
	for k := range b.devices {
		list.Devices = append(list.Devices, k)
	}
	for k := range b.gateways {
		list.Gateways = append(list.Gateways, k)
	}
	sort.Strings(list.Devices)
	sort.Strings(list.Gateways)
	return list
}
