package authz

import (
	"errors"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

func mustKey(t *testing.T) *identity.KeyPair {
	t.Helper()
	k, err := identity.Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return k
}

func authTx(t *testing.T, issuer *identity.KeyPair, list List) *txn.Transaction {
	t.Helper()
	payload, err := EncodeList(list)
	if err != nil {
		t.Fatal(err)
	}
	tx := &txn.Transaction{
		Trunk:     hashutil.Sum([]byte("t")),
		Branch:    hashutil.Sum([]byte("b")),
		Timestamp: time.Unix(1, 0),
		Kind:      txn.KindAuthorization,
		Payload:   payload,
	}
	tx.Sign(issuer)
	return tx
}

func TestListRoundTrip(t *testing.T) {
	in := List{Seq: 3, Devices: []string{"aa", "bb"}, Gateways: []string{"cc"}}
	data, err := EncodeList(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeList(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 3 || len(out.Devices) != 2 || len(out.Gateways) != 1 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestDecodeListErrors(t *testing.T) {
	if _, err := DecodeList([]byte("{not json")); err == nil {
		t.Error("malformed list decoded")
	}
}

func TestRegistryApplyAndQuery(t *testing.T) {
	manager := mustKey(t)
	device := mustKey(t)
	gateway := mustKey(t)
	reg, err := NewRegistry(manager.Address())
	if err != nil {
		t.Fatal(err)
	}
	if reg.IsAuthorizedDevice(device.Address()) {
		t.Error("device authorized before any list")
	}
	if !reg.IsAuthorizedDevice(manager.Address()) {
		t.Error("manager not self-authorized")
	}

	tx := authTx(t, manager, List{
		Seq:      1,
		Devices:  []string{identity.EncodePublic(device.Public())},
		Gateways: []string{identity.EncodePublic(gateway.Public())},
	})
	if err := reg.Apply(tx, time.Unix(2, 0)); err != nil {
		t.Fatal(err)
	}
	if !reg.IsAuthorizedDevice(device.Address()) {
		t.Error("device not authorized after list")
	}
	if !reg.IsGateway(gateway.Address()) {
		t.Error("gateway not recognized")
	}
	if reg.Seq() != 1 {
		t.Errorf("seq = %d", reg.Seq())
	}
	pub, ok := reg.DeviceKey(device.Address())
	if !ok || identity.EncodePublic(pub) != identity.EncodePublic(device.Public()) {
		t.Error("device key lookup failed")
	}
	devices := reg.Devices()
	if len(devices) != 1 || devices[0] != device.Address() {
		t.Errorf("devices = %v", devices)
	}
}

func TestRegistryRejectsNonManager(t *testing.T) {
	manager := mustKey(t)
	impostor := mustKey(t)
	reg, err := NewRegistry(manager.Address())
	if err != nil {
		t.Fatal(err)
	}
	tx := authTx(t, impostor, List{Seq: 1})
	if err := reg.Apply(tx, time.Unix(2, 0)); !errors.Is(err, ErrNotManager) {
		t.Errorf("err = %v, want ErrNotManager", err)
	}
}

func TestRegistryRejectsStaleList(t *testing.T) {
	manager := mustKey(t)
	device := mustKey(t)
	reg, err := NewRegistry(manager.Address())
	if err != nil {
		t.Fatal(err)
	}
	deviceHex := identity.EncodePublic(device.Public())
	if err := reg.Apply(authTx(t, manager, List{Seq: 5, Devices: []string{deviceHex}}), time.Unix(2, 0)); err != nil {
		t.Fatal(err)
	}
	// Replaying an old (or same-seq) list must not roll back state.
	if err := reg.Apply(authTx(t, manager, List{Seq: 5}), time.Unix(3, 0)); !errors.Is(err, ErrStaleList) {
		t.Errorf("err = %v, want ErrStaleList", err)
	}
	if err := reg.Apply(authTx(t, manager, List{Seq: 4}), time.Unix(3, 0)); !errors.Is(err, ErrStaleList) {
		t.Errorf("err = %v, want ErrStaleList", err)
	}
	if !reg.IsAuthorizedDevice(device.Address()) {
		t.Error("stale list rolled back authorization")
	}
}

func TestDeauthorizationByOmission(t *testing.T) {
	manager := mustKey(t)
	device := mustKey(t)
	reg, err := NewRegistry(manager.Address())
	if err != nil {
		t.Fatal(err)
	}
	deviceHex := identity.EncodePublic(device.Public())
	if err := reg.Apply(authTx(t, manager, List{Seq: 1, Devices: []string{deviceHex}}), time.Unix(2, 0)); err != nil {
		t.Fatal(err)
	}
	// Next list omits the device: deauthorized.
	if err := reg.Apply(authTx(t, manager, List{Seq: 2}), time.Unix(3, 0)); err != nil {
		t.Fatal(err)
	}
	if reg.IsAuthorizedDevice(device.Address()) {
		t.Error("omitted device still authorized")
	}
}

func TestRegistryRejectsWrongKind(t *testing.T) {
	manager := mustKey(t)
	reg, err := NewRegistry(manager.Address())
	if err != nil {
		t.Fatal(err)
	}
	tx := authTx(t, manager, List{Seq: 1})
	tx.Kind = txn.KindData
	if err := reg.Apply(tx, time.Unix(2, 0)); !errors.Is(err, ErrNotAuthList) {
		t.Errorf("err = %v, want ErrNotAuthList", err)
	}
}

func TestRegistryRejectsBadKeys(t *testing.T) {
	manager := mustKey(t)
	reg, err := NewRegistry(manager.Address())
	if err != nil {
		t.Fatal(err)
	}
	tx := authTx(t, manager, List{Seq: 1, Devices: []string{"zzzz"}})
	if err := reg.Apply(tx, time.Unix(2, 0)); !errors.Is(err, ErrBadListedKey) {
		t.Errorf("err = %v, want ErrBadListedKey", err)
	}
}

func TestNewRegistryRequiresManager(t *testing.T) {
	if _, err := NewRegistry(hashutil.Zero); !errors.Is(err, ErrNilManagerKey) {
		t.Errorf("err = %v", err)
	}
}

func TestBuilderLifecycle(t *testing.T) {
	b := NewBuilder()
	d1, d2, gw := mustKey(t), mustKey(t), mustKey(t)
	b.AuthorizeDevice(d1.Public())
	b.AuthorizeDevice(d2.Public())
	b.RegisterGateway(gw.Public())

	l1 := b.Next()
	if l1.Seq != 1 || len(l1.Devices) != 2 || len(l1.Gateways) != 1 {
		t.Errorf("list 1 = %+v", l1)
	}

	b.DeauthorizeDevice(d1.Public())
	l2 := b.Next()
	if l2.Seq != 2 || len(l2.Devices) != 1 {
		t.Errorf("list 2 = %+v", l2)
	}
	if l2.Devices[0] != identity.EncodePublic(d2.Public()) {
		t.Error("wrong device deauthorized")
	}
}

func TestBuilderListsAreSorted(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.AuthorizeDevice(mustKey(t).Public())
	}
	list := b.Next()
	for i := 1; i < len(list.Devices); i++ {
		if list.Devices[i-1] > list.Devices[i] {
			t.Fatal("device list not sorted (non-deterministic payloads)")
		}
	}
}

// Eqn-1 fidelity: the transaction is the manager's signature over the
// device public keys — verify the full path from builder to registry.
func TestEqn1EndToEnd(t *testing.T) {
	manager := mustKey(t)
	devices := []*identity.KeyPair{mustKey(t), mustKey(t), mustKey(t)}
	b := NewBuilder()
	for _, d := range devices {
		b.AuthorizeDevice(d.Public())
	}
	tx := authTx(t, manager, b.Next())
	if err := tx.VerifyBasic(); err != nil {
		t.Fatalf("authorization tx invalid: %v", err)
	}
	reg, err := NewRegistry(manager.Address())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Apply(tx, time.Unix(2, 0)); err != nil {
		t.Fatal(err)
	}
	for _, d := range devices {
		if !reg.IsAuthorizedDevice(d.Address()) {
			t.Errorf("device %s not authorized", d.Address().Short())
		}
	}
}
