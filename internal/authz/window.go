package authz

import (
	"fmt"
	"sort"
	"time"

	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

// Historical list versions: the admission-evidence layer (DESIGN.md
// §15) judges a relayed transaction against the authorization list in
// force when it was first admitted — the list sequence derivable from
// its past cone — not against the receiver's momentary view. That
// needs a bounded window of past member-sets alongside the O(1)
// current view: sequence → members, fed by every manager-signed list
// the node observes (including ones stale for the current view, which
// are still authoritative history for their own sequence), and pruned
// on the same snapshot-epoch grid that bounds the tangle.

// DefaultMaxVersions bounds the retained historical member-sets. The
// window self-evicts lowest-sequence-first past this, raising the
// pruned floor, so registry memory stays O(window) however often the
// manager republishes.
const DefaultMaxVersions = 64

// Verdict is the outcome of an evidence-at-admission membership check.
type Verdict int

const (
	// VerdictUnauthorized: the sender is a member of NO retained list
	// version between the evidence sequence and the current one — a
	// definitive reject (Sybil, or evidence older than the prune floor).
	VerdictUnauthorized Verdict = iota
	// VerdictAuthorized: the sender is a member of the current view or
	// of some retained version at or above the evidence sequence.
	VerdictAuthorized
	// VerdictUnresolved: no membership hit, but at least one sequence in
	// the scan range has not been observed yet — the verdict may flip to
	// Authorized once the missing list arrives, so the transaction
	// should be quarantined, not rejected.
	VerdictUnresolved
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictUnauthorized:
		return "unauthorized"
	case VerdictAuthorized:
		return "authorized"
	case VerdictUnresolved:
		return "unresolved"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// memberView is one retained list version's member-set.
type memberView struct {
	devices  map[identity.Address]struct{}
	gateways map[identity.Address]struct{}
	// recordedAt is the list's (clamped) embedded timestamp — the same
	// deterministic stamp the credit ledger uses — so every node prunes
	// the window identically and a journal replay reconstructs the
	// pre-crash window exactly.
	recordedAt time.Time
}

func (v *memberView) member(addr identity.Address) bool {
	if _, ok := v.devices[addr]; ok {
		return true
	}
	_, ok := v.gateways[addr]
	return ok
}

// Observe validates a manager-signed authorization list and records it
// in the historical version window; if the sequence is newer than the
// applied one (or no list was ever applied) it also becomes the
// current view. Unlike Apply, a stale sequence is NOT an error: the
// list is authoritative history for its own sequence — exactly what a
// gapped or re-ordered delivery needs — and applied=false simply
// reports that the current view did not move. An already-recorded
// sequence is never overwritten.
//
// at should be the list's deterministic record stamp (its embedded
// timestamp clamped to the local clock), so prune decisions replay
// identically.
func (r *Registry) Observe(t *txn.Transaction, at time.Time) (applied bool, err error) {
	applied, _, err = r.observe(t, at)
	return applied, err
}

// observe is the shared validation + window + current-view update
// behind Apply and Observe.
func (r *Registry) observe(t *txn.Transaction, at time.Time) (applied bool, list List, err error) {
	if t.Kind != txn.KindAuthorization {
		return false, List{}, fmt.Errorf("%w: kind %v", ErrNotAuthList, t.Kind)
	}
	if t.Sender() != r.manager {
		return false, List{}, fmt.Errorf("%w: issuer %s", ErrNotManager, t.Sender().Short())
	}
	list, err = DecodeList(t.Payload)
	if err != nil {
		return false, List{}, err
	}

	devices := make(map[identity.Address]identity.PublicKey, len(list.Devices))
	for _, hexKey := range list.Devices {
		pub, err := identity.DecodePublic(hexKey)
		if err != nil {
			return false, list, fmt.Errorf("%w: device %q: %v", ErrBadListedKey, hexKey, err)
		}
		devices[identity.AddressOf(pub)] = pub
	}
	gateways := make(map[identity.Address]identity.PublicKey, len(list.Gateways))
	for _, hexKey := range list.Gateways {
		pub, err := identity.DecodePublic(hexKey)
		if err != nil {
			return false, list, fmt.Errorf("%w: gateway %q: %v", ErrBadListedKey, hexKey, err)
		}
		gateways[identity.AddressOf(pub)] = pub
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	// Record into the historical window. Never overwrite: the first
	// observation of a sequence wins (all copies of a sequence are the
	// same manager-signed list; guarding anyway keeps a hostile replay
	// from perturbing history).
	if list.Seq > r.prunedThrough {
		if _, exists := r.versions[list.Seq]; !exists {
			view := &memberView{
				devices:    make(map[identity.Address]struct{}, len(devices)),
				gateways:   make(map[identity.Address]struct{}, len(gateways)),
				recordedAt: at,
			}
			for addr := range devices {
				view.devices[addr] = struct{}{}
			}
			for addr := range gateways {
				view.gateways[addr] = struct{}{}
			}
			r.versions[list.Seq] = view
			r.enforceCapLocked()
		}
	}

	// Current view: highest sequence wins; an older list parks in the
	// window above but never rolls the live view back.
	first := r.appliedAt.IsZero() && r.seq == 0
	if first || list.Seq > r.seq {
		r.seq = list.Seq
		r.appliedAt = at
		r.devices = devices
		r.gateways = gateways
		applied = true
	}
	return applied, list, nil
}

// enforceCapLocked evicts lowest-sequence versions past the cap,
// raising the pruned floor. The current sequence is never evicted.
func (r *Registry) enforceCapLocked() {
	maxV := r.maxVersions
	if maxV <= 0 {
		maxV = DefaultMaxVersions
	}
	for len(r.versions) > maxV {
		lowest := uint64(0)
		for seq := range r.versions {
			if seq == r.seq {
				continue
			}
			if lowest == 0 || seq < lowest {
				lowest = seq
			}
		}
		if lowest == 0 {
			return
		}
		delete(r.versions, lowest)
		if lowest > r.prunedThrough {
			r.prunedThrough = lowest
		}
	}
}

// EvidenceVerdict judges whether addr was authorized under the
// admission evidence: the highest authorization-list sequence in the
// transaction's past cone. The rule is monotone in this node's
// knowledge — addr is authorized iff it is a member of the current
// view (O(1) fast path) or of ANY retained version from the evidence
// sequence up to the current one. When no membership hit exists but a
// sequence in that range has not been observed yet, the verdict is
// Unresolved and missingSeq names the first gap (every sequence is
// ledger-backed, so a gap is always fillable by sync or an anti-
// entropy probe).
func (r *Registry) EvidenceVerdict(addr identity.Address, evidence uint64) (verdict Verdict, missingSeq uint64) {
	if addr == r.manager {
		return VerdictAuthorized, 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, ok := r.devices[addr]; ok {
		return VerdictAuthorized, 0
	}
	if _, ok := r.gateways[addr]; ok {
		return VerdictAuthorized, 0
	}
	lo := evidence
	if lo < r.prunedThrough+1 {
		lo = r.prunedThrough + 1
	}
	if lo < 1 {
		lo = 1
	}
	var firstMissing uint64
	for s := lo; s <= r.seq; s++ {
		v, ok := r.versions[s]
		if !ok {
			if firstMissing == 0 {
				firstMissing = s
			}
			continue
		}
		if v.member(addr) {
			return VerdictAuthorized, 0
		}
	}
	if firstMissing != 0 {
		return VerdictUnresolved, firstMissing
	}
	return VerdictUnauthorized, 0
}

// PruneVersions drops historical versions whose record stamp is older
// than cutoff, keeping at least the minKeep newest sequences and
// always the current one, and raises the pruned floor past everything
// dropped. Call it on the snapshot-epoch grid (the node layer does,
// from Compact and recovery) so the window obeys the same bounded-
// memory invariant as the tangle. Returns the number of versions
// dropped.
func (r *Registry) PruneVersions(cutoff time.Time, minKeep int) int {
	if minKeep < 1 {
		minKeep = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.versions) <= minKeep {
		return 0
	}
	seqs := make([]uint64, 0, len(r.versions))
	for seq := range r.versions {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	dropped := 0
	// The minKeep newest (and the current sequence) survive regardless.
	keepFrom := len(seqs) - minKeep
	for i, seq := range seqs {
		if i >= keepFrom || seq == r.seq {
			continue
		}
		if r.versions[seq].recordedAt.Before(cutoff) {
			delete(r.versions, seq)
			if seq > r.prunedThrough {
				r.prunedThrough = seq
			}
			dropped++
		}
	}
	return dropped
}

// VersionsRetained reports the historical window size (the
// evidence_versions gauge on /healthz).
func (r *Registry) VersionsRetained() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.versions)
}

// PrunedThrough reports the window's pruned floor: every sequence at
// or below it has been discarded (or was never retained) and is
// excluded from evidence scans.
func (r *Registry) PrunedThrough() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.prunedThrough
}

// VersionSeqs returns the retained historical sequences, sorted
// ascending (test and diagnostic surface).
func (r *Registry) VersionSeqs() []uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]uint64, 0, len(r.versions))
	for seq := range r.versions {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MemberAt reports whether addr is a member (device or gateway) of the
// retained version seq; ok is false when that version is not retained.
func (r *Registry) MemberAt(addr identity.Address, seq uint64) (member, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.versions[seq]
	if !ok {
		return false, false
	}
	return v.member(addr), true
}
