package authz

import (
	"math/rand"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/identity"
)

// windowModel is an independent from-scratch oracle for the evidence
// window: plain maps and the documented rules (first observation of a
// sequence wins, highest sequence is the current view, cap evicts
// lowest-first raising the floor, prune keeps minKeep newest plus the
// current), sharing no code with the Registry implementation. The
// property test below interleaves deliveries — in order, out of order,
// gapped, duplicated — with cap pressure and epoch prunes, and demands
// the Registry and the model agree on every observable after every op.
type windowModel struct {
	cap           int
	applied       bool
	currentSeq    uint64
	current       map[identity.Address]bool
	versions      map[uint64]map[identity.Address]bool
	recordedAt    map[uint64]time.Time
	prunedThrough uint64
}

func newWindowModel(capacity int) *windowModel {
	return &windowModel{
		cap:        capacity,
		current:    map[identity.Address]bool{},
		versions:   map[uint64]map[identity.Address]bool{},
		recordedAt: map[uint64]time.Time{},
	}
}

func (m *windowModel) deliver(seq uint64, members map[identity.Address]bool, at time.Time) {
	if seq > m.prunedThrough {
		if _, exists := m.versions[seq]; !exists {
			cp := make(map[identity.Address]bool, len(members))
			for a := range members {
				cp[a] = true
			}
			m.versions[seq] = cp
			m.recordedAt[seq] = at
			for len(m.versions) > m.cap {
				lowest := uint64(0)
				for s := range m.versions {
					if s == m.currentSeq {
						continue
					}
					if lowest == 0 || s < lowest {
						lowest = s
					}
				}
				if lowest == 0 {
					break
				}
				delete(m.versions, lowest)
				delete(m.recordedAt, lowest)
				if lowest > m.prunedThrough {
					m.prunedThrough = lowest
				}
			}
		}
	}
	if !m.applied || seq > m.currentSeq {
		m.applied = true
		m.currentSeq = seq
		m.current = members
	}
}

func (m *windowModel) prune(cutoff time.Time, minKeep int) {
	if minKeep < 1 {
		minKeep = 1
	}
	if len(m.versions) <= minKeep {
		return
	}
	seqs := make([]uint64, 0, len(m.versions))
	for s := range m.versions {
		seqs = append(seqs, s)
	}
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			if seqs[j] < seqs[i] {
				seqs[i], seqs[j] = seqs[j], seqs[i]
			}
		}
	}
	keepFrom := len(seqs) - minKeep
	for i, s := range seqs {
		if i >= keepFrom || s == m.currentSeq {
			continue
		}
		if m.recordedAt[s].Before(cutoff) {
			delete(m.versions, s)
			delete(m.recordedAt, s)
			if s > m.prunedThrough {
				m.prunedThrough = s
			}
		}
	}
}

func (m *windowModel) verdict(manager, addr identity.Address, evidence uint64) (Verdict, uint64) {
	if addr == manager {
		return VerdictAuthorized, 0
	}
	if m.current[addr] {
		return VerdictAuthorized, 0
	}
	lo := evidence
	if lo < m.prunedThrough+1 {
		lo = m.prunedThrough + 1
	}
	if lo < 1 {
		lo = 1
	}
	var firstMissing uint64
	for s := lo; s <= m.currentSeq; s++ {
		v, ok := m.versions[s]
		if !ok {
			if firstMissing == 0 {
				firstMissing = s
			}
			continue
		}
		if v[addr] {
			return VerdictAuthorized, 0
		}
	}
	if firstMissing != 0 {
		return VerdictUnresolved, firstMissing
	}
	return VerdictUnauthorized, 0
}

// TestEvidenceWindowPropertyVsModel drives a Registry and the oracle
// through the same randomized interleaving of authorize / revoke /
// reinstate list deliveries (shuffled, duplicated, gapped) and epoch
// prunes, comparing every observable after every operation.
func TestEvidenceWindowPropertyVsModel(t *testing.T) {
	const (
		devicePool = 5
		maxSeq     = 24
		ops        = 400
		windowCap  = 6
		seed       = 0xB107E
	)
	rng := rand.New(rand.NewSource(seed))
	mgr := mustKey(t)
	mgrAddr := mgr.Address()

	devices := make([]*identity.KeyPair, devicePool)
	for i := range devices {
		devices[i] = mustKey(t)
	}
	stranger := mustKey(t).Address()

	// Pre-generate the manager's list revisions 1..maxSeq with random
	// membership (authorize / revoke / reinstate arise naturally from
	// independent random subsets).
	type revision struct {
		list    List
		members map[identity.Address]bool
	}
	revisions := make([]revision, maxSeq+1)
	for seq := 1; seq <= maxSeq; seq++ {
		rev := revision{list: List{Seq: uint64(seq)}, members: map[identity.Address]bool{}}
		for _, d := range devices {
			if rng.Intn(2) == 0 {
				rev.list.Devices = append(rev.list.Devices, identity.EncodePublic(d.Public()))
				rev.members[d.Address()] = true
			}
		}
		revisions[seq] = rev
	}
	stampOf := func(seq uint64) time.Time { return time.Unix(int64(seq)*60, 0) }

	reg, err := NewRegistry(mgrAddr)
	if err != nil {
		t.Fatal(err)
	}
	reg.maxVersions = windowCap
	model := newWindowModel(windowCap)

	check := func(op string) {
		t.Helper()
		if got, want := reg.Seq(), model.currentSeq; got != want {
			t.Fatalf("after %s: Seq() = %d, model %d", op, got, want)
		}
		if got, want := reg.PrunedThrough(), model.prunedThrough; got != want {
			t.Fatalf("after %s: PrunedThrough() = %d, model %d", op, got, want)
		}
		if got, want := reg.VersionsRetained(), len(model.versions); got != want {
			t.Fatalf("after %s: VersionsRetained() = %d, model %d (%v)", op, got, want, reg.VersionSeqs())
		}
		addrs := []identity.Address{stranger, mgrAddr}
		for _, d := range devices {
			addrs = append(addrs, d.Address())
		}
		for _, addr := range addrs {
			if got, want := reg.IsAuthorizedDevice(addr), addr == mgrAddr || model.current[addr]; got != want {
				t.Fatalf("after %s: IsAuthorizedDevice(%s) = %v, model %v", op, addr.Short(), got, want)
			}
			for evidence := uint64(0); evidence <= maxSeq+1; evidence++ {
				gotV, gotMiss := reg.EvidenceVerdict(addr, evidence)
				wantV, wantMiss := model.verdict(mgrAddr, addr, evidence)
				if gotV != wantV || gotMiss != wantMiss {
					t.Fatalf("after %s: EvidenceVerdict(%s, %d) = (%v, %d), model (%v, %d); window %v floor %d",
						op, addr.Short(), evidence, gotV, gotMiss, wantV, wantMiss,
						reg.VersionSeqs(), reg.PrunedThrough())
				}
			}
		}
	}

	for op := 0; op < ops; op++ {
		if rng.Intn(8) == 0 {
			// Epoch prune at a random cutoff on the stamp grid.
			cutoff := stampOf(uint64(rng.Intn(maxSeq + 2)))
			minKeep := 1 + rng.Intn(3)
			reg.PruneVersions(cutoff, minKeep)
			model.prune(cutoff, minKeep)
			check("prune")
			continue
		}
		seq := uint64(1 + rng.Intn(maxSeq)) // duplicates and gaps by construction
		rev := revisions[seq]
		tx := authTx(t, mgr, rev.list)
		tx.Timestamp = stampOf(seq)
		if _, err := reg.Observe(tx, stampOf(seq)); err != nil {
			t.Fatalf("observe seq %d: %v", seq, err)
		}
		model.deliver(seq, rev.members, stampOf(seq))
		check("observe")
	}
}

// TestObserveStaleListNeverRollsBack pins the no-rollback regression: a
// re-offered OLDER list (a gossip echo or a lagging peer's sync page)
// must record as history only — the live view, its sequence and its
// membership stay exactly where the newest list put them.
func TestObserveStaleListNeverRollsBack(t *testing.T) {
	mgr := mustKey(t)
	dev := mustKey(t)
	reg, err := NewRegistry(mgr.Address())
	if err != nil {
		t.Fatal(err)
	}

	withDev := List{Seq: 1, Devices: []string{identity.EncodePublic(dev.Public())}}
	without := List{Seq: 2}
	if _, err := reg.Observe(authTx(t, mgr, withDev), time.Unix(60, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Observe(authTx(t, mgr, without), time.Unix(120, 0)); err != nil {
		t.Fatal(err)
	}
	if reg.IsAuthorizedDevice(dev.Address()) {
		t.Fatal("device still authorized after the revoking list")
	}

	// Re-offer the older list: success (it IS valid history), applied
	// false, and no observable rollback.
	applied, err := reg.Observe(authTx(t, mgr, withDev), time.Unix(180, 0))
	if err != nil {
		t.Fatalf("re-offered older list errored: %v", err)
	}
	if applied {
		t.Fatal("re-offered older list reported applied")
	}
	if got := reg.Seq(); got != 2 {
		t.Fatalf("Seq() = %d after stale re-offer, want 2", got)
	}
	if reg.IsAuthorizedDevice(dev.Address()) {
		t.Fatal("stale re-offer rolled the membership back")
	}
	// The history itself is intact: the device IS a member of version 1.
	if member, ok := reg.MemberAt(dev.Address(), 1); !ok || !member {
		t.Fatalf("MemberAt(dev, 1) = (%v, %v), want (true, true)", member, ok)
	}
}

// TestGappedListParksInWindow pins out-of-order hardening: when list
// N+2 arrives before N+1, it takes effect (highest wins) and N+1's slot
// stays a GAP — reported Unresolved with the right missing sequence —
// until the real N+1 arrives; a later duplicate of an already-recorded
// sequence never overwrites the recorded version.
func TestGappedListParksInWindow(t *testing.T) {
	mgr := mustKey(t)
	devA := mustKey(t)
	devB := mustKey(t)
	reg, err := NewRegistry(mgr.Address())
	if err != nil {
		t.Fatal(err)
	}

	l1 := List{Seq: 1, Devices: []string{identity.EncodePublic(devA.Public())}}
	l2 := List{Seq: 2, Devices: []string{identity.EncodePublic(devB.Public())}}
	l3 := List{Seq: 3}
	if _, err := reg.Observe(authTx(t, mgr, l1), time.Unix(60, 0)); err != nil {
		t.Fatal(err)
	}
	// N+2 before N+1.
	if _, err := reg.Observe(authTx(t, mgr, l3), time.Unix(180, 0)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Seq(); got != 3 {
		t.Fatalf("Seq() = %d, want 3", got)
	}
	if _, ok := reg.MemberAt(devB.Address(), 2); ok {
		t.Fatal("version 2 retained before it was ever delivered")
	}
	// devB's evidence-2 verdict must be Unresolved (gap at 2), not a
	// definitive reject.
	if v, miss := reg.EvidenceVerdict(devB.Address(), 2); v != VerdictUnresolved || miss != 2 {
		t.Fatalf("EvidenceVerdict(devB, 2) = (%v, %d), want (unresolved, 2)", v, miss)
	}
	// The gap fills when N+1 arrives — without disturbing the view.
	applied, err := reg.Observe(authTx(t, mgr, l2), time.Unix(120, 0))
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("gap-filling older list applied to the current view")
	}
	if v, _ := reg.EvidenceVerdict(devB.Address(), 2); v != VerdictAuthorized {
		t.Fatalf("EvidenceVerdict(devB, 2) = %v after gap fill, want authorized", v)
	}
	// A duplicate of sequence 2 with different content (hostile replay)
	// cannot overwrite the recorded version.
	forged := List{Seq: 2}
	if _, err := reg.Observe(authTx(t, mgr, forged), time.Unix(240, 0)); err != nil {
		t.Fatal(err)
	}
	if member, ok := reg.MemberAt(devB.Address(), 2); !ok || !member {
		t.Fatalf("MemberAt(devB, 2) = (%v, %v) after replay, want (true, true)", member, ok)
	}
}

// TestWindowCapRaisesFloor pins the memory bound: past maxVersions the
// window evicts lowest-first and raises the pruned floor, turning
// evidence below the floor into a definitive verdict instead of an
// unbounded Unresolved backlog.
func TestWindowCapRaisesFloor(t *testing.T) {
	mgr := mustKey(t)
	dev := mustKey(t)
	reg, err := NewRegistry(mgr.Address())
	if err != nil {
		t.Fatal(err)
	}
	reg.maxVersions = 4

	// The device is a member of versions 1..6 only.
	for seq := uint64(1); seq <= 10; seq++ {
		l := List{Seq: seq}
		if seq <= 6 {
			l.Devices = []string{identity.EncodePublic(dev.Public())}
		}
		if _, err := reg.Observe(authTx(t, mgr, l), time.Unix(int64(seq)*60, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.VersionsRetained(); got > 4 {
		t.Fatalf("VersionsRetained() = %d, want ≤ 4", got)
	}
	if got := reg.PrunedThrough(); got != 6 {
		t.Fatalf("PrunedThrough() = %d, want 6 (versions 1..6 evicted)", got)
	}
	// Evidence below the floor with no retained membership: definitive
	// Unauthorized, not Unresolved — the versions that could have
	// authorized it are gone by policy, like the snapshotted tangle
	// region the evidence points into.
	if v, miss := reg.EvidenceVerdict(dev.Address(), 2); v != VerdictUnauthorized || miss != 0 {
		t.Fatalf("EvidenceVerdict(dev, 2) = (%v, %d), want (unauthorized, 0)", v, miss)
	}
}

// TestPruneVersionsKeepsFloorAndCurrent pins PruneVersions' guardrails:
// minKeep newest survive any cutoff, the current sequence is never
// dropped, and the pruned floor rises past everything dropped.
func TestPruneVersionsKeepsFloorAndCurrent(t *testing.T) {
	mgr := mustKey(t)
	reg, err := NewRegistry(mgr.Address())
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := reg.Observe(authTx(t, mgr, List{Seq: seq}), time.Unix(int64(seq)*60, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Cutoff far in the future: everything is "old", but minKeep=2 and
	// the current sequence survive.
	if dropped := reg.PruneVersions(time.Unix(1e6, 0), 2); dropped != 3 {
		t.Fatalf("PruneVersions dropped %d, want 3", dropped)
	}
	seqs := reg.VersionSeqs()
	if len(seqs) != 2 || seqs[0] != 4 || seqs[1] != 5 {
		t.Fatalf("VersionSeqs() = %v, want [4 5]", seqs)
	}
	if got := reg.PrunedThrough(); got != 3 {
		t.Fatalf("PrunedThrough() = %d, want 3", got)
	}
}
