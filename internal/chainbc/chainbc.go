// Package chainbc implements a satoshi-style chain-structured blockchain
// — the baseline B-IoT's DAG design is compared against (paper §II-A).
//
// Transactions are validated into a mempool, batched into blocks, and a
// block is mined (header PoW) before the next batch can proceed: the
// "synchronous consensus" model whose one-at-a-time validation limits
// throughput. Forks are resolved by the longest-chain rule; blocks off
// the main chain are invalid ("the latest block in the longest chain is
// always chosen").
package chainbc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// Config tunes the baseline chain.
type Config struct {
	// Difficulty is the block-header PoW difficulty in leading zero
	// bits.
	Difficulty int
	// MaxTxPerBlock bounds the batch size per block.
	MaxTxPerBlock int
}

// DefaultConfig mirrors a small IoT deployment: difficulty 12,
// 16 transactions per block.
func DefaultConfig() Config {
	return Config{Difficulty: 12, MaxTxPerBlock: 16}
}

// Validate checks config sanity.
func (c Config) Validate() error {
	if c.Difficulty < 1 || c.Difficulty > hashutil.Size*8 {
		return fmt.Errorf("chain difficulty %d out of range", c.Difficulty)
	}
	if c.MaxTxPerBlock < 1 {
		return fmt.Errorf("max tx per block %d must be ≥ 1", c.MaxTxPerBlock)
	}
	return nil
}

// Header is a block header.
type Header struct {
	Prev       hashutil.Hash
	MerkleRoot hashutil.Hash
	Height     uint64
	Timestamp  time.Time
	Difficulty int
	Nonce      uint64
}

// Encode returns the canonical header bytes (hashed for block identity
// and PoW).
func (h Header) Encode() []byte {
	buf := make([]byte, 0, hashutil.Size*2+8+8+4+8)
	buf = append(buf, h.Prev[:]...)
	buf = append(buf, h.MerkleRoot[:]...)
	buf = binary.BigEndian.AppendUint64(buf, h.Height)
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.Timestamp.UnixNano()))
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.Difficulty))
	buf = binary.BigEndian.AppendUint64(buf, h.Nonce)
	return buf
}

// ID returns the header hash.
func (h Header) ID() hashutil.Hash { return hashutil.Sum(h.Encode()) }

// Block is a mined block.
type Block struct {
	Header Header
	Txs    []*txn.Transaction
}

// ID returns the block identity (header hash).
func (b *Block) ID() hashutil.Hash { return b.Header.ID() }

// MerkleRoot computes the transaction Merkle root of the block.
func MerkleRoot(txs []*txn.Transaction) (hashutil.Hash, error) {
	if len(txs) == 0 {
		// An empty block commits to the zero leaf.
		return hashutil.MerkleRoot([]hashutil.Hash{hashutil.Zero})
	}
	leaves := make([]hashutil.Hash, len(txs))
	for i, t := range txs {
		leaves[i] = t.ID()
	}
	return hashutil.MerkleRoot(leaves)
}

type blockNode struct {
	block  *Block
	parent *blockNode
	height uint64
}

// Chain is the blockchain state: block tree + longest-chain head +
// mempool. Safe for concurrent use.
type Chain struct {
	cfg Config
	clk clock.Clock

	mu      sync.Mutex
	blocks  map[hashutil.Hash]*blockNode
	head    *blockNode
	genesis hashutil.Hash
	mempool []*txn.Transaction
	inChain map[hashutil.Hash]struct{} // txs on the main chain
}

// Chain errors.
var (
	ErrUnknownPrev   = errors.New("block extends unknown parent")
	ErrBadBlockPoW   = errors.New("block header does not meet difficulty")
	ErrBadMerkle     = errors.New("block merkle root mismatch")
	ErrBadHeight     = errors.New("block height does not follow parent")
	ErrDupBlock      = errors.New("block already known")
	ErrEmptyMempool  = errors.New("mempool is empty")
	ErrTxKnown       = errors.New("transaction already queued or mined")
	ErrInvalidTxSubm = errors.New("transaction failed validation")
)

// New creates a chain with a deterministic genesis block.
func New(cfg Config, clk clock.Clock) (*Chain, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("chain config: %w", err)
	}
	if clk == nil {
		clk = clock.Real()
	}
	root, err := MerkleRoot(nil)
	if err != nil {
		return nil, err
	}
	genesis := &Block{Header: Header{
		MerkleRoot: root,
		Timestamp:  time.Unix(0, 0).UTC(),
		Difficulty: cfg.Difficulty,
	}}
	node := &blockNode{block: genesis}
	c := &Chain{
		cfg:     cfg,
		clk:     clk,
		blocks:  map[hashutil.Hash]*blockNode{genesis.ID(): node},
		head:    node,
		genesis: genesis.ID(),
		inChain: make(map[hashutil.Hash]struct{}),
	}
	return c, nil
}

// Genesis returns the genesis block ID.
func (c *Chain) Genesis() hashutil.Hash { return c.genesis }

// Height returns the main-chain height (genesis = 0).
func (c *Chain) Height() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.head.height
}

// Head returns the current main-chain tip block.
func (c *Chain) Head() *Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.head.block
}

// MempoolLen returns the number of queued transactions.
func (c *Chain) MempoolLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mempool)
}

// SubmitTx validates a transaction into the mempool (the synchronous
// model's admission step).
func (c *Chain) SubmitTx(t *txn.Transaction) error {
	if err := t.VerifyBasic(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidTxSubm, err)
	}
	id := t.ID()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, mined := c.inChain[id]; mined {
		return fmt.Errorf("%w: %s", ErrTxKnown, id.Short())
	}
	for _, queued := range c.mempool {
		if queued.ID() == id {
			return fmt.Errorf("%w: %s", ErrTxKnown, id.Short())
		}
	}
	c.mempool = append(c.mempool, t.Clone())
	return nil
}

// MineBlock batches up to MaxTxPerBlock mempool transactions, mines the
// header PoW, and appends the block to the chain. It returns the mined
// block. Mining honours ctx cancellation.
func (c *Chain) MineBlock(ctx context.Context) (*Block, error) {
	c.mu.Lock()
	if len(c.mempool) == 0 {
		c.mu.Unlock()
		return nil, ErrEmptyMempool
	}
	n := len(c.mempool)
	if n > c.cfg.MaxTxPerBlock {
		n = c.cfg.MaxTxPerBlock
	}
	batch := c.mempool[:n]
	parent := c.head
	c.mu.Unlock()

	root, err := MerkleRoot(batch)
	if err != nil {
		return nil, err
	}
	header := Header{
		Prev:       parent.block.ID(),
		MerkleRoot: root,
		Height:     parent.height + 1,
		Timestamp:  c.clk.Now(),
		Difficulty: c.cfg.Difficulty,
	}
	for nonce := uint64(0); ; nonce++ {
		if nonce%1024 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		header.Nonce = nonce
		if header.ID().MeetsDifficulty(c.cfg.Difficulty) {
			break
		}
	}
	block := &Block{Header: header, Txs: batch}
	if err := c.AddBlock(block); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.mempool = append([]*txn.Transaction(nil), c.mempool[n:]...)
	c.mu.Unlock()
	return block, nil
}

// AddBlock validates and appends an externally produced block (peer
// relay or local miner), applying the longest-chain rule.
func (c *Chain) AddBlock(b *Block) error {
	if !b.Header.ID().MeetsDifficulty(b.Header.Difficulty) ||
		b.Header.Difficulty < c.cfg.Difficulty {
		return ErrBadBlockPoW
	}
	root, err := MerkleRoot(b.Txs)
	if err != nil {
		return err
	}
	if root != b.Header.MerkleRoot {
		return ErrBadMerkle
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	id := b.ID()
	if _, dup := c.blocks[id]; dup {
		return fmt.Errorf("%w: %s", ErrDupBlock, id.Short())
	}
	parent, ok := c.blocks[b.Header.Prev]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPrev, b.Header.Prev.Short())
	}
	if b.Header.Height != parent.height+1 {
		return fmt.Errorf("%w: %d after parent %d", ErrBadHeight, b.Header.Height, parent.height)
	}
	node := &blockNode{block: b, parent: parent, height: b.Header.Height}
	c.blocks[id] = node

	// Longest-chain rule: adopt the new branch if strictly higher.
	if node.height > c.head.height {
		c.reorgLocked(node)
	}
	return nil
}

// reorgLocked switches the main chain to the branch ending at node,
// recomputing the mined-transaction set.
func (c *Chain) reorgLocked(node *blockNode) {
	c.head = node
	c.inChain = make(map[hashutil.Hash]struct{})
	for cur := node; cur != nil; cur = cur.parent {
		for _, t := range cur.block.Txs {
			c.inChain[t.ID()] = struct{}{}
		}
	}
}

// OnMainChain reports whether a transaction is included in the current
// main chain.
func (c *Chain) OnMainChain(id hashutil.Hash) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.inChain[id]
	return ok
}

// MainChain returns the main-chain blocks from genesis to head.
func (c *Chain) MainChain() []*Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rev []*Block
	for cur := c.head; cur != nil; cur = cur.parent {
		rev = append(rev, cur.block)
	}
	out := make([]*Block, len(rev))
	for i, b := range rev {
		out[len(rev)-1-i] = b
	}
	return out
}

// BlockCount returns the total number of known blocks (all branches).
func (c *Chain) BlockCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.blocks)
}
