package chainbc

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

func testConfig() Config {
	return Config{Difficulty: 4, MaxTxPerBlock: 4}
}

func mustChain(t *testing.T) *Chain {
	t.Helper()
	c, err := New(testConfig(), nil)
	if err != nil {
		t.Fatalf("new chain: %v", err)
	}
	return c
}

func mustKey(t *testing.T) *identity.KeyPair {
	t.Helper()
	k, err := identity.Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return k
}

func dataTx(t *testing.T, key *identity.KeyPair, tag string) *txn.Transaction {
	t.Helper()
	tx := &txn.Transaction{
		Trunk:     hashutil.Sum([]byte("p1")),
		Branch:    hashutil.Sum([]byte("p2")),
		Timestamp: time.Unix(1, 0),
		Kind:      txn.KindData,
		Payload:   []byte(tag),
	}
	tx.Sign(key)
	return tx
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Difficulty: 0, MaxTxPerBlock: 1}).Validate(); err == nil {
		t.Error("zero difficulty accepted")
	}
	if err := (Config{Difficulty: 4, MaxTxPerBlock: 0}).Validate(); err == nil {
		t.Error("zero batch accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestGenesisDeterministic(t *testing.T) {
	a := mustChain(t)
	b := mustChain(t)
	if a.Genesis() != b.Genesis() {
		t.Error("genesis differs across instances")
	}
	if a.Height() != 0 {
		t.Errorf("genesis height = %d", a.Height())
	}
}

func TestSubmitMineRoundTrip(t *testing.T) {
	c := mustChain(t)
	key := mustKey(t)
	var txs []*txn.Transaction
	for i := 0; i < 10; i++ {
		tx := dataTx(t, key, fmt.Sprintf("tx-%d", i))
		txs = append(txs, tx)
		if err := c.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
	}
	if c.MempoolLen() != 10 {
		t.Fatalf("mempool = %d", c.MempoolLen())
	}
	mined := 0
	for c.MempoolLen() > 0 {
		block, err := c.MineBlock(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(block.Txs) > testConfig().MaxTxPerBlock {
			t.Errorf("block carries %d txs", len(block.Txs))
		}
		mined += len(block.Txs)
	}
	if mined != 10 {
		t.Errorf("mined %d txs", mined)
	}
	if c.Height() != 3 { // 4+4+2
		t.Errorf("height = %d", c.Height())
	}
	for _, tx := range txs {
		if !c.OnMainChain(tx.ID()) {
			t.Errorf("tx %s not on main chain", tx.ID().Short())
		}
	}
}

func TestSubmitRejectsInvalidTx(t *testing.T) {
	c := mustChain(t)
	key := mustKey(t)
	tx := dataTx(t, key, "x")
	tx.Signature[0] ^= 1
	if err := c.SubmitTx(tx); !errors.Is(err, ErrInvalidTxSubm) {
		t.Errorf("err = %v", err)
	}
}

func TestSubmitRejectsDuplicates(t *testing.T) {
	c := mustChain(t)
	key := mustKey(t)
	tx := dataTx(t, key, "dup")
	if err := c.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitTx(tx); !errors.Is(err, ErrTxKnown) {
		t.Errorf("queued dup err = %v", err)
	}
	if _, err := c.MineBlock(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitTx(tx); !errors.Is(err, ErrTxKnown) {
		t.Errorf("mined dup err = %v", err)
	}
}

func TestMineEmptyMempool(t *testing.T) {
	c := mustChain(t)
	if _, err := c.MineBlock(context.Background()); !errors.Is(err, ErrEmptyMempool) {
		t.Errorf("err = %v", err)
	}
}

func TestMinedBlockVerifies(t *testing.T) {
	c := mustChain(t)
	key := mustKey(t)
	if err := c.SubmitTx(dataTx(t, key, "a")); err != nil {
		t.Fatal(err)
	}
	block, err := c.MineBlock(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !block.ID().MeetsDifficulty(testConfig().Difficulty) {
		t.Error("mined block fails its own PoW")
	}
	root, err := MerkleRoot(block.Txs)
	if err != nil {
		t.Fatal(err)
	}
	if root != block.Header.MerkleRoot {
		t.Error("merkle root mismatch")
	}
}

func TestAddBlockValidation(t *testing.T) {
	c := mustChain(t)
	key := mustKey(t)
	if err := c.SubmitTx(dataTx(t, key, "a")); err != nil {
		t.Fatal(err)
	}
	block, err := c.MineBlock(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Duplicate block.
	if err := c.AddBlock(block); !errors.Is(err, ErrDupBlock) {
		t.Errorf("dup err = %v", err)
	}

	// Tampered merkle root.
	bad := *block
	bad.Header.MerkleRoot = hashutil.Sum([]byte("evil"))
	// Re-mine the tampered header so PoW passes but merkle fails.
	for n := uint64(0); ; n++ {
		bad.Header.Nonce = n
		if bad.Header.ID().MeetsDifficulty(testConfig().Difficulty) {
			break
		}
	}
	if err := c.AddBlock(&bad); !errors.Is(err, ErrBadMerkle) {
		t.Errorf("merkle err = %v", err)
	}

	// Unknown parent.
	orphan := *block
	orphan.Header.Prev = hashutil.Sum([]byte("missing"))
	orphan.Header.Height = 9
	for n := uint64(0); ; n++ {
		orphan.Header.Nonce = n
		if orphan.Header.ID().MeetsDifficulty(testConfig().Difficulty) {
			break
		}
	}
	if err := c.AddBlock(&orphan); !errors.Is(err, ErrUnknownPrev) {
		t.Errorf("orphan err = %v", err)
	}

	// Insufficient PoW.
	weak := *block
	weak.Header.Nonce = 0
	if !weak.Header.ID().MeetsDifficulty(testConfig().Difficulty) {
		if err := c.AddBlock(&weak); !errors.Is(err, ErrBadBlockPoW) {
			t.Errorf("weak pow err = %v", err)
		}
	}
}

// mineOn mines a block of the given txs on top of parent, outside the
// chain's own mempool — a fork builder.
func mineOn(t *testing.T, cfg Config, parent *Block, parentHeight uint64, txs []*txn.Transaction) *Block {
	t.Helper()
	root, err := MerkleRoot(txs)
	if err != nil {
		t.Fatal(err)
	}
	h := Header{
		Prev:       parent.ID(),
		MerkleRoot: root,
		Height:     parentHeight + 1,
		Timestamp:  time.Unix(2, 0),
		Difficulty: cfg.Difficulty,
	}
	for n := uint64(0); ; n++ {
		h.Nonce = n
		if h.ID().MeetsDifficulty(cfg.Difficulty) {
			return &Block{Header: h, Txs: txs}
		}
	}
}

func TestLongestChainReorg(t *testing.T) {
	cfg := testConfig()
	c := mustChain(t)
	key := mustKey(t)

	// Main chain: one block with tx A.
	txA := dataTx(t, key, "A")
	if err := c.SubmitTx(txA); err != nil {
		t.Fatal(err)
	}
	b1, err := c.MineBlock(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !c.OnMainChain(txA.ID()) {
		t.Fatal("tx A not on main chain")
	}

	// Competing fork from genesis, two blocks long, carrying tx B.
	genesis := &Block{}
	genesisBlocks := c.MainChain()
	genesis = genesisBlocks[0]
	txB := dataTx(t, key, "B")
	f1 := mineOn(t, cfg, genesis, 0, []*txn.Transaction{txB})
	if err := c.AddBlock(f1); err != nil {
		t.Fatal(err)
	}
	// Same height as b1: no reorg yet (first-seen branch stays).
	if !c.OnMainChain(txA.ID()) {
		t.Fatal("reorg happened on equal height")
	}
	f2 := mineOn(t, cfg, f1, 1, nil)
	if err := c.AddBlock(f2); err != nil {
		t.Fatal(err)
	}
	// Fork is now longer: reorg.
	if c.Height() != 2 {
		t.Errorf("height = %d", c.Height())
	}
	if c.OnMainChain(txA.ID()) {
		t.Error("orphaned tx A still on main chain")
	}
	if !c.OnMainChain(txB.ID()) {
		t.Error("fork tx B not on main chain")
	}
	if c.BlockCount() != 4 { // genesis + b1 + f1 + f2
		t.Errorf("blocks = %d", c.BlockCount())
	}
	_ = b1
}

func TestMainChainOrder(t *testing.T) {
	c := mustChain(t)
	key := mustKey(t)
	for i := 0; i < 6; i++ {
		if err := c.SubmitTx(dataTx(t, key, fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for c.MempoolLen() > 0 {
		if _, err := c.MineBlock(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	blocks := c.MainChain()
	if len(blocks) != 3 { // genesis + 2
		t.Fatalf("main chain = %d blocks", len(blocks))
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Header.Prev != blocks[i-1].ID() {
			t.Fatal("main chain not linked")
		}
		if blocks[i].Header.Height != uint64(i) {
			t.Fatal("heights not sequential")
		}
	}
}

func TestMineBlockContextCancel(t *testing.T) {
	cfg := Config{Difficulty: 30, MaxTxPerBlock: 1} // effectively unminable quickly
	c, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t)
	if err := c.SubmitTx(dataTx(t, key, "slow")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.MineBlock(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestHeaderEncodeSensitivity(t *testing.T) {
	h := Header{
		Prev:       hashutil.Sum([]byte("p")),
		MerkleRoot: hashutil.Sum([]byte("m")),
		Height:     3,
		Timestamp:  time.Unix(9, 9),
		Difficulty: 4,
		Nonce:      42,
	}
	id := h.ID()
	h2 := h
	h2.Nonce++
	if h2.ID() == id {
		t.Error("nonce change did not change header ID")
	}
	h3 := h
	h3.Height++
	if h3.ID() == id {
		t.Error("height change did not change header ID")
	}
}

func TestEmptyBlockMerkle(t *testing.T) {
	root, err := MerkleRoot(nil)
	if err != nil {
		t.Fatalf("empty merkle: %v", err)
	}
	if root.IsZero() {
		t.Error("empty block root is zero")
	}
}
