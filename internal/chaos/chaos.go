// Package chaos is the fault-injection layer behind the repo's
// robustness suite. The paper's §VIII open problems name storage
// limitations and resource-constrained gateways; related DAG-ledger
// work (DLedger; Dorri et al.) treats intermittent connectivity and
// node failure as the normal case. This package turns those failure
// modes into *scriptable, deterministic* test inputs so "restart loses
// nothing" is a tested invariant rather than a claim:
//
//   - FS / File — the filesystem seam internal/store writes through.
//     OS() is the real disk; MemFS is an in-memory disk with explicit
//     durable-vs-volatile state, scripted write/sync faults, and
//     crash points enumerable per I/O operation (torn writes fall out
//     of the model instead of being hand-crafted).
//   - FaultyNetwork — a gossip.Network decorator injecting drops,
//     duplicates, delays, reordering and per-peer partitions, all
//     derived from one seed so a failing schedule replays exactly.
//   - SkewClock — a clock.Clock decorator with scriptable jumps and
//     bounded monotonic jitter, for time-skew scenarios.
//
// Everything is deterministic given a seed: torture tests print the
// seed on failure and re-run byte-for-byte identically.
package chaos

import "errors"

// Injection errors. They deliberately do not wrap I/O sentinels the
// production code retries on: an injected fault must surface as a
// failure, not be silently healed by a retry loop under test.
var (
	// ErrCrashed reports an operation against a crashed MemFS: the
	// simulated machine is down until Reboot.
	ErrCrashed = errors.New("chaos: filesystem crashed")
	// ErrStaleHandle reports an operation through a file handle that
	// predates the last Reboot — the "process" holding it died.
	ErrStaleHandle = errors.New("chaos: stale file handle from before reboot")
	// ErrInjectedDrop reports an exchange dropped by FaultyNetwork.
	ErrInjectedDrop = errors.New("chaos: injected network drop")
	// ErrInjectedFault is the default error for scripted disk faults.
	ErrInjectedFault = errors.New("chaos: injected disk fault")
)
