package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/gossip"
)

func openRW(t *testing.T, fs FS, name string) File {
	t.Helper()
	f, err := fs.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	return f
}

func TestMemFSDurableVsVolatile(t *testing.T) {
	fs := NewMemFS(1)
	f := openRW(t, fs, "wal")
	if _, err := f.Write([]byte("synced")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if _, err := f.Write([]byte("+volatile")); err != nil {
		t.Fatalf("write: %v", err)
	}

	// Process view sees everything.
	got, err := fs.ReadFile("wal")
	if err != nil || string(got) != "synced+volatile" {
		t.Fatalf("process view = %q, %v", got, err)
	}

	// A clean power-cycle may keep or lose the unsynced suffix, but the
	// synced prefix always survives intact.
	fs.Reboot()
	got, err = fs.ReadFile("wal")
	if err != nil {
		t.Fatalf("read after reboot: %v", err)
	}
	if !bytes.HasPrefix(got, []byte("synced")) {
		t.Fatalf("synced prefix lost: %q", got)
	}
	if !bytes.HasPrefix([]byte("synced+volatile"), got) {
		t.Fatalf("recovered %q is not a prefix of the written stream", got)
	}

	// Old handle is dead after reboot.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrStaleHandle) {
		t.Fatalf("stale handle write err = %v", err)
	}
}

func TestMemFSCrashPointEnumeration(t *testing.T) {
	// Fault-free dry run to learn the op count.
	workload := func(fs *MemFS) error {
		f, err := fs.OpenFile("wal", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if _, err := f.Write([]byte{byte('a' + i), byte('a' + i)}); err != nil {
				return err
			}
			if err := f.Sync(); err != nil {
				return err
			}
		}
		return f.Close()
	}
	dry := NewMemFS(7)
	if err := workload(dry); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	total := dry.Ops()
	if total == 0 {
		t.Fatal("workload performed no durable ops")
	}

	full := []byte("aabbccdd")
	for crash := 1; crash <= total; crash++ {
		fs := NewMemFS(int64(100 + crash))
		fs.CrashAfter(crash)
		err := workload(fs)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash=%d: workload err = %v, want ErrCrashed", crash, err)
		}
		if !fs.Crashed() {
			t.Fatalf("crash=%d: fs not crashed", crash)
		}
		// Down until reboot.
		if _, err := fs.OpenFile("wal", os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash=%d: open while down err = %v", crash, err)
		}
		fs.Reboot()
		got, err := fs.ReadFile("wal")
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("crash=%d: read after reboot: %v", crash, err)
		}
		// Whatever survived must be a prefix of the written stream: no
		// reordering, no invention, no holes.
		if !bytes.HasPrefix(full, got) {
			t.Fatalf("crash=%d: recovered %q not a prefix of %q", crash, got, full)
		}
		// Completed sync pairs must have survived. Each write+sync pair is
		// 2 ops; by crash point c, floor((c-1)/2) pairs completed (op 1 is
		// the create).
		if pairs := (crash - 1) / 2; len(got) < 2*pairs-2 {
			// -2 slack: the crashing op itself may be the sync.
			t.Fatalf("crash=%d: only %d bytes survived", crash, len(got))
		}
	}
}

func TestMemFSInjectedFaults(t *testing.T) {
	fs := NewMemFS(3)
	f := openRW(t, fs, "wal")

	fs.InjectWriteError(nil)
	n, err := f.Write([]byte("hello"))
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("write err = %v", err)
	}
	if n >= 5 {
		t.Fatalf("short write wrote %d of 5", n)
	}
	// One-shot: next write succeeds.
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatalf("write after fault: %v", err)
	}

	fs.InjectSyncError(nil)
	if err := f.Sync(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("sync err = %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after fault: %v", err)
	}
}

func TestMemFSRenameAtomicDurable(t *testing.T) {
	fs := NewMemFS(5)
	f := openRW(t, fs, "seg.tmp")
	if _, err := f.Write([]byte("compacted")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("seg.tmp", "seg"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	fs.Reboot()
	if _, err := fs.ReadFile("seg.tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old path survived rename: %v", err)
	}
	got, err := fs.ReadFile("seg")
	if err != nil || string(got) != "compacted" {
		t.Fatalf("new path = %q, %v", got, err)
	}
}

func TestMemFSCloneIndependence(t *testing.T) {
	fs := NewMemFS(9)
	fs.WriteFile("wal", []byte("base"))
	cl := fs.Clone()
	f := openRW(t, fs, "wal")
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+more")); err != nil {
		t.Fatal(err)
	}
	got, _ := cl.ReadFile("wal")
	if string(got) != "base" {
		t.Fatalf("clone mutated: %q", got)
	}
}

func TestMemFSSeekReadBack(t *testing.T) {
	fs := NewMemFS(2)
	f := openRW(t, fs, "wal")
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(4, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(f, buf); err != nil || string(buf) != "456" {
		t.Fatalf("read = %q, %v", buf, err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("wal")
	if string(got) != "01234" {
		t.Fatalf("after truncate: %q", got)
	}
}

func TestFaultyNetworkDeterministicDrops(t *testing.T) {
	run := func(seed int64) (int64, []string) {
		bus := gossip.NewBus()
		a, _ := bus.Join("a")
		b, _ := bus.Join("b")
		var got []string
		b.SetHandler(gossip.HandlerFunc(func(from string, m gossip.Message) (*gossip.Message, error) {
			got = append(got, string(m.TxData[0]))
			return &gossip.Message{}, nil
		}))
		fn := NewFaultyNetwork(a, NetFaults{DropProb: 0.5}, seed)
		for i := 0; i < 40; i++ {
			_ = fn.Broadcast(context.Background(), gossip.Message{
				Type: gossip.MsgTransaction, TxData: [][]byte{{byte(i)}},
			})
		}
		return fn.Dropped, got
	}
	d1, g1 := run(42)
	d2, g2 := run(42)
	if d1 == 0 || d1 == 40 {
		t.Fatalf("drop mix degenerate: %d/40", d1)
	}
	if d1 != d2 || len(g1) != len(g2) {
		t.Fatalf("not deterministic: %d/%d drops, %d/%d delivered", d1, d2, len(g1), len(g2))
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("delivery schedule diverged at %d", i)
		}
	}
}

func TestFaultyNetworkBlockHeal(t *testing.T) {
	bus := gossip.NewBus()
	a, _ := bus.Join("a")
	b, _ := bus.Join("b")
	b.SetHandler(gossip.HandlerFunc(func(string, gossip.Message) (*gossip.Message, error) {
		return &gossip.Message{}, nil
	}))
	fn := NewFaultyNetwork(a, NetFaults{}, 1)

	if _, err := fn.Request(context.Background(), "b", gossip.Message{Type: gossip.MsgSyncRequest}); err != nil {
		t.Fatalf("request before block: %v", err)
	}
	fn.Block("b")
	if _, err := fn.Request(context.Background(), "b", gossip.Message{Type: gossip.MsgSyncRequest}); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("request while blocked err = %v", err)
	}
	fn.Heal()
	if _, err := fn.Request(context.Background(), "b", gossip.Message{Type: gossip.MsgSyncRequest}); err != nil {
		t.Fatalf("request after heal: %v", err)
	}
}

func TestFaultyNetworkDuplicates(t *testing.T) {
	bus := gossip.NewBus()
	a, _ := bus.Join("a")
	b, _ := bus.Join("b")
	var delivered int
	b.SetHandler(gossip.HandlerFunc(func(string, gossip.Message) (*gossip.Message, error) {
		delivered++
		return &gossip.Message{}, nil
	}))
	fn := NewFaultyNetwork(a, NetFaults{DupProb: 1}, 1)
	for i := 0; i < 5; i++ {
		if err := fn.Broadcast(context.Background(), gossip.Message{Type: gossip.MsgTransaction, TxData: [][]byte{{1}}}); err != nil {
			t.Fatalf("broadcast: %v", err)
		}
	}
	if delivered != 10 {
		t.Fatalf("delivered %d, want 10 (every message duplicated)", delivered)
	}
	if fn.Duplicated != 5 {
		t.Fatalf("Duplicated = %d", fn.Duplicated)
	}
}

func TestSkewClockMonotonicUnderBackwardJump(t *testing.T) {
	v := clock.NewVirtual(time.Unix(1000, 0))
	sc := NewSkewClock(v, 0, 1)
	t1 := sc.Now()
	sc.Jump(-10 * time.Second)
	t2 := sc.Now()
	if t2.Before(t1) {
		t.Fatalf("clock ran backwards: %v then %v", t1, t2)
	}
	// Once inner time passes the clamp, readings advance again.
	v.Advance(30 * time.Second)
	t3 := sc.Now()
	if !t3.After(t2) {
		t.Fatalf("clock stuck after clamp: %v then %v", t2, t3)
	}
}

func TestSkewClockJitterBounded(t *testing.T) {
	v := clock.NewVirtual(time.Unix(1000, 0))
	jit := 50 * time.Millisecond
	sc := NewSkewClock(v, jit, 7)
	for i := 0; i < 200; i++ {
		v.Advance(time.Second)
		d := sc.Now().Sub(v.Now())
		if d < -jit || d > jit {
			t.Fatalf("jitter %v out of bounds ±%v", d, jit)
		}
	}
}
