package chaos

import (
	"math/rand"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/clock"
)

// SkewClock decorates a clock.Clock with scriptable skew: a settable
// offset (Jump) plus bounded seeded jitter per reading. Readings are
// clamped monotonic — a jitter draw or backwards Jump never makes Now
// return an instant before one it already returned, because the
// components consuming the clock (credit decay, replay windows) assume
// time does not run backwards within a process.
type SkewClock struct {
	inner clock.Clock

	mu     sync.Mutex
	rng    *rand.Rand
	offset time.Duration
	jitter time.Duration // max absolute jitter per reading
	last   time.Time     // monotonic floor
}

var _ clock.Clock = (*SkewClock)(nil)

// NewSkewClock wraps inner. jitter bounds the per-reading noise
// (uniform in [-jitter, +jitter]); zero disables it.
func NewSkewClock(inner clock.Clock, jitter time.Duration, seed int64) *SkewClock {
	return &SkewClock{
		inner:  inner,
		rng:    rand.New(rand.NewSource(seed)),
		jitter: jitter,
	}
}

// Jump shifts the clock by d (negative allowed — the monotonic clamp
// absorbs it until real time catches up, which is exactly how a node
// with a stepped-back NTP source behaves).
func (c *SkewClock) Jump(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.offset += d
}

// Offset returns the current accumulated jump offset.
func (c *SkewClock) Offset() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offset
}

// Now implements clock.Clock.
func (c *SkewClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.inner.Now().Add(c.offset)
	if c.jitter > 0 {
		t = t.Add(time.Duration(c.rng.Int63n(int64(2*c.jitter))) - c.jitter)
	}
	if !c.last.IsZero() && t.Before(c.last) {
		t = c.last
	}
	c.last = t
	return t
}

// Sleep implements clock.Clock, delegating to the inner clock.
func (c *SkewClock) Sleep(d time.Duration) { c.inner.Sleep(d) }
