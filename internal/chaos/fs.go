package chaos

import (
	"io"
	"os"
)

// File is the slice of *os.File the storage layer needs. Both the real
// OS filesystem and the in-memory fault-injecting one return it, so
// internal/store runs unchanged against either.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes written data to stable storage. Data not yet synced
	// may be lost — wholly or partially — on crash.
	Sync() error
	// Truncate resizes the file. Like a write, the resize is not
	// crash-durable until the next Sync.
	Truncate(size int64) error
}

// FS is the filesystem seam: the operations internal/store performs,
// abstracted so scripted faults can be injected under them.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flags the
	// store uses (O_RDWR, O_CREATE, O_TRUNC).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath — the commit
	// point of write-temp/fsync/rename compaction.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (best-effort cleanup of temp segments).
	Remove(name string) error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

var _ FS = osFS{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }
