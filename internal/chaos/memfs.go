package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"
)

// MemFS is an in-memory filesystem with an explicit durability model,
// built for crash-point torture tests:
//
//   - Every file carries two views: the *process* view (what reads and
//     the writing process observe — the page cache) and the *durable*
//     view (what survives a crash — the platter). Writes and truncates
//     mutate the process view and queue as pending operations; Sync
//     promotes everything pending to durable.
//   - Durability-affecting operations (create, write, sync, truncate,
//     rename, remove) are counted. CrashAfter(n) makes the n-th
//     subsequent operation the crash point: the disk dies *during*
//     that operation. Pending-but-unsynced operations survive the
//     crash only as a seed-chosen prefix — a write torn mid-record
//     falls out of the model naturally.
//   - Rename is modelled as atomic and immediately durable (the
//     journalled-metadata behaviour write-temp/fsync/rename relies
//     on); enumeration of crash points immediately before and after
//     the rename covers the old-file and new-file outcomes.
//
// After a crash every operation — through old handles or new ones —
// fails with ErrCrashed until Reboot, which applies the crash rule and
// reopens the disk as a rebooted machine would see it. Handles from
// before the reboot fail with ErrStaleHandle.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	rng     *rand.Rand
	gen     int // reboot generation; handles from older generations are dead
	ops     int // durable-affecting operations performed
	crashAt int // 1-based op index that crashes the disk; 0 = never
	crashed bool

	syncErr   error         // one-shot injected Sync failure
	writeErr  error         // one-shot injected Write failure
	syncDelay time.Duration // modelled fsync latency; 0 = instant
}

// memFile is one file: its durable bytes plus the pending (unsynced)
// operations that produce the process view when replayed on top.
type memFile struct {
	durable []byte
	data    []byte      // process view: durable with pending applied
	pending []pendingOp // in write order, cleared by Sync
}

type pendingOp struct {
	// A write op carries data at off; a resize op has data nil and
	// size >= 0.
	off  int64
	data []byte
	size int64 // valid when data == nil
}

// NewMemFS creates an empty in-memory disk. The seed drives every
// nondeterministic choice (torn-write lengths, pending-op survival),
// so identical scripts replay identically.
func NewMemFS(seed int64) *MemFS {
	return &MemFS{
		files: make(map[string]*memFile),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// CrashAfter arms the crash point: the n-th durable-affecting
// operation from now (1-based) crashes the disk mid-operation. n <= 0
// disarms.
func (fs *MemFS) CrashAfter(n int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n <= 0 {
		fs.crashAt = 0
		return
	}
	fs.crashAt = fs.ops + n
}

// Ops returns the number of durable-affecting operations performed.
// Torture tests run a workload once fault-free to learn the op count,
// then enumerate CrashAfter(1..Ops()).
func (fs *MemFS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether the disk is down.
func (fs *MemFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// SetSyncDelay models a disk with a fixed flush latency: every
// subsequent Sync occupies the disk for d before the data is durable,
// and the disk serves nothing else meanwhile — fsyncs against one
// MemFS serialize, exactly like a single physical write head. The
// group-commit journal amortizes the delay across a batch, so with
// concurrent writers a deployment's throughput becomes
// batch-size/delay per disk: the knob that lets benchmarks model a
// storage-bound gateway on a machine with any core count.
func (fs *MemFS) SetSyncDelay(d time.Duration) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncDelay = d
}

// InjectSyncError makes the next Sync on any file fail with err
// (ErrInjectedFault when nil) without promoting pending data. The
// fault is one-shot: the disk "recovers" afterwards — it is the
// caller's contract (store poisoning) that must keep failing.
func (fs *MemFS) InjectSyncError(err error) {
	if err == nil {
		err = ErrInjectedFault
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncErr = err
}

// InjectWriteError makes the next Write on any file fail with err
// (ErrInjectedFault when nil) after applying a seed-chosen prefix — a
// short write.
func (fs *MemFS) InjectWriteError(err error) {
	if err == nil {
		err = ErrInjectedFault
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeErr = err
}

// Reboot applies the crash rule — durable state plus a seed-chosen
// prefix of each file's pending operations — and brings the disk back
// up. Handles from before the reboot are dead. Reboot on a healthy
// disk models a clean power cycle of the machine with a dirty page
// cache: the same pending-loss rule applies.
func (fs *MemFS) Reboot() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		f.applyCrash(fs.rng)
	}
	fs.crashed = false
	fs.crashAt = 0
	fs.gen++
}

// applyCrash reduces the file to durable content plus a surviving
// prefix of pending ops; the op on the survival boundary, if a write,
// may itself apply torn.
func (f *memFile) applyCrash(rng *rand.Rand) {
	n := len(f.pending)
	post := append([]byte(nil), f.durable...)
	if n > 0 {
		cut := rng.Intn(n + 1) // pending[:cut] fully survive
		for _, op := range f.pending[:cut] {
			post = op.apply(post)
		}
		if cut < n {
			if op := f.pending[cut]; op.data != nil && len(op.data) > 0 {
				keep := rng.Intn(len(op.data) + 1)
				post = pendingOp{off: op.off, data: op.data[:keep]}.apply(post)
			}
		}
	}
	f.durable = post
	f.data = append([]byte(nil), post...)
	f.pending = nil
}

func (op pendingOp) apply(b []byte) []byte {
	if op.data == nil { // resize
		if int64(len(b)) > op.size {
			return b[:op.size]
		}
		return append(b, make([]byte, op.size-int64(len(b)))...)
	}
	end := op.off + int64(len(op.data))
	if int64(len(b)) < end {
		b = append(b, make([]byte, end-int64(len(b)))...)
	}
	copy(b[op.off:end], op.data)
	return b
}

// Clone deep-copies the disk (process and durable views, not the
// fault script). Benchmarks use it to replay recovery from the same
// image repeatedly.
func (fs *MemFS) Clone() *MemFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := NewMemFS(fs.rng.Int63())
	for name, f := range fs.files {
		out.files[name] = &memFile{
			durable: append([]byte(nil), f.durable...),
			data:    append([]byte(nil), f.data...),
			pending: append([]pendingOp(nil), f.pending...),
		}
	}
	return out
}

// ReadFile returns the process view of a file.
func (fs *MemFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// WriteFile replaces a file's content, durably (test setup helper —
// bypasses op counting and the crash model).
func (fs *MemFS) WriteFile(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = &memFile{
		durable: append([]byte(nil), data...),
		data:    append([]byte(nil), data...),
	}
}

// Files lists file names (sorted).
func (fs *MemFS) Files() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// countOp advances the op counter and triggers the armed crash point.
// It reports whether the current operation is the one the disk dies
// during (the op applies torn, then everything fails).
func (fs *MemFS) countOp() (crashing bool, err error) {
	if fs.crashed {
		return false, ErrCrashed
	}
	fs.ops++
	if fs.crashAt > 0 && fs.ops >= fs.crashAt {
		fs.crashed = true
		return true, nil
	}
	return false, nil
}

var _ FS = (*MemFS)(nil)

// OpenFile implements FS.
func (fs *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, exists := fs.files[name]
	if !exists {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		// Creating the directory entry is a durable-affecting op.
		crashing, err := fs.countOp()
		if err != nil {
			return nil, err
		}
		if crashing {
			return nil, ErrCrashed
		}
		f = &memFile{}
		fs.files[name] = f
	}
	h := &memHandle{fs: fs, f: f, name: name, gen: fs.gen}
	if flag&os.O_TRUNC != 0 && len(f.data) > 0 {
		if err := h.truncateLocked(0); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Rename implements FS: atomic and immediately durable (see type doc).
func (fs *MemFS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	crashing, err := fs.countOp()
	if err != nil {
		return err
	}
	if crashing {
		return ErrCrashed // crash before the rename applied
	}
	f, ok := fs.files[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	delete(fs.files, oldpath)
	fs.files[newpath] = f
	return nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	crashing, err := fs.countOp()
	if err != nil {
		return err
	}
	if crashing {
		return ErrCrashed
	}
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	return nil
}

// memHandle is one open descriptor: a position over a memFile.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	name   string
	gen    int
	pos    int64
	closed bool
}

var _ File = (*memHandle)(nil)

func (h *memHandle) check() error {
	if h.closed {
		return os.ErrClosed
	}
	if h.gen != h.fs.gen {
		return ErrStaleHandle
	}
	return nil
}

// Read implements io.Reader over the process view.
func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.pos >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += int64(n)
	return n, nil
}

// Write implements io.Writer at the current position; the bytes are
// pending until Sync.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	crashing, err := h.fs.countOp()
	if err != nil {
		return 0, err
	}
	if crashing {
		// The disk dies mid-write: a seed-chosen prefix lands pending
		// (it may yet survive the crash — or not).
		keep := 0
		if len(p) > 0 {
			keep = h.fs.rng.Intn(len(p) + 1)
		}
		h.writeLocked(p[:keep])
		return keep, ErrCrashed
	}
	if werr := h.fs.writeErr; werr != nil {
		h.fs.writeErr = nil
		keep := 0
		if len(p) > 0 {
			keep = h.fs.rng.Intn(len(p)) // strictly short
		}
		h.writeLocked(p[:keep])
		return keep, werr
	}
	h.writeLocked(p)
	return len(p), nil
}

func (h *memHandle) writeLocked(p []byte) {
	if len(p) == 0 {
		return
	}
	op := pendingOp{off: h.pos, data: append([]byte(nil), p...)}
	h.f.pending = append(h.f.pending, op)
	h.f.data = op.apply(h.f.data)
	h.pos += int64(len(p))
}

// Seek implements io.Seeker.
func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.pos
	case io.SeekEnd:
		base = int64(len(h.f.data))
	default:
		return 0, fmt.Errorf("memfs: bad whence %d", whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("memfs: negative seek")
	}
	h.pos = base + offset
	return h.pos, nil
}

// Sync promotes every pending operation to durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	crashing, err := h.fs.countOp()
	if err != nil {
		return err
	}
	if crashing {
		return ErrCrashed // died before the flush completed
	}
	if serr := h.fs.syncErr; serr != nil {
		h.fs.syncErr = nil
		return serr
	}
	if d := h.fs.syncDelay; d > 0 {
		// Deliberately slept under fs.mu: a flushing disk serves no
		// other operation, so concurrent syncs (and writes) queue
		// behind the head just as they would on hardware.
		time.Sleep(d)
	}
	h.f.durable = append([]byte(nil), h.f.data...)
	h.f.pending = nil
	return nil
}

// Truncate resizes the process view; pending until Sync.
func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	return h.truncateLocked(size)
}

func (h *memHandle) truncateLocked(size int64) error {
	crashing, err := h.fs.countOp()
	if err != nil {
		return err
	}
	if crashing {
		return ErrCrashed
	}
	if size < 0 {
		return fmt.Errorf("memfs: negative truncate")
	}
	op := pendingOp{size: size}
	h.f.pending = append(h.f.pending, op)
	h.f.data = op.apply(h.f.data)
	return nil
}

// Close implements io.Closer. Pending data stays pending: close is not
// a sync.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}
