package chaos

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/gossip"
)

// NetFaults configures the fault mix a FaultyNetwork injects into
// outbound traffic. All probabilities are in [0,1]; the zero value
// injects nothing.
type NetFaults struct {
	// DropProb drops an outbound exchange entirely: a Broadcast to a
	// peer silently fails, a Request returns ErrInjectedDrop.
	DropProb float64
	// DupProb delivers an outbound broadcast message to a peer twice.
	// Duplicate delivery is the normal case for gossip retry paths, so
	// nodes must be idempotent.
	DupProb float64
	// DelayMax, when positive, delays each outbound exchange by a
	// uniform duration in [0, DelayMax) before sending.
	DelayMax time.Duration
	// ReorderProb swaps an outbound broadcast with the next one to the
	// same peer by holding it back briefly, so peers observe
	// attachments out of issue order.
	ReorderProb float64
}

// FaultyNetwork decorates a gossip.Network with seeded, scriptable
// faults on the *outbound* path (inbound traffic already went through
// the remote sender's own faults; injecting on one side keeps a
// two-node exchange from being faulted twice). Per-peer Block models a
// directed partition; Heal clears all faults and blocks.
//
// All randomness comes from the seed, so a failing schedule replays
// exactly. Safe for concurrent use.
type FaultyNetwork struct {
	inner gossip.Network

	mu      sync.Mutex
	rng     *rand.Rand
	faults  NetFaults
	blocked map[string]bool
	held    map[string]gossip.Message // reorder buffer, one slot per peer

	// Injected/Dropped/Duplicated/Delayed count injected events for
	// test assertions.
	Dropped    int64
	Duplicated int64
	Delayed    int64
	Reordered  int64
}

var _ gossip.Network = (*FaultyNetwork)(nil)

// NewFaultyNetwork wraps inner with the given fault mix and seed.
func NewFaultyNetwork(inner gossip.Network, faults NetFaults, seed int64) *FaultyNetwork {
	return &FaultyNetwork{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		faults:  faults,
		blocked: make(map[string]bool),
		held:    make(map[string]gossip.Message),
	}
}

// SetFaults replaces the fault mix.
func (n *FaultyNetwork) SetFaults(f NetFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = f
}

// Block starts dropping every outbound exchange to peer — a directed
// partition.
func (n *FaultyNetwork) Block(peer string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[peer] = true
}

// Unblock lifts a Block.
func (n *FaultyNetwork) Unblock(peer string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, peer)
}

// Heal clears every fault: probabilities to zero, all peers unblocked,
// reorder buffers flushed (held messages are dropped — they were
// stale). The network behaves as the undecorated inner network
// afterwards.
func (n *FaultyNetwork) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = NetFaults{}
	n.blocked = make(map[string]bool)
	n.held = make(map[string]gossip.Message)
}

// Self implements gossip.Network.
func (n *FaultyNetwork) Self() string { return n.inner.Self() }

// Peers implements gossip.Network.
func (n *FaultyNetwork) Peers() []string { return n.inner.Peers() }

// SetHandler implements gossip.Network.
func (n *FaultyNetwork) SetHandler(h gossip.Handler) { n.inner.SetHandler(h) }

// Close implements gossip.Network.
func (n *FaultyNetwork) Close() error { return n.inner.Close() }

// plan decides, under the lock, what happens to one outbound message
// for one peer. It returns the messages to actually send (0, 1 or 2 of
// them) and the delay to apply first.
func (n *FaultyNetwork) plan(peer string, msg gossip.Message, reorderable bool) (send []gossip.Message, delay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.blocked[peer] {
		n.Dropped++
		return nil, 0
	}
	f := n.faults
	if f.DropProb > 0 && n.rng.Float64() < f.DropProb {
		n.Dropped++
		return nil, 0
	}
	if f.DelayMax > 0 {
		delay = time.Duration(n.rng.Int63n(int64(f.DelayMax)))
		n.Delayed++
	}
	send = []gossip.Message{msg}
	if reorderable && f.ReorderProb > 0 {
		if held, ok := n.held[peer]; ok {
			// Release the held message after the current one: the swap.
			delete(n.held, peer)
			send = append(send, held)
			n.Reordered++
		} else if n.rng.Float64() < f.ReorderProb {
			// Hold this one back for the next broadcast to this peer.
			n.held[peer] = msg
			return nil, delay
		}
	}
	if f.DupProb > 0 && n.rng.Float64() < f.DupProb {
		send = append(send, msg)
		n.Duplicated++
	}
	return send, delay
}

// Broadcast implements gossip.Network: per-peer fault decisions, then
// per-peer Requests against the inner network so one peer's injected
// drop doesn't mask delivery to the others. Mirroring the inner
// Broadcast contract, it succeeds if any peer was reached or no peer
// was eligible.
func (n *FaultyNetwork) Broadcast(ctx context.Context, msg gossip.Message) error {
	peers := n.inner.Peers()
	if len(peers) == 0 {
		return n.inner.Broadcast(ctx, msg)
	}
	var (
		wg        sync.WaitGroup
		successMu sync.Mutex
		delivered int
		attempted int
		firstErr  error
	)
	for _, peer := range peers {
		send, delay := n.plan(peer, msg, true)
		if len(send) == 0 {
			continue
		}
		attempted++
		wg.Add(1)
		go func(peer string, send []gossip.Message, delay time.Duration) {
			defer wg.Done()
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return
				}
			}
			ok := false
			var err error
			for _, m := range send {
				if _, rerr := n.inner.Request(ctx, peer, m); rerr == nil {
					ok = true
				} else if err == nil {
					err = rerr
				}
			}
			successMu.Lock()
			if ok {
				delivered++
			} else if firstErr == nil {
				firstErr = err
			}
			successMu.Unlock()
		}(peer, send, delay)
	}
	wg.Wait()
	if attempted == 0 {
		// Every peer was dropped or held: the broadcast vanished, which
		// is exactly the fault being modelled. Report success — the
		// sender can't tell.
		return nil
	}
	if delivered == 0 && firstErr != nil {
		return firstErr
	}
	return nil
}

// Request implements gossip.Network. Requests (sync exchanges) are
// droppable and delayable but never duplicated or reordered — the
// caller owns the reply.
func (n *FaultyNetwork) Request(ctx context.Context, peer string, msg gossip.Message) (gossip.Message, error) {
	send, delay := n.plan(peer, msg, false)
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return gossip.Message{}, ctx.Err()
		}
	}
	if len(send) == 0 {
		return gossip.Message{}, ErrInjectedDrop
	}
	var reply gossip.Message
	var err error
	for _, m := range send {
		reply, err = n.inner.Request(ctx, peer, m)
	}
	return reply, err
}
