package chaos

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/gossip"
)

// NetFaults configures the fault mix a FaultyNetwork injects into
// outbound traffic. All probabilities are in [0,1]; the zero value
// injects nothing.
type NetFaults struct {
	// DropProb drops an outbound exchange entirely: a Broadcast to a
	// peer silently fails, a Request returns ErrInjectedDrop.
	DropProb float64
	// DupProb delivers an outbound datagram (a Broadcast, or a
	// MsgTransaction push) to a peer twice. Duplicate delivery is the
	// normal case for gossip retry paths, so nodes must be idempotent.
	DupProb float64
	// DelayMax, when positive, delays each outbound exchange by a
	// uniform duration in [0, DelayMax) before sending. Delay shifts
	// latency only: the per-peer delivery order is preserved.
	DelayMax time.Duration
	// ReorderProb swaps an outbound datagram with the next one to the
	// same peer by holding it back briefly, so peers observe
	// attachments out of issue order.
	ReorderProb float64
}

// FaultyNetwork decorates a gossip.Network with seeded, scriptable
// faults on the *outbound* path (inbound traffic already went through
// the remote sender's own faults; injecting on one side keeps a
// two-node exchange from being faulted twice). Per-peer Block models a
// directed partition; Heal clears all faults and blocks.
//
// Fault classes by traffic type: datagram traffic — Broadcasts and
// MsgTransaction Requests, the fan-out path full nodes actually use —
// is subject to the full mix (drop, duplicate, delay, reorder).
// Synchronous exchanges (sync requests) are droppable and delayable
// but never duplicated or reordered: the caller owns the reply.
//
// All randomness comes from the seed, and deliveries to one peer are
// chained FIFO in plan order, so a fault schedule composes the same
// way on every run with the same seed: a delay shifts latency but
// never implicitly reorders a peer's stream — only ReorderProb does,
// explicitly. Safe for concurrent use.
type FaultyNetwork struct {
	inner gossip.Network

	mu      sync.Mutex
	rng     *rand.Rand
	faults  NetFaults
	blocked map[string]bool
	held    map[string]gossip.Message  // reorder buffer, one slot per peer
	fifo    map[string]chan struct{}   // per-peer delivery chain tail

	// Injected/Dropped/Duplicated/Delayed count injected events for
	// test assertions.
	Dropped    int64
	Duplicated int64
	Delayed    int64
	Reordered  int64
}

var _ gossip.Network = (*FaultyNetwork)(nil)

// NewFaultyNetwork wraps inner with the given fault mix and seed.
func NewFaultyNetwork(inner gossip.Network, faults NetFaults, seed int64) *FaultyNetwork {
	return &FaultyNetwork{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		faults:  faults,
		blocked: make(map[string]bool),
		held:    make(map[string]gossip.Message),
		fifo:    make(map[string]chan struct{}),
	}
}

// SetFaults replaces the fault mix.
func (n *FaultyNetwork) SetFaults(f NetFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = f
}

// Block starts dropping every outbound exchange to peer — a directed
// partition. A datagram held back for reordering is dropped with the
// partition: it must not survive in a buffer and leak across after the
// link heals.
func (n *FaultyNetwork) Block(peer string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.held[peer]; ok {
		delete(n.held, peer)
		n.Dropped++
	}
	n.blocked[peer] = true
}

// Unblock lifts a Block.
func (n *FaultyNetwork) Unblock(peer string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, peer)
}

// Heal clears every fault: probabilities to zero, all peers unblocked,
// reorder buffers flushed (held messages are dropped — they were
// stale). The network behaves as the undecorated inner network
// afterwards.
func (n *FaultyNetwork) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = NetFaults{}
	n.blocked = make(map[string]bool)
	n.held = make(map[string]gossip.Message)
}

// Counters returns a consistent snapshot of the injected-event
// counters.
func (n *FaultyNetwork) Counters() (dropped, duplicated, delayed, reordered int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.Dropped, n.Duplicated, n.Delayed, n.Reordered
}

// Self implements gossip.Network.
func (n *FaultyNetwork) Self() string { return n.inner.Self() }

// Peers implements gossip.Network.
func (n *FaultyNetwork) Peers() []string { return n.inner.Peers() }

// SetHandler implements gossip.Network.
func (n *FaultyNetwork) SetHandler(h gossip.Handler) { n.inner.SetHandler(h) }

// Close implements gossip.Network.
func (n *FaultyNetwork) Close() error { return n.inner.Close() }

// sendPlan is one outbound exchange's fate, decided atomically under
// the lock. A plan that delivers anything carries a FIFO ticket: prev
// is the previous delivery to the same peer (wait for it), done must
// be closed once this delivery finishes so the chain never stalls.
type sendPlan struct {
	msgs  []gossip.Message
	delay time.Duration
	held  bool // message absorbed into the reorder buffer: deliver nothing, report success
	prev  <-chan struct{}
	done  chan struct{}
}

// plan decides, under the lock, what happens to one outbound message
// for one peer. datagram selects the full fault mix (dup/reorder on
// top of drop/delay); synchronous exchanges get drop/delay only.
func (n *FaultyNetwork) plan(peer string, msg gossip.Message, datagram bool) sendPlan {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.blocked[peer] {
		n.Dropped++
		return sendPlan{}
	}
	f := n.faults
	if f.DropProb > 0 && n.rng.Float64() < f.DropProb {
		n.Dropped++
		return sendPlan{}
	}
	p := sendPlan{msgs: []gossip.Message{msg}}
	if f.DelayMax > 0 {
		p.delay = time.Duration(n.rng.Int63n(int64(f.DelayMax)))
		n.Delayed++
	}
	if datagram {
		if held, ok := n.held[peer]; ok {
			// Release the held message after the current one: the swap.
			// Release is unconditional — a datagram held while faults were
			// active must not be stranded when ReorderProb drops to zero.
			delete(n.held, peer)
			p.msgs = append(p.msgs, held)
			n.Reordered++
		} else if f.ReorderProb > 0 && n.rng.Float64() < f.ReorderProb {
			// Hold this one back for the next datagram to this peer.
			n.held[peer] = msg
			return sendPlan{held: true}
		}
		if f.DupProb > 0 && n.rng.Float64() < f.DupProb {
			p.msgs = append(p.msgs, msg)
			n.Duplicated++
		}
		// FIFO ticket: datagram deliveries to one peer happen in plan
		// order even when their random delays differ, so DelayMax
		// composed with any other fault cannot invert a peer's stream
		// by accident. Only datagrams join the chain: a synchronous
		// exchange may be issued from INSIDE a remote datagram handler
		// (push → handler → sync-back), so chaining it behind the very
		// delivery that triggered it would deadlock two nodes pushing
		// to each other. Datagram handlers never block on chained
		// traffic themselves, so the datagram-only chain always drains.
		p.prev = n.fifo[peer]
		p.done = make(chan struct{})
		n.fifo[peer] = p.done
	}
	return p
}

// deliver executes a plan against the inner network: wait out the
// injected delay, wait for the previous delivery to the same peer,
// then send each planned message. The returned reply is the last
// successful one (for duplicates the replies are identical; a released
// reorder message rides along after the caller's own, whose ack the
// node-side callers ignore).
func (n *FaultyNetwork) deliver(ctx context.Context, peer string, p sendPlan) (gossip.Message, bool, error) {
	if p.done != nil {
		defer close(p.done)
	}
	if p.delay > 0 {
		select {
		case <-time.After(p.delay):
		case <-ctx.Done():
			return gossip.Message{}, false, ctx.Err()
		}
	}
	if p.prev != nil {
		select {
		case <-p.prev:
		case <-ctx.Done():
			return gossip.Message{}, false, ctx.Err()
		}
	}
	var (
		reply gossip.Message
		err   error
		ok    bool
	)
	for _, m := range p.msgs {
		if r, rerr := n.inner.Request(ctx, peer, m); rerr == nil {
			reply = r
			ok = true
		} else if err == nil {
			err = rerr
		}
	}
	return reply, ok, err
}

// Broadcast implements gossip.Network: per-peer fault decisions, then
// per-peer Requests against the inner network so one peer's injected
// drop doesn't mask delivery to the others. Mirroring the inner
// Broadcast contract, it succeeds if any peer was reached or no peer
// was eligible.
func (n *FaultyNetwork) Broadcast(ctx context.Context, msg gossip.Message) error {
	peers := n.inner.Peers()
	if len(peers) == 0 {
		return n.inner.Broadcast(ctx, msg)
	}
	var (
		wg        sync.WaitGroup
		successMu sync.Mutex
		delivered int
		attempted int
		firstErr  error
	)
	for _, peer := range peers {
		p := n.plan(peer, msg, true)
		if len(p.msgs) == 0 {
			continue
		}
		attempted++
		wg.Add(1)
		go func(peer string, p sendPlan) {
			defer wg.Done()
			_, ok, err := n.deliver(ctx, peer, p)
			successMu.Lock()
			if ok {
				delivered++
			} else if firstErr == nil {
				firstErr = err
			}
			successMu.Unlock()
		}(peer, p)
	}
	wg.Wait()
	if attempted == 0 {
		// Every peer was dropped or held: the broadcast vanished, which
		// is exactly the fault being modelled. Report success — the
		// sender can't tell.
		return nil
	}
	if delivered == 0 && firstErr != nil {
		return firstErr
	}
	return nil
}

// Request implements gossip.Network. MsgTransaction requests are the
// fan-out datagrams full nodes push point-to-point, so they get the
// full datagram fault mix — including duplication and reordering; a
// message held back for reordering acks success to the sender (the
// datagram is "in flight" and rides out with the next push to the same
// peer). All other request types are synchronous exchanges whose reply
// the caller owns: droppable and delayable, never duplicated or
// reordered.
func (n *FaultyNetwork) Request(ctx context.Context, peer string, msg gossip.Message) (gossip.Message, error) {
	p := n.plan(peer, msg, msg.Type == gossip.MsgTransaction)
	if p.held {
		return gossip.Message{}, nil
	}
	if len(p.msgs) == 0 {
		return gossip.Message{}, ErrInjectedDrop
	}
	reply, ok, err := n.deliver(ctx, peer, p)
	if !ok {
		if err == nil {
			err = ErrInjectedDrop
		}
		return gossip.Message{}, err
	}
	return reply, nil
}
