package chaos

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/gossip"
)

// orderSink joins a bus as name and records the first payload byte of
// every MsgTransaction delivered to it, in arrival order.
type orderSink struct {
	mu  sync.Mutex
	got []byte
}

func newOrderSink(t *testing.T, bus *gossip.Bus, name string) (*orderSink, *gossip.BusPeer) {
	t.Helper()
	peer, err := bus.Join(name)
	if err != nil {
		t.Fatal(err)
	}
	s := &orderSink{}
	peer.SetHandler(gossip.HandlerFunc(func(from string, m gossip.Message) (*gossip.Message, error) {
		if m.Type == gossip.MsgTransaction && len(m.TxData) > 0 && len(m.TxData[0]) > 0 {
			s.mu.Lock()
			s.got = append(s.got, m.TxData[0][0])
			s.mu.Unlock()
		}
		return &gossip.Message{}, nil
	}))
	return s, peer
}

func (s *orderSink) seq() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.got...)
}

func push(ctx context.Context, fn *FaultyNetwork, peer string, b byte) error {
	_, err := fn.Request(ctx, peer, gossip.Message{
		Type: gossip.MsgTransaction, TxData: [][]byte{{b}},
	})
	return err
}

// TestFaultyNetworkReorderSwapsAdjacentPushes pins the reorder
// contract on the point-to-point push path full nodes actually use:
// with ReorderProb=1 every odd push is absorbed (acked as in-flight)
// and released behind the next one, so the peer observes adjacent
// pairs swapped.
func TestFaultyNetworkReorderSwapsAdjacentPushes(t *testing.T) {
	bus := gossip.NewBus()
	defer bus.Close()
	a, _ := bus.Join("a")
	sink, _ := newOrderSink(t, bus, "b")
	fn := NewFaultyNetwork(a, NetFaults{ReorderProb: 1}, 1)

	for i := byte(1); i <= 6; i++ {
		if err := push(context.Background(), fn, "b", i); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	want := []byte{2, 1, 4, 3, 6, 5}
	if got := sink.seq(); string(got) != string(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	if fn.Reordered != 3 {
		t.Fatalf("Reordered = %d, want 3", fn.Reordered)
	}
}

// TestFaultyNetworkBlockDropsHeldReorder pins the reorder+partition
// composition edge: a datagram held back for reordering when the link
// partitions must die with the partition, not sit in the buffer and
// leak across after the link heals.
func TestFaultyNetworkBlockDropsHeldReorder(t *testing.T) {
	bus := gossip.NewBus()
	defer bus.Close()
	a, _ := bus.Join("a")
	sink, _ := newOrderSink(t, bus, "b")
	fn := NewFaultyNetwork(a, NetFaults{ReorderProb: 1}, 1)
	ctx := context.Background()

	if err := push(ctx, fn, "b", 1); err != nil {
		t.Fatalf("push 1: %v", err) // absorbed into the reorder buffer
	}
	fn.Block("b")
	if fn.Dropped != 1 {
		t.Fatalf("Dropped = %d after Block, want 1 (the held datagram)", fn.Dropped)
	}
	fn.Unblock("b")
	if err := push(ctx, fn, "b", 2); err != nil { // held
		t.Fatalf("push 2: %v", err)
	}
	if err := push(ctx, fn, "b", 3); err != nil { // releases 2 behind it
		t.Fatalf("push 3: %v", err)
	}
	// The pre-partition datagram 1 must never cross; post-partition
	// traffic reorders normally.
	want := []byte{3, 2}
	if got := sink.seq(); string(got) != string(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
}

// TestFaultyNetworkSyncExchangesNeverDupedOrReordered pins the
// request-class split: synchronous exchanges own their reply, so even
// a fault mix with certain duplication and reordering must deliver
// them exactly once, in order.
func TestFaultyNetworkSyncExchangesNeverDupedOrReordered(t *testing.T) {
	bus := gossip.NewBus()
	defer bus.Close()
	a, _ := bus.Join("a")
	peer, err := bus.Join("b")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu  sync.Mutex
		got []byte
	)
	peer.SetHandler(gossip.HandlerFunc(func(from string, m gossip.Message) (*gossip.Message, error) {
		mu.Lock()
		got = append(got, byte(m.Offset))
		mu.Unlock()
		return &gossip.Message{}, nil
	}))
	fn := NewFaultyNetwork(a, NetFaults{DupProb: 1, ReorderProb: 1}, 1)
	for i := 0; i < 5; i++ {
		if _, err := fn.Request(context.Background(), "b", gossip.Message{Type: gossip.MsgSyncRequest, Offset: uint64(i)}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if string(got) != string([]byte{0, 1, 2, 3, 4}) {
		t.Fatalf("sync exchanges delivered %v, want in-order exactly-once", got)
	}
	if fn.Duplicated != 0 || fn.Reordered != 0 {
		t.Fatalf("sync exchange faulted: dup=%d reorder=%d", fn.Duplicated, fn.Reordered)
	}
}

// TestFaultyNetworkDelayPreservesPerPeerOrder pins the delay+dup
// composition edge: random per-message delays shift latency but must
// never invert a peer's stream, and duplicates arrive adjacent to
// their original. With no drops and no reordering, collapsing adjacent
// duplicates must therefore reproduce the send order exactly.
func TestFaultyNetworkDelayPreservesPerPeerOrder(t *testing.T) {
	bus := gossip.NewBus()
	defer bus.Close()
	a, _ := bus.Join("a")
	sink, _ := newOrderSink(t, bus, "b")
	fn := NewFaultyNetwork(a, NetFaults{DelayMax: 500 * time.Microsecond, DupProb: 0.4}, 7)
	for i := byte(1); i <= 30; i++ {
		if err := push(context.Background(), fn, "b", i); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	got := sink.seq()
	var collapsed []byte
	for i, b := range got {
		if i > 0 && got[i-1] == b {
			continue
		}
		collapsed = append(collapsed, b)
	}
	if len(collapsed) != 30 {
		t.Fatalf("collapsed stream has %d entries, want 30: %v", len(collapsed), got)
	}
	for i, b := range collapsed {
		if b != byte(i+1) {
			t.Fatalf("delay inverted per-peer order at %d: %v", i, got)
		}
	}
	if fn.Duplicated == 0 {
		t.Fatal("dup mix degenerate: no duplicates injected")
	}
	if int64(len(got)) != 30+fn.Duplicated {
		t.Fatalf("delivered %d messages with %d duplicates", len(got), fn.Duplicated)
	}
}

// TestFaultyNetworkComposedFaultSchedulePinned drives the full
// composed mix — drop, duplicate, delay, reorder, plus a Block window
// mid-stream — under one fixed seed and pins the exact delivered
// sequence. Two back-to-back runs must agree with each other AND with
// the golden schedule: any change to how faults consume randomness or
// compose is a visible diff here, not a silent behaviour shift.
func TestFaultyNetworkComposedFaultSchedulePinned(t *testing.T) {
	run := func() ([]byte, [4]int64) {
		bus := gossip.NewBus()
		defer bus.Close()
		a, _ := bus.Join("a")
		sink, _ := newOrderSink(t, bus, "b")
		fn := NewFaultyNetwork(a, NetFaults{
			DropProb:    0.2,
			DupProb:     0.2,
			DelayMax:    200 * time.Microsecond,
			ReorderProb: 0.25,
		}, 42)
		ctx := context.Background()
		for i := byte(1); i <= 30; i++ {
			if i == 11 {
				fn.Block("b")
			}
			if i == 21 {
				fn.Unblock("b")
			}
			_ = push(ctx, fn, "b", i) // injected drops are the point
		}
		return sink.seq(), [4]int64{fn.Dropped, fn.Duplicated, fn.Delayed, fn.Reordered}
	}

	got1, c1 := run()
	got2, c2 := run()
	if string(got1) != string(got2) || c1 != c2 {
		t.Fatalf("same seed diverged:\n  run1 %v %v\n  run2 %v %v", got1, c1, got2, c2)
	}
	want := []byte{1, 3, 5, 4, 6, 7, 9, 8, 10, 21, 22, 24, 23, 25, 25, 27, 29, 28}
	if string(got1) != string(want) {
		t.Fatalf("fault schedule shifted for seed 42:\n  got  %v\n  want %v", got1, want)
	}
	if c1[0] == 0 || c1[1] == 0 || c1[3] == 0 {
		t.Fatalf("composed mix degenerate: drop/dup/delay/reorder = %v", c1)
	}
}
