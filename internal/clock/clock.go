// Package clock provides a time source abstraction so that every
// time-dependent component in B-IoT (credit decay, lazy-tip detection,
// replay-attack windows, workload generators) can run against either the
// real wall clock or a deterministic virtual clock.
//
// The paper's credit equations (Eqns 2-5) are pure functions of event
// timestamps; running them against a virtual clock reproduces Fig 8 of
// the paper exactly and instantly, with no 90-second real-time waits.
package clock

import (
	"sync"
	"time"
)

// Clock is a minimal time source. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current instant according to this clock.
	Now() time.Time
	// Sleep blocks the caller for d according to this clock. A virtual
	// clock returns immediately after advancing bookkeeping; the real
	// clock actually sleeps.
	Sleep(d time.Duration)
}

// Real returns a Clock backed by the system wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

var _ Clock = realClock{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a manually advanced clock for deterministic simulations and
// tests. The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep advances the virtual clock by d and returns immediately.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Advance moves the virtual clock forward by d. Negative durations are
// ignored: time never flows backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
}

// Set positions the clock at t if t is not before the current instant.
// It reports whether the clock moved.
func (v *Virtual) Set(t time.Time) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.Before(v.now) {
		return false
	}
	v.now = t
	return true
}
