package clock

import (
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	c := Real()
	a := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(a) {
		t.Error("real clock did not advance")
	}
}

func TestVirtualClock(t *testing.T) {
	start := time.Unix(1_700_000_000, 0)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Errorf("Now = %v", v.Now())
	}
	v.Advance(30 * time.Second)
	if got := v.Now(); !got.Equal(start.Add(30 * time.Second)) {
		t.Errorf("after Advance: %v", got)
	}
	v.Sleep(10 * time.Second)
	if got := v.Now(); !got.Equal(start.Add(40 * time.Second)) {
		t.Errorf("after Sleep: %v", got)
	}
}

func TestVirtualClockNeverGoesBackwards(t *testing.T) {
	start := time.Unix(1_700_000_000, 0)
	v := NewVirtual(start)
	v.Advance(-time.Hour)
	if !v.Now().Equal(start) {
		t.Error("negative advance moved the clock")
	}
	if v.Set(start.Add(-time.Second)) {
		t.Error("Set accepted a past instant")
	}
	if !v.Set(start.Add(time.Minute)) {
		t.Error("Set rejected a future instant")
	}
	if !v.Now().Equal(start.Add(time.Minute)) {
		t.Error("Set did not move the clock")
	}
}

func TestVirtualClockConcurrentSafety(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			v.Advance(time.Millisecond)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = v.Now()
	}
	<-done
	if got := v.Now(); !got.Equal(time.Unix(1, 0)) {
		t.Errorf("final = %v, want 1s", got)
	}
}
