package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// TxRecord is one valid transaction attributed to a node: its approval
// weight and the instant it was observed.
type TxRecord struct {
	ID     hashutil.Hash
	Weight float64
	At     time.Time
}

// EventRecord is one detected malicious behaviour.
type EventRecord struct {
	Behaviour Behaviour
	At        time.Time
	// Evidence optionally references the offending transaction(s).
	Evidence []hashutil.Hash
	// Detail is a human-readable description for operators.
	Detail string
}

// Credit is a node's evaluated credit at some instant.
type Credit struct {
	CrP float64 // positive part, Eqn 3
	CrN float64 // negative part (≤ 0), Eqn 4
	Cr  float64 // combined, Eqn 2
}

// Ledger records per-node behaviour and evaluates credit. It is safe for
// concurrent use. Records are append-only: "the credit value is
// calculated based on transaction weight and abnormal behaviours, which
// can be reflected from blockchain records, so the credit value cannot
// be forged or tampered" (§IV-B).
type Ledger struct {
	params Params

	mu    sync.RWMutex
	nodes map[identity.Address]*nodeRecord
}

type nodeRecord struct {
	txs     []TxRecord // ordered by At
	txIndex map[hashutil.Hash]int
	events  []EventRecord // ordered by At, capped at MaxEventsRetained

	// Rolling CrP window: txs[winLo:winHi] are exactly the records with
	// winNow−ΔT ≤ At ≤ winNow, and winSum is their summed weight. A
	// query advances the window to its own now — adding newly eligible
	// records at winHi, evicting expired ones at winLo — so repeated
	// evaluation is O(evicted+added) instead of O(window). Mutations
	// keep the invariant (or clear winValid when they cannot cheaply).
	winValid bool
	winLo    int
	winHi    int
	winSum   float64
	winNow   time.Time

	// Carry for events evicted by the retention cap: evCarry is their
	// summed punishment coefficient, evCarryAt the newest evicted
	// timestamp. Decaying the whole carry by the newest evicted age
	// over-punishes (every evicted event is at least that old), which
	// is the safe direction — the paper requires that misbehaviour's
	// impact "cannot be eliminated over time".
	evCarry   float64
	evCarryAt time.Time

	// CrN cache: exact value at crnAt for event-version crnVer. Any
	// event mutation (insert or cap eviction) bumps evVer, so a stale
	// cache can never survive a change to the punished history.
	evVer    uint64
	crnValid bool
	crnAt    time.Time
	crnVer   uint64
	crn      float64
}

// NewLedger creates a credit ledger with the given parameters.
func NewLedger(params Params) (*Ledger, error) {
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("credit ledger params: %w", err)
	}
	if params.MaxEventsRetained == 0 {
		params.MaxEventsRetained = DefaultMaxEventsRetained
	}
	return &Ledger{
		params: params,
		nodes:  make(map[identity.Address]*nodeRecord),
	}, nil
}

// Params returns the ledger's parameter set.
func (l *Ledger) Params() Params { return l.params }

func (l *Ledger) record(addr identity.Address) *nodeRecord {
	rec, ok := l.nodes[addr]
	if !ok {
		rec = &nodeRecord{txIndex: make(map[hashutil.Hash]int)}
		l.nodes[addr] = rec
	}
	return rec
}

// RecordTransaction attributes a valid transaction with the given weight
// to node addr at instant at. Weights are clamped to [0, MaxWeight].
// Idempotent per ID: re-recording a known transaction keeps its original
// instant and only ever grows its weight, so concurrent duplicate
// deliveries (gossip + sync racing) cannot double-count.
func (l *Ledger) RecordTransaction(addr identity.Address, id hashutil.Hash, weight float64, at time.Time) {
	if weight < 0 {
		weight = 0
	}
	if weight > l.params.MaxWeight {
		weight = l.params.MaxWeight
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := l.record(addr)
	if idx, ok := rec.txIndex[id]; ok {
		if weight > rec.txs[idx].Weight {
			rec.winAdjustWeight(idx, weight-rec.txs[idx].Weight)
			rec.txs[idx].Weight = weight
		}
		return
	}
	tr := TxRecord{ID: id, Weight: weight, At: at}
	rec.winNoteInsert(tr, l.params.DeltaT)
	rec.insertTx(tr)
}

// RemoveTransaction withdraws a previously recorded transaction — the
// node layer records before DAG attachment (so approval events always
// find the record) and must roll back when the attach fails.
func (l *Ledger) RemoveTransaction(addr identity.Address, id hashutil.Hash) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.nodes[addr]
	if !ok {
		return
	}
	idx, ok := rec.txIndex[id]
	if !ok {
		return
	}
	rec.winNoteRemove(idx, rec.txs[idx].Weight)
	rec.txs = append(rec.txs[:idx], rec.txs[idx+1:]...)
	delete(rec.txIndex, id)
	for i := idx; i < len(rec.txs); i++ {
		rec.txIndex[rec.txs[i].ID] = i
	}
}

// UpdateWeight revises the recorded weight of a transaction previously
// attributed to addr — invoked when the transaction gains approvals
// ("the weight of a transaction means the number of validation to this
// transaction"). Unknown IDs are ignored (the record may have been
// pruned). Weights only grow; a smaller update is discarded.
func (l *Ledger) UpdateWeight(addr identity.Address, id hashutil.Hash, weight float64) {
	if weight > l.params.MaxWeight {
		weight = l.params.MaxWeight
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.nodes[addr]
	if !ok {
		return
	}
	idx, ok := rec.txIndex[id]
	if !ok {
		return
	}
	if weight > rec.txs[idx].Weight {
		rec.winAdjustWeight(idx, weight-rec.txs[idx].Weight)
		rec.txs[idx].Weight = weight
	}
}

// RecordMalicious attributes a detected malicious behaviour to addr.
// Retention is capped at MaxEventsRetained per node: the oldest events
// are folded into the carry term (see nodeRecord) so the punished
// history stays bounded without ever punishing less.
func (l *Ledger) RecordMalicious(addr identity.Address, ev EventRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := l.record(addr)
	rec.events = insertEvent(rec.events, ev)
	for len(rec.events) > l.params.MaxEventsRetained {
		old := rec.events[0]
		rec.evCarry += l.params.Alpha(old.Behaviour)
		if old.At.After(rec.evCarryAt) {
			rec.evCarryAt = old.At
		}
		rec.events = append(rec.events[:0], rec.events[1:]...)
	}
	rec.evVer++
}

// insertTx keeps the slice ordered by At (records usually arrive in
// order; the tail scan is O(1) amortized) and the ID index consistent.
func (r *nodeRecord) insertTx(tr TxRecord) {
	r.txs = append(r.txs, tr)
	i := len(r.txs) - 1
	for ; i > 0 && r.txs[i].At.Before(r.txs[i-1].At); i-- {
		r.txs[i], r.txs[i-1] = r.txs[i-1], r.txs[i]
		r.txIndex[r.txs[i].ID] = i
	}
	r.txIndex[r.txs[i].ID] = i
}

func insertEvent(evs []EventRecord, ev EventRecord) []EventRecord {
	evs = append(evs, ev)
	for i := len(evs) - 1; i > 0 && evs[i].At.Before(evs[i-1].At); i-- {
		evs[i], evs[i-1] = evs[i-1], evs[i]
	}
	return evs
}

// winNoteInsert updates the rolling window for a record about to be
// inserted. Classification is by timestamp against the window the sums
// were last advanced to (winNow): sorted insertion guarantees a record
// older than the window lands at or before winLo, an in-window one
// within [winLo, winHi], and a future one at or after winHi — so the
// index range stays aligned without knowing the exact insert position.
func (r *nodeRecord) winNoteInsert(tr TxRecord, deltaT time.Duration) {
	if !r.winValid {
		return
	}
	ws := r.winNow.Add(-deltaT)
	switch {
	case tr.At.Before(ws): // already expired relative to winNow
		r.winLo++
		r.winHi++
	case tr.At.After(r.winNow): // not yet visible; next advance adds it
	default:
		r.winSum += tr.Weight
		r.winHi++
	}
}

// winNoteRemove updates the rolling window for the record at idx being
// spliced out.
func (r *nodeRecord) winNoteRemove(idx int, weight float64) {
	if !r.winValid {
		return
	}
	switch {
	case idx < r.winLo:
		r.winLo--
		r.winHi--
	case idx < r.winHi:
		r.winSum -= weight
		r.winHi--
		if r.winLo == r.winHi {
			r.winSum = 0 // empty window: reset accumulated float drift
		}
	}
}

// winAdjustWeight adds delta to the window sum iff the record at idx is
// inside it. Window membership is exactly the index range [winLo,
// winHi) — that is the rolling invariant.
func (r *nodeRecord) winAdjustWeight(idx int, delta float64) {
	if r.winValid && idx >= r.winLo && idx < r.winHi {
		r.winSum += delta
	}
}

// PositiveCredit evaluates CrP (Eqn 3) for addr at instant now: the sum
// of transaction weights within the latest ΔT window, divided by ΔT in
// seconds. A node with no activity in the window scores 0 — "the system
// will not decrease the difficulty of PoW for it at the beginning".
//
// Evaluation is incremental: the per-node rolling window advances from
// its last position, so a query costs O(records that entered or left
// the window since) — O(1) amortized on the admission hot path —
// instead of rescanning the full ΔT window. Queries therefore take the
// write lock; the critical section is tiny.
func (l *Ledger) PositiveCredit(addr identity.Address, now time.Time) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.nodes[addr]
	if !ok {
		return 0
	}
	return l.positiveLocked(rec, now)
}

// positiveLocked advances rec's rolling window to now and returns CrP.
// Caller holds the write lock.
func (l *Ledger) positiveLocked(rec *nodeRecord, now time.Time) float64 {
	windowStart := now.Add(-l.params.DeltaT)
	if !rec.winValid || now.Before(rec.winNow) {
		// First query, post-prune, or a time rewind (virtual clocks in
		// tests and replays): rebuild the window by binary search.
		rec.winLo = sort.Search(len(rec.txs), func(i int) bool {
			return !rec.txs[i].At.Before(windowStart)
		})
		rec.winHi = rec.winLo + sort.Search(len(rec.txs)-rec.winLo, func(i int) bool {
			return rec.txs[rec.winLo+i].At.After(now)
		})
		rec.winSum = 0
		for _, tr := range rec.txs[rec.winLo:rec.winHi] {
			rec.winSum += tr.Weight
		}
		rec.winValid = true
		rec.winNow = now
		return rec.winSum / l.params.DeltaT.Seconds()
	}
	// Advance: admit records that became visible (At ≤ now) ...
	for rec.winHi < len(rec.txs) && !rec.txs[rec.winHi].At.After(now) {
		rec.winSum += rec.txs[rec.winHi].Weight
		rec.winHi++
	}
	// ... and evict records that expired (At < now − ΔT).
	for rec.winLo < rec.winHi && rec.txs[rec.winLo].At.Before(windowStart) {
		rec.winSum -= rec.txs[rec.winLo].Weight
		rec.winLo++
	}
	if rec.winLo == rec.winHi {
		rec.winSum = 0 // empty window: reset accumulated float drift
	}
	rec.winNow = now
	return rec.winSum / l.params.DeltaT.Seconds()
}

// rescanPositiveLocked is the from-scratch CrP reference: a binary
// search for the window start and a linear sum. It does not touch the
// rolling state; property tests pin the incremental path against it,
// and storebench uses it as the before-optimization baseline.
func (l *Ledger) rescanPositiveLocked(rec *nodeRecord, now time.Time) float64 {
	windowStart := now.Add(-l.params.DeltaT)
	idx := sort.Search(len(rec.txs), func(i int) bool {
		return !rec.txs[i].At.Before(windowStart)
	})
	var sum float64
	for _, tr := range rec.txs[idx:] {
		if tr.At.After(now) {
			break // ignore records from the future (virtual-clock replays)
		}
		sum += tr.Weight
	}
	return sum / l.params.DeltaT.Seconds()
}

// NegativeCredit evaluates CrN (Eqn 4) for addr at instant now:
//
//	CrN = − Σ_k α(B_k) · ΔT / (t − t_k)
//
// The age (t − t_k) is floored at MinEventAge so the punishment is large
// but finite at detection time. The contribution of each event decays
// hyperbolically "but different from CrP, the impact cannot be
// eliminated over time".
//
// The scan is bounded by MaxEventsRetained (evicted events contribute
// through the carry term), and the result is cached per node keyed on
// (instant, event version): any event mutation invalidates it, and a
// repeat query at the same instant — several difficulty evaluations in
// one admission batch — is a map-lookup hit.
func (l *Ledger) NegativeCredit(addr identity.Address, now time.Time) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.nodes[addr]
	if !ok {
		return 0
	}
	return l.negativeLocked(rec, now)
}

// negativeLocked returns CrN at now, consulting and refreshing rec's
// cache. Caller holds the write lock.
func (l *Ledger) negativeLocked(rec *nodeRecord, now time.Time) float64 {
	if rec.crnValid && rec.crnVer == rec.evVer && rec.crnAt.Equal(now) {
		return rec.crn
	}
	crn := l.computeCrN(rec, now)
	rec.crn = crn
	rec.crnAt = now
	rec.crnVer = rec.evVer
	rec.crnValid = true
	return crn
}

// computeCrN evaluates Eqn 4 over the retained events plus the carry
// term for cap-evicted ones. Read-only on rec.
func (l *Ledger) computeCrN(rec *nodeRecord, now time.Time) float64 {
	var sum float64
	deltaT := l.params.DeltaT.Seconds()
	minAge := l.params.MinEventAge.Seconds()
	for _, ev := range rec.events {
		if ev.At.After(now) {
			continue
		}
		age := now.Sub(ev.At).Seconds()
		if age < minAge {
			age = minAge
		}
		sum += l.params.Alpha(ev.Behaviour) * deltaT / age
	}
	if rec.evCarry > 0 {
		age := now.Sub(rec.evCarryAt).Seconds()
		if age < minAge {
			age = minAge
		}
		sum += rec.evCarry * deltaT / age
	}
	return -sum
}

// CreditOf evaluates the full Eqn-2 credit for addr at now, through the
// incremental CrP window and the CrN cache.
func (l *Ledger) CreditOf(addr identity.Address, now time.Time) Credit {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.nodes[addr]
	if !ok {
		return Credit{}
	}
	crP := l.positiveLocked(rec, now)
	crN := l.negativeLocked(rec, now)
	return Credit{
		CrP: crP,
		CrN: crN,
		Cr:  l.params.Lambda1*crP + l.params.Lambda2*crN,
	}
}

// RescanCredit evaluates credit from scratch — full window rescan, no
// rolling sums, no CrN cache (the carry term for cap-evicted events
// still applies; it is part of the definition once events are gone).
// It is the reference the property tests compare the incremental path
// against, and the baseline mode of the storebench credit benchmark.
func (l *Ledger) RescanCredit(addr identity.Address, now time.Time) Credit {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rec, ok := l.nodes[addr]
	if !ok {
		return Credit{}
	}
	crP := l.rescanPositiveLocked(rec, now)
	crN := l.computeCrN(rec, now)
	return Credit{
		CrP: crP,
		CrN: crN,
		Cr:  l.params.Lambda1*crP + l.params.Lambda2*crN,
	}
}

// TransactionCount returns how many valid transactions are recorded for
// addr (all time).
func (l *Ledger) TransactionCount(addr identity.Address) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rec, ok := l.nodes[addr]
	if !ok {
		return 0
	}
	return len(rec.txs)
}

// Events returns a copy of the malicious-event history for addr.
func (l *Ledger) Events(addr identity.Address) []EventRecord {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rec, ok := l.nodes[addr]
	if !ok {
		return nil
	}
	out := make([]EventRecord, len(rec.events))
	copy(out, rec.events)
	return out
}

// Nodes returns the addresses with any recorded history.
func (l *Ledger) Nodes() []identity.Address {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]identity.Address, 0, len(l.nodes))
	for addr := range l.nodes {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Prune drops transaction records older than keep before now. Event
// records are never pruned: the paper requires that misbehaviour "cannot
// be eliminated over time". Prune bounds light-ledger memory on
// long-running gateways; keep must be ≥ ΔT or CrP evaluation would lose
// in-window records (shorter values are raised to ΔT).
func (l *Ledger) Prune(now time.Time, keep time.Duration) int {
	if keep < l.params.DeltaT {
		keep = l.params.DeltaT
	}
	cutoff := now.Add(-keep)
	l.mu.Lock()
	defer l.mu.Unlock()
	pruned := 0
	for _, rec := range l.nodes {
		idx := sort.Search(len(rec.txs), func(i int) bool {
			return !rec.txs[i].At.Before(cutoff)
		})
		if idx > 0 {
			pruned += idx
			for _, tr := range rec.txs[:idx] {
				delete(rec.txIndex, tr.ID)
			}
			rec.txs = append(rec.txs[:0], rec.txs[idx:]...)
			for i, tr := range rec.txs {
				rec.txIndex[tr.ID] = i
			}
			if rec.winValid {
				if idx <= rec.winLo {
					// Only already-evicted records were dropped; the
					// window just shifts left.
					rec.winLo -= idx
					rec.winHi -= idx
				} else {
					// The cutoff cut into the window (possible when the
					// window lags the pruning clock): rebuild lazily on
					// the next query.
					rec.winValid = false
				}
			}
		}
	}
	return pruned
}
