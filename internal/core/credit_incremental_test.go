package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

func incTestParams() Params {
	p := DefaultParams()
	p.DeltaT = 10 * time.Second
	return p
}

func creditClose(a, b Credit) bool {
	const eps = 1e-9
	near := func(x, y float64) bool {
		return math.Abs(x-y) <= eps*(1+math.Abs(x)+math.Abs(y))
	}
	return near(a.CrP, b.CrP) && near(a.CrN, b.CrN) && near(a.Cr, b.Cr)
}

// TestIncrementalCreditMatchesRescan is the satellite property test:
// after arbitrary interleavings of record / update-weight / remove /
// prune / malicious-event operations under a mostly-advancing (but
// occasionally rewinding) clock, the incremental CreditOf must equal a
// from-scratch recompute. This pins every window-maintenance branch —
// insert before/inside/after the window, removal on both sides, weight
// bumps, prune cutting at and into the window, and rewind rebuilds.
func TestIncrementalCreditMatchesRescan(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l, err := NewLedger(incTestParams())
		if err != nil {
			t.Fatal(err)
		}
		base := time.Unix(1000, 0)
		now := base
		addrs := make([]identity.Address, 3)
		for i := range addrs {
			addrs[i] = identity.Address(hashutil.Sum([]byte{byte(i + 1)}))
		}
		type known struct {
			addr identity.Address
			id   hashutil.Hash
		}
		var ids []known
		nextID := 0

		for step := 0; step < 400; step++ {
			addr := addrs[rng.Intn(len(addrs))]
			switch op := rng.Intn(10); {
			case op < 4: // record a tx somewhere around now (past, in-window, future)
				nextID++
				id := hashutil.Sum([]byte(fmt.Sprintf("tx-%d-%d", seed, nextID)))
				at := now.Add(time.Duration(rng.Intn(30)-22) * time.Second)
				l.RecordTransaction(addr, id, rng.Float64()*4, at)
				ids = append(ids, known{addr, id})
			case op < 5 && len(ids) > 0: // grow a weight
				k := ids[rng.Intn(len(ids))]
				l.UpdateWeight(k.addr, k.id, rng.Float64()*8)
			case op < 6 && len(ids) > 0: // withdraw a record
				i := rng.Intn(len(ids))
				l.RemoveTransaction(ids[i].addr, ids[i].id)
				ids = append(ids[:i], ids[i+1:]...)
			case op < 7: // malicious event
				l.RecordMalicious(addr, EventRecord{
					Behaviour: Behaviour(rng.Intn(3) + 1),
					At:        now.Add(-time.Duration(rng.Intn(20)) * time.Second),
				})
			case op < 8: // prune
				l.Prune(now, time.Duration(10+rng.Intn(20))*time.Second)
			}

			// Advance the clock; occasionally rewind it (replays and
			// skewed virtual clocks do this in the wild).
			if rng.Intn(12) == 0 {
				now = now.Add(-time.Duration(rng.Intn(5000)) * time.Millisecond)
			} else {
				now = now.Add(time.Duration(rng.Intn(1500)) * time.Millisecond)
			}

			qa := addrs[rng.Intn(len(addrs))]
			inc := l.CreditOf(qa, now)
			ref := l.RescanCredit(qa, now)
			if !creditClose(inc, ref) {
				t.Fatalf("seed=%d step=%d: incremental %+v != rescan %+v", seed, step, inc, ref)
			}
			// Query again at the same instant: the CrN cache path.
			if again := l.CreditOf(qa, now); !creditClose(again, ref) {
				t.Fatalf("seed=%d step=%d: cached requery %+v != rescan %+v", seed, step, again, ref)
			}
		}
	}
}

// TestIncrementalCreditAdvanceOnly exercises the pure hot path — a
// monotonically advancing clock with records landing at "now", the
// shape every admission produces — and checks the window never drifts
// from the oracle.
func TestIncrementalCreditAdvanceOnly(t *testing.T) {
	l, err := NewLedger(incTestParams())
	if err != nil {
		t.Fatal(err)
	}
	addr := identity.Address(hashutil.Sum([]byte("hot")))
	now := time.Unix(5000, 0)
	for i := 0; i < 2000; i++ {
		id := hashutil.Sum([]byte(fmt.Sprintf("hot-%d", i)))
		l.RecordTransaction(addr, id, 1, now)
		inc := l.CreditOf(addr, now)
		ref := l.RescanCredit(addr, now)
		if !creditClose(inc, ref) {
			t.Fatalf("step %d: incremental %+v != rescan %+v", i, inc, ref)
		}
		now = now.Add(37 * time.Millisecond)
	}
}

// TestEventCapBoundsHistory pins the satellite fix for unbounded
// nodeRecord.events growth: retained events never exceed the cap, and
// the capped CrN is never milder than the uncapped one (the carry term
// decays evicted events by the newest evicted age — an overestimate of
// their punishment, by design).
func TestEventCapBoundsHistory(t *testing.T) {
	const cap = 8
	pCapped := incTestParams()
	pCapped.MaxEventsRetained = cap
	capped, err := NewLedger(pCapped)
	if err != nil {
		t.Fatal(err)
	}
	uncapped, err := NewLedger(incTestParams()) // default cap of 256 ≫ test volume
	if err != nil {
		t.Fatal(err)
	}
	addr := identity.Address(hashutil.Sum([]byte("attacker")))
	base := time.Unix(9000, 0)
	for i := 0; i < 100; i++ {
		ev := EventRecord{Behaviour: BehaviourDoubleSpend, At: base.Add(time.Duration(i) * time.Second)}
		capped.RecordMalicious(addr, ev)
		uncapped.RecordMalicious(addr, ev)
		if got := len(capped.Events(addr)); got > cap {
			t.Fatalf("after %d events, %d retained > cap %d", i+1, got, cap)
		}
	}
	now := base.Add(200 * time.Second)
	crnCapped := capped.NegativeCredit(addr, now)
	crnUncapped := uncapped.NegativeCredit(addr, now)
	if crnCapped > crnUncapped {
		t.Fatalf("capped CrN %v is milder than uncapped %v — carry must never under-punish", crnCapped, crnUncapped)
	}
	if crnCapped >= 0 {
		t.Fatalf("CrN = %v, want negative", crnCapped)
	}
}

// TestCrNCacheInvalidatedByNewEvent: a repeat query at the same instant
// must reflect an event recorded between the two queries — the event
// version bump must defeat the cache.
func TestCrNCacheInvalidatedByNewEvent(t *testing.T) {
	l, err := NewLedger(incTestParams())
	if err != nil {
		t.Fatal(err)
	}
	addr := identity.Address(hashutil.Sum([]byte("cached")))
	now := time.Unix(7000, 0)
	l.RecordMalicious(addr, EventRecord{Behaviour: BehaviourLazyTips, At: now.Add(-5 * time.Second)})
	first := l.NegativeCredit(addr, now)
	l.RecordMalicious(addr, EventRecord{Behaviour: BehaviourDoubleSpend, At: now.Add(-2 * time.Second)})
	second := l.NegativeCredit(addr, now)
	if second >= first {
		t.Fatalf("CrN %v after second event not more negative than %v — stale cache served", second, first)
	}
	if again := l.NegativeCredit(addr, now); again != second {
		t.Fatalf("repeat query %v != %v", again, second)
	}
}

// TestPruneRebuildsWindow drives Prune's two paths — cutoff at or
// before the evicted boundary (cheap shift) and cutoff inside a stale
// window (invalidate + rebuild) — and checks queries stay correct.
func TestPruneRebuildsWindow(t *testing.T) {
	l, err := NewLedger(incTestParams())
	if err != nil {
		t.Fatal(err)
	}
	addr := identity.Address(hashutil.Sum([]byte("pruned")))
	base := time.Unix(3000, 0)
	for i := 0; i < 50; i++ {
		id := hashutil.Sum([]byte(fmt.Sprintf("p-%d", i)))
		l.RecordTransaction(addr, id, 1, base.Add(time.Duration(i)*time.Second))
	}
	now := base.Add(55 * time.Second)
	l.CreditOf(addr, now) // establish the rolling window

	// Cheap path: prune far behind the window.
	l.Prune(now, 40*time.Second)
	if inc, ref := l.CreditOf(addr, now), l.RescanCredit(addr, now); !creditClose(inc, ref) {
		t.Fatalf("after boundary prune: %+v != %+v", inc, ref)
	}

	// Invalidate path: prune with a much later clock, so the cutoff
	// lands inside the (now stale) window.
	later := now.Add(30 * time.Second)
	l.Prune(later, 10*time.Second)
	if inc, ref := l.CreditOf(addr, later), l.RescanCredit(addr, later); !creditClose(inc, ref) {
		t.Fatalf("after in-window prune: %+v != %+v", inc, ref)
	}
}
