package core

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

var (
	t0       = time.Unix(1_700_000_000, 0).UTC()
	nodeA    = identity.Address(hashutil.Sum([]byte("node-a")))
	nodeB    = identity.Address(hashutil.Sum([]byte("node-b")))
	txFixt   = func(i int) hashutil.Hash { return hashutil.Sum([]byte(fmt.Sprintf("tx-%d", i))) }
	epsFloat = 1e-9
)

func mustLedger(t *testing.T, p Params) *Ledger {
	t.Helper()
	l, err := NewLedger(p)
	if err != nil {
		t.Fatalf("new ledger: %v", err)
	}
	return l
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.Lambda1 != 1.0 || p.Lambda2 != 0.5 {
		t.Errorf("λ = (%v, %v), paper sets (1, 0.5)", p.Lambda1, p.Lambda2)
	}
	if p.DeltaT != 30*time.Second {
		t.Errorf("ΔT = %v, paper sets 30 s", p.DeltaT)
	}
	if p.AlphaLazy != 0.5 || p.AlphaDouble != 1.0 {
		t.Errorf("α = (%v, %v), paper sets (0.5, 1)", p.AlphaLazy, p.AlphaDouble)
	}
	if p.InitialDifficulty != 11 {
		t.Errorf("D0 = %d, paper sets 11", p.InitialDifficulty)
	}
	if p.MinDifficulty != 1 || p.MaxDifficulty != 14 {
		t.Errorf("range [%d, %d], paper sweeps [1, 14]", p.MinDifficulty, p.MaxDifficulty)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"both lambdas zero", func(p *Params) { p.Lambda1, p.Lambda2 = 0, 0 }},
		{"negative lambda", func(p *Params) { p.Lambda1 = -1 }},
		{"zero deltaT", func(p *Params) { p.DeltaT = 0 }},
		{"negative alpha", func(p *Params) { p.AlphaLazy = -0.1 }},
		{"zero min event age", func(p *Params) { p.MinEventAge = 0 }},
		{"min > max difficulty", func(p *Params) { p.MinDifficulty = 15 }},
		{"initial below min", func(p *Params) { p.InitialDifficulty = 0 }},
		{"max above pow bound", func(p *Params) { p.MaxDifficulty = 1000 }},
		{"zero max weight", func(p *Params) { p.MaxWeight = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("invalid params validated")
			}
		})
	}
}

func TestAlphaPerBehaviour(t *testing.T) {
	p := DefaultParams()
	if p.Alpha(BehaviourLazyTips) != 0.5 {
		t.Error("α_l wrong")
	}
	if p.Alpha(BehaviourDoubleSpend) != 1.0 {
		t.Error("α_d wrong")
	}
	// Unknown behaviours get the strictest coefficient (never zero).
	if got := p.Alpha(Behaviour(99)); got != 1.0 {
		t.Errorf("unknown behaviour α = %v, want strictest (1.0)", got)
	}
}

// TestEqn3PositiveCredit checks CrP = Σ w_k / ΔT over the window.
func TestEqn3PositiveCredit(t *testing.T) {
	p := DefaultParams()
	l := mustLedger(t, p)
	// 3 transactions of weights 1, 2, 3 inside the window.
	l.RecordTransaction(nodeA, txFixt(1), 1, t0.Add(-5*time.Second))
	l.RecordTransaction(nodeA, txFixt(2), 2, t0.Add(-10*time.Second))
	l.RecordTransaction(nodeA, txFixt(3), 3, t0.Add(-20*time.Second))
	// One outside the window: excluded.
	l.RecordTransaction(nodeA, txFixt(4), 10, t0.Add(-40*time.Second))

	want := (1.0 + 2.0 + 3.0) / 30.0
	if got := l.PositiveCredit(nodeA, t0); math.Abs(got-want) > epsFloat {
		t.Errorf("CrP = %v, want %v", got, want)
	}
}

func TestCrPZeroForInactiveNode(t *testing.T) {
	p := DefaultParams()
	l := mustLedger(t, p)
	if l.PositiveCredit(nodeA, t0) != 0 {
		t.Error("fresh node has nonzero CrP")
	}
	l.RecordTransaction(nodeA, txFixt(1), 3, t0)
	// "If node i does not submit transactions for a period of time ...
	// CrP = 0."
	if got := l.PositiveCredit(nodeA, t0.Add(2*p.DeltaT)); got != 0 {
		t.Errorf("CrP after idling = %v, want 0", got)
	}
}

func TestCrPIgnoresFutureRecords(t *testing.T) {
	l := mustLedger(t, DefaultParams())
	l.RecordTransaction(nodeA, txFixt(1), 5, t0.Add(10*time.Second))
	if got := l.PositiveCredit(nodeA, t0); got != 0 {
		t.Errorf("future record counted: CrP = %v", got)
	}
}

func TestWeightClamping(t *testing.T) {
	p := DefaultParams()
	l := mustLedger(t, p)
	l.RecordTransaction(nodeA, txFixt(1), p.MaxWeight*10, t0)
	want := p.MaxWeight / p.DeltaT.Seconds()
	if got := l.PositiveCredit(nodeA, t0); math.Abs(got-want) > epsFloat {
		t.Errorf("CrP = %v, want clamped %v", got, want)
	}
	l.RecordTransaction(nodeB, txFixt(2), -3, t0)
	if got := l.PositiveCredit(nodeB, t0); got != 0 {
		t.Errorf("negative weight contributed: %v", got)
	}
}

// TestEqn4NegativeCredit checks CrN = −Σ α(B)·ΔT/(t−t_k).
func TestEqn4NegativeCredit(t *testing.T) {
	p := DefaultParams()
	l := mustLedger(t, p)
	l.RecordMalicious(nodeA, EventRecord{Behaviour: BehaviourDoubleSpend, At: t0.Add(-10 * time.Second)})
	l.RecordMalicious(nodeA, EventRecord{Behaviour: BehaviourLazyTips, At: t0.Add(-15 * time.Second)})

	want := -(1.0*30.0/10.0 + 0.5*30.0/15.0)
	if got := l.NegativeCredit(nodeA, t0); math.Abs(got-want) > epsFloat {
		t.Errorf("CrN = %v, want %v", got, want)
	}
}

func TestCrNFiniteAtDetectionInstant(t *testing.T) {
	p := DefaultParams()
	l := mustLedger(t, p)
	l.RecordMalicious(nodeA, EventRecord{Behaviour: BehaviourDoubleSpend, At: t0})
	got := l.NegativeCredit(nodeA, t0)
	want := -1.0 * p.DeltaT.Seconds() / p.MinEventAge.Seconds()
	if math.Abs(got-want) > epsFloat {
		t.Errorf("CrN at detection = %v, want floored %v", got, want)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Error("CrN not finite at detection instant")
	}
}

// The paper: "the impact cannot be eliminated over time" — CrN decays
// toward zero but never reaches it.
func TestCrNDecaysButNeverVanishes(t *testing.T) {
	l := mustLedger(t, DefaultParams())
	l.RecordMalicious(nodeA, EventRecord{Behaviour: BehaviourDoubleSpend, At: t0})
	prev := l.NegativeCredit(nodeA, t0)
	for _, age := range []time.Duration{10 * time.Second, time.Minute, time.Hour, 24 * time.Hour} {
		cur := l.NegativeCredit(nodeA, t0.Add(age))
		if cur <= prev {
			t.Errorf("CrN did not increase toward 0 at age %v: %v -> %v", age, prev, cur)
		}
		if cur >= 0 {
			t.Errorf("CrN reached zero at age %v", age)
		}
		prev = cur
	}
}

// TestEqn2Combination checks Cr = λ1·CrP + λ2·CrN.
func TestEqn2Combination(t *testing.T) {
	p := DefaultParams()
	p.Lambda1 = 0.8
	p.Lambda2 = 1.7
	l := mustLedger(t, p)
	l.RecordTransaction(nodeA, txFixt(1), 3, t0.Add(-5*time.Second))
	l.RecordMalicious(nodeA, EventRecord{Behaviour: BehaviourDoubleSpend, At: t0.Add(-10 * time.Second)})
	c := l.CreditOf(nodeA, t0)
	want := p.Lambda1*c.CrP + p.Lambda2*c.CrN
	if math.Abs(c.Cr-want) > epsFloat {
		t.Errorf("Cr = %v, want λ-combination %v", c.Cr, want)
	}
	if c.CrP <= 0 || c.CrN >= 0 {
		t.Errorf("component signs wrong: %+v", c)
	}
}

func TestCreditIsolationBetweenNodes(t *testing.T) {
	l := mustLedger(t, DefaultParams())
	l.RecordMalicious(nodeA, EventRecord{Behaviour: BehaviourDoubleSpend, At: t0})
	l.RecordTransaction(nodeB, txFixt(1), 2, t0)
	if l.CreditOf(nodeB, t0).CrN != 0 {
		t.Error("node B inherited node A's punishment")
	}
	if l.CreditOf(nodeA, t0).CrP != 0 {
		t.Error("node A inherited node B's activity")
	}
}

func TestUpdateWeight(t *testing.T) {
	p := DefaultParams()
	l := mustLedger(t, p)
	id := txFixt(1)
	l.RecordTransaction(nodeA, id, 1, t0)
	l.UpdateWeight(nodeA, id, 3)
	want := 3.0 / p.DeltaT.Seconds()
	if got := l.PositiveCredit(nodeA, t0); math.Abs(got-want) > epsFloat {
		t.Errorf("CrP after update = %v, want %v", got, want)
	}
	// Weights only grow.
	l.UpdateWeight(nodeA, id, 2)
	if got := l.PositiveCredit(nodeA, t0); math.Abs(got-want) > epsFloat {
		t.Errorf("weight shrank: CrP = %v", got)
	}
	// Unknown IDs and nodes are ignored.
	l.UpdateWeight(nodeA, txFixt(99), 5)
	l.UpdateWeight(nodeB, id, 5)
	if got := l.PositiveCredit(nodeB, t0); got != 0 {
		t.Error("update for unknown node created records")
	}
}

func TestUpdateWeightClamped(t *testing.T) {
	p := DefaultParams()
	l := mustLedger(t, p)
	id := txFixt(1)
	l.RecordTransaction(nodeA, id, 1, t0)
	l.UpdateWeight(nodeA, id, p.MaxWeight*100)
	want := p.MaxWeight / p.DeltaT.Seconds()
	if got := l.PositiveCredit(nodeA, t0); math.Abs(got-want) > epsFloat {
		t.Errorf("CrP = %v, want clamped %v", got, want)
	}
}

func TestOutOfOrderRecords(t *testing.T) {
	p := DefaultParams()
	l := mustLedger(t, p)
	// Insert out of order; window filtering must still be correct.
	l.RecordTransaction(nodeA, txFixt(1), 1, t0.Add(-5*time.Second))
	l.RecordTransaction(nodeA, txFixt(2), 2, t0.Add(-50*time.Second)) // outside
	l.RecordTransaction(nodeA, txFixt(3), 4, t0.Add(-25*time.Second))
	want := (1.0 + 4.0) / 30.0
	if got := l.PositiveCredit(nodeA, t0); math.Abs(got-want) > epsFloat {
		t.Errorf("CrP = %v, want %v", got, want)
	}
	// Weight updates must survive the reordering (index consistency).
	l.UpdateWeight(nodeA, txFixt(3), 6)
	want = (1.0 + 6.0) / 30.0
	if got := l.PositiveCredit(nodeA, t0); math.Abs(got-want) > epsFloat {
		t.Errorf("CrP after update = %v, want %v", got, want)
	}
}

func TestEventsAndNodesAccessors(t *testing.T) {
	l := mustLedger(t, DefaultParams())
	l.RecordMalicious(nodeA, EventRecord{Behaviour: BehaviourLazyTips, At: t0, Detail: "x"})
	l.RecordTransaction(nodeB, txFixt(1), 1, t0)
	events := l.Events(nodeA)
	if len(events) != 1 || events[0].Behaviour != BehaviourLazyTips {
		t.Errorf("Events = %+v", events)
	}
	// Returned slice is a copy.
	events[0].Detail = "mutated"
	if l.Events(nodeA)[0].Detail != "x" {
		t.Error("Events exposed internal storage")
	}
	if n := len(l.Nodes()); n != 2 {
		t.Errorf("Nodes = %d, want 2", n)
	}
	if l.TransactionCount(nodeB) != 1 || l.TransactionCount(nodeA) != 0 {
		t.Error("TransactionCount wrong")
	}
}

func TestPruneKeepsWindowAndEvents(t *testing.T) {
	p := DefaultParams()
	l := mustLedger(t, p)
	l.RecordTransaction(nodeA, txFixt(1), 2, t0.Add(-2*time.Hour))
	l.RecordTransaction(nodeA, txFixt(2), 2, t0.Add(-10*time.Second))
	l.RecordMalicious(nodeA, EventRecord{Behaviour: BehaviourDoubleSpend, At: t0.Add(-2 * time.Hour)})

	pruned := l.Prune(t0, time.Minute)
	if pruned != 1 {
		t.Errorf("pruned = %d, want 1", pruned)
	}
	// In-window record intact.
	if got := l.PositiveCredit(nodeA, t0); math.Abs(got-2.0/30.0) > epsFloat {
		t.Errorf("CrP after prune = %v", got)
	}
	// Events are never pruned (punishment cannot be eliminated).
	if len(l.Events(nodeA)) != 1 {
		t.Error("prune dropped a malicious event")
	}
	// A keep shorter than ΔT is raised to ΔT.
	l.RecordTransaction(nodeA, txFixt(3), 2, t0.Add(-20*time.Second))
	if n := l.Prune(t0, time.Second); n != 0 {
		t.Errorf("prune with keep < ΔT dropped %d in-window records", n)
	}
}

// Property: CrP is non-negative and monotone in added weight.
func TestCrPPropertyNonNegativeMonotone(t *testing.T) {
	p := DefaultParams()
	check := func(weights []float64) bool {
		l, err := NewLedger(p)
		if err != nil {
			return false
		}
		prev := 0.0
		for i, w := range weights {
			l.RecordTransaction(nodeA, txFixt(i), math.Abs(w), t0)
			cur := l.PositiveCredit(nodeA, t0)
			if cur < prev-epsFloat {
				return false
			}
			prev = cur
		}
		return prev >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: each additional malicious event strictly decreases CrN.
func TestCrNPropertyMonotoneInEvents(t *testing.T) {
	p := DefaultParams()
	check := func(n uint8) bool {
		l, err := NewLedger(p)
		if err != nil {
			return false
		}
		count := int(n%10) + 1
		prev := 0.0
		for i := 0; i < count; i++ {
			l.RecordMalicious(nodeA, EventRecord{
				Behaviour: BehaviourDoubleSpend,
				At:        t0.Add(-time.Duration(i+1) * time.Second),
			})
			cur := l.NegativeCredit(nodeA, t0)
			if cur >= prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBehaviourString(t *testing.T) {
	for _, b := range []Behaviour{BehaviourLazyTips, BehaviourDoubleSpend, BehaviourProtocol} {
		if !b.Valid() {
			t.Errorf("%v invalid", b)
		}
	}
	if Behaviour(0).Valid() {
		t.Error("zero behaviour valid")
	}
	if BehaviourLazyTips.String() != "lazy-tips" {
		t.Error("behaviour string wrong")
	}
}

func TestLedgerConcurrentAccess(t *testing.T) {
	l := mustLedger(t, DefaultParams())
	e := NewEngine(l, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := hashutil.Sum([]byte(fmt.Sprintf("c-%d-%d", w, i)))
				l.RecordTransaction(nodeA, id, 2, t0.Add(time.Duration(i)*time.Millisecond))
				l.UpdateWeight(nodeA, id, 3)
				if i%50 == 0 {
					l.RecordMalicious(nodeB, EventRecord{
						Behaviour: BehaviourLazyTips,
						At:        t0,
					})
				}
				_ = e.DifficultyFor(nodeA, t0)
				_ = l.CreditOf(nodeB, t0)
			}
		}()
	}
	wg.Wait()
	if l.TransactionCount(nodeA) != 800 {
		t.Errorf("transactions = %d, want 800", l.TransactionCount(nodeA))
	}
}

// TestRecordTransactionIdempotent checks the upsert semantics the node
// layer relies on: duplicate records never double-count, weight only
// grows, and a rolled-back record disappears without corrupting the
// index.
func TestRecordTransactionIdempotent(t *testing.T) {
	l := mustLedger(t, DefaultParams())
	now := t0
	idA := txFixt(100)
	idB := txFixt(101)

	l.RecordTransaction(nodeA, idA, 1, now)
	l.RecordTransaction(nodeA, idA, 1, now.Add(time.Second)) // duplicate delivery
	if got := l.TransactionCount(nodeA); got != 1 {
		t.Fatalf("duplicate record double-counted: %d records", got)
	}
	want := 1 / l.Params().DeltaT.Seconds()
	if got := l.PositiveCredit(nodeA, now); got != want {
		t.Errorf("CrP = %v, want %v", got, want)
	}

	// Re-recording with a larger weight grows it (and never shrinks).
	l.RecordTransaction(nodeA, idA, 3, now.Add(time.Second))
	l.RecordTransaction(nodeA, idA, 2, now.Add(2*time.Second))
	if got, want := l.PositiveCredit(nodeA, now), 3/l.Params().DeltaT.Seconds(); got != want {
		t.Errorf("CrP after growth = %v, want %v", got, want)
	}

	l.RecordTransaction(nodeA, idB, 1, now)
	l.RemoveTransaction(nodeA, idA)
	if got := l.TransactionCount(nodeA); got != 1 {
		t.Fatalf("remove left %d records, want 1", got)
	}
	// The surviving record's index entry must still resolve.
	l.UpdateWeight(nodeA, idB, 5)
	if got, want := l.PositiveCredit(nodeA, now), 5/l.Params().DeltaT.Seconds(); got != want {
		t.Errorf("CrP after remove+update = %v, want %v", got, want)
	}
	l.RemoveTransaction(nodeA, idA) // absent: no-op
}
