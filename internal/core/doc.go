// Package core implements B-IoT's primary contribution: the credit-based
// proof-of-work consensus mechanism (paper §IV-B).
//
// Every node i has a credit value
//
//	Cr_i = λ1·CrP_i + λ2·CrN_i                     (Eqn 2)
//
// combining a positive part measuring recent activity,
//
//	CrP_i = Σ_{k=1..n_i} w_k / ΔT                  (Eqn 3)
//
// over the node's valid transactions in the latest ΔT window (w_k being
// each transaction's validation weight), and a negative part accumulating
// punished misbehaviour,
//
//	CrN_i = − Σ_{k=1..m_i} α(B_k) · ΔT/(t − t_k)   (Eqn 4)
//
// with per-behaviour punishment coefficients α (Eqn 5): α_l for lazy
// tips, α_d for double spending. The PoW difficulty of node i follows
// Cr_i ∝ 1/D_i: honest active nodes mine at reduced difficulty while a
// detected attacker faces exponentially more work, and the punishment
// decays over time but "cannot be eliminated".
//
// The package provides:
//
//   - Params: the tunable constants (λ1, λ2, ΔT, α_l, α_d, D0, …) with
//     the paper's §VI-A evaluation defaults;
//   - Ledger: an append-only per-node behaviour record from which credit
//     is computed — both light nodes and gateways derive difficulty from
//     the same shared records, so "the credit value cannot be forged or
//     tampered";
//   - DifficultyPolicy: the Cr→D mapping, with the paper-literal inverse
//     proportional policy and an additive-in-bits policy (default; see
//     DESIGN.md §4 for why bits-domain adjustment reproduces Fig 9's
//     multiplicative slow-downs).
package core
