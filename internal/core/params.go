package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/pow"
)

// Behaviour identifies a class of malicious behaviour punished by the
// credit mechanism (paper Eqn 5). The set is open for extension; the
// paper's evaluation covers lazy tips and double spending.
type Behaviour int

const (
	// BehaviourLazyTips is issuing transactions that approve a fixed
	// pair of very old transactions instead of recent tips (§III).
	BehaviourLazyTips Behaviour = iota + 1
	// BehaviourDoubleSpend is spending the same token twice via
	// conflicting transactions (§III).
	BehaviourDoubleSpend
	// BehaviourProtocol covers other protocol violations detected by
	// gateways (bad signatures after admission, malformed floods, …).
	// The paper's Eqn 5 lists only the two above; we punish protocol
	// violations with the lazy-tips coefficient by default.
	BehaviourProtocol
)

// String implements fmt.Stringer.
func (b Behaviour) String() string {
	switch b {
	case BehaviourLazyTips:
		return "lazy-tips"
	case BehaviourDoubleSpend:
		return "double-spend"
	case BehaviourProtocol:
		return "protocol-violation"
	default:
		return fmt.Sprintf("behaviour(%d)", int(b))
	}
}

// Valid reports whether b is a known behaviour class.
func (b Behaviour) Valid() bool {
	return b >= BehaviourLazyTips && b <= BehaviourProtocol
}

// Params holds the tunable constants of the credit mechanism.
type Params struct {
	// Lambda1 and Lambda2 weight the positive and negative credit parts
	// (Eqn 2). "If we want to adopt strict punishment strategy in the
	// system, we can set λ2 larger."
	Lambda1 float64
	Lambda2 float64

	// DeltaT is the credit evaluation window ΔT (Eqns 3-4).
	DeltaT time.Duration

	// AlphaLazy and AlphaDouble are the punishment coefficients α_l and
	// α_d (Eqn 5).
	AlphaLazy   float64
	AlphaDouble float64
	// AlphaProtocol punishes BehaviourProtocol events (extension).
	AlphaProtocol float64

	// MinEventAge floors (t − t_k) in Eqn 4 to keep CrN finite at the
	// instant of detection. The paper's Fig 8 shows a large-but-finite
	// plunge immediately after an attack, consistent with a one-second
	// floor at ΔT = 30 s.
	MinEventAge time.Duration

	// InitialDifficulty is D0, the PoW difficulty of a node with zero
	// credit. The paper sets 11 "for computation capability limited IoT
	// devices".
	InitialDifficulty int
	// MinDifficulty and MaxDifficulty clamp the policy output.
	MinDifficulty int
	MaxDifficulty int

	// MaxWeight caps a single transaction's weight contribution w_k so
	// a burst of approvals cannot mint unbounded credit.
	MaxWeight float64

	// MaxEventsRetained caps how many malicious events are kept per
	// node; older events are folded into a conservative carry term (the
	// evicted events' summed coefficients decayed by the age of the
	// NEWEST evicted event, which never under-punishes) so a long-lived
	// attacker record cannot make credit queries O(all-time events).
	// Zero selects DefaultMaxEventsRetained; negative is invalid.
	MaxEventsRetained int
}

// DefaultMaxEventsRetained is the per-node malicious-event cap applied
// when Params.MaxEventsRetained is zero.
const DefaultMaxEventsRetained = 256

// DefaultParams returns the paper's §VI-A evaluation setting:
// λ1 = 1, λ2 = 0.5, ΔT = 30 s, α_l = 0.5, α_d = 1, initial difficulty 11,
// difficulty range [1, 14].
func DefaultParams() Params {
	return Params{
		Lambda1:           1.0,
		Lambda2:           0.5,
		DeltaT:            30 * time.Second,
		AlphaLazy:         0.5,
		AlphaDouble:       1.0,
		AlphaProtocol:     0.5,
		MinEventAge:       time.Second,
		InitialDifficulty: 11,
		MinDifficulty:     1,
		MaxDifficulty:     14,
		MaxWeight:         16,
	}
}

// Parameter validation errors.
var (
	ErrBadLambda     = errors.New("lambda weights must be non-negative and not both zero")
	ErrBadDeltaT     = errors.New("delta-t must be positive")
	ErrBadAlpha      = errors.New("punishment coefficients must be non-negative")
	ErrBadDiffRange  = errors.New("difficulty range invalid")
	ErrBadMaxWeight  = errors.New("max weight must be positive")
	ErrBadMinEventAg = errors.New("min event age must be positive")
	ErrBadEventCap   = errors.New("max events retained must be non-negative")
)

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Lambda1 < 0 || p.Lambda2 < 0 || (p.Lambda1 == 0 && p.Lambda2 == 0) {
		return fmt.Errorf("%w: λ1=%v λ2=%v", ErrBadLambda, p.Lambda1, p.Lambda2)
	}
	if p.DeltaT <= 0 {
		return fmt.Errorf("%w: %v", ErrBadDeltaT, p.DeltaT)
	}
	if p.AlphaLazy < 0 || p.AlphaDouble < 0 || p.AlphaProtocol < 0 {
		return ErrBadAlpha
	}
	if p.MinEventAge <= 0 {
		return fmt.Errorf("%w: %v", ErrBadMinEventAg, p.MinEventAge)
	}
	if p.MinDifficulty < pow.MinDifficulty || p.MaxDifficulty > pow.MaxDifficulty ||
		p.MinDifficulty > p.MaxDifficulty ||
		p.InitialDifficulty < p.MinDifficulty || p.InitialDifficulty > p.MaxDifficulty {
		return fmt.Errorf("%w: min=%d initial=%d max=%d",
			ErrBadDiffRange, p.MinDifficulty, p.InitialDifficulty, p.MaxDifficulty)
	}
	if p.MaxWeight <= 0 {
		return fmt.Errorf("%w: %v", ErrBadMaxWeight, p.MaxWeight)
	}
	if p.MaxEventsRetained < 0 {
		return fmt.Errorf("%w: %d", ErrBadEventCap, p.MaxEventsRetained)
	}
	return nil
}

// Alpha returns the punishment coefficient α(B) for a behaviour (Eqn 5).
// Unknown behaviours get the strictest configured coefficient, so a new
// attack class is never punished with zero.
func (p Params) Alpha(b Behaviour) float64 {
	switch b {
	case BehaviourLazyTips:
		return p.AlphaLazy
	case BehaviourDoubleSpend:
		return p.AlphaDouble
	case BehaviourProtocol:
		return p.AlphaProtocol
	default:
		maxAlpha := p.AlphaLazy
		if p.AlphaDouble > maxAlpha {
			maxAlpha = p.AlphaDouble
		}
		if p.AlphaProtocol > maxAlpha {
			maxAlpha = p.AlphaProtocol
		}
		return maxAlpha
	}
}

// ClampDifficulty forces d into the configured [Min, Max] range.
func (p Params) ClampDifficulty(d int) int {
	if d < p.MinDifficulty {
		return p.MinDifficulty
	}
	if d > p.MaxDifficulty {
		return p.MaxDifficulty
	}
	return d
}
