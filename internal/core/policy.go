package core

import (
	"math"
	"time"

	"github.com/b-iot/biot/internal/identity"
)

// DifficultyPolicy maps a node's credit to its PoW difficulty,
// instantiating the paper's Cr_i ∝ 1/D_i relation. Both light nodes
// (choosing how hard to work) and gateways (verifying submissions) apply
// the same policy over the same shared records.
type DifficultyPolicy interface {
	// DifficultyFor returns the PoW difficulty for a node with the given
	// credit, clamped to the params' range.
	DifficultyFor(c Credit) int
	// Name identifies the policy in experiment output.
	Name() string
}

// AdditivePolicy adjusts difficulty additively in the bits domain:
//
//	D = clamp(D0 − ⌊β·λ1·CrP⌋ + ⌈γ·λ2·|CrN|⌉)
//
// Because bit-difficulty is logarithmic in expected work, additive bit
// changes produce multiplicative running-time changes — exactly the
// behaviour the paper's Fig 9 reports (honest nodes ~6× faster than
// original PoW; attackers multiples slower). This is the default policy.
type AdditivePolicy struct {
	Params Params
	// Beta scales the reward for positive credit, in bits per unit CrP.
	Beta float64
	// Gamma scales the punishment for negative credit, in bits per unit
	// of weighted |CrN|.
	Gamma float64
}

var _ DifficultyPolicy = AdditivePolicy{}

// DefaultAdditivePolicy returns the tuning used by the evaluation
// harness: β = 2 bits per unit CrP, γ = 0.4 bits per unit weighted
// punishment. With the paper's parameters a steadily active honest node
// earns a 2-3 bit discount (≈4-8× faster PoW) and a fresh double-spend
// adds ≈6 bits (≈64× slower) decaying hyperbolically.
func DefaultAdditivePolicy(p Params) AdditivePolicy {
	return AdditivePolicy{Params: p, Beta: 2.0, Gamma: 0.4}
}

// Name implements DifficultyPolicy.
func (a AdditivePolicy) Name() string { return "additive" }

// DifficultyFor implements DifficultyPolicy.
func (a AdditivePolicy) DifficultyFor(c Credit) int {
	reward := math.Floor(a.Beta * a.Params.Lambda1 * c.CrP)
	punish := math.Ceil(a.Gamma * a.Params.Lambda2 * (-c.CrN))
	d := a.Params.InitialDifficulty - int(reward) + int(punish)
	return a.Params.ClampDifficulty(d)
}

// InversePolicy is the paper-literal mapping D = κ/(Cr + bias):
// difficulty inversely proportional to credit, with a bias so that a
// fresh node (Cr = 0) receives exactly D0, and a clamp to MaxDifficulty
// once credit reaches or falls below −bias.
type InversePolicy struct {
	Params Params
	// Bias shifts credit so the mapping is defined at Cr = 0. κ is
	// derived as D0 · Bias.
	Bias float64
}

var _ DifficultyPolicy = InversePolicy{}

// DefaultInversePolicy returns the inverse policy with Bias 1.
func DefaultInversePolicy(p Params) InversePolicy {
	return InversePolicy{Params: p, Bias: 1.0}
}

// Name implements DifficultyPolicy.
func (ip InversePolicy) Name() string { return "inverse" }

// DifficultyFor implements DifficultyPolicy.
func (ip InversePolicy) DifficultyFor(c Credit) int {
	shifted := c.Cr + ip.Bias
	if shifted <= 0 {
		return ip.Params.MaxDifficulty
	}
	kappa := float64(ip.Params.InitialDifficulty) * ip.Bias
	d := int(math.Round(kappa / shifted))
	return ip.Params.ClampDifficulty(d)
}

// Engine bundles a credit ledger with a difficulty policy: the complete
// credit-based consensus mechanism. It is the object gateways and light
// nodes share (conceptually — in a deployment each recomputes from the
// replicated ledger).
type Engine struct {
	ledger *Ledger
	policy DifficultyPolicy
}

// NewEngine creates a consensus engine. A nil policy selects the default
// additive policy.
func NewEngine(ledger *Ledger, policy DifficultyPolicy) *Engine {
	if policy == nil {
		policy = DefaultAdditivePolicy(ledger.Params())
	}
	return &Engine{ledger: ledger, policy: policy}
}

// Ledger exposes the underlying credit ledger.
func (e *Engine) Ledger() *Ledger { return e.ledger }

// Policy exposes the difficulty policy.
func (e *Engine) Policy() DifficultyPolicy { return e.policy }

// DifficultyFor evaluates the node's credit at now and maps it to a PoW
// difficulty.
func (e *Engine) DifficultyFor(addr identity.Address, now time.Time) int {
	return e.policy.DifficultyFor(e.ledger.CreditOf(addr, now))
}

// CreditOf evaluates the node's credit at now.
func (e *Engine) CreditOf(addr identity.Address, now time.Time) Credit {
	return e.ledger.CreditOf(addr, now)
}

// StaticPolicy ignores credit and always returns a fixed difficulty —
// the "original PoW mechanism" control in the paper's Fig 9.
type StaticPolicy struct {
	Difficulty int
}

var _ DifficultyPolicy = StaticPolicy{}

// Name implements DifficultyPolicy.
func (s StaticPolicy) Name() string { return "static" }

// DifficultyFor implements DifficultyPolicy.
func (s StaticPolicy) DifficultyFor(Credit) int { return s.Difficulty }
