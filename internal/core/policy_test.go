package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAdditivePolicyFreshNodeGetsD0(t *testing.T) {
	p := DefaultParams()
	pol := DefaultAdditivePolicy(p)
	if got := pol.DifficultyFor(Credit{}); got != p.InitialDifficulty {
		t.Errorf("fresh node difficulty = %d, want D0 = %d", got, p.InitialDifficulty)
	}
}

func TestAdditivePolicyRewardsActivity(t *testing.T) {
	p := DefaultParams()
	pol := DefaultAdditivePolicy(p)
	active := Credit{CrP: 2, Cr: 2}
	if got := pol.DifficultyFor(active); got >= p.InitialDifficulty {
		t.Errorf("active node difficulty = %d, want < %d", got, p.InitialDifficulty)
	}
}

func TestAdditivePolicyPunishesMisbehaviour(t *testing.T) {
	p := DefaultParams()
	pol := DefaultAdditivePolicy(p)
	bad := Credit{CrN: -30, Cr: -15}
	if got := pol.DifficultyFor(bad); got <= p.InitialDifficulty {
		t.Errorf("punished node difficulty = %d, want > %d", got, p.InitialDifficulty)
	}
}

func TestAdditivePolicyClamped(t *testing.T) {
	p := DefaultParams()
	pol := DefaultAdditivePolicy(p)
	if got := pol.DifficultyFor(Credit{CrP: 1000, Cr: 1000}); got != p.MinDifficulty {
		t.Errorf("huge credit difficulty = %d, want min %d", got, p.MinDifficulty)
	}
	if got := pol.DifficultyFor(Credit{CrN: -1e6, Cr: -5e5}); got != p.MaxDifficulty {
		t.Errorf("huge punishment difficulty = %d, want max %d", got, p.MaxDifficulty)
	}
}

// Property: additive difficulty is antitone in CrP and antitone in CrN
// (more negative CrN → higher difficulty) — the Cr ∝ 1/D direction.
func TestAdditivePolicyMonotonicity(t *testing.T) {
	p := DefaultParams()
	pol := DefaultAdditivePolicy(p)
	check := func(crP1, crP2, crN float64) bool {
		a, b := abs64(crP1), abs64(crP2)
		if a > b {
			a, b = b, a
		}
		n := -abs64(crN)
		dLow := pol.DifficultyFor(Credit{CrP: b, CrN: n})
		dHigh := pol.DifficultyFor(Credit{CrP: a, CrN: n})
		return dLow <= dHigh
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func abs64(f float64) float64 {
	if f < 0 {
		return -f
	}
	if f != f { // NaN
		return 0
	}
	return f
}

func TestInversePolicyFreshNodeGetsD0(t *testing.T) {
	p := DefaultParams()
	pol := DefaultInversePolicy(p)
	if got := pol.DifficultyFor(Credit{}); got != p.InitialDifficulty {
		t.Errorf("fresh node difficulty = %d, want %d", got, p.InitialDifficulty)
	}
}

func TestInversePolicyInverseProportion(t *testing.T) {
	p := DefaultParams()
	pol := DefaultInversePolicy(p)
	// D = κ/(Cr + 1): Cr = 1 → 11/2 = 5.5 → 6 (rounded).
	if got := pol.DifficultyFor(Credit{Cr: 1}); got != 6 {
		t.Errorf("Cr=1 difficulty = %d, want 6", got)
	}
	// Negative credit at/below −bias clamps to max.
	for _, cr := range []float64{-1, -5, -1000} {
		if got := pol.DifficultyFor(Credit{Cr: cr}); got != p.MaxDifficulty {
			t.Errorf("Cr=%v difficulty = %d, want max %d", cr, got, p.MaxDifficulty)
		}
	}
}

func TestInversePolicyAntitone(t *testing.T) {
	p := DefaultParams()
	pol := DefaultInversePolicy(p)
	check := func(a, b float64) bool {
		x, y := abs64(a), abs64(b)
		if x > y {
			x, y = y, x
		}
		// Higher credit never yields higher difficulty.
		return pol.DifficultyFor(Credit{Cr: y}) <= pol.DifficultyFor(Credit{Cr: x})
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStaticPolicy(t *testing.T) {
	pol := StaticPolicy{Difficulty: 7}
	for _, c := range []Credit{{}, {Cr: 100}, {Cr: -100}} {
		if pol.DifficultyFor(c) != 7 {
			t.Error("static policy varied")
		}
	}
}

func TestPolicyNames(t *testing.T) {
	p := DefaultParams()
	if DefaultAdditivePolicy(p).Name() != "additive" ||
		DefaultInversePolicy(p).Name() != "inverse" ||
		(StaticPolicy{}).Name() != "static" {
		t.Error("policy names wrong")
	}
}

func TestEngineEndToEnd(t *testing.T) {
	p := DefaultParams()
	l := mustLedger(t, p)
	e := NewEngine(l, nil) // default additive
	if e.Policy().Name() != "additive" {
		t.Errorf("default policy = %q", e.Policy().Name())
	}
	if e.Ledger() != l {
		t.Error("engine lost its ledger")
	}

	// Honest activity lowers difficulty.
	for i := 0; i < 10; i++ {
		l.RecordTransaction(nodeA, txFixt(i), 3, t0.Add(-time.Duration(i)*time.Second))
	}
	honest := e.DifficultyFor(nodeA, t0)
	if honest >= p.InitialDifficulty {
		t.Errorf("honest difficulty = %d, want < D0", honest)
	}

	// A malicious event raises it above the honest level immediately.
	l.RecordMalicious(nodeA, EventRecord{Behaviour: BehaviourDoubleSpend, At: t0})
	punished := e.DifficultyFor(nodeA, t0)
	if punished <= honest {
		t.Errorf("punished difficulty %d not above honest %d", punished, honest)
	}

	// Difficulty strictly increases relative to before the event — the
	// DESIGN.md invariant.
	if punished <= p.InitialDifficulty {
		t.Errorf("punished difficulty %d not above D0 %d", punished, p.InitialDifficulty)
	}

	// CreditOf surfaces the same evaluation the policy used.
	c := e.CreditOf(nodeA, t0)
	if got := e.Policy().DifficultyFor(c); got != punished {
		t.Errorf("policy(CreditOf) = %d, engine = %d", got, punished)
	}
}

// TestPunishmentDecayRestoresDifficulty walks virtual time forward after
// an attack and requires difficulty to come back down toward D0 — the
// recovery arc of Fig 8.
func TestPunishmentDecayRestoresDifficulty(t *testing.T) {
	p := DefaultParams()
	l := mustLedger(t, p)
	e := NewEngine(l, nil)
	l.RecordMalicious(nodeA, EventRecord{Behaviour: BehaviourDoubleSpend, At: t0})

	dAttack := e.DifficultyFor(nodeA, t0)
	dLater := e.DifficultyFor(nodeA, t0.Add(10*time.Minute))
	if dLater >= dAttack {
		t.Errorf("difficulty did not decay: %d → %d", dAttack, dLater)
	}
	if dLater < p.InitialDifficulty {
		t.Errorf("punished node dropped below D0 without positive credit: %d", dLater)
	}
}
