package core

import (
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// Cross-shard credit reconciliation. Each region evaluates credit from
// the traffic it admits locally, so a device roaming between regions
// would otherwise arrive with an empty history and be re-issued the
// newcomer difficulty. Gateways therefore exchange credit digests over
// the backbone: bounded pages of per-account transaction records (the
// CrP window, Eqn 3) and malicious-behaviour events (CrN, Eqn 4).
//
// Merging routes every remote record through the same idempotent
// mutation paths local admission uses (RecordTransaction's
// per-ID/weight-only-grows semantics, RecordMalicious's capped event
// history), so the incremental rolling-window state keeps its exact
// agreement with the RescanCredit oracle by construction — reconcile
// adds no second bookkeeping path that could drift.

// DigestAccount is one node's shipped credit history: the transaction
// records still inside the positive-credit horizon and the retained
// malicious events.
type DigestAccount struct {
	Addr   identity.Address `json:"addr"`
	Txs    []TxRecord       `json:"txs,omitempty"`
	Events []EventRecord    `json:"events,omitempty"`
}

// CreditDigest is one page of a ledger's credit state, ordered by
// account address.
type CreditDigest struct {
	Accounts []DigestAccount `json:"accounts"`
}

// MergeStats reports what a digest merge actually changed.
type MergeStats struct {
	TxsMerged    int // new or weight-grown transaction records
	EventsMerged int // events not already known
}

// DigestPage exports up to maxAccounts accounts starting at index from
// of the address-sorted account order, shipping only transaction
// records at or after now−window (older records cannot influence CrP
// anymore and pruning drops them anyway). total is the account count at
// export time; more reports pages beyond the returned next offset.
func (l *Ledger) DigestPage(from, maxAccounts int, now time.Time, window time.Duration) (page CreditDigest, next, total int, more bool) {
	if window < l.params.DeltaT {
		window = l.params.DeltaT
	}
	cutoff := now.Add(-window)

	addrs := l.Nodes()
	total = len(addrs)
	if from < 0 {
		from = 0
	}
	if from >= total || maxAccounts <= 0 {
		return CreditDigest{}, from, total, false
	}
	end := from + maxAccounts
	if end > total {
		end = total
	}

	l.mu.RLock()
	defer l.mu.RUnlock()
	page.Accounts = make([]DigestAccount, 0, end-from)
	for _, addr := range addrs[from:end] {
		rec, ok := l.nodes[addr]
		if !ok {
			continue // pruned between Nodes() and here
		}
		acct := DigestAccount{Addr: addr}
		for _, tr := range rec.txs {
			if tr.At.Before(cutoff) {
				continue
			}
			acct.Txs = append(acct.Txs, tr)
		}
		if len(rec.events) > 0 {
			acct.Events = append(acct.Events, rec.events...)
		}
		if len(acct.Txs) > 0 || len(acct.Events) > 0 {
			page.Accounts = append(page.Accounts, acct)
		}
	}
	return page, end, total, end < total
}

// eventKey identifies an event for cross-ledger dedup. Two detections
// of the same behaviour at the same instant with the same description
// and primary evidence are one event, however many gateways shipped it.
type eventKey struct {
	behaviour Behaviour
	at        int64
	detail    string
	evidence  hashutil.Hash
}

func keyOf(ev EventRecord) eventKey {
	k := eventKey{behaviour: ev.Behaviour, at: ev.At.UnixNano(), detail: ev.Detail}
	if len(ev.Evidence) > 0 {
		k.evidence = ev.Evidence[0]
	}
	return k
}

// Merge folds a remote digest page into the ledger. Transaction records
// go through RecordTransaction (idempotent per ID, weight only grows);
// events are deduplicated against the account's retained history and
// dropped when not newer than the eviction carry's newest timestamp —
// an event that old has either been folded into the carry already or
// would be immediately re-evicted, and re-inserting it would punish the
// same behaviour twice.
func (l *Ledger) Merge(page CreditDigest) MergeStats {
	var st MergeStats
	for _, acct := range page.Accounts {
		for _, tr := range acct.Txs {
			before := l.recordedWeight(acct.Addr, tr.ID)
			l.RecordTransaction(acct.Addr, tr.ID, tr.Weight, tr.At)
			if after := l.recordedWeight(acct.Addr, tr.ID); before == nil || *after > *before {
				st.TxsMerged++
			}
		}
		if len(acct.Events) == 0 {
			continue
		}
		l.mu.Lock()
		rec := l.record(acct.Addr)
		known := make(map[eventKey]struct{}, len(rec.events))
		for _, ev := range rec.events {
			known[keyOf(ev)] = struct{}{}
		}
		carryAt := rec.evCarryAt
		l.mu.Unlock()
		for _, ev := range acct.Events {
			if _, dup := known[keyOf(ev)]; dup {
				continue
			}
			if !carryAt.IsZero() && !ev.At.After(carryAt) {
				continue
			}
			known[keyOf(ev)] = struct{}{}
			l.RecordMalicious(acct.Addr, ev)
			st.EventsMerged++
		}
	}
	return st
}

// recordedWeight returns the currently recorded weight for (addr, id),
// or nil when unknown.
func (l *Ledger) recordedWeight(addr identity.Address, id hashutil.Hash) *float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rec, ok := l.nodes[addr]
	if !ok {
		return nil
	}
	idx, ok := rec.txIndex[id]
	if !ok {
		return nil
	}
	w := rec.txs[idx].Weight
	return &w
}
