package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// mergeAll pages src's full digest into dst, mimicking the backbone
// exchange, and returns the accumulated stats.
func mergeAll(t *testing.T, src, dst *Ledger, now time.Time) MergeStats {
	t.Helper()
	var st MergeStats
	for from, more := 0, true; more; {
		page, next, _, m := src.DigestPage(from, 2, now, 0)
		// Round-trip through JSON: the backbone ships digests encoded.
		raw, err := json.Marshal(page)
		if err != nil {
			t.Fatalf("marshal digest: %v", err)
		}
		var decoded CreditDigest
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("unmarshal digest: %v", err)
		}
		s := dst.Merge(decoded)
		st.TxsMerged += s.TxsMerged
		st.EventsMerged += s.EventsMerged
		from, more = next, m
	}
	return st
}

// TestMergeKeepsIncrementalCreditExact drives two ledgers with
// independent random traffic, reconciles them in both directions at
// random instants, and asserts the reconcile invariants after every
// merge: the incremental CreditOf still matches the RescanCredit oracle
// for every account on both sides, and a repeated merge of the same
// state moves nothing (idempotence).
func TestMergeKeepsIncrementalCreditExact(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Ledger {
			l, err := NewLedger(incTestParams())
			if err != nil {
				t.Fatal(err)
			}
			return l
		}
		a, b := mk(), mk()
		now := time.Unix(2000, 0)
		addrs := make([]identity.Address, 4)
		for i := range addrs {
			addrs[i] = identity.Address(hashutil.Sum([]byte{0xA0, byte(i)}))
		}
		nextID := 0

		for step := 0; step < 250; step++ {
			l := a
			if rng.Intn(2) == 1 {
				l = b
			}
			addr := addrs[rng.Intn(len(addrs))]
			switch op := rng.Intn(10); {
			case op < 6: // local admission
				nextID++
				id := hashutil.Sum([]byte(fmt.Sprintf("m-%d-%d", seed, nextID)))
				l.RecordTransaction(addr, id, rng.Float64()*4, now.Add(-time.Duration(rng.Intn(8))*time.Second))
			case op < 7: // detection
				l.RecordMalicious(addr, EventRecord{
					Behaviour: Behaviour(rng.Intn(3) + 1),
					At:        now.Add(-time.Duration(rng.Intn(20)) * time.Second),
					Detail:    fmt.Sprintf("det-%d", nextID),
				})
			case op < 8: // reconcile one direction
				src, dst := a, b
				if rng.Intn(2) == 1 {
					src, dst = b, a
				}
				mergeAll(t, src, dst, now)
				// Idempotence: replaying the identical digest merges nothing.
				if again := mergeAll(t, src, dst, now); again.TxsMerged != 0 || again.EventsMerged != 0 {
					t.Fatalf("seed %d step %d: re-merge moved %+v", seed, step, again)
				}
			case op < 9: // prune one side
				l.Prune(now, 10*time.Second)
			}
			now = now.Add(time.Duration(rng.Intn(3000)) * time.Millisecond)

			for _, l := range []*Ledger{a, b} {
				for _, addr := range addrs {
					inc, ref := l.CreditOf(addr, now), l.RescanCredit(addr, now)
					if !creditClose(inc, ref) {
						t.Fatalf("seed %d step %d: incremental %+v != oracle %+v", seed, step, inc, ref)
					}
				}
			}
		}
	}
}

// TestMergeConvergesRoamingCredit is the roaming shape in miniature: a
// device earns history in region A only; after reconciliation region B
// evaluates a positive credit for it, and a full two-way exchange makes
// both regions agree exactly.
func TestMergeConvergesRoamingCredit(t *testing.T) {
	mk := func() *Ledger {
		l, err := NewLedger(incTestParams())
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	a, b := mk(), mk()
	dev := identity.Address(hashutil.Sum([]byte("roamer")))
	now := time.Unix(3000, 0)
	for i := 0; i < 20; i++ {
		a.RecordTransaction(dev, hashutil.Sum([]byte(fmt.Sprintf("r%d", i))), 2, now.Add(-time.Duration(i)*time.Second))
	}
	a.RecordMalicious(dev, EventRecord{Behaviour: BehaviourLazyTips, At: now.Add(-5 * time.Second)})

	if got := b.CreditOf(dev, now); got.Cr != 0 {
		t.Fatalf("region B knows the device before reconcile: %+v", got)
	}
	mergeAll(t, a, b, now)
	mergeAll(t, b, a, now)

	ca, cb := a.CreditOf(dev, now), b.CreditOf(dev, now)
	if cb.CrP <= 0 {
		t.Fatalf("roamed credit not carried: %+v", cb)
	}
	if !creditClose(ca, cb) {
		t.Fatalf("regions disagree after full exchange: %+v vs %+v", ca, cb)
	}
}
