// Package dataauth implements B-IoT's data authority management method
// (paper §IV-C): sensitive sensor data are AES-encrypted before being
// posted to the transparent blockchain, so "only people who have the
// secret key can decrypt those sensitive data".
//
// Symmetric encryption is used because it is orders of magnitude faster
// than public-key encryption — "beneficial for power-constrained
// devices". Two authenticated schemes are provided: AES-256-GCM
// (default) and AES-256-CTR with HMAC-SHA256 (encrypt-then-MAC), both
// over stdlib crypto.
package dataauth

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// KeySize is the symmetric key length (AES-256).
const KeySize = 32

// Key is a symmetric secret key SK_S.
type Key [KeySize]byte

// Scheme selects the encryption construction.
type Scheme byte

const (
	// SchemeGCM is AES-256-GCM (AEAD). Default.
	SchemeGCM Scheme = iota + 1
	// SchemeCTRHMAC is AES-256-CTR with HMAC-SHA256 encrypt-then-MAC,
	// closest in spirit to the paper's raw AES block cipher while still
	// providing integrity.
	SchemeCTRHMAC
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeGCM:
		return "aes-gcm"
	case SchemeCTRHMAC:
		return "aes-ctr-hmac"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Valid reports whether s is an implemented scheme.
func (s Scheme) Valid() bool { return s == SchemeGCM || s == SchemeCTRHMAC }

// Crypto errors.
var (
	ErrBadScheme     = errors.New("unknown encryption scheme")
	ErrBadCiphertext = errors.New("malformed ciphertext")
	ErrDecrypt       = errors.New("decryption failed (wrong key or tampered data)")
)

// NewKey generates a fresh random key.
func NewKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return Key{}, fmt.Errorf("generate symmetric key: %w", err)
	}
	return k, nil
}

// KeyFromBytes copies a 32-byte slice into a Key.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return Key{}, fmt.Errorf("key length %d, want %d", len(b), KeySize)
	}
	copy(k[:], b)
	return k, nil
}

const (
	gcmNonceSize = 12
	ctrIVSize    = aes.BlockSize
	hmacSize     = sha256.Size
)

// Encrypt seals plaintext under key with the given scheme. Output layout:
//
//	GCM:     scheme(1) || nonce(12) || ciphertext+tag
//	CTRHMAC: scheme(1) || iv(16)    || ciphertext || hmac(32)
func Encrypt(key Key, plaintext []byte, scheme Scheme) ([]byte, error) {
	switch scheme {
	case SchemeGCM:
		return encryptGCM(key, plaintext)
	case SchemeCTRHMAC:
		return encryptCTRHMAC(key, plaintext)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadScheme, scheme)
	}
}

// Decrypt opens a sealed message produced by Encrypt, dispatching on the
// embedded scheme byte.
func Decrypt(key Key, sealed []byte) ([]byte, error) {
	if len(sealed) < 1 {
		return nil, fmt.Errorf("%w: empty", ErrBadCiphertext)
	}
	switch Scheme(sealed[0]) {
	case SchemeGCM:
		return decryptGCM(key, sealed[1:])
	case SchemeCTRHMAC:
		return decryptCTRHMAC(key, sealed[1:])
	default:
		return nil, fmt.Errorf("%w: scheme byte %d", ErrBadScheme, sealed[0])
	}
}

func encryptGCM(key Key, plaintext []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcmNonceSize)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("generate nonce: %w", err)
	}
	out := make([]byte, 0, 1+gcmNonceSize+len(plaintext)+aead.Overhead())
	out = append(out, byte(SchemeGCM))
	out = append(out, nonce...)
	return aead.Seal(out, nonce, plaintext, nil), nil
}

func decryptGCM(key Key, body []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	if len(body) < gcmNonceSize+aead.Overhead() {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadCiphertext, len(body))
	}
	plain, err := aead.Open(nil, body[:gcmNonceSize], body[gcmNonceSize:], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	return plain, nil
}

func newGCM(key Key) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("aes cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("gcm mode: %w", err)
	}
	return aead, nil
}

// deriveCTRKeys splits the master key into independent cipher and MAC
// keys so CTR and HMAC never share key material.
func deriveCTRKeys(key Key) (encKey, macKey [32]byte) {
	encKey = sha256.Sum256(append(key[:], 'e'))
	macKey = sha256.Sum256(append(key[:], 'm'))
	return encKey, macKey
}

func encryptCTRHMAC(key Key, plaintext []byte) ([]byte, error) {
	encKey, macKey := deriveCTRKeys(key)
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		return nil, fmt.Errorf("aes cipher: %w", err)
	}
	iv := make([]byte, ctrIVSize)
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("generate iv: %w", err)
	}
	out := make([]byte, 1+ctrIVSize+len(plaintext)+hmacSize)
	out[0] = byte(SchemeCTRHMAC)
	copy(out[1:], iv)
	cipher.NewCTR(block, iv).XORKeyStream(out[1+ctrIVSize:], plaintext)

	mac := hmac.New(sha256.New, macKey[:])
	mac.Write(out[:1+ctrIVSize+len(plaintext)])
	mac.Sum(out[:1+ctrIVSize+len(plaintext)])
	return out, nil
}

func decryptCTRHMAC(key Key, body []byte) ([]byte, error) {
	if len(body) < ctrIVSize+hmacSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadCiphertext, len(body))
	}
	encKey, macKey := deriveCTRKeys(key)
	ctLen := len(body) - ctrIVSize - hmacSize

	mac := hmac.New(sha256.New, macKey[:])
	mac.Write([]byte{byte(SchemeCTRHMAC)})
	mac.Write(body[:ctrIVSize+ctLen])
	if !hmac.Equal(mac.Sum(nil), body[ctrIVSize+ctLen:]) {
		return nil, fmt.Errorf("%w: mac mismatch", ErrDecrypt)
	}

	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		return nil, fmt.Errorf("aes cipher: %w", err)
	}
	plain := make([]byte, ctLen)
	cipher.NewCTR(block, body[:ctrIVSize]).XORKeyStream(plain, body[ctrIVSize:ctrIVSize+ctLen])
	return plain, nil
}
