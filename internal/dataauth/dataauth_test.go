package dataauth

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"
)

func mustNewKey(t *testing.T) Key {
	t.Helper()
	k, err := NewKey()
	if err != nil {
		t.Fatalf("new key: %v", err)
	}
	return k
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := mustNewKey(t)
	for _, scheme := range []Scheme{SchemeGCM, SchemeCTRHMAC} {
		t.Run(scheme.String(), func(t *testing.T) {
			for _, size := range []int{0, 1, 15, 16, 17, 1000, 1 << 16} {
				plain := make([]byte, size)
				if _, err := rand.Read(plain); err != nil {
					t.Fatal(err)
				}
				sealed, err := Encrypt(key, plain, scheme)
				if err != nil {
					t.Fatalf("encrypt %d: %v", size, err)
				}
				got, err := Decrypt(key, sealed)
				if err != nil {
					t.Fatalf("decrypt %d: %v", size, err)
				}
				if !bytes.Equal(got, plain) {
					t.Errorf("round trip mismatch at %d bytes", size)
				}
			}
		})
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	key := mustNewKey(t)
	plain := bytes.Repeat([]byte("sensor data "), 64)
	for _, scheme := range []Scheme{SchemeGCM, SchemeCTRHMAC} {
		sealed, err := Encrypt(key, plain, scheme)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(sealed, plain) {
			t.Errorf("%v ciphertext contains plaintext", scheme)
		}
	}
}

func TestDecryptWrongKeyFails(t *testing.T) {
	k1, k2 := mustNewKey(t), mustNewKey(t)
	for _, scheme := range []Scheme{SchemeGCM, SchemeCTRHMAC} {
		sealed, err := Encrypt(k1, []byte("confidential"), scheme)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decrypt(k2, sealed); !errors.Is(err, ErrDecrypt) {
			t.Errorf("%v: wrong-key decrypt err = %v", scheme, err)
		}
	}
}

func TestDecryptTamperedFails(t *testing.T) {
	key := mustNewKey(t)
	for _, scheme := range []Scheme{SchemeGCM, SchemeCTRHMAC} {
		sealed, err := Encrypt(key, []byte("integrity matters"), scheme)
		if err != nil {
			t.Fatal(err)
		}
		for pos := 1; pos < len(sealed); pos += 7 {
			mutated := append([]byte(nil), sealed...)
			mutated[pos] ^= 0x01
			if _, err := Decrypt(key, mutated); err == nil {
				t.Errorf("%v: tampered byte %d accepted", scheme, pos)
			}
		}
	}
}

func TestEncryptNonDeterministic(t *testing.T) {
	key := mustNewKey(t)
	for _, scheme := range []Scheme{SchemeGCM, SchemeCTRHMAC} {
		a, err := Encrypt(key, []byte("same message"), scheme)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Encrypt(key, []byte("same message"), scheme)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(a, b) {
			t.Errorf("%v: deterministic ciphertext (nonce/iv reuse)", scheme)
		}
	}
}

func TestDecryptErrors(t *testing.T) {
	key := mustNewKey(t)
	if _, err := Decrypt(key, nil); err == nil {
		t.Error("empty ciphertext accepted")
	}
	if _, err := Decrypt(key, []byte{0x7F, 1, 2, 3}); !errors.Is(err, ErrBadScheme) {
		t.Errorf("unknown scheme err = %v", err)
	}
	if _, err := Decrypt(key, []byte{byte(SchemeGCM), 1, 2}); err == nil {
		t.Error("truncated GCM body accepted")
	}
	if _, err := Decrypt(key, append([]byte{byte(SchemeCTRHMAC)}, make([]byte, 10)...)); err == nil {
		t.Error("truncated CTR body accepted")
	}
}

func TestEncryptUnknownScheme(t *testing.T) {
	key := mustNewKey(t)
	if _, err := Encrypt(key, []byte("x"), Scheme(9)); !errors.Is(err, ErrBadScheme) {
		t.Errorf("err = %v", err)
	}
}

func TestKeyFromBytes(t *testing.T) {
	raw := bytes.Repeat([]byte{7}, KeySize)
	k, err := KeyFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k[:], raw) {
		t.Error("key bytes mismatch")
	}
	if _, err := KeyFromBytes(raw[:16]); err == nil {
		t.Error("short key accepted")
	}
}

func TestSchemesCrossDecrypt(t *testing.T) {
	// A GCM ciphertext decrypts via the dispatching Decrypt even when
	// the caller doesn't know the scheme — the scheme byte routes it.
	key := mustNewKey(t)
	plain := []byte("routed")
	for _, scheme := range []Scheme{SchemeGCM, SchemeCTRHMAC} {
		sealed, err := Encrypt(key, plain, scheme)
		if err != nil {
			t.Fatal(err)
		}
		if Scheme(sealed[0]) != scheme {
			t.Errorf("scheme byte = %d", sealed[0])
		}
		got, err := Decrypt(key, sealed)
		if err != nil || !bytes.Equal(got, plain) {
			t.Errorf("%v cross decrypt failed: %v", scheme, err)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	key := mustNewKey(t)
	check := func(plain []byte, gcm bool) bool {
		scheme := SchemeGCM
		if !gcm {
			scheme = SchemeCTRHMAC
		}
		sealed, err := Encrypt(key, plain, scheme)
		if err != nil {
			return false
		}
		got, err := Decrypt(key, sealed)
		return err == nil && bytes.Equal(got, plain)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
