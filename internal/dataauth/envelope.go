package dataauth

import (
	"errors"
	"fmt"
	"sync"

	"github.com/b-iot/biot/internal/identity"
)

// Envelope is the on-ledger payload format of KindData transactions.
// Layout:
//
//	flags(1) || body
//
// flags bit 0: body is encrypted (sensitive data); otherwise plaintext.
//
// "For those devices whose collected non-sensitive data, they do not
// need to encrypt sensor data" (§IV-C) — so the envelope supports both.
type Envelope struct {
	Sensitive bool
	Body      []byte // ciphertext when Sensitive, plaintext otherwise
}

const flagEncrypted = 0x01

// ErrEmptyEnvelope reports a payload too short to carry an envelope.
var ErrEmptyEnvelope = errors.New("empty data envelope")

// Seal builds a KindData payload. When key is non-nil the reading is
// encrypted with the given scheme; a nil key publishes plaintext.
func Seal(reading []byte, key *Key, scheme Scheme) ([]byte, error) {
	if key == nil {
		out := make([]byte, 0, 1+len(reading))
		out = append(out, 0)
		return append(out, reading...), nil
	}
	sealed, err := Encrypt(*key, reading, scheme)
	if err != nil {
		return nil, fmt.Errorf("seal sensitive reading: %w", err)
	}
	out := make([]byte, 0, 1+len(sealed))
	out = append(out, flagEncrypted)
	return append(out, sealed...), nil
}

// Parse splits a KindData payload into its envelope without decrypting.
func Parse(payload []byte) (Envelope, error) {
	if len(payload) < 1 {
		return Envelope{}, ErrEmptyEnvelope
	}
	return Envelope{
		Sensitive: payload[0]&flagEncrypted != 0,
		Body:      payload[1:],
	}, nil
}

// Open parses a payload and, when sensitive, decrypts with key. A nil
// key on a sensitive envelope returns ErrDecrypt-compatible failure —
// which is the privacy property: without SK_S the data are unreadable.
func Open(payload []byte, key *Key) ([]byte, error) {
	env, err := Parse(payload)
	if err != nil {
		return nil, err
	}
	if !env.Sensitive {
		return env.Body, nil
	}
	if key == nil {
		return nil, fmt.Errorf("%w: no key for sensitive data", ErrDecrypt)
	}
	return Decrypt(*key, env.Body)
}

// KeyStore holds the symmetric keys a party has been distributed,
// indexed by the peer group they were issued for. In the smart-factory
// case study the manager issues one key per sensitive device.
type KeyStore struct {
	mu   sync.RWMutex
	keys map[identity.Address]Key
}

// NewKeyStore creates an empty key store.
func NewKeyStore() *KeyStore {
	return &KeyStore{keys: make(map[identity.Address]Key)}
}

// Put stores the key distributed for addr.
func (s *KeyStore) Put(addr identity.Address, k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[addr] = k
}

// Get fetches the key for addr.
func (s *KeyStore) Get(addr identity.Address) (Key, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k, ok := s.keys[addr]
	return k, ok
}

// Delete removes addr's key (rotation or deauthorization).
func (s *KeyStore) Delete(addr identity.Address) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.keys, addr)
}

// Len returns the number of stored keys.
func (s *KeyStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.keys)
}
