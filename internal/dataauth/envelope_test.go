package dataauth

import (
	"bytes"
	"errors"
	"testing"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

func TestSealOpenPlaintext(t *testing.T) {
	payload, err := Seal([]byte("temp=20"), nil, SchemeGCM)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Parse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if env.Sensitive {
		t.Error("plaintext marked sensitive")
	}
	got, err := Open(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "temp=20" {
		t.Errorf("got %q", got)
	}
}

func TestSealOpenSensitive(t *testing.T) {
	key := mustNewKey(t)
	payload, err := Seal([]byte("secret reading"), &key, SchemeGCM)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Parse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Sensitive {
		t.Error("encrypted payload not marked sensitive")
	}
	// Without the key: refused.
	if _, err := Open(payload, nil); !errors.Is(err, ErrDecrypt) {
		t.Errorf("keyless open err = %v", err)
	}
	// Wrong key: refused.
	wrong := mustNewKey(t)
	if _, err := Open(payload, &wrong); !errors.Is(err, ErrDecrypt) {
		t.Errorf("wrong-key open err = %v", err)
	}
	// Right key: plaintext.
	got, err := Open(payload, &key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "secret reading" {
		t.Errorf("got %q", got)
	}
}

func TestSealCTRScheme(t *testing.T) {
	key := mustNewKey(t)
	payload, err := Seal([]byte("ctr data"), &key, SchemeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(payload, &key)
	if err != nil || !bytes.Equal(got, []byte("ctr data")) {
		t.Errorf("ctr round trip: %q, %v", got, err)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := Parse(nil); !errors.Is(err, ErrEmptyEnvelope) {
		t.Errorf("err = %v", err)
	}
	if _, err := Open(nil, nil); err == nil {
		t.Error("empty payload opened")
	}
}

func TestSealEmptyReading(t *testing.T) {
	payload, err := Seal(nil, nil, SchemeGCM)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(payload, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("empty reading round trip: %q, %v", got, err)
	}
}

func TestKeyStore(t *testing.T) {
	s := NewKeyStore()
	addr := identity.Address(hashutil.Sum([]byte("dev")))
	if _, ok := s.Get(addr); ok {
		t.Error("empty store returned a key")
	}
	k := mustNewKey(t)
	s.Put(addr, k)
	got, ok := s.Get(addr)
	if !ok || got != k {
		t.Error("stored key not returned")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
	s.Delete(addr)
	if _, ok := s.Get(addr); ok {
		t.Error("deleted key still present")
	}
	s.Delete(addr) // idempotent
}
