package dataauth

import "testing"

// FuzzDecrypt: arbitrary ciphertexts must never decrypt successfully
// under a fixed key (forgery resistance) and must never panic.
func FuzzDecrypt(f *testing.F) {
	key, err := NewKey()
	if err != nil {
		f.Fatal(err)
	}
	good, err := Encrypt(key, []byte("seed plaintext"), SchemeGCM)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{byte(SchemeCTRHMAC), 1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		plain, err := Decrypt(key, data)
		if err != nil {
			return
		}
		// The only accepted input in the corpus is the genuine seed; a
		// fuzzer-mutated ciphertext that decrypts is a forgery.
		if string(plain) != "seed plaintext" {
			t.Fatalf("forged ciphertext accepted: %q", plain)
		}
	})
}

// FuzzOpenEnvelope: envelope parsing plus keyless open never panics.
func FuzzOpenEnvelope(f *testing.F) {
	sealed, err := Seal([]byte("reading"), nil, SchemeGCM)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add([]byte{0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Parse(data)
		if err != nil {
			return
		}
		if !env.Sensitive {
			if _, err := Open(data, nil); err != nil {
				t.Fatalf("plaintext envelope failed to open: %v", err)
			}
		}
	})
}
