// Package device provides synthetic wireless-sensor models and workload
// generators for the smart-factory case study (paper §IV-A1). The
// paper's prototype read real sensors on a Raspberry Pi; here sensor
// readings are generated from parametric models so experiments are
// reproducible and laptop-scale (see DESIGN.md §1 substitutions).
package device

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"
)

// SensorKind enumerates the modelled sensor classes.
type SensorKind int

const (
	// SensorTemperature models ambient temperature (°C): slow sinusoidal
	// drift plus Gaussian noise. Non-sensitive in the case study.
	SensorTemperature SensorKind = iota + 1
	// SensorVibration models machine vibration (mm/s RMS): baseline hum
	// with occasional bursts. Sensitive: reveals machine health.
	SensorVibration
	// SensorPower models power draw (kW): load steps. Sensitive:
	// reveals production schedules.
	SensorPower
	// SensorHumidity models relative humidity (%). Non-sensitive.
	SensorHumidity
	// SensorMachineConfig models machine operating-parameter blobs — the
	// cross-factory sharing payload of §IV-A4. Sensitive.
	SensorMachineConfig
)

// String implements fmt.Stringer.
func (k SensorKind) String() string {
	switch k {
	case SensorTemperature:
		return "temperature"
	case SensorVibration:
		return "vibration"
	case SensorPower:
		return "power"
	case SensorHumidity:
		return "humidity"
	case SensorMachineConfig:
		return "machine-config"
	default:
		return fmt.Sprintf("sensor(%d)", int(k))
	}
}

// Sensitive reports the case study's default sensitivity classification
// for the sensor class ("there are two groups of sensor data, sensitive
// and non-sensitive data", §VI-C2).
func (k SensorKind) Sensitive() bool {
	switch k {
	case SensorVibration, SensorPower, SensorMachineConfig:
		return true
	default:
		return false
	}
}

// Reading is one generated sensor sample.
type Reading struct {
	Kind  SensorKind
	Seq   uint64
	At    time.Time
	Value float64
	// Blob is the serialized payload posted to the ledger.
	Blob []byte
}

// Sensor generates readings from a parametric model.
type Sensor struct {
	kind SensorKind
	rng  *rand.Rand
	seq  uint64

	// model state
	phase float64
	level float64
}

// NewSensor creates a sensor of the given kind with a deterministic
// seed (same seed → same reading stream).
func NewSensor(kind SensorKind, seed int64) *Sensor {
	return &Sensor{
		kind:  kind,
		rng:   rand.New(rand.NewSource(seed)),
		level: initialLevel(kind),
	}
}

func initialLevel(kind SensorKind) float64 {
	switch kind {
	case SensorTemperature:
		return 22.0
	case SensorVibration:
		return 0.35
	case SensorPower:
		return 12.0
	case SensorHumidity:
		return 45.0
	default:
		return 0
	}
}

// Kind returns the sensor class.
func (s *Sensor) Kind() SensorKind { return s.kind }

// Next produces the next reading stamped at the given instant.
func (s *Sensor) Next(at time.Time) Reading {
	s.seq++
	s.phase += 0.05
	var value float64
	switch s.kind {
	case SensorTemperature:
		value = s.level + 1.5*math.Sin(s.phase) + s.rng.NormFloat64()*0.2
	case SensorVibration:
		value = s.level + math.Abs(s.rng.NormFloat64())*0.05
		if s.rng.Float64() < 0.03 { // bearing-fault burst
			value += 1.5 + s.rng.Float64()
		}
	case SensorPower:
		if s.rng.Float64() < 0.05 { // load step
			s.level = 6 + s.rng.Float64()*18
		}
		value = s.level + s.rng.NormFloat64()*0.3
	case SensorHumidity:
		value = s.level + 4*math.Sin(s.phase/3) + s.rng.NormFloat64()*0.5
	case SensorMachineConfig:
		value = float64(s.seq)
	}
	r := Reading{Kind: s.kind, Seq: s.seq, At: at, Value: value}
	r.Blob = s.encode(r)
	return r
}

// encode renders the reading as a compact key=value line — realistic
// for constrained devices and human-debuggable on the ledger.
func (s *Sensor) encode(r Reading) []byte {
	if s.kind == SensorMachineConfig {
		// Machine configuration blobs: the §IV-A4 sharing payload.
		return []byte(fmt.Sprintf(
			"part=PX-%03d;spindle_rpm=%d;feed_mmpm=%d;coolant=on;tol_um=%d",
			r.Seq%997, 8000+int(r.Seq%7)*500, 1200+int(r.Seq%5)*100, 5+int(r.Seq%4)))
	}
	b := make([]byte, 0, 64)
	b = append(b, "sensor="...)
	b = append(b, s.kind.String()...)
	b = append(b, ";seq="...)
	b = strconv.AppendUint(b, r.Seq, 10)
	b = append(b, ";t="...)
	b = strconv.AppendInt(b, r.At.UnixNano(), 10)
	b = append(b, ";value="...)
	b = strconv.AppendFloat(b, r.Value, 'f', 3, 64)
	return b
}
