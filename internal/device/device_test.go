package device

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

var t0 = time.Unix(1_700_000_000, 0).UTC()

func TestSensorKindsProduceReadings(t *testing.T) {
	kinds := []SensorKind{
		SensorTemperature, SensorVibration, SensorPower,
		SensorHumidity, SensorMachineConfig,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			s := NewSensor(kind, 1)
			for i := 0; i < 50; i++ {
				r := s.Next(t0.Add(time.Duration(i) * time.Second))
				if r.Kind != kind {
					t.Fatalf("reading kind = %v", r.Kind)
				}
				if r.Seq != uint64(i+1) {
					t.Fatalf("seq = %d at i=%d", r.Seq, i)
				}
				if len(r.Blob) == 0 {
					t.Fatal("empty blob")
				}
			}
		})
	}
}

func TestSensorDeterministicBySeed(t *testing.T) {
	a := NewSensor(SensorTemperature, 7)
	b := NewSensor(SensorTemperature, 7)
	for i := 0; i < 20; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		ra, rb := a.Next(at), b.Next(at)
		if ra.Value != rb.Value || !bytes.Equal(ra.Blob, rb.Blob) {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSensor(SensorTemperature, 8)
	diverged := false
	for i := 0; i < 20; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		if a.Next(at).Value != c.Next(at).Value {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical streams")
	}
}

func TestSensorBlobFormat(t *testing.T) {
	s := NewSensor(SensorTemperature, 1)
	r := s.Next(t0)
	blob := string(r.Blob)
	for _, want := range []string{"sensor=temperature", "seq=1", "value="} {
		if !strings.Contains(blob, want) {
			t.Errorf("blob %q missing %q", blob, want)
		}
	}
}

func TestMachineConfigBlobFormat(t *testing.T) {
	s := NewSensor(SensorMachineConfig, 1)
	blob := string(s.Next(t0).Blob)
	for _, want := range []string{"part=", "spindle_rpm=", "feed_mmpm=", "tol_um="} {
		if !strings.Contains(blob, want) {
			t.Errorf("config blob %q missing %q", blob, want)
		}
	}
}

func TestSensitivityClassification(t *testing.T) {
	sensitive := []SensorKind{SensorVibration, SensorPower, SensorMachineConfig}
	public := []SensorKind{SensorTemperature, SensorHumidity}
	for _, k := range sensitive {
		if !k.Sensitive() {
			t.Errorf("%v not sensitive", k)
		}
	}
	for _, k := range public {
		if k.Sensitive() {
			t.Errorf("%v sensitive", k)
		}
	}
}

func TestTemperatureStaysPlausible(t *testing.T) {
	s := NewSensor(SensorTemperature, 3)
	for i := 0; i < 500; i++ {
		r := s.Next(t0.Add(time.Duration(i) * time.Second))
		if r.Value < 10 || r.Value > 35 {
			t.Fatalf("temperature %v out of plausible band at step %d", r.Value, i)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	s := NewSensor(SensorTemperature, 1)
	if _, err := NewWorkload(nil, ArrivalPeriodic, time.Second, 1); err == nil {
		t.Error("nil sensor accepted")
	}
	if _, err := NewWorkload(s, ArrivalPeriodic, 0, 1); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewWorkload(s, ArrivalPattern(9), time.Second, 1); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestPeriodicWorkloadSchedule(t *testing.T) {
	s := NewSensor(SensorTemperature, 1)
	w, err := NewWorkload(s, ArrivalPeriodic, time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	readings := w.Schedule(t0, 10*time.Second)
	if len(readings) != 9 { // at 1s..9s (10s is outside [0,10))
		t.Fatalf("readings = %d", len(readings))
	}
	for i, r := range readings {
		want := t0.Add(time.Duration(i+1) * time.Second)
		if !r.At.Equal(want) {
			t.Errorf("reading %d at %v, want %v", i, r.At, want)
		}
	}
}

func TestPoissonWorkloadMeanGap(t *testing.T) {
	s := NewSensor(SensorTemperature, 1)
	w, err := NewWorkload(s, ArrivalPoisson, time.Second, 42)
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		total += w.NextGap()
	}
	mean := total / n
	if mean < 800*time.Millisecond || mean > 1200*time.Millisecond {
		t.Errorf("poisson mean gap = %v, want ≈1s", mean)
	}
}

func TestBurstyWorkloadHasBursts(t *testing.T) {
	s := NewSensor(SensorTemperature, 1)
	w, err := NewWorkload(s, ArrivalBursty, time.Second, 42)
	if err != nil {
		t.Fatal(err)
	}
	short, long := 0, 0
	for i := 0; i < 500; i++ {
		gap := w.NextGap()
		if gap < 100*time.Millisecond {
			short++
		} else {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Errorf("bursty pattern degenerate: %d short, %d long", short, long)
	}
}

func TestWorkloadScheduleDeterministic(t *testing.T) {
	mk := func() []Reading {
		s := NewSensor(SensorVibration, 5)
		w, err := NewWorkload(s, ArrivalPoisson, time.Second, 99)
		if err != nil {
			t.Fatal(err)
		}
		return w.Schedule(t0, 30*time.Second)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].At.Equal(b[i].At) || a[i].Value != b[i].Value {
			t.Fatal("schedules diverged")
		}
	}
}

func TestKindStrings(t *testing.T) {
	if SensorTemperature.String() != "temperature" ||
		SensorMachineConfig.String() != "machine-config" {
		t.Error("kind strings wrong")
	}
	if !strings.HasPrefix(SensorKind(42).String(), "sensor(") {
		t.Error("unknown kind fallback missing")
	}
	if ArrivalPeriodic.String() != "periodic" || ArrivalPoisson.String() != "poisson" ||
		ArrivalBursty.String() != "bursty" {
		t.Error("pattern strings wrong")
	}
	if !strings.HasPrefix(ArrivalPattern(42).String(), "arrival(") {
		t.Error("unknown pattern fallback missing")
	}
}
