package device

import (
	"fmt"
	"math/rand"
	"time"
)

// ArrivalPattern shapes the inter-transaction gaps of a workload —
// "there are various IoT devices reporting data all the time in IoT
// systems, which demand high concurrency" (§I challenge 3).
type ArrivalPattern int

const (
	// ArrivalPeriodic emits readings at a fixed period.
	ArrivalPeriodic ArrivalPattern = iota + 1
	// ArrivalPoisson emits readings with exponential inter-arrival
	// times around a mean period.
	ArrivalPoisson
	// ArrivalBursty alternates quiet periods with rapid bursts —
	// event-driven sensors (door contacts, fault reporters).
	ArrivalBursty
)

// String implements fmt.Stringer.
func (p ArrivalPattern) String() string {
	switch p {
	case ArrivalPeriodic:
		return "periodic"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBursty:
		return "bursty"
	default:
		return fmt.Sprintf("arrival(%d)", int(p))
	}
}

// Workload generates a reading schedule for one sensor.
type Workload struct {
	sensor  *Sensor
	pattern ArrivalPattern
	period  time.Duration
	rng     *rand.Rand

	burstLeft int
}

// NewWorkload builds a workload over the given sensor. period is the
// mean inter-reading gap.
func NewWorkload(sensor *Sensor, pattern ArrivalPattern, period time.Duration, seed int64) (*Workload, error) {
	if sensor == nil {
		return nil, fmt.Errorf("workload requires a sensor")
	}
	if period <= 0 {
		return nil, fmt.Errorf("workload period %v must be positive", period)
	}
	switch pattern {
	case ArrivalPeriodic, ArrivalPoisson, ArrivalBursty:
	default:
		return nil, fmt.Errorf("unknown arrival pattern %v", pattern)
	}
	return &Workload{
		sensor:  sensor,
		pattern: pattern,
		period:  period,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// Sensor returns the underlying sensor.
func (w *Workload) Sensor() *Sensor { return w.sensor }

// NextGap returns the wait before the next reading.
func (w *Workload) NextGap() time.Duration {
	switch w.pattern {
	case ArrivalPoisson:
		return time.Duration(w.rng.ExpFloat64() * float64(w.period))
	case ArrivalBursty:
		if w.burstLeft > 0 {
			w.burstLeft--
			return w.period / 20
		}
		if w.rng.Float64() < 0.2 {
			w.burstLeft = 3 + w.rng.Intn(5)
			return w.period / 20
		}
		return w.period * 3
	default:
		return w.period
	}
}

// Schedule materializes the reading instants within [start, start+span)
// together with the generated readings. Deterministic for a given seed.
func (w *Workload) Schedule(start time.Time, span time.Duration) []Reading {
	var out []Reading
	at := start
	for {
		gap := w.NextGap()
		at = at.Add(gap)
		if at.Sub(start) >= span {
			return out
		}
		out = append(out, w.sensor.Next(at))
	}
}
