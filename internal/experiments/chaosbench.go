package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
)

// ChaosBenchConfig parameterizes the crash-recovery benchmark: for each
// journal size it builds a gateway on a fault-injectable in-memory
// disk, admits that many readings, crashes the machine (reboot drops
// the page cache and plants a torn tail), and measures how long the
// restarted node takes to recover — torn-tail detection plus full
// replay through the admission pipeline — and how much faster recovery
// gets once snapshot compaction has rewritten the journal down to the
// live working set.
type ChaosBenchConfig struct {
	// RecordCounts lists the journal sizes (admitted transactions) to
	// measure recovery at.
	RecordCounts []int
	// PayloadBytes is the reading payload size.
	PayloadBytes int
	// CompactAfter is how far the virtual clock jumps before the
	// snapshot+compact pass; history older than CompactKeep is folded.
	CompactAfter time.Duration
	// CompactKeep is the retention horizon handed to node.Compact.
	CompactKeep time.Duration
	// Seed drives the fault-injected disk.
	Seed int64
}

// DefaultChaosBenchConfig is the acceptance-snapshot scale
// (BENCH_chaos.json).
func DefaultChaosBenchConfig() ChaosBenchConfig {
	return ChaosBenchConfig{
		RecordCounts: []int{250, 1000, 4000},
		PayloadBytes: 96,
		CompactAfter: 10 * time.Minute,
		CompactKeep:  30 * time.Second,
		Seed:         0xC4A05,
	}
}

// QuickChaosBenchConfig is a CI-friendly reduction.
func QuickChaosBenchConfig() ChaosBenchConfig {
	return ChaosBenchConfig{
		RecordCounts: []int{50, 200},
		PayloadBytes: 64,
		CompactAfter: 10 * time.Minute,
		CompactKeep:  30 * time.Second,
		Seed:         0xC4A05,
	}
}

// ChaosBenchRow is one journal size's measurement.
type ChaosBenchRow struct {
	Records      int   `json:"records"`
	JournalBytes int   `json:"journal_bytes"`
	TornBytes    int64 `json:"torn_bytes"`
	// RecoverNs is wall-clock open-to-serving time after the crash:
	// segment-header validation, torn-tail truncation and full replay
	// through the admission pipeline.
	RecoverNs float64 `json:"recover_ns"`
	// ReplayPerSec is Records / recovery time.
	ReplayPerSec float64 `json:"replay_per_sec"`
	// CompactedRecords / CompactedBytes describe the journal after the
	// snapshot+compact pass rewrote it to the live working set.
	CompactedRecords int `json:"compacted_records"`
	CompactedBytes   int `json:"compacted_bytes"`
	// RecoverCompactNs is crash recovery time against the compacted
	// journal — the payoff of running compaction on a cadence.
	RecoverCompactNs float64 `json:"recover_compact_ns"`
}

// ChaosBenchResult is the recovery scaling curve.
type ChaosBenchResult struct {
	Config ChaosBenchConfig `json:"config"`
	Rows   []ChaosBenchRow  `json:"rows"`
}

// RunChaosBench executes the crash-recovery sweep.
func RunChaosBench(ctx context.Context, cfg ChaosBenchConfig) (*ChaosBenchResult, error) {
	if len(cfg.RecordCounts) == 0 || cfg.PayloadBytes < 1 {
		return nil, fmt.Errorf("chaos bench workload too small")
	}
	res := &ChaosBenchResult{Config: cfg}
	for _, records := range cfg.RecordCounts {
		row, err := runChaosBenchSize(ctx, cfg, records)
		if err != nil {
			return nil, fmt.Errorf("records=%d: %w", records, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// chaosBenchParams keeps PoW negligible so the measurement isolates
// journal replay, not mining.
func chaosBenchParams() core.Params {
	p := core.DefaultParams()
	p.InitialDifficulty = 1
	p.MinDifficulty = 1
	p.MaxDifficulty = 20
	return p
}

// chaosBenchNode builds a standalone gateway journaling to fs and
// returns it with its recovery duration and replayed-record count.
func chaosBenchNode(fs chaos.FS, key *identity.KeyPair, clk *clock.Virtual) (*node.FullNode, time.Duration, int, error) {
	full, err := node.NewFull(node.FullConfig{
		Key:        key,
		Role:       identity.RoleManager,
		ManagerPub: key.Public(),
		Credit:     chaosBenchParams(),
		Clock:      clk,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	start := time.Now()
	replayed, err := full.EnablePersistenceFS(fs, "bench.journal")
	if err != nil {
		full.Close()
		return nil, 0, 0, err
	}
	return full, time.Since(start), replayed, nil
}

func runChaosBenchSize(ctx context.Context, cfg ChaosBenchConfig, records int) (ChaosBenchRow, error) {
	fs := chaos.NewMemFS(cfg.Seed + int64(records))
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	key, err := identity.Generate()
	if err != nil {
		return ChaosBenchRow{}, err
	}

	// Build the journal: one standalone gateway, one device, `records`
	// readings at trivial difficulty.
	full, _, _, err := chaosBenchNode(fs, key, clk)
	if err != nil {
		return ChaosBenchRow{}, err
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		full.Close()
		return ChaosBenchRow{}, err
	}
	devKey, err := identity.Generate()
	if err != nil {
		full.Close()
		return ChaosBenchRow{}, err
	}
	mgr.AuthorizeDevice(devKey.Public(), devKey.BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		full.Close()
		return ChaosBenchRow{}, err
	}
	dev, err := node.NewLight(node.LightConfig{Key: devKey, Gateway: full})
	if err != nil {
		full.Close()
		return ChaosBenchRow{}, err
	}
	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < records; i++ {
		if _, err := dev.PostReading(ctx, payload); err != nil {
			full.Close()
			return ChaosBenchRow{}, fmt.Errorf("reading %d: %w", i, err)
		}
		if i%32 == 0 {
			clk.Advance(time.Second) // age spread for the compaction pass
		}
	}
	full.ClosePersistence()
	full.Close()

	journalData, err := fs.ReadFile("bench.journal")
	if err != nil {
		return ChaosBenchRow{}, err
	}
	journalBytes := len(journalData)

	// Crash the machine and plant a torn tail: recovery must detect and
	// truncate it before replaying.
	fs.Reboot()
	torn := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	durable, err := fs.ReadFile("bench.journal")
	if err != nil {
		return ChaosBenchRow{}, err
	}
	fs.WriteFile("bench.journal", append(durable, torn...))

	recovered, recoverTime, replayed, err := chaosBenchNode(fs, key, clk)
	if err != nil {
		return ChaosBenchRow{}, fmt.Errorf("recover: %w", err)
	}
	stats, _, _ := recovered.JournalStats()
	if replayed < records {
		recovered.Close()
		return ChaosBenchRow{}, fmt.Errorf("replayed %d of %d synced records", replayed, records)
	}

	// Snapshot + compact, then measure recovery against the rewritten
	// journal.
	clk.Advance(cfg.CompactAfter)
	recovered.Compact(cfg.CompactKeep)
	compactedRecords, err := recovered.CompactJournal()
	if err != nil {
		recovered.Close()
		return ChaosBenchRow{}, fmt.Errorf("compact journal: %w", err)
	}
	recovered.ClosePersistence()
	recovered.Close()
	compactedData, err := fs.ReadFile("bench.journal")
	if err != nil {
		return ChaosBenchRow{}, err
	}
	compactedBytes := len(compactedData)

	fs.Reboot()
	final, recoverCompact, _, err := chaosBenchNode(fs, key, clk)
	if err != nil {
		return ChaosBenchRow{}, fmt.Errorf("recover compacted: %w", err)
	}
	final.Close()

	replayPerSec := 0.0
	if recoverTime > 0 {
		replayPerSec = float64(replayed) / recoverTime.Seconds()
	}
	return ChaosBenchRow{
		Records:          records,
		JournalBytes:     journalBytes,
		TornBytes:        stats.TornBytes,
		RecoverNs:        float64(recoverTime.Nanoseconds()),
		ReplayPerSec:     replayPerSec,
		CompactedRecords: compactedRecords,
		CompactedBytes:   compactedBytes,
		RecoverCompactNs: float64(recoverCompact.Nanoseconds()),
	}, nil
}

// Render writes the recovery curve as an aligned table.
func (r *ChaosBenchResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Crash recovery — reboot with torn tail, full pipeline replay, then snapshot+compact (keep %v)\n",
		r.Config.CompactKeep); err != nil {
		return err
	}
	t := &table{header: []string{"records", "journal_kb", "torn_b", "recover_ms", "replay_tx_s", "compact_records", "compact_kb", "recover_compact_ms"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%.1f", float64(row.JournalBytes)/1024),
			fmt.Sprintf("%d", row.TornBytes),
			fmt.Sprintf("%.2f", row.RecoverNs/1e6),
			fmt.Sprintf("%.0f", row.ReplayPerSec),
			fmt.Sprintf("%d", row.CompactedRecords),
			fmt.Sprintf("%.1f", float64(row.CompactedBytes)/1024),
			fmt.Sprintf("%.2f", row.RecoverCompactNs/1e6),
		)
	}
	return t.render(w)
}

// CSV writes the curve as CSV.
func (r *ChaosBenchResult) CSV(w io.Writer) error {
	t := &table{header: []string{"records", "journal_bytes", "torn_bytes", "recover_ns", "replay_per_sec", "compacted_records", "compacted_bytes", "recover_compact_ns"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%d", row.JournalBytes),
			fmt.Sprintf("%d", row.TornBytes),
			fmt.Sprintf("%.0f", row.RecoverNs),
			fmt.Sprintf("%.2f", row.ReplayPerSec),
			fmt.Sprintf("%d", row.CompactedRecords),
			fmt.Sprintf("%d", row.CompactedBytes),
			fmt.Sprintf("%.0f", row.RecoverCompactNs))
	}
	return t.csv(w)
}

// JSON writes the curve as a machine-readable snapshot
// (BENCH_chaos.json in the Makefile's bench target).
func (r *ChaosBenchResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
