package experiments

import (
	"math"
	"time"
)

// DeviceCurve models a device's PoW latency as a function of difficulty:
//
//	powTime(d) = Base · Ratio^(d − D0)
//
// For a binary leading-zero-bits PoW the ideal Ratio is 2 (expected
// attempts double per bit). The paper's Raspberry Pi measurements
// (Fig 7: 10.98 s at D=12 → 245.3 s at D=14) exhibit a steeper
// per-level ratio ≈ 4.7 on IOTA's trinary PoW; the virtual-time
// experiments default to an intermediate Ratio of 3 and EXPERIMENTS.md
// reports the sensitivity.
type DeviceCurve struct {
	// Base is the PoW latency at difficulty D0 (the paper measures
	// ≈0.7 s at D0=11 on the Pi).
	Base time.Duration
	// Ratio is the per-difficulty-level latency multiplier.
	Ratio float64
	// D0 is the anchor difficulty.
	D0 int
}

// DefaultPiCurve anchors 0.7 s at difficulty 11 with ratio 3.
func DefaultPiCurve() DeviceCurve {
	return DeviceCurve{Base: 700 * time.Millisecond, Ratio: 3, D0: 11}
}

// Binary returns the ideal binary curve (ratio 2) with the given anchor.
func Binary(base time.Duration, d0 int) DeviceCurve {
	return DeviceCurve{Base: base, Ratio: 2, D0: d0}
}

// At returns the modelled PoW latency at difficulty d.
func (c DeviceCurve) At(d int) time.Duration {
	return time.Duration(float64(c.Base) * math.Pow(c.Ratio, float64(d-c.D0)))
}

// Valid reports whether the curve is usable.
func (c DeviceCurve) Valid() bool {
	return c.Base > 0 && c.Ratio > 1 && c.D0 >= 1
}
