package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestFig7ShapeExponential(t *testing.T) {
	cfg := Fig7Config{MinDifficulty: 2, MaxDifficulty: 12, Trials: 6, CostFactor: 1}
	res, err := RunFig7(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Expected attempts column is exactly 2^d.
	for _, row := range res.Rows {
		if row.ExpectedAttempts != float64(uint64(1)<<uint(row.Difficulty)) {
			t.Errorf("expected attempts at %d = %v", row.Difficulty, row.ExpectedAttempts)
		}
		if row.MeanAttempts <= 0 {
			t.Errorf("mean attempts at %d = %v", row.Difficulty, row.MeanAttempts)
		}
	}
	// The curve grows: attempts at the top difficulty dwarf the bottom.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.MeanAttempts < 16*first.MeanAttempts {
		t.Errorf("no exponential growth: %v → %v attempts",
			first.MeanAttempts, last.MeanAttempts)
	}
}

func TestFig7Validation(t *testing.T) {
	if _, err := RunFig7(context.Background(), Fig7Config{MinDifficulty: 5, MaxDifficulty: 3, Trials: 1, CostFactor: 1}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := RunFig7(context.Background(), Fig7Config{MinDifficulty: 1, MaxDifficulty: 2, Trials: 0, CostFactor: 1}); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestFig7ContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunFig7(ctx, QuickFig7Config()); err == nil {
		t.Error("cancelled run succeeded")
	}
}

func TestFig8ReproducesPaperShape(t *testing.T) {
	res, err := RunFig8(DefaultFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	attackAt := res.Config.AttackTimes[0]

	var sawAttack bool
	var minCr, maxCrP float64
	for _, s := range res.Samples {
		if s.Attack {
			sawAttack = true
		}
		if s.Cr < minCr {
			minCr = s.Cr
		}
		if s.CrP > maxCrP {
			maxCrP = s.CrP
		}
		// Before the attack: CrN = 0 and Cr overlaps λ1·CrP (the
		// paper: "the curve of Cr overlaps with that of CrP").
		if s.At < attackAt {
			if s.CrN != 0 {
				t.Fatalf("CrN = %v before attack at t=%v", s.CrN, s.At)
			}
			if diff := s.Cr - res.Config.Params.Lambda1*s.CrP; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("Cr does not overlap CrP before attack at t=%v", s.At)
			}
		}
	}
	if !sawAttack {
		t.Fatal("no attack sample")
	}
	if minCr > -5 {
		t.Errorf("Cr trough = %v, want a sharp decline", minCr)
	}
	if maxCrP <= 0 {
		t.Error("CrP never rose")
	}
	// One recovery gap, strictly positive and shorter than the horizon.
	if len(res.RecoveryGaps) != 1 {
		t.Fatalf("recovery gaps = %v", res.RecoveryGaps)
	}
	if res.RecoveryGaps[0] <= 2*res.Config.TxPeriod {
		t.Errorf("recovery gap %v not larger than normal cadence", res.RecoveryGaps[0])
	}
	// The final sample shows recovery in progress: Cr above the trough.
	final := res.Samples[len(res.Samples)-1]
	if final.Cr <= minCr {
		t.Error("no recovery by end of horizon")
	}
}

func TestFig8TwoAttacksHitHarder(t *testing.T) {
	one, err := RunFig8(DefaultFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	two, err := RunFig8(Fig8bConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(two.RecoveryGaps) != 2 {
		t.Fatalf("two-attack gaps = %v", two.RecoveryGaps)
	}
	minOf := func(r *Fig8Result) float64 {
		m := 0.0
		for _, s := range r.Samples {
			if s.Cr < m {
				m = s.Cr
			}
		}
		return m
	}
	if minOf(two) > minOf(one) {
		t.Errorf("two attacks trough %v not deeper than one %v", minOf(two), minOf(one))
	}
	// Fewer transactions complete under two attacks.
	count := func(r *Fig8Result) int {
		n := 0
		for _, s := range r.Samples {
			if s.TxWeight > 0 {
				n++
			}
		}
		return n
	}
	if count(two) >= count(one) {
		t.Errorf("tx counts: two=%d one=%d", count(two), count(one))
	}
}

func TestFig8Validation(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.WeightPattern = nil
	if _, err := RunFig8(cfg); err == nil {
		t.Error("empty weight pattern accepted")
	}
	cfg = DefaultFig8Config()
	cfg.Horizon = 0
	if _, err := RunFig8(cfg); err == nil {
		t.Error("zero horizon accepted")
	}
	cfg = DefaultFig8Config()
	cfg.Curve = DeviceCurve{}
	if _, err := RunFig8(cfg); err == nil {
		t.Error("invalid curve accepted")
	}
}

// TestFig9PaperOrdering is the headline reproduction check: the four
// bars must order exactly as the paper's Fig 9.
func TestFig9PaperOrdering(t *testing.T) {
	res, err := RunFig9(DefaultFig9Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	original := res.Rows[0].AvgPowTime
	normal := res.Rows[1].AvgPowTime
	oneAttack := res.Rows[2].AvgPowTime
	twoAttacks := res.Rows[3].AvgPowTime

	if !(normal < original) {
		t.Errorf("credit normal %v not faster than original %v", normal, original)
	}
	if !(original < oneAttack) {
		t.Errorf("one attack %v not slower than original %v", oneAttack, original)
	}
	if !(oneAttack < twoAttacks) {
		t.Errorf("two attacks %v not slower than one %v", twoAttacks, oneAttack)
	}
	// Rough magnitude checks against the paper's ratios (0.17×, 2.4×,
	// 5.4×) with generous tolerance: shape, not absolutes.
	if normal.Seconds() > 0.5*original.Seconds() {
		t.Errorf("honest speedup too small: %v vs %v", normal, original)
	}
	if twoAttacks.Seconds() < 1.5*oneAttack.Seconds() {
		t.Errorf("second attack added too little: %v vs %v", twoAttacks, oneAttack)
	}
	// The original-PoW control sits at the anchor latency.
	if diff := original - res.Config.Curve.Base; diff > 100*time.Millisecond || diff < -100*time.Millisecond {
		t.Errorf("original PoW = %v, want ≈ %v", original, res.Config.Curve.Base)
	}
}

func TestFig9AttackersCompleteFewerTxs(t *testing.T) {
	res, err := RunFig9(DefaultFig9Config())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[3].Transactions >= res.Rows[1].Transactions {
		t.Errorf("attacker txs %d ≥ honest %d",
			res.Rows[3].Transactions, res.Rows[1].Transactions)
	}
}

func TestFig10LinearInLength(t *testing.T) {
	cfg := Fig10Config{MinExp: 10, MaxExp: 20, Trials: 3, Scheme: DefaultFig10Config().Scheme}
	res, err := RunFig10(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	small := res.Rows[0]
	large := res.Rows[len(res.Rows)-1]
	if large.EncryptMean <= small.EncryptMean {
		t.Errorf("encryption time not growing: %v → %v",
			small.EncryptMean, large.EncryptMean)
	}
	// 1024× the data should cost well over 10× the time (linear regime
	// modulo fixed overhead at the small end).
	if large.EncryptMean < 10*small.EncryptMean {
		t.Errorf("growth too shallow: %v → %v", small.EncryptMean, large.EncryptMean)
	}
	for _, row := range res.Rows {
		if row.DecryptMean <= 0 {
			t.Errorf("decrypt mean at %d bytes = %v", row.Bytes, row.DecryptMean)
		}
	}
}

func TestFig10Validation(t *testing.T) {
	if _, err := RunFig10(context.Background(), Fig10Config{MinExp: 10, MaxExp: 5, Trials: 1, Scheme: 1}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := RunFig10(context.Background(), Fig10Config{MinExp: 1, MaxExp: 2, Trials: 1, Scheme: 99}); err == nil {
		t.Error("bad scheme accepted")
	}
}

func TestSecurityMatrixAllDefended(t *testing.T) {
	res, err := RunSecurity(context.Background(), DefaultSecurityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("scenarios = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Pass {
			t.Errorf("threat %q not defended: %s", row.Threat, row.Detail)
		}
	}
}

func TestThroughputDAGBeatsChainOnLatency(t *testing.T) {
	res, err := RunThroughput(context.Background(), QuickThroughputConfig())
	if err != nil {
		t.Fatal(err)
	}
	dag, chain := res.Rows[0], res.Rows[1]
	if dag.MeanAccept >= chain.MeanAccept {
		t.Errorf("dag accept %v not below chain %v", dag.MeanAccept, chain.MeanAccept)
	}
	if dag.TPS <= 0 || chain.TPS <= 0 {
		t.Error("zero TPS")
	}
	if chain.ConfirmedFrac != 1.0 {
		t.Errorf("chain confirmed %v", chain.ConfirmedFrac)
	}
	if dag.ConfirmedFrac <= 0.5 {
		t.Errorf("dag confirmed %v", dag.ConfirmedFrac)
	}
}

func TestKeyDistExperimentAllPass(t *testing.T) {
	res, err := RunKeyDist(KeyDistConfig{Rounds: 5, TamperTrials: 4, Freshness: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Pass {
			t.Errorf("case %q failed: %+v", row.Case, row)
		}
	}
}

func TestRenderAndCSVNonEmpty(t *testing.T) {
	type rc interface {
		Render(*bytes.Buffer) error
	}
	_ = rc(nil)

	fig8, err := RunFig8(DefaultFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	fig9, err := RunFig9(DefaultFig9Config())
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name   string
		render func(*bytes.Buffer) error
		csv    func(*bytes.Buffer) error
		want   string
	}{
		{"fig8", func(b *bytes.Buffer) error { return fig8.Render(b) },
			func(b *bytes.Buffer) error { return fig8.CSV(b) }, "ATTACK"},
		{"fig9", func(b *bytes.Buffer) error { return fig9.Render(b) },
			func(b *bytes.Buffer) error { return fig9.CSV(b) }, "original PoW"},
	}
	for _, c := range checks {
		var buf bytes.Buffer
		if err := c.render(&buf); err != nil {
			t.Fatalf("%s render: %v", c.name, err)
		}
		if !strings.Contains(buf.String(), c.want) {
			t.Errorf("%s render missing %q", c.name, c.want)
		}
		var csvBuf bytes.Buffer
		if err := c.csv(&csvBuf); err != nil {
			t.Fatalf("%s csv: %v", c.name, err)
		}
		if lines := strings.Count(csvBuf.String(), "\n"); lines < 3 {
			t.Errorf("%s csv has %d lines", c.name, lines)
		}
	}
}

func TestDeviceCurve(t *testing.T) {
	c := DefaultPiCurve()
	if !c.Valid() {
		t.Fatal("default curve invalid")
	}
	if c.At(c.D0) != c.Base {
		t.Errorf("At(D0) = %v, want %v", c.At(c.D0), c.Base)
	}
	if c.At(c.D0+1) != time.Duration(float64(c.Base)*c.Ratio) {
		t.Error("ratio step wrong")
	}
	if c.At(c.D0-1) >= c.Base {
		t.Error("lower difficulty not faster")
	}
	b := Binary(time.Second, 10)
	if b.At(12) != 4*time.Second {
		t.Errorf("binary curve At(12) = %v", b.At(12))
	}
	if (DeviceCurve{}).Valid() {
		t.Error("zero curve valid")
	}
}

func TestScalabilitySweep(t *testing.T) {
	cfg := ScalabilityConfig{
		DeviceCounts: []int{1, 4},
		TxPerDevice:  5,
		Difficulty:   6,
		PayloadBytes: 32,
	}
	res, err := RunScalability(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Transactions != row.Devices*cfg.TxPerDevice {
			t.Errorf("devices=%d txs=%d", row.Devices, row.Transactions)
		}
		if row.TPS <= 0 || row.MeanAccept <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}
	if _, err := RunScalability(context.Background(), ScalabilityConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestLazyResistWeightedWalkWins(t *testing.T) {
	cfg := LazyResistConfig{HonestTxs: 100, LazyTips: 30, Selections: 150}
	res, err := RunLazyResist(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	uniform, walk := res.Rows[0], res.Rows[1]
	// The paper's warning: under naive selection the inflated tips are
	// chosen "with very high probability".
	if uniform.AttackerFrac < 0.5 {
		t.Errorf("uniform attacker fraction = %v, expected the attack to work", uniform.AttackerFrac)
	}
	// The weighted walk starves the stale branch.
	if walk.AttackerFrac > 0.1 {
		t.Errorf("weighted walk attacker fraction = %v, want near zero", walk.AttackerFrac)
	}
	if walk.AttackerFrac >= uniform.AttackerFrac {
		t.Error("weighted walk did not beat uniform selection")
	}
	if _, err := RunLazyResist(LazyResistConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestLambdaSweepStricterPunishment(t *testing.T) {
	cfg := LambdaSweepConfig{
		Lambda2s: []float64{0.25, 1.0},
		Base:     DefaultFig9Config(),
	}
	res, err := RunLambdaSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	lenient, strict := res.Rows[0], res.Rows[1]
	// "If we want to adopt strict punishment strategy ... set λ2 larger."
	if strict.PenaltyRatio <= lenient.PenaltyRatio {
		t.Errorf("λ2=1 ratio %.1f not above λ2=0.25 ratio %.1f",
			strict.PenaltyRatio, lenient.PenaltyRatio)
	}
	// λ2 does not tax honest nodes (their CrN is zero).
	if strict.HonestAvg != lenient.HonestAvg {
		t.Errorf("honest cost moved with λ2: %v vs %v",
			lenient.HonestAvg, strict.HonestAvg)
	}
	if _, err := RunLambdaSweep(LambdaSweepConfig{}); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := RunLambdaSweep(LambdaSweepConfig{Lambda2s: []float64{-1}, Base: DefaultFig9Config()}); err == nil {
		t.Error("negative λ2 accepted")
	}
}

func TestScenarioMatrixExperimentAllCellsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("the CI-tier matrix runs 8 cells of 20 nodes each")
	}
	res, err := RunScenarioMatrix(context.Background(), QuickScenarioMatrixConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 6 {
		t.Fatalf("matrix produced %d rows, want ≥ 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Converged || row.LostDurable > 0 || !row.CreditParityOK {
			t.Errorf("cell %q: converged=%t lost=%d parity=%t",
				row.Scenario, row.Converged, row.LostDurable, row.CreditParityOK)
		}
	}
}

// TestLatencyBenchSweep smoke-tests the open-loop latency sweep at a
// tiny scale: both verification modes run, every transaction is
// accounted for, quantiles are ordered, and end-to-end latency carries
// at least the injected link delay.
func TestLatencyBenchSweep(t *testing.T) {
	cfg := QuickLatencyBenchConfig()
	cfg.Rates = []float64{300}
	cfg.TxPerRate = 30
	cfg.Devices = 4
	cfg.ConfirmTimeout = 15 * time.Second // race-mode headroom
	res, err := RunLatencyBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want batched + per-tx", len(res.Rows))
	}
	if res.Rows[0].Mode != "batched" || res.Rows[1].Mode != "per-tx" {
		t.Fatalf("row modes = %q, %q", res.Rows[0].Mode, res.Rows[1].Mode)
	}
	for _, row := range res.Rows {
		if row.Submitted != cfg.TxPerRate {
			t.Errorf("%s: submitted %d, want %d (open-loop runs never drop sends)",
				row.Mode, row.Submitted, cfg.TxPerRate)
		}
		if row.Failed != 0 {
			t.Errorf("%s: %d failures", row.Mode, row.Failed)
		}
		if row.AdmitP50 <= 0 || row.AdmitP50 > row.AdmitP99 || row.AdmitP99 > row.AdmitP999 {
			t.Errorf("%s: admit quantiles out of order: %v %v %v",
				row.Mode, row.AdmitP50, row.AdmitP99, row.AdmitP999)
		}
		if row.E2EP50 < cfg.NetLatency {
			t.Errorf("%s: e2e p50 %v below the %v link delay", row.Mode, row.E2EP50, cfg.NetLatency)
		}
		if row.E2EP50 > row.E2EP99 || row.E2EP99 > row.E2EP999 {
			t.Errorf("%s: e2e quantiles out of order", row.Mode)
		}
		if row.VerifyNsPerTx <= 0 {
			t.Errorf("%s: no relay verification cost recorded", row.Mode)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("render: %v (%d bytes)", err, buf.Len())
	}
	buf.Reset()
	if err := res.CSV(&buf); err != nil || !strings.Contains(buf.String(), "offered_tps") {
		t.Fatalf("csv: %v", err)
	}
	buf.Reset()
	if err := res.JSON(&buf); err != nil || !strings.Contains(buf.String(), "verify_ns_per_tx") {
		t.Fatalf("json: %v", err)
	}
	if _, err := RunLatencyBench(context.Background(), LatencyBenchConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

// TestShardBenchSweep smoke-tests the sharded-topology scaling sweep
// at CI scale: every cell's correctness gates (control-namespace
// convergence, zero cross-shard leakage, credit agreement and oracle
// parity) must hold even where the throughput headline is not gated.
func TestShardBenchSweep(t *testing.T) {
	cfg := QuickShardBenchConfig()
	res, err := RunShardBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(cfg.Gateways) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), len(cfg.Gateways))
	}
	for _, c := range res.Cells {
		if want := c.Gateways * cfg.Devices * cfg.Ops; c.Admitted != want {
			t.Errorf("%d gateways: admitted %d, want %d", c.Gateways, c.Admitted, want)
		}
		if !c.Converged || !c.NoLeakage {
			t.Errorf("%d gateways: converged=%v leakage-free=%v", c.Gateways, c.Converged, c.NoLeakage)
		}
		if !c.CreditAgree || !c.CreditParity {
			t.Errorf("%d gateways: credit agree=%v parity=%v", c.Gateways, c.CreditAgree, c.CreditParity)
		}
		for si, size := range c.ShardSizes {
			if want := cfg.Devices * cfg.Ops; size != want {
				t.Errorf("%d gateways: shard %d holds %d vertices, want %d", c.Gateways, si+1, size, want)
			}
		}
		if c.Gateways > 1 && c.BackbonePages == 0 {
			t.Errorf("%d gateways: no backbone sync pages pulled", c.Gateways)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("render: %v (%d bytes)", err, buf.Len())
	}
	buf.Reset()
	if err := res.CSV(&buf); err != nil || !strings.Contains(buf.String(), "backbone_sync_pages") {
		t.Fatalf("csv: %v", err)
	}
	buf.Reset()
	if err := res.JSON(&buf); err != nil || !strings.Contains(buf.String(), "scaling") {
		t.Fatalf("json: %v", err)
	}
	if _, err := RunShardBench(context.Background(), ShardBenchConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}
