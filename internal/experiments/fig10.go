package experiments

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/dataauth"
)

// Fig10Config parameterizes the Fig-10 sweep: "impact of symmetric
// encryption algorithm on transaction efficiency" — AES running time vs
// message length, from 64 B to 1 MiB (the paper's log-scale x-axis).
type Fig10Config struct {
	// MinExp..MaxExp sweep message lengths 2^MinExp..2^MaxExp bytes;
	// the paper uses 6..20.
	MinExp int
	MaxExp int
	// Trials per length; the mean is reported.
	Trials int
	// Scheme selects the AES construction (GCM default; CTR-HMAC is the
	// closer match to the paper's raw AES + integrity).
	Scheme dataauth.Scheme
}

// DefaultFig10Config returns the paper's sweep.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{MinExp: 6, MaxExp: 20, Trials: 9, Scheme: dataauth.SchemeGCM}
}

// Fig10Row is one message length's measurement.
type Fig10Row struct {
	Bytes       int
	EncryptMean time.Duration
	DecryptMean time.Duration
	// ThroughputMBs is encryption throughput in MiB/s.
	ThroughputMBs float64
}

// Fig10Result is the regenerated figure.
type Fig10Result struct {
	Config Fig10Config
	Rows   []Fig10Row
}

// RunFig10 measures AES encryption/decryption across message lengths.
func RunFig10(ctx context.Context, cfg Fig10Config) (*Fig10Result, error) {
	if cfg.MinExp < 1 || cfg.MaxExp < cfg.MinExp || cfg.MaxExp > 26 {
		return nil, fmt.Errorf("fig10 exponent range [%d, %d] invalid", cfg.MinExp, cfg.MaxExp)
	}
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("fig10 trials %d must be ≥ 1", cfg.Trials)
	}
	if !cfg.Scheme.Valid() {
		return nil, fmt.Errorf("fig10 scheme invalid")
	}
	key, err := dataauth.NewKey()
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{Config: cfg}
	for exp := cfg.MinExp; exp <= cfg.MaxExp; exp++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		size := 1 << exp
		msg := make([]byte, size)
		if _, err := rand.Read(msg); err != nil {
			return nil, fmt.Errorf("fig10 message: %w", err)
		}
		var encTotal, decTotal time.Duration
		for trial := 0; trial < cfg.Trials; trial++ {
			encStart := time.Now()
			sealed, err := dataauth.Encrypt(key, msg, cfg.Scheme)
			if err != nil {
				return nil, fmt.Errorf("fig10 encrypt %d bytes: %w", size, err)
			}
			encTotal += time.Since(encStart)

			decStart := time.Now()
			if _, err := dataauth.Decrypt(key, sealed); err != nil {
				return nil, fmt.Errorf("fig10 decrypt %d bytes: %w", size, err)
			}
			decTotal += time.Since(decStart)
		}
		encMean := encTotal / time.Duration(cfg.Trials)
		decMean := decTotal / time.Duration(cfg.Trials)
		throughput := 0.0
		if encMean > 0 {
			throughput = float64(size) / (1 << 20) / encMean.Seconds()
		}
		res.Rows = append(res.Rows, Fig10Row{
			Bytes:         size,
			EncryptMean:   encMean,
			DecryptMean:   decMean,
			ThroughputMBs: throughput,
		})
	}
	return res, nil
}

// Render writes the figure as an aligned table.
func (r *Fig10Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Fig 10 — AES (%v) running time vs message length (%d trials)\n",
		r.Config.Scheme, r.Config.Trials); err != nil {
		return err
	}
	t := &table{header: []string{"bytes", "encrypt_s", "decrypt_s", "throughput_MiB_s"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Bytes),
			fmt.Sprintf("%.6f", row.EncryptMean.Seconds()),
			fmt.Sprintf("%.6f", row.DecryptMean.Seconds()),
			fmt.Sprintf("%.1f", row.ThroughputMBs),
		)
	}
	return t.render(w)
}

// CSV writes the figure data as CSV.
func (r *Fig10Result) CSV(w io.Writer) error {
	t := &table{header: []string{"bytes", "encrypt_s", "decrypt_s", "throughput_mib_s"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Bytes),
			fmt.Sprintf("%.6f", row.EncryptMean.Seconds()),
			fmt.Sprintf("%.6f", row.DecryptMean.Seconds()),
			fmt.Sprintf("%.1f", row.ThroughputMBs),
		)
	}
	return t.csv(w)
}
