package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/pow"
)

// Fig7Config parameterizes the Fig-7 sweep: "running time of PoW
// algorithm with increasing difficulty" on a power-constrained device.
type Fig7Config struct {
	// MinDifficulty..MaxDifficulty is the sweep range; the paper sweeps
	// 1..14.
	MinDifficulty int
	MaxDifficulty int
	// Trials per difficulty; the mean over trials is reported. The
	// variance of PoW time is high (geometric attempts), so ≥ 5 trials
	// smooth the curve.
	Trials int
	// CostFactor emulates the Raspberry Pi's hash rate (DESIGN.md §1).
	// DefaultFig7PiCostFactor calibrates difficulty 11 to the paper's
	// ≈0.5-1 s range on commodity laptop hardware.
	CostFactor int
}

// DefaultFig7PiCostFactor approximates a Pi 3B running an interpreted
// PoW loop: each nonce attempt burns this many extra SHA-256 rounds.
const DefaultFig7PiCostFactor = 2000

// DefaultFig7Config returns the paper's sweep with Pi emulation.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		MinDifficulty: 1,
		MaxDifficulty: 14,
		Trials:        5,
		CostFactor:    DefaultFig7PiCostFactor,
	}
}

// QuickFig7Config returns a CI-friendly sweep (no device emulation,
// smaller range) for smoke tests and testing.B benches.
func QuickFig7Config() Fig7Config {
	return Fig7Config{MinDifficulty: 1, MaxDifficulty: 12, Trials: 3, CostFactor: 1}
}

// Fig7Row is one difficulty's measurement.
type Fig7Row struct {
	Difficulty       int
	MeanTime         time.Duration
	MeanAttempts     float64
	ExpectedAttempts float64
}

// Fig7Result is the regenerated figure.
type Fig7Result struct {
	Config Fig7Config
	Rows   []Fig7Row
}

// RunFig7 measures PoW running time across the difficulty sweep.
func RunFig7(ctx context.Context, cfg Fig7Config) (*Fig7Result, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("fig7 trials %d must be ≥ 1", cfg.Trials)
	}
	if cfg.MinDifficulty < pow.MinDifficulty || cfg.MaxDifficulty > pow.MaxDifficulty ||
		cfg.MinDifficulty > cfg.MaxDifficulty {
		return nil, fmt.Errorf("fig7 difficulty range [%d, %d] invalid",
			cfg.MinDifficulty, cfg.MaxDifficulty)
	}
	worker := &pow.Worker{CostFactor: cfg.CostFactor}
	res := &Fig7Result{Config: cfg}
	for d := cfg.MinDifficulty; d <= cfg.MaxDifficulty; d++ {
		var totalTime time.Duration
		var totalAttempts uint64
		for trial := 0; trial < cfg.Trials; trial++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Vary the parents per trial so each search explores a
			// fresh nonce landscape.
			trunk := hashutil.Sum([]byte(fmt.Sprintf("fig7-trunk-%d-%d", d, trial)))
			branch := hashutil.Sum([]byte(fmt.Sprintf("fig7-branch-%d-%d", d, trial)))
			r, err := worker.Search(ctx, trunk, branch, d)
			if err != nil {
				return nil, fmt.Errorf("fig7 difficulty %d: %w", d, err)
			}
			totalTime += r.Elapsed
			totalAttempts += r.Attempts
		}
		res.Rows = append(res.Rows, Fig7Row{
			Difficulty:       d,
			MeanTime:         totalTime / time.Duration(cfg.Trials),
			MeanAttempts:     float64(totalAttempts) / float64(cfg.Trials),
			ExpectedAttempts: pow.ExpectedAttempts(d),
		})
	}
	return res, nil
}

// Render writes the figure as an aligned table.
func (r *Fig7Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Fig 7 — running time of PoW with increasing difficulty (cost factor %d, %d trials)\n",
		r.Config.CostFactor, r.Config.Trials); err != nil {
		return err
	}
	t := &table{header: []string{"difficulty", "mean_time_s", "mean_attempts", "expected_attempts"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Difficulty),
			fsec(row.MeanTime),
			fmt.Sprintf("%.0f", row.MeanAttempts),
			fmt.Sprintf("%.0f", row.ExpectedAttempts),
		)
	}
	return t.render(w)
}

// CSV writes the figure data as CSV.
func (r *Fig7Result) CSV(w io.Writer) error {
	t := &table{header: []string{"difficulty", "mean_time_s", "mean_attempts", "expected_attempts"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Difficulty),
			fsec(row.MeanTime),
			fmt.Sprintf("%.0f", row.MeanAttempts),
			fmt.Sprintf("%.0f", row.ExpectedAttempts),
		)
	}
	return t.csv(w)
}
