package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// Fig8Config parameterizes the credit-timeline simulation: "credit value
// changes based on nodes' behaviours" (paper Fig 8). The simulation runs
// on virtual time, driving the real credit ledger and difficulty policy
// with a behaviour script: the node transacts steadily, then conducts
// one or more attacks; the punishment stretches its PoW time, producing
// the paper's transaction gap and gradual recovery.
type Fig8Config struct {
	// Params are the credit parameters (paper defaults: λ1=1, λ2=0.5,
	// ΔT=30 s, α_l=0.5, α_d=1).
	Params core.Params
	// Policy maps credit to difficulty; nil selects the default
	// additive policy.
	Policy core.DifficultyPolicy
	// Horizon is the simulated span (the paper plots 100 s ≈ 3ΔT).
	Horizon time.Duration
	// SampleEvery is the plot resolution.
	SampleEvery time.Duration
	// TxPeriod is the honest inter-transaction period.
	TxPeriod time.Duration
	// Curve models the device's difficulty→latency relation (the
	// paper's device is a Pi 3B measuring ≈0.7 s at D0=11).
	Curve DeviceCurve
	// AttackTimes are the instants (offsets from start) at which the
	// node conducts a double-spend. Fig 8(a) uses {24 s}; Fig 8(b)
	// uses {24 s, 44 s}.
	AttackTimes []time.Duration
	// WeightPattern cycles transaction weights w_k (the paper's bars
	// reach ≈3).
	WeightPattern []float64
}

// DefaultFig8Config returns the Fig-8(a) setting (one attack).
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Params:        core.DefaultParams(),
		Horizon:       100 * time.Second,
		SampleEvery:   time.Second,
		TxPeriod:      2 * time.Second,
		Curve:         DefaultPiCurve(),
		AttackTimes:   []time.Duration{24 * time.Second},
		WeightPattern: []float64{1, 2, 3, 2},
	}
}

// Fig8bConfig returns the Fig-8(b) setting (two attacks).
func Fig8bConfig() Fig8Config {
	cfg := DefaultFig8Config()
	cfg.AttackTimes = []time.Duration{24 * time.Second, 44 * time.Second}
	return cfg
}

// Fig8Sample is one plotted instant.
type Fig8Sample struct {
	At         time.Duration
	TxWeight   float64 // weight of the tx issued in this sample window, 0 if none
	Attack     bool    // an attack happened in this sample window
	CrP        float64
	CrN        float64
	Cr         float64
	Difficulty int
}

// Fig8Result is the regenerated figure.
type Fig8Result struct {
	Config  Fig8Config
	Samples []Fig8Sample
	// RecoveryGaps, one per attack: how long after the attack the node
	// needed before completing its next transaction (the paper reports
	// 37 s for one attack).
	RecoveryGaps []time.Duration
}

// RunFig8 simulates the behaviour script against the credit mechanism.
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("fig8 params: %w", err)
	}
	if cfg.Horizon <= 0 || cfg.SampleEvery <= 0 || cfg.TxPeriod <= 0 {
		return nil, fmt.Errorf("fig8 durations must be positive")
	}
	if !cfg.Curve.Valid() {
		return nil, fmt.Errorf("fig8 device curve invalid")
	}
	if len(cfg.WeightPattern) == 0 {
		return nil, fmt.Errorf("fig8 weight pattern must not be empty")
	}
	ledger, err := core.NewLedger(cfg.Params)
	if err != nil {
		return nil, err
	}
	policy := cfg.Policy
	if policy == nil {
		// The paper-literal Cr ∝ 1/D mapping: difficulty stays elevated
		// until credit climbs back above zero, producing Fig 8's
		// pronounced post-attack gap.
		policy = core.DefaultInversePolicy(cfg.Params)
	}
	engine := core.NewEngine(ledger, policy)

	nodeAddr := identity.Address(hashutil.Sum([]byte("fig8-node")))
	start := time.Unix(1_700_000_000, 0).UTC()
	res := &Fig8Result{Config: cfg}

	powTime := cfg.Curve.At

	attacks := append([]time.Duration(nil), cfg.AttackTimes...)
	txCount := 0
	var txSeq uint64
	lastTxAt := time.Duration(0)      // node starts a PoW at t=0
	var pendingRecovery time.Duration // set when an attack happened
	recoveryPending := false

	for at := time.Duration(0); at <= cfg.Horizon; at += cfg.SampleEvery {
		now := start.Add(at)
		sample := Fig8Sample{At: at}

		// Attack scheduled in this window? The node's in-flight work is
		// wasted: it restarts PoW under the raised difficulty.
		if len(attacks) > 0 && at >= attacks[0] {
			ledger.RecordMalicious(nodeAddr, core.EventRecord{
				Behaviour: core.BehaviourDoubleSpend,
				At:        start.Add(attacks[0]),
				Detail:    "scripted double-spend",
			})
			sample.Attack = true
			lastTxAt = attacks[0]
			pendingRecovery = attacks[0]
			recoveryPending = true
			attacks = attacks[1:]
		}

		// Transaction completion model: the node continuously re-mines
		// against the difficulty its *current* credit demands, so it
		// completes once the elapsed time covers the PoW latency at the
		// (decaying) difficulty — recovery emerges from CrN's decay.
		if !sample.Attack {
			d := engine.DifficultyFor(nodeAddr, now)
			need := powTime(d)
			if need < cfg.TxPeriod {
				need = cfg.TxPeriod // sensor cadence floors the rate
			}
			if at-lastTxAt >= need {
				w := cfg.WeightPattern[txCount%len(cfg.WeightPattern)]
				txSeq++
				ledger.RecordTransaction(nodeAddr,
					hashutil.Sum([]byte(fmt.Sprintf("fig8-tx-%d", txSeq))), w, now)
				sample.TxWeight = w
				txCount++
				lastTxAt = at
				if recoveryPending {
					res.RecoveryGaps = append(res.RecoveryGaps, at-pendingRecovery)
					recoveryPending = false
				}
			}
		}

		c := engine.CreditOf(nodeAddr, now)
		sample.CrP = c.CrP
		sample.CrN = c.CrN
		sample.Cr = c.Cr
		sample.Difficulty = engine.Policy().DifficultyFor(c)
		res.Samples = append(res.Samples, sample)
	}
	return res, nil
}

// Render writes the time series as an aligned table.
func (r *Fig8Result) Render(w io.Writer) error {
	label := "a"
	if len(r.Config.AttackTimes) > 1 {
		label = "b"
	}
	if _, err := fmt.Fprintf(w,
		"Fig 8(%s) — credit value vs time (λ1=%.1f λ2=%.1f ΔT=%s, %d attack(s))\n",
		label, r.Config.Params.Lambda1, r.Config.Params.Lambda2,
		r.Config.Params.DeltaT, len(r.Config.AttackTimes)); err != nil {
		return err
	}
	t := &table{header: []string{"t_s", "event", "w", "CrP", "CrN", "Cr", "difficulty"}}
	for _, s := range r.Samples {
		event := ""
		if s.Attack {
			event = "ATTACK"
		} else if s.TxWeight > 0 {
			event = "tx"
		}
		t.add(
			fmt.Sprintf("%.0f", s.At.Seconds()),
			event,
			ffloat(s.TxWeight),
			ffloat(s.CrP),
			ffloat(s.CrN),
			ffloat(s.Cr),
			fmt.Sprintf("%d", s.Difficulty),
		)
	}
	if err := t.render(w); err != nil {
		return err
	}
	for i, gap := range r.RecoveryGaps {
		if _, err := fmt.Fprintf(w, "recovery gap after attack %d: %.0f s\n",
			i+1, gap.Seconds()); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the series as CSV.
func (r *Fig8Result) CSV(w io.Writer) error {
	t := &table{header: []string{"t_s", "attack", "w", "cr_p", "cr_n", "cr", "difficulty"}}
	for _, s := range r.Samples {
		attack := "0"
		if s.Attack {
			attack = "1"
		}
		t.add(
			fmt.Sprintf("%.0f", s.At.Seconds()),
			attack,
			ffloat(s.TxWeight),
			ffloat(s.CrP),
			ffloat(s.CrN),
			ffloat(s.Cr),
			fmt.Sprintf("%d", s.Difficulty),
		)
	}
	return t.csv(w)
}
