package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// Fig9Config parameterizes the four control experiments of the paper's
// Fig 9: average PoW time per transaction over a 3ΔT (90 s) window for
//
//  1. original PoW (static difficulty D0);
//  2. credit-based PoW, normal behaviour;
//  3. credit-based PoW, one malicious attack;
//  4. credit-based PoW, two malicious attacks.
//
// The experiments run on virtual time against the real credit ledger
// and difficulty policy, with PoW latency given by the device curve
// (see DESIGN.md §1: the Pi is emulated, not assumed).
type Fig9Config struct {
	Params core.Params
	// Policy maps credit to difficulty; nil selects the paper-literal
	// inverse policy.
	Policy core.DifficultyPolicy
	// Curve models the device's difficulty→latency relation.
	Curve DeviceCurve
	// Horizon is the experiment window (the paper uses 3ΔT = 90 s).
	Horizon time.Duration
	// TxPeriod is the sensor reporting period.
	TxPeriod time.Duration
	// WeightPattern cycles transaction weights.
	WeightPattern []float64
	// AttackTimes for scenarios 3 and 4.
	OneAttack  []time.Duration
	TwoAttacks []time.Duration
	// Tick is the simulation resolution.
	Tick time.Duration
}

// DefaultFig9Config returns the paper's setting. The additive policy
// tuning (β=10, γ=3) is calibrated so the four bars land near the
// paper's ratios (≈4-6× faster honest; attackers multiples slower); see
// EXPERIMENTS.md for the sensitivity discussion and the inverse-policy
// ablation.
func DefaultFig9Config() Fig9Config {
	params := core.DefaultParams()
	return Fig9Config{
		Params:        params,
		Policy:        core.AdditivePolicy{Params: params, Beta: 10, Gamma: 3},
		Curve:         DefaultPiCurve(),
		Horizon:       90 * time.Second,
		TxPeriod:      5 * time.Second,
		WeightPattern: []float64{1, 2, 3, 2},
		OneAttack:     []time.Duration{24 * time.Second},
		TwoAttacks:    []time.Duration{24 * time.Second, 44 * time.Second},
		Tick:          100 * time.Millisecond,
	}
}

// Fig9Row is one control experiment's outcome.
type Fig9Row struct {
	Scenario     string
	Transactions int
	Attacks      int
	// AvgPowTime is the mean PoW time per completed transaction —
	// the bar height in the paper's Fig 9.
	AvgPowTime time.Duration
	// TotalPowTime is the summed PoW latency over the window.
	TotalPowTime time.Duration
}

// Fig9Result is the regenerated figure.
type Fig9Result struct {
	Config Fig9Config
	Rows   []Fig9Row
}

// RunFig9 executes the four control experiments.
func RunFig9(cfg Fig9Config) (*Fig9Result, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("fig9 params: %w", err)
	}
	if !cfg.Curve.Valid() {
		return nil, fmt.Errorf("fig9 device curve invalid")
	}
	if cfg.Horizon <= 0 || cfg.TxPeriod <= 0 || cfg.Tick <= 0 {
		return nil, fmt.Errorf("fig9 durations must be positive")
	}
	if len(cfg.WeightPattern) == 0 {
		return nil, fmt.Errorf("fig9 weight pattern must not be empty")
	}

	res := &Fig9Result{Config: cfg}
	scenarios := []struct {
		name    string
		static  bool
		attacks []time.Duration
	}{
		{name: "original PoW", static: true},
		{name: "credit-based PoW, normal", static: false},
		{name: "credit-based PoW, 1 attack", static: false, attacks: cfg.OneAttack},
		{name: "credit-based PoW, 2 attacks", static: false, attacks: cfg.TwoAttacks},
	}
	for _, sc := range scenarios {
		row, err := runFig9Scenario(cfg, sc.name, sc.static, sc.attacks)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runFig9Scenario(cfg Fig9Config, name string, static bool, attackTimes []time.Duration) (Fig9Row, error) {
	ledger, err := core.NewLedger(cfg.Params)
	if err != nil {
		return Fig9Row{}, err
	}
	var policy core.DifficultyPolicy
	switch {
	case static:
		policy = core.StaticPolicy{Difficulty: cfg.Params.InitialDifficulty}
	case cfg.Policy != nil:
		policy = cfg.Policy
	default:
		policy = core.DefaultInversePolicy(cfg.Params)
	}
	engine := core.NewEngine(ledger, policy)

	nodeAddr := identity.Address(hashutil.Sum([]byte("fig9-" + name)))
	start := time.Unix(1_700_000_000, 0).UTC()
	attacks := append([]time.Duration(nil), attackTimes...)

	row := Fig9Row{Scenario: name, Attacks: len(attackTimes)}
	txCount := 0
	var txSeq uint64

	// Mining-start accounting: the device collects a reading every
	// TxPeriod, then mines until the elapsed mining time covers the PoW
	// latency demanded by its *current* difficulty. A transaction's PoW
	// time is the real time spent mining it — so a punished transaction
	// is charged the whole lock-out it sat through (the paper's 37 s
	// gap counts this way), while an honest one is charged ≈ Curve(D).
	startMine := cfg.TxPeriod // first reading is ready after one period
	for at := time.Duration(0); at <= cfg.Horizon; at += cfg.Tick {
		now := start.Add(at)
		if len(attacks) > 0 && at >= attacks[0] {
			ledger.RecordMalicious(nodeAddr, core.EventRecord{
				Behaviour: core.BehaviourDoubleSpend,
				At:        start.Add(attacks[0]),
				Detail:    "scripted attack",
			})
			// The in-flight PoW is wasted: mining restarts now.
			startMine = attacks[0]
			attacks = attacks[1:]
			continue
		}
		if at < startMine {
			continue
		}
		d := engine.DifficultyFor(nodeAddr, now)
		if at-startMine >= cfg.Curve.At(d) {
			w := cfg.WeightPattern[txCount%len(cfg.WeightPattern)]
			txSeq++
			ledger.RecordTransaction(nodeAddr,
				hashutil.Sum([]byte(fmt.Sprintf("fig9-%s-%d", name, txSeq))), w, now)
			txCount++
			charge := at - startMine
			if charge < cfg.Tick {
				charge = cfg.Curve.At(d) // sub-tick PoW: charge the model time
			}
			row.TotalPowTime += charge
			startMine = at + cfg.TxPeriod // next reading
		}
	}
	row.Transactions = txCount
	if txCount > 0 {
		row.AvgPowTime = row.TotalPowTime / time.Duration(txCount)
	} else {
		// No transaction completed: the attacker is effectively locked
		// out; report the full window as the (unfinished) PoW cost.
		row.AvgPowTime = cfg.Horizon
		row.TotalPowTime = cfg.Horizon
	}
	return row, nil
}

// Render writes the four bars as an aligned table.
func (r *Fig9Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Fig 9 — average PoW time per transaction, four control experiments (window %s, D0=%d)\n",
		r.Config.Horizon, r.Config.Params.InitialDifficulty); err != nil {
		return err
	}
	t := &table{header: []string{"scenario", "transactions", "attacks", "avg_pow_s", "total_pow_s"}}
	for _, row := range r.Rows {
		t.add(
			row.Scenario,
			fmt.Sprintf("%d", row.Transactions),
			fmt.Sprintf("%d", row.Attacks),
			fsec(row.AvgPowTime),
			fsec(row.TotalPowTime),
		)
	}
	return t.render(w)
}

// CSV writes the figure data as CSV.
func (r *Fig9Result) CSV(w io.Writer) error {
	t := &table{header: []string{"scenario", "transactions", "attacks", "avg_pow_s", "total_pow_s"}}
	for _, row := range r.Rows {
		t.add(row.Scenario,
			fmt.Sprintf("%d", row.Transactions),
			fmt.Sprintf("%d", row.Attacks),
			fsec(row.AvgPowTime),
			fsec(row.TotalPowTime))
	}
	return t.csv(w)
}
