package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/gossip"
)

// GossipBenchConfig parameterizes the transport fan-out benchmark: at
// each peer count it measures mean broadcast latency on real loopback
// sockets for the one-shot transport (dial per exchange, serial peer
// walk — the pre-pool baseline kept under WithoutPooling) and for the
// persistent multiplexed transport (pooled connections, concurrent
// fan-out). The speedup column is the headline: one-shot broadcast cost
// is the SUM of per-peer dial+exchange times while pooled cost is the
// MAX of warm per-peer exchanges, so the gap widens with peer count.
type GossipBenchConfig struct {
	// PeerCounts lists the gossip fan-out degrees to measure.
	PeerCounts []int
	// Broadcasts is the number of timed broadcasts per transport at each
	// peer count.
	Broadcasts int
	// TxPerBatch and TxBytes shape the datagram: each broadcast carries
	// TxPerBatch synthetic transaction payloads of TxBytes each.
	TxPerBatch int
	TxBytes    int
	// AckDelay models the receiver's work before it acks a batch —
	// signature + PoW verification of TxPerBatch transactions (about
	// 80 µs per ECDSA verify alone) — which loopback sockets otherwise
	// hide. It is the latency the concurrent fan-out overlaps across
	// peers and the serial one-shot walk pays peer by peer, so setting
	// it to zero understates the pooled transport's advantage rather
	// than overstating it.
	AckDelay time.Duration
}

// DefaultGossipBenchConfig sweeps to 8 peers, the scale the acceptance
// snapshot (BENCH_gossip.json) is pinned at.
func DefaultGossipBenchConfig() GossipBenchConfig {
	return GossipBenchConfig{
		PeerCounts: []int{2, 4, 8},
		Broadcasts: 300,
		TxPerBatch: 16,
		TxBytes:    160,
		AckDelay:   500 * time.Microsecond,
	}
}

// QuickGossipBenchConfig is a CI-friendly reduction.
func QuickGossipBenchConfig() GossipBenchConfig {
	return GossipBenchConfig{PeerCounts: []int{2, 8}, Broadcasts: 60, TxPerBatch: 8, TxBytes: 120, AckDelay: 200 * time.Microsecond}
}

// GossipBenchRow is one peer count's measurement.
type GossipBenchRow struct {
	Peers int `json:"peers"`
	// OneShotNs / PooledNs are mean wall-clock times for one Broadcast
	// reaching every peer on each transport.
	OneShotNs float64 `json:"one_shot_ns"`
	PooledNs  float64 `json:"pooled_ns"`
	// Speedup is OneShotNs / PooledNs.
	Speedup float64 `json:"speedup"`
	// OneShotDials / PooledDials count TCP connections each transport
	// established for the same broadcast load; Reuses counts pooled
	// exchanges served over an already-warm connection. The dial ratio is
	// the structural reason for the speedup.
	OneShotDials int64 `json:"one_shot_dials"`
	PooledDials  int64 `json:"pooled_dials"`
	Reuses       int64 `json:"reuses"`
}

// GossipBenchResult is the fan-out scaling curve.
type GossipBenchResult struct {
	Config GossipBenchConfig `json:"config"`
	Rows   []GossipBenchRow  `json:"rows"`
}

// RunGossipBench executes the sweep on loopback sockets.
func RunGossipBench(ctx context.Context, cfg GossipBenchConfig) (*GossipBenchResult, error) {
	if len(cfg.PeerCounts) == 0 || cfg.Broadcasts < 1 || cfg.TxPerBatch < 1 {
		return nil, fmt.Errorf("gossip bench workload too small")
	}
	res := &GossipBenchResult{Config: cfg}
	for _, peers := range cfg.PeerCounts {
		row, err := runGossipBenchPeers(ctx, cfg, peers)
		if err != nil {
			return nil, fmt.Errorf("peers=%d: %w", peers, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runGossipBenchPeers(ctx context.Context, cfg GossipBenchConfig, peers int) (GossipBenchRow, error) {
	msg := benchGossipMessage(cfg)

	oneShotNs, oneShotDials, _, err := timeGossipBroadcasts(ctx, cfg, peers, msg, gossip.WithoutPooling())
	if err != nil {
		return GossipBenchRow{}, fmt.Errorf("one-shot: %w", err)
	}
	pooledNs, pooledDials, reuses, err := timeGossipBroadcasts(ctx, cfg, peers, msg)
	if err != nil {
		return GossipBenchRow{}, fmt.Errorf("pooled: %w", err)
	}

	speedup := 0.0
	if pooledNs > 0 {
		speedup = oneShotNs / pooledNs
	}
	return GossipBenchRow{
		Peers:        peers,
		OneShotNs:    oneShotNs,
		PooledNs:     pooledNs,
		Speedup:      speedup,
		OneShotDials: oneShotDials,
		PooledDials:  pooledDials,
		Reuses:       reuses,
	}, nil
}

// benchGossipMessage builds one deterministic transaction batch.
func benchGossipMessage(cfg GossipBenchConfig) gossip.Message {
	batch := make([][]byte, cfg.TxPerBatch)
	for i := range batch {
		tx := make([]byte, cfg.TxBytes)
		for j := range tx {
			tx[j] = byte(i + j)
		}
		batch[i] = tx
	}
	return gossip.Message{Type: gossip.MsgTransaction, TxData: batch}
}

// timeGossipBroadcasts stands up one sender and `peers` receivers on
// loopback, runs a short warm-up, then times cfg.Broadcasts broadcasts.
func timeGossipBroadcasts(ctx context.Context, cfg GossipBenchConfig, peers int, msg gossip.Message, opts ...gossip.TCPOption) (meanNs float64, dials, reuses int64, err error) {
	ack := gossip.HandlerFunc(func(string, gossip.Message) (*gossip.Message, error) {
		if cfg.AckDelay > 0 {
			time.Sleep(cfg.AckDelay)
		}
		return &gossip.Message{}, nil
	})
	sender, err := gossip.ListenTCP("127.0.0.1:0", opts...)
	if err != nil {
		return 0, 0, 0, err
	}
	defer sender.Close()
	sender.SetHandler(ack)

	receivers := make([]*gossip.TCPNetwork, 0, peers)
	defer func() {
		for _, r := range receivers {
			_ = r.Close()
		}
	}()
	for i := 0; i < peers; i++ {
		r, rerr := gossip.ListenTCP("127.0.0.1:0")
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		r.SetHandler(ack)
		receivers = append(receivers, r)
		sender.AddPeer(r.Self())
	}

	// Warm-up establishes pooled connections (and pays first-dial costs
	// on both transports) outside the timed window.
	for i := 0; i < 3; i++ {
		if err := sender.Broadcast(ctx, msg); err != nil {
			return 0, 0, 0, err
		}
	}
	dialsBefore := sender.Metrics().Dials.Value()
	reusesBefore := sender.Metrics().Reuses.Value()
	start := time.Now()
	for i := 0; i < cfg.Broadcasts; i++ {
		if err := sender.Broadcast(ctx, msg); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(cfg.Broadcasts),
		sender.Metrics().Dials.Value() - dialsBefore,
		sender.Metrics().Reuses.Value() - reusesBefore,
		nil
}

// Render writes the fan-out scaling curve as an aligned table.
func (r *GossipBenchResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Gossip transport fan-out — %d broadcasts of %d×%dB per row, loopback TCP, %v receiver ack delay\n",
		r.Config.Broadcasts, r.Config.TxPerBatch, r.Config.TxBytes, r.Config.AckDelay); err != nil {
		return err
	}
	t := &table{header: []string{"peers", "one_shot_ns", "pooled_ns", "speedup", "one_shot_dials", "pooled_dials", "reuses"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Peers),
			fmt.Sprintf("%.0f", row.OneShotNs),
			fmt.Sprintf("%.0f", row.PooledNs),
			fmt.Sprintf("%.1fx", row.Speedup),
			fmt.Sprintf("%d", row.OneShotDials),
			fmt.Sprintf("%d", row.PooledDials),
			fmt.Sprintf("%d", row.Reuses),
		)
	}
	return t.render(w)
}

// CSV writes the curve as CSV.
func (r *GossipBenchResult) CSV(w io.Writer) error {
	t := &table{header: []string{"peers", "one_shot_ns", "pooled_ns", "speedup", "one_shot_dials", "pooled_dials", "reuses"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Peers),
			fmt.Sprintf("%.0f", row.OneShotNs),
			fmt.Sprintf("%.0f", row.PooledNs),
			fmt.Sprintf("%.2f", row.Speedup),
			fmt.Sprintf("%d", row.OneShotDials),
			fmt.Sprintf("%d", row.PooledDials),
			fmt.Sprintf("%d", row.Reuses))
	}
	return t.csv(w)
}

// JSON writes the curve as a machine-readable snapshot
// (BENCH_gossip.json in the Makefile's bench target).
func (r *GossipBenchResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
