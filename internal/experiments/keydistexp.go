package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/keydist"
)

// KeyDistConfig parameterizes the Fig-4 protocol experiment: correctness
// and cost of the three-message symmetric key distribution, plus its
// tamper- and replay-resistance (the properties §IV-C claims).
type KeyDistConfig struct {
	// Rounds of honest distribution to run and time.
	Rounds int
	// TamperTrials per message position (bit-flips that must all be
	// rejected).
	TamperTrials int
	// Freshness is the replay window used for the replay scenario.
	Freshness time.Duration
}

// DefaultKeyDistConfig returns the standard scenario sizes.
func DefaultKeyDistConfig() KeyDistConfig {
	return KeyDistConfig{Rounds: 20, TamperTrials: 10, Freshness: 5 * time.Second}
}

// KeyDistRow is one scenario's outcome.
type KeyDistRow struct {
	Case     string
	Attempts int
	// Completed counts successful distributions; for adversarial cases
	// it must be zero.
	Completed int
	Rejected  int
	MeanTime  time.Duration
	Pass      bool
}

// KeyDistResult is the protocol experiment outcome.
type KeyDistResult struct {
	Config KeyDistConfig
	Rows   []KeyDistRow
}

// runProtocol executes one full honest exchange, returning the elapsed
// time and whether both sides completed with the same key.
func runProtocol(manager, device *identity.KeyPair, opts ...keydist.Option) (time.Duration, error) {
	start := time.Now()
	ms, err := keydist.NewManagerSession(manager, device.Public(), opts...)
	if err != nil {
		return 0, err
	}
	ds := keydist.NewDeviceSession(device, manager.Public(), opts...)
	m1, err := ms.M1(device.BoxPublic())
	if err != nil {
		return 0, err
	}
	m2, err := ds.HandleM1(m1)
	if err != nil {
		return 0, err
	}
	m3, err := ms.HandleM2(m2)
	if err != nil {
		return 0, err
	}
	if err := ds.HandleM3(m3); err != nil {
		return 0, err
	}
	got, err := ds.Secret()
	if err != nil {
		return 0, err
	}
	if got != ms.Secret() {
		return 0, fmt.Errorf("key mismatch after completed protocol")
	}
	return time.Since(start), nil
}

// RunKeyDist executes the honest, tampered, and replayed scenarios.
func RunKeyDist(cfg KeyDistConfig) (*KeyDistResult, error) {
	if cfg.Rounds < 1 || cfg.TamperTrials < 1 || cfg.Freshness <= 0 {
		return nil, fmt.Errorf("keydist scenario sizes must be positive")
	}
	manager, err := identity.Generate()
	if err != nil {
		return nil, err
	}
	device, err := identity.Generate()
	if err != nil {
		return nil, err
	}
	res := &KeyDistResult{Config: cfg}

	// Honest rounds.
	honest := KeyDistRow{Case: "honest exchange", Attempts: cfg.Rounds}
	var total time.Duration
	for i := 0; i < cfg.Rounds; i++ {
		elapsed, err := runProtocol(manager, device)
		if err != nil {
			honest.Rejected++
			continue
		}
		honest.Completed++
		total += elapsed
	}
	if honest.Completed > 0 {
		honest.MeanTime = total / time.Duration(honest.Completed)
	}
	honest.Pass = honest.Completed == cfg.Rounds
	res.Rows = append(res.Rows, honest)

	// Tampered messages: flip one byte at varying positions in each of
	// M1, M2, M3; every tampered run must abort.
	for stage := 1; stage <= 3; stage++ {
		row := KeyDistRow{
			Case:     fmt.Sprintf("tampered M%d", stage),
			Attempts: cfg.TamperTrials,
		}
		for trial := 0; trial < cfg.TamperTrials; trial++ {
			completed, err := runTampered(manager, device, stage, trial)
			if err != nil {
				return nil, err
			}
			if completed {
				row.Completed++
			} else {
				row.Rejected++
			}
		}
		row.Pass = row.Completed == 0
		res.Rows = append(res.Rows, row)
	}

	// Replayed M1: a stale M1 (older than the freshness window) must be
	// rejected by the device.
	replay := KeyDistRow{Case: "replayed stale M1", Attempts: 1}
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0).UTC())
	ms, err := keydist.NewManagerSession(manager, device.Public(),
		keydist.WithClock(vc), keydist.WithFreshness(cfg.Freshness))
	if err != nil {
		return nil, err
	}
	m1, err := ms.M1(device.BoxPublic())
	if err != nil {
		return nil, err
	}
	vc.Advance(cfg.Freshness * 10) // the message sits in an attacker's buffer
	ds := keydist.NewDeviceSession(device, manager.Public(),
		keydist.WithClock(vc), keydist.WithFreshness(cfg.Freshness))
	if _, err := ds.HandleM1(m1); err != nil {
		replay.Rejected++
	} else {
		replay.Completed++
	}
	replay.Pass = replay.Rejected == 1
	res.Rows = append(res.Rows, replay)

	return res, nil
}

// runTampered runs the protocol flipping one byte of the given stage's
// message. It reports whether the protocol (incorrectly) completed.
func runTampered(manager, device *identity.KeyPair, stage, trial int) (bool, error) {
	ms, err := keydist.NewManagerSession(manager, device.Public())
	if err != nil {
		return false, err
	}
	ds := keydist.NewDeviceSession(device, manager.Public())
	flip := func(msg []byte) []byte {
		out := append([]byte(nil), msg...)
		pos := (trial * 13) % len(out)
		out[pos] ^= 0x40
		return out
	}
	m1, err := ms.M1(device.BoxPublic())
	if err != nil {
		return false, err
	}
	if stage == 1 {
		m1 = flip(m1)
	}
	m2, err := ds.HandleM1(m1)
	if err != nil {
		return false, nil // rejected, as required
	}
	if stage == 2 {
		m2 = flip(m2)
	}
	m3, err := ms.HandleM2(m2)
	if err != nil {
		return false, nil
	}
	if stage == 3 {
		m3 = flip(m3)
	}
	if err := ds.HandleM3(m3); err != nil {
		return false, nil
	}
	return true, nil
}

// Render writes the experiment as an aligned table.
func (r *KeyDistResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"Key distribution (Fig 4) — correctness, cost, tamper/replay resistance"); err != nil {
		return err
	}
	t := &table{header: []string{"case", "attempts", "completed", "rejected", "mean_time_s", "verdict"}}
	for _, row := range r.Rows {
		verdict := "PASS"
		if !row.Pass {
			verdict = "FAIL"
		}
		t.add(
			row.Case,
			fmt.Sprintf("%d", row.Attempts),
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%d", row.Rejected),
			fmt.Sprintf("%.6f", row.MeanTime.Seconds()),
			verdict,
		)
	}
	return t.render(w)
}

// CSV writes the experiment as CSV.
func (r *KeyDistResult) CSV(w io.Writer) error {
	t := &table{header: []string{"case", "attempts", "completed", "rejected", "mean_time_s", "pass"}}
	for _, row := range r.Rows {
		t.add(row.Case,
			fmt.Sprintf("%d", row.Attempts),
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%d", row.Rejected),
			fmt.Sprintf("%.6f", row.MeanTime.Seconds()),
			fmt.Sprintf("%t", row.Pass))
	}
	return t.csv(w)
}
