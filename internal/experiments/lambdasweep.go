package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/core"
)

// LambdaSweepConfig parameterizes the punishment-strictness ablation.
// The paper (§IV-B): "We can distribute the weight of these two parts by
// adjusting λ1 and λ2. If we want to adopt strict punishment strategy in
// the system, we can set λ2 larger." This sweep measures exactly that:
// how the honest-node speedup and the attacker's penalty move as λ2
// grows, holding everything else at the Fig-9 setting.
type LambdaSweepConfig struct {
	// Lambda2s are the λ2 values to sweep.
	Lambda2s []float64
	// Base is the Fig-9 configuration the sweep perturbs.
	Base Fig9Config
}

// DefaultLambdaSweepConfig sweeps λ2 over {0.25, 0.5, 1, 2} around the
// paper's 0.5.
func DefaultLambdaSweepConfig() LambdaSweepConfig {
	return LambdaSweepConfig{
		Lambda2s: []float64{0.25, 0.5, 1.0, 2.0},
		Base:     DefaultFig9Config(),
	}
}

// LambdaSweepRow is one λ2 setting's outcome.
type LambdaSweepRow struct {
	Lambda2 float64
	// HonestAvg and AttackerAvg are the Fig-9 "credit normal" and
	// "credit 1 attack" bars under this λ2.
	HonestAvg   time.Duration
	AttackerAvg time.Duration
	// PenaltyRatio = AttackerAvg / HonestAvg — the strictness the
	// paper's knob buys.
	PenaltyRatio float64
}

// LambdaSweepResult is the sweep outcome.
type LambdaSweepResult struct {
	Config LambdaSweepConfig
	Rows   []LambdaSweepRow
}

// RunLambdaSweep executes the ablation.
func RunLambdaSweep(cfg LambdaSweepConfig) (*LambdaSweepResult, error) {
	if len(cfg.Lambda2s) == 0 {
		return nil, fmt.Errorf("lambda sweep needs at least one λ2")
	}
	res := &LambdaSweepResult{Config: cfg}
	for _, l2 := range cfg.Lambda2s {
		if l2 <= 0 {
			return nil, fmt.Errorf("λ2 = %v must be positive", l2)
		}
		f9 := cfg.Base
		f9.Params.Lambda2 = l2
		// Rebuild the policy against the perturbed params so the
		// punishment weighting actually changes.
		f9.Policy = core.AdditivePolicy{Params: f9.Params, Beta: 10, Gamma: 3}
		out, err := RunFig9(f9)
		if err != nil {
			return nil, fmt.Errorf("λ2=%v: %w", l2, err)
		}
		honest := out.Rows[1].AvgPowTime
		attacker := out.Rows[2].AvgPowTime
		ratio := 0.0
		if honest > 0 {
			ratio = attacker.Seconds() / honest.Seconds()
		}
		res.Rows = append(res.Rows, LambdaSweepRow{
			Lambda2:      l2,
			HonestAvg:    honest,
			AttackerAvg:  attacker,
			PenaltyRatio: ratio,
		})
	}
	return res, nil
}

// Render writes the sweep as an aligned table.
func (r *LambdaSweepResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"λ2 sweep — punishment strictness (Fig-9 harness, 1-attack scenario)"); err != nil {
		return err
	}
	t := &table{header: []string{"lambda2", "honest_avg_s", "attacker_avg_s", "penalty_ratio"}}
	for _, row := range r.Rows {
		t.add(
			ffloat(row.Lambda2),
			fsec(row.HonestAvg),
			fsec(row.AttackerAvg),
			fmt.Sprintf("%.1f", row.PenaltyRatio),
		)
	}
	return t.render(w)
}

// CSV writes the sweep as CSV.
func (r *LambdaSweepResult) CSV(w io.Writer) error {
	t := &table{header: []string{"lambda2", "honest_avg_s", "attacker_avg_s", "penalty_ratio"}}
	for _, row := range r.Rows {
		t.add(ffloat(row.Lambda2), fsec(row.HonestAvg), fsec(row.AttackerAvg),
			fmt.Sprintf("%.2f", row.PenaltyRatio))
	}
	return t.csv(w)
}
