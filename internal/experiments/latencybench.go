package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/loadgen"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/pow"
)

// LatencyBenchConfig parameterizes the open-loop admission-latency
// sweep: devices submit sensor readings to a gateway at a sequence of
// FIXED offered rates while passive relay peers absorb the gossip
// fan-out, and every latency is measured from the transaction's
// *scheduled* send instant (see internal/loadgen for why closed-loop
// generators understate tail latency — coordinated omission). Each rate
// runs twice: once on the batched-verification inbound path and once
// with DisableBatchVerify as the per-transaction baseline, so the
// speedup column isolates what shared-ladder VerifyBatch buys the relay
// under identical offered load.
type LatencyBenchConfig struct {
	// Rates lists the offered loads (tx/s) to sweep.
	Rates []float64
	// TxPerRate is how many transactions each rate level issues.
	TxPerRate int
	// Devices is the pool of distinct submitting accounts; submissions
	// round-robin across them.
	Devices int
	// PayloadBytes sizes each sensor reading.
	PayloadBytes int
	// Difficulty is the static PoW difficulty — kept low so the sweep
	// stresses the admission and relay-verification path, not mining.
	Difficulty int
	// RelayPeers is the number of passive full nodes receiving the
	// fan-out; end-to-end confirmation means ALL of them hold the
	// transaction.
	RelayPeers int
	// MaxInFlight bounds concurrently open submissions (loadgen slots).
	MaxInFlight int
	// NetLatency is the in-memory bus's per-delivery delay. It models a
	// real link, and it is also what gives the broadcaster's coalescing
	// something to coalesce: with zero-latency delivery every datagram
	// carries one transaction and the batched-verification path never
	// sees a batch, which no deployed network resembles.
	NetLatency time.Duration
	// ConfirmTimeout caps one transaction's wait for relay confirmation;
	// expiry records the sample as failed, it is never dropped.
	ConfirmTimeout time.Duration
	// CompareBaseline also measures every rate with DisableBatchVerify
	// and fills the speedup columns.
	CompareBaseline bool
}

// DefaultLatencyBenchConfig sweeps three offered rates spanning idle to
// busy, the scale BENCH_latency.json is pinned at.
func DefaultLatencyBenchConfig() LatencyBenchConfig {
	return LatencyBenchConfig{
		Rates:           []float64{100, 400, 1600},
		TxPerRate:       600,
		Devices:         32,
		PayloadBytes:    64,
		Difficulty:      8,
		RelayPeers:      2,
		MaxInFlight:     256,
		NetLatency:      5 * time.Millisecond,
		ConfirmTimeout:  10 * time.Second,
		CompareBaseline: true,
	}
}

// QuickLatencyBenchConfig is a CI-friendly reduction: one small rate,
// few transactions, still exercising both verification modes.
func QuickLatencyBenchConfig() LatencyBenchConfig {
	return LatencyBenchConfig{
		Rates:           []float64{400},
		TxPerRate:       80,
		Devices:         8,
		PayloadBytes:    48,
		Difficulty:      6,
		RelayPeers:      1,
		MaxInFlight:     64,
		NetLatency:      5 * time.Millisecond,
		ConfirmTimeout:  5 * time.Second,
		CompareBaseline: true,
	}
}

// LatencyRow is one (offered rate, verification mode) measurement.
type LatencyRow struct {
	// OfferedTPS is the configured arrival rate; AchievedTPS is
	// confirmed completions per second of elapsed run time.
	OfferedTPS  float64 `json:"offered_tps"`
	Mode        string  `json:"mode"` // "batched" or "per-tx"
	AchievedTPS float64 `json:"achieved_tps"`
	Submitted   int     `json:"submitted"`
	Failed      int     `json:"failed"`

	// Admission latency: scheduled send instant → gateway accepted
	// (mining + admit pipeline; open-loop, so generator slip counts).
	AdmitP50  time.Duration `json:"admit_p50_ns"`
	AdmitP99  time.Duration `json:"admit_p99_ns"`
	AdmitP999 time.Duration `json:"admit_p999_ns"`

	// End-to-end latency: scheduled send instant → every relay peer
	// holds the transaction.
	E2EP50  time.Duration `json:"e2e_p50_ns"`
	E2EP99  time.Duration `json:"e2e_p99_ns"`
	E2EP999 time.Duration `json:"e2e_p999_ns"`

	// VerifyNsPerTx is the relay peers' inbound signature-settlement
	// cost per transaction (histogram total / transactions settled).
	VerifyNsPerTx float64 `json:"verify_ns_per_tx"`
	// MeanVerifyBatch is signatures per VerifyBatch call on the relays
	// (0 in per-tx mode; 1.0 means gossip delivered no coalesced
	// batches and batching had nothing to work with).
	MeanVerifyBatch float64 `json:"mean_verify_batch"`
	// VerifySpeedup (batched rows only, when CompareBaseline) is the
	// per-tx baseline's VerifyNsPerTx over this row's.
	VerifySpeedup float64 `json:"verify_speedup,omitempty"`
	// E2EP99Speedup (batched rows only) is baseline E2E p99 / batched
	// E2E p99 at the same offered rate.
	E2EP99Speedup float64 `json:"e2e_p99_speedup,omitempty"`
}

// LatencyBenchResult is the sweep.
type LatencyBenchResult struct {
	Config LatencyBenchConfig `json:"config"`
	Rows   []LatencyRow       `json:"rows"`
}

// RunLatencyBench executes the sweep. Each (rate, mode) level stands up
// a fresh gateway + relay cluster on an in-memory bus so per-level
// metrics and ledgers never bleed into each other.
func RunLatencyBench(ctx context.Context, cfg LatencyBenchConfig) (*LatencyBenchResult, error) {
	if len(cfg.Rates) == 0 || cfg.TxPerRate < 1 || cfg.Devices < 1 || cfg.RelayPeers < 1 {
		return nil, fmt.Errorf("latency bench workload too small")
	}
	if cfg.ConfirmTimeout <= 0 {
		cfg.ConfirmTimeout = 10 * time.Second
	}
	res := &LatencyBenchResult{Config: cfg}
	for _, rate := range cfg.Rates {
		batched, err := runLatencyLevel(ctx, cfg, rate, false)
		if err != nil {
			return nil, fmt.Errorf("rate=%.0f batched: %w", rate, err)
		}
		if cfg.CompareBaseline {
			baseline, err := runLatencyLevel(ctx, cfg, rate, true)
			if err != nil {
				return nil, fmt.Errorf("rate=%.0f per-tx: %w", rate, err)
			}
			if batched.VerifyNsPerTx > 0 {
				batched.VerifySpeedup = baseline.VerifyNsPerTx / batched.VerifyNsPerTx
			}
			if batched.E2EP99 > 0 {
				batched.E2EP99Speedup = float64(baseline.E2EP99) / float64(batched.E2EP99)
			}
			res.Rows = append(res.Rows, batched, baseline)
			continue
		}
		res.Rows = append(res.Rows, batched)
	}
	return res, nil
}

// latencyCluster is one level's freshly built network.
type latencyCluster struct {
	bus     *gossip.Bus
	gateway *node.FullNode
	relays  []*node.FullNode
	devices []*node.LightNode
	devMu   []sync.Mutex // LightNode submit is not self-synchronizing
}

func (c *latencyCluster) close() {
	for _, r := range c.relays {
		_ = r.Close()
	}
	if c.gateway != nil {
		_ = c.gateway.Close()
	}
	if c.bus != nil {
		_ = c.bus.Close()
	}
}

func buildLatencyCluster(ctx context.Context, cfg LatencyBenchConfig, disableBatch bool) (*latencyCluster, error) {
	c := &latencyCluster{bus: gossip.NewBus()}
	c.bus.SetLatency(cfg.NetLatency)
	managerKey, err := identity.Generate()
	if err != nil {
		return c, err
	}
	params := core.DefaultParams()
	params.InitialDifficulty = cfg.Difficulty
	params.MinDifficulty = 1
	params.MaxDifficulty = pow.MaxDifficulty

	mgrNet, err := c.bus.Join("gateway")
	if err != nil {
		return c, err
	}
	c.gateway, err = node.NewFull(node.FullConfig{
		Key:                managerKey,
		Role:               identity.RoleManager,
		ManagerPub:         managerKey.Public(),
		Credit:             params,
		Policy:             core.StaticPolicy{Difficulty: cfg.Difficulty},
		Network:            mgrNet,
		DisableBatchVerify: disableBatch,
	})
	if err != nil {
		return c, err
	}
	mgr, err := node.NewManager(c.gateway)
	if err != nil {
		return c, err
	}

	for i := 0; i < cfg.RelayPeers; i++ {
		relayKey, err := identity.Generate()
		if err != nil {
			return c, err
		}
		relayNet, err := c.bus.Join(fmt.Sprintf("relay-%d", i))
		if err != nil {
			return c, err
		}
		relay, err := node.NewFull(node.FullConfig{
			Key:                relayKey,
			Role:               identity.RoleGateway,
			ManagerPub:         managerKey.Public(),
			Credit:             params,
			Policy:             core.StaticPolicy{Difficulty: cfg.Difficulty},
			Network:            relayNet,
			DisableBatchVerify: disableBatch,
		})
		if err != nil {
			return c, err
		}
		c.relays = append(c.relays, relay)
	}

	c.devices = make([]*node.LightNode, cfg.Devices)
	c.devMu = make([]sync.Mutex, cfg.Devices)
	for i := range c.devices {
		key, err := identity.Generate()
		if err != nil {
			return c, err
		}
		mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
		c.devices[i], err = node.NewLight(node.LightConfig{Key: key, Gateway: c.gateway})
		if err != nil {
			return c, err
		}
	}
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		return c, err
	}
	return c, nil
}

func runLatencyLevel(ctx context.Context, cfg LatencyBenchConfig, rate float64, disableBatch bool) (LatencyRow, error) {
	cluster, err := buildLatencyCluster(ctx, cfg, disableBatch)
	defer cluster.close()
	if err != nil {
		return LatencyRow{}, err
	}

	payload := make([]byte, cfg.PayloadBytes)
	admitLat := make([]time.Duration, cfg.TxPerRate)
	admitOK := make([]bool, cfg.TxPerRate)

	op := func(i int, scheduled time.Time) error {
		d := i % len(cluster.devices)
		cluster.devMu[d].Lock()
		sub, err := cluster.devices[d].PostReading(ctx, payload)
		cluster.devMu[d].Unlock()
		if err != nil {
			return err
		}
		admitLat[i] = time.Since(scheduled)
		admitOK[i] = true
		// Confirmation: every relay holds the transaction. Polling at a
		// fraction of the gossip latency keeps the added error small
		// relative to the millisecond-scale quantities reported.
		deadline := time.Now().Add(cfg.ConfirmTimeout)
		for _, relay := range cluster.relays {
			for !relay.Tangle().Contains(sub.Info.ID) {
				if time.Now().After(deadline) {
					return fmt.Errorf("confirmation timeout at rate %.0f", rate)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
		return nil
	}

	genRes, err := loadgen.Run(ctx, loadgen.Config{
		Rate:        rate,
		Count:       cfg.TxPerRate,
		MaxInFlight: cfg.MaxInFlight,
	}, op)
	if err != nil {
		return LatencyRow{}, err
	}
	if err := cluster.gateway.FlushBroadcast(ctx); err != nil {
		return LatencyRow{}, err
	}

	admits := make([]time.Duration, 0, len(admitLat))
	for i, ok := range admitOK {
		if ok {
			admits = append(admits, admitLat[i])
		}
	}
	admitSum := loadgen.Summarize(admits)
	e2eSum := loadgen.Summarize(genRes.Latencies())

	// Relay-side verification cost. Each VerifyBatch call observes one
	// VerifyLatency sample covering BatchVerified/BatchVerifies
	// signatures; per-transaction verifies observe one sample each, so
	// settled = batched signatures + (samples − batch calls).
	var verifyTotal time.Duration
	var settled, batchCalls, batchSigs int64
	for _, relay := range cluster.relays {
		p := relay.Pipeline()
		s := p.VerifyLatency.Summarize()
		verifyTotal += s.Total
		settled += p.BatchVerified.Value() + int64(s.Count) - p.BatchVerifies.Value()
		batchCalls += p.BatchVerifies.Value()
		batchSigs += p.BatchVerified.Value()
	}
	row := LatencyRow{
		OfferedTPS:  rate,
		Mode:        "batched",
		AchievedTPS: genRes.AchievedRate(),
		Submitted:   len(genRes.Samples),
		Failed:      genRes.Failed,
		AdmitP50:    admitSum.P50,
		AdmitP99:    admitSum.P99,
		AdmitP999:   admitSum.P999,
		E2EP50:      e2eSum.P50,
		E2EP99:      e2eSum.P99,
		E2EP999:     e2eSum.P999,
	}
	if disableBatch {
		row.Mode = "per-tx"
	}
	if settled > 0 {
		row.VerifyNsPerTx = float64(verifyTotal.Nanoseconds()) / float64(settled)
	}
	if batchCalls > 0 {
		row.MeanVerifyBatch = float64(batchSigs) / float64(batchCalls)
	}
	return row, nil
}

// Render writes the sweep as an aligned table.
func (r *LatencyBenchResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Open-loop admission latency — %d txs/rate from %d devices, %d relay peer(s), difficulty %d\n"+
			"latencies measured from each transaction's SCHEDULED send (coordinated-omission-safe)\n",
		r.Config.TxPerRate, r.Config.Devices, r.Config.RelayPeers, r.Config.Difficulty); err != nil {
		return err
	}
	t := &table{header: []string{"offered_tps", "mode", "achieved_tps", "failed",
		"admit_p50", "admit_p99", "admit_p999", "e2e_p50", "e2e_p99", "e2e_p999",
		"verify_ns/tx", "mean_batch", "verify_speedup"}}
	for _, row := range r.Rows {
		speedup := ""
		if row.VerifySpeedup > 0 {
			speedup = fmt.Sprintf("%.2fx", row.VerifySpeedup)
		}
		t.add(
			fmt.Sprintf("%.0f", row.OfferedTPS),
			row.Mode,
			fmt.Sprintf("%.1f", row.AchievedTPS),
			fmt.Sprintf("%d", row.Failed),
			fsec(row.AdmitP50),
			fsec(row.AdmitP99),
			fsec(row.AdmitP999),
			fsec(row.E2EP50),
			fsec(row.E2EP99),
			fsec(row.E2EP999),
			fmt.Sprintf("%.0f", row.VerifyNsPerTx),
			fmt.Sprintf("%.1f", row.MeanVerifyBatch),
			speedup,
		)
	}
	return t.render(w)
}

// CSV writes the sweep as CSV.
func (r *LatencyBenchResult) CSV(w io.Writer) error {
	t := &table{header: []string{"offered_tps", "mode", "achieved_tps", "submitted", "failed",
		"admit_p50_s", "admit_p99_s", "admit_p999_s", "e2e_p50_s", "e2e_p99_s", "e2e_p999_s",
		"verify_ns_per_tx", "mean_verify_batch", "verify_speedup", "e2e_p99_speedup"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%.0f", row.OfferedTPS),
			row.Mode,
			fmt.Sprintf("%.2f", row.AchievedTPS),
			fmt.Sprintf("%d", row.Submitted),
			fmt.Sprintf("%d", row.Failed),
			fsec(row.AdmitP50),
			fsec(row.AdmitP99),
			fsec(row.AdmitP999),
			fsec(row.E2EP50),
			fsec(row.E2EP99),
			fsec(row.E2EP999),
			fmt.Sprintf("%.0f", row.VerifyNsPerTx),
			fmt.Sprintf("%.2f", row.MeanVerifyBatch),
			fmt.Sprintf("%.3f", row.VerifySpeedup),
			fmt.Sprintf("%.3f", row.E2EP99Speedup))
	}
	return t.csv(w)
}

// JSON writes the sweep as a machine-readable snapshot
// (BENCH_latency.json in the Makefile's bench target).
func (r *LatencyBenchResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
