package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// LazyResistConfig parameterizes the tip-selection ablation against the
// paper's §III lazy-tips inflation attack: "a malicious entity can
// artificially inflate the number of tips by issuing many transactions
// that verify a fixed pair of transactions. This would make it possible
// for future transactions to select these tips with very high
// probability, abandoning the tips belonging to honest nodes."
//
// The experiment builds an honest frontier, injects LazyTips
// transactions all approving one ancient pair, and measures — for each
// tip-selection strategy — the probability that an honest device's next
// parent lands on an attacker tip.
type LazyResistConfig struct {
	// HonestTxs is the honest traffic volume before and after the
	// inflation (split evenly).
	HonestTxs int
	// LazyTips is the number of inflated tips the attacker creates.
	LazyTips int
	// Selections is the number of tip selections sampled per strategy.
	Selections int
}

// DefaultLazyResistConfig matches a small factory under a determined
// attacker: 200 honest transactions, 50 inflated tips.
func DefaultLazyResistConfig() LazyResistConfig {
	return LazyResistConfig{HonestTxs: 200, LazyTips: 50, Selections: 400}
}

// LazyResistRow is one strategy's measurement.
type LazyResistRow struct {
	Strategy tangle.TipStrategy
	// AttackerFrac is the fraction of sampled parents that were
	// attacker tips — the attack's success probability.
	AttackerFrac float64
	// TipShare is the attacker's share of the tip pool (the naive
	// expectation for uniform selection).
	TipShare float64
}

// LazyResistResult is the ablation outcome.
type LazyResistResult struct {
	Config LazyResistConfig
	Rows   []LazyResistRow
}

// RunLazyResist executes the ablation. Both strategies sample the same
// tangle state, so rows are directly comparable.
func RunLazyResist(cfg LazyResistConfig) (*LazyResistResult, error) {
	if cfg.HonestTxs < 10 || cfg.LazyTips < 1 || cfg.Selections < 1 {
		return nil, fmt.Errorf("lazy-resist workload too small")
	}
	key, err := identity.Generate()
	if err != nil {
		return nil, err
	}
	attacker, err := identity.Generate()
	if err != nil {
		return nil, err
	}
	// Production-ish confirmation: the honest chain keeps confirming,
	// so the walk's anchor set tracks the honest frontier. The lazy
	// attack pins an ancient pair far behind that frontier — anchored
	// walks never even visit it, making the measured resistance
	// structural (the walk starts past the attack) on top of the
	// weight bias (the walk is unlikely to step into light branches).
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	tcfg := tangle.DefaultConfig()
	tg, err := tangle.New(tcfg, key.Public(), vc)
	if err != nil {
		return nil, err
	}

	attach := func(issuer *identity.KeyPair, trunk, branch hashutil.Hash, tag string) (tangle.Info, error) {
		tx := &txn.Transaction{
			Trunk:     trunk,
			Branch:    branch,
			Timestamp: vc.Now(),
			Kind:      txn.KindData,
			Payload:   []byte(tag),
		}
		tx.Sign(issuer)
		return tg.Attach(tx)
	}

	// Phase 1: honest chain traffic; remember an early pair for the
	// attacker to pin.
	var pinTrunk, pinBranch hashutil.Hash
	last := tg.Genesis()[0]
	for i := 0; i < cfg.HonestTxs/2; i++ {
		vc.Advance(2 * time.Second)
		info, err := attach(key, last, last, fmt.Sprintf("honest-a-%d", i))
		if err != nil {
			return nil, err
		}
		if i == 2 {
			pinTrunk, pinBranch = last, last
		}
		last = info.ID
	}

	// Phase 2: the attacker inflates the tip pool against the pinned
	// ancient pair.
	attackerTips := make(map[hashutil.Hash]bool, cfg.LazyTips)
	for i := 0; i < cfg.LazyTips; i++ {
		info, err := attach(attacker, pinTrunk, pinBranch, fmt.Sprintf("lazy-%d", i))
		if err != nil {
			return nil, err
		}
		attackerTips[info.ID] = true
	}

	// Phase 3: more honest traffic keeps the legitimate frontier alive
	// (honest devices approve tips, which now are mostly attacker spam
	// under uniform selection — so extend the honest chain directly, as
	// a device with a weighted-walk gateway would).
	for i := 0; i < cfg.HonestTxs/2; i++ {
		vc.Advance(2 * time.Second)
		info, err := attach(key, last, last, fmt.Sprintf("honest-b-%d", i))
		if err != nil {
			return nil, err
		}
		last = info.ID
	}

	tips := tg.Tips()
	attackerInPool := 0
	for _, id := range tips {
		if attackerTips[id] {
			attackerInPool++
		}
	}
	tipShare := float64(attackerInPool) / float64(len(tips))

	res := &LazyResistResult{Config: cfg}
	for _, strategy := range []tangle.TipStrategy{tangle.StrategyUniform, tangle.StrategyWeightedWalk} {
		hits := 0
		for i := 0; i < cfg.Selections; i++ {
			trunk, branch, err := tg.SelectTips(strategy)
			if err != nil {
				return nil, err
			}
			if attackerTips[trunk] {
				hits++
			}
			if attackerTips[branch] {
				hits++
			}
		}
		res.Rows = append(res.Rows, LazyResistRow{
			Strategy:     strategy,
			AttackerFrac: float64(hits) / float64(2*cfg.Selections),
			TipShare:     tipShare,
		})
	}
	return res, nil
}

// Render writes the ablation as an aligned table.
func (r *LazyResistResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Lazy-tip inflation resistance — %d attacker tips vs %d honest txs, %d selections\n",
		r.Config.LazyTips, r.Config.HonestTxs, r.Config.Selections); err != nil {
		return err
	}
	t := &table{header: []string{"strategy", "attacker_tip_share", "attacker_selected_frac"}}
	for _, row := range r.Rows {
		t.add(
			row.Strategy.String(),
			fmt.Sprintf("%.2f", row.TipShare),
			fmt.Sprintf("%.3f", row.AttackerFrac),
		)
	}
	return t.render(w)
}

// CSV writes the ablation as CSV.
func (r *LazyResistResult) CSV(w io.Writer) error {
	t := &table{header: []string{"strategy", "attacker_tip_share", "attacker_selected_frac"}}
	for _, row := range r.Rows {
		t.add(row.Strategy.String(),
			fmt.Sprintf("%.3f", row.TipShare),
			fmt.Sprintf("%.3f", row.AttackerFrac))
	}
	return t.csv(w)
}
