package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/store"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// MemBenchConfig parameterizes the memory-footprint benchmark. Section
// A ages a tangle through many multiples of the keep window under
// continuous traffic — once with epoch snapshots + a cold index, once
// without — and samples resident vertices and post-GC heap at each
// lifetime checkpoint: the pruned curve must plateau while the unpruned
// one grows linearly with history. Section B ages a small deployment,
// compacts the serving gateway, and times a fresh gateway's
// snapshot-shipped join against full paged replay from an unpruned
// peer, verifying the two joins converge on the same live region and
// the same per-device difficulty.
type MemBenchConfig struct {
	// Keep is the history window a pruning node retains.
	Keep time.Duration
	// Step is the virtual time between consecutive transactions, so
	// Keep/Step transactions span one keep window.
	Step time.Duration
	// Checkpoints lists the lifetime multiples (units of the keep
	// window) at which memory is sampled; the run lasts to the largest.
	Checkpoints []int

	// JoinDevices and JoinRounds size the Section-B deployment: devices
	// each post one reading per round, rounds are JoinStep apart.
	JoinDevices int
	JoinRounds  int
	// JoinStep is the virtual time between Section-B rounds.
	JoinStep time.Duration
	// JoinKeep is the serving gateway's keep window.
	JoinKeep time.Duration
	// Difficulty is the PoW difficulty devices solve in Section B.
	Difficulty int

	// Seed drives the in-memory disk under the cold index.
	Seed int64
}

// DefaultMemBenchConfig is the acceptance-snapshot scale
// (BENCH_mem.json): steady state to 25× the keep window, a join over
// ~30× more history than frontier.
func DefaultMemBenchConfig() MemBenchConfig {
	return MemBenchConfig{
		Keep:        5 * time.Minute,
		Step:        time.Second,
		Checkpoints: []int{1, 5, 10, 20, 25},
		JoinDevices: 6,
		JoinRounds:  300,
		JoinStep:    time.Minute,
		JoinKeep:    5 * time.Minute,
		Difficulty:  4,
		Seed:        0x4D454D,
	}
}

// QuickMemBenchConfig is a CI-friendly reduction (smaller history, no
// headline ratios to honor).
func QuickMemBenchConfig() MemBenchConfig {
	return MemBenchConfig{
		Keep:        time.Minute,
		Step:        time.Second,
		Checkpoints: []int{1, 5, 10, 20},
		JoinDevices: 3,
		JoinRounds:  40,
		JoinStep:    time.Minute,
		JoinKeep:    5 * time.Minute,
		Difficulty:  4,
		Seed:        0x4D454D,
	}
}

// MemSample is one steady-state checkpoint.
type MemSample struct {
	// Multiple is the lifetime in keep windows.
	Multiple int `json:"multiple"`
	// History is the total transactions attached so far.
	History int `json:"history"`
	// Resident is the tangle's live vertex count.
	Resident int `json:"resident_vertices"`
	// Boundary is the boundary-root set size (pruned mode only).
	Boundary int `json:"boundary_roots"`
	// Cold is the distinct pruned-transaction count.
	Cold int `json:"cold_total"`
	// ColdIndexBytes is the on-disk cold-index footprint. The bench
	// disk is in-memory, so these bytes show up in HeapBytes too; on a
	// real node they live on disk.
	ColdIndexBytes int64 `json:"cold_index_bytes"`
	// HeapBytes is post-GC runtime heap in use.
	HeapBytes uint64 `json:"heap_inuse_bytes"`
}

// MemSteadySummary is the Section-A headline: growth from the first
// checkpoint to the last, per mode.
type MemSteadySummary struct {
	// PrunedResidentGrowth is last/first resident vertices with
	// pruning — the flat line (≈1).
	PrunedResidentGrowth float64 `json:"pruned_resident_growth"`
	// UnprunedResidentGrowth is the same ratio without pruning — grows
	// with the checkpoint span.
	UnprunedResidentGrowth float64 `json:"unpruned_resident_growth"`
	// PrunedHeapGrowth is last/first post-GC heap with pruning, cold
	// index bytes excluded (they are disk on a real node).
	PrunedHeapGrowth float64 `json:"pruned_heap_growth"`
	// UnprunedHeapGrowth is the same ratio without pruning.
	UnprunedHeapGrowth float64 `json:"unpruned_heap_growth"`
}

// MemJoin is the Section-B comparison.
type MemJoin struct {
	// HistoryTx is the unpruned peer's total history; LiveTx is the
	// pruned gateway's live region — the snapshot join's working set.
	HistoryTx int `json:"history_tx"`
	LiveTx    int `json:"live_tx"`
	// BoundaryRoots and CreditSeeded describe the shipped manifest.
	BoundaryRoots int `json:"boundary_roots"`
	CreditSeeded  int `json:"credit_seeded"`
	// SnapshotMs and ReplayMs are wall-clock join times; Speedup is
	// replay over snapshot.
	SnapshotMs float64 `json:"snapshot_ms"`
	ReplayMs   float64 `json:"replay_ms"`
	Speedup    float64 `json:"speedup"`
	// Identical: the snapshot joiner's live region is byte-identical
	// to the serving gateway's.
	Identical bool `json:"identical"`
	// CreditParity: the joiner's incremental credit matches a full
	// rescan for every known account.
	CreditParity bool `json:"credit_parity"`
	// DifficultyAgree: serving peer, snapshot joiner, and replay
	// joiner derive the same difficulty for every device.
	DifficultyAgree bool `json:"difficulty_agree"`
}

// MemBenchResult is the full memory-footprint comparison.
type MemBenchResult struct {
	Config   MemBenchConfig   `json:"config"`
	Pruned   []MemSample      `json:"pruned"`
	Unpruned []MemSample      `json:"unpruned"`
	Summary  MemSteadySummary `json:"summary"`
	Join     MemJoin          `json:"join"`
}

// runMemSteady ages one tangle to the last checkpoint, sampling at each.
// A linear chain under epoch snapshots is the worst case for the
// boundary set staying O(frontier): every window has exactly one root.
func runMemSteady(ctx context.Context, cfg MemBenchConfig, pruned bool) ([]MemSample, error) {
	key, err := identity.Generate()
	if err != nil {
		return nil, err
	}
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	tcfg := tangle.DefaultConfig()
	tcfg.ConfirmationWeight = 3
	tg, err := tangle.New(tcfg, key.Public(), vc)
	if err != nil {
		return nil, err
	}
	var cold *store.ColdIndex
	if pruned {
		fs := chaos.NewMemFS(cfg.Seed)
		cold, err = store.OpenColdIndex(fs, "membench.cold")
		if err != nil {
			return nil, err
		}
		defer cold.Close()
		if err := tg.SetColdStore(cold); err != nil {
			return nil, err
		}
	}

	perWindow := int(cfg.Keep / cfg.Step)
	if perWindow < 1 {
		return nil, fmt.Errorf("keep %v shorter than step %v", cfg.Keep, cfg.Step)
	}
	sample := func(multiple, history int) MemSample {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s := MemSample{
			Multiple:  multiple,
			History:   history,
			Resident:  tg.Size(),
			Boundary:  tg.BoundaryCount(),
			Cold:      tg.SnapshottedCount(),
			HeapBytes: ms.HeapInuse,
		}
		if cold != nil {
			s.ColdIndexBytes = cold.Bytes()
		}
		return s
	}

	var out []MemSample
	last := tg.Genesis()[0]
	history := 0
	next := 0
	for window := 1; window <= cfg.Checkpoints[len(cfg.Checkpoints)-1]; window++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < perWindow; i++ {
			vc.Advance(cfg.Step)
			tx := &txn.Transaction{
				Trunk:     last,
				Branch:    last,
				Timestamp: vc.Now(),
				Kind:      txn.KindData,
				Issuer:    key.Public(),
				Payload:   []byte(fmt.Sprintf("mem-%d", history)),
			}
			info, err := tg.Attach(tx)
			if err != nil {
				return nil, fmt.Errorf("attach %d: %w", history, err)
			}
			last = info.ID
			history++
		}
		if pruned {
			tg.SnapshotEpoch(vc.Now(), cfg.Keep, cfg.Keep)
		}
		if next < len(cfg.Checkpoints) && window == cfg.Checkpoints[next] {
			out = append(out, sample(window, history))
			next++
		}
	}
	return out, nil
}

// memJoinCluster is the Section-B deployment: an unpruned manager (the
// full-replay peer), a pruning gateway (the snapshot peer), and devices
// posting through the gateway. Everything shares one virtual clock so
// credit derivation is identical on every node.
type memJoinCluster struct {
	bus     *gossip.Bus
	clk     *clock.Virtual
	params  core.Params
	mgrKey  *identity.KeyPair
	mgr     *node.Manager
	gateway *node.FullNode
	devices []*node.LightNode
}

func (c *memJoinCluster) close() {
	if c.gateway != nil {
		c.gateway.Close()
	}
	if c.mgr != nil {
		c.mgr.Node().Close()
	}
	if c.bus != nil {
		c.bus.Close()
	}
}

func (c *memJoinCluster) join(name string) (*node.FullNode, error) {
	key, err := identity.Generate()
	if err != nil {
		return nil, err
	}
	net, err := c.bus.Join(name)
	if err != nil {
		return nil, err
	}
	return node.NewFull(node.FullConfig{
		Key:        key,
		Role:       identity.RoleGateway,
		ManagerPub: c.mgrKey.Public(),
		Credit:     c.params,
		Clock:      c.clk,
		Network:    net,
	})
}

func buildMemJoinCluster(ctx context.Context, cfg MemBenchConfig) (*memJoinCluster, error) {
	c := &memJoinCluster{
		bus: gossip.NewBus(),
		clk: clock.NewVirtual(time.Unix(1_700_000_000, 0)),
	}
	c.params = core.DefaultParams()
	c.params.InitialDifficulty = cfg.Difficulty
	c.params.MinDifficulty = 1
	c.params.MaxDifficulty = cfg.Difficulty + 6

	var err error
	if c.mgrKey, err = identity.Generate(); err != nil {
		return nil, err
	}
	mgrNet, err := c.bus.Join("manager")
	if err != nil {
		return nil, err
	}
	full, err := node.NewFull(node.FullConfig{
		Key:        c.mgrKey,
		Role:       identity.RoleManager,
		ManagerPub: c.mgrKey.Public(),
		Credit:     c.params,
		Clock:      c.clk,
		Network:    mgrNet,
	})
	if err != nil {
		return nil, err
	}
	if c.mgr, err = node.NewManager(full); err != nil {
		full.Close()
		return nil, err
	}
	if c.gateway, err = c.join("gw-0"); err != nil {
		return nil, err
	}

	for i := 0; i < cfg.JoinDevices; i++ {
		key, err := identity.Generate()
		if err != nil {
			return nil, err
		}
		device, err := node.NewLight(node.LightConfig{
			Key:     key,
			Gateway: c.gateway,
			Clock:   c.clk,
		})
		if err != nil {
			return nil, err
		}
		c.devices = append(c.devices, device)
		c.mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
	}
	if _, err := c.mgr.PublishAuthorization(ctx); err != nil {
		return nil, err
	}
	if err := c.gateway.FlushBroadcast(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

func runMemJoin(ctx context.Context, cfg MemBenchConfig) (MemJoin, error) {
	c, err := buildMemJoinCluster(ctx, cfg)
	if err != nil {
		if c != nil {
			c.close()
		}
		return MemJoin{}, err
	}
	defer c.close()

	// Age the deployment well past the keep window.
	for r := 0; r < cfg.JoinRounds; r++ {
		if err := ctx.Err(); err != nil {
			return MemJoin{}, err
		}
		c.clk.Advance(cfg.JoinStep)
		for i, device := range c.devices {
			if _, err := device.PostReading(ctx, []byte(fmt.Sprintf("r%d-d%d", r, i))); err != nil {
				return MemJoin{}, fmt.Errorf("round %d device %d: %w", r, i, err)
			}
		}
		if err := c.gateway.FlushBroadcast(ctx); err != nil {
			return MemJoin{}, err
		}
	}
	c.mgr.Node().SyncAll(ctx)
	mgrFull := c.mgr.Node()
	if got, want := mgrFull.Tangle().Size(), c.gateway.Tangle().Size(); got != want {
		return MemJoin{}, fmt.Errorf("peers did not converge before the cut: manager %d, gateway %d", got, want)
	}

	join := MemJoin{HistoryTx: mgrFull.Tangle().Size()}
	if dropped, _ := c.gateway.Compact(cfg.JoinKeep); dropped == 0 {
		return MemJoin{}, fmt.Errorf("gateway compacted nothing over %d rounds", cfg.JoinRounds)
	}
	join.LiveTx = c.gateway.Tangle().Size()

	// Snapshot-shipped join from the pruned gateway.
	snap, err := c.join("joiner-snap")
	if err != nil {
		return MemJoin{}, err
	}
	defer snap.Close()
	start := time.Now()
	snapStats, err := snap.BootstrapFrom(ctx, "gw-0")
	if err != nil {
		return MemJoin{}, fmt.Errorf("snapshot join: %w", err)
	}
	join.SnapshotMs = float64(time.Since(start).Microseconds()) / 1e3
	if snapStats.Mode != "snapshot" {
		return MemJoin{}, fmt.Errorf("snapshot join ran in %q mode", snapStats.Mode)
	}
	join.BoundaryRoots = snapStats.Boundary
	join.CreditSeeded = snapStats.CreditSeeded

	// Full paged replay from the unpruned manager.
	replay, err := c.join("joiner-full")
	if err != nil {
		return MemJoin{}, err
	}
	defer replay.Close()
	start = time.Now()
	replayStats, err := replay.BootstrapFrom(ctx, "manager")
	if err != nil {
		return MemJoin{}, fmt.Errorf("replay join: %w", err)
	}
	join.ReplayMs = float64(time.Since(start).Microseconds()) / 1e3
	if replayStats.Mode != "replay" {
		return MemJoin{}, fmt.Errorf("replay join ran in %q mode", replayStats.Mode)
	}
	if join.SnapshotMs > 0 {
		join.Speedup = join.ReplayMs / join.SnapshotMs
	}

	// Identity: the snapshot joiner's live region is byte-for-byte the
	// serving gateway's.
	join.Identical = snap.Tangle().Size() == c.gateway.Tangle().Size()
	for _, tx := range c.gateway.Tangle().Export() {
		got, err := snap.GetTransaction(tx.ID())
		if err != nil || string(got.Encode()) != string(tx.Encode()) {
			join.Identical = false
			break
		}
	}

	now := c.clk.Now()
	join.CreditParity = true
	led := snap.Engine().Ledger()
	for _, addr := range led.Nodes() {
		inc, ref := led.CreditOf(addr, now), led.RescanCredit(addr, now)
		if diff := inc.Cr - ref.Cr; diff > 1e-9 || diff < -1e-9 {
			join.CreditParity = false
			break
		}
	}
	join.DifficultyAgree = true
	for _, device := range c.devices {
		want := c.gateway.DifficultyFor(device.Address())
		if snap.DifficultyFor(device.Address()) != want ||
			replay.DifficultyFor(device.Address()) != want {
			join.DifficultyAgree = false
			break
		}
	}
	return join, nil
}

// RunMemBench executes the steady-state and join sections. The unpruned
// steady-state pass runs first and is released before the pruned pass
// samples the heap, so each mode's post-GC numbers reflect its own live
// set.
func RunMemBench(ctx context.Context, cfg MemBenchConfig) (*MemBenchResult, error) {
	if len(cfg.Checkpoints) == 0 || cfg.JoinDevices < 1 || cfg.JoinRounds < 1 {
		return nil, fmt.Errorf("mem bench workload too small")
	}
	for i := 1; i < len(cfg.Checkpoints); i++ {
		if cfg.Checkpoints[i] <= cfg.Checkpoints[i-1] {
			return nil, fmt.Errorf("checkpoints must increase")
		}
	}
	res := &MemBenchResult{Config: cfg}
	var err error
	if res.Unpruned, err = runMemSteady(ctx, cfg, false); err != nil {
		return nil, fmt.Errorf("unpruned steady state: %w", err)
	}
	runtime.GC()
	if res.Pruned, err = runMemSteady(ctx, cfg, true); err != nil {
		return nil, fmt.Errorf("pruned steady state: %w", err)
	}

	growth := func(s []MemSample, f func(MemSample) float64) float64 {
		first, lastV := f(s[0]), f(s[len(s)-1])
		if first <= 0 {
			return 0
		}
		return lastV / first
	}
	resident := func(s MemSample) float64 { return float64(s.Resident) }
	heap := func(s MemSample) float64 { return float64(s.HeapBytes) - float64(s.ColdIndexBytes) }
	res.Summary = MemSteadySummary{
		PrunedResidentGrowth:   growth(res.Pruned, resident),
		UnprunedResidentGrowth: growth(res.Unpruned, resident),
		PrunedHeapGrowth:       growth(res.Pruned, heap),
		UnprunedHeapGrowth:     growth(res.Unpruned, heap),
	}

	if res.Join, err = runMemJoin(ctx, cfg); err != nil {
		return nil, fmt.Errorf("join section: %w", err)
	}
	return res, nil
}

// Render writes both sections as aligned tables.
func (r *MemBenchResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Steady-state memory — epoch snapshots vs unbounded history (keep %v, %d tx/window)\n",
		r.Config.Keep, int(r.Config.Keep/r.Config.Step)); err != nil {
		return err
	}
	t := &table{header: []string{"mode", "lifetime", "history", "resident", "boundary", "cold", "cold_idx_kb", "heap_kb"}}
	add := func(mode string, samples []MemSample) {
		for _, s := range samples {
			t.add(
				mode,
				fmt.Sprintf("%dx", s.Multiple),
				fmt.Sprintf("%d", s.History),
				fmt.Sprintf("%d", s.Resident),
				fmt.Sprintf("%d", s.Boundary),
				fmt.Sprintf("%d", s.Cold),
				fmt.Sprintf("%d", s.ColdIndexBytes/1024),
				fmt.Sprintf("%d", s.HeapBytes/1024),
			)
		}
	}
	add("pruned", r.Pruned)
	add("unpruned", r.Unpruned)
	if err := t.render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"\nGrowth first→last checkpoint: resident %.2fx pruned vs %.2fx unpruned; heap (less cold index) %.2fx vs %.2fx\n",
		r.Summary.PrunedResidentGrowth, r.Summary.UnprunedResidentGrowth,
		r.Summary.PrunedHeapGrowth, r.Summary.UnprunedHeapGrowth); err != nil {
		return err
	}

	if _, err := fmt.Fprintf(w,
		"\nJoin time — snapshot-shipped bootstrap vs full paged replay (%d tx history, %d live)\n",
		r.Join.HistoryTx, r.Join.LiveTx); err != nil {
		return err
	}
	j := &table{header: []string{"mode", "ms", "boundary", "credit_seeded", "identical", "credit_parity", "difficulty_agree"}}
	j.add("snapshot", fmt.Sprintf("%.1f", r.Join.SnapshotMs),
		fmt.Sprintf("%d", r.Join.BoundaryRoots), fmt.Sprintf("%d", r.Join.CreditSeeded),
		fmt.Sprintf("%v", r.Join.Identical), fmt.Sprintf("%v", r.Join.CreditParity),
		fmt.Sprintf("%v", r.Join.DifficultyAgree))
	j.add("replay", fmt.Sprintf("%.1f", r.Join.ReplayMs), "-", "-", "-", "-", "-")
	j.add("speedup", fmt.Sprintf("%.1fx", r.Join.Speedup), "-", "-", "-", "-", "-")
	return j.render(w)
}

// CSV writes the steady-state samples as CSV.
func (r *MemBenchResult) CSV(w io.Writer) error {
	t := &table{header: []string{"mode", "multiple", "history", "resident_vertices", "boundary_roots", "cold_total", "cold_index_bytes", "heap_inuse_bytes"}}
	add := func(mode string, samples []MemSample) {
		for _, s := range samples {
			t.add(mode,
				fmt.Sprintf("%d", s.Multiple),
				fmt.Sprintf("%d", s.History),
				fmt.Sprintf("%d", s.Resident),
				fmt.Sprintf("%d", s.Boundary),
				fmt.Sprintf("%d", s.Cold),
				fmt.Sprintf("%d", s.ColdIndexBytes),
				fmt.Sprintf("%d", s.HeapBytes))
		}
	}
	add("pruned", r.Pruned)
	add("unpruned", r.Unpruned)
	return t.csv(w)
}

// JSON writes the comparison as a machine-readable snapshot
// (BENCH_mem.json in the Makefile's bench-mem target).
func (r *MemBenchResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
