package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/pow"
)

// PipelineConfig parameterizes the parallel-submission experiment: the
// same gateway workload is replayed with a growing number of concurrent
// submitters, measuring how the staged admission pipeline (lock-free
// checks → short attach critical section → async batched fan-out)
// scales across cores. The single-submitter row is the baseline the
// speedup column is relative to.
type PipelineConfig struct {
	// SubmitterCounts lists the concurrency levels to measure; zero
	// selects {1, 4, GOMAXPROCS}.
	SubmitterCounts []int
	// TxPerSubmitter is the fixed per-submitter workload.
	TxPerSubmitter int
	// Difficulty is the static PoW difficulty, high enough that hash
	// work (the part that parallelizes) dominates framework overhead.
	Difficulty int
	// PayloadBytes sizes each data payload.
	PayloadBytes int
	// Peers attaches this many passive full nodes over an in-memory bus
	// so the asynchronous broadcast stage carries real fan-out.
	Peers int
	// ThinkTime models the device's sensor acquisition interval before
	// each submission. Concurrent submitters overlap it, so the measured
	// scaling reflects the gateway pipeline's ability to serve many
	// devices at once rather than only the host's core count (PoW mining
	// is the part that needs spare cores to parallelize).
	ThinkTime time.Duration
}

// DefaultPipelineConfig measures 1, 4 and GOMAXPROCS submitters.
func DefaultPipelineConfig() PipelineConfig {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	return PipelineConfig{
		SubmitterCounts: counts,
		TxPerSubmitter:  30,
		Difficulty:      12,
		PayloadBytes:    64,
		Peers:           2,
		ThinkTime:       5 * time.Millisecond,
	}
}

// QuickPipelineConfig is a CI-friendly reduction.
func QuickPipelineConfig() PipelineConfig {
	cfg := DefaultPipelineConfig()
	cfg.TxPerSubmitter = 10
	cfg.Difficulty = 10
	cfg.ThinkTime = 3 * time.Millisecond
	return cfg
}

// PipelineRow is one concurrency level's measurement.
type PipelineRow struct {
	Submitters   int           `json:"submitters"`
	Transactions int           `json:"transactions"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	TPS          float64       `json:"tps"`
	// Speedup is TPS relative to the single-submitter baseline row.
	Speedup float64 `json:"speedup"`
	// MeanAdmit / MeanAttach are the gateway's per-stage latencies.
	MeanAdmit  time.Duration `json:"mean_admit_ns"`
	MeanAttach time.Duration `json:"mean_attach_ns"`
	// MeanBatch is transactions per gossip datagram (coalescing factor).
	MeanBatch float64 `json:"mean_batch"`
}

// PipelineResult is the scaling curve.
type PipelineResult struct {
	Config PipelineConfig `json:"config"`
	Rows   []PipelineRow  `json:"rows"`
}

// RunPipeline measures submission throughput at each concurrency level.
func RunPipeline(ctx context.Context, cfg PipelineConfig) (*PipelineResult, error) {
	if len(cfg.SubmitterCounts) == 0 {
		cfg.SubmitterCounts = DefaultPipelineConfig().SubmitterCounts
	}
	if cfg.TxPerSubmitter < 1 {
		return nil, fmt.Errorf("pipeline workload must be positive")
	}
	res := &PipelineResult{Config: cfg}
	for _, submitters := range cfg.SubmitterCounts {
		row, err := runPipelineLevel(ctx, cfg, submitters)
		if err != nil {
			return nil, fmt.Errorf("submitters=%d: %w", submitters, err)
		}
		if len(res.Rows) > 0 && res.Rows[0].TPS > 0 {
			row.Speedup = row.TPS / res.Rows[0].TPS
		} else {
			row.Speedup = 1
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runPipelineLevel(ctx context.Context, cfg PipelineConfig, submitters int) (PipelineRow, error) {
	bus := gossip.NewBus()
	defer func() { _ = bus.Close() }()
	managerKey, err := identity.Generate()
	if err != nil {
		return PipelineRow{}, err
	}
	params := core.DefaultParams()
	params.InitialDifficulty = cfg.Difficulty
	params.MinDifficulty = 1
	params.MaxDifficulty = pow.MaxDifficulty
	mgrNet, err := bus.Join("manager")
	if err != nil {
		return PipelineRow{}, err
	}
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     params,
		Policy:     core.StaticPolicy{Difficulty: cfg.Difficulty},
		Network:    mgrNet,
	})
	if err != nil {
		return PipelineRow{}, err
	}
	defer func() { _ = full.Close() }()
	mgr, err := node.NewManager(full)
	if err != nil {
		return PipelineRow{}, err
	}

	// Passive peers receive the async fan-out, so the measurement
	// includes real (batched) gossip work, not a null transport.
	peers := make([]*node.FullNode, cfg.Peers)
	for i := range peers {
		peerKey, err := identity.Generate()
		if err != nil {
			return PipelineRow{}, err
		}
		peerNet, err := bus.Join(fmt.Sprintf("peer-%d", i))
		if err != nil {
			return PipelineRow{}, err
		}
		peers[i], err = node.NewFull(node.FullConfig{
			Key:        peerKey,
			Role:       identity.RoleGateway,
			ManagerPub: managerKey.Public(),
			Credit:     params,
			Policy:     core.StaticPolicy{Difficulty: cfg.Difficulty},
			Network:    peerNet,
		})
		if err != nil {
			return PipelineRow{}, err
		}
		defer func(p *node.FullNode) { _ = p.Close() }(peers[i])
	}

	devices := make([]*node.LightNode, submitters)
	for i := range devices {
		key, err := identity.Generate()
		if err != nil {
			return PipelineRow{}, err
		}
		mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
		devices[i], err = node.NewLight(node.LightConfig{Key: key, Gateway: full})
		if err != nil {
			return PipelineRow{}, err
		}
	}
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		return PipelineRow{}, err
	}

	payload := make([]byte, cfg.PayloadBytes)
	total := submitters * cfg.TxPerSubmitter
	var wg sync.WaitGroup
	errCh := make(chan error, submitters)
	start := time.Now()
	for _, dev := range devices {
		dev := dev
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.TxPerSubmitter; i++ {
				if cfg.ThinkTime > 0 {
					time.Sleep(cfg.ThinkTime) // sensor acquisition
				}
				if _, err := dev.PostReading(ctx, payload); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := full.FlushBroadcast(ctx); err != nil {
		return PipelineRow{}, err
	}
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return PipelineRow{}, err
	default:
	}

	p := full.Pipeline()
	meanBatch := 0.0
	if b := p.BatchesSent.Value(); b > 0 {
		meanBatch = float64(p.TxBroadcast.Value()) / float64(b)
	}
	return PipelineRow{
		Submitters:   submitters,
		Transactions: total,
		Elapsed:      elapsed,
		TPS:          float64(total) / elapsed.Seconds(),
		MeanAdmit:    p.AdmitLatency.Summarize().Mean,
		MeanAttach:   p.AttachLatency.Summarize().Mean,
		MeanBatch:    meanBatch,
	}, nil
}

// Render writes the scaling curve as an aligned table.
func (r *PipelineResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Submission pipeline scaling — %d txs/submitter at difficulty %d, %d gossip peers\n",
		r.Config.TxPerSubmitter, r.Config.Difficulty, r.Config.Peers); err != nil {
		return err
	}
	t := &table{header: []string{"submitters", "txs", "elapsed_s", "tps", "speedup", "mean_admit_s", "mean_attach_s", "mean_batch"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Submitters),
			fmt.Sprintf("%d", row.Transactions),
			fsec(row.Elapsed),
			fmt.Sprintf("%.1f", row.TPS),
			fmt.Sprintf("%.2f", row.Speedup),
			fsec(row.MeanAdmit),
			fsec(row.MeanAttach),
			fmt.Sprintf("%.2f", row.MeanBatch),
		)
	}
	return t.render(w)
}

// CSV writes the scaling curve as CSV.
func (r *PipelineResult) CSV(w io.Writer) error {
	t := &table{header: []string{"submitters", "txs", "elapsed_s", "tps", "speedup", "mean_admit_s", "mean_attach_s", "mean_batch"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Submitters),
			fmt.Sprintf("%d", row.Transactions),
			fsec(row.Elapsed),
			fmt.Sprintf("%.1f", row.TPS),
			fmt.Sprintf("%.2f", row.Speedup),
			fsec(row.MeanAdmit),
			fsec(row.MeanAttach),
			fmt.Sprintf("%.2f", row.MeanBatch))
	}
	return t.csv(w)
}

// JSON writes the scaling curve as a machine-readable snapshot
// (BENCH_pipeline.json in the Makefile's bench target).
func (r *PipelineResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
