// Package experiments contains one harness per table/figure of the
// paper's evaluation (§VI) plus the measured counterparts of its §VI-C
// security analysis. Each harness returns a typed result with Render
// (aligned text table, the same rows/series the paper reports) and CSV
// output. The cmd/biot-bench binary and the repository's testing.B
// benches both drive these harnesses; EXPERIMENTS.md records
// paper-vs-measured numbers.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// table renders aligned columns with a header row.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func (t *table) csv(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func fsec(d time.Duration) string {
	return fmt.Sprintf("%.4f", d.Seconds())
}

func ffloat(v float64) string {
	return fmt.Sprintf("%.3f", v)
}
