package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/metrics"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/pow"
)

// ScalabilityConfig parameterizes the device-concurrency sweep — the
// measured counterpart of the paper's §I scalability goal ("a general,
// scalable and secure blockchain-based IoT system"): how admission
// throughput and latency behave as the device population grows against
// a single gateway.
type ScalabilityConfig struct {
	// DeviceCounts are the population sizes to sweep.
	DeviceCounts []int
	// TxPerDevice is each device's workload.
	TxPerDevice int
	// Difficulty is the (static) PoW difficulty.
	Difficulty int
	// PayloadBytes sizes each reading.
	PayloadBytes int
}

// DefaultScalabilityConfig sweeps 1..16 devices.
func DefaultScalabilityConfig() ScalabilityConfig {
	return ScalabilityConfig{
		DeviceCounts: []int{1, 2, 4, 8, 16},
		TxPerDevice:  15,
		Difficulty:   12,
		PayloadBytes: 64,
	}
}

// ScalabilityRow is one population size's measurement.
type ScalabilityRow struct {
	Devices      int
	Transactions int
	Elapsed      time.Duration
	TPS          float64
	MeanAccept   time.Duration
	P95Accept    time.Duration
	Tips         int
}

// ScalabilityResult is the sweep outcome.
type ScalabilityResult struct {
	Config ScalabilityConfig
	Rows   []ScalabilityRow
}

// RunScalability executes the sweep. Each population size gets a fresh
// deployment so credit state does not leak across rows.
func RunScalability(ctx context.Context, cfg ScalabilityConfig) (*ScalabilityResult, error) {
	if len(cfg.DeviceCounts) == 0 || cfg.TxPerDevice < 1 {
		return nil, fmt.Errorf("scalability workload must be positive")
	}
	if cfg.Difficulty < pow.MinDifficulty || cfg.Difficulty > pow.MaxDifficulty {
		return nil, fmt.Errorf("scalability difficulty %d out of range", cfg.Difficulty)
	}
	res := &ScalabilityResult{Config: cfg}
	for _, n := range cfg.DeviceCounts {
		if n < 1 {
			return nil, fmt.Errorf("device count %d invalid", n)
		}
		row, err := runScalabilityRow(ctx, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("devices=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runScalabilityRow(ctx context.Context, cfg ScalabilityConfig, devices int) (ScalabilityRow, error) {
	managerKey, err := identity.Generate()
	if err != nil {
		return ScalabilityRow{}, err
	}
	params := core.DefaultParams()
	params.InitialDifficulty = cfg.Difficulty
	params.MinDifficulty = 1
	params.MaxDifficulty = pow.MaxDifficulty
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     params,
		Policy:     core.StaticPolicy{Difficulty: cfg.Difficulty},
	})
	if err != nil {
		return ScalabilityRow{}, err
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		return ScalabilityRow{}, err
	}

	lights := make([]*node.LightNode, devices)
	for i := range lights {
		key, err := identity.Generate()
		if err != nil {
			return ScalabilityRow{}, err
		}
		mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
		if lights[i], err = node.NewLight(node.LightConfig{Key: key, Gateway: full}); err != nil {
			return ScalabilityRow{}, err
		}
	}
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		return ScalabilityRow{}, err
	}

	payload := make([]byte, cfg.PayloadBytes)
	accept := &metrics.Histogram{}
	total := devices * cfg.TxPerDevice

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, devices)
	for _, dev := range lights {
		dev := dev
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.TxPerDevice; i++ {
				txStart := time.Now()
				if _, err := dev.PostReading(ctx, payload); err != nil {
					errCh <- err
					return
				}
				accept.Observe(time.Since(txStart))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return ScalabilityRow{}, err
	default:
	}

	sum := accept.Summarize()
	return ScalabilityRow{
		Devices:      devices,
		Transactions: total,
		Elapsed:      elapsed,
		TPS:          float64(total) / elapsed.Seconds(),
		MeanAccept:   sum.Mean,
		P95Accept:    sum.P95,
		Tips:         full.Tangle().TipCount(),
	}, nil
}

// Render writes the sweep as an aligned table.
func (r *ScalabilityResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Scalability — admission throughput vs device population (difficulty %d, %d txs/device)\n",
		r.Config.Difficulty, r.Config.TxPerDevice); err != nil {
		return err
	}
	t := &table{header: []string{"devices", "txs", "elapsed_s", "tps", "mean_accept_s", "p95_accept_s", "tips"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Devices),
			fmt.Sprintf("%d", row.Transactions),
			fsec(row.Elapsed),
			fmt.Sprintf("%.1f", row.TPS),
			fsec(row.MeanAccept),
			fsec(row.P95Accept),
			fmt.Sprintf("%d", row.Tips),
		)
	}
	return t.render(w)
}

// CSV writes the sweep as CSV.
func (r *ScalabilityResult) CSV(w io.Writer) error {
	t := &table{header: []string{"devices", "txs", "elapsed_s", "tps", "mean_accept_s", "p95_accept_s", "tips"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Devices),
			fmt.Sprintf("%d", row.Transactions),
			fsec(row.Elapsed),
			fmt.Sprintf("%.1f", row.TPS),
			fsec(row.MeanAccept),
			fsec(row.P95Accept),
			fmt.Sprintf("%d", row.Tips),
		)
	}
	return t.csv(w)
}
