package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"github.com/b-iot/biot/internal/scenario"
)

// ScenarioMatrixConfig parameterizes the scenario-matrix survival
// sweep: every named scenario (degraded wireless links, device churn
// and mobility, revocation storms, adversarial campaigns, machine
// carnage) runs at one tier, and each cell's pinned assertions —
// convergence, zero admitted-transaction loss, credit-oracle parity —
// must hold for the sweep to succeed.
type ScenarioMatrixConfig struct {
	// Tier selects the deployment scale: scenario.TierLong is the
	// 100+-node acceptance snapshot (BENCH_scenarios.json),
	// scenario.TierCI the 20-node CI reduction.
	Tier scenario.Tier `json:"tier"`
	// Seed drives every random choice in every cell; a failing cell
	// replays under the same seed (BIOT_SCENARIO_SEED in the tests).
	Seed int64 `json:"seed"`
}

// DefaultScenarioMatrixConfig is the acceptance-snapshot scale.
func DefaultScenarioMatrixConfig() ScenarioMatrixConfig {
	return ScenarioMatrixConfig{Tier: scenario.TierLong, Seed: 0xB107}
}

// QuickScenarioMatrixConfig is a CI-friendly reduction.
func QuickScenarioMatrixConfig() ScenarioMatrixConfig {
	return ScenarioMatrixConfig{Tier: scenario.TierCI, Seed: 0xB107}
}

// ScenarioMatrixResult is the full survival table, one row per cell.
type ScenarioMatrixResult struct {
	Config ScenarioMatrixConfig `json:"config"`
	Rows   []scenario.Result    `json:"rows"`
}

// RunScenarioMatrix executes every scenario in the matrix at the
// configured tier. A cell failure fails the sweep — these are the
// repo's survival guarantees, not best-effort measurements — but the
// failing row is still appended first so the snapshot shows how far
// the cell got.
func RunScenarioMatrix(ctx context.Context, cfg ScenarioMatrixConfig) (*ScenarioMatrixResult, error) {
	res := &ScenarioMatrixResult{Config: cfg}
	for _, spec := range scenario.Matrix(cfg.Tier) {
		row, err := scenario.Run(ctx, spec, cfg.Seed)
		res.Rows = append(res.Rows, row)
		if err != nil {
			return res, fmt.Errorf("scenario %s (seed %d): %w", spec.Name, cfg.Seed, err)
		}
	}
	return res, nil
}

// Render writes the survival table in aligned columns.
func (r *ScenarioMatrixResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Scenario matrix — %s tier, seed %d: convergence, zero admitted-loss and credit-oracle parity per cell\n",
		r.Config.Tier, r.Config.Seed); err != nil {
		return err
	}
	t := &table{header: []string{"scenario", "nodes", "admitted", "durable", "lost", "sync_rounds", "tangle", "restarts", "rejects", "stale_auth", "parity", "elapsed_ms"}}
	for _, row := range r.Rows {
		parity := "ok"
		if !row.CreditParityOK {
			parity = fmt.Sprintf("Δ%.1g", row.MaxCreditDelta)
		}
		t.add(
			row.Scenario,
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d/%d", row.Admitted, row.Submitted),
			fmt.Sprintf("%d", row.Durable),
			fmt.Sprintf("%d", row.LostDurable),
			fmt.Sprintf("%d", row.SyncRounds),
			fmt.Sprintf("%d", row.TangleSize),
			fmt.Sprintf("%d", row.Restarts),
			fmt.Sprintf("%d", row.Unauthorized),
			fmt.Sprintf("%d", row.StaleAuthRejects),
			parity,
			fmt.Sprintf("%.0f", row.ElapsedMS),
		)
	}
	return t.render(w)
}

// CSV writes the table as CSV.
func (r *ScenarioMatrixResult) CSV(w io.Writer) error {
	t := &table{header: []string{"scenario", "tier", "seed", "nodes", "submitted", "admitted", "submit_errors", "unauthorized_rejects", "stale_auth_rejects", "guaranteed_durable", "lost_durable", "converged", "sync_rounds", "tangle_size", "watchdog_restarts", "credit_accounts", "credit_parity_ok", "max_credit_delta", "malicious_events", "elapsed_ms"}}
	for _, row := range r.Rows {
		t.add(
			row.Scenario,
			row.Tier,
			fmt.Sprintf("%d", row.Seed),
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d", row.Submitted),
			fmt.Sprintf("%d", row.Admitted),
			fmt.Sprintf("%d", row.SubmitErrors),
			fmt.Sprintf("%d", row.Unauthorized),
			fmt.Sprintf("%d", row.StaleAuthRejects),
			fmt.Sprintf("%d", row.Durable),
			fmt.Sprintf("%d", row.LostDurable),
			fmt.Sprintf("%t", row.Converged),
			fmt.Sprintf("%d", row.SyncRounds),
			fmt.Sprintf("%d", row.TangleSize),
			fmt.Sprintf("%d", row.Restarts),
			fmt.Sprintf("%d", row.CreditAccounts),
			fmt.Sprintf("%t", row.CreditParityOK),
			fmt.Sprintf("%.3g", row.MaxCreditDelta),
			fmt.Sprintf("%d", row.MaliciousEvents),
			fmt.Sprintf("%.1f", row.ElapsedMS))
	}
	return t.csv(w)
}

// JSON writes the table as a machine-readable snapshot
// (BENCH_scenarios.json in the Makefile's bench target).
func (r *ScenarioMatrixResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
