package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/attack"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/tangle"
)

// SecurityConfig parameterizes the measured counterpart of the paper's
// §VI-C security analysis: each threat-model attack is actually launched
// against a live deployment and the defense's reaction is verified.
type SecurityConfig struct {
	// SybilIdentities is the number of fabricated identities.
	SybilIdentities int
	// FloodTxs and FloodRateLimit shape the DDoS scenario.
	FloodTxs       int
	FloodRateLimit int
	// Difficulty is the deployment's base PoW difficulty (kept low so
	// the scenarios run in milliseconds).
	Difficulty int
}

// DefaultSecurityConfig returns the standard scenario sizes.
func DefaultSecurityConfig() SecurityConfig {
	return SecurityConfig{
		SybilIdentities: 20,
		FloodTxs:        30,
		FloodRateLimit:  5,
		Difficulty:      4,
	}
}

// SecurityRow is one scenario's verdict.
type SecurityRow struct {
	Threat  string
	Defense string
	Pass    bool
	Detail  string
}

// SecurityResult is the measured security matrix.
type SecurityResult struct {
	Config SecurityConfig
	Rows   []SecurityRow
}

func securityParams(difficulty int) core.Params {
	p := core.DefaultParams()
	p.InitialDifficulty = difficulty
	p.MinDifficulty = 1
	p.MaxDifficulty = difficulty + 10
	return p
}

// RunSecurity executes the four §VI-C scenarios plus the
// single-point-of-failure drill.
func RunSecurity(ctx context.Context, cfg SecurityConfig) (*SecurityResult, error) {
	if cfg.SybilIdentities < 1 || cfg.FloodTxs < 1 || cfg.FloodRateLimit < 1 {
		return nil, fmt.Errorf("security scenario sizes must be positive")
	}
	res := &SecurityResult{Config: cfg}

	row, err := runSybilScenario(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("sybil scenario: %w", err)
	}
	res.Rows = append(res.Rows, row)

	row, err = runFloodScenario(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("flood scenario: %w", err)
	}
	res.Rows = append(res.Rows, row)

	row, err = runLazyScenario(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("lazy scenario: %w", err)
	}
	res.Rows = append(res.Rows, row)

	row, err = runDoubleSpendScenario(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("double-spend scenario: %w", err)
	}
	res.Rows = append(res.Rows, row)

	row, err = runFailoverScenario(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("failover scenario: %w", err)
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// newSecurityDeployment builds a single manager-node deployment.
func newSecurityDeployment(cfg SecurityConfig, clk clock.Clock, rateLimit int) (*node.Manager, *node.FullNode, error) {
	managerKey, err := identity.Generate()
	if err != nil {
		return nil, nil, err
	}
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     securityParams(cfg.Difficulty),
		Clock:      clk,
		RateLimit:  rateLimit,
		RateWindow: time.Second,
	})
	if err != nil {
		return nil, nil, err
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		return nil, nil, err
	}
	return mgr, full, nil
}

func runSybilScenario(ctx context.Context, cfg SecurityConfig) (SecurityRow, error) {
	_, full, err := newSecurityDeployment(cfg, nil, 0)
	if err != nil {
		return SecurityRow{}, err
	}
	res, err := attack.SybilFlood(ctx, full, nil, nil, cfg.SybilIdentities)
	if err != nil {
		return SecurityRow{}, err
	}
	return SecurityRow{
		Threat:  "Sybil attack",
		Defense: "manager authorization list on blockchain",
		Pass:    res.Accepted == 0 && res.Rejected == cfg.SybilIdentities,
		Detail: fmt.Sprintf("%d fabricated identities, %d rejected, %d accepted",
			res.Identities, res.Rejected, res.Accepted),
	}, nil
}

func runFloodScenario(ctx context.Context, cfg SecurityConfig) (SecurityRow, error) {
	mgr, full, err := newSecurityDeployment(cfg, nil, cfg.FloodRateLimit)
	if err != nil {
		return SecurityRow{}, err
	}
	key, err := identity.Generate()
	if err != nil {
		return SecurityRow{}, err
	}
	mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		return SecurityRow{}, err
	}
	atk, err := attack.New(attack.Config{Key: key, Gateway: full})
	if err != nil {
		return SecurityRow{}, err
	}
	res, err := atk.Flood(ctx, cfg.FloodTxs)
	if err != nil {
		return SecurityRow{}, err
	}
	return SecurityRow{
		Threat:  "DDoS submission flood",
		Defense: "per-device rate limiting behind authorization",
		Pass:    res.RateLimited > 0 && res.Accepted <= cfg.FloodTxs,
		Detail: fmt.Sprintf("%d sent, %d accepted, %d rate-limited",
			res.Sent, res.Accepted, res.RateLimited),
	}, nil
}

func runLazyScenario(ctx context.Context, cfg SecurityConfig) (SecurityRow, error) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0).UTC())
	mgr, full, err := newSecurityDeployment(cfg, clk, 0)
	if err != nil {
		return SecurityRow{}, err
	}
	honestKey, err := identity.Generate()
	if err != nil {
		return SecurityRow{}, err
	}
	lazyKey, err := identity.Generate()
	if err != nil {
		return SecurityRow{}, err
	}
	mgr.AuthorizeDevice(honestKey.Public(), honestKey.BoxPublic())
	mgr.AuthorizeDevice(lazyKey.Public(), lazyKey.BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		return SecurityRow{}, err
	}

	honest, err := node.NewLight(node.LightConfig{Key: honestKey, Gateway: full, Clock: clk})
	if err != nil {
		return SecurityRow{}, err
	}
	// Seed early traffic, then pin its tips as the lazy pair.
	if _, err := honest.PostReading(ctx, []byte("early-1")); err != nil {
		return SecurityRow{}, err
	}
	trunk, branch, err := full.TipsForApproval()
	if err != nil {
		return SecurityRow{}, err
	}
	atk, err := attack.New(attack.Config{Key: lazyKey, Gateway: full, Clock: clk})
	if err != nil {
		return SecurityRow{}, err
	}
	atk.PinLazyParents(trunk, branch)

	// Honest traffic moves the frontier while time passes beyond the
	// lazy threshold.
	for i := 0; i < 4; i++ {
		clk.Advance(20 * time.Second)
		if _, err := honest.PostReading(ctx, []byte(fmt.Sprintf("fresh-%d", i))); err != nil {
			return SecurityRow{}, err
		}
	}
	clk.Advance(20 * time.Second)

	before := full.DifficultyFor(atk.Address())
	if _, err := atk.LazySubmit(ctx, []byte("lazy")); err != nil {
		return SecurityRow{}, err
	}
	clk.Advance(time.Second)
	after := full.DifficultyFor(atk.Address())
	events := full.Engine().Ledger().Events(atk.Address())
	lazyDetected := 0
	for _, ev := range events {
		if ev.Behaviour == core.BehaviourLazyTips {
			lazyDetected++
		}
	}
	return SecurityRow{
		Threat:  "lazy tips",
		Defense: "stale-parent detection + credit punishment",
		Pass:    lazyDetected > 0 && after > before,
		Detail: fmt.Sprintf("%d lazy event(s) recorded, difficulty %d → %d",
			lazyDetected, before, after),
	}, nil
}

func runDoubleSpendScenario(ctx context.Context, cfg SecurityConfig) (SecurityRow, error) {
	mgr, full, err := newSecurityDeployment(cfg, nil, 0)
	if err != nil {
		return SecurityRow{}, err
	}
	key, err := identity.Generate()
	if err != nil {
		return SecurityRow{}, err
	}
	mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		return SecurityRow{}, err
	}
	full.Tokens().Mint(key.Address(), 100)

	victim1, err := identity.Generate()
	if err != nil {
		return SecurityRow{}, err
	}
	victim2, err := identity.Generate()
	if err != nil {
		return SecurityRow{}, err
	}
	atk, err := attack.New(attack.Config{Key: key, Gateway: full})
	if err != nil {
		return SecurityRow{}, err
	}
	before := full.DifficultyFor(atk.Address())
	first, second, err := atk.DoubleSpend(ctx, victim1.Address(), victim2.Address(), 40, 0)
	if err != nil {
		return SecurityRow{}, err
	}
	after := full.DifficultyFor(atk.Address())

	events := full.Engine().Ledger().Events(atk.Address())
	doubleSpends := 0
	for _, ev := range events {
		if ev.Behaviour == core.BehaviourDoubleSpend {
			doubleSpends++
		}
	}
	firstInfo, err := full.InfoOf(first.ID)
	if err != nil {
		return SecurityRow{}, err
	}
	secondInfo, err := full.InfoOf(second.ID)
	if err != nil {
		return SecurityRow{}, err
	}
	oneRejected := (firstInfo.Status == tangle.StatusRejected) !=
		(secondInfo.Status == tangle.StatusRejected)
	return SecurityRow{
		Threat:  "double-spending",
		Defense: "conflict resolution by cumulative weight + credit punishment",
		Pass:    doubleSpends > 0 && oneRejected && after > before,
		Detail: fmt.Sprintf("conflict events %d, statuses %v/%v, difficulty %d → %d",
			doubleSpends, firstInfo.Status, secondInfo.Status, before, after),
	}, nil
}

func runFailoverScenario(ctx context.Context, cfg SecurityConfig) (SecurityRow, error) {
	bus := gossip.NewBus()
	defer func() { _ = bus.Close() }()

	managerKey, err := identity.Generate()
	if err != nil {
		return SecurityRow{}, err
	}
	mgrNet, err := bus.Join("manager")
	if err != nil {
		return SecurityRow{}, err
	}
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     securityParams(cfg.Difficulty),
		Network:    mgrNet,
	})
	if err != nil {
		return SecurityRow{}, err
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		return SecurityRow{}, err
	}

	gateways := make([]*node.FullNode, 2)
	for i := range gateways {
		gwKey, err := identity.Generate()
		if err != nil {
			return SecurityRow{}, err
		}
		gwNet, err := bus.Join(fmt.Sprintf("gateway-%d", i))
		if err != nil {
			return SecurityRow{}, err
		}
		gateways[i], err = node.NewFull(node.FullConfig{
			Key:        gwKey,
			Role:       identity.RoleGateway,
			ManagerPub: managerKey.Public(),
			Credit:     securityParams(cfg.Difficulty),
			Network:    gwNet,
		})
		if err != nil {
			return SecurityRow{}, err
		}
	}

	deviceKey, err := identity.Generate()
	if err != nil {
		return SecurityRow{}, err
	}
	mgr.AuthorizeDevice(deviceKey.Public(), deviceKey.BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		return SecurityRow{}, err
	}
	// Authorization propagated via gossip; gateways now serve the
	// device.
	dev0, err := node.NewLight(node.LightConfig{Key: deviceKey, Gateway: gateways[0]})
	if err != nil {
		return SecurityRow{}, err
	}
	if _, err := dev0.PostReading(ctx, []byte("before failure")); err != nil {
		return SecurityRow{}, fmt.Errorf("post via gateway-0: %w", err)
	}
	// Drain gateway-0's async fan-out before failing it, so the pre-
	// failure posting is replicated rather than lost with the node.
	if err := gateways[0].FlushBroadcast(ctx); err != nil {
		return SecurityRow{}, err
	}

	// Gateway 0 fails: isolate it from the network. The device
	// reconnects to gateway 1 ("find closest gateway enabled RPC
	// port") and service continues.
	bus.Isolate("gateway-0")
	dev1, err := node.NewLight(node.LightConfig{Key: deviceKey, Gateway: gateways[1]})
	if err != nil {
		return SecurityRow{}, err
	}
	res, err := dev1.PostReading(ctx, []byte("after failure"))
	if err != nil {
		return SecurityRow{}, fmt.Errorf("post via gateway-1: %w", err)
	}
	if err := gateways[1].FlushBroadcast(ctx); err != nil {
		return SecurityRow{}, err
	}

	// The surviving replicas hold the data.
	_, errMgr := full.GetTransaction(res.Info.ID)
	_, errGw1 := gateways[1].GetTransaction(res.Info.ID)

	// Heal and resync the failed gateway.
	bus.Restore("gateway-0")
	gateways[0].SyncAll(ctx)
	_, errGw0 := gateways[0].GetTransaction(res.Info.ID)

	pass := errMgr == nil && errGw1 == nil && errGw0 == nil
	return SecurityRow{
		Threat:  "single point of failure",
		Defense: "replicated DAG ledger across full nodes",
		Pass:    pass,
		Detail: fmt.Sprintf("post-failure tx on manager=%v gw1=%v; resynced gw0=%v",
			errMgr == nil, errGw1 == nil, errGw0 == nil),
	}, nil
}

// Render writes the matrix as an aligned table.
func (r *SecurityResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Security matrix — §VI-C threat scenarios, measured"); err != nil {
		return err
	}
	t := &table{header: []string{"threat", "defense", "verdict", "detail"}}
	for _, row := range r.Rows {
		verdict := "DEFENDED"
		if !row.Pass {
			verdict = "FAILED"
		}
		t.add(row.Threat, row.Defense, verdict, row.Detail)
	}
	return t.render(w)
}

// CSV writes the matrix as CSV.
func (r *SecurityResult) CSV(w io.Writer) error {
	t := &table{header: []string{"threat", "defense", "pass", "detail"}}
	for _, row := range r.Rows {
		t.add(row.Threat, row.Defense, fmt.Sprintf("%t", row.Pass), row.Detail)
	}
	return t.csv(w)
}
