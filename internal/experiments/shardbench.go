package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
)

// ShardBenchConfig parameterizes the sharded-topology scaling
// benchmark (DESIGN.md §16). Each cell deploys N region gateways
// behind one backbone: every gateway admits its own devices into its
// own tangle namespace and journals to its own disk, so the only
// shared medium is the backbone's control-plane and credit-digest
// reconciliation. The disk is the bottleneck by construction — every
// gateway's journal flushes through a MemFS with a fixed fsync
// latency — so a single gateway's admission rate is pinned at
// roughly batch/SyncDelay and the question the benchmark answers is
// whether N gateways deliver N times that, i.e. whether admission is
// actually shard-parallel or secretly serialized through shared
// state. Disk waits overlap across gateways regardless of host core
// count, which keeps the cell honest on small CI machines.
type ShardBenchConfig struct {
	// Gateways lists the topology sizes swept; the first entry is the
	// baseline the ideal line is extrapolated from.
	Gateways []int
	// Devices is the light-node count per gateway; each posts
	// closed-loop.
	Devices int
	// Ops is the readings each device submits.
	Ops int
	// SyncDelay is the modelled per-fsync disk latency — the
	// serialized resource that bounds one gateway's throughput.
	SyncDelay time.Duration
	// Difficulty is the initial PoW difficulty (credit lowers it).
	Difficulty int
	// ScaleFloor is the headline gate: aggregate throughput at the
	// largest size must be at least ScaleFloor × the ideal N × baseline
	// line. Zero disables the gate (quick mode).
	ScaleFloor float64
	// Seed drives the per-gateway disks.
	Seed int64
}

// DefaultShardBenchConfig is the acceptance-snapshot scale
// (BENCH_shard.json): 1→4 gateways, aggregate ≥ 0.8× ideal at 4.
func DefaultShardBenchConfig() ShardBenchConfig {
	return ShardBenchConfig{
		Gateways:   []int{1, 2, 4},
		Devices:    6,
		Ops:        30,
		SyncDelay:  5 * time.Millisecond,
		Difficulty: 4,
		ScaleFloor: 0.8,
		Seed:       0x5A4D,
	}
}

// QuickShardBenchConfig is a CI-friendly reduction (no headline gate:
// loaded CI machines make wall-clock ratios unreliable).
func QuickShardBenchConfig() ShardBenchConfig {
	return ShardBenchConfig{
		Gateways:   []int{1, 2},
		Devices:    3,
		Ops:        8,
		SyncDelay:  2 * time.Millisecond,
		Difficulty: 4,
		Seed:       0x5A4D,
	}
}

// ShardCell is one topology size's measurement plus the correctness
// gates that make the throughput claim meaningful: the cell only
// counts if the shards also reconciled.
type ShardCell struct {
	// Gateways and Devices describe the cell (Devices is per gateway).
	Gateways int `json:"gateways"`
	Devices  int `json:"devices_per_gateway"`
	// Admitted is total transactions admitted across all gateways;
	// ElapsedMs the wall-clock load window.
	Admitted  int     `json:"admitted"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Throughput is aggregate admitted tx/s; PerGateway divides by N.
	Throughput float64 `json:"throughput_tps"`
	PerGateway float64 `json:"per_gateway_tps"`
	// Ideal is Gateways × the baseline cell's per-gateway rate;
	// Scaling is Throughput/Ideal (1.0 = perfectly linear).
	Ideal   float64 `json:"ideal_tps"`
	Scaling float64 `json:"scaling"`
	// ControlSize is the (globally replicated) namespace-0 size after
	// reconciliation; ShardSizes the per-gateway data namespaces.
	ControlSize int   `json:"control_namespace_size"`
	ShardSizes  []int `json:"shard_sizes"`
	// BackbonePages counts scoped sync pages pulled over the backbone.
	BackbonePages int64 `json:"backbone_sync_pages"`
	// Converged: every full (manager + gateways) holds the identical
	// control namespace. NoLeakage: no gateway holds a foreign
	// region's data vertices, and the manager holds none at all.
	Converged bool `json:"converged"`
	NoLeakage bool `json:"no_leakage"`
	// CreditAgree: after reconciliation every full derives the same
	// credit for every device, including devices of other regions.
	// CreditParity: on every full, incremental credit matches the
	// RescanCredit oracle for every known account.
	CreditAgree  bool `json:"credit_agree"`
	CreditParity bool `json:"credit_parity"`
}

// ShardSummary is the headline.
type ShardSummary struct {
	// BaselineTPS is the single-gateway aggregate rate.
	BaselineTPS float64 `json:"baseline_tps"`
	// AggregateTPS and IdealTPS are the largest cell's measured and
	// N×baseline rates; Scaling their ratio.
	AggregateTPS float64 `json:"aggregate_tps"`
	IdealTPS     float64 `json:"ideal_tps"`
	Scaling      float64 `json:"scaling"`
	// Pass: Scaling ≥ the configured floor and every cell's
	// correctness gates held.
	Pass bool `json:"pass"`
}

// ShardBenchResult is the full sweep.
type ShardBenchResult struct {
	Config  ShardBenchConfig `json:"config"`
	Cells   []ShardCell      `json:"cells"`
	Summary ShardSummary     `json:"summary"`
}

// shardCellDeps is one cell's deployment: a manager on the backbone,
// N single-gateway regions (each gateway owns namespace i+1, its own
// regional bus, and its own delayed disk), and N×Devices light nodes.
type shardCellDeps struct {
	backbone *gossip.Bus
	regional []*gossip.Bus
	clk      *clock.Virtual
	mgr      *node.Manager
	mgrFull  *node.FullNode
	gateways []*node.FullNode
	devices  [][]*node.LightNode // [gateway][device]
}

func (d *shardCellDeps) close() {
	for _, gw := range d.gateways {
		_ = gw.ClosePersistence()
		gw.Close()
	}
	if d.mgrFull != nil {
		d.mgrFull.Close()
	}
	for _, b := range d.regional {
		b.Close()
	}
	if d.backbone != nil {
		d.backbone.Close()
	}
}

func buildShardCell(ctx context.Context, cfg ShardBenchConfig, n int) (*shardCellDeps, error) {
	d := &shardCellDeps{
		backbone: gossip.NewBus(),
		clk:      clock.NewVirtual(time.Unix(1_700_000_000, 0)),
	}
	params := core.DefaultParams()
	params.InitialDifficulty = cfg.Difficulty
	params.MinDifficulty = 1
	params.MaxDifficulty = cfg.Difficulty + 6

	mgrKey, err := identity.Generate()
	if err != nil {
		return d, err
	}
	mgrNet, err := d.backbone.Join("manager")
	if err != nil {
		return d, err
	}
	d.mgrFull, err = node.NewFull(node.FullConfig{
		Key:        mgrKey,
		Role:       identity.RoleManager,
		ManagerPub: mgrKey.Public(),
		Credit:     params,
		Clock:      d.clk,
		Network:    mgrNet,
	})
	if err != nil {
		return d, err
	}
	if d.mgr, err = node.NewManager(d.mgrFull); err != nil {
		return d, err
	}

	for i := 0; i < n; i++ {
		name := fmt.Sprintf("gw-%d", i)
		bus := gossip.NewBus()
		d.regional = append(d.regional, bus)
		regNet, err := bus.Join(name)
		if err != nil {
			return d, err
		}
		bbNet, err := d.backbone.Join(name)
		if err != nil {
			return d, err
		}
		key, err := identity.Generate()
		if err != nil {
			return d, err
		}
		gw, err := node.NewFull(node.FullConfig{
			Key:        key,
			Role:       identity.RoleGateway,
			ManagerPub: mgrKey.Public(),
			Credit:     params,
			Clock:      d.clk,
			Network:    regNet,
			Backbone:   bbNet,
			ShardID:    uint32(i + 1),
		})
		if err != nil {
			return d, err
		}
		d.gateways = append(d.gateways, gw)

		fs := chaos.NewMemFS(cfg.Seed + int64(i))
		fs.SetSyncDelay(cfg.SyncDelay)
		if _, err := gw.EnablePersistenceFS(fs, name+".journal"); err != nil {
			return d, fmt.Errorf("%s journal: %w", name, err)
		}

		var regionDevices []*node.LightNode
		for j := 0; j < cfg.Devices; j++ {
			dkey, err := identity.Generate()
			if err != nil {
				return d, err
			}
			device, err := node.NewLight(node.LightConfig{
				Key:     dkey,
				Gateway: gw,
				Clock:   d.clk,
			})
			if err != nil {
				return d, err
			}
			regionDevices = append(regionDevices, device)
			d.mgr.AuthorizeDevice(dkey.Public(), dkey.BoxPublic())
		}
		d.devices = append(d.devices, regionDevices)
	}

	// Distribute the authorization list: the manager broadcasts on the
	// backbone, then each gateway pulls the control namespace so even a
	// gateway that missed the push converges before load starts.
	if _, err := d.mgr.PublishAuthorization(ctx); err != nil {
		return d, err
	}
	if err := d.mgrFull.FlushBroadcast(ctx); err != nil {
		return d, err
	}
	for _, gw := range d.gateways {
		gw.Reconcile(ctx)
	}
	return d, nil
}

// runShardCell loads one topology size and returns its measurement.
func runShardCell(ctx context.Context, cfg ShardBenchConfig, n int) (ShardCell, error) {
	d, err := buildShardCell(ctx, cfg, n)
	if err != nil {
		d.close()
		return ShardCell{}, err
	}
	defer d.close()

	cell := ShardCell{Gateways: n, Devices: cfg.Devices}

	// Closed-loop load: every device posts Ops readings back-to-back;
	// PostReading returns only after the admitting gateway's journal
	// reports the record durable, so the device's cadence is gated by
	// its gateway's disk — the contended resource under test.
	errs := make(chan error, n*cfg.Devices)
	var wg sync.WaitGroup
	start := time.Now()
	for gi := range d.devices {
		for di, device := range d.devices[gi] {
			wg.Add(1)
			go func(gi, di int, device *node.LightNode) {
				defer wg.Done()
				for op := 0; op < cfg.Ops; op++ {
					d.clk.Advance(time.Millisecond)
					payload := []byte(fmt.Sprintf("g%d-d%d-op%d", gi, di, op))
					if _, err := device.PostReading(ctx, payload); err != nil {
						errs <- fmt.Errorf("gateway %d device %d op %d: %w", gi, di, op, err)
						return
					}
				}
			}(gi, di, device)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return cell, err
	}

	cell.Admitted = n * cfg.Devices * cfg.Ops
	cell.ElapsedMs = float64(elapsed.Microseconds()) / 1e3
	if elapsed > 0 {
		cell.Throughput = float64(cell.Admitted) / elapsed.Seconds()
		cell.PerGateway = cell.Throughput / float64(n)
	}

	// Reconcile the shards: two rounds carry control-plane history and
	// credit digests across every backbone pair (gateway↔gateway needs
	// the transitive hop through round two), then the manager folds the
	// gateways' digests into its own view.
	d.clk.Advance(time.Second)
	for round := 0; round < 2; round++ {
		for _, gw := range d.gateways {
			gw.Reconcile(ctx)
		}
		d.mgrFull.Reconcile(ctx)
	}

	fulls := append([]*node.FullNode{d.mgrFull}, d.gateways...)

	// Convergence: an identical control namespace everywhere.
	ref := controlIDs(d.mgrFull)
	cell.ControlSize = len(ref)
	cell.Converged = true
	for _, f := range fulls[1:] {
		got := controlIDs(f)
		if len(got) != len(ref) {
			cell.Converged = false
			break
		}
		for id := range ref {
			if !got[id] {
				cell.Converged = false
				break
			}
		}
	}

	// Leakage: each gateway's data lives in its own namespace only.
	cell.NoLeakage = true
	for gi, gw := range d.gateways {
		own := uint32(gi + 1)
		cell.ShardSizes = append(cell.ShardSizes, gw.Tangle().ShardSize(own))
		for _, s := range gw.Tangle().Shards() {
			if s != 0 && s != own {
				cell.NoLeakage = false
			}
		}
		cell.BackbonePages += gw.MemoryStats().BackboneSyncPages
	}
	for _, s := range d.mgrFull.Tangle().Shards() {
		if s != 0 {
			cell.NoLeakage = false
		}
	}

	// Credit: reconciliation must leave every full agreeing on every
	// device — including devices that never touched it — and every
	// full's incremental ledger matching its own rescan oracle.
	now := d.clk.Now()
	cell.CreditAgree = true
	for gi := range d.devices {
		for _, device := range d.devices[gi] {
			home := d.gateways[gi].Engine().Ledger().CreditOf(device.Address(), now)
			if home.CrP <= 0 {
				cell.CreditAgree = false
			}
			for _, f := range fulls {
				got := f.Engine().Ledger().CreditOf(device.Address(), now)
				if math.Abs(got.Cr-home.Cr) > 1e-9 || math.Abs(got.CrP-home.CrP) > 1e-9 ||
					math.Abs(got.CrN-home.CrN) > 1e-9 {
					cell.CreditAgree = false
				}
			}
		}
	}
	cell.CreditParity = true
	for _, f := range fulls {
		ledger := f.Engine().Ledger()
		for _, addr := range ledger.Nodes() {
			inc, oracle := ledger.CreditOf(addr, now), ledger.RescanCredit(addr, now)
			for _, pair := range [][2]float64{
				{inc.Cr, oracle.Cr}, {inc.CrP, oracle.CrP}, {inc.CrN, oracle.CrN},
			} {
				rel := math.Abs(pair[0]-pair[1]) / (1 + math.Abs(pair[0]) + math.Abs(pair[1]))
				if rel > 1e-9 {
					cell.CreditParity = false
				}
			}
		}
	}
	return cell, nil
}

// controlIDs is the namespace-0 vertex set of one full node.
func controlIDs(f *node.FullNode) map[hashutil.Hash]bool {
	tg := f.Tangle()
	out := make(map[hashutil.Hash]bool)
	for _, id := range tg.OrderedShardIDs(0, 0, tg.ShardSize(0)) {
		out[id] = true
	}
	return out
}

// RunShardBench sweeps the topology sizes and gates the headline.
func RunShardBench(ctx context.Context, cfg ShardBenchConfig) (*ShardBenchResult, error) {
	if len(cfg.Gateways) == 0 || cfg.Devices < 1 || cfg.Ops < 1 {
		return nil, fmt.Errorf("shard bench workload too small")
	}
	res := &ShardBenchResult{Config: cfg}
	for _, n := range cfg.Gateways {
		if n < 1 {
			return nil, fmt.Errorf("gateway count %d", n)
		}
		cell, err := runShardCell(ctx, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("%d gateways: %w", n, err)
		}
		res.Cells = append(res.Cells, cell)
	}

	base := res.Cells[0].PerGateway
	gatesOK := true
	for i := range res.Cells {
		c := &res.Cells[i]
		c.Ideal = base * float64(c.Gateways)
		if c.Ideal > 0 {
			c.Scaling = c.Throughput / c.Ideal
		}
		if !c.Converged || !c.NoLeakage || !c.CreditAgree || !c.CreditParity {
			gatesOK = false
		}
	}
	last := res.Cells[len(res.Cells)-1]
	res.Summary = ShardSummary{
		BaselineTPS:  res.Cells[0].Throughput,
		AggregateTPS: last.Throughput,
		IdealTPS:     last.Ideal,
		Scaling:      last.Scaling,
		Pass:         gatesOK && last.Scaling >= cfg.ScaleFloor,
	}
	if !gatesOK {
		return res, fmt.Errorf("a correctness gate failed: %+v", res.Cells)
	}
	if cfg.ScaleFloor > 0 && last.Scaling < cfg.ScaleFloor {
		return res, fmt.Errorf("aggregate throughput %.0f tx/s is %.2f× the %d-gateway ideal %.0f tx/s (floor %.2f)",
			last.Throughput, last.Scaling, last.Gateways, last.Ideal, cfg.ScaleFloor)
	}
	return res, nil
}

// Render writes the sweep as an aligned table.
func (r *ShardBenchResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Sharded-topology scaling — %d devices/gateway × %d ops, %v fsync per gateway disk\n",
		r.Config.Devices, r.Config.Ops, r.Config.SyncDelay); err != nil {
		return err
	}
	t := &table{header: []string{"gateways", "admitted", "elapsed_ms", "agg_tps", "per_gw_tps", "scaling", "control", "shards", "converged", "no_leak", "credit_agree", "credit_parity"}}
	for _, c := range r.Cells {
		t.add(
			fmt.Sprintf("%d", c.Gateways),
			fmt.Sprintf("%d", c.Admitted),
			fmt.Sprintf("%.1f", c.ElapsedMs),
			fmt.Sprintf("%.0f", c.Throughput),
			fmt.Sprintf("%.0f", c.PerGateway),
			fmt.Sprintf("%.2fx", c.Scaling),
			fmt.Sprintf("%d", c.ControlSize),
			fmt.Sprintf("%v", c.ShardSizes),
			fmt.Sprintf("%v", c.Converged),
			fmt.Sprintf("%v", c.NoLeakage),
			fmt.Sprintf("%v", c.CreditAgree),
			fmt.Sprintf("%v", c.CreditParity),
		)
	}
	if err := t.render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"\nHeadline: %d gateways deliver %.0f tx/s aggregate vs %.0f ideal (%.2fx, floor %.2f) — pass=%v\n",
		r.Cells[len(r.Cells)-1].Gateways, r.Summary.AggregateTPS, r.Summary.IdealTPS,
		r.Summary.Scaling, r.Config.ScaleFloor, r.Summary.Pass)
	return err
}

// CSV writes one row per cell.
func (r *ShardBenchResult) CSV(w io.Writer) error {
	t := &table{header: []string{"gateways", "devices_per_gateway", "admitted", "elapsed_ms", "throughput_tps", "per_gateway_tps", "ideal_tps", "scaling", "control_namespace_size", "backbone_sync_pages", "converged", "no_leakage", "credit_agree", "credit_parity"}}
	for _, c := range r.Cells {
		t.add(
			fmt.Sprintf("%d", c.Gateways),
			fmt.Sprintf("%d", c.Devices),
			fmt.Sprintf("%d", c.Admitted),
			fmt.Sprintf("%.3f", c.ElapsedMs),
			fmt.Sprintf("%.3f", c.Throughput),
			fmt.Sprintf("%.3f", c.PerGateway),
			fmt.Sprintf("%.3f", c.Ideal),
			fmt.Sprintf("%.4f", c.Scaling),
			fmt.Sprintf("%d", c.ControlSize),
			fmt.Sprintf("%d", c.BackbonePages),
			fmt.Sprintf("%v", c.Converged),
			fmt.Sprintf("%v", c.NoLeakage),
			fmt.Sprintf("%v", c.CreditAgree),
			fmt.Sprintf("%v", c.CreditParity),
		)
	}
	return t.csv(w)
}

// JSON writes the machine-readable snapshot (BENCH_shard.json in the
// Makefile's bench-shard target).
func (r *ShardBenchResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
