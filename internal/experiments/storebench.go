package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/store"
	"github.com/b-iot/biot/internal/txn"
)

// StoreBenchConfig parameterizes the durable-write-path benchmark: for
// each submitter count it drives concurrent Appends against a journal
// whose fsyncs cost SyncDelay (an in-memory disk with modeled flush
// latency, so the group-commit effect is measured deterministically
// rather than at the mercy of the host's page cache), once in
// per-record-fsync mode (MaxBatch=1 — the old write path) and once with
// group commit. A second section measures credit evaluation: ns/op of
// the from-scratch window rescan vs the incremental rolling-window
// path, over the same ledger.
type StoreBenchConfig struct {
	// SubmitterCounts lists the concurrency levels to sweep.
	SubmitterCounts []int
	// RecordsPerSubmitter is how many records each submitter appends.
	RecordsPerSubmitter int
	// SyncDelay is the modeled fsync latency.
	SyncDelay time.Duration
	// GroupMaxBatch is the records-per-fsync cap in grouped mode (0
	// selects the store default).
	GroupMaxBatch int
	// HistogramAt selects the submitter count whose grouped-mode
	// batch-size histogram is reported.
	HistogramAt int

	// CreditWindowRecords is how many transaction records sit inside
	// the ΔT window during the credit-query section.
	CreditWindowRecords int
	// CreditEvents is how many malicious events the queried node has.
	CreditEvents int
	// CreditQueries is how many difficulty evaluations each credit mode
	// performs (with a slightly advancing clock, the admission shape).
	CreditQueries int

	// Seed drives the in-memory disk.
	Seed int64
}

// DefaultStoreBenchConfig is the acceptance-snapshot scale
// (BENCH_store.json).
func DefaultStoreBenchConfig() StoreBenchConfig {
	return StoreBenchConfig{
		SubmitterCounts:     []int{1, 4, 16, 64},
		RecordsPerSubmitter: 64,
		SyncDelay:           300 * time.Microsecond,
		HistogramAt:         16,
		CreditWindowRecords: 4000,
		CreditEvents:        64,
		CreditQueries:       2000,
		Seed:                0x57042,
	}
}

// QuickStoreBenchConfig is a CI-friendly reduction.
func QuickStoreBenchConfig() StoreBenchConfig {
	return StoreBenchConfig{
		SubmitterCounts:     []int{1, 8},
		RecordsPerSubmitter: 16,
		SyncDelay:           100 * time.Microsecond,
		HistogramAt:         8,
		CreditWindowRecords: 500,
		CreditEvents:        16,
		CreditQueries:       200,
		Seed:                0x57042,
	}
}

// StoreBenchRow compares the two write paths at one concurrency level.
type StoreBenchRow struct {
	Submitters int `json:"submitters"`
	Records    int `json:"records"`
	// PerRecord* is the old write path: every record pays its own
	// serialized fsync (MaxBatch=1).
	PerRecordTxPerSec float64 `json:"per_record_tx_per_sec"`
	PerRecordSyncs    uint64  `json:"per_record_syncs"`
	// Grouped* is the group-commit path: concurrent appenders share a
	// leader's single write+fsync.
	GroupedTxPerSec float64 `json:"grouped_tx_per_sec"`
	GroupedSyncs    uint64  `json:"grouped_syncs"`
	// MeanBatch is records per fsync in grouped mode.
	MeanBatch float64 `json:"mean_batch"`
	// Speedup is grouped over per-record throughput.
	Speedup float64 `json:"speedup"`
}

// StoreBenchHistBucket is one batch-size histogram bucket (grouped mode
// at Config.HistogramAt submitters).
type StoreBenchHistBucket struct {
	Bucket  string `json:"bucket"`
	Commits uint64 `json:"commits"`
}

// StoreBenchCredit compares credit-query cost before and after the
// incremental-evaluation change.
type StoreBenchCredit struct {
	WindowRecords int `json:"window_records"`
	Events        int `json:"events"`
	Queries       int `json:"queries"`
	// RescanNsPerOp is the from-scratch evaluation (binary-search the
	// window start, then sum every in-window record — the old
	// DifficultyFor cost, kept as Ledger.RescanCredit).
	RescanNsPerOp float64 `json:"rescan_ns_per_op"`
	// IncrementalNsPerOp is the rolling-window evaluation the hot path
	// now uses: O(records entering/leaving the window), O(1) amortized.
	IncrementalNsPerOp float64 `json:"incremental_ns_per_op"`
	// Speedup is rescan over incremental.
	Speedup float64 `json:"speedup"`
}

// StoreBenchResult is the full durable-write + credit-query comparison.
type StoreBenchResult struct {
	Config    StoreBenchConfig       `json:"config"`
	Rows      []StoreBenchRow        `json:"rows"`
	Histogram []StoreBenchHistBucket `json:"histogram"`
	Credit    StoreBenchCredit       `json:"credit"`
}

// delayFS models fsync latency on top of the in-memory disk: every Sync
// sleeps SyncDelay before completing. It makes the group-commit effect
// measurable deterministically — on the raw MemFS a sync costs
// nanoseconds and both write paths would be CPU-bound.
type delayFS struct {
	chaos.FS
	delay time.Duration
}

func (d *delayFS) OpenFile(name string, flag int, perm os.FileMode) (chaos.File, error) {
	f, err := d.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &delayFile{File: f, delay: d.delay}, nil
}

type delayFile struct {
	chaos.File
	delay time.Duration
}

func (d *delayFile) Sync() error {
	time.Sleep(d.delay)
	return d.File.Sync()
}

// storeBenchTxs pre-builds (and signs) the workload so the measured
// section is appends only.
func storeBenchTxs(key *identity.KeyPair, submitters, per int) [][]*txn.Transaction {
	out := make([][]*txn.Transaction, submitters)
	for s := 0; s < submitters; s++ {
		out[s] = make([]*txn.Transaction, per)
		for i := 0; i < per; i++ {
			t := &txn.Transaction{
				Trunk:     hashutil.Sum([]byte("trunk")),
				Branch:    hashutil.Sum([]byte("branch")),
				Timestamp: time.Unix(int64(s*per+i+1), 0),
				Kind:      txn.KindData,
				Payload:   []byte(fmt.Sprintf("storebench-%d-%d", s, i)),
				Nonce:     uint64(i),
			}
			t.Sign(key)
			out[s][i] = t
		}
	}
	return out
}

// runStoreBenchMode appends the workload with the given batch cap and
// returns the elapsed wall clock plus the committer's accounting.
func runStoreBenchMode(cfg StoreBenchConfig, txs [][]*txn.Transaction, maxBatch int) (time.Duration, store.BatchStats, error) {
	fs := &delayFS{FS: chaos.NewMemFS(cfg.Seed), delay: cfg.SyncDelay}
	l, err := store.OpenFS(fs, "bench.log", nil)
	if err != nil {
		return 0, store.BatchStats{}, err
	}
	defer l.Close()
	l.SetBatchConfig(store.BatchConfig{MaxBatch: maxBatch})

	var wg sync.WaitGroup
	errCh := make(chan error, len(txs))
	start := time.Now()
	for _, mine := range txs {
		mine := mine
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, t := range mine {
				if err := l.Append(t); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, store.BatchStats{}, err
	default:
	}
	return elapsed, l.BatchStats(), nil
}

// runStoreBenchCredit measures credit evaluation over a populated
// window, rescan vs incremental, under an advancing clock.
func runStoreBenchCredit(cfg StoreBenchConfig) (StoreBenchCredit, error) {
	ledger, err := core.NewLedger(core.DefaultParams())
	if err != nil {
		return StoreBenchCredit{}, err
	}
	params := ledger.Params()
	addr := identity.Address(hashutil.Sum([]byte("storebench-node")))
	base := time.Unix(1_700_000_000, 0)
	// Spread the records across the ΔT window ending at base.
	step := params.DeltaT / time.Duration(cfg.CreditWindowRecords+1)
	for i := 0; i < cfg.CreditWindowRecords; i++ {
		id := hashutil.Sum([]byte(fmt.Sprintf("sb-tx-%d", i)))
		ledger.RecordTransaction(addr, id, 1, base.Add(-params.DeltaT).Add(time.Duration(i+1)*step))
	}
	for i := 0; i < cfg.CreditEvents; i++ {
		ledger.RecordMalicious(addr, core.EventRecord{
			Behaviour: core.BehaviourLazyTips,
			At:        base.Add(-time.Duration(i+1) * time.Second),
		})
	}

	// Queries advance the clock a hair each time — the admission shape:
	// every submit asks DifficultyFor at a fresh instant.
	const advance = 50 * time.Microsecond

	now := base
	rescanStart := time.Now()
	for i := 0; i < cfg.CreditQueries; i++ {
		now = now.Add(advance)
		_ = ledger.RescanCredit(addr, now)
	}
	rescanNs := float64(time.Since(rescanStart).Nanoseconds()) / float64(cfg.CreditQueries)

	now = base
	ledger.CreditOf(addr, now) // establish the rolling window
	incStart := time.Now()
	for i := 0; i < cfg.CreditQueries; i++ {
		now = now.Add(advance)
		_ = ledger.CreditOf(addr, now)
	}
	incNs := float64(time.Since(incStart).Nanoseconds()) / float64(cfg.CreditQueries)

	speedup := 0.0
	if incNs > 0 {
		speedup = rescanNs / incNs
	}
	return StoreBenchCredit{
		WindowRecords:      cfg.CreditWindowRecords,
		Events:             cfg.CreditEvents,
		Queries:            cfg.CreditQueries,
		RescanNsPerOp:      rescanNs,
		IncrementalNsPerOp: incNs,
		Speedup:            speedup,
	}, nil
}

// RunStoreBench executes the durable-write and credit-query sweeps.
func RunStoreBench(ctx context.Context, cfg StoreBenchConfig) (*StoreBenchResult, error) {
	if len(cfg.SubmitterCounts) == 0 || cfg.RecordsPerSubmitter < 1 ||
		cfg.CreditWindowRecords < 1 || cfg.CreditQueries < 1 {
		return nil, fmt.Errorf("store bench workload too small")
	}
	key, err := identity.Generate()
	if err != nil {
		return nil, err
	}
	res := &StoreBenchResult{Config: cfg}
	for _, submitters := range cfg.SubmitterCounts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		txs := storeBenchTxs(key, submitters, cfg.RecordsPerSubmitter)
		records := submitters * cfg.RecordsPerSubmitter

		perElapsed, perStats, err := runStoreBenchMode(cfg, txs, 1)
		if err != nil {
			return nil, fmt.Errorf("submitters=%d per-record: %w", submitters, err)
		}
		grpElapsed, grpStats, err := runStoreBenchMode(cfg, txs, cfg.GroupMaxBatch)
		if err != nil {
			return nil, fmt.Errorf("submitters=%d grouped: %w", submitters, err)
		}

		perTPS := float64(records) / perElapsed.Seconds()
		grpTPS := float64(records) / grpElapsed.Seconds()
		meanBatch := 0.0
		if grpStats.Commits > 0 {
			meanBatch = float64(grpStats.Records) / float64(grpStats.Commits)
		}
		speedup := 0.0
		if perTPS > 0 {
			speedup = grpTPS / perTPS
		}
		res.Rows = append(res.Rows, StoreBenchRow{
			Submitters:        submitters,
			Records:           records,
			PerRecordTxPerSec: perTPS,
			PerRecordSyncs:    perStats.Commits,
			GroupedTxPerSec:   grpTPS,
			GroupedSyncs:      grpStats.Commits,
			MeanBatch:         meanBatch,
			Speedup:           speedup,
		})
		if submitters == cfg.HistogramAt {
			labels := store.BatchBucketLabels()
			for i, label := range labels {
				if grpStats.Hist[i] == 0 {
					continue
				}
				res.Histogram = append(res.Histogram, StoreBenchHistBucket{
					Bucket:  label,
					Commits: grpStats.Hist[i],
				})
			}
		}
	}

	credit, err := runStoreBenchCredit(cfg)
	if err != nil {
		return nil, fmt.Errorf("credit section: %w", err)
	}
	res.Credit = credit
	return res, nil
}

// Render writes the comparison as aligned tables.
func (r *StoreBenchResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Durable write path — per-record fsync vs group commit (modeled fsync %v, %d records/submitter)\n",
		r.Config.SyncDelay, r.Config.RecordsPerSubmitter); err != nil {
		return err
	}
	t := &table{header: []string{"submitters", "records", "per_record_tx_s", "syncs", "grouped_tx_s", "syncs", "mean_batch", "speedup"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Submitters),
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%.0f", row.PerRecordTxPerSec),
			fmt.Sprintf("%d", row.PerRecordSyncs),
			fmt.Sprintf("%.0f", row.GroupedTxPerSec),
			fmt.Sprintf("%d", row.GroupedSyncs),
			fmt.Sprintf("%.1f", row.MeanBatch),
			fmt.Sprintf("%.1fx", row.Speedup),
		)
	}
	if err := t.render(w); err != nil {
		return err
	}
	if len(r.Histogram) > 0 {
		if _, err := fmt.Fprintf(w, "\nBatch-size histogram at %d submitters (records per fsync)\n", r.Config.HistogramAt); err != nil {
			return err
		}
		h := &table{header: []string{"batch", "commits"}}
		for _, b := range r.Histogram {
			h.add(b.Bucket, fmt.Sprintf("%d", b.Commits))
		}
		if err := h.render(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"\nCredit query — full window rescan vs incremental rolling window (%d in-window records, %d events)\n",
		r.Credit.WindowRecords, r.Credit.Events); err != nil {
		return err
	}
	c := &table{header: []string{"mode", "ns_per_op"}}
	c.add("rescan", fmt.Sprintf("%.0f", r.Credit.RescanNsPerOp))
	c.add("incremental", fmt.Sprintf("%.0f", r.Credit.IncrementalNsPerOp))
	c.add("speedup", fmt.Sprintf("%.1fx", r.Credit.Speedup))
	return c.render(w)
}

// CSV writes the write-path sweep as CSV.
func (r *StoreBenchResult) CSV(w io.Writer) error {
	t := &table{header: []string{"submitters", "records", "per_record_tx_per_sec", "per_record_syncs", "grouped_tx_per_sec", "grouped_syncs", "mean_batch", "speedup"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Submitters),
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%.2f", row.PerRecordTxPerSec),
			fmt.Sprintf("%d", row.PerRecordSyncs),
			fmt.Sprintf("%.2f", row.GroupedTxPerSec),
			fmt.Sprintf("%d", row.GroupedSyncs),
			fmt.Sprintf("%.2f", row.MeanBatch),
			fmt.Sprintf("%.2f", row.Speedup))
	}
	return t.csv(w)
}

// JSON writes the comparison as a machine-readable snapshot
// (BENCH_store.json in the Makefile's bench-store target).
func (r *StoreBenchResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
