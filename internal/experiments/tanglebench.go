package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// TangleBenchConfig parameterizes the ledger hot-path benchmark: at each
// tangle size it measures attach cost and tip-selection latency for the
// uniform strategy and for the weighted walk with both start rules — the
// anchored walk (production path, starting at the confirmed frontier)
// and the genesis-started baseline it replaced. The anchored/genesis
// ratio is the headline: anchored walk latency stays flat as the tangle
// deepens while the genesis baseline scales with DAG depth.
type TangleBenchConfig struct {
	// Sizes lists the tangle sizes (attached transactions) to measure.
	Sizes []int
	// Selections is the number of SelectTips calls sampled per strategy
	// at each size (each call runs two walks).
	Selections int
}

// DefaultTangleBenchConfig sweeps to 10k vertices, the scale the
// acceptance snapshot (BENCH_tangle.json) is pinned at.
func DefaultTangleBenchConfig() TangleBenchConfig {
	return TangleBenchConfig{
		Sizes:      []int{1_000, 2_500, 5_000, 10_000},
		Selections: 300,
	}
}

// QuickTangleBenchConfig is a CI-friendly reduction.
func QuickTangleBenchConfig() TangleBenchConfig {
	return TangleBenchConfig{Sizes: []int{500, 2_000}, Selections: 100}
}

// TangleBenchRow is one tangle size's measurement.
type TangleBenchRow struct {
	Size int `json:"size"`
	// AttachNs is the mean wall-clock cost of one Attach while building
	// to this size (weight propagation dominates in a deep DAG).
	AttachNs float64 `json:"attach_ns"`
	// UniformNs / AnchoredNs / GenesisNs are mean SelectTips latencies
	// for uniform sampling, the anchored weighted walk, and the
	// genesis-started weighted-walk baseline.
	UniformNs  float64 `json:"uniform_ns"`
	AnchoredNs float64 `json:"anchored_walk_ns"`
	GenesisNs  float64 `json:"genesis_walk_ns"`
	// Speedup is GenesisNs / AnchoredNs — how much the anchor set buys
	// at this depth.
	Speedup float64 `json:"speedup"`
	// AnchoredMaxSteps / GenesisMaxSteps are the longest single walks
	// observed during the sample batches (from the ledger's
	// WalkLengthMax gauge): the structural reason for the speedup.
	AnchoredMaxSteps int64 `json:"anchored_max_steps"`
	GenesisMaxSteps  int64 `json:"genesis_max_steps"`
}

// TangleBenchResult is the depth-scaling curve.
type TangleBenchResult struct {
	Config TangleBenchConfig `json:"config"`
	Rows   []TangleBenchRow  `json:"rows"`
}

// RunTangleBench executes the sweep. Each size gets a fresh tangle built
// with uniform parent selection, which keeps the tip pool narrow and the
// DAG deep — the worst case for a genesis-started walk and therefore the
// honest setting for comparing it against the anchored walk.
func RunTangleBench(cfg TangleBenchConfig) (*TangleBenchResult, error) {
	if len(cfg.Sizes) == 0 || cfg.Selections < 1 {
		return nil, fmt.Errorf("tangle bench workload too small")
	}
	res := &TangleBenchResult{Config: cfg}
	for _, size := range cfg.Sizes {
		row, err := runTangleBenchSize(size, cfg.Selections)
		if err != nil {
			return nil, fmt.Errorf("size=%d: %w", size, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runTangleBenchSize(size, selections int) (TangleBenchRow, error) {
	key, err := identity.Generate()
	if err != nil {
		return TangleBenchRow{}, err
	}
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	tg, err := tangle.New(tangle.DefaultConfig(), key.Public(), vc)
	if err != nil {
		return TangleBenchRow{}, err
	}

	// Build with uniform parent selection. Transactions carry an issuer
	// but no signature — Attach verifies structure only, so the numbers
	// measure the ledger, not ECDSA.
	var attachTotal time.Duration
	for i := 0; i < size; i++ {
		trunk, branch, err := tg.SelectTips(tangle.StrategyUniform)
		if err != nil {
			return TangleBenchRow{}, err
		}
		vc.Advance(time.Second)
		tx := &txn.Transaction{
			Trunk:     trunk,
			Branch:    branch,
			Timestamp: vc.Now(),
			Kind:      txn.KindData,
			Issuer:    key.Public(),
			Payload:   []byte(fmt.Sprintf("bench-%d", i)),
		}
		start := time.Now()
		if _, err := tg.Attach(tx); err != nil {
			return TangleBenchRow{}, err
		}
		attachTotal += time.Since(start)
	}

	met := tg.Metrics()
	sample := func(sel func(tangle.TipStrategy) (hashutil.Hash, hashutil.Hash, error)) (float64, int64, error) {
		met.WalkLengthMax.Set(0)
		start := time.Now()
		for i := 0; i < selections; i++ {
			if _, _, err := sel(tangle.StrategyWeightedWalk); err != nil {
				return 0, 0, err
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(selections)
		return ns, met.WalkLengthMax.Value(), nil
	}

	anchoredNs, anchoredMax, err := sample(tg.SelectTips)
	if err != nil {
		return TangleBenchRow{}, err
	}
	genesisNs, genesisMax, err := sample(tg.SelectTipsGenesisWalk)
	if err != nil {
		return TangleBenchRow{}, err
	}

	start := time.Now()
	for i := 0; i < selections; i++ {
		if _, _, err := tg.SelectTips(tangle.StrategyUniform); err != nil {
			return TangleBenchRow{}, err
		}
	}
	uniformNs := float64(time.Since(start).Nanoseconds()) / float64(selections)

	speedup := 0.0
	if anchoredNs > 0 {
		speedup = genesisNs / anchoredNs
	}
	return TangleBenchRow{
		Size:             size,
		AttachNs:         float64(attachTotal.Nanoseconds()) / float64(size),
		UniformNs:        uniformNs,
		AnchoredNs:       anchoredNs,
		GenesisNs:        genesisNs,
		Speedup:          speedup,
		AnchoredMaxSteps: anchoredMax,
		GenesisMaxSteps:  genesisMax,
	}, nil
}

// Render writes the depth-scaling curve as an aligned table.
func (r *TangleBenchResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Tangle hot-path scaling — %d selections per strategy, uniform-built DAG\n",
		r.Config.Selections); err != nil {
		return err
	}
	t := &table{header: []string{"size", "attach_ns", "uniform_ns", "anchored_ns", "genesis_ns", "speedup", "anchored_max_steps", "genesis_max_steps"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Size),
			fmt.Sprintf("%.0f", row.AttachNs),
			fmt.Sprintf("%.0f", row.UniformNs),
			fmt.Sprintf("%.0f", row.AnchoredNs),
			fmt.Sprintf("%.0f", row.GenesisNs),
			fmt.Sprintf("%.1fx", row.Speedup),
			fmt.Sprintf("%d", row.AnchoredMaxSteps),
			fmt.Sprintf("%d", row.GenesisMaxSteps),
		)
	}
	return t.render(w)
}

// CSV writes the curve as CSV.
func (r *TangleBenchResult) CSV(w io.Writer) error {
	t := &table{header: []string{"size", "attach_ns", "uniform_ns", "anchored_ns", "genesis_ns", "speedup", "anchored_max_steps", "genesis_max_steps"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Size),
			fmt.Sprintf("%.0f", row.AttachNs),
			fmt.Sprintf("%.0f", row.UniformNs),
			fmt.Sprintf("%.0f", row.AnchoredNs),
			fmt.Sprintf("%.0f", row.GenesisNs),
			fmt.Sprintf("%.2f", row.Speedup),
			fmt.Sprintf("%d", row.AnchoredMaxSteps),
			fmt.Sprintf("%d", row.GenesisMaxSteps))
	}
	return t.csv(w)
}

// JSON writes the curve as a machine-readable snapshot
// (BENCH_tangle.json in the Makefile's bench target).
func (r *TangleBenchResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
