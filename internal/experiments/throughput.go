package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/chainbc"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/metrics"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/pow"
	"github.com/b-iot/biot/internal/txn"
)

// ThroughputConfig parameterizes the DAG-vs-chain comparison behind the
// paper's §II claim: "synchronous consensus mechanisms limit the system
// throughput, i.e., transactions only can be validated one by one",
// while the tangle's asynchronous consensus lets independent devices
// attach concurrently.
//
// Fairness: each DAG transaction carries difficulty TxDifficulty; each
// chain block carries BlockDifficulty over batches of ≤ BlockTxs, chosen
// so expected hash work per transaction is comparable
// (BlockDifficulty ≈ TxDifficulty + log2(BlockTxs)).
type ThroughputConfig struct {
	Devices     int
	TxPerDevice int
	// TxDifficulty is the per-transaction PoW difficulty (both systems
	// validate transaction signatures; the DAG also mines per-tx).
	TxDifficulty int
	// BlockTxs and BlockDifficulty shape the baseline chain.
	BlockTxs        int
	BlockDifficulty int
	// PayloadBytes sizes each data payload.
	PayloadBytes int
}

// DefaultThroughputConfig compares 8 devices × 25 transactions with
// difficulties high enough that hash work (not framework overhead)
// dominates — the regime the paper's challenge 3 is about.
func DefaultThroughputConfig() ThroughputConfig {
	return ThroughputConfig{
		Devices:         8,
		TxPerDevice:     25,
		TxDifficulty:    14,
		BlockTxs:        16,
		BlockDifficulty: 18,
		PayloadBytes:    128,
	}
}

// QuickThroughputConfig is a CI-friendly reduction.
func QuickThroughputConfig() ThroughputConfig {
	return ThroughputConfig{
		Devices:         4,
		TxPerDevice:     10,
		TxDifficulty:    10,
		BlockTxs:        8,
		BlockDifficulty: 13,
		PayloadBytes:    64,
	}
}

// ThroughputRow is one system's measurement.
type ThroughputRow struct {
	System       string
	Transactions int
	Elapsed      time.Duration
	TPS          float64
	// MeanAccept and P95Accept measure submission→acceptance latency:
	// for the tangle a transaction is accepted as soon as its own PoW
	// and admission complete (asynchronous consensus); on the chain it
	// waits in the mempool until its block is mined (synchronous,
	// "validated one by one") — the paper's challenge-3 gap.
	MeanAccept time.Duration
	P95Accept  time.Duration
	// ConfirmedFrac is the fraction of submitted transactions that
	// reached the system's confirmation criterion by the end of the
	// run (tangle: cumulative weight; chain: block inclusion).
	ConfirmedFrac float64
}

// ThroughputResult is the comparison.
type ThroughputResult struct {
	Config ThroughputConfig
	Rows   []ThroughputRow
}

// RunThroughput measures both systems under the same device workload.
func RunThroughput(ctx context.Context, cfg ThroughputConfig) (*ThroughputResult, error) {
	if cfg.Devices < 1 || cfg.TxPerDevice < 1 {
		return nil, fmt.Errorf("throughput workload must be positive")
	}
	res := &ThroughputResult{Config: cfg}

	dagRow, err := runDAGThroughput(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("dag throughput: %w", err)
	}
	res.Rows = append(res.Rows, dagRow)

	chainRow, err := runChainThroughput(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("chain throughput: %w", err)
	}
	res.Rows = append(res.Rows, chainRow)
	return res, nil
}

func runDAGThroughput(ctx context.Context, cfg ThroughputConfig) (ThroughputRow, error) {
	managerKey, err := identity.Generate()
	if err != nil {
		return ThroughputRow{}, err
	}
	params := core.DefaultParams()
	params.InitialDifficulty = cfg.TxDifficulty
	params.MinDifficulty = 1
	params.MaxDifficulty = pow.MaxDifficulty
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     params,
		// Static difficulty isolates raw ledger throughput from the
		// credit mechanism's honest-node speedup (measured separately
		// in Fig 9).
		Policy: core.StaticPolicy{Difficulty: cfg.TxDifficulty},
	})
	if err != nil {
		return ThroughputRow{}, err
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		return ThroughputRow{}, err
	}

	devices := make([]*node.LightNode, cfg.Devices)
	for i := range devices {
		key, err := identity.Generate()
		if err != nil {
			return ThroughputRow{}, err
		}
		mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
		devices[i], err = node.NewLight(node.LightConfig{Key: key, Gateway: full})
		if err != nil {
			return ThroughputRow{}, err
		}
	}
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		return ThroughputRow{}, err
	}

	payload := make([]byte, cfg.PayloadBytes)
	total := cfg.Devices * cfg.TxPerDevice
	accept := &metrics.Histogram{}
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Devices)
	for _, dev := range devices {
		dev := dev
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.TxPerDevice; i++ {
				txStart := time.Now()
				if _, err := dev.PostReading(ctx, payload); err != nil {
					errCh <- err
					return
				}
				accept.Observe(time.Since(txStart))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return ThroughputRow{}, err
	default:
	}

	stats := full.Tangle().StatsNow()
	confirmed := float64(stats.Confirmed-2) / float64(total) // minus genesis
	if confirmed < 0 {
		confirmed = 0
	}
	sum := accept.Summarize()
	return ThroughputRow{
		System:        "DAG tangle (async)",
		Transactions:  total,
		Elapsed:       elapsed,
		TPS:           float64(total) / elapsed.Seconds(),
		MeanAccept:    sum.Mean,
		P95Accept:     sum.P95,
		ConfirmedFrac: confirmed,
	}, nil
}

func runChainThroughput(ctx context.Context, cfg ThroughputConfig) (ThroughputRow, error) {
	chain, err := chainbc.New(chainbc.Config{
		Difficulty:    cfg.BlockDifficulty,
		MaxTxPerBlock: cfg.BlockTxs,
	}, nil)
	if err != nil {
		return ThroughputRow{}, err
	}

	// Pre-build the identical workload: signed data transactions.
	// Chain transactions reuse the tangle encoding; parents are unused
	// by the chain but must be non-zero to pass structural validation.
	keys := make([]*identity.KeyPair, cfg.Devices)
	for i := range keys {
		if keys[i], err = identity.Generate(); err != nil {
			return ThroughputRow{}, err
		}
	}
	parent := txn.PowDigest(txnSeedHash("chain-parent-1"), txnSeedHash("chain-parent-2"), 0)
	payload := make([]byte, cfg.PayloadBytes)
	total := cfg.Devices * cfg.TxPerDevice

	txs := make([]*txn.Transaction, 0, total)
	for d, key := range keys {
		for i := 0; i < cfg.TxPerDevice; i++ {
			t := &txn.Transaction{
				Trunk:     parent,
				Branch:    parent,
				Timestamp: time.Now(),
				Kind:      txn.KindData,
				Payload:   append([]byte(nil), payload...),
				Nonce:     uint64(d*cfg.TxPerDevice + i),
			}
			t.Sign(key)
			txs = append(txs, t)
		}
	}

	accept := &metrics.Histogram{}
	start := time.Now()
	// Synchronous consensus: admit txs one by one into the mempool and
	// mine sequentially — a block must complete before the next batch.
	for _, t := range txs {
		if err := chain.SubmitTx(t); err != nil {
			return ThroughputRow{}, err
		}
	}
	mined := 0
	for chain.MempoolLen() > 0 {
		if err := ctx.Err(); err != nil {
			return ThroughputRow{}, err
		}
		block, err := chain.MineBlock(ctx)
		if err != nil {
			return ThroughputRow{}, err
		}
		mined += len(block.Txs)
		// Every transaction in this block waited in the mempool since
		// submission: its acceptance latency is the elapsed time to
		// the block that finally carried it.
		blockDone := time.Since(start)
		for range block.Txs {
			accept.Observe(blockDone)
		}
	}
	elapsed := time.Since(start)

	confirmed := 0
	for _, t := range txs {
		if chain.OnMainChain(t.ID()) {
			confirmed++
		}
	}
	sum := accept.Summarize()
	return ThroughputRow{
		System:        "chain blockchain (sync)",
		Transactions:  total,
		Elapsed:       elapsed,
		TPS:           float64(total) / elapsed.Seconds(),
		MeanAccept:    sum.Mean,
		P95Accept:     sum.P95,
		ConfirmedFrac: float64(confirmed) / float64(total),
	}, nil
}

func txnSeedHash(s string) (h [32]byte) {
	copy(h[:], s)
	return h
}

// Render writes the comparison as an aligned table.
func (r *ThroughputResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Throughput — DAG vs chain, %d devices × %d txs (tx difficulty %d, block difficulty %d)\n",
		r.Config.Devices, r.Config.TxPerDevice, r.Config.TxDifficulty, r.Config.BlockDifficulty); err != nil {
		return err
	}
	t := &table{header: []string{"system", "txs", "elapsed_s", "tps", "mean_accept_s", "p95_accept_s", "confirmed_frac"}}
	for _, row := range r.Rows {
		t.add(
			row.System,
			fmt.Sprintf("%d", row.Transactions),
			fsec(row.Elapsed),
			fmt.Sprintf("%.1f", row.TPS),
			fsec(row.MeanAccept),
			fsec(row.P95Accept),
			fmt.Sprintf("%.2f", row.ConfirmedFrac),
		)
	}
	return t.render(w)
}

// CSV writes the comparison as CSV.
func (r *ThroughputResult) CSV(w io.Writer) error {
	t := &table{header: []string{"system", "txs", "elapsed_s", "tps", "mean_accept_s", "p95_accept_s", "confirmed_frac"}}
	for _, row := range r.Rows {
		t.add(row.System,
			fmt.Sprintf("%d", row.Transactions),
			fsec(row.Elapsed),
			fmt.Sprintf("%.1f", row.TPS),
			fsec(row.MeanAccept),
			fsec(row.P95Accept),
			fmt.Sprintf("%.2f", row.ConfirmedFrac))
	}
	return t.csv(w)
}
