package gossip

import (
	"context"
	"sync"
	"testing"
	"time"
)

// benchFleet stands up one sender plus `peers` acking receivers on
// loopback and returns the sender.
func benchFleet(b *testing.B, peers int, opts ...TCPOption) *TCPNetwork {
	b.Helper()
	ack := HandlerFunc(func(string, Message) (*Message, error) { return &Message{}, nil })
	sender, err := ListenTCP("127.0.0.1:0", opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = sender.Close() })
	sender.SetHandler(ack)
	for i := 0; i < peers; i++ {
		r, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = r.Close() })
		r.SetHandler(ack)
		sender.AddPeer(r.Self())
	}
	return sender
}

func benchMessage() Message {
	batch := make([][]byte, 16)
	for i := range batch {
		tx := make([]byte, 160)
		for j := range tx {
			tx[j] = byte(i + j)
		}
		batch[i] = tx
	}
	return Message{Type: MsgTransaction, TxData: batch}
}

func benchmarkBroadcast(b *testing.B, peers int, opts ...TCPOption) {
	sender := benchFleet(b, peers, opts...)
	msg := benchMessage()
	ctx := context.Background()
	// Warm-up pays first-dial costs outside the measurement.
	if err := sender.Broadcast(ctx, msg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sender.Broadcast(ctx, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGossipBroadcastPooled8 vs BenchmarkGossipBroadcastOneShot8
// is the transport's headline pair: persistent multiplexed connections
// with concurrent fan-out against dial-per-exchange with a serial peer
// walk, both over the identical frame protocol.
func BenchmarkGossipBroadcastPooled8(b *testing.B)  { benchmarkBroadcast(b, 8) }
func BenchmarkGossipBroadcastOneShot8(b *testing.B) { benchmarkBroadcast(b, 8, WithoutPooling()) }
func BenchmarkGossipBroadcastPooled2(b *testing.B)  { benchmarkBroadcast(b, 2) }
func BenchmarkGossipBroadcastOneShot2(b *testing.B) { benchmarkBroadcast(b, 2, WithoutPooling()) }

func benchmarkRequest(b *testing.B, opts ...TCPOption) {
	sender := benchFleet(b, 1, opts...)
	peer := sender.Peers()[0]
	msg := benchMessage()
	ctx := context.Background()
	if _, err := sender.Request(ctx, peer, msg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sender.Request(ctx, peer, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGossipRequestPooled(b *testing.B)  { benchmarkRequest(b) }
func BenchmarkGossipRequestOneShot(b *testing.B) { benchmarkRequest(b, WithoutPooling()) }

// BenchmarkGossipRequestMultiplexed drives many concurrent exchanges
// over one pooled connection — the multiplexing depth a full node's
// parallel inbound pipeline generates during sync.
func BenchmarkGossipRequestMultiplexed(b *testing.B) {
	sender := benchFleet(b, 1, WithIOTimeout(30*time.Second))
	peer := sender.Peers()[0]
	msg := benchMessage()
	ctx := context.Background()
	if _, err := sender.Request(ctx, peer, msg); err != nil {
		b.Fatal(err)
	}
	const depth = 16
	b.ResetTimer()
	for i := 0; i < b.N; i += depth {
		var wg sync.WaitGroup
		n := depth
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := sender.Request(ctx, peer, msg); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}
