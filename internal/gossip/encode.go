package gossip

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/b-iot/biot/internal/hashutil"
)

// Canonical binary codec for Message. One encoded Message is one
// datagram on the wire; TxData carries any number of transaction
// encodings, so a single datagram batches an arbitrary number of
// gossiped transactions (the node layer's broadcaster coalesces its
// queue into such batches).
//
// Layout (all integers are minimally encoded uvarints):
//
//	magic 0xB1 0x07 | version 0x03 | type | txCount | {len | bytes}* | haveCount | {32-byte hash}* | offset | total | more | shard | scoped
//
// The codec is bijective on its accepted set: any input DecodeMessage
// accepts re-encodes to the identical byte string. That property is
// fuzz-enforced and is what makes the format safe to hash, dedupe or
// journal.

const (
	encMagic0  = 0xB1
	encMagic1  = 0x07
	encVersion = 0x03

	// MaxMessageBytes bounds one datagram: framing rejects anything
	// larger before buffering it (flood defense on the TCP transport).
	MaxMessageBytes = 8 << 20
)

// Codec errors.
var (
	ErrBadMessage  = errors.New("malformed gossip message")
	ErrMessageSize = errors.New("gossip message exceeds size limit")
)

// EncodeMessage renders msg in the canonical binary form.
func EncodeMessage(msg Message) []byte {
	size := 3 + binary.MaxVarintLen64*7
	for _, tx := range msg.TxData {
		size += binary.MaxVarintLen64 + len(tx)
	}
	size += binary.MaxVarintLen64 + len(msg.Have)*hashutil.Size
	out := make([]byte, 0, size)

	out = append(out, encMagic0, encMagic1, encVersion)
	out = binary.AppendUvarint(out, uint64(msg.Type))
	out = binary.AppendUvarint(out, uint64(len(msg.TxData)))
	for _, tx := range msg.TxData {
		out = binary.AppendUvarint(out, uint64(len(tx)))
		out = append(out, tx...)
	}
	out = binary.AppendUvarint(out, uint64(len(msg.Have)))
	for _, h := range msg.Have {
		out = append(out, h[:]...)
	}
	out = binary.AppendUvarint(out, msg.Offset)
	out = binary.AppendUvarint(out, msg.Total)
	more := uint64(0)
	if msg.More {
		more = 1
	}
	out = binary.AppendUvarint(out, more)
	out = binary.AppendUvarint(out, msg.Shard)
	scoped := uint64(0)
	if msg.Scoped {
		scoped = 1
	}
	out = binary.AppendUvarint(out, scoped)
	return out
}

// uvarint reads a minimally encoded uvarint; non-minimal encodings are
// rejected so every accepted message has exactly one byte form.
func uvarint(buf []byte) (uint64, int, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: truncated varint", ErrBadMessage)
	}
	if n > 1 && buf[n-1] == 0 {
		return 0, 0, fmt.Errorf("%w: non-minimal varint", ErrBadMessage)
	}
	return v, n, nil
}

// DecodeMessage parses the canonical binary form. Inputs with trailing
// bytes, oversized counts or non-minimal varints are rejected.
func DecodeMessage(data []byte) (Message, error) {
	if len(data) > MaxMessageBytes {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrMessageSize, len(data))
	}
	if len(data) < 3 || data[0] != encMagic0 || data[1] != encMagic1 {
		return Message{}, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	if data[2] != encVersion {
		return Message{}, fmt.Errorf("%w: unsupported version %d", ErrBadMessage, data[2])
	}
	rest := data[3:]

	typ, n, err := uvarint(rest)
	if err != nil {
		return Message{}, err
	}
	rest = rest[n:]

	txCount, n, err := uvarint(rest)
	if err != nil {
		return Message{}, err
	}
	rest = rest[n:]
	// Each entry needs at least its one-byte length prefix; this bounds
	// the allocation below by the input length.
	if txCount > uint64(len(rest)) {
		return Message{}, fmt.Errorf("%w: tx count %d exceeds payload", ErrBadMessage, txCount)
	}
	var txData [][]byte
	if txCount > 0 {
		txData = make([][]byte, 0, txCount)
	}
	for i := uint64(0); i < txCount; i++ {
		l, n, err := uvarint(rest)
		if err != nil {
			return Message{}, err
		}
		rest = rest[n:]
		if l > uint64(len(rest)) {
			return Message{}, fmt.Errorf("%w: tx entry truncated", ErrBadMessage)
		}
		// Zero-copy: each entry aliases the input datagram (cap-clipped
		// so appends cannot bleed into the next entry). Frames arrive in
		// per-message buffers and txn.Decode takes its own copy, so the
		// only cost of aliasing is keeping the datagram alive until its
		// transactions are decoded — which the handler does immediately.
		txData = append(txData, rest[:l:l])
		rest = rest[l:]
	}

	haveCount, n, err := uvarint(rest)
	if err != nil {
		return Message{}, err
	}
	rest = rest[n:]
	if haveCount > uint64(len(rest)/hashutil.Size) {
		return Message{}, fmt.Errorf("%w: have section truncated", ErrBadMessage)
	}
	var have []hashutil.Hash
	if haveCount > 0 {
		have = make([]hashutil.Hash, haveCount)
		for i := range have {
			copy(have[i][:], rest[:hashutil.Size])
			rest = rest[hashutil.Size:]
		}
	}

	offset, n, err := uvarint(rest)
	if err != nil {
		return Message{}, err
	}
	rest = rest[n:]
	total, n, err := uvarint(rest)
	if err != nil {
		return Message{}, err
	}
	rest = rest[n:]
	more, n, err := uvarint(rest)
	if err != nil {
		return Message{}, err
	}
	rest = rest[n:]
	// more is a canonical boolean; anything else breaks the
	// one-input-one-encoding bijection.
	if more > 1 {
		return Message{}, fmt.Errorf("%w: non-boolean more flag", ErrBadMessage)
	}
	shard, n, err := uvarint(rest)
	if err != nil {
		return Message{}, err
	}
	rest = rest[n:]
	scoped, n, err := uvarint(rest)
	if err != nil {
		return Message{}, err
	}
	rest = rest[n:]
	if scoped > 1 {
		return Message{}, fmt.Errorf("%w: non-boolean scoped flag", ErrBadMessage)
	}
	// An unscoped message has no namespace, so a nonzero shard there
	// would give one logical message two encodings; reject it to keep
	// the codec canonical.
	if scoped == 0 && shard != 0 {
		return Message{}, fmt.Errorf("%w: shard set on unscoped message", ErrBadMessage)
	}
	if len(rest) != 0 {
		return Message{}, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(rest))
	}
	return Message{Type: MsgType(typ), TxData: txData, Have: have, Offset: offset, Total: total, More: more == 1, Shard: shard, Scoped: scoped == 1}, nil
}
