package gossip

import (
	"bytes"
	"errors"
	"testing"

	"github.com/b-iot/biot/internal/hashutil"
)

func sampleMessages() []Message {
	return []Message{
		{},
		{Type: MsgTransaction, TxData: [][]byte{{1, 2, 3}}},
		{Type: MsgTransaction, TxData: [][]byte{{1}, {2, 2}, {}, bytes.Repeat([]byte{0xAB}, 300)}},
		{Type: MsgSyncRequest, Have: []hashutil.Hash{hashutil.Sum([]byte("a")), hashutil.Sum([]byte("b"))}},
		{Type: MsgSyncResponse, TxData: [][]byte{bytes.Repeat([]byte{7}, 1000)}, Have: []hashutil.Hash{{}}},
		{Type: MsgSyncRequest, Have: []hashutil.Hash{hashutil.Sum([]byte("c"))}, Offset: 4096},
		{Type: MsgSyncResponse, TxData: [][]byte{{9}}, Offset: 4352, Total: 1 << 33, More: true},
		{Type: MsgSyncResponse, Offset: 1, Total: 1},
		{Type: MsgTransaction, TxData: [][]byte{{4, 5}}, Shard: 3, Scoped: true},
		{Type: MsgSyncRequest, Have: []hashutil.Hash{hashutil.Sum([]byte("d"))}, Offset: 16, Shard: 0, Scoped: true},
		{Type: MsgSyncResponse, TxData: [][]byte{{6}}, Offset: 1, Total: 9, More: true, Shard: 1 << 20, Scoped: true},
		{Type: MsgCreditRequest, Offset: 128, Shard: 2, Scoped: true},
		{Type: MsgCreditResponse, TxData: [][]byte{[]byte(`{"accounts":[]}`)}, Total: 5, Shard: 2, Scoped: true},
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	for i, msg := range sampleMessages() {
		raw := EncodeMessage(msg)
		got, err := DecodeMessage(raw)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Type != msg.Type || len(got.TxData) != len(msg.TxData) || len(got.Have) != len(msg.Have) {
			t.Fatalf("case %d: round trip mismatch: %+v vs %+v", i, got, msg)
		}
		if got.Offset != msg.Offset || got.Total != msg.Total || got.More != msg.More {
			t.Fatalf("case %d: paging fields mismatch: %+v vs %+v", i, got, msg)
		}
		if got.Shard != msg.Shard || got.Scoped != msg.Scoped {
			t.Fatalf("case %d: shard fields mismatch: %+v vs %+v", i, got, msg)
		}
		for j := range msg.TxData {
			if !bytes.Equal(got.TxData[j], msg.TxData[j]) {
				t.Errorf("case %d: tx %d mismatch", i, j)
			}
		}
		for j := range msg.Have {
			if got.Have[j] != msg.Have[j] {
				t.Errorf("case %d: have %d mismatch", i, j)
			}
		}
		// Canonical: re-encode reproduces the exact bytes.
		if !bytes.Equal(EncodeMessage(got), raw) {
			t.Errorf("case %d: re-encode differs", i)
		}
	}
}

func TestMessageDecodeRejects(t *testing.T) {
	valid := EncodeMessage(Message{Type: MsgTransaction, TxData: [][]byte{{1, 2}}})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte{0x00, 0x01, 0x01, 0x01, 0x00, 0x00}},
		{"bad version", []byte{encMagic0, encMagic1, 0x7F, 0x01, 0x00, 0x00}},
		{"truncated header", valid[:2]},
		{"truncated body", valid[:len(valid)-1]},
		{"trailing byte", append(append([]byte(nil), valid...), 0x00)},
		{"tx count exceeds payload", []byte{encMagic0, encMagic1, encVersion, 0x01, 0xFF, 0x01, 0x00}},
		{"non-minimal varint", []byte{encMagic0, encMagic1, encVersion, 0x81, 0x00, 0x00, 0x00}},
		{"missing paging fields", EncodeMessage(Message{Type: MsgSyncResponse})[:5]},
		{"non-boolean more flag", append(EncodeMessage(Message{Type: MsgSyncRequest})[:8], 0x02)},
		{"non-boolean scoped flag", append(EncodeMessage(Message{Type: MsgSyncRequest})[:10], 0x02)},
		{"shard set on unscoped message", append(append(EncodeMessage(Message{Type: MsgSyncRequest})[:9], 0x01), 0x00)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeMessage(tc.data); !errors.Is(err, ErrBadMessage) {
				t.Errorf("err = %v, want ErrBadMessage", err)
			}
		})
	}
}

func TestMessageDecodeSizeLimit(t *testing.T) {
	huge := make([]byte, MaxMessageBytes+1)
	if _, err := DecodeMessage(huge); !errors.Is(err, ErrMessageSize) {
		t.Errorf("err = %v, want ErrMessageSize", err)
	}
}
