package gossip

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Mux frame layer: the unit of the persistent transport. One TCP
// connection carries any number of frames in each direction; a request
// ID ties a response frame back to the request it answers, so multiple
// exchanges are in flight over one socket at once.
//
// Layout:
//
//	4-byte big-endian body length | 1-byte kind | 8-byte big-endian request id | message bytes
//
// The body length counts everything after the length word (kind + id +
// message). Bodies above MaxMessageBytes+frameOverhead are rejected
// before buffering, exactly like the one-shot framing this replaces.
// Ping frames carry an empty message: they only refresh the receiver's
// idle deadline and prove the socket is still writable.

const (
	// frameOverhead is the kind byte plus the request-id word.
	frameOverhead = 1 + 8

	// FrameRequest carries an encoded Message expecting a response with
	// the same request id.
	FrameRequest byte = 1
	// FrameResponse carries the encoded reply Message for the request id.
	FrameResponse byte = 2
	// FramePing is an empty keepalive; it is never answered.
	FramePing byte = 3
)

// ErrBadFrame reports a malformed mux frame.
var ErrBadFrame = errors.New("malformed gossip frame")

// EncodeFrame renders one mux frame (length word included).
func EncodeFrame(kind byte, id uint64, payload []byte) []byte {
	out := make([]byte, 4+frameOverhead+len(payload))
	binary.BigEndian.PutUint32(out, uint32(frameOverhead+len(payload)))
	out[4] = kind
	binary.BigEndian.PutUint64(out[5:], id)
	copy(out[4+frameOverhead:], payload)
	return out
}

// DecodeFrame parses exactly one complete frame. Trailing bytes, unknown
// kinds, oversized bodies, ping frames with payloads and truncated
// inputs are rejected; on success the frame re-encodes to the identical
// byte string (fuzz-enforced).
func DecodeFrame(data []byte) (kind byte, id uint64, payload []byte, err error) {
	if len(data) < 4+frameOverhead {
		return 0, 0, nil, fmt.Errorf("%w: truncated header", ErrBadFrame)
	}
	body := binary.BigEndian.Uint32(data)
	if body > MaxMessageBytes+frameOverhead {
		return 0, 0, nil, fmt.Errorf("%w: frame body of %d bytes", ErrMessageSize, body)
	}
	if body < frameOverhead || uint64(len(data)) != 4+uint64(body) {
		return 0, 0, nil, fmt.Errorf("%w: length mismatch", ErrBadFrame)
	}
	kind = data[4]
	if kind != FrameRequest && kind != FrameResponse && kind != FramePing {
		return 0, 0, nil, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, kind)
	}
	id = binary.BigEndian.Uint64(data[5:])
	payload = append([]byte(nil), data[4+frameOverhead:]...)
	if kind == FramePing && len(payload) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: ping with payload", ErrBadFrame)
	}
	return kind, id, payload, nil
}

// writeFrame sends one mux frame over conn, serialization left to the
// caller. Returns the number of wire bytes written.
func writeFrame(conn net.Conn, kind byte, id uint64, payload []byte) (int, error) {
	frame := EncodeFrame(kind, id, payload)
	nw, err := conn.Write(frame)
	return nw, err
}

// readFrame receives one mux frame, rejecting oversized bodies before
// buffering them. Returns the wire size consumed alongside the frame.
func readFrame(reader *bufio.Reader) (kind byte, id uint64, payload []byte, wire int, err error) {
	var hdr [4 + frameOverhead]byte
	if _, err := io.ReadFull(reader, hdr[:]); err != nil {
		return 0, 0, nil, 0, err
	}
	body := binary.BigEndian.Uint32(hdr[:4])
	if body > MaxMessageBytes+frameOverhead {
		return 0, 0, nil, 0, fmt.Errorf("%w: frame body of %d bytes", ErrMessageSize, body)
	}
	if body < frameOverhead {
		return 0, 0, nil, 0, fmt.Errorf("%w: length mismatch", ErrBadFrame)
	}
	kind = hdr[4]
	if kind != FrameRequest && kind != FrameResponse && kind != FramePing {
		return 0, 0, nil, 0, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, kind)
	}
	id = binary.BigEndian.Uint64(hdr[5:])
	payload = make([]byte, body-frameOverhead)
	if _, err := io.ReadFull(reader, payload); err != nil {
		return 0, 0, nil, 0, err
	}
	if kind == FramePing && len(payload) != 0 {
		return 0, 0, nil, 0, fmt.Errorf("%w: ping with payload", ErrBadFrame)
	}
	return kind, id, payload, int(4 + body), nil
}
