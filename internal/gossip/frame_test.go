package gossip

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		kind    byte
		id      uint64
		payload []byte
	}{
		{FrameRequest, 1, EncodeMessage(Message{Type: MsgTransaction, TxData: [][]byte{{1, 2, 3}}})},
		{FrameResponse, 1 << 40, EncodeMessage(Message{})},
		{FrameRequest, 0, nil},
		{FramePing, 0, nil},
	}
	for i, tc := range cases {
		raw := EncodeFrame(tc.kind, tc.id, tc.payload)
		kind, id, payload, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if kind != tc.kind || id != tc.id || !bytes.Equal(payload, tc.payload) {
			t.Errorf("case %d: round trip mismatch", i)
		}
		if !bytes.Equal(EncodeFrame(kind, id, payload), raw) {
			t.Errorf("case %d: re-encode differs", i)
		}
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	valid := EncodeFrame(FrameRequest, 7, []byte{1, 2, 3})
	oversized := make([]byte, 4)
	binary.BigEndian.PutUint32(oversized, uint32(MaxMessageBytes+frameOverhead+1))
	// EncodeFrame cannot build a ping with a payload, so hand-assemble
	// one: append a body byte and fix up the length word.
	ping := EncodeFrame(FramePing, 0, nil)
	ping = append(ping, 0xAA)
	binary.BigEndian.PutUint32(ping, uint32(frameOverhead+1))
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", valid[:4]},
		{"truncated body", valid[:len(valid)-1]},
		{"trailing byte", append(append([]byte(nil), valid...), 0x00)},
		{"length below overhead", []byte{0, 0, 0, 1, byte(FrameRequest)}},
		{"unknown kind", append([]byte{0, 0, 0, 9, 0xFF}, make([]byte, 8)...)},
		{"ping with payload", ping},
		{"oversized body", append(oversized, make([]byte, frameOverhead)...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := DecodeFrame(tc.data); err == nil {
				t.Error("decode accepted malformed frame")
			}
		})
	}
}

// TestTCPServerSurvivesTruncatedFrame writes a frame header promising
// more bytes than ever arrive. The server must drop that connection
// quietly and keep serving others.
func TestTCPServerSurvivesTruncatedFrame(t *testing.T) {
	a, _ := listenPooled(t)
	b, _ := listenPooled(t)
	a.AddPeer(b.Self())

	conn, err := dialRaw(b.Self())
	if err != nil {
		t.Fatal(err)
	}
	frame := EncodeFrame(FrameRequest, 9, EncodeMessage(Message{Type: MsgSyncRequest}))
	_, _ = conn.Write(frame[:len(frame)-3])
	_ = conn.Close()

	if _, err := a.Request(context.Background(), b.Self(), Message{Type: MsgSyncRequest}); err != nil {
		t.Errorf("request after truncated stream: %v", err)
	}
}

// TestTCPServerRejectsOversizedFrame sends a length word beyond the
// message bound; the server must refuse to buffer it and drop the
// connection without affecting other peers.
func TestTCPServerRejectsOversizedFrame(t *testing.T) {
	a, _ := listenPooled(t)
	b, _ := listenPooled(t)
	a.AddPeer(b.Self())

	conn, err := dialRaw(b.Self())
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4 + frameOverhead]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(MaxMessageBytes+frameOverhead+1))
	hdr[4] = FrameRequest
	_, _ = conn.Write(hdr[:])
	// The server must hang up on us rather than wait for 8 MiB.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, rerr := conn.Read(make([]byte, 1)); rerr == nil {
		t.Error("server kept the connection after an oversized frame")
	}
	_ = conn.Close()

	if _, err := a.Request(context.Background(), b.Self(), Message{Type: MsgSyncRequest}); err != nil {
		t.Errorf("request after oversized frame: %v", err)
	}
}

// TestTCPServerInterleavedFrames drives one raw connection through a
// ping, two interleaved requests and finally garbage: the pings are
// absorbed, both requests are answered with matching IDs, and the
// garbage only costs that connection.
func TestTCPServerInterleavedFrames(t *testing.T) {
	b, _ := listenPooled(t)
	b.SetHandler(&echoHandler{reply: &Message{Type: MsgSyncResponse}})

	conn, err := dialRaw(b.Self())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var buf bytes.Buffer
	buf.Write(EncodeFrame(FramePing, 0, nil))
	buf.Write(EncodeFrame(FrameRequest, 101, EncodeMessage(Message{Type: MsgSyncRequest})))
	buf.Write(EncodeFrame(FramePing, 0, nil))
	buf.Write(EncodeFrame(FrameRequest, 102, EncodeMessage(Message{Type: MsgSyncRequest})))
	if _, err := conn.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	got := map[uint64]bool{}
	raw := make([]byte, 0, 4096)
	chunk := make([]byte, 1024)
	for len(got) < 2 {
		nr, rerr := conn.Read(chunk)
		if rerr != nil {
			t.Fatalf("read responses: %v (got %v)", rerr, got)
		}
		raw = append(raw, chunk[:nr]...)
		for len(raw) >= 4 {
			body := binary.BigEndian.Uint32(raw)
			if uint64(len(raw)) < 4+uint64(body) {
				break
			}
			kind, id, payload, derr := DecodeFrame(raw[:4+body])
			if derr != nil {
				t.Fatalf("decode response frame: %v", derr)
			}
			if kind != FrameResponse {
				t.Fatalf("unexpected frame kind %d", kind)
			}
			msg, merr := DecodeMessage(payload)
			if merr != nil || msg.Type != MsgSyncResponse {
				t.Fatalf("bad response payload: %v %+v", merr, msg)
			}
			got[id] = true
			raw = raw[4+body:]
		}
	}
	if !got[101] || !got[102] {
		t.Fatalf("response ids = %v, want 101 and 102", got)
	}
}

// TestTCPCloseReleasesGoroutines exercises the full transport (pool,
// keepalive, server dispatch) and verifies Close joins every goroutine
// it started — the leak check the frame-robustness tests rely on.
func TestTCPCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	a, _ := listenPooled(t, WithKeepalive(10*time.Millisecond))
	b, _ := listenPooled(t, WithKeepalive(10*time.Millisecond))
	a.AddPeer(b.Self())
	b.AddPeer(a.Self())
	for i := 0; i < 5; i++ {
		if _, err := a.Request(context.Background(), b.Self(), Message{}); err != nil {
			t.Fatalf("request: %v", err)
		}
		if err := b.Broadcast(context.Background(), Message{Type: MsgTransaction}); err != nil {
			t.Fatalf("broadcast: %v", err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// FuzzDecodeFrame checks the mux frame layer never panics and is
// bijective on its accepted set, mirroring FuzzDecodeMessage one layer
// down the stack.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(EncodeFrame(FrameRequest, 1, EncodeMessage(Message{Type: MsgTransaction, TxData: [][]byte{{1, 2}}})))
	f.Add(EncodeFrame(FrameResponse, 1<<33, EncodeMessage(Message{})))
	f.Add(EncodeFrame(FramePing, 0, nil))
	f.Add(EncodeFrame(FrameRequest, 0, nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 9, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, id, payload, err := DecodeFrame(data)
		if err != nil {
			if errors.Is(err, ErrBadFrame) || errors.Is(err, ErrMessageSize) {
				return
			}
			t.Fatalf("unexpected error class: %v", err)
		}
		if !bytes.Equal(EncodeFrame(kind, id, payload), data) {
			t.Fatal("accepted frame does not round-trip")
		}
	})
}
