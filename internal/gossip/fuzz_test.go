package gossip_test

import (
	"bytes"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

// FuzzDecodeMessage checks that the batched gossip codec never panics
// and is bijective on its accepted set: any accepted input re-encodes to
// the identical byte string, and every carried transaction payload is
// itself safe to hand to the txn decoder (the exact path inbound gossip
// takes on a full node).
func FuzzDecodeMessage(f *testing.F) {
	key, err := identity.Generate()
	if err != nil {
		f.Fatal(err)
	}
	mkTx := func(payload string, nonce uint64) []byte {
		t := &txn.Transaction{
			Trunk:     hashutil.Sum([]byte("t")),
			Branch:    hashutil.Sum([]byte("b")),
			Timestamp: time.Unix(1_700_000_000, 42),
			Kind:      txn.KindData,
			Payload:   []byte(payload),
			Nonce:     nonce,
		}
		t.Sign(key)
		return t.Encode()
	}
	one := mkTx("sensor=temperature;value=20", 1)
	two := mkTx("sensor=vibration;value=0.7", 2)

	// Batched datagrams: multiple transactions per message, duplicated
	// payloads, truncated payloads, sync requests.
	f.Add(gossip.EncodeMessage(gossip.Message{Type: gossip.MsgTransaction, TxData: [][]byte{one}}))
	f.Add(gossip.EncodeMessage(gossip.Message{Type: gossip.MsgTransaction, TxData: [][]byte{one, two}}))
	f.Add(gossip.EncodeMessage(gossip.Message{Type: gossip.MsgTransaction, TxData: [][]byte{one, one, one}}))
	f.Add(gossip.EncodeMessage(gossip.Message{Type: gossip.MsgTransaction, TxData: [][]byte{one[:len(one)/2], two}}))
	f.Add(gossip.EncodeMessage(gossip.Message{Type: gossip.MsgTransaction, TxData: [][]byte{append(append([]byte(nil), one...), one...)}}))
	f.Add(gossip.EncodeMessage(gossip.Message{Type: gossip.MsgSyncRequest, Have: []hashutil.Hash{hashutil.Sum([]byte("h"))}}))
	f.Add(gossip.EncodeMessage(gossip.Message{Type: gossip.MsgSyncRequest, Have: []hashutil.Hash{hashutil.Sum([]byte("h"))}, Offset: 512}))
	f.Add(gossip.EncodeMessage(gossip.Message{Type: gossip.MsgSyncResponse, TxData: [][]byte{one}, Offset: 768, Total: 70_000, More: true}))
	f.Add(gossip.EncodeMessage(gossip.Message{}))
	f.Add([]byte{})
	f.Add([]byte{0xB1, 0x07, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := gossip.DecodeMessage(data)
		if err != nil {
			return
		}
		if !bytes.Equal(gossip.EncodeMessage(msg), data) {
			t.Fatalf("accepted message does not round-trip")
		}
		for _, raw := range msg.TxData {
			decoded, err := txn.Decode(raw)
			if err != nil {
				continue // a gateway skips undecodable entries
			}
			if !bytes.Equal(decoded.Encode(), raw) {
				t.Fatalf("accepted tx payload does not round-trip")
			}
		}
	})
}
