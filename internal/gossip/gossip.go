// Package gossip provides the broadcast network connecting B-IoT full
// nodes: "gateways ... keep the network secure and stable by
// broadcasting transactions and keeping copies of the blockchain"
// (paper §IV-A4).
//
// Two transports implement the same Network interface:
//
//   - Bus: an in-memory network for simulations and tests, with
//     configurable latency and partition injection;
//   - TCP: a line-delimited JSON protocol over real sockets, used by the
//     cmd/biot-node binary.
package gossip

import (
	"context"
	"errors"
	"fmt"

	"github.com/b-iot/biot/internal/hashutil"
)

// MsgType enumerates gossip message types.
type MsgType int

const (
	// MsgTransaction carries newly attached transactions.
	MsgTransaction MsgType = iota + 1
	// MsgSyncRequest asks a peer for transactions the sender is missing;
	// Have carries the IDs the sender already knows.
	MsgSyncRequest
	// MsgSyncResponse returns the requested transaction bytes.
	MsgSyncResponse
	// MsgSnapshotRequest asks a peer for its snapshot manifest: the
	// epoch boundary a fresh node can bootstrap from without replaying
	// pruned history.
	MsgSnapshotRequest
	// MsgSnapshotResponse carries the JSON-encoded manifest in
	// TxData[0].
	MsgSnapshotResponse
	// MsgAuthListRequest is the admission-evidence anti-entropy probe:
	// it asks a peer for the authorization-list transaction with the
	// sequence carried in Offset (every sequence is ledger-backed and
	// lists are retained across snapshots, so a gap is always
	// fillable).
	MsgAuthListRequest
	// MsgAuthListResponse returns the matching authorization-list
	// transaction encodings (empty when the responder lacks it too).
	MsgAuthListResponse
	// MsgCreditRequest asks a backbone peer for one page of its credit
	// digest: Offset is the requester's cursor into the responder's
	// account order.
	MsgCreditRequest
	// MsgCreditResponse carries one JSON-encoded core.CreditDigest page
	// in TxData[0]; Offset/Total/More page exactly like sync responses.
	MsgCreditResponse
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgTransaction:
		return "transaction"
	case MsgSyncRequest:
		return "sync-request"
	case MsgSyncResponse:
		return "sync-response"
	case MsgSnapshotRequest:
		return "snapshot-request"
	case MsgSnapshotResponse:
		return "snapshot-response"
	case MsgAuthListRequest:
		return "authlist-request"
	case MsgAuthListResponse:
		return "authlist-response"
	case MsgCreditRequest:
		return "credit-request"
	case MsgCreditResponse:
		return "credit-response"
	default:
		return fmt.Sprintf("msgtype(%d)", int(t))
	}
}

// Message is one gossip datagram.
type Message struct {
	Type MsgType `json:"type"`
	// TxData carries canonical transaction encodings (MsgTransaction,
	// MsgSyncResponse).
	TxData [][]byte `json:"tx_data,omitempty"`
	// Have carries known transaction IDs. Sync requests bound it to a
	// recent window (node.SyncHaveWindow) rather than the full ledger,
	// so sync message size stays constant as the DAG grows.
	Have []hashutil.Hash `json:"have,omitempty"`
	// Offset pages the sync exchange: on MsgSyncRequest it is the
	// requester's cursor into the responder's attachment order; on
	// MsgSyncResponse it is the next cursor to request.
	Offset uint64 `json:"offset,omitempty"`
	// Total is the responder's ledger size at response time; a total
	// below the requester's cursor signals the responder reset (restart,
	// snapshot) and the cursor rewinds.
	Total uint64 `json:"total,omitempty"`
	// More reports that the responder has pages beyond Offset.
	More bool `json:"more,omitempty"`
	// Shard is the tangle namespace the message is scoped to when
	// Scoped is set: transaction batches carry the namespace their
	// TxData belongs to, and scoped sync requests/responses page one
	// namespace's attachment order instead of the whole ledger.
	// Namespace 0 is the control plane (genesis, authorization lists),
	// namespaces >= 1 are region data shards.
	Shard uint64 `json:"shard,omitempty"`
	// Scoped distinguishes a namespace-scoped message from a legacy
	// whole-ledger one. An unscoped message must carry Shard == 0 (the
	// codec enforces this, keeping the encoding canonical).
	Scoped bool `json:"scoped,omitempty"`
}

// Handler is implemented by the full-node layer to consume gossip.
type Handler interface {
	// HandleGossip processes an incoming message and optionally returns
	// a reply (sync responses). from identifies the sending peer.
	HandleGossip(from string, msg Message) (*Message, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(from string, msg Message) (*Message, error)

var _ Handler = HandlerFunc(nil)

// HandleGossip implements Handler.
func (f HandlerFunc) HandleGossip(from string, msg Message) (*Message, error) {
	return f(from, msg)
}

// Network is a node's attachment to the gossip layer.
type Network interface {
	// Self returns this node's peer identifier (bus name or TCP addr).
	Self() string
	// Peers returns the currently known peer identifiers.
	Peers() []string
	// Broadcast delivers msg to every reachable peer. Per-peer failures
	// are collected; a broadcast succeeds if any peer was reached (or
	// there are no peers).
	Broadcast(ctx context.Context, msg Message) error
	// Request sends msg to one peer and waits for its reply.
	Request(ctx context.Context, peer string, msg Message) (Message, error)
	// SetHandler installs the inbound message handler. Must be called
	// before the network receives traffic.
	SetHandler(h Handler)
	// Close detaches from the network and releases resources.
	Close() error
}

// Common transport errors.
var (
	ErrNoHandler   = errors.New("gossip handler not installed")
	ErrUnknownPeer = errors.New("unknown gossip peer")
	ErrClosed      = errors.New("gossip network closed")
	ErrPartitioned = errors.New("peers are partitioned")
	ErrNoReply     = errors.New("peer returned no reply")
	// ErrBackoff reports an exchange refused because the peer's
	// reconnect backoff window has not elapsed yet (fail fast instead of
	// re-dialing a known-dead peer on every exchange).
	ErrBackoff = errors.New("peer dial backing off")
)
