package gossip

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Bus is an in-memory gossip fabric for simulations and tests. It
// supports latency injection and network partitions, and delivers
// messages synchronously in the caller's goroutine so simulations stay
// deterministic.
type Bus struct {
	mu         sync.RWMutex
	peers      map[string]*BusPeer
	latency    time.Duration
	partitions map[partitionKey]struct{}
	closed     bool
}

type partitionKey struct{ a, b string }

func keyFor(a, b string) partitionKey {
	if a > b {
		a, b = b, a
	}
	return partitionKey{a: a, b: b}
}

// NewBus creates an empty in-memory network.
func NewBus() *Bus {
	return &Bus{
		peers:      make(map[string]*BusPeer),
		partitions: make(map[partitionKey]struct{}),
	}
}

// SetLatency injects a fixed delivery delay for all messages.
func (b *Bus) SetLatency(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.latency = d
}

// Partition cuts the link between two peers (both directions).
func (b *Bus) Partition(a, c string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.partitions[keyFor(a, c)] = struct{}{}
}

// Heal restores the link between two peers.
func (b *Bus) Heal(a, c string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.partitions, keyFor(a, c))
}

// Isolate cuts every link to the named peer — the single-point-of-
// failure injector used by the security experiments.
func (b *Bus) Isolate(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for other := range b.peers {
		if other != name {
			b.partitions[keyFor(name, other)] = struct{}{}
		}
	}
}

// Restore heals every link to the named peer.
func (b *Bus) Restore(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for other := range b.peers {
		delete(b.partitions, keyFor(name, other))
	}
}

// Join attaches a new peer with the given unique name.
func (b *Bus) Join(name string) (*BusPeer, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if _, dup := b.peers[name]; dup {
		return nil, fmt.Errorf("peer %q already joined", name)
	}
	p := &BusPeer{bus: b, name: name}
	b.peers[name] = p
	return p, nil
}

func (b *Bus) reachable(from, to string) (*BusPeer, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrClosed
	}
	peer, ok := b.peers[to]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	if _, cut := b.partitions[keyFor(from, to)]; cut {
		return nil, fmt.Errorf("%w: %q ↮ %q", ErrPartitioned, from, to)
	}
	return peer, nil
}

// BusPeer is one node's attachment to a Bus.
type BusPeer struct {
	bus  *Bus
	name string

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

var _ Network = (*BusPeer)(nil)

// Self implements Network.
func (p *BusPeer) Self() string { return p.name }

// SetHandler implements Network.
func (p *BusPeer) SetHandler(h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handler = h
}

// Peers implements Network.
func (p *BusPeer) Peers() []string {
	p.bus.mu.RLock()
	defer p.bus.mu.RUnlock()
	// Not len-1: this peer may itself have left the bus already (an
	// async pipeline can ask for peers after Close).
	out := make([]string, 0, len(p.bus.peers))
	for name := range p.bus.peers {
		if name != p.name {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Broadcast implements Network: best-effort delivery to every reachable
// peer. It returns an error only when every delivery failed.
func (p *BusPeer) Broadcast(ctx context.Context, msg Message) error {
	peers := p.Peers()
	if len(peers) == 0 {
		return nil
	}
	var lastErr error
	delivered := 0
	for _, name := range peers {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := p.deliver(name, msg); err != nil {
			lastErr = err
			continue
		}
		delivered++
	}
	if delivered == 0 && lastErr != nil {
		return fmt.Errorf("broadcast reached no peers: %w", lastErr)
	}
	return nil
}

// Request implements Network.
func (p *BusPeer) Request(ctx context.Context, peer string, msg Message) (Message, error) {
	if err := ctx.Err(); err != nil {
		return Message{}, err
	}
	reply, err := p.deliver(peer, msg)
	if err != nil {
		return Message{}, err
	}
	if reply == nil {
		return Message{}, fmt.Errorf("%w: %q", ErrNoReply, peer)
	}
	return *reply, nil
}

func (p *BusPeer) deliver(to string, msg Message) (*Message, error) {
	p.mu.RLock()
	closed := p.closed
	p.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	target, err := p.bus.reachable(p.name, to)
	if err != nil {
		return nil, err
	}
	p.bus.mu.RLock()
	latency := p.bus.latency
	p.bus.mu.RUnlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	target.mu.RLock()
	h := target.handler
	targetClosed := target.closed
	target.mu.RUnlock()
	if targetClosed {
		return nil, fmt.Errorf("%w: %q", ErrClosed, to)
	}
	if h == nil {
		return nil, fmt.Errorf("%w on peer %q", ErrNoHandler, to)
	}
	return h.HandleGossip(p.name, msg)
}

// Close implements Network.
func (p *BusPeer) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()

	p.bus.mu.Lock()
	delete(p.bus.peers, p.name)
	p.bus.mu.Unlock()
	return nil
}

// ErrBusClosed reports operations on a closed bus.
var ErrBusClosed = errors.New("bus closed")

// Close shuts the whole bus down.
func (b *Bus) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.peers = make(map[string]*BusPeer)
	return nil
}
