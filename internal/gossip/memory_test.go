package gossip

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/b-iot/biot/internal/hashutil"
)

// echoHandler records received messages and returns a fixed reply.
type echoHandler struct {
	mu       sync.Mutex
	received []Message
	reply    *Message
}

func (h *echoHandler) HandleGossip(_ string, msg Message) (*Message, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.received = append(h.received, msg)
	return h.reply, nil
}

func (h *echoHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.received)
}

func join(t *testing.T, b *Bus, name string) (*BusPeer, *echoHandler) {
	t.Helper()
	p, err := b.Join(name)
	if err != nil {
		t.Fatalf("join %s: %v", name, err)
	}
	h := &echoHandler{reply: &Message{}}
	p.SetHandler(h)
	return p, h
}

func TestBusBroadcastReachesAllPeers(t *testing.T) {
	bus := NewBus()
	a, _ := join(t, bus, "a")
	_, hb := join(t, bus, "b")
	_, hc := join(t, bus, "c")

	msg := Message{Type: MsgTransaction, TxData: [][]byte{{1, 2, 3}}}
	if err := a.Broadcast(context.Background(), msg); err != nil {
		t.Fatal(err)
	}
	if hb.count() != 1 || hc.count() != 1 {
		t.Errorf("received: b=%d c=%d", hb.count(), hc.count())
	}
}

func TestBusRequestReply(t *testing.T) {
	bus := NewBus()
	a, _ := join(t, bus, "a")
	_, hb := join(t, bus, "b")
	hb.reply = &Message{Type: MsgSyncResponse, TxData: [][]byte{{9}}}

	reply, err := a.Request(context.Background(), "b", Message{Type: MsgSyncRequest})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgSyncResponse || len(reply.TxData) != 1 {
		t.Errorf("reply = %+v", reply)
	}
}

func TestBusPartitionAndHeal(t *testing.T) {
	bus := NewBus()
	a, _ := join(t, bus, "a")
	_, hb := join(t, bus, "b")

	bus.Partition("a", "b")
	if _, err := a.Request(context.Background(), "b", Message{Type: MsgSyncRequest}); !errors.Is(err, ErrPartitioned) {
		t.Errorf("err = %v, want ErrPartitioned", err)
	}
	// Broadcast to only-partitioned peers fails.
	if err := a.Broadcast(context.Background(), Message{Type: MsgTransaction}); err == nil {
		t.Error("broadcast succeeded with all peers partitioned")
	}

	bus.Heal("a", "b")
	if _, err := a.Request(context.Background(), "b", Message{Type: MsgSyncRequest}); err != nil {
		t.Errorf("after heal: %v", err)
	}
	if hb.count() != 1 {
		t.Errorf("b received %d", hb.count())
	}
}

func TestBusIsolateRestore(t *testing.T) {
	bus := NewBus()
	a, _ := join(t, bus, "a")
	_, hb := join(t, bus, "b")
	_, hc := join(t, bus, "c")

	bus.Isolate("b")
	if err := a.Broadcast(context.Background(), Message{Type: MsgTransaction}); err != nil {
		t.Fatalf("broadcast with one reachable peer: %v", err)
	}
	if hb.count() != 0 || hc.count() != 1 {
		t.Errorf("received: b=%d c=%d", hb.count(), hc.count())
	}
	bus.Restore("b")
	if err := a.Broadcast(context.Background(), Message{Type: MsgTransaction}); err != nil {
		t.Fatal(err)
	}
	if hb.count() != 1 {
		t.Errorf("b after restore = %d", hb.count())
	}
}

func TestBusUnknownPeer(t *testing.T) {
	bus := NewBus()
	a, _ := join(t, bus, "a")
	if _, err := a.Request(context.Background(), "ghost", Message{}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v", err)
	}
}

func TestBusNoHandler(t *testing.T) {
	bus := NewBus()
	a, _ := join(t, bus, "a")
	if _, err := bus.Join("bare"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request(context.Background(), "bare", Message{}); !errors.Is(err, ErrNoHandler) {
		t.Errorf("err = %v", err)
	}
}

func TestBusDuplicateName(t *testing.T) {
	bus := NewBus()
	join(t, bus, "a")
	if _, err := bus.Join("a"); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestBusPeersSorted(t *testing.T) {
	bus := NewBus()
	a, _ := join(t, bus, "a")
	join(t, bus, "c")
	join(t, bus, "b")
	peers := a.Peers()
	if len(peers) != 2 || peers[0] != "b" || peers[1] != "c" {
		t.Errorf("peers = %v", peers)
	}
	if a.Self() != "a" {
		t.Errorf("self = %q", a.Self())
	}
}

func TestBusPeerClose(t *testing.T) {
	bus := NewBus()
	a, _ := join(t, bus, "a")
	b, _ := join(t, bus, "b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request(context.Background(), "b", Message{}); err == nil {
		t.Error("request to closed peer succeeded")
	}
	if len(a.Peers()) != 0 {
		t.Errorf("peers after close = %v", a.Peers())
	}
}

func TestBusContextCancelled(t *testing.T) {
	bus := NewBus()
	a, _ := join(t, bus, "a")
	join(t, bus, "b")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Request(ctx, "b", Message{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
	if err := a.Broadcast(ctx, Message{}); !errors.Is(err, context.Canceled) {
		t.Errorf("broadcast err = %v", err)
	}
}

func TestBusEmptyBroadcast(t *testing.T) {
	bus := NewBus()
	a, _ := join(t, bus, "solo")
	if err := a.Broadcast(context.Background(), Message{}); err != nil {
		t.Errorf("broadcast with no peers = %v", err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgTransaction.String() != "transaction" ||
		MsgSyncRequest.String() != "sync-request" ||
		MsgSyncResponse.String() != "sync-response" {
		t.Error("message type strings wrong")
	}
	_ = MsgType(42).String() // fallback must not panic
}

func TestHandlerFunc(t *testing.T) {
	called := false
	h := HandlerFunc(func(from string, msg Message) (*Message, error) {
		called = true
		return &Message{Have: []hashutil.Hash{hashutil.Sum([]byte("x"))}}, nil
	})
	reply, err := h.HandleGossip("peer", Message{})
	if err != nil || !called || len(reply.Have) != 1 {
		t.Error("HandlerFunc adapter broken")
	}
}
