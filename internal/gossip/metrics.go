package gossip

import "github.com/b-iot/biot/internal/metrics"

// TransportMetrics exposes the TCP transport's observability surface.
// Dials vs Reuses is the headline ratio: a healthy pooled deployment
// dials once per peer per failure epoch and reuses everywhere else,
// where the one-shot transport dialed once per exchange.
type TransportMetrics struct {
	// Dials counts TCP connections established; Reuses counts exchanges
	// served over an already-open pooled connection.
	Dials  *metrics.Counter
	Reuses *metrics.Counter
	// DialFailures counts failed connection attempts (the backoff
	// schedule keys off consecutive failures).
	DialFailures *metrics.Counter
	// Reconnects counts teardowns of a previously healthy pooled
	// connection (peer restart, idle close, I/O error).
	Reconnects *metrics.Counter
	// BytesIn / BytesOut count wire bytes including frame headers.
	BytesIn  *metrics.Counter
	BytesOut *metrics.Counter
	// ExchangeRTT samples full request→response round trips.
	ExchangeRTT *metrics.Histogram
	// InFlight is the number of exchanges currently awaiting a response
	// across all pooled connections (multiplexing depth).
	InFlight *metrics.Gauge
	// Pings counts keepalive frames sent on idle pooled connections.
	Pings *metrics.Counter
}

func newTransportMetrics() TransportMetrics {
	return TransportMetrics{
		Dials:        &metrics.Counter{},
		Reuses:       &metrics.Counter{},
		DialFailures: &metrics.Counter{},
		Reconnects:   &metrics.Counter{},
		BytesIn:      &metrics.Counter{},
		BytesOut:     &metrics.Counter{},
		ExchangeRTT:  &metrics.Histogram{},
		InFlight:     &metrics.Gauge{},
		Pings:        &metrics.Counter{},
	}
}
