package gossip

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// peerConn is one peer's slot in the connection pool: at most one live
// dialed TCP connection, multiplexing any number of concurrent
// exchanges over it by request ID. The connection is established
// lazily on first use and re-established lazily after failure, with
// exponential backoff + jitter gating consecutive failed dials so a
// dead peer costs one fast error instead of a dial timeout per
// exchange.
type peerConn struct {
	net  *TCPNetwork
	addr string

	// mu guards connection lifecycle. Dialing happens under it: every
	// exchange racing for a down connection waits for the one dial
	// instead of stampeding the peer.
	mu       sync.Mutex
	conn     net.Conn
	gen      int           // increments per established connection
	backoff  time.Duration // current consecutive-failure delay
	nextDial time.Time     // earliest next dial attempt
	stop     chan struct{} // closed to end the current keepalive loop
	closed   bool

	// writeMu serializes frame writes; lastSend feeds the keepalive.
	writeMu  sync.Mutex
	lastSend time.Time

	pendingMu sync.Mutex
	pending   map[uint64]*pendingCall
}

type pendingCall struct {
	gen int
	ch  chan exchangeResult
}

type exchangeResult struct {
	msg Message
	err error
}

func newPeerConn(n *TCPNetwork, addr string) *peerConn {
	return &peerConn{net: n, addr: addr, pending: make(map[uint64]*pendingCall)}
}

// ensure returns the live connection, dialing if necessary. A dial
// inside the backoff window fails fast with ErrBackoff.
func (p *peerConn) ensure(ctx context.Context) (net.Conn, int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, 0, ErrClosed
	}
	if p.conn != nil {
		p.net.metrics.Reuses.Inc()
		return p.conn, p.gen, nil
	}
	if wait := time.Until(p.nextDial); wait > 0 {
		return nil, 0, fmt.Errorf("%w: %s retries in %v", ErrBackoff, p.addr, wait.Round(time.Millisecond))
	}
	dialer := net.Dialer{Timeout: p.net.dialTO}
	conn, err := dialer.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		p.net.metrics.DialFailures.Inc()
		p.scheduleBackoffLocked()
		return nil, 0, fmt.Errorf("dial %s: %w", p.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
		_ = tc.SetKeepAlive(true)
	}
	p.backoff = 0
	p.nextDial = time.Time{}
	p.conn = conn
	p.gen++
	p.stop = make(chan struct{})
	p.net.metrics.Dials.Inc()
	p.net.wg.Add(2)
	go p.readLoop(conn, p.gen)
	go p.keepaliveLoop(conn, p.gen, p.stop)
	return p.conn, p.gen, nil
}

// scheduleBackoffLocked doubles the consecutive-failure delay (capped)
// and jitters the next attempt into [backoff/2, backoff] so restarting
// peers are not hit by synchronized redial waves.
func (p *peerConn) scheduleBackoffLocked() {
	if p.backoff <= 0 {
		p.backoff = p.net.backoffMin
	} else if p.backoff < p.net.backoffMax {
		p.backoff *= 2
		if p.backoff > p.net.backoffMax {
			p.backoff = p.net.backoffMax
		}
	}
	delay := p.backoff/2 + time.Duration(rand.Int63n(int64(p.backoff/2)+1))
	p.nextDial = time.Now().Add(delay)
}

// exchange runs one request→response round trip over the pooled
// connection. Multiple exchanges are safely in flight at once.
func (p *peerConn) exchange(ctx context.Context, payload []byte) (Message, error) {
	conn, gen, err := p.ensure(ctx)
	if err != nil {
		return Message{}, err
	}
	id := p.net.nextReq.Add(1)
	ch := make(chan exchangeResult, 1)
	p.pendingMu.Lock()
	p.pending[id] = &pendingCall{gen: gen, ch: ch}
	p.pendingMu.Unlock()
	p.net.metrics.InFlight.Inc()
	defer p.net.metrics.InFlight.Dec()

	start := time.Now()
	p.writeMu.Lock()
	_ = conn.SetWriteDeadline(time.Now().Add(p.net.ioTO))
	nw, werr := writeFrame(conn, FrameRequest, id, payload)
	p.lastSend = time.Now()
	p.writeMu.Unlock()
	p.net.metrics.BytesOut.Add(int64(nw))
	if werr != nil {
		p.drop(id)
		p.teardown(gen, werr)
		return Message{}, fmt.Errorf("write to %s: %w", p.addr, werr)
	}

	deadline := ctx.Done()
	timer := time.NewTimer(p.net.ioTO)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return Message{}, fmt.Errorf("exchange with %s: %w", p.addr, res.err)
		}
		p.net.metrics.ExchangeRTT.Observe(time.Since(start))
		return res.msg, nil
	case <-deadline:
		p.drop(id)
		return Message{}, ctx.Err()
	case <-timer.C:
		p.drop(id)
		return Message{}, fmt.Errorf("exchange with %s: reply timeout", p.addr)
	}
}

// readLoop routes inbound frames on one dialed connection: responses
// complete their pending exchange; anything else is a keepalive echo or
// protocol noise and is dropped. A read error tears the connection down
// and fails every exchange still pending on it.
func (p *peerConn) readLoop(conn net.Conn, gen int) {
	defer p.net.wg.Done()
	reader := bufio.NewReader(conn)
	for {
		kind, id, payload, wire, err := readFrame(reader)
		if err != nil {
			p.teardown(gen, err)
			return
		}
		p.net.metrics.BytesIn.Add(int64(wire))
		if kind != FrameResponse {
			continue
		}
		msg, derr := DecodeMessage(payload)
		p.complete(id, exchangeResult{msg: msg, err: derr})
	}
}

// keepaliveLoop pings an idle connection so the peer's idle deadline
// stays fresh and silent peer death is detected by a failed write.
func (p *peerConn) keepaliveLoop(conn net.Conn, gen int, stop chan struct{}) {
	defer p.net.wg.Done()
	ticker := time.NewTicker(p.net.keepalive)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			p.writeMu.Lock()
			var err error
			if time.Since(p.lastSend) >= p.net.keepalive {
				_ = conn.SetWriteDeadline(time.Now().Add(p.net.ioTO))
				var nw int
				nw, err = writeFrame(conn, FramePing, 0, nil)
				p.net.metrics.BytesOut.Add(int64(nw))
				if err == nil {
					p.net.metrics.Pings.Inc()
					p.lastSend = time.Now()
				}
			}
			p.writeMu.Unlock()
			if err != nil {
				p.teardown(gen, err)
				return
			}
		}
	}
}

// teardown retires one connection generation: later exchanges redial
// lazily. Pending calls on newer generations are untouched.
func (p *peerConn) teardown(gen int, cause error) {
	p.mu.Lock()
	if p.gen != gen || p.conn == nil {
		p.mu.Unlock()
		return
	}
	conn := p.conn
	p.conn = nil
	close(p.stop)
	p.stop = nil
	p.mu.Unlock()
	_ = conn.Close()
	p.net.metrics.Reconnects.Inc()
	p.failPending(gen, cause)
}

// close permanently retires the slot (peer removed or network closing).
func (p *peerConn) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conn := p.conn
	gen := p.gen
	p.conn = nil
	if p.stop != nil {
		close(p.stop)
		p.stop = nil
	}
	p.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	p.failPending(gen, ErrClosed)
}

func (p *peerConn) complete(id uint64, res exchangeResult) {
	p.pendingMu.Lock()
	call, ok := p.pending[id]
	if ok {
		delete(p.pending, id)
	}
	p.pendingMu.Unlock()
	if ok {
		call.ch <- res
	}
}

func (p *peerConn) drop(id uint64) {
	p.pendingMu.Lock()
	delete(p.pending, id)
	p.pendingMu.Unlock()
}

func (p *peerConn) failPending(gen int, cause error) {
	p.pendingMu.Lock()
	var failed []chan exchangeResult
	for id, call := range p.pending {
		if call.gen == gen {
			delete(p.pending, id)
			failed = append(failed, call.ch)
		}
	}
	p.pendingMu.Unlock()
	for _, ch := range failed {
		ch <- exchangeResult{err: cause}
	}
}
