package gossip

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// listenPooled starts a pooled endpoint with fast backoff and short
// reply timeouts so failure paths resolve in milliseconds.
func listenPooled(t *testing.T, opts ...TCPOption) (*TCPNetwork, *echoHandler) {
	t.Helper()
	base := []TCPOption{
		WithDialTimeout(2 * time.Second),
		WithIOTimeout(2 * time.Second),
		WithBackoff(time.Millisecond, 20*time.Millisecond),
	}
	n, err := ListenTCP("127.0.0.1:0", append(base, opts...)...)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = n.Close() })
	h := &echoHandler{reply: &Message{}}
	n.SetHandler(h)
	return n, h
}

func TestTCPPooledConnectionReuse(t *testing.T) {
	a, _ := listenPooled(t)
	b, hb := listenPooled(t)
	a.AddPeer(b.Self())

	const rounds = 8
	for i := 0; i < rounds; i++ {
		if _, err := a.Request(context.Background(), b.Self(), Message{Type: MsgSyncRequest}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if hb.count() != rounds {
		t.Errorf("b received %d, want %d", hb.count(), rounds)
	}
	if dials := a.Metrics().Dials.Value(); dials != 1 {
		t.Errorf("dials = %d, want 1 (persistent connection)", dials)
	}
	if reuses := a.Metrics().Reuses.Value(); reuses != rounds-1 {
		t.Errorf("reuses = %d, want %d", reuses, rounds-1)
	}
}

func TestTCPConcurrentRequestsMultiplex(t *testing.T) {
	a, _ := listenPooled(t)
	b, hb := listenPooled(t)
	a.AddPeer(b.Self())

	const inFlight = 16
	var wg sync.WaitGroup
	errs := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := a.Request(context.Background(), b.Self(), Message{Type: MsgSyncRequest})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent request: %v", err)
		}
	}
	if hb.count() != inFlight {
		t.Errorf("b received %d, want %d", hb.count(), inFlight)
	}
	// All exchanges multiplexed over the single pooled connection.
	if dials := a.Metrics().Dials.Value(); dials != 1 {
		t.Errorf("dials = %d, want 1", dials)
	}
}

func TestTCPBackoffFailsFast(t *testing.T) {
	a, _ := listenPooled(t, WithBackoff(time.Hour, time.Hour))
	dead, _ := listenPooled(t)
	addr := dead.Self()
	_ = dead.Close()
	a.AddPeer(addr)

	if _, err := a.Request(context.Background(), addr, Message{}); err == nil {
		t.Fatal("request to dead peer succeeded")
	}
	// The second attempt lands inside the (huge) backoff window and must
	// fail fast with ErrBackoff instead of re-dialing.
	start := time.Now()
	_, err := a.Request(context.Background(), addr, Message{})
	if !errors.Is(err, ErrBackoff) {
		t.Fatalf("err = %v, want ErrBackoff", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("backoff gate took %v, want fast failure", elapsed)
	}
	if fails := a.Metrics().DialFailures.Value(); fails != 1 {
		t.Errorf("dial failures = %d, want 1 (backoff suppressed the redial)", fails)
	}
}

func TestTCPPeerRestartReconnect(t *testing.T) {
	a, _ := listenPooled(t)
	b, _ := listenPooled(t)
	addr := b.Self()
	a.AddPeer(addr)

	if _, err := a.Request(context.Background(), addr, Message{}); err != nil {
		t.Fatalf("initial request: %v", err)
	}
	_ = b.Close()

	// The peer is down: requests fail (write error, reply timeout or
	// fast-failing backoff) until it returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := a.Request(context.Background(), addr, Message{}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requests kept succeeding against a closed peer")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart on the same address: the pool must redial through its
	// backoff schedule without any explicit reset.
	b2, err := ListenTCP(addr, WithIOTimeout(2*time.Second))
	if err != nil {
		t.Fatalf("restart listener: %v", err)
	}
	t.Cleanup(func() { _ = b2.Close() })
	b2.SetHandler(&echoHandler{reply: &Message{}})

	for {
		if _, err := a.Request(context.Background(), addr, Message{}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never reconnected to the restarted peer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if recon := a.Metrics().Reconnects.Value(); recon < 1 {
		t.Errorf("reconnects = %d, want >= 1", recon)
	}
	if dials := a.Metrics().Dials.Value(); dials < 2 {
		t.Errorf("dials = %d, want >= 2 (before and after restart)", dials)
	}
}

func TestTCPRemovePeerDuringBroadcast(t *testing.T) {
	a, _ := listenPooled(t)
	b, _ := listenPooled(t)
	c, hc := listenPooled(t)
	a.AddPeer(b.Self())
	a.AddPeer(c.Self())

	// Churn b's membership while a broadcast storm runs: every broadcast
	// must still reach the stable peer, and removing a peer mid-flight
	// must never panic or wedge the fan-out.
	const rounds = 100
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			a.RemovePeer(b.Self())
			a.AddPeer(b.Self())
		}
	}()
	for i := 0; i < rounds; i++ {
		if err := a.Broadcast(context.Background(), Message{Type: MsgTransaction, TxData: [][]byte{{byte(i)}}}); err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
	}
	close(stop)
	churn.Wait()
	if hc.count() != rounds {
		t.Errorf("stable peer received %d, want %d", hc.count(), rounds)
	}
}

func TestTCPConcurrentBroadcastRequestClose(t *testing.T) {
	a, _ := listenPooled(t)
	b, _ := listenPooled(t)
	c, _ := listenPooled(t)
	a.AddPeer(b.Self())
	a.AddPeer(c.Self())

	// Broadcasts and requests race a concurrent Close: every call must
	// return (success before the close, an error after), nothing may
	// panic, and Close must still drain all transport goroutines.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = a.Broadcast(context.Background(), Message{Type: MsgTransaction})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, _ = a.Request(context.Background(), b.Self(), Message{Type: MsgSyncRequest})
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	wg.Wait()
	if _, err := a.Request(context.Background(), b.Self(), Message{}); !errors.Is(err, ErrClosed) {
		t.Errorf("request after close: err = %v, want ErrClosed", err)
	}
}

func TestTCPKeepalivePings(t *testing.T) {
	a, _ := listenPooled(t, WithKeepalive(20*time.Millisecond))
	b, _ := listenPooled(t)
	a.AddPeer(b.Self())

	if _, err := a.Request(context.Background(), b.Self(), Message{}); err != nil {
		t.Fatalf("request: %v", err)
	}
	// Idle past several keepalive intervals: pings must flow and the
	// connection must stay warm (no redial afterwards).
	deadline := time.Now().Add(2 * time.Second)
	for a.Metrics().Pings.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no keepalive ping on an idle pooled connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := a.Request(context.Background(), b.Self(), Message{}); err != nil {
		t.Fatalf("request after idle: %v", err)
	}
	if dials := a.Metrics().Dials.Value(); dials != 1 {
		t.Errorf("dials = %d, want 1 (keepalive kept the connection)", dials)
	}
}
