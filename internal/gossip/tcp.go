package gossip

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TCPNetwork implements Network over real sockets with a persistent
// multiplexed transport. Each exchange is one request frame and one
// response frame (see frame.go): a 4-byte length word, a kind byte, an
// 8-byte request ID and one canonically encoded Message, which batches
// any number of transaction payloads. Because responses carry the
// request ID they answer, any number of exchanges multiplex over one
// socket concurrently.
//
// The pool keeps one dialed connection per peer, established lazily on
// first use and re-established lazily after failure with exponential
// backoff + jitter; idle connections stay warm via keepalive pings.
// Broadcast fans out to every peer concurrently, so one slow or dead
// peer costs max(peer latency), not the sum. WithoutPooling restores
// the previous one-shot behaviour (dial, exchange, close; serial
// broadcast) — kept as the measured baseline for BenchmarkGossip* and
// `biot-bench -fig gossip`.
type TCPNetwork struct {
	listener  net.Listener
	dialTO    time.Duration
	ioTO      time.Duration
	keepalive time.Duration
	// serverIdle is the per-frame read deadline on accepted
	// connections; client keepalives refresh it, so only a genuinely
	// dead or silent peer hits it.
	serverIdle time.Duration
	backoffMin time.Duration
	backoffMax time.Duration
	pooled     bool
	metrics    TransportMetrics
	nextReq    atomic.Uint64

	mu       sync.RWMutex
	peers    map[string]struct{}
	conns    map[string]*peerConn
	accepted map[net.Conn]struct{}
	handler  Handler
	closed   bool

	wg sync.WaitGroup
}

var _ Network = (*TCPNetwork)(nil)

// maxInboundPerConn bounds concurrent handler invocations per accepted
// connection, so one chatty peer cannot spawn unbounded goroutines.
const maxInboundPerConn = 32

// TCPOption customizes a TCPNetwork.
type TCPOption func(*TCPNetwork)

// WithDialTimeout sets the peer dial timeout (default 3 s).
func WithDialTimeout(d time.Duration) TCPOption {
	return func(n *TCPNetwork) { n.dialTO = d }
}

// WithIOTimeout sets the per-exchange write deadline and reply timeout
// (default 10 s).
func WithIOTimeout(d time.Duration) TCPOption {
	return func(n *TCPNetwork) { n.ioTO = d }
}

// WithKeepalive sets the idle-ping interval on pooled connections
// (default 15 s). Accepted connections tolerate 4x this interval of
// silence before being dropped.
func WithKeepalive(d time.Duration) TCPOption {
	return func(n *TCPNetwork) { n.keepalive = d }
}

// WithBackoff sets the reconnect backoff range: the delay after the
// first failed dial and the cap it exponentially grows to (defaults
// 50 ms and 5 s).
func WithBackoff(min, max time.Duration) TCPOption {
	return func(n *TCPNetwork) { n.backoffMin, n.backoffMax = min, max }
}

// WithoutPooling selects the one-shot transport: every exchange dials a
// fresh connection and Broadcast walks peers serially. Kept as the
// benchmark baseline the pooled transport is measured against.
func WithoutPooling() TCPOption {
	return func(n *TCPNetwork) { n.pooled = false }
}

// ListenTCP starts a gossip endpoint on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string, opts ...TCPOption) (*TCPNetwork, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gossip listen %s: %w", addr, err)
	}
	n := &TCPNetwork{
		listener:   ln,
		dialTO:     3 * time.Second,
		ioTO:       10 * time.Second,
		keepalive:  15 * time.Second,
		backoffMin: 50 * time.Millisecond,
		backoffMax: 5 * time.Second,
		pooled:     true,
		metrics:    newTransportMetrics(),
		peers:      make(map[string]struct{}),
		conns:      make(map[string]*peerConn),
		accepted:   make(map[net.Conn]struct{}),
	}
	for _, opt := range opts {
		opt(n)
	}
	if n.serverIdle <= 0 {
		n.serverIdle = 4 * n.keepalive
		if n.serverIdle < n.ioTO {
			n.serverIdle = n.ioTO
		}
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Metrics exposes the transport's counters and latency surfaces.
func (n *TCPNetwork) Metrics() TransportMetrics { return n.metrics }

// AddPeer registers a peer's gossip address.
func (n *TCPNetwork) AddPeer(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr != n.listener.Addr().String() {
		n.peers[addr] = struct{}{}
	}
}

// RemovePeer forgets a peer and retires its pooled connection;
// exchanges in flight on it fail over to the sync path.
func (n *TCPNetwork) RemovePeer(addr string) {
	n.mu.Lock()
	delete(n.peers, addr)
	pc := n.conns[addr]
	delete(n.conns, addr)
	n.mu.Unlock()
	if pc != nil {
		pc.close()
	}
}

// Self implements Network.
func (n *TCPNetwork) Self() string { return n.listener.Addr().String() }

// Peers implements Network.
func (n *TCPNetwork) Peers() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.peers))
	for addr := range n.peers {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// SetHandler implements Network.
func (n *TCPNetwork) SetHandler(h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

func (n *TCPNetwork) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

// serveConn is the accept-side frame loop: it reads request frames for
// the connection's lifetime and dispatches each to its own bounded
// handler goroutine, so a slow sync response does not block the next
// inbound transaction batch on the same socket. Response writes are
// serialized; responses may therefore interleave out of request order,
// which the request ID makes safe.
func (n *TCPNetwork) serveConn(conn net.Conn) {
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
		_ = conn.Close()
	}()
	var writeMu sync.Mutex
	sem := make(chan struct{}, maxInboundPerConn)
	reader := bufio.NewReader(conn)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(n.serverIdle))
		kind, id, payload, wire, err := readFrame(reader)
		if err != nil {
			return // framing violation, idle timeout or peer gone
		}
		n.metrics.BytesIn.Add(int64(wire))
		if kind != FrameRequest {
			continue // pings refresh the deadline; stray responses are noise
		}
		msg, err := DecodeMessage(payload)
		if err != nil {
			return // valid frame, invalid message: drop the confused peer
		}
		n.mu.RLock()
		h := n.handler
		n.mu.RUnlock()
		sem <- struct{}{}
		wg.Add(1)
		go func(id uint64, msg Message) {
			defer wg.Done()
			defer func() { <-sem }()
			reply := &Message{} // empty ack
			if h != nil {
				if r, herr := h.HandleGossip(conn.RemoteAddr().String(), msg); herr == nil && r != nil {
					reply = r
				}
			}
			writeMu.Lock()
			_ = conn.SetWriteDeadline(time.Now().Add(n.ioTO))
			nw, _ := writeFrame(conn, FrameResponse, id, EncodeMessage(*reply))
			writeMu.Unlock()
			n.metrics.BytesOut.Add(int64(nw))
		}(id, msg)
	}
}

// conn returns (creating if needed) the pool slot for addr.
func (n *TCPNetwork) conn(addr string) *peerConn {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	pc, ok := n.conns[addr]
	if !ok {
		pc = newPeerConn(n, addr)
		n.conns[addr] = pc
	}
	return pc
}

func (n *TCPNetwork) exchangePayload(ctx context.Context, addr string, payload []byte) (Message, error) {
	n.mu.RLock()
	closed := n.closed
	n.mu.RUnlock()
	if closed {
		return Message{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return Message{}, err
	}
	if !n.pooled {
		return n.oneShotExchange(ctx, addr, payload)
	}
	pc := n.conn(addr)
	if pc == nil {
		return Message{}, ErrClosed
	}
	return pc.exchange(ctx, payload)
}

// oneShotExchange is the pre-pool transport: dial, one exchange, close.
func (n *TCPNetwork) oneShotExchange(ctx context.Context, addr string, payload []byte) (Message, error) {
	dialer := net.Dialer{Timeout: n.dialTO}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		n.metrics.DialFailures.Inc()
		return Message{}, fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	n.metrics.Dials.Inc()
	deadline := time.Now().Add(n.ioTO)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)

	start := time.Now()
	nw, err := writeFrame(conn, FrameRequest, 1, payload)
	n.metrics.BytesOut.Add(int64(nw))
	if err != nil {
		return Message{}, fmt.Errorf("write to %s: %w", addr, err)
	}
	reader := bufio.NewReader(conn)
	for {
		kind, _, body, wire, err := readFrame(reader)
		if err != nil {
			return Message{}, fmt.Errorf("read reply from %s: %w", addr, err)
		}
		n.metrics.BytesIn.Add(int64(wire))
		if kind != FrameResponse {
			continue
		}
		reply, err := DecodeMessage(body)
		if err != nil {
			return Message{}, fmt.Errorf("decode reply from %s: %w", addr, err)
		}
		n.metrics.ExchangeRTT.Observe(time.Since(start))
		return reply, nil
	}
}

// Broadcast implements Network. On the pooled transport the fan-out is
// concurrent — one goroutine per peer over that peer's persistent
// connection — so broadcast latency tracks the slowest single peer
// rather than the sum of all of them.
func (n *TCPNetwork) Broadcast(ctx context.Context, msg Message) error {
	peers := n.Peers()
	if len(peers) == 0 {
		return nil
	}
	payload := EncodeMessage(msg)
	if !n.pooled {
		var lastErr error
		delivered := 0
		for _, addr := range peers {
			if err := ctx.Err(); err != nil {
				return err
			}
			if _, err := n.exchangePayload(ctx, addr, payload); err != nil {
				lastErr = err
				continue
			}
			delivered++
		}
		if delivered == 0 && lastErr != nil {
			return fmt.Errorf("broadcast reached no peers: %w", lastErr)
		}
		return nil
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		lastErr   error
		delivered int
	)
	for _, addr := range peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			if _, err := n.exchangePayload(ctx, addr, payload); err != nil {
				mu.Lock()
				lastErr = err
				mu.Unlock()
				return
			}
			mu.Lock()
			delivered++
			mu.Unlock()
		}(addr)
	}
	wg.Wait()
	if delivered == 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if lastErr != nil {
			return fmt.Errorf("broadcast reached no peers: %w", lastErr)
		}
	}
	return nil
}

// Request implements Network.
func (n *TCPNetwork) Request(ctx context.Context, peer string, msg Message) (Message, error) {
	return n.exchangePayload(ctx, peer, EncodeMessage(msg))
}

// Close implements Network: it stops accepting, retires every pooled
// connection (failing exchanges still pending on them), closes accepted
// connections and waits for every transport goroutine — including
// in-flight inbound handlers — to drain.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*peerConn, 0, len(n.conns))
	for _, pc := range n.conns {
		conns = append(conns, pc)
	}
	n.conns = make(map[string]*peerConn)
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	n.mu.Unlock()

	err := n.listener.Close()
	for _, pc := range conns {
		pc.close()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	n.wg.Wait()
	return err
}
