package gossip

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"
)

// TCPNetwork implements Network over real sockets. Each exchange is one
// length-prefixed datagram per direction: a 4-byte big-endian length
// followed by one canonically encoded Message (see encode.go), which
// batches any number of transaction payloads; the peer answers with one
// datagram in the same framing (possibly an empty message for
// fire-and-forget traffic). Frames above MaxMessageBytes are rejected
// before buffering.
//
// Connections are one-shot (dial, exchange, close): simple, stateless,
// and robust against peer restarts — appropriate for the
// gateway-population sizes of a smart factory.
type TCPNetwork struct {
	listener net.Listener
	dialTO   time.Duration
	ioTO     time.Duration

	mu      sync.RWMutex
	peers   map[string]struct{}
	handler Handler
	closed  bool

	wg sync.WaitGroup
}

var _ Network = (*TCPNetwork)(nil)

// TCPOption customizes a TCPNetwork.
type TCPOption func(*TCPNetwork)

// WithDialTimeout sets the peer dial timeout (default 3 s).
func WithDialTimeout(d time.Duration) TCPOption {
	return func(n *TCPNetwork) { n.dialTO = d }
}

// WithIOTimeout sets the per-exchange read/write deadline (default 10 s).
func WithIOTimeout(d time.Duration) TCPOption {
	return func(n *TCPNetwork) { n.ioTO = d }
}

// ListenTCP starts a gossip endpoint on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string, opts ...TCPOption) (*TCPNetwork, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gossip listen %s: %w", addr, err)
	}
	n := &TCPNetwork{
		listener: ln,
		dialTO:   3 * time.Second,
		ioTO:     10 * time.Second,
		peers:    make(map[string]struct{}),
	}
	for _, opt := range opts {
		opt(n)
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// AddPeer registers a peer's gossip address.
func (n *TCPNetwork) AddPeer(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr != n.listener.Addr().String() {
		n.peers[addr] = struct{}{}
	}
}

// RemovePeer forgets a peer.
func (n *TCPNetwork) RemovePeer(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.peers, addr)
}

// Self implements Network.
func (n *TCPNetwork) Self() string { return n.listener.Addr().String() }

// Peers implements Network.
func (n *TCPNetwork) Peers() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.peers))
	for addr := range n.peers {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// SetHandler implements Network.
func (n *TCPNetwork) SetHandler(h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

func (n *TCPNetwork) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

// writeFrame sends one length-prefixed datagram.
func writeFrame(conn net.Conn, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(payload)
	return err
}

// readFrame receives one length-prefixed datagram, rejecting oversized
// frames before buffering them.
func readFrame(reader *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(reader, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxMessageBytes {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrMessageSize, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(reader, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func (n *TCPNetwork) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(n.ioTO))

	payload, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return
	}
	msg, err := DecodeMessage(payload)
	if err != nil {
		return
	}
	n.mu.RLock()
	h := n.handler
	n.mu.RUnlock()
	if h == nil {
		return
	}
	reply, err := h.HandleGossip(conn.RemoteAddr().String(), msg)
	if err != nil || reply == nil {
		reply = &Message{} // empty ack
	}
	_ = writeFrame(conn, EncodeMessage(*reply))
}

func (n *TCPNetwork) exchange(ctx context.Context, addr string, msg Message) (Message, error) {
	n.mu.RLock()
	closed := n.closed
	n.mu.RUnlock()
	if closed {
		return Message{}, ErrClosed
	}
	dialer := net.Dialer{Timeout: n.dialTO}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Message{}, fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(n.ioTO)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)

	if err := writeFrame(conn, EncodeMessage(msg)); err != nil {
		return Message{}, fmt.Errorf("write to %s: %w", addr, err)
	}
	payload, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return Message{}, fmt.Errorf("read reply from %s: %w", addr, err)
	}
	reply, err := DecodeMessage(payload)
	if err != nil {
		return Message{}, fmt.Errorf("decode reply from %s: %w", addr, err)
	}
	return reply, nil
}

// Broadcast implements Network.
func (n *TCPNetwork) Broadcast(ctx context.Context, msg Message) error {
	peers := n.Peers()
	if len(peers) == 0 {
		return nil
	}
	var lastErr error
	delivered := 0
	for _, addr := range peers {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := n.exchange(ctx, addr, msg); err != nil {
			lastErr = err
			continue
		}
		delivered++
	}
	if delivered == 0 && lastErr != nil {
		return fmt.Errorf("broadcast reached no peers: %w", lastErr)
	}
	return nil
}

// Request implements Network.
func (n *TCPNetwork) Request(ctx context.Context, peer string, msg Message) (Message, error) {
	return n.exchange(ctx, peer, msg)
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()

	err := n.listener.Close()
	n.wg.Wait()
	return err
}
