package gossip

import (
	"context"
	"net"
	"testing"
	"time"
)

func listen(t *testing.T) (*TCPNetwork, *echoHandler) {
	t.Helper()
	n, err := ListenTCP("127.0.0.1:0", WithDialTimeout(2*time.Second), WithIOTimeout(5*time.Second))
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = n.Close() })
	h := &echoHandler{reply: &Message{}}
	n.SetHandler(h)
	return n, h
}

func TestTCPRequestReply(t *testing.T) {
	a, _ := listen(t)
	b, hb := listen(t)
	hb.reply = &Message{Type: MsgSyncResponse, TxData: [][]byte{{1, 2}}}
	a.AddPeer(b.Self())

	reply, err := a.Request(context.Background(), b.Self(), Message{Type: MsgSyncRequest})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgSyncResponse || len(reply.TxData) != 1 {
		t.Errorf("reply = %+v", reply)
	}
	if hb.count() != 1 {
		t.Errorf("b received %d", hb.count())
	}
}

func TestTCPBroadcast(t *testing.T) {
	a, _ := listen(t)
	b, hb := listen(t)
	c, hc := listen(t)
	a.AddPeer(b.Self())
	a.AddPeer(c.Self())

	if err := a.Broadcast(context.Background(), Message{Type: MsgTransaction, TxData: [][]byte{{7}}}); err != nil {
		t.Fatal(err)
	}
	if hb.count() != 1 || hc.count() != 1 {
		t.Errorf("received b=%d c=%d", hb.count(), hc.count())
	}
}

func TestTCPBroadcastSurvivesDeadPeer(t *testing.T) {
	a, _ := listen(t)
	b, hb := listen(t)
	dead, _ := listen(t)
	deadAddr := dead.Self()
	_ = dead.Close()

	a.AddPeer(deadAddr)
	a.AddPeer(b.Self())
	if err := a.Broadcast(context.Background(), Message{Type: MsgTransaction}); err != nil {
		t.Fatalf("broadcast with one dead peer: %v", err)
	}
	if hb.count() != 1 {
		t.Errorf("live peer received %d", hb.count())
	}
}

func TestTCPRequestDeadPeer(t *testing.T) {
	a, _ := listen(t)
	dead, _ := listen(t)
	addr := dead.Self()
	_ = dead.Close()
	if _, err := a.Request(context.Background(), addr, Message{}); err == nil {
		t.Error("request to dead peer succeeded")
	}
}

func TestTCPPeerManagement(t *testing.T) {
	a, _ := listen(t)
	a.AddPeer("10.0.0.1:1")
	a.AddPeer("10.0.0.1:2")
	a.AddPeer(a.Self()) // self is never a peer
	if got := a.Peers(); len(got) != 2 {
		t.Errorf("peers = %v", got)
	}
	a.RemovePeer("10.0.0.1:1")
	if got := a.Peers(); len(got) != 1 || got[0] != "10.0.0.1:2" {
		t.Errorf("peers = %v", got)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	n, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := n.Request(context.Background(), "127.0.0.1:1", Message{}); err == nil {
		t.Error("request on closed network succeeded")
	}
}

func TestTCPMalformedLineIgnored(t *testing.T) {
	// A peer sending garbage must not crash the server; subsequent
	// requests still work.
	a, _ := listen(t)
	b, _ := listen(t)
	a.AddPeer(b.Self())
	// Direct garbage write.
	conn, err := dialRaw(b.Self())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte("this is not json\n"))
	_ = conn.Close()

	if _, err := a.Request(context.Background(), b.Self(), Message{Type: MsgSyncRequest}); err != nil {
		t.Errorf("request after garbage: %v", err)
	}
}

func dialRaw(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 2*time.Second)
}
