// Package hashutil provides the hash primitives shared by every ledger
// component: a fixed-size Hash value type, SHA-256 helpers, leading-zero
// counting for proof-of-work targets, and a Merkle tree used by the
// chain-structured baseline blockchain.
package hashutil

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
)

// Size is the byte length of a Hash (SHA-256).
const Size = sha256.Size

// Hash is a 32-byte SHA-256 digest. It is a value type: comparable, usable
// as a map key, and copied at API boundaries by construction.
type Hash [Size]byte

// Zero is the all-zero hash. It denotes "no parent" in genesis records.
var Zero Hash

// Sum hashes data with SHA-256.
func Sum(data []byte) Hash { return sha256.Sum256(data) }

// SumConcat hashes the concatenation of the given byte slices without
// intermediate copies beyond the hasher's own buffering.
func SumConcat(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// SumPow computes the paper's Eqn-6 proof-of-work output
// hash(hash(a) || hash(b) || nonce) in a single pass over a fixed
// stack buffer. Unlike SumConcat it allocates nothing, which is what
// lets mining loops and relay-admission PoW checks run allocation-free.
func SumPow(a, b Hash, nonce uint64) Hash {
	var buf [2*Size + 8]byte
	inner := sha256.Sum256(a[:])
	copy(buf[:Size], inner[:])
	inner = sha256.Sum256(b[:])
	copy(buf[Size:2*Size], inner[:])
	binary.BigEndian.PutUint64(buf[2*Size:], nonce)
	return sha256.Sum256(buf[:])
}

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == Zero }

// Bytes returns a fresh copy of the digest bytes.
func (h Hash) Bytes() []byte {
	out := make([]byte, Size)
	copy(out, h[:])
	return out
}

// Hex returns the lowercase hex encoding of h.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// Short returns the first 8 hex characters, for logs and display.
func (h Hash) Short() string { return h.Hex()[:8] }

// String implements fmt.Stringer.
func (h Hash) String() string { return h.Hex() }

// MarshalText implements encoding.TextMarshaler (hex).
func (h Hash) MarshalText() ([]byte, error) {
	return []byte(h.Hex()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler (hex).
func (h *Hash) UnmarshalText(text []byte) error {
	decoded, err := hex.DecodeString(string(text))
	if err != nil {
		return fmt.Errorf("decode hash hex: %w", err)
	}
	if len(decoded) != Size {
		return fmt.Errorf("hash length %d, want %d", len(decoded), Size)
	}
	copy(h[:], decoded)
	return nil
}

// ErrBadHashHex reports an undecodable hash string.
var ErrBadHashHex = errors.New("malformed hash hex")

// FromHex parses a 64-character hex string into a Hash.
func FromHex(s string) (Hash, error) {
	var h Hash
	if err := h.UnmarshalText([]byte(s)); err != nil {
		return Zero, fmt.Errorf("%w: %v", ErrBadHashHex, err)
	}
	return h, nil
}

// LeadingZeroBits counts the number of consecutive zero bits at the start
// of h. This is the proof-of-work difficulty metric from the paper's
// Eqn 6: "the requirement of minimum length of prefix zero".
func (h Hash) LeadingZeroBits() int {
	total := 0
	for _, b := range h {
		if b == 0 {
			total += 8
			continue
		}
		total += bits.LeadingZeros8(b)
		break
	}
	return total
}

// MeetsDifficulty reports whether h has at least difficulty leading zero
// bits. A non-positive difficulty is met by every hash.
func (h Hash) MeetsDifficulty(difficulty int) bool {
	if difficulty <= 0 {
		return true
	}
	if difficulty > Size*8 {
		return false
	}
	return h.LeadingZeroBits() >= difficulty
}

// Compare lexicographically compares two hashes, returning -1, 0, or 1.
func (h Hash) Compare(other Hash) int {
	for i := range h {
		switch {
		case h[i] < other[i]:
			return -1
		case h[i] > other[i]:
			return 1
		}
	}
	return 0
}
