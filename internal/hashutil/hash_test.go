package hashutil

import (
	"crypto/sha256"
	"strings"
	"testing"
	"testing/quick"
)

func TestSumMatchesStdlib(t *testing.T) {
	data := []byte("b-iot test vector")
	want := sha256.Sum256(data)
	if got := Sum(data); got != Hash(want) {
		t.Errorf("Sum = %x, want %x", got, want)
	}
}

func TestSumConcatEqualsSumOfConcatenation(t *testing.T) {
	check := func(a, b, c []byte) bool {
		joined := append(append(append([]byte{}, a...), b...), c...)
		return SumConcat(a, b, c) == Sum(joined)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestHexRoundTrip(t *testing.T) {
	check := func(h Hash) bool {
		parsed, err := FromHex(h.Hex())
		return err == nil && parsed == h
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFromHexErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "abcd"},
		{"long", strings.Repeat("ab", 33)},
		{"non-hex", strings.Repeat("zz", 32)},
		{"odd length", strings.Repeat("a", 63)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromHex(tt.in); err == nil {
				t.Errorf("FromHex(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestLeadingZeroBits(t *testing.T) {
	tests := []struct {
		name string
		h    Hash
		want int
	}{
		{"zero hash", Zero, 256},
		{"first bit set", hashWithByte(0, 0x80), 0},
		{"second bit set", hashWithByte(0, 0x40), 1},
		{"one byte zero", hashWithByte(1, 0xFF), 8},
		{"two bytes zero", hashWithByte(2, 0xFF), 16},
		{"low bit of first byte", hashWithByte(0, 0x01), 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.h.LeadingZeroBits(); got != tt.want {
				t.Errorf("LeadingZeroBits = %d, want %d", got, tt.want)
			}
		})
	}
}

// hashWithByte returns a hash whose first `zeros` bytes are zero, the
// next byte is b, and the rest are 0xFF.
func hashWithByte(zeros int, b byte) Hash {
	var h Hash
	for i := range h {
		switch {
		case i < zeros:
			h[i] = 0
		case i == zeros:
			h[i] = b
		default:
			h[i] = 0xFF
		}
	}
	return h
}

func TestMeetsDifficulty(t *testing.T) {
	h := hashWithByte(1, 0x7F) // 9 leading zero bits
	if got := h.LeadingZeroBits(); got != 9 {
		t.Fatalf("fixture has %d bits, want 9", got)
	}
	for d := -1; d <= 9; d++ {
		if !h.MeetsDifficulty(d) {
			t.Errorf("difficulty %d not met, want met", d)
		}
	}
	for _, d := range []int{10, 11, 100, 256} {
		if h.MeetsDifficulty(d) {
			t.Errorf("difficulty %d met, want not met", d)
		}
	}
	if h.MeetsDifficulty(257) {
		t.Error("difficulty beyond hash size met")
	}
	if !Zero.MeetsDifficulty(256) {
		t.Error("zero hash should meet maximum difficulty")
	}
}

func TestMeetsDifficultyConsistentWithLeadingZeros(t *testing.T) {
	check := func(h Hash, d uint8) bool {
		diff := int(d % 64)
		return h.MeetsDifficulty(diff) == (h.LeadingZeroBits() >= diff || diff == 0)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCompare(t *testing.T) {
	a := hashWithByte(0, 0x01)
	b := hashWithByte(0, 0x02)
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare ordering wrong")
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	check := func(a, b Hash) bool {
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesIsACopy(t *testing.T) {
	h := Sum([]byte("x"))
	raw := h.Bytes()
	raw[0] ^= 0xFF
	if raw[0] == h[0] {
		t.Error("Bytes returned aliased storage")
	}
}

func TestShortAndString(t *testing.T) {
	h := Sum([]byte("y"))
	if len(h.Short()) != 8 {
		t.Errorf("Short length = %d, want 8", len(h.Short()))
	}
	if h.String() != h.Hex() {
		t.Error("String != Hex")
	}
	if !strings.HasPrefix(h.Hex(), h.Short()) {
		t.Error("Short is not a prefix of Hex")
	}
}

func TestIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
	if Sum(nil).IsZero() {
		t.Error("Sum(nil).IsZero() = true")
	}
}

func TestMarshalTextRoundTrip(t *testing.T) {
	h := Sum([]byte("marshal"))
	text, err := h.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Hash
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Error("text round trip mismatch")
	}
}
