package hashutil

import "errors"

// ErrEmptyMerkle is returned when building a Merkle root over no leaves.
var ErrEmptyMerkle = errors.New("merkle tree requires at least one leaf")

// Domain-separation prefixes prevent second-preimage attacks where an
// interior node is presented as a leaf (CVE-2012-2459 class).
var (
	leafPrefix     = []byte{0x00}
	interiorPrefix = []byte{0x01}
)

// MerkleRoot computes the root hash of a binary Merkle tree over the
// given leaves. Odd levels duplicate the final node, matching the
// Bitcoin construction used by the chain-structured baseline.
func MerkleRoot(leaves []Hash) (Hash, error) {
	if len(leaves) == 0 {
		return Zero, ErrEmptyMerkle
	}
	level := make([]Hash, len(leaves))
	for i, leaf := range leaves {
		level[i] = SumConcat(leafPrefix, leaf[:])
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			j := i + 1
			if j == len(level) {
				j = i // duplicate final node on odd levels
			}
			next = append(next, SumConcat(interiorPrefix, level[i][:], level[j][:]))
		}
		level = next
	}
	return level[0], nil
}

// MerkleProof is an inclusion proof for one leaf: the sibling hashes from
// the leaf to the root, with Left indicating the sibling's side.
type MerkleProof struct {
	Index    int
	Siblings []Hash
	Lefts    []bool // Lefts[i] is true when Siblings[i] is the left child
}

// BuildMerkleProof produces an inclusion proof for leaves[index].
func BuildMerkleProof(leaves []Hash, index int) (MerkleProof, error) {
	if len(leaves) == 0 {
		return MerkleProof{}, ErrEmptyMerkle
	}
	if index < 0 || index >= len(leaves) {
		return MerkleProof{}, errors.New("merkle proof index out of range")
	}
	level := make([]Hash, len(leaves))
	for i, leaf := range leaves {
		level[i] = SumConcat(leafPrefix, leaf[:])
	}
	proof := MerkleProof{Index: index}
	pos := index
	for len(level) > 1 {
		sib := pos ^ 1
		if sib >= len(level) {
			sib = pos // duplicated node
		}
		proof.Siblings = append(proof.Siblings, level[sib])
		proof.Lefts = append(proof.Lefts, sib < pos)
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			j := i + 1
			if j == len(level) {
				j = i
			}
			next = append(next, SumConcat(interiorPrefix, level[i][:], level[j][:]))
		}
		level = next
		pos /= 2
	}
	return proof, nil
}

// VerifyMerkleProof checks that leaf is included under root per proof.
func VerifyMerkleProof(root Hash, leaf Hash, proof MerkleProof) bool {
	if len(proof.Siblings) != len(proof.Lefts) {
		return false
	}
	cur := SumConcat(leafPrefix, leaf[:])
	for i, sib := range proof.Siblings {
		if proof.Lefts[i] {
			cur = SumConcat(interiorPrefix, sib[:], cur[:])
		} else {
			cur = SumConcat(interiorPrefix, cur[:], sib[:])
		}
	}
	return cur == root
}
