package hashutil

import (
	"fmt"
	"testing"
	"testing/quick"
)

func leavesN(n int) []Hash {
	out := make([]Hash, n)
	for i := range out {
		out[i] = Sum([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return out
}

func TestMerkleRootEmpty(t *testing.T) {
	if _, err := MerkleRoot(nil); err == nil {
		t.Error("empty merkle root succeeded, want error")
	}
}

func TestMerkleRootDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			leaves := leavesN(n)
			r1, err := MerkleRoot(leaves)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := MerkleRoot(leaves)
			if err != nil {
				t.Fatal(err)
			}
			if r1 != r2 {
				t.Error("roots differ across runs")
			}
		})
	}
}

func TestMerkleRootSensitiveToLeafChange(t *testing.T) {
	leaves := leavesN(8)
	before, err := MerkleRoot(leaves)
	if err != nil {
		t.Fatal(err)
	}
	leaves[3][0] ^= 0x01
	after, err := MerkleRoot(leaves)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Error("root unchanged after leaf mutation")
	}
}

func TestMerkleRootSensitiveToOrder(t *testing.T) {
	leaves := leavesN(4)
	before, err := MerkleRoot(leaves)
	if err != nil {
		t.Fatal(err)
	}
	leaves[0], leaves[1] = leaves[1], leaves[0]
	after, err := MerkleRoot(leaves)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Error("root unchanged after leaf reorder")
	}
}

func TestMerkleLeafInteriorDomainSeparation(t *testing.T) {
	// A single leaf's root must not equal the raw leaf hash (the
	// classic second-preimage confusion).
	leaf := Sum([]byte("solo"))
	root, err := MerkleRoot([]Hash{leaf})
	if err != nil {
		t.Fatal(err)
	}
	if root == leaf {
		t.Error("single-leaf root equals leaf hash: missing domain separation")
	}
}

func TestMerkleProofAllLeaves(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			leaves := leavesN(n)
			root, err := MerkleRoot(leaves)
			if err != nil {
				t.Fatal(err)
			}
			for i := range leaves {
				proof, err := BuildMerkleProof(leaves, i)
				if err != nil {
					t.Fatalf("proof %d: %v", i, err)
				}
				if !VerifyMerkleProof(root, leaves[i], proof) {
					t.Errorf("proof %d did not verify", i)
				}
			}
		})
	}
}

func TestMerkleProofRejectsWrongLeaf(t *testing.T) {
	leaves := leavesN(6)
	root, err := MerkleRoot(leaves)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := BuildMerkleProof(leaves, 2)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyMerkleProof(root, leaves[3], proof) {
		t.Error("proof verified for the wrong leaf")
	}
	tampered := leaves[2]
	tampered[0] ^= 1
	if VerifyMerkleProof(root, tampered, proof) {
		t.Error("proof verified for a tampered leaf")
	}
}

func TestMerkleProofRejectsWrongRoot(t *testing.T) {
	leaves := leavesN(6)
	proof, err := BuildMerkleProof(leaves, 0)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyMerkleProof(Sum([]byte("other root")), leaves[0], proof) {
		t.Error("proof verified under the wrong root")
	}
}

func TestMerkleProofIndexOutOfRange(t *testing.T) {
	leaves := leavesN(3)
	for _, idx := range []int{-1, 3, 100} {
		if _, err := BuildMerkleProof(leaves, idx); err == nil {
			t.Errorf("index %d accepted", idx)
		}
	}
	if _, err := BuildMerkleProof(nil, 0); err == nil {
		t.Error("empty leaves accepted")
	}
}

func TestMerkleProofMalformed(t *testing.T) {
	leaves := leavesN(4)
	root, err := MerkleRoot(leaves)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := BuildMerkleProof(leaves, 1)
	if err != nil {
		t.Fatal(err)
	}
	proof.Lefts = proof.Lefts[:len(proof.Lefts)-1] // length mismatch
	if VerifyMerkleProof(root, leaves[1], proof) {
		t.Error("malformed proof verified")
	}
}

// Property: merkle roots over distinct leaf multisets (different first
// leaf) differ — collision resistance at the structural level.
func TestMerkleRootInjectiveish(t *testing.T) {
	check := func(a, b Hash) bool {
		if a == b {
			return true
		}
		r1, err1 := MerkleRoot([]Hash{a, b})
		r2, err2 := MerkleRoot([]Hash{b, a})
		return err1 == nil && err2 == nil && r1 != r2
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
