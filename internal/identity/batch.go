package identity

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha512"
	"fmt"

	"github.com/b-iot/biot/internal/identity/edwards25519"
)

// MinBatchSize is the smallest batch VerifyBatch verifies with the
// shared-ladder equation; below it the per-signature path is at least
// as fast (the fixed cost of the random coefficients and the Straus
// setup outweighs the shared doublings).
const MinBatchSize = 2

// batchCoefficientBytes sizes the random coefficient drawn per
// signature: 128 bits bounds a forged batch's acceptance probability at
// ~2^-128, matching the curve's security level; wider buys nothing.
const batchCoefficientBytes = 16

// VerifyBatch checks n (public key, message, signature) triples
// together. It returns nil when every signature verifies; otherwise it
// returns a slice of length n whose entry i reports triple i's failure
// (nil for the triples that are individually valid), so one bad
// signature in a gossip batch still pinpoints the offender.
//
// The fast path verifies the whole batch with a single multi-scalar
// equation: sample random 128-bit z_i and check
//
//	[Σ z_i s_i]B − Σ [z_i k_i]A_i − Σ [z_i]R_i == identity,
//
// which holds for any set of valid signatures and fails, except with
// probability ~2^-128 per forged term, when any signature is invalid.
// One pass shares the 256-step doubling ladder across every term, so a
// batch of n costs roughly n·(two NAF tables + sparse additions)
// instead of n independent double-scalar multiplications. When the
// batch equation fails, each signature is re-checked with Verify — the
// fallback is what attributes the failure, and it also guarantees the
// accept/reject decision for invalid batches is byte-for-byte the
// per-signature one.
//
// Triples whose key or signature is structurally unusable (wrong key
// length, wrong signature length, non-canonical s, undecodable R or A)
// are rejected up front with a typed error — ErrBadKeyLength for
// malformed keys — and excluded from the equation; the remaining
// triples are still batch-verified.
func VerifyBatch(pubs []PublicKey, messages, sigs [][]byte) []error {
	n := len(pubs)
	if len(messages) != n || len(sigs) != n {
		panic(fmt.Sprintf("identity: VerifyBatch length mismatch: %d keys, %d messages, %d signatures",
			n, len(messages), len(sigs)))
	}
	if n == 0 {
		return nil
	}
	if n < MinBatchSize {
		return verifyEach(pubs, messages, sigs)
	}

	errs := make([]error, n)
	failed := false

	// Decode every triple into curve form, rejecting the structurally
	// unusable ones up front. Entry i participates in the batch
	// equation iff errs[i] is still nil afterwards.
	As := make([]*edwards25519.Point, 0, n)
	Rs := make([]*edwards25519.Point, 0, n)
	ss := make([]*edwards25519.Scalar, 0, n)
	ks := make([]*edwards25519.Scalar, 0, n)
	live := make([]int, 0, n) // batch slot -> triple index
	for i := 0; i < n; i++ {
		if len(pubs[i]) != ed25519.PublicKeySize {
			errs[i] = fmt.Errorf("%w: length %d", ErrBadKeyLength, len(pubs[i]))
			failed = true
			continue
		}
		if len(sigs[i]) != ed25519.SignatureSize {
			errs[i] = ErrBadSignature
			failed = true
			continue
		}
		s, err := edwards25519.NewScalar().SetCanonicalBytes(sigs[i][32:])
		if err != nil {
			// Non-canonical s: RFC 8032 (and crypto/ed25519) reject it.
			errs[i] = ErrBadSignature
			failed = true
			continue
		}
		A, err := new(edwards25519.Point).SetBytes(pubs[i])
		if err != nil {
			errs[i] = fmt.Errorf("%w: not a curve point", ErrBadPublicKey)
			failed = true
			continue
		}
		R, err := new(edwards25519.Point).SetBytes(sigs[i][:32])
		if err != nil {
			// sig[:32] is not the canonical encoding of any point, while
			// the R' a per-signature verify computes always encodes to
			// one — the comparison cannot succeed.
			errs[i] = ErrBadSignature
			failed = true
			continue
		}
		kh := sha512.New()
		kh.Write(sigs[i][:32])
		kh.Write(pubs[i])
		kh.Write(messages[i])
		var digest [64]byte
		k, err := edwards25519.NewScalar().SetUniformBytes(kh.Sum(digest[:0]))
		if err != nil {
			errs[i] = ErrBadSignature
			failed = true
			continue
		}
		As = append(As, A)
		Rs = append(Rs, R)
		ss = append(ss, s)
		ks = append(ks, k)
		live = append(live, i)
	}

	switch {
	case len(live) == 0:
		return errs
	case len(live) < MinBatchSize:
		for _, i := range live {
			if errs[i] = Verify(pubs[i], messages[i], sigs[i]); errs[i] != nil {
				failed = true
			}
		}
		if !failed {
			return nil
		}
		return errs
	}

	// Random coefficients: one entropy read for the whole batch. If the
	// system entropy source is unusable, fall back to per-signature
	// verification rather than accepting a weaker equation.
	zRaw := make([]byte, batchCoefficientBytes*len(live))
	if _, err := rand.Read(zRaw); err != nil {
		for _, i := range live {
			if errs[i] = Verify(pubs[i], messages[i], sigs[i]); errs[i] != nil {
				failed = true
			}
		}
		if !failed {
			return nil
		}
		return errs
	}

	// Assemble [Σ z_i s_i]B + Σ [−z_i k_i]A_i + Σ [−z_i]R_i.
	var zBuf [32]byte
	bScalar := edwards25519.NewScalar()
	scalars := make([]*edwards25519.Scalar, 0, 2*len(live))
	points := make([]*edwards25519.Point, 0, 2*len(live))
	for slot := range live {
		copy(zBuf[:batchCoefficientBytes], zRaw[slot*batchCoefficientBytes:])
		z, err := edwards25519.NewScalar().SetCanonicalBytes(zBuf[:])
		if err != nil {
			// Unreachable: a 128-bit value is always below the group
			// order l ≈ 2^252.
			panic("identity: batch coefficient out of range")
		}
		bScalar.MultiplyAdd(z, ss[slot], bScalar)
		zNeg := edwards25519.NewScalar().Negate(z)
		scalars = append(scalars, edwards25519.NewScalar().Multiply(zNeg, ks[slot]), zNeg)
		points = append(points, As[slot], Rs[slot])
	}
	check := new(edwards25519.Point).VarTimeMultiScalarBaseMult(bScalar, scalars, points)
	if check.Equal(edwards25519.NewIdentityPoint()) == 1 {
		if !failed {
			return nil
		}
		return errs
	}

	// The combined equation failed: at least one signature in the batch
	// is bad. Re-check each one individually to pinpoint the offenders
	// (and to make the final verdict identical to Verify's).
	for _, i := range live {
		errs[i] = Verify(pubs[i], messages[i], sigs[i])
	}
	return errs
}

// verifyEach is the trivial per-signature path for degenerate batches.
func verifyEach(pubs []PublicKey, messages, sigs [][]byte) []error {
	var errs []error
	for i := range pubs {
		if err := Verify(pubs[i], messages[i], sigs[i]); err != nil {
			if errs == nil {
				errs = make([]error, len(pubs))
			}
			errs[i] = err
		}
	}
	return errs
}
