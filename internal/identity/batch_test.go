package identity

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// batchFixture builds one (pubs, messages, sigs) triple set from a
// seeded RNG, mutating a seeded subset into corrupted / truncated /
// short-key entries, and returns the expected per-entry validity.
type batchCase int

const (
	caseValid batchCase = iota
	caseCorruptSig
	caseTruncatedSig
	caseCorruptMessage
	caseShortKey
	caseWrongSigner
	numBatchCases
)

func buildBatch(t testing.TB, rng *rand.Rand, cases []batchCase) (pubs []PublicKey, msgs, sigs [][]byte) {
	t.Helper()
	for i, c := range cases {
		key, err := GenerateFrom(rng)
		if err != nil {
			t.Fatalf("generate key %d: %v", i, err)
		}
		// Mixed message sizes: empty, tiny, and up to a few KiB.
		msg := make([]byte, rng.Intn(4096))
		rng.Read(msg)
		sig := key.Sign(msg)
		pub := key.Public()
		switch c {
		case caseCorruptSig:
			sig[rng.Intn(len(sig))] ^= 1 << uint(rng.Intn(8))
		case caseTruncatedSig:
			sig = sig[:rng.Intn(len(sig))]
		case caseCorruptMessage:
			if len(msg) == 0 {
				msg = []byte{0x7F}
			} else {
				msg[rng.Intn(len(msg))] ^= 0x40
			}
		case caseShortKey:
			pub = pub[:rng.Intn(len(pub))]
		case caseWrongSigner:
			other, err := GenerateFrom(rng)
			if err != nil {
				t.Fatalf("generate foreign key: %v", err)
			}
			sig = other.Sign(msg)
		}
		pubs = append(pubs, pub)
		msgs = append(msgs, msg)
		sigs = append(sigs, sig)
	}
	return pubs, msgs, sigs
}

// TestVerifyBatchAgreesWithVerify is the batch/single agreement
// property: over seeded interleavings of valid, corrupted, truncated
// and mis-keyed entries at mixed message sizes, VerifyBatch's
// per-entry verdict must match identity.Verify exactly.
func TestVerifyBatchAgreesWithVerify(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xB107 + seed))
			n := 1 + rng.Intn(48)
			cases := make([]batchCase, n)
			for i := range cases {
				// Bias toward valid entries so most seeds exercise the
				// batch-accept fast path with occasional offenders.
				if rng.Intn(3) == 0 {
					cases[i] = batchCase(rng.Intn(int(numBatchCases)))
				}
			}
			pubs, msgs, sigs := buildBatch(t, rng, cases)
			checkAgreement(t, pubs, msgs, sigs)
		})
	}
}

// TestVerifyBatchAllInvalid pins the all-offenders edge: every entry
// must be individually attributed, none silently accepted.
func TestVerifyBatchAllInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := make([]batchCase, 16)
	for i := range cases {
		cases[i] = 1 + batchCase(rng.Intn(int(numBatchCases)-1))
	}
	pubs, msgs, sigs := buildBatch(t, rng, cases)
	errs := VerifyBatch(pubs, msgs, sigs)
	if errs == nil {
		t.Fatal("all-invalid batch verified clean")
	}
	for i, err := range errs {
		if err == nil {
			t.Errorf("entry %d (case %d): invalid entry accepted", i, cases[i])
		}
	}
	checkAgreement(t, pubs, msgs, sigs)
}

// TestVerifyBatchSingleInvalidIn64 pins offender attribution in a
// large otherwise-valid batch: exactly one entry rejected, the right
// one.
func TestVerifyBatchSingleInvalidIn64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := make([]batchCase, 64)
	bad := rng.Intn(64)
	cases[bad] = caseCorruptSig
	pubs, msgs, sigs := buildBatch(t, rng, cases)
	errs := VerifyBatch(pubs, msgs, sigs)
	if errs == nil {
		t.Fatal("batch with one corrupted signature verified clean")
	}
	for i, err := range errs {
		if i == bad && err == nil {
			t.Errorf("offender %d accepted", bad)
		}
		if i != bad && err != nil {
			t.Errorf("valid entry %d rejected: %v", i, err)
		}
	}
}

func TestVerifyBatchAllValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 64} {
		pubs, msgs, sigs := buildBatch(t, rng, make([]batchCase, n))
		if errs := VerifyBatch(pubs, msgs, sigs); errs != nil {
			t.Fatalf("n=%d: valid batch rejected: %v", n, errs)
		}
	}
}

func TestVerifyBatchEmptyAndMismatched(t *testing.T) {
	if errs := VerifyBatch(nil, nil, nil); errs != nil {
		t.Fatalf("empty batch: %v", errs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched slice lengths")
		}
	}()
	VerifyBatch(make([]PublicKey, 2), make([][]byte, 1), make([][]byte, 2))
}

// TestVerifyBatchShortKeyTyped pins the satellite contract: malformed
// keys surface ErrBadKeyLength, distinguishable from ErrBadSignature.
func TestVerifyBatchShortKeyTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cases := make([]batchCase, 8)
	cases[3] = caseShortKey
	cases[5] = caseCorruptSig
	pubs, msgs, sigs := buildBatch(t, rng, cases)
	errs := VerifyBatch(pubs, msgs, sigs)
	if errs == nil {
		t.Fatal("batch with short key verified clean")
	}
	if !errors.Is(errs[3], ErrBadKeyLength) {
		t.Errorf("short key error = %v, want ErrBadKeyLength", errs[3])
	}
	if errors.Is(errs[5], ErrBadKeyLength) || errs[5] == nil {
		t.Errorf("corrupt signature error = %v, want a non-key error", errs[5])
	}
	if !errors.Is(Verify(pubs[3], msgs[3], sigs[3]), ErrBadKeyLength) {
		t.Error("identity.Verify on a short key must return ErrBadKeyLength")
	}
}

// checkAgreement asserts VerifyBatch and Verify agree entry-by-entry.
func checkAgreement(t *testing.T, pubs []PublicKey, msgs, sigs [][]byte) {
	t.Helper()
	errs := VerifyBatch(pubs, msgs, sigs)
	for i := range pubs {
		single := Verify(pubs[i], msgs[i], sigs[i])
		var batch error
		if errs != nil {
			batch = errs[i]
		}
		if (single == nil) != (batch == nil) {
			t.Errorf("entry %d: batch verdict %v, single verdict %v", i, batch, single)
		}
	}
}

func BenchmarkVerifySingle(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pubs, msgs, sigs := buildBatch(b, rng, make([]batchCase, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(pubs)
		if err := Verify(pubs[j], msgs[j], sigs[j]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyBatch(b *testing.B) {
	for _, n := range []int{2, 8, 16, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			pubs, msgs, sigs := buildBatch(b, rng, make([]batchCase, n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if errs := VerifyBatch(pubs, msgs, sigs); errs != nil {
					b.Fatal("batch rejected")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/sig")
		})
	}
}

// Guard: a KeyPair's Sign output stays bit-stable under the batch
// path's buffer reuse (regression guard for aliasing bugs in the
// decode loop).
func TestVerifyBatchDoesNotMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pubs, msgs, sigs := buildBatch(t, rng, make([]batchCase, 4))
	pubCopy := append([]byte(nil), pubs[0]...)
	sigCopy := append([]byte(nil), sigs[0]...)
	msgCopy := append([]byte(nil), msgs[0]...)
	VerifyBatch(pubs, msgs, sigs)
	if !bytes.Equal(pubCopy, pubs[0]) || !bytes.Equal(sigCopy, sigs[0]) || !bytes.Equal(msgCopy, msgs[0]) {
		t.Fatal("VerifyBatch mutated caller buffers")
	}
}
