package identity

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// The paper's key distribution (§IV-C, Fig 4) encrypts the symmetric key
// under the IoT device's public key: "M1 is encrypted by the public key
// of IoT device, which means the message only can be decrypted by the
// IoT device". Ed25519 keys sign but do not encrypt, so every account
// also derives a deterministic X25519 key-agreement key from its seed;
// SealTo/OpenSealed implement an ECIES construction over it
// (ephemeral X25519 + HKDF-less SHA-256 KDF + AES-256-GCM).

const (
	// BoxPublicKeySize is the X25519 public key length.
	BoxPublicKeySize = 32

	eciesNonceSize = 12
)

var eciesKDFLabel = []byte("b-iot/ecies/v1")

// ECIES errors.
var (
	ErrBadBoxKey    = errors.New("malformed encryption public key")
	ErrSealedFormat = errors.New("malformed sealed box")
	ErrOpenFailed   = errors.New("sealed box decryption failed")
)

// deriveBoxKey derives the account's X25519 private key from the Ed25519
// seed. Deterministic: the same account always has the same box key, so
// no extra key state needs distribution.
func deriveBoxKey(seed []byte) (*ecdh.PrivateKey, error) {
	scalar := sha256.Sum256(append(append([]byte{}, seed...), eciesKDFLabel...))
	priv, err := ecdh.X25519().NewPrivateKey(scalar[:])
	if err != nil {
		return nil, fmt.Errorf("derive x25519 key: %w", err)
	}
	return priv, nil
}

// BoxPublic returns the account's X25519 public key used by peers to
// encrypt to this account.
func (k *KeyPair) BoxPublic() []byte {
	return k.box.PublicKey().Bytes()
}

// SealTo encrypts plaintext so that only the holder of recipientBoxPub's
// private counterpart can open it. Output layout:
//
//	ephemeralPub(32) || nonce(12) || ciphertext+tag
func SealTo(recipientBoxPub, plaintext []byte) ([]byte, error) {
	recipient, err := ecdh.X25519().NewPublicKey(recipientBoxPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBoxKey, err)
	}
	ephPriv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate ephemeral key: %w", err)
	}
	shared, err := ephPriv.ECDH(recipient)
	if err != nil {
		return nil, fmt.Errorf("ecdh: %w", err)
	}
	aead, err := eciesAEAD(shared, ephPriv.PublicKey().Bytes(), recipientBoxPub)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, eciesNonceSize)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("generate nonce: %w", err)
	}
	out := make([]byte, 0, BoxPublicKeySize+eciesNonceSize+len(plaintext)+aead.Overhead())
	out = append(out, ephPriv.PublicKey().Bytes()...)
	out = append(out, nonce...)
	return aead.Seal(out, nonce, plaintext, nil), nil
}

// OpenSealed decrypts a box produced by SealTo for this account.
func (k *KeyPair) OpenSealed(sealed []byte) ([]byte, error) {
	if len(sealed) < BoxPublicKeySize+eciesNonceSize+16 {
		return nil, fmt.Errorf("%w: %d bytes", ErrSealedFormat, len(sealed))
	}
	ephPub, err := ecdh.X25519().NewPublicKey(sealed[:BoxPublicKeySize])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSealedFormat, err)
	}
	shared, err := k.box.ECDH(ephPub)
	if err != nil {
		return nil, fmt.Errorf("ecdh: %w", err)
	}
	aead, err := eciesAEAD(shared, sealed[:BoxPublicKeySize], k.BoxPublic())
	if err != nil {
		return nil, err
	}
	nonce := sealed[BoxPublicKeySize : BoxPublicKeySize+eciesNonceSize]
	plain, err := aead.Open(nil, nonce, sealed[BoxPublicKeySize+eciesNonceSize:], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrOpenFailed, err)
	}
	return plain, nil
}

// eciesAEAD derives the session AEAD from the shared secret and both
// public keys (binding the ciphertext to the key exchange transcript).
func eciesAEAD(shared, ephPub, recipientPub []byte) (cipher.AEAD, error) {
	h := sha256.New()
	h.Write(eciesKDFLabel)
	h.Write(shared)
	h.Write(ephPub)
	h.Write(recipientPub)
	sessionKey := h.Sum(nil)

	block, err := aes.NewCipher(sessionKey)
	if err != nil {
		return nil, fmt.Errorf("aes cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("gcm mode: %w", err)
	}
	return aead, nil
}
