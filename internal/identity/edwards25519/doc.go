// Package edwards25519 implements group logic for the twisted Edwards
// curve -x^2 + y^2 = 1 + -(121665/121666)*x^2*y^2 used by Ed25519.
//
// The core of the package (point arithmetic, scalars, tables, field
// elements) is vendored from the Go standard library's internal
// crypto/internal/fips140/edwards25519 package (BSD-licensed; the
// original copyright headers are retained), with the internal-only
// byteorder/subtle shims replaced by their public equivalents. It is
// vendored because the standard library exposes no batch-verification
// primitive, and this repository takes no external module dependencies.
//
// On top of the vendored core, multiscalar.go adds the variable-time
// multi-scalar multiplication used by identity.VerifyBatch: one
// interleaved Straus pass over any number of dynamic points plus the
// fixed basepoint, which is what turns N independent double-scalar
// verifications into one shared doubling ladder.
//
// Nothing in this package is constant-time unless stated: it is used
// only to verify public signatures, never with secret scalars.
package edwards25519
