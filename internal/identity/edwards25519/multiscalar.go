package edwards25519

// VarTimeMultiScalarBaseMult sets v = b*B + Σ scalars[i]*points[i],
// where B is the canonical generator, and returns v.
//
// It is the batch-verification workhorse: a single Straus pass shares
// one 256-iteration doubling ladder across every term, so the marginal
// cost of one more point is only its width-5 NAF table (8 additions)
// plus ~51 sparse additions — versus the ~256 doublings a standalone
// scalar multiplication would pay.
//
// Execution time depends on the inputs. scalars and points must have
// equal length.
func (v *Point) VarTimeMultiScalarBaseMult(b *Scalar, scalars []*Scalar, points []*Point) *Point {
	if len(scalars) != len(points) {
		panic("edwards25519: mismatched multiscalar input lengths")
	}
	checkInitialized(points...)

	// Dynamic points get width-5 NAF tables built at runtime; the fixed
	// basepoint reuses the precomputed width-8 table (sparser digits).
	tables := make([]nafLookupTable5, len(points))
	nafs := make([][256]int8, len(scalars))
	for i, p := range points {
		tables[i].FromP3(p)
		nafs[i] = scalars[i].nonAdjacentForm(5)
	}
	basepointNafTable := basepointNafTable()
	bNaf := b.nonAdjacentForm(8)

	// Find the first nonzero coefficient across every NAF.
	i := 255
	for ; i >= 0; i-- {
		nonzero := bNaf[i] != 0
		for j := 0; !nonzero && j < len(nafs); j++ {
			nonzero = nafs[j][i] != 0
		}
		if nonzero {
			break
		}
	}

	multA := &projCached{}
	multB := &affineCached{}
	tmp1 := &projP1xP1{}
	tmp2 := &projP2{}
	tmp2.Zero()

	for ; i >= 0; i-- {
		tmp1.Double(tmp2)

		for j := range nafs {
			if nafs[j][i] > 0 {
				v.fromP1xP1(tmp1)
				tables[j].SelectInto(multA, nafs[j][i])
				tmp1.Add(v, multA)
			} else if nafs[j][i] < 0 {
				v.fromP1xP1(tmp1)
				tables[j].SelectInto(multA, -nafs[j][i])
				tmp1.Sub(v, multA)
			}
		}

		if bNaf[i] > 0 {
			v.fromP1xP1(tmp1)
			basepointNafTable.SelectInto(multB, bNaf[i])
			tmp1.AddAffine(v, multB)
		} else if bNaf[i] < 0 {
			v.fromP1xP1(tmp1)
			basepointNafTable.SelectInto(multB, -bNaf[i])
			tmp1.SubAffine(v, multB)
		}

		tmp2.FromP1xP1(tmp1)
	}

	v.fromP2(tmp2)
	return v
}
