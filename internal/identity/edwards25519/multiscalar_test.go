package edwards25519

import (
	"crypto/sha512"
	"testing"
)

// testScalar derives a deterministic reduced scalar from a seed byte.
func testScalar(t *testing.T, seed byte) *Scalar {
	t.Helper()
	wide := sha512.Sum512([]byte{seed, 0xA5, seed ^ 0x3C})
	s, err := NewScalar().SetUniformBytes(wide[:])
	if err != nil {
		t.Fatalf("SetUniformBytes: %v", err)
	}
	return s
}

func TestVarTimeMultiScalarBaseMultAgainstNaive(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 8, 33} {
		b := testScalar(t, byte(100+n))
		scalars := make([]*Scalar, n)
		points := make([]*Point, n)
		for i := range scalars {
			scalars[i] = testScalar(t, byte(2*i+1))
			points[i] = NewIdentityPoint().ScalarBaseMult(testScalar(t, byte(2*i+2)))
		}

		want := NewIdentityPoint().ScalarBaseMult(b)
		for i := range scalars {
			term := NewIdentityPoint().ScalarMult(scalars[i], points[i])
			want.Add(want, term)
		}

		got := NewIdentityPoint().VarTimeMultiScalarBaseMult(b, scalars, points)
		if got.Equal(want) != 1 {
			t.Fatalf("n=%d: multiscalar result diverges from naive sum", n)
		}
	}
}

func TestVarTimeMultiScalarBaseMultZeroScalars(t *testing.T) {
	zero := NewScalar()
	p := NewIdentityPoint().ScalarBaseMult(testScalar(t, 7))
	got := NewIdentityPoint().VarTimeMultiScalarBaseMult(zero, []*Scalar{zero}, []*Point{p})
	if got.Equal(NewIdentityPoint()) != 1 {
		t.Fatal("all-zero scalars must yield the identity")
	}
}

func TestVarTimeMultiScalarBaseMultLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched input lengths")
		}
	}()
	NewIdentityPoint().VarTimeMultiScalarBaseMult(NewScalar(), []*Scalar{NewScalar()}, nil)
}
