// Package identity implements blockchain accounts for B-IoT nodes.
//
// The paper (§IV-A1): "Each sensor will generate a blockchain account
// when initialized, i.e., a pair of public/secret key (PK, SK), which is
// the unique identifier in the system. The key pair for each device is
// not only used to sign transactions, but also to make the key
// distribution."
//
// Keys are Ed25519; an Address is the SHA-256 digest of the public key
// and serves as the compact on-ledger identifier.
package identity

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"github.com/b-iot/biot/internal/hashutil"
)

// Role describes the functional division of nodes in the system
// (paper §IV-A): light nodes are power-constrained IoT devices; full
// nodes maintain the tangle. The manager is a specific full node.
type Role int

const (
	// RoleDevice is a light node: a power-constrained IoT device that
	// verifies tips, runs PoW, and submits transactions via gateways.
	RoleDevice Role = iota + 1
	// RoleGateway is a full node that maintains the tangle network and
	// relays transactions from authorized devices.
	RoleGateway
	// RoleManager is the specific full node whose public key is pinned
	// in the genesis configuration and that manages device authorization.
	RoleManager
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleDevice:
		return "device"
	case RoleGateway:
		return "gateway"
	case RoleManager:
		return "manager"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Valid reports whether r is a known role.
func (r Role) Valid() bool {
	return r == RoleDevice || r == RoleGateway || r == RoleManager
}

// Address is the compact on-ledger identifier of an account: the SHA-256
// digest of its Ed25519 public key.
type Address = hashutil.Hash

// PublicKey is an Ed25519 public key.
type PublicKey = ed25519.PublicKey

// KeyPair is a blockchain account: an Ed25519 signing key pair, a
// derived X25519 key-agreement key (for ECIES; see ecies.go), and the
// derived address. Secret material never leaves the struct; sign through
// Sign and decrypt through OpenSealed.
type KeyPair struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
	box  *ecdh.PrivateKey
	addr Address
}

// Generate creates a fresh account from crypto/rand.
func Generate() (*KeyPair, error) {
	return GenerateFrom(rand.Reader)
}

// GenerateFrom creates an account from the given entropy source. Tests
// use deterministic readers to build reproducible fixtures.
func GenerateFrom(r io.Reader) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("generate ed25519 key: %w", err)
	}
	box, err := deriveBoxKey(priv.Seed())
	if err != nil {
		return nil, err
	}
	return &KeyPair{pub: pub, priv: priv, box: box, addr: AddressOf(pub)}, nil
}

// SeedSize is the length of the entropy seed an account derives from.
const SeedSize = ed25519.SeedSize

// FromSeed reconstructs the account deterministically derived from a
// 32-byte seed — the durable form of an identity. Seed/FromSeed
// round-trip: a node that persists its seed resumes the same address,
// signing key, and ECIES key after a restart.
func FromSeed(seed []byte) (*KeyPair, error) {
	if len(seed) != SeedSize {
		return nil, fmt.Errorf("identity seed is %d bytes, want %d", len(seed), SeedSize)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)
	box, err := deriveBoxKey(priv.Seed())
	if err != nil {
		return nil, err
	}
	return &KeyPair{pub: pub, priv: priv, box: box, addr: AddressOf(pub)}, nil
}

// Seed returns the account's entropy seed (a copy). It is the
// account's whole secret: treat it like the private key.
func (k *KeyPair) Seed() []byte {
	return append([]byte(nil), k.priv.Seed()...)
}

// AddressOf derives the account address for a public key.
func AddressOf(pub PublicKey) Address {
	return hashutil.Sum(pub)
}

// Public returns the public key (a copy; callers cannot mutate ours).
func (k *KeyPair) Public() PublicKey {
	out := make(ed25519.PublicKey, len(k.pub))
	copy(out, k.pub)
	return out
}

// Address returns the account address.
func (k *KeyPair) Address() Address { return k.addr }

// Sign signs message with the account's secret key.
func (k *KeyPair) Sign(message []byte) []byte {
	return ed25519.Sign(k.priv, message)
}

// Errors returned by Verify.
var (
	ErrBadSignature = errors.New("signature verification failed")
	ErrBadPublicKey = errors.New("malformed public key")
	// ErrBadKeyLength reports a public key of the wrong byte length. It
	// is distinct from ErrBadSignature so batch-verification fallback
	// (and its callers) can tell a malformed key from a signature that
	// merely fails to verify.
	ErrBadKeyLength = errors.New("public key has wrong length")
)

// Verify checks sig over message under pub.
func Verify(pub PublicKey, message, sig []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: length %d", ErrBadKeyLength, len(pub))
	}
	if !ed25519.Verify(pub, message, sig) {
		return ErrBadSignature
	}
	return nil
}

// EncodePublic returns the hex encoding of a public key, used in RPC
// payloads and authorization lists.
func EncodePublic(pub PublicKey) string { return hex.EncodeToString(pub) }

// DecodePublic parses a hex-encoded public key.
func DecodePublic(s string) (PublicKey, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("decode public key hex: %w", err)
	}
	if len(raw) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("%w: length %d", ErrBadPublicKey, len(raw))
	}
	return PublicKey(raw), nil
}
