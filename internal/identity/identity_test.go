package identity

import (
	"bytes"
	"crypto/rand"
	"strings"
	"testing"
)

func mustKey(t *testing.T) *KeyPair {
	t.Helper()
	k, err := Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return k
}

func TestGenerateDistinctAccounts(t *testing.T) {
	a, b := mustKey(t), mustKey(t)
	if a.Address() == b.Address() {
		t.Error("two generated accounts share an address")
	}
	if bytes.Equal(a.Public(), b.Public()) {
		t.Error("two generated accounts share a public key")
	}
}

func TestGenerateFromDeterministic(t *testing.T) {
	seed := bytes.Repeat([]byte{0x42}, 64)
	k1, err := GenerateFrom(bytes.NewReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := GenerateFrom(bytes.NewReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	if k1.Address() != k2.Address() {
		t.Error("same seed produced different addresses")
	}
	if !bytes.Equal(k1.BoxPublic(), k2.BoxPublic()) {
		t.Error("same seed produced different box keys")
	}
}

func TestSignVerify(t *testing.T) {
	k := mustKey(t)
	msg := []byte("the manager authorizes device 7")
	sig := k.Sign(msg)
	if err := Verify(k.Public(), msg, sig); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	k := mustKey(t)
	msg := []byte("original")
	sig := k.Sign(msg)
	if err := Verify(k.Public(), []byte("originax"), sig); err == nil {
		t.Error("tampered message verified")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	k := mustKey(t)
	msg := []byte("msg")
	sig := k.Sign(msg)
	sig[0] ^= 1
	if err := Verify(k.Public(), msg, sig); err == nil {
		t.Error("tampered signature verified")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	a, b := mustKey(t), mustKey(t)
	msg := []byte("msg")
	sig := a.Sign(msg)
	if err := Verify(b.Public(), msg, sig); err == nil {
		t.Error("signature verified under the wrong key")
	}
}

func TestVerifyRejectsMalformedKey(t *testing.T) {
	k := mustKey(t)
	sig := k.Sign([]byte("m"))
	if err := Verify(k.Public()[:16], []byte("m"), sig); err == nil {
		t.Error("short public key accepted")
	}
}

func TestPublicIsACopy(t *testing.T) {
	k := mustKey(t)
	pub := k.Public()
	pub[0] ^= 0xFF
	if err := Verify(k.Public(), []byte("m"), k.Sign([]byte("m"))); err != nil {
		t.Error("mutating the returned public key corrupted the account")
	}
}

func TestAddressOfDerivation(t *testing.T) {
	k := mustKey(t)
	if AddressOf(k.Public()) != k.Address() {
		t.Error("AddressOf(pub) != Address()")
	}
}

func TestEncodeDecodePublic(t *testing.T) {
	k := mustKey(t)
	enc := EncodePublic(k.Public())
	dec, err := DecodePublic(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, k.Public()) {
		t.Error("public key round trip mismatch")
	}
}

func TestDecodePublicErrors(t *testing.T) {
	for _, in := range []string{"", "zz", strings.Repeat("ab", 5), strings.Repeat("ab", 64)} {
		if _, err := DecodePublic(in); err == nil {
			t.Errorf("DecodePublic(%q) succeeded", in)
		}
	}
}

func TestRoleString(t *testing.T) {
	tests := []struct {
		role Role
		want string
	}{
		{RoleDevice, "device"},
		{RoleGateway, "gateway"},
		{RoleManager, "manager"},
		{Role(99), "role(99)"},
	}
	for _, tt := range tests {
		if got := tt.role.String(); got != tt.want {
			t.Errorf("Role(%d).String() = %q, want %q", tt.role, got, tt.want)
		}
	}
}

func TestRoleValid(t *testing.T) {
	for _, r := range []Role{RoleDevice, RoleGateway, RoleManager} {
		if !r.Valid() {
			t.Errorf("%v not valid", r)
		}
	}
	if Role(0).Valid() || Role(4).Valid() {
		t.Error("out-of-range role valid")
	}
}

func TestECIESRoundTrip(t *testing.T) {
	recipient := mustKey(t)
	plain := []byte("SK_S || TS || nonce_a")
	sealed, err := SealTo(recipient.BoxPublic(), plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := recipient.OpenSealed(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Errorf("round trip = %q, want %q", got, plain)
	}
}

func TestECIESWrongRecipient(t *testing.T) {
	recipient, eavesdropper := mustKey(t), mustKey(t)
	sealed, err := SealTo(recipient.BoxPublic(), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eavesdropper.OpenSealed(sealed); err == nil {
		t.Error("eavesdropper opened the box")
	}
}

func TestECIESTamperDetection(t *testing.T) {
	recipient := mustKey(t)
	sealed, err := SealTo(recipient.BoxPublic(), []byte("secret payload"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, BoxPublicKeySize, BoxPublicKeySize + 5, len(sealed) - 1} {
		mutated := append([]byte(nil), sealed...)
		mutated[pos] ^= 0x01
		if _, err := recipient.OpenSealed(mutated); err == nil {
			t.Errorf("tampered box (byte %d) opened", pos)
		}
	}
}

func TestECIESNonDeterministic(t *testing.T) {
	recipient := mustKey(t)
	s1, err := SealTo(recipient.BoxPublic(), []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SealTo(recipient.BoxPublic(), []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1, s2) {
		t.Error("two seals of the same message are identical (nonce reuse?)")
	}
}

func TestECIESBadInputs(t *testing.T) {
	recipient := mustKey(t)
	if _, err := SealTo([]byte("short"), []byte("m")); err == nil {
		t.Error("short recipient key accepted")
	}
	if _, err := recipient.OpenSealed([]byte("too short")); err == nil {
		t.Error("truncated box accepted")
	}
}

func TestECIESEmptyPlaintext(t *testing.T) {
	recipient := mustKey(t)
	sealed, err := SealTo(recipient.BoxPublic(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := recipient.OpenSealed(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty plaintext round trip = %q", got)
	}
}

func TestECIESLargePlaintext(t *testing.T) {
	recipient := mustKey(t)
	plain := make([]byte, 1<<16)
	if _, err := rand.Read(plain); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealTo(recipient.BoxPublic(), plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := recipient.OpenSealed(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Error("large plaintext round trip mismatch")
	}
}

// TestFromSeedRoundTrip: Seed/FromSeed reconstruct the whole account —
// signing key, ECIES key, and address — which is what lets a node
// persist its identity in a keyfile and resume it after a restart.
func TestFromSeedRoundTrip(t *testing.T) {
	k := mustKey(t)
	k2, err := FromSeed(k.Seed())
	if err != nil {
		t.Fatalf("from seed: %v", err)
	}
	if !bytes.Equal(k2.Public(), k.Public()) {
		t.Error("public key changed through the seed round trip")
	}
	if k2.Address() != k.Address() {
		t.Error("address changed through the seed round trip")
	}
	if !bytes.Equal(k2.BoxPublic(), k.BoxPublic()) {
		t.Error("ECIES key changed through the seed round trip")
	}
	msg := []byte("seed round trip")
	if err := Verify(k.Public(), msg, k2.Sign(msg)); err != nil {
		t.Errorf("restored key's signature rejected: %v", err)
	}
	// The seed is a copy: mutating it must not corrupt the account.
	seed := k.Seed()
	for i := range seed {
		seed[i] = 0
	}
	if err := Verify(k.Public(), msg, k.Sign(msg)); err != nil {
		t.Errorf("account corrupted by seed mutation: %v", err)
	}
	if _, err := FromSeed(seed[:16]); err == nil {
		t.Error("short seed accepted")
	}
}
