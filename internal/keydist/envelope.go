package keydist

import (
	"encoding/json"
	"fmt"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// Stage identifies a protocol message within a session.
type Stage int

// Protocol stages (Fig 4's M1, M2, M3).
const (
	StageM1 Stage = 1
	StageM2 Stage = 2
	StageM3 Stage = 3
)

// Valid reports whether s is a protocol stage.
func (s Stage) Valid() bool { return s >= StageM1 && s <= StageM3 }

// Envelope is the payload of a KindKeyDist transaction: one protocol
// message addressed between the two parties. Riding the tangle gives the
// exchange the paper's "without any central trust server" property — the
// replicated ledger is the transport. The Body is already encrypted
// (ECIES to the device for M1, under SK_S for M2/M3), so the envelope
// leaks only routing metadata.
type Envelope struct {
	// Session pairs the three messages of one distribution run.
	Session string `json:"session"`
	// From and To are the account addresses of sender and recipient.
	From hashutil.Hash `json:"from"`
	To   hashutil.Hash `json:"to"`
	// Stage is 1, 2 or 3.
	Stage Stage `json:"stage"`
	// Body is the sealed protocol message.
	Body []byte `json:"body"`
}

// EncodeEnvelope serializes an envelope payload.
func EncodeEnvelope(e Envelope) ([]byte, error) {
	if !e.Stage.Valid() {
		return nil, fmt.Errorf("%w: stage %d", ErrBadMessage, e.Stage)
	}
	data, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("encode keydist envelope: %w", err)
	}
	return data, nil
}

// DecodeEnvelope parses an envelope payload.
func DecodeEnvelope(data []byte) (Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return Envelope{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if !e.Stage.Valid() {
		return Envelope{}, fmt.Errorf("%w: stage %d", ErrBadMessage, e.Stage)
	}
	return e, nil
}

// AddressedTo reports whether the envelope targets addr.
func (e Envelope) AddressedTo(addr identity.Address) bool { return e.To == addr }
