package keydist

import (
	"testing"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	from := identity.Address(hashutil.Sum([]byte("manager")))
	to := identity.Address(hashutil.Sum([]byte("device")))
	in := Envelope{
		Session: "abcd1234",
		From:    from,
		To:      to,
		Stage:   StageM1,
		Body:    []byte{1, 2, 3},
	}
	data, err := EncodeEnvelope(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Session != in.Session || out.From != from || out.To != to || out.Stage != StageM1 {
		t.Errorf("round trip = %+v", out)
	}
	if !out.AddressedTo(to) || out.AddressedTo(from) {
		t.Error("AddressedTo wrong")
	}
}

func TestEncodeEnvelopeRejectsBadStage(t *testing.T) {
	if _, err := EncodeEnvelope(Envelope{Stage: 0}); err == nil {
		t.Error("stage 0 encoded")
	}
	if _, err := EncodeEnvelope(Envelope{Stage: 4}); err == nil {
		t.Error("stage 4 encoded")
	}
}

func TestDecodeEnvelopeErrors(t *testing.T) {
	if _, err := DecodeEnvelope([]byte("{bad")); err == nil {
		t.Error("malformed envelope decoded")
	}
	if _, err := DecodeEnvelope([]byte(`{"stage":9}`)); err == nil {
		t.Error("bad stage decoded")
	}
}

func TestStageValid(t *testing.T) {
	for _, s := range []Stage{StageM1, StageM2, StageM3} {
		if !s.Valid() {
			t.Errorf("stage %d invalid", s)
		}
	}
	if Stage(0).Valid() || Stage(4).Valid() {
		t.Error("out-of-range stage valid")
	}
}
