// Package keydist implements the symmetric secret key distribution
// protocol of the paper's Fig 4 — three messages between the manager and
// an IoT device, "without any central trust server":
//
//	M1  Manager → Device:  Enc_PKD{ sign_SKM(SK_S, TS, nonce_a) }
//	M2  Device  → Manager: Enc_SKS{ sign_SKD(nonce_b, TS') , nonce_a }
//	M3  Manager → Device:  Enc_SKS{ sign_SKM(nonce_b, TS'') }
//
// Every message is signed by its sender ("ensures the received message
// is not tampered or damaged"), carries a timestamp ("used to resist
// replay attack"), and the nonces implement challenge–response: nonce_a
// proves the device decrypted M1 (hence holds SK_D), nonce_b proves the
// manager holds SK_S it just distributed.
//
// Messages are byte strings suitable for any transport; in B-IoT they
// ride in KindKeyDist tangle transactions addressed between the two
// parties.
package keydist

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/dataauth"
	"github.com/b-iot/biot/internal/identity"
)

// NonceSize is the challenge nonce length in bytes.
const NonceSize = 16

// DefaultFreshness is how far a message timestamp may deviate from the
// receiver's clock before the message is rejected as a replay.
const DefaultFreshness = 30 * time.Second

// Protocol errors.
var (
	ErrStaleMessage  = errors.New("message timestamp outside freshness window")
	ErrBadNonce      = errors.New("challenge nonce mismatch")
	ErrBadSigner     = errors.New("message signature invalid")
	ErrBadState      = errors.New("protocol message out of order")
	ErrBadMessage    = errors.New("malformed protocol message")
	ErrSessionClosed = errors.New("session already completed or aborted")
)

// m1Body is the signed content of M1.
type m1Body struct {
	Key    []byte `json:"key"` // SK_S
	TS     int64  `json:"ts"`  // unix nanos
	NonceA []byte `json:"nonce_a"`
}

// m2Body is the signed content of M2.
type m2Body struct {
	NonceA []byte `json:"nonce_a"` // response to M1's challenge
	NonceB []byte `json:"nonce_b"` // fresh challenge to the manager
	TS     int64  `json:"ts"`
}

// m3Body is the signed content of M3.
type m3Body struct {
	NonceB []byte `json:"nonce_b"` // response to M2's challenge
	TS     int64  `json:"ts"`
}

// signedEnvelope wraps a body with its sender signature.
type signedEnvelope struct {
	Body []byte `json:"body"`
	Sig  []byte `json:"sig"`
}

func sealSigned(signer *identity.KeyPair, body any, encrypt func([]byte) ([]byte, error)) ([]byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("marshal body: %w", err)
	}
	env := signedEnvelope{Body: raw, Sig: signer.Sign(raw)}
	envRaw, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("marshal envelope: %w", err)
	}
	return encrypt(envRaw)
}

func openSigned(senderPub identity.PublicKey, sealed []byte, decrypt func([]byte) ([]byte, error), body any) error {
	envRaw, err := decrypt(sealed)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	var env signedEnvelope
	if err := json.Unmarshal(envRaw, &env); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if err := identity.Verify(senderPub, env.Body, env.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSigner, err)
	}
	if err := json.Unmarshal(env.Body, body); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return nil
}

func newNonce(r io.Reader) ([]byte, error) {
	n := make([]byte, NonceSize)
	if _, err := io.ReadFull(r, n); err != nil {
		return nil, fmt.Errorf("generate nonce: %w", err)
	}
	return n, nil
}

func checkFresh(tsNanos int64, now time.Time, window time.Duration) error {
	ts := time.Unix(0, tsNanos)
	age := now.Sub(ts)
	if age < 0 {
		age = -age
	}
	if age > window {
		return fmt.Errorf("%w: |skew| %v > %v", ErrStaleMessage, age, window)
	}
	return nil
}

// ManagerSession drives the manager's side of one key distribution.
type ManagerSession struct {
	key       *identity.KeyPair // manager's account
	devicePub identity.PublicKey
	clk       clock.Clock
	freshness time.Duration
	entropy   io.Reader

	secret dataauth.Key
	nonceA []byte
	state  int // 0: init, 1: M1 sent, 2: done
}

// DeviceSession drives the device's side of one key distribution.
type DeviceSession struct {
	key        *identity.KeyPair // device's account
	managerPub identity.PublicKey
	clk        clock.Clock
	freshness  time.Duration
	entropy    io.Reader

	secret dataauth.Key
	nonceB []byte
	state  int // 0: init, 1: M2 sent, 2: done
}

// Option customizes a session.
type Option func(*options)

type options struct {
	clk       clock.Clock
	freshness time.Duration
	entropy   io.Reader
}

func buildOptions(opts []Option) options {
	o := options{
		clk:       clock.Real(),
		freshness: DefaultFreshness,
		entropy:   rand.Reader,
	}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithClock sets the session's time source (virtual clocks in tests).
func WithClock(c clock.Clock) Option {
	return func(o *options) { o.clk = c }
}

// WithFreshness sets the replay window.
func WithFreshness(d time.Duration) Option {
	return func(o *options) { o.freshness = d }
}

// WithEntropy sets the nonce/key entropy source (deterministic tests).
func WithEntropy(r io.Reader) Option {
	return func(o *options) { o.entropy = r }
}

// NewManagerSession prepares a distribution of a fresh SK_S to the
// device with the given signing and box public keys.
func NewManagerSession(manager *identity.KeyPair, devicePub identity.PublicKey, opts ...Option) (*ManagerSession, error) {
	o := buildOptions(opts)
	var secret dataauth.Key
	if _, err := io.ReadFull(o.entropy, secret[:]); err != nil {
		return nil, fmt.Errorf("generate symmetric secret: %w", err)
	}
	return &ManagerSession{
		key:       manager,
		devicePub: devicePub,
		clk:       o.clk,
		freshness: o.freshness,
		entropy:   o.entropy,
		secret:    secret,
	}, nil
}

// NewManagerSessionWithKey distributes a pre-existing key (rotation of a
// group key shared by several devices).
func NewManagerSessionWithKey(manager *identity.KeyPair, devicePub identity.PublicKey, secret dataauth.Key, opts ...Option) *ManagerSession {
	o := buildOptions(opts)
	return &ManagerSession{
		key:       manager,
		devicePub: devicePub,
		clk:       o.clk,
		freshness: o.freshness,
		entropy:   o.entropy,
		secret:    secret,
	}
}

// Secret returns the symmetric key being distributed.
func (m *ManagerSession) Secret() dataauth.Key { return m.secret }

// M1 builds the first message: the signed (SK_S, TS, nonce_a), sealed to
// the device's box key.
func (m *ManagerSession) M1(deviceBoxPub []byte) ([]byte, error) {
	if m.state != 0 {
		return nil, fmt.Errorf("%w: M1 already sent", ErrBadState)
	}
	nonceA, err := newNonce(m.entropy)
	if err != nil {
		return nil, err
	}
	m.nonceA = nonceA
	msg, err := sealSigned(m.key, m1Body{
		Key:    m.secret[:],
		TS:     m.clk.Now().UnixNano(),
		NonceA: nonceA,
	}, func(raw []byte) ([]byte, error) {
		return identity.SealTo(deviceBoxPub, raw)
	})
	if err != nil {
		return nil, fmt.Errorf("build M1: %w", err)
	}
	m.state = 1
	return msg, nil
}

// HandleM2 verifies the device's response and builds M3. After a
// successful HandleM2 the manager considers the key delivered.
func (m *ManagerSession) HandleM2(msg2 []byte) ([]byte, error) {
	if m.state != 1 {
		return nil, fmt.Errorf("%w: state %d", ErrBadState, m.state)
	}
	var body m2Body
	err := openSigned(m.devicePub, msg2, func(sealed []byte) ([]byte, error) {
		return dataauth.Decrypt(m.secret, sealed)
	}, &body)
	if err != nil {
		return nil, fmt.Errorf("open M2: %w", err)
	}
	if err := checkFresh(body.TS, m.clk.Now(), m.freshness); err != nil {
		return nil, fmt.Errorf("M2: %w", err)
	}
	if !bytes.Equal(body.NonceA, m.nonceA) {
		return nil, fmt.Errorf("M2: %w", ErrBadNonce)
	}
	if len(body.NonceB) != NonceSize {
		return nil, fmt.Errorf("M2: %w: nonce_b length %d", ErrBadMessage, len(body.NonceB))
	}
	msg3, err := sealSigned(m.key, m3Body{
		NonceB: body.NonceB,
		TS:     m.clk.Now().UnixNano(),
	}, func(raw []byte) ([]byte, error) {
		return dataauth.Encrypt(m.secret, raw, dataauth.SchemeGCM)
	})
	if err != nil {
		return nil, fmt.Errorf("build M3: %w", err)
	}
	m.state = 2
	return msg3, nil
}

// Done reports whether the manager side completed.
func (m *ManagerSession) Done() bool { return m.state == 2 }

// NewDeviceSession prepares the device's side, trusting messages signed
// by managerPub.
func NewDeviceSession(device *identity.KeyPair, managerPub identity.PublicKey, opts ...Option) *DeviceSession {
	o := buildOptions(opts)
	return &DeviceSession{
		key:        device,
		managerPub: managerPub,
		clk:        o.clk,
		freshness:  o.freshness,
		entropy:    o.entropy,
	}
}

// HandleM1 decrypts M1 with the device's box key, verifies the manager's
// signature and timestamp, stores SK_S, and builds M2 echoing nonce_a
// and issuing the nonce_b challenge.
func (d *DeviceSession) HandleM1(msg1 []byte) ([]byte, error) {
	if d.state != 0 {
		return nil, fmt.Errorf("%w: state %d", ErrBadState, d.state)
	}
	var body m1Body
	err := openSigned(d.managerPub, msg1, d.key.OpenSealed, &body)
	if err != nil {
		return nil, fmt.Errorf("open M1: %w", err)
	}
	if err := checkFresh(body.TS, d.clk.Now(), d.freshness); err != nil {
		return nil, fmt.Errorf("M1: %w", err)
	}
	secret, err := dataauth.KeyFromBytes(body.Key)
	if err != nil {
		return nil, fmt.Errorf("M1: %w: %v", ErrBadMessage, err)
	}
	if len(body.NonceA) != NonceSize {
		return nil, fmt.Errorf("M1: %w: nonce_a length %d", ErrBadMessage, len(body.NonceA))
	}
	nonceB, err := newNonce(d.entropy)
	if err != nil {
		return nil, err
	}
	d.secret = secret
	d.nonceB = nonceB

	msg2, err := sealSigned(d.key, m2Body{
		NonceA: body.NonceA,
		NonceB: nonceB,
		TS:     d.clk.Now().UnixNano(),
	}, func(raw []byte) ([]byte, error) {
		return dataauth.Encrypt(secret, raw, dataauth.SchemeGCM)
	})
	if err != nil {
		return nil, fmt.Errorf("build M2: %w", err)
	}
	d.state = 1
	return msg2, nil
}

// HandleM3 verifies the manager's response to nonce_b, completing the
// distribution. After HandleM3 returns nil, Secret is safe to use.
func (d *DeviceSession) HandleM3(msg3 []byte) error {
	if d.state != 1 {
		return fmt.Errorf("%w: state %d", ErrBadState, d.state)
	}
	var body m3Body
	err := openSigned(d.managerPub, msg3, func(sealed []byte) ([]byte, error) {
		return dataauth.Decrypt(d.secret, sealed)
	}, &body)
	if err != nil {
		return fmt.Errorf("open M3: %w", err)
	}
	if err := checkFresh(body.TS, d.clk.Now(), d.freshness); err != nil {
		return fmt.Errorf("M3: %w", err)
	}
	if !bytes.Equal(body.NonceB, d.nonceB) {
		return fmt.Errorf("M3: %w", ErrBadNonce)
	}
	d.state = 2
	return nil
}

// Done reports whether the device side completed.
func (d *DeviceSession) Done() bool { return d.state == 2 }

// Secret returns the distributed key. Valid only after Done.
func (d *DeviceSession) Secret() (dataauth.Key, error) {
	if d.state != 2 {
		return dataauth.Key{}, fmt.Errorf("%w: protocol not complete", ErrBadState)
	}
	return d.secret, nil
}
