package keydist

import (
	"errors"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/identity"
)

func mustKey(t *testing.T) *identity.KeyPair {
	t.Helper()
	k, err := identity.Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return k
}

// runHonest drives a full Fig-4 exchange and returns both sessions.
func runHonest(t *testing.T, opts ...Option) (*ManagerSession, *DeviceSession) {
	t.Helper()
	manager, device := mustKey(t), mustKey(t)
	ms, err := NewManagerSession(manager, device.Public(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDeviceSession(device, manager.Public(), opts...)
	m1, err := ms.M1(device.BoxPublic())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ds.HandleM1(m1)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := ms.HandleM2(m2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.HandleM3(m3); err != nil {
		t.Fatal(err)
	}
	return ms, ds
}

func TestHonestExchange(t *testing.T) {
	ms, ds := runHonest(t)
	if !ms.Done() || !ds.Done() {
		t.Fatal("sessions not done")
	}
	got, err := ds.Secret()
	if err != nil {
		t.Fatal(err)
	}
	if got != ms.Secret() {
		t.Error("device derived a different key")
	}
}

func TestSecretUnavailableBeforeCompletion(t *testing.T) {
	manager, device := mustKey(t), mustKey(t)
	ds := NewDeviceSession(device, manager.Public())
	if _, err := ds.Secret(); !errors.Is(err, ErrBadState) {
		t.Errorf("err = %v, want ErrBadState", err)
	}
}

func TestStateMachineOrdering(t *testing.T) {
	manager, device := mustKey(t), mustKey(t)
	ms, err := NewManagerSession(manager, device.Public())
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDeviceSession(device, manager.Public())

	// HandleM2 before M1 was sent.
	if _, err := ms.HandleM2([]byte("x")); !errors.Is(err, ErrBadState) {
		t.Errorf("early M2: %v", err)
	}
	// HandleM3 before M1 received.
	if err := ds.HandleM3([]byte("x")); !errors.Is(err, ErrBadState) {
		t.Errorf("early M3: %v", err)
	}
	m1, err := ms.M1(device.BoxPublic())
	if err != nil {
		t.Fatal(err)
	}
	// Second M1 from the same session.
	if _, err := ms.M1(device.BoxPublic()); !errors.Is(err, ErrBadState) {
		t.Errorf("double M1: %v", err)
	}
	if _, err := ds.HandleM1(m1); err != nil {
		t.Fatal(err)
	}
	// Second M1 to the device mid-exchange.
	if _, err := ds.HandleM1(m1); !errors.Is(err, ErrBadState) {
		t.Errorf("re-delivered M1: %v", err)
	}
}

func TestM1OnlyDecryptableByDevice(t *testing.T) {
	manager, device, thief := mustKey(t), mustKey(t), mustKey(t)
	ms, err := NewManagerSession(manager, device.Public())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := ms.M1(device.BoxPublic())
	if err != nil {
		t.Fatal(err)
	}
	// A thief with its own keys cannot open M1.
	thiefSession := NewDeviceSession(thief, manager.Public())
	if _, err := thiefSession.HandleM1(m1); err == nil {
		t.Error("thief decrypted M1")
	}
}

func TestForgedM1Rejected(t *testing.T) {
	manager, device, impostor := mustKey(t), mustKey(t), mustKey(t)
	// The impostor builds a well-formed M1 signed by itself.
	imposterSession, err := NewManagerSession(impostor, device.Public())
	if err != nil {
		t.Fatal(err)
	}
	forged, err := imposterSession.M1(device.BoxPublic())
	if err != nil {
		t.Fatal(err)
	}
	// The device trusts only the real manager's key.
	ds := NewDeviceSession(device, manager.Public())
	if _, err := ds.HandleM1(forged); !errors.Is(err, ErrBadSigner) {
		t.Errorf("forged M1 err = %v, want ErrBadSigner", err)
	}
}

func TestTamperedMessagesRejected(t *testing.T) {
	for stage := 1; stage <= 3; stage++ {
		manager, device := mustKey(t), mustKey(t)
		ms, err := NewManagerSession(manager, device.Public())
		if err != nil {
			t.Fatal(err)
		}
		ds := NewDeviceSession(device, manager.Public())
		m1, err := ms.M1(device.BoxPublic())
		if err != nil {
			t.Fatal(err)
		}
		if stage == 1 {
			m1[len(m1)/2] ^= 1
			if _, err := ds.HandleM1(m1); err == nil {
				t.Error("tampered M1 accepted")
			}
			continue
		}
		m2, err := ds.HandleM1(m1)
		if err != nil {
			t.Fatal(err)
		}
		if stage == 2 {
			m2[len(m2)/2] ^= 1
			if _, err := ms.HandleM2(m2); err == nil {
				t.Error("tampered M2 accepted")
			}
			continue
		}
		m3, err := ms.HandleM2(m2)
		if err != nil {
			t.Fatal(err)
		}
		m3[len(m3)/2] ^= 1
		if err := ds.HandleM3(m3); err == nil {
			t.Error("tampered M3 accepted")
		}
	}
}

func TestReplayedM1Rejected(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	manager, device := mustKey(t), mustKey(t)
	ms, err := NewManagerSession(manager, device.Public(),
		WithClock(vc), WithFreshness(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := ms.M1(device.BoxPublic())
	if err != nil {
		t.Fatal(err)
	}
	vc.Advance(time.Minute) // attacker held the message
	ds := NewDeviceSession(device, manager.Public(),
		WithClock(vc), WithFreshness(10*time.Second))
	if _, err := ds.HandleM1(m1); !errors.Is(err, ErrStaleMessage) {
		t.Errorf("replayed M1 err = %v, want ErrStaleMessage", err)
	}
}

func TestReplayedM2Rejected(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	opts := []Option{WithClock(vc), WithFreshness(10 * time.Second)}
	manager, device := mustKey(t), mustKey(t)
	ms, err := NewManagerSession(manager, device.Public(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDeviceSession(device, manager.Public(), opts...)
	m1, err := ms.M1(device.BoxPublic())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ds.HandleM1(m1)
	if err != nil {
		t.Fatal(err)
	}
	vc.Advance(time.Minute)
	if _, err := ms.HandleM2(m2); !errors.Is(err, ErrStaleMessage) {
		t.Errorf("replayed M2 err = %v, want ErrStaleMessage", err)
	}
}

func TestCrossSessionNonceRejected(t *testing.T) {
	// M2 from session A must not complete session B (nonce_a binding).
	manager, device := mustKey(t), mustKey(t)
	msA, err := NewManagerSession(manager, device.Public())
	if err != nil {
		t.Fatal(err)
	}
	msB := NewManagerSessionWithKey(manager, device.Public(), msA.Secret())
	dsA := NewDeviceSession(device, manager.Public())

	m1A, err := msA.M1(device.BoxPublic())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := msB.M1(device.BoxPublic()); err != nil {
		t.Fatal(err)
	}
	m2A, err := dsA.HandleM1(m1A)
	if err != nil {
		t.Fatal(err)
	}
	// Session B shares the same symmetric key (group key rotation), so
	// decryption succeeds — but nonce_a differs and must be rejected.
	if _, err := msB.HandleM2(m2A); !errors.Is(err, ErrBadNonce) {
		t.Errorf("cross-session M2 err = %v, want ErrBadNonce", err)
	}
}

func TestPreSharedKeySession(t *testing.T) {
	manager, device := mustKey(t), mustKey(t)
	var secret [32]byte
	copy(secret[:], "0123456789abcdef0123456789abcdef")
	ms := NewManagerSessionWithKey(manager, device.Public(), secret)
	ds := NewDeviceSession(device, manager.Public())
	m1, err := ms.M1(device.BoxPublic())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ds.HandleM1(m1)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := ms.HandleM2(m2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.HandleM3(m3); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Secret()
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Error("pre-shared key not delivered verbatim")
	}
}
