// Package ledger tracks token balances for B-IoT accounts, giving
// double-spending (paper §III) concrete semantics on top of the tangle.
//
// Each account owns a balance and a monotonically increasing spend
// sequence. A transfer consumes one (account, seq) resource; applying
// two transfers with the same sequence is the ledger-level definition of
// a double spend. The tangle detects and resolves such conflicts (the
// heavier branch wins); this package settles the *winning* transfers
// into balances once they confirm.
package ledger

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

// Ledger is an account-balance book. Safe for concurrent use.
type Ledger struct {
	mu       sync.RWMutex
	balances map[identity.Address]uint64
	nextSeq  map[identity.Address]uint64
	spent    map[txn.SpendKey]hashutil.Hash
	supply   uint64
}

// Application errors.
var (
	ErrInsufficientFunds = errors.New("insufficient funds")
	ErrSeqReplayed       = errors.New("spend sequence already consumed")
	ErrSeqOutOfOrder     = errors.New("spend sequence out of order")
	ErrNotTransfer       = errors.New("transaction is not a transfer")
)

// New creates an empty ledger.
func New() *Ledger {
	return &Ledger{
		balances: make(map[identity.Address]uint64),
		nextSeq:  make(map[identity.Address]uint64),
		spent:    make(map[txn.SpendKey]hashutil.Hash),
	}
}

// Mint credits amount new tokens to addr (genesis allocation; in a smart
// factory the manager endows devices with transaction budget).
func (l *Ledger) Mint(addr identity.Address, amount uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.balances[addr] += amount
	l.supply += amount
}

// Balance returns addr's settled balance.
func (l *Ledger) Balance(addr identity.Address) uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.balances[addr]
}

// Supply returns the total minted supply; transfers conserve it.
func (l *Ledger) Supply() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.supply
}

// NextSeq returns the next unconsumed spend sequence for addr.
func (l *Ledger) NextSeq(addr identity.Address) uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.nextSeq[addr]
}

// Apply settles a confirmed transfer transaction into balances. It
// returns an error (leaving state unchanged) when the transfer is
// malformed, replays a consumed sequence, skips ahead, or overdraws.
func (l *Ledger) Apply(t *txn.Transaction) error {
	tr, err := txn.TransferOf(t)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNotTransfer, err)
	}
	from := t.Sender()
	key := txn.SpendKeyOf(t, tr)

	l.mu.Lock()
	defer l.mu.Unlock()

	if winner, dup := l.spent[key]; dup {
		return fmt.Errorf("%w: seq %d of %s already spent by %s",
			ErrSeqReplayed, tr.Seq, from.Short(), winner.Short())
	}
	if want := l.nextSeq[from]; tr.Seq != want {
		return fmt.Errorf("%w: got seq %d, want %d", ErrSeqOutOfOrder, tr.Seq, want)
	}
	if l.balances[from] < tr.Amount {
		return fmt.Errorf("%w: balance %d < amount %d",
			ErrInsufficientFunds, l.balances[from], tr.Amount)
	}

	l.balances[from] -= tr.Amount
	l.balances[tr.To] += tr.Amount
	l.nextSeq[from] = tr.Seq + 1
	l.spent[key] = t.ID()
	return nil
}

// Spender returns the transaction that consumed the given spend key.
func (l *Ledger) Spender(key txn.SpendKey) (hashutil.Hash, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	id, ok := l.spent[key]
	return id, ok
}

// AccountCount returns the number of accounts with any balance history.
func (l *Ledger) AccountCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.balances)
}

// Snapshot returns a copy of all balances, sorted by address for
// deterministic iteration.
func (l *Ledger) Snapshot() []AccountBalance {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]AccountBalance, 0, len(l.balances))
	for addr, bal := range l.balances {
		out = append(out, AccountBalance{Address: addr, Balance: bal})
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Address.Compare(out[j].Address) < 0
	})
	return out
}

// AccountBalance pairs an address with its settled balance.
type AccountBalance struct {
	Address identity.Address
	Balance uint64
}
