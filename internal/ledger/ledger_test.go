package ledger

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

func mustKey(t *testing.T) *identity.KeyPair {
	t.Helper()
	k, err := identity.Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return k
}

func transfer(t *testing.T, key *identity.KeyPair, to identity.Address, amount, seq uint64) *txn.Transaction {
	t.Helper()
	tx := &txn.Transaction{
		Trunk:     hashutil.Sum([]byte("t")),
		Branch:    hashutil.Sum([]byte("b")),
		Timestamp: time.Unix(int64(seq), 0),
		Kind:      txn.KindTransfer,
		Payload:   txn.EncodeTransfer(txn.Transfer{To: to, Amount: amount, Seq: seq}),
	}
	tx.Sign(key)
	return tx
}

func TestMintAndBalance(t *testing.T) {
	l := New()
	addr := mustKey(t).Address()
	l.Mint(addr, 100)
	l.Mint(addr, 50)
	if got := l.Balance(addr); got != 150 {
		t.Errorf("balance = %d", got)
	}
	if got := l.Supply(); got != 150 {
		t.Errorf("supply = %d", got)
	}
}

func TestApplyTransfer(t *testing.T) {
	l := New()
	alice := mustKey(t)
	bob := mustKey(t).Address()
	l.Mint(alice.Address(), 100)

	if err := l.Apply(transfer(t, alice, bob, 30, 0)); err != nil {
		t.Fatal(err)
	}
	if l.Balance(alice.Address()) != 70 || l.Balance(bob) != 30 {
		t.Errorf("balances = %d / %d", l.Balance(alice.Address()), l.Balance(bob))
	}
	if l.NextSeq(alice.Address()) != 1 {
		t.Errorf("next seq = %d", l.NextSeq(alice.Address()))
	}
}

func TestApplyRejectsSeqReplay(t *testing.T) {
	l := New()
	alice := mustKey(t)
	bob := mustKey(t).Address()
	l.Mint(alice.Address(), 100)
	if err := l.Apply(transfer(t, alice, bob, 10, 0)); err != nil {
		t.Fatal(err)
	}
	err := l.Apply(transfer(t, alice, bob, 20, 0))
	if !errors.Is(err, ErrSeqReplayed) {
		t.Errorf("err = %v, want ErrSeqReplayed", err)
	}
	if l.Balance(alice.Address()) != 90 {
		t.Error("failed apply mutated balances")
	}
}

func TestApplyRejectsSeqSkip(t *testing.T) {
	l := New()
	alice := mustKey(t)
	bob := mustKey(t).Address()
	l.Mint(alice.Address(), 100)
	if err := l.Apply(transfer(t, alice, bob, 10, 5)); !errors.Is(err, ErrSeqOutOfOrder) {
		t.Errorf("err = %v, want ErrSeqOutOfOrder", err)
	}
}

func TestApplyRejectsOverdraw(t *testing.T) {
	l := New()
	alice := mustKey(t)
	bob := mustKey(t).Address()
	l.Mint(alice.Address(), 5)
	if err := l.Apply(transfer(t, alice, bob, 10, 0)); !errors.Is(err, ErrInsufficientFunds) {
		t.Errorf("err = %v, want ErrInsufficientFunds", err)
	}
	if l.NextSeq(alice.Address()) != 0 {
		t.Error("failed apply consumed the sequence")
	}
}

func TestApplyRejectsNonTransfer(t *testing.T) {
	l := New()
	alice := mustKey(t)
	tx := transfer(t, alice, mustKey(t).Address(), 1, 0)
	tx.Kind = txn.KindData
	if err := l.Apply(tx); !errors.Is(err, ErrNotTransfer) {
		t.Errorf("err = %v, want ErrNotTransfer", err)
	}
}

func TestSpender(t *testing.T) {
	l := New()
	alice := mustKey(t)
	bob := mustKey(t).Address()
	l.Mint(alice.Address(), 10)
	tx := transfer(t, alice, bob, 10, 0)
	if err := l.Apply(tx); err != nil {
		t.Fatal(err)
	}
	id, ok := l.Spender(txn.SpendKey{Account: alice.Address(), Seq: 0})
	if !ok || id != tx.ID() {
		t.Errorf("spender = (%v, %v)", id, ok)
	}
	if _, ok := l.Spender(txn.SpendKey{Account: alice.Address(), Seq: 1}); ok {
		t.Error("unconsumed key has a spender")
	}
}

func TestSelfTransferConservesSupply(t *testing.T) {
	l := New()
	alice := mustKey(t)
	l.Mint(alice.Address(), 42)
	if err := l.Apply(transfer(t, alice, alice.Address(), 10, 0)); err != nil {
		t.Fatal(err)
	}
	if l.Balance(alice.Address()) != 42 {
		t.Errorf("self transfer changed balance: %d", l.Balance(alice.Address()))
	}
}

func TestSnapshotSortedAndCopied(t *testing.T) {
	l := New()
	a, b := mustKey(t).Address(), mustKey(t).Address()
	l.Mint(a, 1)
	l.Mint(b, 2)
	snap := l.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d accounts", len(snap))
	}
	if snap[0].Address.Compare(snap[1].Address) >= 0 {
		t.Error("snapshot not sorted")
	}
	if l.AccountCount() != 2 {
		t.Errorf("account count = %d", l.AccountCount())
	}
}

// Property: any sequence of valid transfers conserves total supply and
// keeps balances non-negative (uint64 can't go negative, but the ledger
// must refuse overdraws rather than wrap).
func TestSupplyConservationProperty(t *testing.T) {
	alice := mustKey(t)
	bobAddr := mustKey(t).Address()
	check := func(amounts []uint16) bool {
		l := New()
		l.Mint(alice.Address(), 1<<20)
		supply := l.Supply()
		seq := uint64(0)
		for _, a := range amounts {
			err := l.Apply(transfer(t, alice, bobAddr, uint64(a)+1, seq))
			if err == nil {
				seq++
			}
			if l.Supply() != supply {
				return false
			}
			if l.Balance(alice.Address())+l.Balance(bobAddr) != supply {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The double-spend story end to end at the ledger level: two transfers
// consuming the same sequence — only the first settles.
func TestLedgerLevelDoubleSpend(t *testing.T) {
	l := New()
	alice := mustKey(t)
	v1, v2 := mustKey(t).Address(), mustKey(t).Address()
	l.Mint(alice.Address(), 100)

	first := transfer(t, alice, v1, 60, 0)
	second := transfer(t, alice, v2, 60, 0)
	if err := l.Apply(first); err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(second); !errors.Is(err, ErrSeqReplayed) {
		t.Errorf("double spend settled: %v", err)
	}
	if l.Balance(v2) != 0 {
		t.Error("second victim received tokens")
	}
	if l.Balance(alice.Address()) != 40 || l.Balance(v1) != 60 {
		t.Error("balances wrong after double-spend attempt")
	}
}
