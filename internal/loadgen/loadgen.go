// Package loadgen is an open-loop, fixed-rate load generator for
// latency measurement.
//
// The distinction it exists to enforce is open- versus closed-loop
// arrival. A closed-loop generator (issue, wait for completion, issue
// the next) lets a slow system throttle its own load: every stall
// delays all subsequent arrivals, so the recorded latencies describe a
// workload that conveniently backed off exactly when the system
// struggled. That is the coordinated-omission error — the worst
// samples are the ones the generator never took. An open-loop
// generator fixes the arrival timeline up front: operation i is due at
// start + i/rate regardless of how its predecessors fared, and its
// latency is measured from that *scheduled* instant. A send that fires
// late because the system (or the generator's own worker pool) was
// saturated is never skipped and never silently re-timed — the queueing
// delay it suffered is exactly what the percentiles must contain.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/b-iot/biot/internal/clock"
)

// Op executes one generated operation. It receives the operation index
// and the instant the operation was *scheduled* to fire (which is in
// the past by the generator's lateness when the timeline slips). A
// non-nil error marks the sample failed; failed samples keep their
// timing but are excluded from latency quantiles.
type Op func(i int, scheduled time.Time) error

// Config parameterizes one fixed-rate run.
type Config struct {
	// Rate is the offered load in operations per second. Required > 0.
	Rate float64
	// Count is the total number of operations to issue. Required > 0.
	Count int
	// MaxInFlight bounds concurrently executing operations (and thus
	// goroutines). When the bound is hit the dispatcher blocks, the
	// timeline slips, and the lateness is charged to the affected
	// samples — honest accounting, not omission. Zero selects 512.
	MaxInFlight int
	// Clock is the time source; nil selects the real clock. A virtual
	// clock makes scheduling deterministic for tests (Sleep advances it).
	Clock clock.Clock
}

func (c Config) withDefaults() (Config, error) {
	if c.Rate <= 0 {
		return c, fmt.Errorf("loadgen: rate must be positive, got %v", c.Rate)
	}
	if c.Count <= 0 {
		return c, fmt.Errorf("loadgen: count must be positive, got %d", c.Count)
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 512
	}
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	return c, nil
}

// Sample records one operation's timing.
type Sample struct {
	// Scheduled is the instant the fixed-rate timeline assigned.
	Scheduled time.Time
	// Lateness is how far behind schedule the operation actually fired
	// (generator slip: worker-pool saturation or dispatcher overrun).
	Lateness time.Duration
	// Latency is completion minus Scheduled — the open-loop latency a
	// client submitting on its own timer would observe.
	Latency time.Duration
	// Service is completion minus actual start: the in-system time
	// alone. Latency - Service = Lateness.
	Service time.Duration
	// Err is the operation's failure, if any.
	Err error
}

// Result is one run's complete record.
type Result struct {
	// OfferedRate is the configured arrival rate (ops/sec).
	OfferedRate float64
	// Elapsed spans first scheduled instant to last completion.
	Elapsed time.Duration
	// Samples holds every operation in issue order. Nothing is dropped:
	// len(Samples) == Config.Count always.
	Samples []Sample
	// Failed counts samples with a non-nil Err.
	Failed int
}

// AchievedRate is completions per second of elapsed time. A healthy
// run tracks OfferedRate; a saturated system falls below it.
func (r Result) AchievedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(len(r.Samples)-r.Failed) / r.Elapsed.Seconds()
}

// Latencies returns the open-loop latencies of the successful samples.
func (r Result) Latencies() []time.Duration {
	out := make([]time.Duration, 0, len(r.Samples))
	for _, s := range r.Samples {
		if s.Err == nil {
			out = append(out, s.Latency)
		}
	}
	return out
}

// ErrInterrupted reports a run cut short by context cancellation. The
// partial Result returned alongside it holds the samples issued so far.
var ErrInterrupted = errors.New("loadgen: run interrupted")

// Run issues cfg.Count operations on the fixed timeline start + i/rate
// and blocks until every issued operation completes. Operations overlap
// freely up to MaxInFlight; a late operation is issued anyway and its
// lateness charged to its latency. On context cancellation the
// remaining operations are abandoned (the only sanctioned omission —
// the caller asked for it) and Run returns ErrInterrupted with the
// samples issued so far.
func Run(ctx context.Context, cfg Config, op Op) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	period := time.Duration(float64(time.Second) / cfg.Rate)
	samples := make([]Sample, cfg.Count)
	slots := make(chan struct{}, cfg.MaxInFlight)
	// done is sized for every operation so a completing op never blocks
	// publishing, even if the run is abandoned mid-drain.
	done := make(chan int, cfg.Count)
	start := cfg.Clock.Now()

	issued, completed := 0, 0
	interrupted := false
dispatch:
	for ; issued < cfg.Count; issued++ {
		scheduled := start.Add(time.Duration(float64(issued) * float64(period)))
		if wait := scheduled.Sub(cfg.Clock.Now()); wait > 0 {
			cfg.Clock.Sleep(wait)
		}
		// Acquire an in-flight slot, draining completions meanwhile so a
		// saturated pool backpressures the dispatcher (charged as
		// lateness) instead of leaking goroutines.
		for {
			select {
			case slots <- struct{}{}:
			case <-done:
				completed++
				continue
			case <-ctx.Done():
				interrupted = true
				break dispatch
			}
			break
		}
		i := issued
		go func() {
			fired := cfg.Clock.Now()
			err := op(i, scheduled)
			end := cfg.Clock.Now()
			samples[i] = Sample{
				Scheduled: scheduled,
				Lateness:  fired.Sub(scheduled),
				Latency:   end.Sub(scheduled),
				Service:   end.Sub(fired),
				Err:       err,
			}
			<-slots
			done <- i
		}()
	}
	for completed < issued {
		select {
		case <-done:
			completed++
		case <-ctx.Done():
			// Give in-flight ops a bounded grace period; their samples
			// are already being written into pre-assigned slots.
			interrupted = true
			select {
			case <-done:
				completed++
			case <-time.After(time.Second):
				completed = issued // abandon stragglers
			}
		}
	}

	res := Result{OfferedRate: cfg.Rate, Samples: samples[:issued]}
	var last time.Time
	for _, s := range res.Samples {
		if s.Err != nil {
			res.Failed++
		}
		if end := s.Scheduled.Add(s.Latency); end.After(last) {
			last = end
		}
	}
	if !last.IsZero() {
		res.Elapsed = last.Sub(start)
	}
	if interrupted {
		return res, ErrInterrupted
	}
	return res, nil
}

// Summary holds the latency quantiles of one run.
type Summary struct {
	Count               int
	Mean                time.Duration
	P50, P90, P99, P999 time.Duration
	Max                 time.Duration
}

// Summarize computes quantiles over durs. The input is not mutated.
func Summarize(durs []time.Duration) Summary {
	if len(durs) == 0 {
		return Summary{}
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	return Summary{
		Count: len(sorted),
		Mean:  total / time.Duration(len(sorted)),
		P50:   quantile(sorted, 0.50),
		P90:   quantile(sorted, 0.90),
		P99:   quantile(sorted, 0.99),
		P999:  quantile(sorted, 0.999),
		Max:   sorted[len(sorted)-1],
	}
}

// quantile returns the nearest-rank q-quantile of a sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)) + 0.5)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
