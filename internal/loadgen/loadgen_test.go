package loadgen

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunIssuesEveryOperation(t *testing.T) {
	var calls atomic.Int64
	res, err := Run(context.Background(), Config{Rate: 5000, Count: 200}, func(i int, _ time.Time) error {
		calls.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 200 {
		t.Fatalf("op called %d times, want 200", calls.Load())
	}
	if len(res.Samples) != 200 {
		t.Fatalf("len(Samples) = %d, want 200", len(res.Samples))
	}
	if res.Failed != 0 {
		t.Fatalf("Failed = %d, want 0", res.Failed)
	}
	if res.OfferedRate != 5000 {
		t.Fatalf("OfferedRate = %v", res.OfferedRate)
	}
}

// TestRunScheduleIsFixedRate pins the open-loop property: scheduled
// instants follow start + i/rate exactly, independent of op duration.
func TestRunScheduleIsFixedRate(t *testing.T) {
	res, err := Run(context.Background(), Config{Rate: 10000, Count: 50}, func(int, time.Time) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	period := time.Duration(float64(time.Second) / 10000)
	base := res.Samples[0].Scheduled
	for i, s := range res.Samples {
		want := base.Add(time.Duration(i) * period)
		if got := s.Scheduled; got.Sub(want) > time.Microsecond || want.Sub(got) > time.Microsecond {
			t.Fatalf("sample %d scheduled %v, want %v", i, got, want)
		}
	}
}

// TestRunLateSendsAreChargedNotSkipped is the coordinated-omission
// guard: ops that fire behind schedule (slow op + MaxInFlight 1 stalls
// the timeline) must still all run, and the slip must appear in their
// open-loop latency as lateness rather than being re-timed away.
func TestRunLateSendsAreChargedNotSkipped(t *testing.T) {
	const stall = 20 * time.Millisecond
	var calls atomic.Int64
	res, err := Run(context.Background(), Config{Rate: 1000, Count: 8, MaxInFlight: 1},
		func(i int, _ time.Time) error {
			calls.Add(1)
			if i == 0 {
				time.Sleep(stall)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 8 {
		t.Fatalf("late ops were skipped: %d calls, want 8", calls.Load())
	}
	// Op 1 was due 1ms after op 0 but could not fire until op 0's ~20ms
	// stall released the only slot: its lateness must carry the wait.
	s := res.Samples[1]
	if s.Lateness < stall/2 {
		t.Fatalf("sample 1 lateness %v does not reflect the %v stall", s.Lateness, stall)
	}
	if s.Latency < s.Lateness {
		t.Fatalf("open-loop latency %v < lateness %v: slip was re-timed away", s.Latency, s.Lateness)
	}
	if got := s.Latency - s.Service; got < s.Lateness-time.Millisecond {
		t.Fatalf("Latency-Service = %v, want ~Lateness %v", got, s.Lateness)
	}
}

func TestRunRecordsFailures(t *testing.T) {
	wantErr := errors.New("rejected")
	res, err := Run(context.Background(), Config{Rate: 5000, Count: 40}, func(i int, _ time.Time) error {
		if i%4 == 0 {
			return wantErr
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 10 {
		t.Fatalf("Failed = %d, want 10", res.Failed)
	}
	if got := len(res.Latencies()); got != 30 {
		t.Fatalf("Latencies() kept %d samples, want 30 (failures excluded)", got)
	}
	if !errors.Is(res.Samples[0].Err, wantErr) {
		t.Fatalf("sample 0 error = %v", res.Samples[0].Err)
	}
}

func TestRunInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	var once sync.Once
	res, err := Run(ctx, Config{Rate: 100, Count: 1000}, func(i int, _ time.Time) error {
		calls.Add(1)
		if i >= 3 {
			once.Do(cancel)
		}
		return nil
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if n := len(res.Samples); n >= 1000 || n < 4 {
		t.Fatalf("interrupted run kept %d samples", n)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{Rate: 0, Count: 1}, nil); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(context.Background(), Config{Rate: 1, Count: 0}, nil); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestSummarize(t *testing.T) {
	durs := make([]time.Duration, 1000)
	for i := range durs {
		durs[i] = time.Duration(i+1) * time.Millisecond
	}
	s := Summarize(durs)
	if s.Count != 1000 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.P50 < 490*time.Millisecond || s.P50 > 510*time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P99 < 985*time.Millisecond || s.P99 > 995*time.Millisecond {
		t.Fatalf("P99 = %v", s.P99)
	}
	if s.P999 < 995*time.Millisecond || s.P999 > time.Second {
		t.Fatalf("P999 = %v", s.P999)
	}
	if s.Max != time.Second {
		t.Fatalf("Max = %v", s.Max)
	}
	if s.Mean != 500500*time.Microsecond {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v", got)
	}
	// Input must not be reordered.
	if durs[0] != time.Millisecond {
		t.Fatal("Summarize mutated its input")
	}
}

func TestAchievedRate(t *testing.T) {
	r := Result{
		Elapsed: 2 * time.Second,
		Samples: make([]Sample, 100),
		Failed:  20,
	}
	if got := r.AchievedRate(); got != 40 {
		t.Fatalf("AchievedRate = %v, want 40", got)
	}
	if (Result{}).AchievedRate() != 0 {
		t.Fatal("empty result rate")
	}
}
