// Package metrics provides the light-weight instrumentation used by the
// evaluation harness: counters, latency histograms with quantile
// summaries, and windowed throughput (TPS) meters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/b-iot/biot/internal/clock"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (negative deltas are ignored; counters only go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.n.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an instantaneous level (queue depth, in-flight work). Unlike
// Counter it moves in both directions. Safe for concurrent use.
type Gauge struct {
	n atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add moves the gauge by delta (positive or negative).
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.n.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.n.Add(-1) }

// StoreMax raises the gauge to v if v exceeds the current value — a
// lock-free running maximum (peak queue depth, longest observed walk).
func (g *Gauge) StoreMax(v int64) {
	for {
		cur := g.n.Load()
		if v <= cur || g.n.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Histogram collects duration samples and summarizes them. Safe for
// concurrent use. Designed for experiment-scale sample counts (≤ 10^6).
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Summary holds descriptive statistics of a histogram.
type Summary struct {
	Count  int
	Min    time.Duration
	Mean   time.Duration
	Median time.Duration
	P95    time.Duration
	Max    time.Duration
	Total  time.Duration
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%v mean=%v median=%v p95=%v max=%v",
		s.Count, s.Min, s.Mean, s.Median, s.P95, s.Max)
}

// Summarize computes descriptive statistics over the samples.
func (h *Histogram) Summarize() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return Summary{}
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	var total time.Duration
	for _, d := range h.samples {
		total += d
	}
	return Summary{
		Count:  n,
		Min:    h.samples[0],
		Mean:   total / time.Duration(n),
		Median: h.samples[quantileIndex(n, 0.5)],
		P95:    h.samples[quantileIndex(n, 0.95)],
		Max:    h.samples[n-1],
		Total:  total,
	}
}

func quantileIndex(n int, q float64) int {
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		return 0
	}
	if idx >= n {
		return n - 1
	}
	return idx
}

// TPSMeter measures throughput over the interval between Start and Stop.
type TPSMeter struct {
	clk clock.Clock

	mu      sync.Mutex
	started time.Time
	stopped time.Time
	events  int64
}

// NewTPSMeter creates a meter on the given clock (nil means real time).
func NewTPSMeter(clk clock.Clock) *TPSMeter {
	if clk == nil {
		clk = clock.Real()
	}
	return &TPSMeter{clk: clk}
}

// Start begins (or restarts) the measurement window.
func (m *TPSMeter) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.started = m.clk.Now()
	m.stopped = time.Time{}
	m.events = 0
}

// Record counts one event.
func (m *TPSMeter) Record() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events++
}

// Stop ends the window.
func (m *TPSMeter) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = m.clk.Now()
}

// Events returns the number of recorded events.
func (m *TPSMeter) Events() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events
}

// TPS returns events per second over the window. If Stop was not called
// the window extends to now.
func (m *TPSMeter) TPS() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started.IsZero() {
		return 0
	}
	end := m.stopped
	if end.IsZero() {
		end = m.clk.Now()
	}
	secs := end.Sub(m.started).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(m.events) / secs
}
