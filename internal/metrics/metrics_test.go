package metrics

import (
	"sync"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 6 {
		t.Errorf("value = %d, want 6", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("value = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	g.Inc()
	g.Dec()
	g.Dec()
	if got := g.Value(); got != 5 {
		t.Errorf("value = %d, want 5", got)
	}
	g.Add(-100) // gauges may go negative (drained below a sampled level)
	if got := g.Value(); got != -95 {
		t.Errorf("value = %d, want -95", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("value = %d, want 0", got)
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	if s := h.Summarize(); s.Count != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 50*time.Millisecond {
		t.Errorf("median = %v", s.Median)
	}
	if s.P95 != 95*time.Millisecond {
		t.Errorf("p95 = %v", s.P95)
	}
	wantMean := 50500 * time.Microsecond
	if s.Mean != wantMean {
		t.Errorf("mean = %v, want %v", s.Mean, wantMean)
	}
	if s.Total != 5050*time.Millisecond {
		t.Errorf("total = %v", s.Total)
	}
}

func TestHistogramObserveAfterSummarize(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Millisecond)
	_ = h.Summarize()
	h.Observe(time.Millisecond) // must re-sort internally
	s := h.Summarize()
	if s.Min != time.Millisecond {
		t.Errorf("min = %v after late observation", s.Min)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(7 * time.Millisecond)
	s := h.Summarize()
	if s.Min != s.Max || s.Median != s.Min || s.P95 != s.Min {
		t.Errorf("single-sample summary = %+v", s)
	}
	if h.Count() != 1 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	if h.Summarize().String() == "" {
		t.Error("empty summary string")
	}
}

func TestTPSMeter(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	m := NewTPSMeter(vc)
	if m.TPS() != 0 {
		t.Error("unstarted meter reports TPS")
	}
	m.Start()
	for i := 0; i < 30; i++ {
		m.Record()
	}
	vc.Advance(10 * time.Second)
	m.Stop()
	if got := m.TPS(); got != 3.0 {
		t.Errorf("TPS = %v, want 3", got)
	}
	if m.Events() != 30 {
		t.Errorf("events = %d", m.Events())
	}
}

func TestTPSMeterRunningWindow(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	m := NewTPSMeter(vc)
	m.Start()
	m.Record()
	vc.Advance(time.Second)
	if got := m.TPS(); got != 1.0 {
		t.Errorf("running TPS = %v", got)
	}
	m.Start() // restart resets
	if m.Events() != 0 {
		t.Error("restart kept events")
	}
}

func TestTPSMeterZeroDuration(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	m := NewTPSMeter(vc)
	m.Start()
	m.Record()
	m.Stop() // zero elapsed
	if got := m.TPS(); got != 0 {
		t.Errorf("zero-window TPS = %v", got)
	}
}

func TestNewTPSMeterNilClock(t *testing.T) {
	m := NewTPSMeter(nil)
	m.Start()
	m.Record()
	if m.Events() != 1 {
		t.Error("nil-clock meter broken")
	}
}
