package node

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// Snapshot-shipped bootstrap: a gateway joining a deployment whose
// history has been pruned cannot replay that history — no peer still
// has it. Instead it asks one peer for a snapshot manifest (the epoch
// boundary: boundary roots + the pre-epoch credit events), seeds its
// tangle with the boundary shape, and then pages only the live region
// through the ordinary cursor sync. Join cost is O(frontier), not
// O(history): a year-old deployment and a day-old one cost the same to
// join. Cursor-paged sync remains the catch-up path for nodes that were
// merely offline, and the full-replay fallback still works against
// peers that have never pruned.

const (
	// maxManifestBoundary bounds the boundary-root set a manifest may
	// carry; the boundary is O(frontier), so a manifest past this is a
	// confused or hostile peer, not a big deployment.
	maxManifestBoundary = 1 << 16
	// maxManifestCreditNodes bounds the credit entries in a manifest.
	maxManifestCreditNodes = 1 << 14
	// maxManifestEvents bounds seeded events per node; the credit ledger
	// itself folds past MaxEventsRetained, this is the wire-side cap.
	maxManifestEvents = 4096
	// manifestMaxSkew is how far in the future a manifest epoch may sit
	// before it is rejected as nonsense.
	manifestMaxSkew = 5 * time.Minute
	// maxBootstrapRounds bounds the converge loop: each round is a full
	// paged syncFrom, repeated only while the tangle still grows (dirty
	// pages re-offer across rounds).
	maxBootstrapRounds = 8
)

// ManifestCredit is one node's pre-epoch misbehaviour history. Only
// malicious events cross the manifest: positive credit re-derives from
// the live region as it attaches, but punishment "cannot be eliminated"
// — a bootstrapped gateway must not see offenders as clean-slate.
type ManifestCredit struct {
	Addr   identity.Address   `json:"addr"`
	Events []core.EventRecord `json:"events"`
}

// SnapshotManifest describes a peer's snapshot epoch: everything a
// fresh node needs to attach the peer's live region without the pruned
// history beneath it. It travels JSON-encoded in TxData[0] of a
// MsgSnapshotResponse.
type SnapshotManifest struct {
	// Epoch is the peer's last snapshot cutoff (zero: never pruned).
	Epoch time.Time `json:"epoch"`
	// Boundary is the sorted boundary-root set — pruned IDs still
	// referenced as parents by the peer's live vertices.
	Boundary []hashutil.Hash `json:"boundary,omitempty"`
	// Live and Cold size the peer's regions, for operator visibility.
	Live int `json:"live"`
	Cold int `json:"cold"`
	// Credit carries the pre-epoch misbehaviour events per node.
	Credit []ManifestCredit `json:"credit,omitempty"`
}

// SnapshotManifest builds this node's manifest: its current boundary
// roots, snapshot epoch, and every credit event older than the epoch
// (younger events re-derive on the requester as live transactions
// attach, so shipping them would double-count).
func (n *FullNode) SnapshotManifest() SnapshotManifest {
	epoch := n.tangle.ColdEpoch()
	m := SnapshotManifest{
		Epoch:    epoch,
		Boundary: n.tangle.BoundaryRoots(),
		Live:     n.tangle.Size(),
		Cold:     n.tangle.SnapshottedCount(),
	}
	if epoch.IsZero() {
		return m
	}
	led := n.engine.Ledger()
	for _, addr := range led.Nodes() {
		var evs []core.EventRecord
		for _, ev := range led.Events(addr) {
			if ev.At.Before(epoch) {
				evs = append(evs, ev)
			}
		}
		if len(evs) > 0 {
			m.Credit = append(m.Credit, ManifestCredit{Addr: addr, Events: evs})
		}
	}
	return m
}

// BootstrapStats reports how a join went.
type BootstrapStats struct {
	// Mode is "snapshot" (boundary-seeded, live region only) or
	// "replay" (full paged history — the peer had never pruned).
	Mode string
	// Peer served the join.
	Peer string
	// Boundary is the number of seeded boundary roots (snapshot mode).
	Boundary int
	// CreditSeeded is the number of pre-epoch misbehaviour events
	// carried over from the manifest.
	CreditSeeded int
	// Live is the tangle size after the join converged.
	Live int
	// Elapsed is wall-clock join time.
	Elapsed time.Duration
}

// BootstrapFrom joins via one peer. On a fresh node it requests the
// peer's snapshot manifest; if the peer has pruned history it seeds the
// boundary roots and pre-epoch credit events, then pages the live
// region with the ordinary (fully verified) cursor sync. If the peer
// has never pruned, it falls back to full paged replay from that peer —
// there the history IS the frontier. Either way the node converges on a
// tangle byte-identical to what full replay would have built from the
// peer's live region.
func (n *FullNode) BootstrapFrom(ctx context.Context, peer string) (BootstrapStats, error) {
	stats := BootstrapStats{Peer: peer}
	if n.cfg.Network == nil {
		return stats, errors.New("bootstrap requires a network")
	}
	start := n.cfg.Clock.Now()

	reply, err := n.cfg.Network.Request(ctx, peer, gossip.Message{Type: gossip.MsgSnapshotRequest})
	if err != nil {
		return stats, fmt.Errorf("snapshot request to %s: %w", peer, err)
	}
	if reply.Type != gossip.MsgSnapshotResponse || len(reply.TxData) != 1 {
		return stats, fmt.Errorf("peer %s: malformed snapshot response (type %v, %d blobs)",
			peer, reply.Type, len(reply.TxData))
	}
	var m SnapshotManifest
	if err := json.Unmarshal(reply.TxData[0], &m); err != nil {
		return stats, fmt.Errorf("peer %s: decode snapshot manifest: %w", peer, err)
	}
	if len(m.Boundary) > maxManifestBoundary || len(m.Credit) > maxManifestCreditNodes {
		return stats, fmt.Errorf("peer %s: manifest exceeds bounds (%d boundary roots, %d credit nodes)",
			peer, len(m.Boundary), len(m.Credit))
	}
	if m.Epoch.After(start.Add(manifestMaxSkew)) {
		return stats, fmt.Errorf("peer %s: manifest epoch %v is in the future", peer, m.Epoch)
	}

	if m.Epoch.IsZero() || len(m.Boundary) == 0 {
		// The peer holds its full history live; paged replay is already
		// the O(frontier) join.
		stats.Mode = "replay"
		n.syncRounds(ctx, peer)
		stats.Live = n.tangle.Size()
		stats.Elapsed = n.cfg.Clock.Now().Sub(start)
		return stats, nil
	}

	if err := n.tangle.BeginBootstrap(m.Boundary, m.Epoch); err != nil {
		return stats, fmt.Errorf("bootstrap from %s: %w", peer, err)
	}
	defer n.tangle.EndBootstrap()

	// Journal generation matters here: records attached during bootstrap
	// sit directly on seeded boundary roots, which a generation-0 replay
	// treats as a corrupt log. Cutting a compacted (generation ≥ 1)
	// segment first means every bootstrap-attached record replays
	// through Restore, so a crash mid-join recovers cleanly.
	if n.journalOpen() {
		if _, err := n.CompactJournal(); err != nil {
			return stats, fmt.Errorf("bootstrap from %s: %w", peer, err)
		}
	}

	led := n.engine.Ledger()
	for _, entry := range m.Credit {
		evs := entry.Events
		if len(evs) > maxManifestEvents {
			evs = evs[len(evs)-maxManifestEvents:]
		}
		for _, ev := range evs {
			if ev.At.Before(m.Epoch) {
				led.RecordMalicious(entry.Addr, ev)
				stats.CreditSeeded++
			}
		}
	}

	n.syncRounds(ctx, peer)
	stats.Mode = "snapshot"
	stats.Boundary = len(m.Boundary)
	stats.Live = n.tangle.Size()
	stats.Elapsed = n.cfg.Clock.Now().Sub(start)
	return stats, nil
}

// Bootstrap joins an existing deployment: it tries each known peer for
// a snapshot-shipped join and falls back to plain SyncAll replay when
// no peer serves a usable manifest.
func (n *FullNode) Bootstrap(ctx context.Context) (BootstrapStats, error) {
	if n.cfg.Network == nil {
		return BootstrapStats{}, errors.New("bootstrap requires a network")
	}
	before := n.tangle.Size()
	var lastErr error
	for _, peer := range n.cfg.Network.Peers() {
		stats, err := n.BootstrapFrom(ctx, peer)
		if err == nil {
			return stats, nil
		}
		lastErr = err
	}
	start := n.cfg.Clock.Now()
	n.SyncAll(ctx)
	stats := BootstrapStats{
		Mode:    "replay",
		Live:    n.tangle.Size(),
		Elapsed: n.cfg.Clock.Now().Sub(start),
	}
	if stats.Live == before && lastErr != nil {
		return stats, lastErr
	}
	return stats, nil
}

// syncRounds pages the peer until the tangle stops growing. One
// syncFrom pass can leave dirty pages (orphans whose parents arrive in
// a later page, difficulty checks against a still-stale credit view);
// the persisted cursor re-offers them, so bounded repetition converges.
func (n *FullNode) syncRounds(ctx context.Context, peer string) {
	for round := 0; round < maxBootstrapRounds; round++ {
		before := n.tangle.Size()
		n.syncFrom(ctx, peer)
		if n.tangle.Size() == before {
			return
		}
	}
}

// journalOpen reports whether persistence is enabled.
func (n *FullNode) journalOpen() bool {
	n.pendingMu.Lock()
	defer n.pendingMu.Unlock()
	return n.journal != nil
}
