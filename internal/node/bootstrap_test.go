package node_test

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
)

// TestMultiGenerationCompactRecovery extends the single-generation
// crash-recovery pin: a node that lives through TWO Compact +
// CompactJournal cycles (journal generations 1 and 2) — with a reboot
// in between — must replay each compacted segment through the
// snapshot-boundary Restore path and come back with the exact live
// working set, a durable pruned-ID count, and a working control plane.
func TestMultiGenerationCompactRecovery(t *testing.T) {
	ctx := context.Background()
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	fs := chaos.NewMemFS(7)
	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	boot := func() (*node.FullNode, *node.Manager, int) {
		full, err := node.NewFull(node.FullConfig{
			Key:        managerKey,
			Role:       identity.RoleManager,
			ManagerPub: managerKey.Public(),
			Credit:     testParams(),
			Clock:      clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := full.EnablePersistenceFS(fs, "multi.journal")
		if err != nil {
			t.Fatalf("enable persistence: %v", err)
		}
		mgr, err := node.NewManager(full)
		if err != nil {
			t.Fatal(err)
		}
		return full, mgr, replayed
	}
	post := func(full *node.FullNode, mgr *node.Manager, n int, tag string) {
		t.Helper()
		device := newTestDevice(t, full)
		mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
		if _, err := mgr.PublishAuthorization(ctx); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			clk.Advance(time.Minute)
			if _, err := device.PostReading(ctx, []byte(fmt.Sprintf("%s-%d", tag, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	cycle := func(full *node.FullNode) {
		t.Helper()
		if dropped, _ := full.Compact(10 * time.Minute); dropped == 0 {
			t.Fatal("compact dropped nothing")
		}
		if _, err := full.CompactJournal(); err != nil {
			t.Fatal(err)
		}
	}
	// churn publishes k authorize/deauthorize revision pairs: pressure
	// on the evidence window, which must stay pinned at its floor across
	// compactions and reboots no matter how many revisions history holds.
	churn := func(mgr *node.Manager, k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			key, err := identity.Generate()
			if err != nil {
				t.Fatal(err)
			}
			mgr.AuthorizeDevice(key.Public(), nil)
			if _, err := mgr.PublishAuthorization(ctx); err != nil {
				t.Fatal(err)
			}
			mgr.DeauthorizeDevice(key.Public())
			if _, err := mgr.PublishAuthorization(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Generation 1, then reboot.
	full, mgr, _ := boot()
	churn(mgr, 2)
	post(full, mgr, 30, "gen1")
	cycle(full)
	sizeAfter1 := full.Tangle().Size()
	cold1 := full.Tangle().SnapshottedCount()
	ev1 := full.MemoryStats().EvidenceVersions
	if ev1 == 0 || ev1 > 2 {
		t.Fatalf("evidence window after gen-1 compaction = %d versions, want 1..2", ev1)
	}
	if err := full.ClosePersistence(); err != nil {
		t.Fatal(err)
	}
	full.Close()
	fs.Reboot()

	full2, mgr2, _ := boot()
	if got := full2.Tangle().Size(); got != sizeAfter1 {
		t.Fatalf("gen-1 recovery size = %d, want %d", got, sizeAfter1)
	}
	if got := full2.Tangle().SnapshottedCount(); got < cold1 {
		t.Errorf("gen-1 recovery lost cold history: %d < %d", got, cold1)
	}
	// Replay re-observes every surviving list with its embedded stamp
	// and the boot-time prune re-cuts on the snapshot epoch, so the
	// recovered window is exactly the pre-crash one.
	if got := full2.MemoryStats().EvidenceVersions; got != ev1 {
		t.Fatalf("gen-1 recovery evidence window = %d versions, want %d (pre-crash)", got, ev1)
	}

	// Generation 2 on the recovered node, then reboot again.
	churn(mgr2, 2)
	post(full2, mgr2, 30, "gen2")
	cycle(full2)
	sizeAfter2 := full2.Tangle().Size()
	cold2 := full2.Tangle().SnapshottedCount()
	ev2 := full2.MemoryStats().EvidenceVersions
	if ev2 != ev1 {
		t.Fatalf("evidence window grew across generations: %d vs %d — not flat", ev2, ev1)
	}
	if cold2 <= cold1 {
		t.Fatalf("second compaction pruned nothing new: %d vs %d", cold2, cold1)
	}
	if _, gen, ok := full2.JournalStats(); !ok || gen != 2 {
		t.Fatalf("journal generation = %d (ok=%v), want 2", gen, ok)
	}
	if err := full2.ClosePersistence(); err != nil {
		t.Fatal(err)
	}
	full2.Close()
	fs.Reboot()

	full3, mgr3, _ := boot()
	defer full3.Close()
	defer full3.ClosePersistence()
	if got := full3.Tangle().Size(); got != sizeAfter2 {
		t.Fatalf("gen-2 recovery size = %d, want %d", got, sizeAfter2)
	}
	if got := full3.Tangle().SnapshottedCount(); got < cold2 {
		t.Errorf("gen-2 recovery lost cold history: %d < %d", got, cold2)
	}
	if full3.MemoryStats().ColdIndexBytes == 0 {
		t.Error("cold index empty after two pruning generations")
	}
	if got := full3.MemoryStats().EvidenceVersions; got != ev2 {
		t.Fatalf("gen-2 recovery evidence window = %d versions, want %d (pre-crash)", got, ev2)
	}
	// The twice-recovered node still serves, and credit survives with
	// incremental/rescan parity.
	post(full3, mgr3, 3, "gen3")
	led := full3.Engine().Ledger()
	now := clk.Now()
	for _, addr := range led.Nodes() {
		inc, ref := led.CreditOf(addr, now), led.RescanCredit(addr, now)
		if math.Abs(inc.Cr-ref.Cr) > 1e-9 {
			t.Errorf("credit parity broken for %s: incremental %+v, rescan %+v", addr.Short(), inc, ref)
		}
	}
}

// TestSnapshotBootstrapEquivalence is the tier test for the snapshot-
// shipped join: a ~20-node deployment (manager + 3 gateways + 14
// devices + 2 joiners) ages past several prune windows, the gateways
// compact, and then two fresh gateways join — one bootstrapping from a
// pruned gateway's snapshot manifest, one replaying full history from
// the (unpruned) manager. The snapshot-bootstrapped node must converge
// on a live region byte-identical to its serving peer's, and every
// node must agree on each device's credit-derived difficulty.
func TestSnapshotBootstrapEquivalence(t *testing.T) {
	ctx := context.Background()
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	dep := newMultiNode(t, 3, clk)

	const nDevices = 14
	var devices []*node.LightNode
	for i := 0; i < nDevices; i++ {
		key, err := identity.Generate()
		if err != nil {
			t.Fatal(err)
		}
		device, err := node.NewLight(node.LightConfig{
			Key:     key,
			Gateway: dep.gateways[i%len(dep.gateways)],
			Clock:   clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		devices = append(devices, device)
		dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	}
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	dep.flush(t)

	// Age the deployment well past the keep window, with a revoke →
	// reinstate revision pair mid-history so the authorization epochs a
	// joiner must reconstruct are non-trivial (three list versions, one
	// of which excludes device 0).
	const rounds = 12
	for r := 0; r < rounds; r++ {
		clk.Advance(time.Minute)
		switch r {
		case 4:
			dep.mgr.DeauthorizeDevice(devices[0].Key().Public())
			if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
				t.Fatal(err)
			}
			dep.flush(t)
		case 8:
			dep.mgr.AuthorizeDevice(devices[0].Key().Public(), devices[0].Key().BoxPublic())
			if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
				t.Fatal(err)
			}
			dep.flush(t)
		}
		for i, device := range devices {
			if i == 0 && r >= 4 && r < 8 {
				continue // revoked for these rounds
			}
			if _, err := device.PostReading(ctx, []byte(fmt.Sprintf("r%d-d%d", r, i))); err != nil {
				t.Fatalf("round %d device %d: %v", r, i, err)
			}
		}
		dep.flush(t)
	}
	// Converge everyone before cutting.
	for _, gw := range dep.gateways {
		gw.SyncAll(ctx)
	}
	dep.mgr.Node().SyncAll(ctx)
	dep.flush(t)
	fullSize := dep.mgr.Node().Tangle().Size()
	for i, gw := range dep.gateways {
		if got := gw.Tangle().Size(); got != fullSize {
			t.Fatalf("gateway %d did not converge: %d vs %d", i, got, fullSize)
		}
	}

	// Gateways compact (shared clock → identical cut); the manager keeps
	// full history and stays the replay peer.
	const keep = 5 * time.Minute
	for i, gw := range dep.gateways {
		if dropped, _ := gw.Compact(keep); dropped == 0 {
			t.Fatalf("gateway %d compacted nothing", i)
		}
	}
	gw0 := dep.gateways[0]
	if gw0.Tangle().SnapshottedCount() == 0 {
		t.Fatal("no cold history to bootstrap over")
	}

	join := func(name string) *node.FullNode {
		t.Helper()
		key, err := identity.Generate()
		if err != nil {
			t.Fatal(err)
		}
		net, err := dep.bus.Join(name)
		if err != nil {
			t.Fatal(err)
		}
		joiner, err := node.NewFull(node.FullConfig{
			Key:        key,
			Role:       identity.RoleGateway,
			ManagerPub: dep.mgrKey.Public(),
			Credit:     testParams(),
			Clock:      clk,
			Network:    net,
		})
		if err != nil {
			t.Fatal(err)
		}
		return joiner
	}

	snap := join("joiner-snap")
	snapStats, err := snap.BootstrapFrom(ctx, "gw-0")
	if err != nil {
		t.Fatalf("snapshot bootstrap: %v", err)
	}
	if snapStats.Mode != "snapshot" || snapStats.Boundary == 0 {
		t.Fatalf("snapshot join stats = %+v, want snapshot mode with boundary roots", snapStats)
	}

	replay := join("joiner-full")
	replayStats, err := replay.BootstrapFrom(ctx, "manager")
	if err != nil {
		t.Fatalf("replay bootstrap: %v", err)
	}
	if replayStats.Mode != "replay" {
		t.Fatalf("replay join stats = %+v, want replay mode", replayStats)
	}

	// The snapshot-bootstrapped live region is byte-identical to the
	// serving peer's.
	peerTxs := gw0.Tangle().Export()
	if got, want := snap.Tangle().Size(), gw0.Tangle().Size(); got != want {
		t.Fatalf("bootstrapped size = %d, want %d", got, want)
	}
	for _, tx := range peerTxs {
		got, err := snap.GetTransaction(tx.ID())
		if err != nil {
			t.Fatalf("bootstrapped node missing %s: %v", tx.ID().Short(), err)
		}
		if string(got.Encode()) != string(tx.Encode()) {
			t.Fatalf("tx %s differs byte-for-byte after bootstrap", tx.ID().Short())
		}
	}
	// The full-replay joiner holds ALL history — strictly more — and
	// still contains the live region.
	if replay.Tangle().Size() <= snap.Tangle().Size() {
		t.Errorf("replay joiner resident %d not larger than snapshot joiner %d",
			replay.Tangle().Size(), snap.Tangle().Size())
	}
	for _, tx := range peerTxs {
		if !replay.Tangle().Contains(tx.ID()) {
			t.Fatalf("replay joiner missing live tx %s", tx.ID().Short())
		}
	}

	// Evidence equivalence: authorization lists are a retained kind, so
	// both joiners — snapshot-bootstrapped and full-replay — rebuild the
	// same epoch window as the never-pruned manager: identical registry
	// sequence and an identical admission verdict for every device at
	// every possible evidence sequence (0 through one past current).
	mgrReg := dep.mgr.Node().Registry()
	curSeq := mgrReg.Seq()
	if curSeq != 3 {
		t.Fatalf("manager registry seq = %d, want 3 (initial, revoke, reinstate)", curSeq)
	}
	joiners := map[string]*node.FullNode{"snapshot": snap, "replay": replay}
	for name, joiner := range joiners {
		if got := joiner.Registry().Seq(); got != curSeq {
			t.Fatalf("%s joiner registry seq = %d, want %d", name, got, curSeq)
		}
		if !joiner.Registry().IsAuthorizedDevice(devices[0].Key().Address()) {
			t.Fatalf("%s joiner did not reinstate device 0", name)
		}
	}
	for i, device := range devices {
		addr := device.Key().Address()
		for ev := uint64(0); ev <= curSeq+1; ev++ {
			wantV, wantMissing := mgrReg.EvidenceVerdict(addr, ev)
			for name, joiner := range joiners {
				gotV, gotMissing := joiner.Registry().EvidenceVerdict(addr, ev)
				if gotV != wantV || gotMissing != wantMissing {
					t.Errorf("device %d, evidence %d: %s joiner verdict %v (missing %d) != manager %v (missing %d)",
						i, ev, name, gotV, gotMissing, wantV, wantMissing)
				}
			}
		}
	}

	// Credit equivalence: every full node — pruned peer, snapshot
	// joiner, replay joiner — derives the same difficulty for every
	// device, and the joiner's incremental credit matches a full rescan.
	now := clk.Now()
	led := snap.Engine().Ledger()
	for _, addr := range led.Nodes() {
		inc, ref := led.CreditOf(addr, now), led.RescanCredit(addr, now)
		if math.Abs(inc.Cr-ref.Cr) > 1e-9 {
			t.Errorf("joiner credit parity broken for %s: %+v vs %+v", addr.Short(), inc, ref)
		}
	}
	for i, device := range devices {
		want := gw0.DifficultyFor(device.Address())
		if got := snap.DifficultyFor(device.Address()); got != want {
			t.Errorf("device %d: snapshot joiner difficulty %d != peer %d", i, got, want)
		}
		if got := replay.DifficultyFor(device.Address()); got != want {
			t.Errorf("device %d: replay joiner difficulty %d != peer %d", i, got, want)
		}
	}
}
