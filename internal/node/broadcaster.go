package node

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/metrics"
)

// Broadcast pipeline defaults (overridable through FullConfig).
const (
	defaultBroadcastQueue     = 1024
	defaultBroadcastPeerQueue = 256
	defaultBroadcastBatch     = 32
)

// ErrBroadcastBacklog reports that the node's asynchronous broadcast
// queue is full. The submission was NOT admitted — the caller (a light
// node) should back off and resubmit; this is the pipeline's
// backpressure signal, distinct from rate limiting which is per-device.
var ErrBroadcastBacklog = errors.New("gossip broadcast queue is full")

// PipelineMetrics exposes the submission pipeline's observability
// surface: per-stage latency histograms and queue instrumentation, so a
// speedup (or a regression) is measurable rather than asserted.
type PipelineMetrics struct {
	// AdmitLatency covers the lock-free admission stage: structural,
	// signature, authorization, rate-limit and PoW checks.
	AdmitLatency *metrics.Histogram
	// AttachLatency covers the short critical section: tangle attach +
	// credit update (+ journal append).
	AttachLatency *metrics.Histogram
	// BroadcastLatency covers one batched peer send in the async stage.
	BroadcastLatency *metrics.Histogram
	// QueueDepth is the intake queue's current occupancy (reserved
	// slots included).
	QueueDepth *metrics.Gauge
	// BatchesSent counts peer datagrams; TxBroadcast counts the
	// transactions they carried (TxBroadcast/BatchesSent = mean batch).
	BatchesSent *metrics.Counter
	TxBroadcast *metrics.Counter
	// PeerDrops counts transactions dropped for one slow peer (its
	// bounded queue was full); gossip sync repairs the gap later.
	PeerDrops *metrics.Counter
	// SendFailures counts failed peer sends (partition, dead peer).
	SendFailures *metrics.Counter
	// VerifyLatency samples one inbound verification (structure +
	// signature + authorization + credit-difficulty PoW check).
	VerifyLatency *metrics.Histogram
	// VerifyBusy / VerifyPeak are the inbound verification pool's
	// current and peak occupancy (bounded by GOMAXPROCS).
	VerifyBusy *metrics.Gauge
	VerifyPeak *metrics.Gauge
	// VerifyCacheHits counts gossip echoes whose repeated signature
	// work was skipped via the verified-ID LRU.
	VerifyCacheHits *metrics.Counter
	// BatchVerifies counts identity.VerifyBatch calls on the inbound
	// path; BatchVerified counts the signatures they settled (ratio =
	// mean batch size). BatchFallbacks counts batches whose combined
	// equation failed and fell back to per-signature attribution.
	BatchVerifies  *metrics.Counter
	BatchVerified  *metrics.Counter
	BatchFallbacks *metrics.Counter
	// OrphanSyncs counts inbound batches that triggered the (single)
	// per-batch sync round-trip for missing parents.
	OrphanSyncs *metrics.Counter
	// SyncPages counts sync pages this node pulled as a requester.
	SyncPages *metrics.Counter
}

func newPipelineMetrics() PipelineMetrics {
	return PipelineMetrics{
		AdmitLatency:     &metrics.Histogram{},
		AttachLatency:    &metrics.Histogram{},
		BroadcastLatency: &metrics.Histogram{},
		QueueDepth:       &metrics.Gauge{},
		BatchesSent:      &metrics.Counter{},
		TxBroadcast:      &metrics.Counter{},
		PeerDrops:        &metrics.Counter{},
		SendFailures:     &metrics.Counter{},
		VerifyLatency:    &metrics.Histogram{},
		VerifyBusy:       &metrics.Gauge{},
		VerifyPeak:       &metrics.Gauge{},
		VerifyCacheHits:  &metrics.Counter{},
		BatchVerifies:    &metrics.Counter{},
		BatchVerified:    &metrics.Counter{},
		BatchFallbacks:   &metrics.Counter{},
		OrphanSyncs:      &metrics.Counter{},
		SyncPages:        &metrics.Counter{},
	}
}

// broadcastItem is one unit flowing through the pipeline: an encoded
// transaction, or a flush marker (tx nil) used as an ordering barrier.
type broadcastItem struct {
	tx    []byte
	flush *sync.WaitGroup
}

// broadcaster is the asynchronous fan-out stage of the submission
// pipeline: a bounded intake queue feeding one dispatcher goroutine,
// which distributes work to per-peer bounded queues each drained by one
// sender goroutine that coalesces consecutive transactions into batched
// MsgTransaction datagrams.
//
// Backpressure: intake capacity is reserved before admission and
// surfaces as ErrBroadcastBacklog when exhausted. A slow peer never
// stalls the pipeline — its queue overflows by dropping (counted), and
// the tangle sync protocol repairs the gap.
type broadcaster struct {
	net       gossip.Network
	counters  Counters
	pipeline  PipelineMetrics
	maxBatch  int
	peerQueue int
	shard     uint32 // stamped on outgoing MsgTransaction batches

	intake   chan broadcastItem
	reserved atomic.Int64 // slots promised to in-flight admissions

	// sendMu serializes producers against close: sends hold the read
	// side, close takes the write side before closing the intake, so a
	// send can never hit a closed channel.
	sendMu sync.RWMutex
	closed bool

	mu      sync.Mutex
	senders map[string]*peerSender

	wg sync.WaitGroup // dispatcher + sender goroutines
}

type peerSender struct {
	name  string
	queue chan broadcastItem
}

func newBroadcaster(net gossip.Network, counters Counters, pipeline PipelineMetrics, queue, peerQueue, maxBatch int, shard uint32) *broadcaster {
	if queue <= 0 {
		queue = defaultBroadcastQueue
	}
	if peerQueue <= 0 {
		peerQueue = defaultBroadcastPeerQueue
	}
	if maxBatch <= 0 {
		maxBatch = defaultBroadcastBatch
	}
	b := &broadcaster{
		net:       net,
		counters:  counters,
		pipeline:  pipeline,
		maxBatch:  maxBatch,
		peerQueue: peerQueue,
		shard:     shard,
		intake:    make(chan broadcastItem, queue),
		senders:   make(map[string]*peerSender),
	}
	b.wg.Add(1)
	go b.dispatch()
	return b
}

// reserve claims one intake slot ahead of admission, so a successful
// admit can always enqueue without blocking. The returned release frees
// the slot if admission fails.
func (b *broadcaster) reserve() (release func(), err error) {
	for {
		cur := b.reserved.Load()
		if cur >= int64(cap(b.intake)) {
			return nil, ErrBroadcastBacklog
		}
		if b.reserved.CompareAndSwap(cur, cur+1) {
			b.pipeline.QueueDepth.Set(cur + 1)
			return func() {
				b.reserved.Add(-1)
				b.pipeline.QueueDepth.Set(b.reserved.Load())
			}, nil
		}
	}
}

// enqueue hands an encoded transaction to the async stage. The caller
// must hold a reservation; the send therefore never blocks.
func (b *broadcaster) enqueue(encoded []byte) {
	b.sendMu.RLock()
	defer b.sendMu.RUnlock()
	if b.closed {
		b.reserved.Add(-1)
		return
	}
	b.intake <- broadcastItem{tx: encoded}
}

// flush blocks until every transaction enqueued before the call has
// been attempted against every current peer (delivered, failed or
// dropped) — the barrier tests and graceful shutdown use.
func (b *broadcaster) flush(ctx context.Context) error {
	var wg sync.WaitGroup
	wg.Add(1) // matched by the dispatcher after fan-out

	b.sendMu.RLock()
	if b.closed {
		b.sendMu.RUnlock()
		return nil
	}
	// Markers carry no reservation, so this send can briefly block on a
	// full intake; the dispatcher is always draining, so it progresses.
	b.intake <- broadcastItem{flush: &wg}
	b.sendMu.RUnlock()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isClosed reports whether close has run — the transport-health probe.
func (b *broadcaster) isClosed() bool {
	b.sendMu.RLock()
	defer b.sendMu.RUnlock()
	return b.closed
}

// saturated reports a full intake queue: admissions are about to hit
// ErrBroadcastBacklog. A readiness probe that sheds load here lets the
// queue drain instead of bouncing submissions off the hard limit.
func (b *broadcaster) saturated() bool {
	return b.reserved.Load() >= int64(cap(b.intake))
}

// close stops the pipeline: the dispatcher drains the intake, sender
// queues are closed and drained, and all goroutines join.
func (b *broadcaster) close() {
	b.sendMu.Lock()
	if b.closed {
		b.sendMu.Unlock()
		return
	}
	b.closed = true
	close(b.intake)
	b.sendMu.Unlock()
	b.wg.Wait()
}

func (b *broadcaster) dispatch() {
	defer b.wg.Done()
	for it := range b.intake {
		if it.tx != nil {
			b.reserved.Add(-1)
			b.pipeline.QueueDepth.Set(b.reserved.Load())
		}
		peers := b.net.Peers()
		if it.flush != nil {
			// Barrier: propagate to every current peer queue with a
			// blocking send (a flush must not be dropped), then release
			// the dispatcher's own count.
			for _, name := range peers {
				it.flush.Add(1)
				b.sender(name).queue <- it
			}
			it.flush.Done()
			continue
		}
		for _, name := range peers {
			s := b.sender(name)
			select {
			case s.queue <- it:
			default:
				b.pipeline.PeerDrops.Inc() // slow peer: sync repairs it
			}
		}
	}
	// Shutdown: close sender queues and let them drain.
	b.mu.Lock()
	senders := make([]*peerSender, 0, len(b.senders))
	for _, s := range b.senders {
		senders = append(senders, s)
	}
	b.mu.Unlock()
	for _, s := range senders {
		close(s.queue)
	}
}

// sender returns (starting if needed) the queue worker for one peer.
func (b *broadcaster) sender(name string) *peerSender {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s, ok := b.senders[name]; ok {
		return s
	}
	s := &peerSender{name: name, queue: make(chan broadcastItem, b.peerQueue)}
	b.senders[name] = s
	b.wg.Add(1)
	go b.sendLoop(s)
	return s
}

// sendLoop drains one peer's queue, coalescing consecutive transactions
// into batched datagrams of up to maxBatch entries.
func (b *broadcaster) sendLoop(s *peerSender) {
	defer b.wg.Done()
	for it := range s.queue {
		var barriers []*sync.WaitGroup
		if it.flush != nil {
			it.flush.Done()
			continue
		}
		batch := [][]byte{it.tx}
	coalesce:
		for len(batch) < b.maxBatch {
			select {
			case next, ok := <-s.queue:
				if !ok {
					break coalesce
				}
				if next.flush != nil {
					// The barrier completes after this batch is sent.
					barriers = append(barriers, next.flush)
					break coalesce
				}
				batch = append(batch, next.tx)
			default:
				break coalesce
			}
		}
		b.send(s.name, batch)
		for _, wg := range barriers {
			wg.Done()
		}
	}
}

func (b *broadcaster) send(peer string, batch [][]byte) {
	start := time.Now()
	_, err := b.net.Request(context.Background(), peer, gossip.Message{
		Type:   gossip.MsgTransaction,
		TxData: batch,
		Shard:  uint64(b.shard),
		Scoped: true,
	})
	b.pipeline.BroadcastLatency.Observe(time.Since(start))
	if err != nil {
		b.pipeline.SendFailures.Inc()
		return
	}
	b.pipeline.BatchesSent.Inc()
	b.pipeline.TxBroadcast.Add(int64(len(batch)))
	b.counters.GossipOut.Inc()
}
