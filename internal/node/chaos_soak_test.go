package node_test

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/b-iot/biot/internal/scenario"
)

// chaosSeed returns the soak's master seed: BIOT_CHAOS_SEED re-runs a
// failing schedule exactly; otherwise a fixed default keeps CI
// deterministic.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if env := os.Getenv("BIOT_CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("BIOT_CHAOS_SEED: %v", err)
		}
		return seed
	}
	return 0xC4A05
}

// TestChaosSoakConvergenceZeroLoss is the fault-injection counterpart
// of TestSoakFiveNodeConvergence, and the first consumer of the
// scenario harness: the machine-carnage cell composes a node kill with
// a machine reboot (disk page cache tears away), an fsync poisoning
// healed by the watchdog, probabilistic gossip faults
// (drop/duplicate/delay/reorder) and a full partition. After healing,
// the cluster must converge to identical tangles with ZERO loss of any
// transaction whose submit succeeded while its gateway's journal was
// verifiably healthy, and with incremental credit matching the
// RescanCredit oracle on every node.
//
// Every random choice (disk tear survival, gossip fault schedule)
// derives from one seed, printed on failure and pinned with
// BIOT_CHAOS_SEED for replay. The scenario body lives in
// internal/scenario/matrix.go; this test keeps the historical soak
// name and seed knob on top of it.
func TestChaosSoakConvergenceZeroLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak mines hundreds of proofs of work")
	}
	seed := chaosSeed(t)
	spec := scenario.MachineCarnage(scenario.TierCI)
	res, err := scenario.Run(context.Background(), spec, seed)
	if err != nil {
		t.Fatalf("[seed %d — rerun with BIOT_CHAOS_SEED=%d] %s",
			seed, seed, fmt.Sprintf("%v\nrow: %+v", err, res))
	}
	t.Logf("chaos soak: %d nodes converged at %d transactions, %d guaranteed-durable all present, "+
		"credit parity max Δ %.2g, watchdog restarts=%d — %s",
		res.Nodes, res.TangleSize, res.Durable, res.MaxCreditDelta, res.Restarts, res.Notes)
}
