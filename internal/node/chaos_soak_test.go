package node_test

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
)

// chaosSeed returns the soak's master seed: BIOT_CHAOS_SEED re-runs a
// failing schedule exactly; otherwise a fixed default keeps CI
// deterministic.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if env := os.Getenv("BIOT_CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("BIOT_CHAOS_SEED: %v", err)
		}
		return seed
	}
	return 0xC4A05
}

// TestChaosSoakConvergenceZeroLoss is the fault-injection counterpart
// of TestSoakFiveNodeConvergence: five full nodes (one stable manager,
// four supervised gateways journaling to fault-injected in-memory
// disks) survive a schedule of node kills with machine reboots, an
// fsync poisoning healed by the watchdog, probabilistic gossip faults
// (drop/duplicate/delay/reorder) and a full partition. After healing,
// the cluster must converge to identical tangles with ZERO loss of any
// transaction whose submit succeeded while its gateway's journal was
// verifiably healthy (poison is sticky per journal instance, so
// healthy-after-submit proves that submit's append fsynced).
//
// Every random choice (disk tear survival, gossip fault schedule)
// derives from one seed, printed on failure and pinned with
// BIOT_CHAOS_SEED for replay.
func TestChaosSoakConvergenceZeroLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak mines hundreds of proofs of work")
	}
	seed := chaosSeed(t)
	fatalf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("[seed %d — rerun with BIOT_CHAOS_SEED=%d] %s",
			seed, seed, fmt.Sprintf(format, args...))
	}

	const (
		gatewayCount = 4 // plus the manager: five full nodes
		deviceCount  = 8 // two per gateway
		perPhase     = 6 // submissions per device per phase
	)
	ctx := context.Background()
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	bus := gossip.NewBus()
	defer bus.Close()

	mgrKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mgrNet, err := bus.Join("manager")
	if err != nil {
		t.Fatal(err)
	}
	mgrFull, err := node.NewFull(node.FullConfig{
		Key:        mgrKey,
		Role:       identity.RoleManager,
		ManagerPub: mgrKey.Public(),
		Credit:     testParams(),
		Clock:      clk,
		Network:    mgrNet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgrFull.Close()
	mgr, err := node.NewManager(mgrFull)
	if err != nil {
		t.Fatal(err)
	}

	// Four supervised gateways. Each journals to its own fault-
	// injectable disk and gossips through its own FaultyNetwork,
	// rebuilt by Build on every (re)start so restarts re-join the bus.
	var (
		disks [gatewayCount]*chaos.MemFS
		sups  [gatewayCount]*node.Supervisor
		fnMu  sync.Mutex
		fns   [gatewayCount]*chaos.FaultyNetwork
	)
	for i := 0; i < gatewayCount; i++ {
		i := i
		disks[i] = chaos.NewMemFS(seed + int64(i))
		gwKey, err := identity.Generate()
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("gw-%d", i)
		sup, err := node.NewSupervisor(node.SupervisorConfig{
			Build: func() (*node.FullNode, error) {
				peer, err := bus.Join(name)
				if err != nil {
					return nil, err
				}
				fn := chaos.NewFaultyNetwork(peer, chaos.NetFaults{}, seed+100+int64(i))
				n, err := node.NewFull(node.FullConfig{
					Key:        gwKey,
					Role:       identity.RoleGateway,
					ManagerPub: mgrKey.Public(),
					Credit:     testParams(),
					Clock:      clk,
					Network:    fn,
				})
				if err != nil {
					fn.Close()
					return nil, err
				}
				fnMu.Lock()
				fns[i] = fn
				fnMu.Unlock()
				return n, nil
			},
			PersistPath:   name + ".journal",
			FS:            disks[i],
			WatchInterval: 10 * time.Millisecond,
			BackoffBase:   5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sups[i] = sup
		if err := sup.Start(); err != nil {
			t.Fatal(err)
		}
		defer sup.Stop(ctx)
	}

	// Two devices per gateway, bound through the supervisor's gateway
	// delegate so they survive restarts; all authorized up front.
	devices := make([]*node.LightNode, deviceCount)
	for d := range devices {
		devices[d] = newTestDevice(t, sups[d%gatewayCount].Gateway())
		mgr.AuthorizeDevice(devices[d].Key().Public(), devices[d].Key().BoxPublic())
	}
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if err := mgrFull.FlushBroadcast(ctx); err != nil {
		t.Fatal(err)
	}

	// mustHave collects transactions the cluster is NOT allowed to
	// lose: submit succeeded AND the same journal instance was still
	// healthy afterwards, proving the append fsynced before any later
	// fault.
	var (
		mustMu   sync.Mutex
		mustHave = make(map[string]bool)
	)
	runPhase := func(phase int, faultsActive bool) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, deviceCount)
		for d, dev := range devices {
			wg.Add(1)
			go func(d int, dev *node.LightNode) {
				defer wg.Done()
				gw := d % gatewayCount
				for i := 0; i < perPhase; i++ {
					before := sups[gw].Node()
					res, err := dev.PostReading(ctx, []byte(fmt.Sprintf("chaos p%d d%d i%d", phase, d, i)))
					if err != nil {
						if !faultsActive {
							errs <- fmt.Errorf("phase %d device %d: %w", phase, d, err)
							return
						}
						continue // fault window: failures are the point
					}
					after := sups[gw].Node()
					if before != nil && before == after && after.JournalHealthy() {
						mustMu.Lock()
						mustHave[res.Info.ID.String()] = true
						mustMu.Unlock()
					}
				}
			}(d, dev)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			fatalf("%v", err)
		}
	}

	// Phase 0: clean baseline.
	runPhase(0, false)
	clk.Advance(time.Second)

	// Inject the schedule: gw-0's machine dies (kill + disk reboot, so
	// unsynced page cache tears away); gw-1's disk fails its next
	// fsync (journal poisons; the watchdog must notice and restart
	// it); gw-2 and gw-3 gossip through drop/dup/delay/reorder faults;
	// gw-3 is additionally partitioned from the whole bus.
	sups[0].Kill()
	disks[0].Reboot()
	disks[1].InjectSyncError(nil)
	fnMu.Lock()
	fns[2].SetFaults(chaos.NetFaults{DropProb: 0.2, DupProb: 0.2, DelayMax: 200 * time.Microsecond, ReorderProb: 0.1})
	fns[3].SetFaults(chaos.NetFaults{DropProb: 0.3, DupProb: 0.1, DelayMax: 300 * time.Microsecond})
	fnMu.Unlock()
	bus.Isolate("gw-3")

	// Phase 1: submit through the storm.
	runPhase(1, true)
	clk.Advance(time.Second)

	// Heal: gw-0's machine comes back (journal replays), the
	// partition lifts, the gossip faults clear. gw-1 healed itself via
	// the watchdog (asserted below).
	if err := sups[0].Start(); err != nil {
		fatalf("restart gw-0: %v", err)
	}
	bus.Restore("gw-3")
	fnMu.Lock()
	for _, fn := range fns {
		if fn != nil {
			fn.Heal()
		}
	}
	fnMu.Unlock()

	deadline := time.Now().Add(10 * time.Second)
	for sups[1].Restarts() == 0 || !sups[1].Ready() {
		if time.Now().After(deadline) {
			fatalf("watchdog never healed gw-1's poisoned journal: %+v", sups[1].Health())
		}
		time.Sleep(time.Millisecond)
	}

	// Phase 2: clean again — every node serves every submission.
	runPhase(2, false)
	clk.Advance(time.Second)

	// Drain pipelines, then pull-sync to fixpoint.
	fulls := func() []*node.FullNode {
		out := []*node.FullNode{mgrFull}
		for _, sup := range sups {
			if n := sup.Node(); n != nil {
				out = append(out, n)
			}
		}
		return out
	}()
	if len(fulls) != gatewayCount+1 {
		fatalf("only %d/%d nodes alive after healing", len(fulls), gatewayCount+1)
	}
	for _, n := range fulls {
		if err := n.FlushBroadcast(ctx); err != nil {
			fatalf("flush: %v", err)
		}
	}
	idSet := func(n *node.FullNode) map[string]bool {
		set := make(map[string]bool)
		for _, tr := range n.Tangle().Export() {
			set[tr.ID().String()] = true
		}
		return set
	}
	equalSets := func(a, b map[string]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for id := range a {
			if !b[id] {
				return false
			}
		}
		return true
	}
	converged := false
	for round := 0; round < 30 && !converged; round++ {
		for _, n := range fulls {
			n.SyncAll(ctx)
		}
		converged = true
		ref := idSet(fulls[0])
		for _, n := range fulls[1:] {
			if !equalSets(ref, idSet(n)) {
				converged = false
				break
			}
		}
	}
	if !converged {
		for i, n := range fulls {
			t.Logf("node %d tangle size %d", i, n.Tangle().Size())
		}
		// Diagnose: what does the smallest node reject, and why?
		ref := idSet(fulls[0])
		for i, n := range fulls[1:] {
			mine := idSet(n)
			shown := 0
			for _, tr := range fulls[0].Tangle().Export() {
				id := tr.ID().String()
				if mine[id] || shown >= 3 {
					continue
				}
				shown++
				req := n.DifficultyFor(tr.Sender())
				t.Logf("node %d missing %s kind=%v sender=%s required=%d powErr=%v",
					i+1, id[:8], tr.Kind, tr.Sender().Short(), req, tr.VerifyPoW(req))
			}
			_ = ref
		}
		fatalf("nodes did not converge after healing")
	}

	// Zero loss: every journaled-admitted transaction survived the
	// kills, the disk reboot, the poisoned journal and the partition.
	ref := idSet(fulls[0])
	missing := 0
	for id := range mustHave {
		if !ref[id] {
			missing++
		}
	}
	if missing > 0 {
		fatalf("%d of %d journaled-admitted transactions lost", missing, len(mustHave))
	}
	if len(mustHave) < deviceCount*perPhase { // at least the two clean phases' floor
		fatalf("suspiciously few guaranteed transactions tracked: %d", len(mustHave))
	}
	t.Logf("chaos soak: converged at %d transactions, %d guaranteed-durable all present, gw-1 watchdog restarts=%d",
		len(ref), len(mustHave), sups[1].Restarts())
}
