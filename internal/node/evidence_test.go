package node_test

import (
	"context"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/authz"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/txn"
)

// mineTx grinds the transaction's nonce to the given difficulty. Mine
// before the first ID()/Encode() (the canonical encoding is cached).
func mineTx(tx *txn.Transaction, difficulty int) {
	for tx.Nonce = 0; ; tx.Nonce++ {
		if txn.PowDigest(tx.Trunk, tx.Branch, tx.Nonce).LeadingZeroBits() >= difficulty {
			return
		}
	}
}

// craftTx hand-builds a mined, signed transaction with explicit
// parents — the deterministic replacement for a live submission when a
// test needs exact tangle shape.
func craftTx(key *identity.KeyPair, kind txn.Kind, payload []byte, trunk, branch hashutil.Hash, ts time.Time, difficulty int) *txn.Transaction {
	tx := &txn.Transaction{
		Trunk:     trunk,
		Branch:    branch,
		Timestamp: ts,
		Kind:      kind,
		Payload:   payload,
	}
	mineTx(tx, difficulty)
	tx.Sign(key)
	return tx
}

func craftAuthTx(t *testing.T, mgrKey *identity.KeyPair, list authz.List, trunk, branch hashutil.Hash, ts time.Time) *txn.Transaction {
	t.Helper()
	payload, err := authz.EncodeList(list)
	if err != nil {
		t.Fatal(err)
	}
	return craftTx(mgrKey, txn.KindAuthorization, payload, trunk, branch, ts, testParams().MinDifficulty)
}

// injectedNode is a gateway receiving gossip from a bare injector peer:
// the injector joins the bus WITHOUT a handler, so the node's reactive
// lanes back to it (orphan sync, auth-list probes) fail harmlessly and
// every admission decision is forced from exactly the bytes injected —
// the deterministic reproduction of an arbitrary relay interleaving.
type injectedNode struct {
	n   *node.FullNode
	inj gossip.Network
}

func newInjectedNode(t *testing.T, mgrKey *identity.KeyPair, clk clock.Clock, mutate func(*node.FullConfig)) *injectedNode {
	t.Helper()
	bus := gossip.NewBus()
	t.Cleanup(func() { _ = bus.Close() })
	nodeNet, err := bus.Join("b")
	if err != nil {
		t.Fatal(err)
	}
	injNet, err := bus.Join("inj")
	if err != nil {
		t.Fatal(err)
	}
	key, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := node.FullConfig{
		Key:        key,
		Role:       identity.RoleGateway,
		ManagerPub: mgrKey.Public(),
		Credit:     testParams(),
		Clock:      clk,
		Network:    nodeNet,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := node.NewFull(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &injectedNode{n: n, inj: injNet}
}

// send injects one gossip batch and waits for its synchronous handling.
func (in *injectedNode) send(t *testing.T, txs ...*txn.Transaction) {
	t.Helper()
	data := make([][]byte, len(txs))
	for i, tx := range txs {
		data[i] = tx.Encode()
	}
	if _, err := in.inj.Request(context.Background(), "b",
		gossip.Message{Type: gossip.MsgTransaction, TxData: data}); err != nil {
		t.Fatalf("inject: %v", err)
	}
}

// TestEvidenceGatePinnedRegression reproduces — deterministically — the
// orphaned-auth-list interleaving behind the old revocation-storm flake
// (~8%/run), and proves the evidence-at-admission gate resolves it.
//
// The history: list1 authorizes device D; D posts reading T (a child of
// list1); list2 revokes D; list3 (a child of T) reinstates D. A relay
// receives the lists AHEAD of T — exactly what gossip reordering or a
// revocation storm produces. Under the old live-registry gate, T is
// judged against list2's view, rejected as unauthorized, and list3 —
// T's descendant — orphans forever: the receiver's registry is stuck
// one revision behind the manager's. Under the evidence gate, T's
// admission evidence is list1 (its past cone), D was a member then, so
// T admits and list3 repairs out of quarantine.
func TestEvidenceGatePinnedRegression(t *testing.T) {
	ctx := context.Background()
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))

	// Build the real history on a standalone manager node A.
	mgrKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	full, err := node.NewFull(node.FullConfig{
		Key:        mgrKey,
		Role:       identity.RoleManager,
		ManagerPub: mgrKey.Public(),
		Credit:     testParams(),
		Clock:      clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		t.Fatal(err)
	}
	device := newTestDevice(t, full)
	mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	lists := full.Tangle().ByKind(txn.KindAuthorization, 0)
	if len(lists) != 1 {
		t.Fatalf("%d authorization lists on the manager, want 1", len(lists))
	}
	list1 := lists[0]
	res, err := device.PostReading(ctx, []byte("reading"))
	if err != nil {
		t.Fatal(err)
	}
	reading, err := full.GetTransaction(res.Info.ID)
	if err != nil {
		t.Fatal(err)
	}
	// On the quiet single-node tangle list1 is the sole tip when the
	// reading mines, so its past cone pins evidence sequence 1.
	if reading.Trunk != list1.ID() || reading.Branch != list1.ID() {
		t.Fatalf("reading parents (%s, %s), want both %s",
			reading.Trunk, reading.Branch, list1.ID())
	}
	// list2 revokes D (whole-state list without it); list3 — approving
	// the reading — reinstates D. Hand-crafted rather than published so
	// the parent shape is exact.
	list2 := craftAuthTx(t, mgrKey, authz.List{Seq: 2},
		list1.ID(), list1.ID(), clk.Now())
	list3 := craftAuthTx(t, mgrKey,
		authz.List{Seq: 3, Devices: []string{identity.EncodePublic(device.Key().Public())}},
		reading.ID(), list2.ID(), clk.Now())

	// The flaky interleaving: both lists arrive before the reading.
	deliver := func(in *injectedNode) {
		in.send(t, list1, list2)
		in.send(t, list3) // orphan: its parent (the reading) is missing
		in.send(t, reading)
	}

	t.Run("evidence-gate", func(t *testing.T) {
		in := newInjectedNode(t, mgrKey, clk, nil)
		deliver(in)
		c := in.n.CountersView()
		if !in.n.Tangle().Contains(reading.ID()) {
			t.Error("reading rejected despite valid admission evidence")
		}
		if !in.n.Tangle().Contains(list3.ID()) {
			t.Error("list3 still orphaned after its parent arrived")
		}
		if got := in.n.Registry().Seq(); got != 3 {
			t.Errorf("registry seq = %d, want 3", got)
		}
		if !in.n.Registry().IsAuthorizedDevice(device.Key().Address()) {
			t.Error("device not reinstated")
		}
		if got := c.StaleAuthRejects.Value(); got != 0 {
			t.Errorf("StaleAuthRejects = %d, want 0", got)
		}
		if got := c.QuarantineRepairs.Value(); got < 1 {
			t.Errorf("QuarantineRepairs = %d, want ≥ 1 (list3 must repair)", got)
		}
		if got := in.n.QuarantineLen(); got != 0 {
			t.Errorf("QuarantineLen = %d, want 0", got)
		}
	})

	t.Run("pre-fix-gate", func(t *testing.T) {
		// The same interleaving against the old live-registry check
		// (DisableAdmissionEvidence) MUST reproduce the flake's failure
		// shape — this is the proof the pinned history captures the bug.
		in := newInjectedNode(t, mgrKey, clk, func(cfg *node.FullConfig) {
			cfg.DisableAdmissionEvidence = true
		})
		deliver(in)
		c := in.n.CountersView()
		if in.n.Tangle().Contains(reading.ID()) {
			t.Error("live-registry gate admitted the revoked-sender reading; the flake shape is gone")
		}
		if got := in.n.Registry().Seq(); got != 2 {
			t.Errorf("registry seq = %d, want stuck at 2", got)
		}
		if in.n.Registry().IsAuthorizedDevice(device.Key().Address()) {
			t.Error("device authorized despite the orphaned reinstating list")
		}
		if got := c.StaleAuthRejects.Value(); got < 1 {
			t.Errorf("StaleAuthRejects = %d, want ≥ 1", got)
		}
	})
}

// TestQuarantineBounded pins the quarantine's two bounds: a flood of
// unresolvable transactions evicts FIFO past the capacity (O(cap)
// memory under attack), and entries past their TTL are dropped at the
// next kick instead of waiting forever.
func TestQuarantineBounded(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	mgrKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	devKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	in := newInjectedNode(t, mgrKey, clk, func(cfg *node.FullConfig) {
		cfg.QuarantineCap = 4
		cfg.QuarantineTTL = time.Minute
	})
	list1 := craftAuthTx(t, mgrKey,
		authz.List{Seq: 1, Devices: []string{identity.EncodePublic(devKey.Public())}},
		genesisIDs(t, in.n)[0], genesisIDs(t, in.n)[1], clk.Now())
	in.send(t, list1)

	// Ten authorized-sender transactions with fabricated parents: all
	// structurally valid, none resolvable (the parents do not exist
	// anywhere), so every one parks.
	floor := testParams().MinDifficulty
	for i := 0; i < 10; i++ {
		var trunk, branch hashutil.Hash
		trunk[0], trunk[1] = byte(i+1), 0xAA
		branch[0], branch[1] = byte(i+1), 0xBB
		in.send(t, craftTx(devKey, txn.KindData, []byte("x"), trunk, branch, clk.Now(), floor))
	}
	c := in.n.CountersView()
	if got := in.n.QuarantineLen(); got != 4 {
		t.Fatalf("QuarantineLen = %d, want cap 4", got)
	}
	if got := c.Quarantined.Value(); got != 10 {
		t.Errorf("Quarantined = %d, want 10", got)
	}
	if got := c.QuarantineDrops.Value(); got != 6 {
		t.Errorf("QuarantineDrops = %d, want 6 FIFO evictions", got)
	}

	// Past the TTL, the next kick (here: a valid admission) clears the
	// survivors as expired.
	clk.Advance(2 * time.Minute)
	valid := craftTx(devKey, txn.KindData, []byte("ok"),
		genesisIDs(t, in.n)[0], genesisIDs(t, in.n)[1], clk.Now(), floor)
	in.send(t, valid)
	c = in.n.CountersView()
	if !in.n.Tangle().Contains(valid.ID()) {
		t.Fatal("valid transaction rejected")
	}
	if got := in.n.QuarantineLen(); got != 0 {
		t.Errorf("QuarantineLen = %d after TTL expiry, want 0", got)
	}
	if got := c.QuarantineDrops.Value(); got != 10 {
		t.Errorf("QuarantineDrops = %d, want 10 (6 evictions + 4 TTL)", got)
	}
	if got := c.StaleAuthRejects.Value(); got != 0 {
		t.Errorf("StaleAuthRejects = %d, want 0", got)
	}
}

// TestRelayRejectCounterParity pins exact-reject accounting across the
// two inbound verification paths: the batched shared-ladder path and
// the per-transaction baseline must classify an identical batch — one
// clean admission, one bad signature, one Sybil — into identical
// counter deltas, with each reject counted exactly once.
func TestRelayRejectCounterParity(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	mgrKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	devKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sybilKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}

	run := func(t *testing.T, disableBatch bool) node.Counters {
		in := newInjectedNode(t, mgrKey, clk, func(cfg *node.FullConfig) {
			cfg.DisableBatchVerify = disableBatch
		})
		g := genesisIDs(t, in.n)
		list1 := craftAuthTx(t, mgrKey,
			authz.List{Seq: 1, Devices: []string{identity.EncodePublic(devKey.Public())}},
			g[0], g[1], clk.Now())
		in.send(t, list1)

		floor := testParams().MinDifficulty
		valid := craftTx(devKey, txn.KindData, []byte("v"), g[0], g[1], clk.Now(), floor)
		badSig := craftTx(devKey, txn.KindData, []byte("b"), g[0], g[1], clk.Now(), floor)
		badSig.Signature[0] ^= 0xFF // corrupt BEFORE the encoding caches
		sybil := craftTx(sybilKey, txn.KindData, []byte("s"), g[0], g[1], clk.Now(), floor)
		in.send(t, valid, badSig, sybil)

		if !in.n.Tangle().Contains(valid.ID()) {
			t.Fatal("valid transaction rejected")
		}
		return in.n.CountersView()
	}

	batch := run(t, false)
	each := run(t, true)

	type row struct {
		name        string
		batch, each int64
		want        int64
	}
	for _, r := range []row{
		{"Accepted", batch.Accepted.Value(), each.Accepted.Value(), 2}, // list1 + valid
		{"Rejected", batch.Rejected.Value(), each.Rejected.Value(), 1}, // bad signature, once
		{"Unauthorized", batch.Unauthorized.Value(), each.Unauthorized.Value(), 0},
		{"StaleAuthRejects", batch.StaleAuthRejects.Value(), each.StaleAuthRejects.Value(), 1}, // the Sybil, once
		{"Quarantined", batch.Quarantined.Value(), each.Quarantined.Value(), 0},
	} {
		if r.batch != r.each {
			t.Errorf("%s: batch path %d != per-tx path %d", r.name, r.batch, r.each)
		}
		if r.batch != r.want {
			t.Errorf("%s = %d, want exactly %d", r.name, r.batch, r.want)
		}
	}
}

// genesisIDs returns the node's two genesis root IDs.
func genesisIDs(t *testing.T, n *node.FullNode) [2]hashutil.Hash {
	t.Helper()
	roots := n.Tangle().ByKind(txn.KindGenesis, 0)
	if len(roots) != 2 {
		t.Fatalf("%d genesis roots, want 2", len(roots))
	}
	return [2]hashutil.Hash{roots[0].ID(), roots[1].ID()}
}
