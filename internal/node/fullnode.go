// Package node implements B-IoT's node roles (paper §IV-A):
//
//   - FullNode — gateways and the manager. "Their main duty is to
//     maintain the whole blockchain network, i.e., the tangle. They
//     receive transaction requests from light nodes and broadcast in the
//     blockchain network"; gateways "only process transactions from
//     legal sensors that are authorized by the manager."
//   - LightNode — IoT devices. "They do not store blockchain
//     information ... What they can do are to verify tips, run PoW
//     consensus algorithm and send new transactions to full nodes."
//
// The package wires the substrates together: tangle + credit engine +
// authorization registry + token ledger + gossip, and implements the
// Fig-6 workflow.
package node

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/b-iot/biot/internal/authz"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/dataauth"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/ledger"
	"github.com/b-iot/biot/internal/metrics"
	"github.com/b-iot/biot/internal/quality"
	"github.com/b-iot/biot/internal/store"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// FullConfig configures a FullNode.
type FullConfig struct {
	// Key is the node's account.
	Key *identity.KeyPair
	// Role must be RoleGateway or RoleManager.
	Role identity.Role
	// ManagerPub is the pinned manager public key ("hard-coded into
	// genesis config"); it determines both the trusted authorization-
	// list issuer and the deployment's deterministic genesis. For a
	// manager node it must be Key's own public key.
	ManagerPub identity.PublicKey

	// Tangle configures the ledger; zero value selects defaults.
	Tangle tangle.Config
	// Credit configures the consensus mechanism; zero value selects the
	// paper's defaults.
	Credit core.Params
	// Policy maps credit to difficulty; nil selects the default
	// additive policy.
	Policy core.DifficultyPolicy
	// TipStrategy selects parents for light nodes; zero selects uniform.
	TipStrategy tangle.TipStrategy

	// Clock is the time source; nil selects the real clock.
	Clock clock.Clock
	// Network attaches the node to the gossip fabric; nil runs the node
	// standalone (single-gateway deployments, unit tests). In a sharded
	// deployment this is the REGION-LOCAL fabric: the gateways admitting
	// into the same data namespace.
	Network gossip.Network

	// ShardID is the tangle namespace this gateway admits light-node
	// data traffic into (see DESIGN.md §16). Zero — the default — keeps
	// the single-region deployment: data shares namespace 0 with the
	// control plane. Control-plane kinds (genesis, authorization lists,
	// key distribution) always land in namespace 0 regardless.
	ShardID uint32
	// Backbone attaches the node to the inter-gateway backbone — the
	// second tier of a sharded deployment. Reconcile pages the control
	// namespace and the credit digests of every backbone peer; nil
	// disables cross-shard reconciliation.
	Backbone gossip.Network
	// ReconcileInterval paces RunReconcileLoop; zero selects the
	// default (2s).
	ReconcileInterval time.Duration

	// RateLimit bounds per-device submissions per RateWindow — the DDoS
	// backstop behind the authorization check. Zero disables limiting.
	RateLimit  int
	RateWindow time.Duration

	// Quality, when non-nil, validates plaintext sensor readings at
	// admission (range, rate-of-change, sequence). Violations do not
	// reject the transaction — the ledger keeps the evidence — but are
	// recorded as protocol misbehaviour in the credit ledger, raising a
	// persistent offender's PoW difficulty.
	Quality *quality.Validator

	// Broadcast pipeline tuning (zero selects defaults; only consulted
	// when Network is non-nil). BroadcastQueue bounds admissions awaiting
	// fan-out — when full, Submit rejects with ErrBroadcastBacklog before
	// admitting. BroadcastPeerQueue bounds each peer's private queue (a
	// slow peer overflows by dropping; sync repairs it) and
	// BroadcastBatch caps how many transactions one datagram coalesces.
	BroadcastQueue     int
	BroadcastPeerQueue int
	BroadcastBatch     int

	// Journal group-commit tuning (zero selects the store defaults;
	// only consulted once EnablePersistence opens a journal).
	// JournalMaxBatch caps how many admitted records one fsync covers —
	// 1 restores the old per-record-fsync write path. JournalMaxDelay
	// lets the commit leader linger for a fuller batch, trading
	// admission latency for fewer fsyncs; zero flushes immediately and
	// batches form only from writers that queued during the previous
	// flush.
	JournalMaxBatch int
	JournalMaxDelay time.Duration

	// SnapshotEpoch, when positive, quantizes Compact's prune cutoff to
	// multiples of this interval, so gateways compacting at different
	// instants still cut at the same settled epoch boundary and serve
	// identical snapshot manifests. Zero keeps the raw now-keep cutoff.
	SnapshotEpoch time.Duration

	// DisableBatchVerify forces the inbound gossip path back to one
	// Ed25519 verification per transaction instead of settling each
	// batch's signatures with one shared-ladder VerifyBatch equation.
	// It exists as the measured baseline for the latency harness; there
	// is no reason to set it in a deployment.
	DisableBatchVerify bool

	// DisableAdmissionEvidence reverts relayed admissions to the old
	// live-registry authorization check (the sender is judged against
	// this node's momentary view instead of the list in force when the
	// transaction was admitted). It exists so the revocation-storm
	// regression test can reproduce the pre-fix ordering race
	// deterministically; there is no reason to set it in a deployment.
	DisableAdmissionEvidence bool

	// QuarantineCap / QuarantineTTL bound the evidence quarantine:
	// relayed transactions whose admission evidence cannot be resolved
	// yet (missing auth ancestor or list-sequence gap) park there and
	// retry when lists arrive. Zero selects the defaults (256 entries,
	// 30s).
	QuarantineCap int
	QuarantineTTL time.Duration
}

func (c *FullConfig) withDefaults() (FullConfig, error) {
	cfg := *c
	if cfg.Key == nil {
		return cfg, errors.New("full node requires a key pair")
	}
	if cfg.Role != identity.RoleGateway && cfg.Role != identity.RoleManager {
		return cfg, fmt.Errorf("full node role must be gateway or manager, got %v", cfg.Role)
	}
	if len(cfg.ManagerPub) == 0 {
		return cfg, errors.New("full node requires the manager public key")
	}
	if cfg.Role == identity.RoleManager && cfg.Key.Address() != identity.AddressOf(cfg.ManagerPub) {
		return cfg, errors.New("manager node key does not match pinned manager key")
	}
	if cfg.Tangle == (tangle.Config{}) {
		cfg.Tangle = tangle.DefaultConfig()
	}
	if cfg.Credit == (core.Params{}) {
		cfg.Credit = core.DefaultParams()
	}
	if !cfg.TipStrategy.Valid() {
		cfg.TipStrategy = tangle.StrategyUniform
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.RateWindow <= 0 {
		cfg.RateWindow = time.Second
	}
	return cfg, nil
}

// Counters exposes a full node's operational counters.
//
// The two authorization-reject counters split by edge: Unauthorized
// counts submission-edge rejects (a light node this gateway turned
// away) plus forged authorization lists on any path, while
// StaleAuthRejects counts relay-path rejects — a gossiped or synced
// transaction whose sender is a member of no list version reachable
// from its admission evidence. Under the evidence gate an honest
// deployment keeps StaleAuthRejects at zero even through revocation
// storms; a nonzero value means a genuine Sybil relay (or a peer so
// far ahead that pruning outran the evidence window).
type Counters struct {
	Accepted          *metrics.Counter
	Rejected          *metrics.Counter
	RateLimited       *metrics.Counter
	Unauthorized      *metrics.Counter
	StaleAuthRejects  *metrics.Counter
	Quarantined       *metrics.Counter
	QuarantineDrops   *metrics.Counter
	QuarantineRepairs *metrics.Counter
	AuthListProbes    *metrics.Counter
	GossipIn          *metrics.Counter
	GossipOut         *metrics.Counter
	JournalErrors     *metrics.Counter
	QualityViolations *metrics.Counter
	// Backbone reconciliation: scoped control-plane pages pulled from
	// backbone peers, and remote credit records/events folded into the
	// local ledger.
	BackboneSyncPages  *metrics.Counter
	CreditTxsMerged    *metrics.Counter
	CreditEventsMerged *metrics.Counter
}

// FullNode is a gateway or manager. Safe for concurrent use: Submit may
// be called from many goroutines at once. Admission checks run lock-free
// (the tangle, credit ledger and registry carry their own fine-grained
// locks); the two node-local mutexes below guard disjoint state and are
// never held across a substrate call that can block.
type FullNode struct {
	cfg      FullConfig
	tangle   *tangle.Tangle
	engine   *core.Engine
	registry *authz.Registry
	tokens   *ledger.Ledger
	counters Counters
	pipeline PipelineMetrics
	bcast    *broadcaster // nil when Network is nil

	// verified + verifySem are the inbound verification stage: a
	// bounded CPU pool checking gossiped transactions concurrently, and
	// the LRU of IDs whose verification already passed (gossip echoes
	// skip the repeated signature work).
	verified  *verifiedCache
	verifySem chan struct{}

	// quar parks relayed transactions whose admission evidence is not
	// resolvable yet; kickMu makes the retry loop single-flight (a kick
	// triggered from inside a kick — an auth list attaching during
	// repair — is skipped, and the outer loop's progress pass re-drains).
	quar   *quarantine
	kickMu sync.Mutex

	pendingMu sync.Mutex
	pending   map[hashutil.Hash]*txn.Transaction // transfers awaiting confirmation
	deferred  []tangle.Event                     // settlement events awaiting drainDeferred
	journal   *store.Log                         // nil unless EnablePersistence was called
	coldIdx   *store.ColdIndex                   // durable pruned-ID index; nil when memory-only

	limiterMu sync.Mutex
	limiter   map[identity.Address]*rateWindow

	// syncMu guards the per-peer sync cursors: how far into each peer's
	// attachment order this node has already paged. Scoped (per-shard)
	// cursors share the map under a "peer#shard" key.
	syncMu     sync.Mutex
	syncCursor map[string]uint64

	// lastReconcile is the unix-nano stamp of the last completed
	// backbone reconciliation round (0 = never); MemoryStats derives
	// the operator-facing reconcile lag from it.
	lastReconcile atomic.Int64
}

type rateWindow struct {
	start time.Time
	count int
}

// Submission errors surfaced to light nodes.
var (
	ErrUnauthorizedDevice = errors.New("device is not authorized by the manager")
	ErrRateLimited        = errors.New("device exceeded submission rate limit")
	ErrWrongDifficulty    = errors.New("proof of work below the node's required difficulty")
)

// NewFull constructs a full node with fresh genesis state. Gateways in
// the same deployment share state through gossip sync, not through a
// shared constructor.
func NewFull(cfg FullConfig) (*FullNode, error) {
	conf, err := cfg.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("full node config: %w", err)
	}
	creditLedger, err := core.NewLedger(conf.Credit)
	if err != nil {
		return nil, err
	}
	registry, err := authz.NewRegistry(identity.AddressOf(conf.ManagerPub))
	if err != nil {
		return nil, err
	}
	// Genesis derives deterministically from the manager public key, so
	// every full node in the deployment shares it and gossip sync works
	// from first principles.
	tg, err := tangle.New(conf.Tangle, conf.ManagerPub, conf.Clock)
	if err != nil {
		return nil, err
	}

	n := &FullNode{
		cfg:      conf,
		tangle:   tg,
		engine:   core.NewEngine(creditLedger, conf.Policy),
		registry: registry,
		tokens:   ledger.New(),
		counters: Counters{
			Accepted:           &metrics.Counter{},
			Rejected:           &metrics.Counter{},
			RateLimited:        &metrics.Counter{},
			Unauthorized:       &metrics.Counter{},
			StaleAuthRejects:   &metrics.Counter{},
			Quarantined:        &metrics.Counter{},
			QuarantineDrops:    &metrics.Counter{},
			QuarantineRepairs:  &metrics.Counter{},
			AuthListProbes:     &metrics.Counter{},
			GossipIn:           &metrics.Counter{},
			GossipOut:          &metrics.Counter{},
			JournalErrors:      &metrics.Counter{},
			QualityViolations:  &metrics.Counter{},
			BackboneSyncPages:  &metrics.Counter{},
			CreditTxsMerged:    &metrics.Counter{},
			CreditEventsMerged: &metrics.Counter{},
		},
		pipeline:   newPipelineMetrics(),
		verified:   newVerifiedCache(verifiedCacheSize),
		verifySem:  newVerifySem(),
		quar:       newQuarantine(conf.QuarantineCap, conf.QuarantineTTL),
		pending:    make(map[hashutil.Hash]*txn.Transaction),
		limiter:    make(map[identity.Address]*rateWindow),
		syncCursor: make(map[string]uint64),
	}
	tg.Observe(tangle.ObserverFunc(n.onTangleEvent))
	if conf.Network != nil {
		n.bcast = newBroadcaster(conf.Network, n.counters, n.pipeline,
			conf.BroadcastQueue, conf.BroadcastPeerQueue, conf.BroadcastBatch, conf.ShardID)
		conf.Network.SetHandler(gossip.HandlerFunc(n.handleGossip))
	}
	if conf.Backbone != nil {
		// The backbone serves the same protocol (scoped sync pages,
		// credit digests, snapshot manifests) through the same handler.
		conf.Backbone.SetHandler(gossip.HandlerFunc(n.handleGossip))
	}
	return n, nil
}

// Address returns the node's account address.
func (n *FullNode) Address() identity.Address { return n.cfg.Key.Address() }

// Key returns the node's account key pair (the manager layer signs
// authorization lists and key-distribution messages with it).
func (n *FullNode) Key() *identity.KeyPair { return n.cfg.Key }

// Role returns the node's role.
func (n *FullNode) Role() identity.Role { return n.cfg.Role }

// Tangle exposes the underlying ledger (read paths; examples and the
// RPC layer use it for queries).
func (n *FullNode) Tangle() *tangle.Tangle { return n.tangle }

// Engine exposes the credit-based consensus engine.
func (n *FullNode) Engine() *core.Engine { return n.engine }

// Registry exposes the authorization registry.
func (n *FullNode) Registry() *authz.Registry { return n.registry }

// Tokens exposes the settled token ledger.
func (n *FullNode) Tokens() *ledger.Ledger { return n.tokens }

// CountersView returns the node's operational counters.
func (n *FullNode) CountersView() Counters { return n.counters }

// Clock returns the node's time source.
func (n *FullNode) Clock() clock.Clock { return n.cfg.Clock }

// onTangleEvent routes ledger events. Events are delivered serialized
// in ledger order after the tangle lock is released (possibly on a
// concurrent submitter's goroutine), so this must stay cheap and only
// touch concurrency-safe state; heavier follow-ups (token settlement)
// are deferred and drained after the attach completes.
func (n *FullNode) onTangleEvent(ev tangle.Event) {
	switch ev.Kind {
	case tangle.EventLazyTips:
		n.engine.Ledger().RecordMalicious(ev.Node, core.EventRecord{
			Behaviour: core.BehaviourLazyTips,
			At:        ev.At,
			Evidence:  append([]hashutil.Hash{ev.Tx}, ev.Related...),
			Detail:    "approved two stale, already-approved parents",
		})
	case tangle.EventDoubleSpend:
		n.engine.Ledger().RecordMalicious(ev.Node, core.EventRecord{
			Behaviour: core.BehaviourDoubleSpend,
			At:        ev.At,
			Evidence:  append([]hashutil.Hash{ev.Tx}, ev.Related...),
			Detail:    "conflicting spend of the same (account, seq) resource",
		})
	case tangle.EventApproved:
		n.engine.Ledger().UpdateWeight(ev.Node, ev.Tx, ev.Weight)
	case tangle.EventConfirmed, tangle.EventRejected:
		n.pendingMu.Lock()
		n.deferred = append(n.deferred, ev)
		n.pendingMu.Unlock()
	}
}

// drainDeferred settles confirmed transfers and discards rejected ones.
// Called after Attach returns (outside the tangle lock).
func (n *FullNode) drainDeferred() {
	n.pendingMu.Lock()
	events := n.deferred
	n.deferred = nil
	n.pendingMu.Unlock()

	for _, ev := range events {
		if ev.Kind != tangle.EventConfirmed {
			// Rejected transfers stay tracked: conflict resolution can
			// reinstate a branch that later grows heavier, and only a
			// confirmation is final.
			continue
		}
		n.pendingMu.Lock()
		t, ok := n.pending[ev.Tx]
		if ok {
			delete(n.pending, ev.Tx)
		}
		n.pendingMu.Unlock()
		if !ok {
			continue
		}
		if t.Kind == txn.KindTransfer {
			// Settlement can legitimately fail (e.g. overdraw after an
			// earlier conflicting spend settled); the ledger stays
			// consistent either way.
			_ = n.tokens.Apply(t)
		}
	}
}

func (n *FullNode) allowRate(addr identity.Address, now time.Time) bool {
	if n.cfg.RateLimit <= 0 {
		return true
	}
	n.limiterMu.Lock()
	defer n.limiterMu.Unlock()
	w := n.limiter[addr]
	if w == nil || now.Sub(w.start) >= n.cfg.RateWindow {
		n.limiter[addr] = &rateWindow{start: now, count: 1}
		return true
	}
	if w.count >= n.cfg.RateLimit {
		return false
	}
	w.count++
	return true
}

// DifficultyFor returns the PoW difficulty currently required of addr —
// what a light node queries before mining (Fig 6 step 4/5).
func (n *FullNode) DifficultyFor(addr identity.Address) int {
	return n.engine.DifficultyFor(addr, n.cfg.Clock.Now())
}

// TipsForApproval selects two parents for a light node (Fig 6 step 4:
// "get two random tips information from gateways").
func (n *FullNode) TipsForApproval() (trunk, branch hashutil.Hash, err error) {
	return n.tangle.SelectTips(n.cfg.TipStrategy)
}

// GetTransaction returns an attached transaction by ID, for light-node
// tip validation.
func (n *FullNode) GetTransaction(id hashutil.Hash) (*txn.Transaction, error) {
	return n.tangle.Get(id)
}

// TransactionsByKind pages through attached transactions of one kind.
func (n *FullNode) TransactionsByKind(kind txn.Kind, offset int) ([]*txn.Transaction, error) {
	return n.tangle.ByKind(kind, offset), nil
}

// InfoOf returns ledger metadata for a transaction.
func (n *FullNode) InfoOf(id hashutil.Hash) (tangle.Info, error) {
	return n.tangle.InfoOf(id)
}

// Submit runs the full admission pipeline on a light-node submission:
// structural + signature verification, authorization (Sybil/DDoS
// defense), rate limiting, credit-based PoW verification, attachment,
// credit accounting, authorization-list application, and gossip
// broadcast. Safe to call from many goroutines concurrently.
//
// Broadcast is asynchronous: Submit returns once the transaction is
// attached locally and queued for fan-out; peers observe it shortly
// after (FlushBroadcast provides a barrier). When the broadcast queue
// is saturated Submit rejects with ErrBroadcastBacklog *before*
// admitting anything — the caller backs off and retries, and the local
// ledger never diverges from what was gossiped.
func (n *FullNode) Submit(ctx context.Context, t *txn.Transaction) (tangle.Info, error) {
	var release func()
	if n.bcast != nil {
		var err error
		if release, err = n.bcast.reserve(); err != nil {
			return tangle.Info{}, err
		}
	}
	info, err := n.admit(ctx, t, true)
	if err != nil {
		if release != nil {
			release()
		}
		return tangle.Info{}, err
	}
	if n.bcast != nil {
		// The reservation is consumed by the dispatcher; no release here.
		n.bcast.enqueue(t.Encode())
	}
	return info, nil
}

// FlushBroadcast blocks until every transaction accepted before the
// call has been attempted against every current peer (delivered, failed
// or dropped). It is the ordering barrier for callers that need the old
// synchronous-broadcast visibility — tests, the facade's authorization
// publish, graceful shutdown.
func (n *FullNode) FlushBroadcast(ctx context.Context) error {
	if n.bcast == nil {
		return nil
	}
	return n.bcast.flush(ctx)
}

// Pipeline exposes the submission pipeline's metrics.
func (n *FullNode) Pipeline() PipelineMetrics { return n.pipeline }

// Network returns the node's gossip attachment (nil when the node runs
// standalone). The Supervisor closes it after the node during a
// graceful stop, and before the node when simulating a crash.
func (n *FullNode) Network() gossip.Network { return n.cfg.Network }

// Backbone returns the node's inter-gateway backbone attachment (nil
// for single-tier deployments). Like Network, the Supervisor closes it
// during teardown so a rebuilt node can rejoin under the same name.
func (n *FullNode) Backbone() gossip.Network { return n.cfg.Backbone }

// TransportHealthy reports the broadcast pipeline can still fan out:
// true for standalone nodes (nothing to fail) and for networked nodes
// whose pipeline has not been closed.
func (n *FullNode) TransportHealthy() bool {
	if n.cfg.Network == nil {
		return true
	}
	return n.bcast != nil && !n.bcast.isClosed()
}

// PipelineSaturated reports the broadcast intake queue is at capacity,
// i.e. the next Submit would be rejected with ErrBroadcastBacklog. The
// readiness probe uses it to shed load before the hard limit bites.
func (n *FullNode) PipelineSaturated() bool {
	return n.bcast != nil && n.bcast.saturated()
}

// LedgerMetrics exposes the tangle's anchored tip-selection gauges
// (anchor height/count, walk lengths, fallback counts).
func (n *FullNode) LedgerMetrics() tangle.Metrics { return n.tangle.Metrics() }

// Close drains and stops the broadcast pipeline. Read paths and local
// admission keep working; subsequent Submits attach locally but are no
// longer gossiped. Safe to call more than once.
func (n *FullNode) Close() error {
	if n.bcast != nil {
		n.bcast.close()
	}
	return nil
}

// verifyIdentity checks structure, signature and authorization — the
// Sybil/DDoS gate. Lock-free with respect to node-local mutexes.
func (n *FullNode) verifyIdentity(t *txn.Transaction) error {
	if err := t.VerifyBasic(); err != nil {
		n.counters.Rejected.Inc()
		return fmt.Errorf("verify transaction: %w", err)
	}
	sender := t.Sender()
	// Authorization lists themselves must come from the manager.
	if t.Kind == txn.KindAuthorization {
		if sender != n.registry.Manager() {
			n.counters.Unauthorized.Inc()
			return fmt.Errorf("%w: authorization list from %s",
				authz.ErrNotManager, sender.Short())
		}
	} else if !n.registry.IsAuthorizedDevice(sender) && !n.registry.IsGateway(sender) {
		n.counters.Unauthorized.Inc()
		return fmt.Errorf("%w: %s", ErrUnauthorizedDevice, sender.Short())
	}
	return nil
}

// verifyDifficulty runs the credit-based PoW check: the difficulty
// demanded of this sender is derived from the shared behaviour records,
// so the gateway and an honest device agree on it.
func (n *FullNode) verifyDifficulty(t *txn.Transaction, now time.Time) error {
	required := n.engine.DifficultyFor(t.Sender(), now)
	if err := t.VerifyPoW(required); err != nil {
		n.counters.Rejected.Inc()
		return fmt.Errorf("%w: %v", ErrWrongDifficulty, err)
	}
	return nil
}

// verifyRelayDifficulty gates RELAYED admissions — gossip broadcasts
// and sync pages — on the structural PoW floor instead of this node's
// momentary credit-derived demand. The full demand is enforced exactly
// once, at the submission edge (admit), by the gateway whose credit
// view priced the work. Re-checking it on relay cannot converge in
// general: the miner's view may legitimately include approval weight
// contributed by the relayed transaction's own descendants, which no
// receiver can assemble as a prefix — a node catching up after a crash
// would demand one band more work than the transaction carries and
// wedge its sync (and every descendant) forever. The chaos soak found
// exactly that deadlock.
func (n *FullNode) verifyRelayDifficulty(t *txn.Transaction) error {
	if err := t.VerifyPoW(n.engine.Ledger().Params().MinDifficulty); err != nil {
		n.counters.Rejected.Inc()
		return fmt.Errorf("%w: %v", ErrWrongDifficulty, err)
	}
	return nil
}

// admit is the full serial pipeline for one transaction. Everything up
// to the PoW check is lock-free with respect to node-local mutexes
// (signature and difficulty verification dominate and run fully
// concurrently); the attach + credit update that follows is the short
// critical section, serialized inside the tangle and credit ledger's
// own locks. Inbound gossip batches bypass this in favour of
// admitGossipBatch, which runs the verification stage in parallel.
func (n *FullNode) admit(ctx context.Context, t *txn.Transaction, local bool) (tangle.Info, error) {
	if err := ctx.Err(); err != nil {
		return tangle.Info{}, err
	}
	now := n.cfg.Clock.Now()
	admitStart := time.Now()

	if err := n.verifyIdentity(t); err != nil {
		return tangle.Info{}, err
	}
	if local && !n.allowRate(t.Sender(), now) {
		n.counters.RateLimited.Inc()
		return tangle.Info{}, fmt.Errorf("%w: %s", ErrRateLimited, t.Sender().Short())
	}
	if err := n.verifyDifficulty(t, now); err != nil {
		return tangle.Info{}, err
	}
	n.pipeline.AdmitLatency.Observe(time.Since(admitStart))
	return n.attachVerified(t, now, true, n.cfg.ShardID)
}

// shardFor routes a transaction kind to its tangle namespace: data and
// transfer traffic goes to the hinted region shard, every control-plane
// kind (genesis, authorization lists, key distribution) to the globally
// replicated namespace 0.
func shardFor(kind txn.Kind, hint uint32) uint32 {
	switch kind {
	case txn.KindData, txn.KindTransfer:
		return hint
	default:
		return 0
	}
}

// attachVerified is the pipeline's serialized tail: it assumes the
// transaction already passed identity + difficulty verification and
// performs attachment, credit accounting, authorization application,
// quality control and settlement draining.
//
// journal selects per-record journaling: the submission edge journals
// inline (admission is only reported after the group-commit barrier
// resolves — the chaos soak's zero-admitted-loss invariant), while the
// relayed path passes false and journals its whole batch with one
// AppendBatch afterwards.
//
// shardHint is the data namespace the transaction lands in when it is
// region traffic (shardFor routes control kinds to namespace 0): the
// node's own shard at the submission edge, the batch's declared shard
// on the relay path.
func (n *FullNode) attachVerified(t *txn.Transaction, now time.Time, journal bool, shardHint uint32) (tangle.Info, error) {
	sender := t.Sender()
	attachStart := time.Now()

	// Track transfers for settlement before attaching, so the
	// confirmation event (which may fire during Attach) finds it.
	if t.Kind == txn.KindTransfer {
		n.pendingMu.Lock()
		n.pending[t.ID()] = t.Clone()
		n.pendingMu.Unlock()
	}

	// Credit accounting: the sender earns a valid-transaction record at
	// initial weight 1; approvals raise it via EventApproved. The record
	// must exist BEFORE Attach makes the transaction approvable — a
	// concurrent admission can approve it the instant Attach returns,
	// and UpdateWeight against a not-yet-recorded transaction would be
	// silently dropped.
	//
	// The record is stamped with the TRANSACTION's timestamp, not the
	// arrival time: with hyperbolic decay over ΔT, arrival stamping made
	// a node's credit view depend on when each transaction happened to
	// arrive, so a node catching up after a crash reconstructed a
	// different view than its peers built live — and a diverged view
	// means a diverged difficulty demand, which rejects peers' perfectly
	// mined transactions forever. Stamping with the embedded timestamp
	// (clamped to now so post-dating buys nothing) makes the view a
	// function of WHAT was admitted, not WHEN, so journal replay and
	// catch-up sync converge to the live nodes' view.
	recordAt := t.Timestamp
	if recordAt.After(now) {
		recordAt = now
	}
	n.engine.Ledger().RecordTransaction(sender, t.ID(), 1, recordAt)

	info, err := n.tangle.AttachShard(t, shardFor(t.Kind, shardHint))
	if err != nil {
		if !errors.Is(err, tangle.ErrDuplicate) {
			// A duplicate keeps its (idempotent) record; anything else
			// never entered the ledger.
			n.engine.Ledger().RemoveTransaction(sender, t.ID())
		}
		n.pendingMu.Lock()
		delete(n.pending, t.ID())
		n.pendingMu.Unlock()
		n.counters.Rejected.Inc()
		return tangle.Info{}, fmt.Errorf("attach: %w", err)
	}

	// Sensor data quality control (§VIII extension): plaintext readings
	// are checked for plausibility; violations are punished through the
	// credit ledger, not by rejecting the (already attached) evidence.
	n.checkQuality(t, info.ID, now)

	// Authorization lists take effect once attached. Observe rather
	// than Apply: a list older than the current view is not an error on
	// a relay path — it still records into the evidence window (the
	// whole point of retaining versions), it just does not move the
	// live view backward. Like the credit record above, the window
	// entry is stamped with the clamped EMBEDDED timestamp, so journal
	// replay and catch-up sync prune the window identically to the
	// nodes that saw the list live. A newly observed list may also be
	// exactly what a quarantined transaction was waiting for.
	if t.Kind == txn.KindAuthorization {
		if _, err := n.registry.Observe(t, recordAt); err != nil {
			// The list is on-ledger but invalid (undecodable, forged
			// issuer); ledger state is unaffected.
			n.counters.Rejected.Inc()
			return info, fmt.Errorf("observe authorization list: %w", err)
		}
		n.kickQuarantine(now)
	}

	n.counters.Accepted.Inc()
	if journal {
		n.journalAppend(t)
	}
	n.pipeline.AttachLatency.Observe(time.Since(attachStart))
	n.drainDeferred()
	return info, nil
}

// handleGossip processes inbound gossip. Transaction batches run
// through the parallel verification stage; sync requests are answered
// one bounded page at a time.
func (n *FullNode) handleGossip(from string, msg gossip.Message) (*gossip.Message, error) {
	n.counters.GossipIn.Inc()
	switch msg.Type {
	case gossip.MsgTransaction:
		// A scoped batch declares the namespace its data traffic belongs
		// to; legacy unscoped batches come from same-region peers and
		// default to this node's own shard.
		hint := n.cfg.ShardID
		if msg.Scoped {
			hint = uint32(msg.Shard)
		}
		n.admitGossipBatch(context.Background(), from, msg.TxData, true, hint)
		return &gossip.Message{}, nil
	case gossip.MsgSyncRequest:
		have := make(map[hashutil.Hash]struct{}, len(msg.Have))
		for _, id := range msg.Have {
			have[id] = struct{}{}
		}
		// One page per request: the requester's cursor (msg.Offset)
		// walks our attachment order — the whole ledger's, or one
		// namespace's when the request is scoped — so response size,
		// like request size, stays constant no matter how large the
		// ledger grows, and serving a sync holds the tangle read lock
		// for one page.
		var total int
		var page []*txn.Transaction
		shard := uint32(msg.Shard)
		if msg.Scoped {
			total = n.tangle.ShardSize(shard)
		} else {
			total = n.tangle.Size()
		}
		off := total
		if msg.Offset < uint64(total) {
			off = int(msg.Offset)
		}
		if msg.Scoped {
			page = n.tangle.ExportShardRange(shard, off, syncPageSize)
		} else {
			page = n.tangle.ExportRange(off, syncPageSize)
		}
		data := make([][]byte, 0, len(page))
		for _, t := range page {
			if _, known := have[t.ID()]; !known {
				data = append(data, t.Encode())
			}
		}
		return &gossip.Message{
			Type:   gossip.MsgSyncResponse,
			TxData: data,
			Offset: uint64(off + len(page)),
			Total:  uint64(total),
			More:   len(page) == syncPageSize,
			Shard:  msg.Shard,
			Scoped: msg.Scoped,
		}, nil
	case gossip.MsgCreditRequest:
		return n.serveCreditPage(msg)
	case gossip.MsgAuthListRequest:
		// Anti-entropy probe for the evidence window: return the
		// authorization-list transaction(s) with the requested sequence
		// (msg.Offset). Lists are retained across snapshots, so any
		// sequence this node ever admitted is servable.
		var data [][]byte
		for _, t := range n.tangle.ByKind(txn.KindAuthorization, 0) {
			list, err := authz.DecodeList(t.Payload)
			if err != nil || list.Seq != msg.Offset {
				continue
			}
			data = append(data, t.Encode())
		}
		return &gossip.Message{Type: gossip.MsgAuthListResponse, TxData: data}, nil
	case gossip.MsgSnapshotRequest:
		data, err := json.Marshal(n.SnapshotManifest())
		if err != nil {
			return nil, fmt.Errorf("encode snapshot manifest: %w", err)
		}
		return &gossip.Message{
			Type:   gossip.MsgSnapshotResponse,
			TxData: [][]byte{data},
			Total:  uint64(n.tangle.Size()),
		}, nil
	default:
		return nil, fmt.Errorf("unhandled gossip message type %v", msg.Type)
	}
}

// admitGossipBatch admits one inbound batch: decode + dedupe, parallel
// verification, serialized attach, and at most ONE sync round-trip for
// the whole batch — a batch with N orphans previously triggered up to N
// full syncFrom exchanges; now the deferred remainder retries once
// after the single sync.
//
// Authorization lists change who verifies as authorized, so they are
// segment boundaries: the batch is verified and attached in runs, with
// each authorization list admitted serially in between, preserving the
// old one-at-a-time semantics for control-plane traffic.
//
// The returned count is the number of novel, decodable transactions
// that did NOT end up attached (verification rejects, unresolved
// orphans, attach failures other than duplicates). syncFrom uses it to
// decide whether a sync page may be marked consumed: a transaction
// rejected today — typically because this node's credit view lags and
// the difficulty check disagrees — may verify cleanly once more of the
// ledger has arrived, so its page must be re-offered by a later sync.
func (n *FullNode) admitGossipBatch(ctx context.Context, from string, raw [][]byte, allowSync bool, shard uint32) (failed int) {
	now := n.cfg.Clock.Now()
	seen := make(map[hashutil.Hash]struct{}, len(raw))
	txs := make([]*txn.Transaction, 0, len(raw))
	for _, r := range raw {
		t, err := txn.Decode(r)
		if err != nil {
			// One undecodable entry must not poison a batch: the
			// remaining transactions are independent admissions.
			continue
		}
		id := t.ID()
		if _, dup := seen[id]; dup || n.tangle.Contains(id) {
			continue
		}
		seen[id] = struct{}{}
		txs = append(txs, t)
	}

	// Relayed records are journaled as ONE group-commit batch at the end
	// of the call rather than one fsync per record: a relay admission is
	// not a client-facing durability promise (a record lost to a crash
	// in the gap is repaired by the next sync), so the whole batch can
	// share a single barrier.
	var attached []*txn.Transaction
	defer func() { n.journalBatch(attached) }()

	// gate takes the authoritative evidence-at-admission verdict just
	// before attach (DESIGN.md §15): a definitive Unauthorized is a
	// Sybil and is dropped; Unresolved (the evidence scan hit a
	// list-sequence gap) parks in quarantine until the missing list
	// arrives. Both count as failed so syncFrom keeps the page dirty.
	// Returns true when the caller should proceed to attach.
	var orphans []*txn.Transaction
	gate := func(t *txn.Transaction) bool {
		verdict, missing, ok := n.relayAuthVerdict(t)
		if !ok {
			return true // parents unattached: attach will orphan it
		}
		switch verdict {
		case authz.VerdictUnauthorized:
			n.counters.StaleAuthRejects.Inc()
			failed++
			return false
		case authz.VerdictUnresolved:
			n.parkQuarantine(ctx, from, t, missing, now, shard)
			failed++
			return false
		}
		return true
	}
	attach := func(t *txn.Transaction) {
		if !gate(t) {
			return
		}
		if _, err := n.attachVerified(t, now, false, shard); err != nil {
			if errors.Is(err, tangle.ErrUnknownParent) {
				orphans = append(orphans, t)
			} else if !errors.Is(err, tangle.ErrDuplicate) {
				failed++
			}
		} else {
			attached = append(attached, t)
		}
	}
	for start := 0; start < len(txs); {
		if txs[start].Kind == txn.KindAuthorization {
			if err := n.verifyIdentity(txs[start]); err != nil {
				failed++
			} else if err := n.verifyRelayDifficulty(txs[start]); err != nil {
				failed++
			} else {
				attach(txs[start])
			}
			start++
			continue
		}
		end := start
		for end < len(txs) && txs[end].Kind != txn.KindAuthorization {
			end++
		}
		survivors := n.verifyInboundBatch(txs[start:end], now)
		failed += end - start - len(survivors)
		for _, t := range survivors {
			attach(t)
		}
		start = end
	}

	if len(orphans) == 0 || !allowSync {
		// Orphans on a no-sync path (sync pages themselves) park rather
		// than drop: the missing parent is usually later in the same
		// sync, and a kick then repairs them without waiting for the
		// dirty page to be re-offered.
		for _, t := range orphans {
			n.parkQuarantine(ctx, from, t, 0, now, shard)
		}
		n.kickQuarantine(now)
		return failed + len(orphans)
	}
	// Missing parents: pull what we lack from the sender — once for the
	// whole batch — then retry the deferred remainder.
	n.pipeline.OrphanSyncs.Inc()
	n.syncFrom(ctx, from)
	for _, t := range orphans {
		if n.tangle.Contains(t.ID()) {
			continue
		}
		if !gate(t) {
			continue
		}
		if _, err := n.attachVerified(t, now, false, shard); err != nil {
			if errors.Is(err, tangle.ErrUnknownParent) {
				// Still unresolvable after the sync round-trip: park it
				// instead of dropping — its descendants are likely right
				// behind it, and dropping is the orphan cascade behind
				// the old revocation-storm flake.
				n.parkQuarantine(ctx, from, t, 0, now, shard)
				failed++
			} else if !errors.Is(err, tangle.ErrDuplicate) {
				failed++
			}
		} else {
			attached = append(attached, t)
		}
	}
	n.kickQuarantine(now)
	return failed
}

// relayAuthVerdict takes the evidence-at-admission authorization
// verdict for one RELAYED transaction (DESIGN.md §15). The evidence is
// the highest authorization-list sequence in the transaction's past
// cone — the membership state its admitting gateway could have judged
// it against — and the sender is accepted if it is a member of ANY
// retained list version from that sequence forward (or of the current
// view). Judging against history instead of this node's momentary
// registry is what makes relay admission order-independent: a
// revocation arriving before an older, still-valid reading no longer
// rejects the reading and orphans its descendants.
//
// Returns ok=false when the verdict cannot be taken at all because a
// parent is unattached (the caller falls through to the orphan path).
// missing is the first unobserved list sequence when the verdict is
// Unresolved — the anti-entropy probe target.
func (n *FullNode) relayAuthVerdict(t *txn.Transaction) (verdict authz.Verdict, missing uint64, ok bool) {
	if t.Kind == txn.KindAuthorization || t.Kind == txn.KindGenesis {
		return authz.VerdictAuthorized, 0, true
	}
	if n.cfg.DisableAdmissionEvidence {
		// Pre-evidence behaviour: judge the sender against the live
		// registry (the ordering race the regression test pins).
		s := t.Sender()
		if n.registry.IsAuthorizedDevice(s) || n.registry.IsGateway(s) {
			return authz.VerdictAuthorized, 0, true
		}
		return authz.VerdictUnauthorized, 0, true
	}
	seq, haveParents := n.tangle.EvidenceSeq(t.Trunk, t.Branch)
	if !haveParents {
		return authz.VerdictUnresolved, 0, false
	}
	verdict, missing = n.registry.EvidenceVerdict(t.Sender(), seq)
	return verdict, missing, true
}

// parkQuarantine parks one unresolvable relayed transaction and, when
// the block is a known list-sequence gap, probes the relaying peer for
// the missing list immediately.
func (n *FullNode) parkQuarantine(ctx context.Context, from string, t *txn.Transaction, missingSeq uint64, now time.Time, shard uint32) {
	fresh, evicted := n.quar.park(t, from, missingSeq, now, shard)
	if fresh {
		n.counters.Quarantined.Inc()
	}
	if evicted > 0 {
		n.counters.QuarantineDrops.Add(int64(evicted))
	}
	if missingSeq > 0 {
		n.probeAuthList(ctx, from, missingSeq)
	}
}

// kickQuarantine retries every parked transaction — called whenever new
// evidence can have arrived (an authorization list attached, a batch
// completed). Single-flight: a nested kick (an auth list attaching
// during a repair) is skipped, and the outer loop's progress pass
// re-drains, so nothing is missed. Repairs can cascade — an attached
// entry may be the missing parent of another — hence the loop until a
// full pass makes no progress.
func (n *FullNode) kickQuarantine(now time.Time) {
	if n.quar.size() == 0 {
		return
	}
	if !n.kickMu.TryLock() {
		return
	}
	defer n.kickMu.Unlock()
	var attached []*txn.Transaction
	for {
		progress := false
		for _, e := range n.quar.drain() {
			if n.tangle.Contains(e.tx.ID()) {
				continue // repaired by another path meanwhile
			}
			if now.After(e.deadline) {
				n.counters.QuarantineDrops.Inc()
				continue
			}
			verdict, missing, ok := n.relayAuthVerdict(e.tx)
			if ok && verdict == authz.VerdictUnauthorized {
				n.counters.StaleAuthRejects.Inc()
				continue
			}
			if ok && verdict == authz.VerdictUnresolved {
				e.missingSeq = missing
				n.quar.repark(e)
				continue
			}
			if _, err := n.attachVerified(e.tx, now, false, e.shard); err != nil {
				if errors.Is(err, tangle.ErrUnknownParent) {
					n.quar.repark(e)
				} else if !errors.Is(err, tangle.ErrDuplicate) {
					n.counters.QuarantineDrops.Inc()
				}
				continue
			}
			attached = append(attached, e.tx)
			n.counters.QuarantineRepairs.Inc()
			progress = true
		}
		if !progress {
			break
		}
	}
	n.journalBatch(attached)
}

// probeAuthList asks peer for the authorization list with the given
// sequence and folds a valid reply into the evidence window. This is
// targeted anti-entropy: the normal sync lane still delivers the list
// transaction for the ledger; the probe just un-blocks evidence
// verdicts without waiting for a full sync round.
func (n *FullNode) probeAuthList(ctx context.Context, peer string, seq uint64) {
	if n.cfg.Network == nil || peer == "" || seq == 0 {
		return
	}
	n.counters.AuthListProbes.Inc()
	reply, err := n.cfg.Network.Request(ctx, peer, gossip.Message{
		Type:   gossip.MsgAuthListRequest,
		Offset: seq,
	})
	if err != nil || reply.Type != gossip.MsgAuthListResponse {
		return
	}
	now := n.cfg.Clock.Now()
	for _, raw := range reply.TxData {
		t, err := txn.Decode(raw)
		if err != nil || t.Kind != txn.KindAuthorization {
			continue
		}
		if t.VerifyBasic() != nil || t.Sender() != n.registry.Manager() {
			continue
		}
		recordAt := t.Timestamp
		if recordAt.After(now) {
			recordAt = now
		}
		_, _ = n.registry.Observe(t, recordAt)
	}
	n.kickQuarantine(now)
}

// QuarantineLen reports how many relayed transactions are currently
// parked awaiting evidence.
func (n *FullNode) QuarantineLen() int { return n.quar.size() }

const (
	// syncPageSize bounds how many transactions a single ExportRange
	// call clones under the tangle read lock while serving a sync page.
	syncPageSize = 256
	// syncHaveWindow bounds the recent-ID advertisement in a sync
	// request: instead of shipping the entire known-ID set (O(ledger)
	// per sync), the requester advertises only its newest window, which
	// prunes the common recently-gossiped overlap from responses.
	syncHaveWindow = 512
	// maxSyncPages bounds one syncFrom call (~1M transactions).
	maxSyncPages = 4096
)

// recentHave returns the newest syncHaveWindow attached IDs.
func (n *FullNode) recentHave() []hashutil.Hash {
	from := n.tangle.Size() - syncHaveWindow
	if from < 0 {
		from = 0
	}
	return n.tangle.OrderedIDs(from, syncHaveWindow)
}

func (n *FullNode) cursorFor(peer string) uint64 {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	return n.syncCursor[peer]
}

func (n *FullNode) setCursor(peer string, cursor uint64) {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	n.syncCursor[peer] = cursor
}

// syncFrom pulls missing transactions from one peer and admits them in
// order. The exchange is paged: each request carries this node's cursor
// into the peer's attachment order plus a bounded recent-ID window, and
// each response returns one page — both directions stay constant-size
// as the DAG grows. The cursor persists across calls, so a steady-state
// sync only ever pages the peer's new tail.
func (n *FullNode) syncFrom(ctx context.Context, peer string) {
	if n.cfg.Network == nil {
		return
	}
	cursor := n.cursorFor(peer)
	clean := true
	for page := 0; page < maxSyncPages; page++ {
		if ctx.Err() != nil {
			return
		}
		reply, err := n.cfg.Network.Request(ctx, peer, gossip.Message{
			Type:   gossip.MsgSyncRequest,
			Have:   n.recentHave(),
			Offset: cursor,
		})
		if err != nil || reply.Type != gossip.MsgSyncResponse {
			return
		}
		if reply.Total < cursor {
			// The peer's ledger shrank past our cursor (restart or
			// snapshot compaction): rewind and re-page.
			cursor = 0
			clean = true
			n.setCursor(peer, 0)
			continue
		}
		n.pipeline.SyncPages.Inc()
		if n.admitGossipBatch(ctx, peer, reply.TxData, false, n.cfg.ShardID) > 0 {
			// The page had admissions we could not complete — usually a
			// difficulty check against a still-stale credit view, or an
			// orphan whose parent lives on another peer. The in-call
			// cursor keeps walking so the rest of this sync proceeds,
			// but the persisted cursor stays at the first dirty page:
			// the next syncFrom re-offers it, restoring the self-healing
			// property of the old full-diff exchange at paged cost.
			clean = false
		}
		if reply.Offset <= cursor {
			// No forward progress: a confused peer must not spin us.
			return
		}
		cursor = reply.Offset
		if clean {
			n.setCursor(peer, cursor)
		}
		if !reply.More {
			return
		}
	}
}

// SyncAll requests missing history from every peer — used by a gateway
// joining an existing deployment.
func (n *FullNode) SyncAll(ctx context.Context) {
	if n.cfg.Network == nil {
		return
	}
	for _, peer := range n.cfg.Network.Peers() {
		n.syncFrom(ctx, peer)
	}
}

// checkQuality runs the configured validator over a plaintext data
// payload and records any violations against the sender.
func (n *FullNode) checkQuality(t *txn.Transaction, id hashutil.Hash, now time.Time) {
	if n.cfg.Quality == nil || t.Kind != txn.KindData {
		return
	}
	env, err := dataauth.Parse(t.Payload)
	if err != nil || env.Sensitive {
		return // opaque to the gateway: the key holder audits it
	}
	violations := n.cfg.Quality.Check(t.Sender(), env.Body)
	for _, v := range violations {
		n.counters.QualityViolations.Inc()
		n.engine.Ledger().RecordMalicious(t.Sender(), core.EventRecord{
			Behaviour: core.BehaviourProtocol,
			At:        now,
			Evidence:  []hashutil.Hash{id},
			Detail:    v.Error(),
		})
	}
}
