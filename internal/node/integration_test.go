package node_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/dataauth"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/tangle"
)

// testParams returns credit params with a low initial difficulty so
// tests spend microseconds on PoW.
func testParams() core.Params {
	p := core.DefaultParams()
	p.InitialDifficulty = 4
	p.MinDifficulty = 1
	p.MaxDifficulty = 20
	return p
}

type deployment struct {
	managerKey *identity.KeyPair
	mgr        *node.Manager
	full       *node.FullNode
}

func newTestDeployment(t *testing.T) deployment {
	t.Helper()
	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatalf("generate manager key: %v", err)
	}
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     testParams(),
	})
	if err != nil {
		t.Fatalf("new full node: %v", err)
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		t.Fatalf("new manager: %v", err)
	}
	return deployment{managerKey: managerKey, mgr: mgr, full: full}
}

func newTestDevice(t *testing.T, gw node.Gateway) *node.LightNode {
	t.Helper()
	deviceKey, err := identity.Generate()
	if err != nil {
		t.Fatalf("generate device key: %v", err)
	}
	device, err := node.NewLight(node.LightConfig{Key: deviceKey, Gateway: gw})
	if err != nil {
		t.Fatalf("new light node: %v", err)
	}
	return device
}

// driveKeyDistribution pumps both protocol sides until the device holds
// its data key. The manager must have already called
// StartKeyDistribution for the device.
func driveKeyDistribution(t *testing.T, mgr *node.Manager, device *node.LightNode) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	deviceDone := make(chan error, 1)
	go func() {
		deviceDone <- device.RunKeyDistribution(ctx, mgr.Node().Key().Public(), time.Millisecond)
	}()
	for {
		select {
		case err := <-deviceDone:
			if err != nil {
				t.Fatalf("device key distribution: %v", err)
			}
			return
		default:
			if _, err := mgr.PumpKeyDistribution(ctx); err != nil {
				t.Fatalf("pump: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestEndToEndAuthorizeAndPostReading(t *testing.T) {
	dep := newTestDeployment(t)
	ctx := context.Background()
	device := newTestDevice(t, dep.full)

	// Unauthorized device is rejected: the Sybil/DDoS gate.
	if _, err := device.PostReading(ctx, []byte("temp=21.5")); err == nil {
		t.Fatal("unauthorized device was accepted")
	}
	if got := dep.full.CountersView().Unauthorized.Value(); got == 0 {
		t.Error("unauthorized counter not incremented")
	}

	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatalf("publish authorization: %v", err)
	}

	res, err := device.PostReading(ctx, []byte("temp=21.5"))
	if err != nil {
		t.Fatalf("post reading: %v", err)
	}
	if res.Info.Status != tangle.StatusPending {
		t.Errorf("reading status = %v, want pending", res.Info.Status)
	}

	// The reading is retrievable and plaintext (no data key installed).
	stored, err := dep.full.GetTransaction(res.Info.ID)
	if err != nil {
		t.Fatalf("get transaction: %v", err)
	}
	body, err := dataauth.Open(stored.Payload, nil)
	if err != nil {
		t.Fatalf("open payload: %v", err)
	}
	if string(body) != "temp=21.5" {
		t.Errorf("payload = %q, want %q", body, "temp=21.5")
	}
}

func TestEndToEndKeyDistributionAndEncryptedReading(t *testing.T) {
	dep := newTestDeployment(t)
	ctx := context.Background()
	device := newTestDevice(t, dep.full)

	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatalf("publish authorization: %v", err)
	}
	if _, err := dep.mgr.StartKeyDistribution(ctx, device.Address()); err != nil {
		t.Fatalf("start key distribution: %v", err)
	}

	// Drive both sides: device poll loop in the background, manager
	// pump in the foreground.
	kdCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	deviceDone := make(chan error, 1)
	go func() {
		deviceDone <- device.RunKeyDistribution(kdCtx, dep.managerKey.Public(), time.Millisecond)
	}()

	completed := 0
	deadline := time.Now().Add(10 * time.Second)
	for completed == 0 && time.Now().Before(deadline) {
		n, err := dep.mgr.PumpKeyDistribution(ctx)
		if err != nil {
			t.Fatalf("pump key distribution: %v", err)
		}
		completed += n
		time.Sleep(time.Millisecond)
	}
	if completed != 1 {
		t.Fatalf("manager completed %d sessions, want 1", completed)
	}
	if err := <-deviceDone; err != nil {
		t.Fatalf("device key distribution: %v", err)
	}
	if !device.HasDataKey() {
		t.Fatal("device has no data key after distribution")
	}

	// Sensitive reading round-trip: encrypted on ledger, decryptable
	// only with the issued key.
	secret := []byte("vibration=0.731;serial=XK-42")
	res, err := device.PostReading(ctx, secret)
	if err != nil {
		t.Fatalf("post encrypted reading: %v", err)
	}
	stored, err := dep.full.GetTransaction(res.Info.ID)
	if err != nil {
		t.Fatalf("get transaction: %v", err)
	}
	env, err := dataauth.Parse(stored.Payload)
	if err != nil {
		t.Fatalf("parse envelope: %v", err)
	}
	if !env.Sensitive {
		t.Fatal("reading not marked sensitive")
	}
	if _, err := dataauth.Open(stored.Payload, nil); err == nil {
		t.Fatal("sensitive payload opened without key")
	}
	key, ok := dep.mgr.IssuedKey(device.Address())
	if !ok {
		t.Fatal("manager has no issued key")
	}
	body, err := dataauth.Open(stored.Payload, &key)
	if err != nil {
		t.Fatalf("open with issued key: %v", err)
	}
	if string(body) != string(secret) {
		t.Errorf("decrypted = %q, want %q", body, secret)
	}
}

func TestKeyRotation(t *testing.T) {
	dep := newTestDeployment(t)
	ctx := context.Background()
	device := newTestDevice(t, dep.full)
	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}

	// Rotation before any issuance is refused.
	if _, err := dep.mgr.RotateKey(ctx, device.Address()); !errors.Is(err, node.ErrNoSession) {
		t.Errorf("rotate without key: %v", err)
	}

	if _, err := dep.mgr.StartKeyDistribution(ctx, device.Address()); err != nil {
		t.Fatal(err)
	}
	driveKeyDistribution(t, dep.mgr, device)
	oldKey, ok := dep.mgr.IssuedKey(device.Address())
	if !ok {
		t.Fatal("no issued key")
	}

	// Rotate: the old key is revoked immediately, a new exchange runs.
	if _, err := dep.mgr.RotateKey(ctx, device.Address()); err != nil {
		t.Fatal(err)
	}
	if _, ok := dep.mgr.IssuedKey(device.Address()); ok {
		t.Error("old key still issued mid-rotation")
	}
	device2, err := node.NewLight(node.LightConfig{Key: device.Key(), Gateway: dep.full})
	if err != nil {
		t.Fatal(err)
	}
	driveKeyDistribution(t, dep.mgr, device2)
	newKey, ok := dep.mgr.IssuedKey(device.Address())
	if !ok {
		t.Fatal("no key after rotation")
	}
	if newKey == oldKey {
		t.Error("rotation produced the same key")
	}

	// Data encrypted under the new key is unreadable with the old one.
	res, err := device2.PostReading(ctx, []byte("post-rotation"))
	if err != nil {
		t.Fatal(err)
	}
	stored, err := dep.full.GetTransaction(res.Info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dataauth.Open(stored.Payload, &oldKey); err == nil {
		t.Error("old key decrypted post-rotation data")
	}
	if body, err := dataauth.Open(stored.Payload, &newKey); err != nil || string(body) != "post-rotation" {
		t.Errorf("new key failed: %q, %v", body, err)
	}
}

func TestShareKeyCrossDevice(t *testing.T) {
	dep := newTestDeployment(t)
	ctx := context.Background()
	owner := newTestDevice(t, dep.full)
	reader := newTestDevice(t, dep.full)
	dep.mgr.AuthorizeDevice(owner.Key().Public(), owner.Key().BoxPublic())
	dep.mgr.AuthorizeDevice(reader.Key().Public(), reader.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}

	// Sharing before issuance is refused.
	if _, err := dep.mgr.ShareKey(ctx, owner.Address(), reader.Address()); !errors.Is(err, node.ErrNoSession) {
		t.Errorf("share without key: %v", err)
	}

	if _, err := dep.mgr.StartKeyDistribution(ctx, owner.Address()); err != nil {
		t.Fatal(err)
	}
	driveKeyDistribution(t, dep.mgr, owner)

	// Owner posts encrypted data.
	res, err := owner.PostReading(ctx, []byte("shared config"))
	if err != nil {
		t.Fatal(err)
	}

	// The manager shares the group key with the reader via Fig 4.
	if _, err := dep.mgr.ShareKey(ctx, owner.Address(), reader.Address()); err != nil {
		t.Fatal(err)
	}
	driveKeyDistribution(t, dep.mgr, reader)
	if !reader.HasDataKey() {
		t.Fatal("reader has no key after sharing")
	}

	// The reader decrypts the owner's data with its received key — we
	// verify via the manager's issued copy, which must match.
	ownerKey, _ := dep.mgr.IssuedKey(owner.Address())
	stored, err := dep.full.GetTransaction(res.Info.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, err := dataauth.Open(stored.Payload, &ownerKey)
	if err != nil || string(body) != "shared config" {
		t.Errorf("shared decrypt: %q, %v", body, err)
	}
}
