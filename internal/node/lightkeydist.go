package node

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/keydist"
	"github.com/b-iot/biot/internal/txn"
)

// Device-side key distribution: the light node polls its gateway for
// KindKeyDist transactions addressed to it, answers each M1 with an M2,
// and completes on the matching M3 (paper Fig 4). The distributed key
// is installed as the device's data key, after which PostReading
// encrypts automatically.
//
// The device tracks one protocol session per envelope session ID, so a
// fresh distribution (or a key rotation) started while stale M1s are
// still on the ledger converges on whichever exchange the manager
// actually completes.

// ErrKeyDistTimeout reports that the exchange did not complete within
// the polling budget.
var ErrKeyDistTimeout = errors.New("key distribution did not complete")

// keyDistState tracks the device's in-flight exchanges.
type keyDistState struct {
	sessions map[string]*keydist.DeviceSession
	opts     []keydist.Option
	offset   int
}

// RunKeyDistribution participates in the Fig-4 protocol as the device,
// polling the gateway every pollEvery until an exchange completes or
// ctx is done. managerPub is the pinned manager signing key the device
// trusts. On success the symmetric key is installed as the data key.
func (l *LightNode) RunKeyDistribution(ctx context.Context, managerPub identity.PublicKey, pollEvery time.Duration, opts ...keydist.Option) error {
	if pollEvery <= 0 {
		pollEvery = 50 * time.Millisecond
	}
	opts = append([]keydist.Option{keydist.WithClock(l.clk)}, opts...)
	state := &keyDistState{
		sessions: make(map[string]*keydist.DeviceSession),
		opts:     opts,
	}
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %v", ErrKeyDistTimeout, err)
		}
		done, err := l.stepKeyDistribution(ctx, managerPub, state)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w: %v", ErrKeyDistTimeout, ctx.Err())
		case <-time.After(pollEvery):
		}
	}
}

// stepKeyDistribution performs one poll: consume new key-dist messages,
// react to those addressed to this device, and report completion.
func (l *LightNode) stepKeyDistribution(ctx context.Context, managerPub identity.PublicKey, state *keyDistState) (bool, error) {
	msgs, err := l.cfg.Gateway.TransactionsByKind(txn.KindKeyDist, state.offset)
	if err != nil {
		return false, fmt.Errorf("poll key distribution: %w", err)
	}
	for _, t := range msgs {
		state.offset++
		env, err := keydist.DecodeEnvelope(t.Payload)
		if err != nil || !env.AddressedTo(l.Address()) {
			continue
		}
		switch env.Stage {
		case keydist.StageM1:
			if _, seen := state.sessions[env.Session]; seen {
				continue // re-delivered M1
			}
			session := keydist.NewDeviceSession(l.cfg.Key, managerPub, state.opts...)
			m2, err := session.HandleM1(env.Body)
			if err != nil {
				// Tampered, stale, or forged M1: ignore it. The manager
				// retries with a fresh session if it was genuine.
				continue
			}
			state.sessions[env.Session] = session
			payload, err := keydist.EncodeEnvelope(keydist.Envelope{
				Session: env.Session,
				From:    l.Address(),
				To:      env.From,
				Stage:   keydist.StageM2,
				Body:    m2,
			})
			if err != nil {
				return false, err
			}
			if _, err := l.SubmitRaw(ctx, txn.KindKeyDist, payload); err != nil {
				return false, fmt.Errorf("post M2: %w", err)
			}
		case keydist.StageM3:
			session, ok := state.sessions[env.Session]
			if !ok || session.Done() {
				continue
			}
			if err := session.HandleM3(env.Body); err != nil {
				continue
			}
			secret, err := session.Secret()
			if err != nil {
				return false, err
			}
			l.SetDataKey(secret, 0)
			return true, nil
		}
	}
	return false, nil
}
