package node

import (
	"context"
	"errors"
	"fmt"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/dataauth"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/metrics"
	"github.com/b-iot/biot/internal/pow"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// Gateway is the surface a light node needs from a full node: tip
// issuance, difficulty lookup, transaction retrieval and submission.
// It is implemented in-process by *FullNode and over HTTP by rpc.Client,
// so devices run identically against either.
type Gateway interface {
	TipsForApproval() (trunk, branch hashutil.Hash, err error)
	DifficultyFor(addr identity.Address) int
	GetTransaction(id hashutil.Hash) (*txn.Transaction, error)
	Submit(ctx context.Context, t *txn.Transaction) (tangle.Info, error)
	// TransactionsByKind pages through attached transactions of one
	// kind; devices poll it to receive key-distribution messages.
	TransactionsByKind(kind txn.Kind, offset int) ([]*txn.Transaction, error)
}

var _ Gateway = (*FullNode)(nil)

// LightConfig configures a LightNode.
type LightConfig struct {
	// Key is the device's account.
	Key *identity.KeyPair
	// Gateway is the full node the device talks to ("find closest
	// gateway enabled RPC port", Fig 6).
	Gateway Gateway
	// Worker runs proof-of-work; its CostFactor emulates the device's
	// hardware class. Nil selects a plain worker.
	Worker *pow.Worker
	// Clock is the device's time source; nil selects the real clock.
	Clock clock.Clock
	// MaxSubmitRetries bounds resubmission when difficulty shifted
	// between query and submission (e.g. a malicious event landed).
	// Zero selects 3.
	MaxSubmitRetries int
}

// LightNode is an IoT device: it validates tips, runs PoW, and submits
// transactions through a gateway. It keeps no ledger state beyond its
// own spend sequence and (when issued) its symmetric data key.
type LightNode struct {
	cfg     LightConfig
	worker  *pow.Worker
	clk     clock.Clock
	retries int

	// dataKey is the distributed SK_S; nil until key distribution
	// completes (only sensitive-data devices receive one).
	dataKey *dataauth.Key
	scheme  dataauth.Scheme

	// nextSeq is the device's local spend sequence counter.
	nextSeq uint64

	// PowTime records PoW latency per transaction — the quantity the
	// paper's Fig 9 reports.
	PowTime *metrics.Histogram
}

// Light-node errors.
var (
	ErrNoGateway  = errors.New("light node has no gateway")
	ErrTipInvalid = errors.New("tip failed validation")
	ErrNoKey      = errors.New("light node requires a key pair")
)

// NewLight constructs a light node.
func NewLight(cfg LightConfig) (*LightNode, error) {
	if cfg.Key == nil {
		return nil, ErrNoKey
	}
	if cfg.Gateway == nil {
		return nil, ErrNoGateway
	}
	worker := cfg.Worker
	if worker == nil {
		worker = &pow.Worker{}
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real()
	}
	retries := cfg.MaxSubmitRetries
	if retries <= 0 {
		retries = 3
	}
	return &LightNode{
		cfg:     cfg,
		worker:  worker,
		clk:     clk,
		retries: retries,
		scheme:  dataauth.SchemeGCM,
		PowTime: &metrics.Histogram{},
	}, nil
}

// Key returns the device's account.
func (l *LightNode) Key() *identity.KeyPair { return l.cfg.Key }

// Gateway returns the full node this device talks to.
func (l *LightNode) Gateway() Gateway { return l.cfg.Gateway }

// Address returns the device's account address.
func (l *LightNode) Address() identity.Address { return l.cfg.Key.Address() }

// SetDataKey installs the symmetric key obtained through key
// distribution; subsequent sensitive readings are encrypted with it.
func (l *LightNode) SetDataKey(k dataauth.Key, scheme dataauth.Scheme) {
	key := k
	l.dataKey = &key
	if scheme.Valid() {
		l.scheme = scheme
	}
}

// HasDataKey reports whether a symmetric key has been installed.
func (l *LightNode) HasDataKey() bool { return l.dataKey != nil }

// validateTip implements Fig 6 step 5's "validate these two tips": the
// device fetches each tip and checks its structure and signature before
// bundling work on top of it.
func (l *LightNode) validateTip(id hashutil.Hash) (*txn.Transaction, error) {
	t, err := l.cfg.Gateway.GetTransaction(id)
	if err != nil {
		return nil, fmt.Errorf("fetch tip %s: %w", id.Short(), err)
	}
	if t.Kind == txn.KindGenesis {
		return t, nil // genesis is pinned, not signature-checked
	}
	if err := t.VerifyBasic(); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrTipInvalid, id.Short(), err)
	}
	return t, nil
}

// SubmitResult reports a completed submission.
type SubmitResult struct {
	Info       tangle.Info
	Difficulty int
	Pow        pow.Result
}

// submit builds, signs, mines and submits one transaction of the given
// kind: the Fig-6 steps 4-5 loop. On difficulty or tip races it refreshes
// and retries up to MaxSubmitRetries times.
func (l *LightNode) submit(ctx context.Context, kind txn.Kind, payload []byte) (SubmitResult, error) {
	var lastErr error
	for attempt := 0; attempt < l.retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return SubmitResult{}, err
		}
		trunk, branch, err := l.cfg.Gateway.TipsForApproval()
		if err != nil {
			return SubmitResult{}, fmt.Errorf("get tips: %w", err)
		}
		if _, err := l.validateTip(trunk); err != nil {
			lastErr = err
			continue
		}
		if branch != trunk {
			if _, err := l.validateTip(branch); err != nil {
				lastErr = err
				continue
			}
		}

		t := &txn.Transaction{
			Trunk:     trunk,
			Branch:    branch,
			Timestamp: l.clk.Now(),
			Kind:      kind,
			Payload:   payload,
		}
		t.Sign(l.cfg.Key)

		difficulty := l.cfg.Gateway.DifficultyFor(l.Address())
		var res pow.Result
		if l.worker.Parallelism > 1 {
			// Multi-core device classes opt in via Worker.Parallelism.
			res, err = l.worker.AttachParallel(ctx, t, difficulty)
		} else {
			res, err = l.worker.Attach(ctx, t, difficulty)
		}
		if err != nil {
			return SubmitResult{}, fmt.Errorf("proof of work: %w", err)
		}
		l.PowTime.Observe(res.Elapsed)

		info, err := l.cfg.Gateway.Submit(ctx, t)
		if err != nil {
			lastErr = err
			if errors.Is(err, ErrWrongDifficulty) || errors.Is(err, tangle.ErrUnknownParent) {
				continue // difficulty shifted or tips re-orged: retry fresh
			}
			if errors.Is(err, ErrBroadcastBacklog) {
				// The gateway's fan-out queue is saturated; re-mining the
				// proof of work is the device's natural backoff.
				continue
			}
			return SubmitResult{}, err
		}
		return SubmitResult{Info: info, Difficulty: difficulty, Pow: res}, nil
	}
	return SubmitResult{}, fmt.Errorf("submission retries exhausted: %w", lastErr)
}

// PostReading publishes a sensor reading (Fig 6 steps 4-5). When the
// device holds a data key the reading is encrypted ("IoT device 2 will
// encrypt data by using symmetric secret key before posting"); otherwise
// it is published in clear.
func (l *LightNode) PostReading(ctx context.Context, reading []byte) (SubmitResult, error) {
	payload, err := dataauth.Seal(reading, l.dataKey, l.scheme)
	if err != nil {
		return SubmitResult{}, fmt.Errorf("seal reading: %w", err)
	}
	return l.submit(ctx, txn.KindData, payload)
}

// Transfer moves tokens to another account, consuming the device's next
// spend sequence.
func (l *LightNode) Transfer(ctx context.Context, to identity.Address, amount uint64) (SubmitResult, error) {
	seq := l.nextSeq
	res, err := l.submit(ctx, txn.KindTransfer, txn.EncodeTransfer(txn.Transfer{
		To:     to,
		Amount: amount,
		Seq:    seq,
	}))
	if err != nil {
		return SubmitResult{}, err
	}
	l.nextSeq = seq + 1
	return res, nil
}

// SubmitRaw submits a pre-built payload of the given kind — used by the
// manager tooling (authorization lists, key-distribution messages) and
// the attack injectors.
func (l *LightNode) SubmitRaw(ctx context.Context, kind txn.Kind, payload []byte) (SubmitResult, error) {
	return l.submit(ctx, kind, payload)
}
