package node

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/b-iot/biot/internal/authz"
	"github.com/b-iot/biot/internal/dataauth"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/keydist"
	"github.com/b-iot/biot/internal/txn"
)

// Manager is the orchestration layer of the specific full node that
// "is responsible for managing IoT devices in a smart factory": it
// publishes authorization lists (Eqn 1) and drives the manager side of
// the Fig-4 key distribution protocol over the tangle.
type Manager struct {
	full   *FullNode
	client *LightNode

	mu       sync.Mutex
	builder  *authz.Builder
	boxKeys  map[identity.Address][]byte
	issued   *dataauth.KeyStore
	sessions map[string]*managerKeySession
	kdOffset int
}

type managerKeySession struct {
	session *keydist.ManagerSession
	device  identity.Address
}

// Manager errors.
var (
	ErrNotManagerNode = errors.New("full node is not a manager")
	ErrUnknownDevice  = errors.New("device not registered with the manager")
	ErrNoSession      = errors.New("no key distribution session for device")
)

// NewManager wraps a manager-role full node with management tooling.
func NewManager(full *FullNode) (*Manager, error) {
	if full.Role() != identity.RoleManager {
		return nil, ErrNotManagerNode
	}
	client, err := NewLight(LightConfig{
		Key:     full.cfg.Key,
		Gateway: full,
		Clock:   full.cfg.Clock,
	})
	if err != nil {
		return nil, fmt.Errorf("manager submission client: %w", err)
	}
	builder := authz.NewBuilder()
	// Resume the list sequence past whatever the node replayed: the
	// manager's earlier lists survive restarts (and snapshots — they are
	// retained kinds), and a fresh builder colliding with its own
	// applied sequence would deadlock the control plane.
	builder.SeedSeq(full.Registry().Seq())
	return &Manager{
		full:     full,
		client:   client,
		builder:  builder,
		boxKeys:  make(map[identity.Address][]byte),
		issued:   dataauth.NewKeyStore(),
		sessions: make(map[string]*managerKeySession),
	}, nil
}

// Node returns the underlying full node.
func (m *Manager) Node() *FullNode { return m.full }

// Address returns the manager's account address.
func (m *Manager) Address() identity.Address { return m.full.Address() }

// RegisterGateway records a gateway key for the next authorization list
// (Fig 6 step 1: "initialize gateways ... records gateways identifiers
// in blockchain").
func (m *Manager) RegisterGateway(pub identity.PublicKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.builder.RegisterGateway(pub)
}

// AuthorizeDevice stages a device for the next authorization list. The
// device presents both its signing key and its encryption (box) key at
// provisioning; the box key is what M1 of key distribution seals to.
func (m *Manager) AuthorizeDevice(signPub identity.PublicKey, boxPub []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.builder.AuthorizeDevice(signPub)
	if len(boxPub) > 0 {
		m.boxKeys[identity.AddressOf(signPub)] = append([]byte(nil), boxPub...)
	}
}

// DeauthorizeDevice removes a device from the next authorization list.
func (m *Manager) DeauthorizeDevice(signPub identity.PublicKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.builder.DeauthorizeDevice(signPub)
	delete(m.boxKeys, identity.AddressOf(signPub))
}

// PublishAuthorization posts the staged authorization list to the
// ledger as a manager-signed transaction (Eqn 1). Gateways pick it up
// when the transaction is attached.
func (m *Manager) PublishAuthorization(ctx context.Context) (SubmitResult, error) {
	m.mu.Lock()
	list := m.builder.Next()
	m.mu.Unlock()
	payload, err := authz.EncodeList(list)
	if err != nil {
		return SubmitResult{}, err
	}
	res, err := m.client.SubmitRaw(ctx, txn.KindAuthorization, payload)
	if err != nil {
		return SubmitResult{}, fmt.Errorf("publish authorization list: %w", err)
	}
	// Authorization is control-plane: gateways must see the new list
	// before the next device submission, so wait out the async fan-out.
	if err := m.full.FlushBroadcast(ctx); err != nil {
		return res, fmt.Errorf("publish authorization list: %w", err)
	}
	return res, nil
}

// StartKeyDistribution opens a Fig-4 session with the device and posts
// M1 to the ledger. The caller pumps the exchange with
// PumpKeyDistribution until IssuedKey reports completion.
func (m *Manager) StartKeyDistribution(ctx context.Context, device identity.Address, opts ...keydist.Option) (string, error) {
	m.mu.Lock()
	boxPub, okBox := m.boxKeys[device]
	m.mu.Unlock()
	if !okBox {
		return "", fmt.Errorf("%w: %s (no box key)", ErrUnknownDevice, device.Short())
	}
	devicePub, ok := m.full.Registry().DeviceKey(device)
	if !ok {
		return "", fmt.Errorf("%w: %s (not in applied authorization list)", ErrUnknownDevice, device.Short())
	}

	opts = append([]keydist.Option{keydist.WithClock(m.full.cfg.Clock)}, opts...)
	session, err := keydist.NewManagerSession(m.full.cfg.Key, devicePub, opts...)
	if err != nil {
		return "", err
	}
	m1, err := session.M1(boxPub)
	if err != nil {
		return "", err
	}
	sid, err := newSessionID(rand.Reader)
	if err != nil {
		return "", err
	}
	payload, err := keydist.EncodeEnvelope(keydist.Envelope{
		Session: sid,
		From:    m.Address(),
		To:      device,
		Stage:   keydist.StageM1,
		Body:    m1,
	})
	if err != nil {
		return "", err
	}
	if _, err := m.client.SubmitRaw(ctx, txn.KindKeyDist, payload); err != nil {
		return "", fmt.Errorf("post M1: %w", err)
	}
	m.mu.Lock()
	m.sessions[sid] = &managerKeySession{session: session, device: device}
	m.mu.Unlock()
	return sid, nil
}

// PumpKeyDistribution consumes new key-distribution messages addressed
// to the manager (device M2 replies), answers each with M3, and records
// completed distributions. It returns the number of sessions completed
// in this pass.
func (m *Manager) PumpKeyDistribution(ctx context.Context) (int, error) {
	m.mu.Lock()
	offset := m.kdOffset
	m.mu.Unlock()

	msgs := m.full.Tangle().ByKind(txn.KindKeyDist, offset)
	completed := 0
	for _, t := range msgs {
		offset++
		env, err := keydist.DecodeEnvelope(t.Payload)
		if err != nil || !env.AddressedTo(m.Address()) || env.Stage != keydist.StageM2 {
			continue
		}
		m.mu.Lock()
		ks := m.sessions[env.Session]
		m.mu.Unlock()
		if ks == nil || ks.session.Done() {
			continue
		}
		// The device signed M2; the envelope's From must match.
		if env.From != ks.device {
			continue
		}
		m3, err := ks.session.HandleM2(env.Body)
		if err != nil {
			// Tampered or replayed M2: drop it; the device can retry.
			continue
		}
		payload, err := keydist.EncodeEnvelope(keydist.Envelope{
			Session: env.Session,
			From:    m.Address(),
			To:      ks.device,
			Stage:   keydist.StageM3,
			Body:    m3,
		})
		if err != nil {
			continue
		}
		if _, err := m.client.SubmitRaw(ctx, txn.KindKeyDist, payload); err != nil {
			return completed, fmt.Errorf("post M3: %w", err)
		}
		m.issued.Put(ks.device, ks.session.Secret())
		completed++
	}

	m.mu.Lock()
	if offset > m.kdOffset {
		m.kdOffset = offset
	}
	m.mu.Unlock()
	return completed, nil
}

// IssuedKey returns the symmetric key the manager distributed to device,
// once the exchange completed.
func (m *Manager) IssuedKey(device identity.Address) (dataauth.Key, bool) {
	return m.issued.Get(device)
}

// RotateKey revokes the device's issued key and starts a fresh Fig-4
// distribution ("it is flexible to update symmetric keys if needed",
// §IV-C). Until the new exchange completes, IssuedKey reports no key
// for the device — readers must not trust the old one for new data.
// Drive the exchange to completion with PumpKeyDistribution as usual.
func (m *Manager) RotateKey(ctx context.Context, device identity.Address, opts ...keydist.Option) (string, error) {
	if _, ok := m.issued.Get(device); !ok {
		return "", fmt.Errorf("%w: %s (no issued key to rotate)", ErrNoSession, device.Short())
	}
	m.issued.Delete(device)
	sid, err := m.StartKeyDistribution(ctx, device, opts...)
	if err != nil {
		return "", fmt.Errorf("rotate key: %w", err)
	}
	return sid, nil
}

// ShareKey re-issues the symmetric key already distributed to owner to
// another authorized account — the §IV-A4 cross-factory sharing flow:
// the recipient receives the group key through its own Fig-4 exchange
// instead of any out-of-band channel.
func (m *Manager) ShareKey(ctx context.Context, owner, recipient identity.Address, opts ...keydist.Option) (string, error) {
	secret, ok := m.issued.Get(owner)
	if !ok {
		return "", fmt.Errorf("%w: %s (no issued key to share)", ErrNoSession, owner.Short())
	}
	m.mu.Lock()
	boxPub, okBox := m.boxKeys[recipient]
	m.mu.Unlock()
	if !okBox {
		return "", fmt.Errorf("%w: %s (no box key)", ErrUnknownDevice, recipient.Short())
	}
	recipientPub, ok := m.full.Registry().DeviceKey(recipient)
	if !ok {
		return "", fmt.Errorf("%w: %s (not in applied authorization list)", ErrUnknownDevice, recipient.Short())
	}

	opts = append([]keydist.Option{keydist.WithClock(m.full.cfg.Clock)}, opts...)
	session := keydist.NewManagerSessionWithKey(m.full.cfg.Key, recipientPub, secret, opts...)
	m1, err := session.M1(boxPub)
	if err != nil {
		return "", err
	}
	sid, err := newSessionID(rand.Reader)
	if err != nil {
		return "", err
	}
	payload, err := keydist.EncodeEnvelope(keydist.Envelope{
		Session: sid,
		From:    m.Address(),
		To:      recipient,
		Stage:   keydist.StageM1,
		Body:    m1,
	})
	if err != nil {
		return "", err
	}
	if _, err := m.client.SubmitRaw(ctx, txn.KindKeyDist, payload); err != nil {
		return "", fmt.Errorf("post shared-key M1: %w", err)
	}
	m.mu.Lock()
	m.sessions[sid] = &managerKeySession{session: session, device: recipient}
	m.mu.Unlock()
	return sid, nil
}

func newSessionID(r io.Reader) (string, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return "", fmt.Errorf("generate session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
