package node

import "runtime"

// MemoryStats is the node's memory footprint, the quantity the hot/cold
// split bounds: resident vertices and boundary roots are O(frontier) in
// steady state no matter how long the node runs, the cold-ID count
// grows but lives on disk, and the journal shrinks back at every
// CompactJournal. Served through Supervisor.Health on /healthz so a
// leak shows up on a dashboard, not in an OOM kill.
type MemoryStats struct {
	// ResidentVertices is the live (hot-region) tangle size.
	ResidentVertices int `json:"resident_vertices"`
	// BoundaryRoots is the snapshot-boundary set size — pruned IDs still
	// referenced by a live vertex.
	BoundaryRoots int `json:"boundary_roots"`
	// SnapshottedIDs counts every ID ever pruned (the cold region).
	SnapshottedIDs int `json:"snapshotted_ids"`
	// JournalBytes is the on-disk size of the transaction log's durable
	// prefix (0 when memory-only).
	JournalBytes int64 `json:"journal_bytes"`
	// ColdIndexBytes is the on-disk size of the pruned-ID index (0 when
	// memory-only).
	ColdIndexBytes int64 `json:"cold_index_bytes"`
	// EvidenceVersions is the authorization-list versions retained in
	// the admission-evidence window (bounded by cap + epoch pruning).
	EvidenceVersions int `json:"evidence_versions"`
	// QuarantineLen is the number of relayed transactions parked
	// awaiting admission evidence (bounded by QuarantineCap).
	QuarantineLen int `json:"quarantine_len"`
	// ShardResidents is the per-namespace split of ResidentVertices
	// (shard ID → live vertices). A single-region deployment shows only
	// namespace 0; a region whose foreign-shard count grows is admitting
	// roamed traffic.
	ShardResidents map[uint32]int `json:"shard_residents,omitempty"`
	// ReconcileLagMS is the time since the last completed backbone
	// reconciliation round, in milliseconds; -1 when no round has
	// completed (single-region deployments, or a backbone that never
	// connected — the alerting condition).
	ReconcileLagMS int64 `json:"reconcile_lag_ms"`
	// BackboneSyncPages counts scoped control-plane pages pulled over
	// the backbone; CreditTxsMerged / CreditEventsMerged count remote
	// credit records folded into the local ledger. All cumulative.
	BackboneSyncPages  int64 `json:"backbone_sync_pages"`
	CreditTxsMerged    int64 `json:"credit_txs_merged"`
	CreditEventsMerged int64 `json:"credit_events_merged"`
	// HeapInuse is the Go runtime's in-use heap, process-wide.
	HeapInuse uint64 `json:"heap_inuse_bytes"`
}

// MemoryStats returns the node's current memory footprint.
func (n *FullNode) MemoryStats() MemoryStats {
	ms := MemoryStats{
		ResidentVertices:   n.tangle.Size(),
		BoundaryRoots:      n.tangle.BoundaryCount(),
		SnapshottedIDs:     n.tangle.SnapshottedCount(),
		EvidenceVersions:   n.registry.VersionsRetained(),
		QuarantineLen:      n.quar.size(),
		ShardResidents:     n.tangle.ResidentByShard(),
		ReconcileLagMS:     -1,
		BackboneSyncPages:  n.counters.BackboneSyncPages.Value(),
		CreditTxsMerged:    n.counters.CreditTxsMerged.Value(),
		CreditEventsMerged: n.counters.CreditEventsMerged.Value(),
	}
	if lag, ok := n.ReconcileLag(); ok {
		ms.ReconcileLagMS = lag.Milliseconds()
	}
	n.pendingMu.Lock()
	if n.journal != nil {
		ms.JournalBytes = n.journal.Bytes()
	}
	if n.coldIdx != nil {
		ms.ColdIndexBytes = n.coldIdx.Bytes()
	}
	n.pendingMu.Unlock()
	var rt runtime.MemStats
	runtime.ReadMemStats(&rt)
	ms.HeapInuse = rt.HeapInuse
	return ms
}
