package node

import "runtime"

// MemoryStats is the node's memory footprint, the quantity the hot/cold
// split bounds: resident vertices and boundary roots are O(frontier) in
// steady state no matter how long the node runs, the cold-ID count
// grows but lives on disk, and the journal shrinks back at every
// CompactJournal. Served through Supervisor.Health on /healthz so a
// leak shows up on a dashboard, not in an OOM kill.
type MemoryStats struct {
	// ResidentVertices is the live (hot-region) tangle size.
	ResidentVertices int `json:"resident_vertices"`
	// BoundaryRoots is the snapshot-boundary set size — pruned IDs still
	// referenced by a live vertex.
	BoundaryRoots int `json:"boundary_roots"`
	// SnapshottedIDs counts every ID ever pruned (the cold region).
	SnapshottedIDs int `json:"snapshotted_ids"`
	// JournalBytes is the on-disk size of the transaction log's durable
	// prefix (0 when memory-only).
	JournalBytes int64 `json:"journal_bytes"`
	// ColdIndexBytes is the on-disk size of the pruned-ID index (0 when
	// memory-only).
	ColdIndexBytes int64 `json:"cold_index_bytes"`
	// EvidenceVersions is the authorization-list versions retained in
	// the admission-evidence window (bounded by cap + epoch pruning).
	EvidenceVersions int `json:"evidence_versions"`
	// QuarantineLen is the number of relayed transactions parked
	// awaiting admission evidence (bounded by QuarantineCap).
	QuarantineLen int `json:"quarantine_len"`
	// HeapInuse is the Go runtime's in-use heap, process-wide.
	HeapInuse uint64 `json:"heap_inuse_bytes"`
}

// MemoryStats returns the node's current memory footprint.
func (n *FullNode) MemoryStats() MemoryStats {
	ms := MemoryStats{
		ResidentVertices: n.tangle.Size(),
		BoundaryRoots:    n.tangle.BoundaryCount(),
		SnapshottedIDs:   n.tangle.SnapshottedCount(),
		EvidenceVersions: n.registry.VersionsRetained(),
		QuarantineLen:    n.quar.size(),
	}
	n.pendingMu.Lock()
	if n.journal != nil {
		ms.JournalBytes = n.journal.Bytes()
	}
	if n.coldIdx != nil {
		ms.ColdIndexBytes = n.coldIdx.Bytes()
	}
	n.pendingMu.Unlock()
	var rt runtime.MemStats
	runtime.ReadMemStats(&rt)
	ms.HeapInuse = rt.HeapInuse
	return ms
}
