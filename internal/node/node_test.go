package node_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/dataauth"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

func TestFullConfigValidation(t *testing.T) {
	key, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		cfg  node.FullConfig
	}{
		{"no key", node.FullConfig{Role: identity.RoleGateway, ManagerPub: key.Public()}},
		{"bad role", node.FullConfig{Key: key, Role: identity.RoleDevice, ManagerPub: key.Public()}},
		{"no manager", node.FullConfig{Key: key, Role: identity.RoleGateway}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := node.NewFull(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}

	// Manager role must hold the pinned key.
	other, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.NewFull(node.FullConfig{
		Key:        key,
		Role:       identity.RoleManager,
		ManagerPub: other.Public(),
	}); err == nil {
		t.Error("manager with mismatched pinned key accepted")
	}
}

func TestNewManagerRejectsGatewayNode(t *testing.T) {
	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	gwKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	gw, err := node.NewFull(node.FullConfig{
		Key:        gwKey,
		Role:       identity.RoleGateway,
		ManagerPub: managerKey.Public(),
		Credit:     testParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.NewManager(gw); !errors.Is(err, node.ErrNotManagerNode) {
		t.Errorf("err = %v", err)
	}
}

// multiNodeDeployment builds manager + n gateways over an in-memory bus.
type multiNodeDeployment struct {
	bus      *gossip.Bus
	mgrKey   *identity.KeyPair
	mgr      *node.Manager
	gateways []*node.FullNode
}

func newMultiNode(t *testing.T, gateways int, clk clock.Clock) *multiNodeDeployment {
	t.Helper()
	bus := gossip.NewBus()
	t.Cleanup(func() { _ = bus.Close() })
	mgrKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mgrNet, err := bus.Join("manager")
	if err != nil {
		t.Fatal(err)
	}
	full, err := node.NewFull(node.FullConfig{
		Key:        mgrKey,
		Role:       identity.RoleManager,
		ManagerPub: mgrKey.Public(),
		Credit:     testParams(),
		Clock:      clk,
		Network:    mgrNet,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		t.Fatal(err)
	}
	dep := &multiNodeDeployment{bus: bus, mgrKey: mgrKey, mgr: mgr}
	for i := 0; i < gateways; i++ {
		gwKey, err := identity.Generate()
		if err != nil {
			t.Fatal(err)
		}
		gwNet, err := bus.Join(fmt.Sprintf("gw-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		gw, err := node.NewFull(node.FullConfig{
			Key:        gwKey,
			Role:       identity.RoleGateway,
			ManagerPub: mgrKey.Public(),
			Credit:     testParams(),
			Clock:      clk,
			Network:    gwNet,
		})
		if err != nil {
			t.Fatal(err)
		}
		dep.gateways = append(dep.gateways, gw)
	}
	return dep
}

// flush drains every node's asynchronous broadcast queue — the barrier
// that restores synchronous-bus visibility for assertions.
func (d *multiNodeDeployment) flush(t *testing.T) {
	t.Helper()
	ctx := context.Background()
	if err := d.mgr.Node().FlushBroadcast(ctx); err != nil {
		t.Fatal(err)
	}
	for _, gw := range d.gateways {
		if err := gw.FlushBroadcast(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGossipPropagatesTransactions(t *testing.T) {
	ctx := context.Background()
	dep := newMultiNode(t, 2, nil)
	device := newTestDevice(t, dep.gateways[0])
	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}

	res, err := device.PostReading(ctx, []byte("propagate me"))
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast is asynchronous; the flush barrier waits out the fan-out.
	dep.flush(t)
	for i, gw := range dep.gateways {
		if !gw.Tangle().Contains(res.Info.ID) {
			t.Errorf("gateway %d missing the transaction", i)
		}
	}
	if !dep.mgr.Node().Tangle().Contains(res.Info.ID) {
		t.Error("manager missing the transaction")
	}
}

func TestGossipPropagatesCreditRecords(t *testing.T) {
	ctx := context.Background()
	dep := newMultiNode(t, 2, nil)
	device := newTestDevice(t, dep.gateways[0])
	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := device.PostReading(ctx, []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	dep.flush(t)
	// Every full node independently derives the same difficulty for the
	// device from its replicated records — "the credit value cannot be
	// forged or tampered".
	want := dep.gateways[0].DifficultyFor(device.Address())
	for i, gw := range dep.gateways[1:] {
		if got := gw.DifficultyFor(device.Address()); got != want {
			t.Errorf("gateway %d difficulty %d != %d", i+1, got, want)
		}
	}
	if got := dep.mgr.Node().DifficultyFor(device.Address()); got != want {
		t.Errorf("manager difficulty %d != %d", got, want)
	}
}

func TestLateJoiningGatewaySyncs(t *testing.T) {
	ctx := context.Background()
	dep := newMultiNode(t, 1, nil)
	device := newTestDevice(t, dep.gateways[0])
	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := device.PostReading(ctx, []byte("history")); err != nil {
			t.Fatal(err)
		}
	}

	lateKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	lateNet, err := dep.bus.Join("late")
	if err != nil {
		t.Fatal(err)
	}
	late, err := node.NewFull(node.FullConfig{
		Key:        lateKey,
		Role:       identity.RoleGateway,
		ManagerPub: dep.mgrKey.Public(),
		Credit:     testParams(),
		Network:    lateNet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if late.Tangle().Size() != 2 {
		t.Fatalf("fresh gateway size = %d", late.Tangle().Size())
	}
	late.SyncAll(ctx)
	want := dep.gateways[0].Tangle().Size()
	if got := late.Tangle().Size(); got != want {
		t.Errorf("synced size = %d, want %d", got, want)
	}
	// Authorization state came along: the late gateway serves the
	// device immediately.
	lateDevice, err := node.NewLight(node.LightConfig{Key: device.Key(), Gateway: late})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lateDevice.PostReading(ctx, []byte("served by late gateway")); err != nil {
		t.Errorf("late gateway rejected authorized device: %v", err)
	}
}

func TestTransferSettlementOnConfirmation(t *testing.T) {
	ctx := context.Background()
	dep := newTestDeployment(t)
	alice := newTestDevice(t, dep.full)
	bobKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dep.mgr.AuthorizeDevice(alice.Key().Public(), alice.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	dep.full.Tokens().Mint(alice.Address(), 100)

	res, err := alice.Transfer(ctx, bobKey.Address(), 40)
	if err != nil {
		t.Fatal(err)
	}
	// Not settled until confirmed.
	if bal := dep.full.Tokens().Balance(bobKey.Address()); bal != 0 {
		t.Errorf("settled before confirmation: %d", bal)
	}
	// Drive confirmation with follow-on traffic.
	for i := 0; i < 12; i++ {
		if _, err := alice.PostReading(ctx, []byte("filler")); err != nil {
			t.Fatal(err)
		}
	}
	info, err := dep.full.InfoOf(res.Info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != tangle.StatusConfirmed {
		t.Fatalf("transfer status = %v (weight %d)", info.Status, info.CumulativeWeight)
	}
	if bal := dep.full.Tokens().Balance(bobKey.Address()); bal != 40 {
		t.Errorf("bob balance = %d, want 40", bal)
	}
	if bal := dep.full.Tokens().Balance(alice.Address()); bal != 60 {
		t.Errorf("alice balance = %d, want 60", bal)
	}
}

func TestRateLimiting(t *testing.T) {
	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     testParams(),
		Clock:      clk,
		RateLimit:  3,
		RateWindow: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		t.Fatal(err)
	}
	device := newTestDevice(t, full)
	mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := mgr.PublishAuthorization(context.Background()); err != nil {
		t.Fatal(err)
	}

	accepted, limited := 0, 0
	for i := 0; i < 10; i++ {
		_, err := device.PostReading(context.Background(), []byte("x"))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, node.ErrRateLimited):
			limited++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	// Manager published one tx in this window too; allow one slack.
	if accepted > 3 {
		t.Errorf("accepted = %d with limit 3", accepted)
	}
	if limited < 7 {
		t.Errorf("limited = %d", limited)
	}

	// Window rolls over with the clock.
	clk.Advance(2 * time.Second)
	if _, err := device.PostReading(context.Background(), []byte("next window")); err != nil {
		t.Errorf("post in fresh window: %v", err)
	}
}

func TestGatewayRejectsForeignAuthorizationList(t *testing.T) {
	ctx := context.Background()
	dep := newTestDeployment(t)
	impostor := newTestDevice(t, dep.full)
	dep.mgr.AuthorizeDevice(impostor.Key().Public(), impostor.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	// The (authorized!) impostor tries to publish its own list.
	_, err := impostor.SubmitRaw(ctx, txn.KindAuthorization, []byte(`{"seq":99,"devices":[]}`))
	if err == nil {
		t.Fatal("foreign authorization list accepted")
	}
}

func TestDifficultyDropsForActiveDevice(t *testing.T) {
	ctx := context.Background()
	dep := newTestDeployment(t)
	device := newTestDevice(t, dep.full)
	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	initial := dep.full.DifficultyFor(device.Address())
	for i := 0; i < 20; i++ {
		if _, err := device.PostReading(ctx, []byte("active")); err != nil {
			t.Fatal(err)
		}
	}
	after := dep.full.DifficultyFor(device.Address())
	if after >= initial {
		t.Errorf("difficulty %d → %d, want reduced for active node", initial, after)
	}
	stats := device.PowTime.Summarize()
	if stats.Count != 20 {
		t.Errorf("pow observations = %d", stats.Count)
	}
}

func TestCountersTrack(t *testing.T) {
	ctx := context.Background()
	dep := newTestDeployment(t)
	device := newTestDevice(t, dep.full)

	if _, err := device.PostReading(ctx, []byte("x")); err == nil {
		t.Fatal("unauthorized accepted")
	}
	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := device.PostReading(ctx, []byte("y")); err != nil {
		t.Fatal(err)
	}
	c := dep.full.CountersView()
	if c.Unauthorized.Value() < 1 {
		t.Error("unauthorized counter")
	}
	if c.Accepted.Value() < 2 { // auth list + reading
		t.Errorf("accepted counter = %d", c.Accepted.Value())
	}
}

func TestManagerKeyDistUnknownDevice(t *testing.T) {
	dep := newTestDeployment(t)
	ghost, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.mgr.StartKeyDistribution(context.Background(), ghost.Address()); !errors.Is(err, node.ErrUnknownDevice) {
		t.Errorf("err = %v", err)
	}
}

func TestLightConfigValidation(t *testing.T) {
	key, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.NewLight(node.LightConfig{Key: key}); !errors.Is(err, node.ErrNoGateway) {
		t.Errorf("err = %v", err)
	}
	if _, err := node.NewLight(node.LightConfig{}); !errors.Is(err, node.ErrNoKey) {
		t.Errorf("err = %v", err)
	}
}

func TestPartitionedGatewayRecovers(t *testing.T) {
	ctx := context.Background()
	dep := newMultiNode(t, 2, nil)
	device := newTestDevice(t, dep.gateways[0])
	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}

	dep.bus.Isolate("gw-1")
	res, err := device.PostReading(ctx, []byte("during partition"))
	if err != nil {
		t.Fatal(err)
	}
	// Force the async fan-out to attempt (and fail) the partitioned send
	// now, not after the partition heals.
	dep.flush(t)
	if dep.gateways[1].Tangle().Contains(res.Info.ID) {
		t.Fatal("partitioned gateway received the transaction")
	}
	dep.bus.Restore("gw-1")
	dep.gateways[1].SyncAll(ctx)
	if !dep.gateways[1].Tangle().Contains(res.Info.ID) {
		t.Error("healed gateway did not catch up")
	}
	// The synced gateway's credit view converges too.
	if core.Credit((dep.gateways[1].Engine().CreditOf(device.Address(), time.Now()))).CrP <= 0 {
		t.Error("healed gateway has no credit record for the device")
	}
}

func TestKeyDistributionAcrossGateways(t *testing.T) {
	// The Fig-4 exchange rides the replicated ledger: the manager posts
	// M1 through its own node while the device polls a *different*
	// gateway; gossip carries every protocol message both ways.
	ctx := context.Background()
	dep := newMultiNode(t, 2, nil)
	deviceKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	device, err := node.NewLight(node.LightConfig{Key: deviceKey, Gateway: dep.gateways[1]})
	if err != nil {
		t.Fatal(err)
	}
	dep.mgr.AuthorizeDevice(deviceKey.Public(), deviceKey.BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.mgr.StartKeyDistribution(ctx, device.Address()); err != nil {
		t.Fatal(err)
	}

	kdCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	deviceDone := make(chan error, 1)
	go func() {
		deviceDone <- device.RunKeyDistribution(kdCtx, dep.mgrKey.Public(), time.Millisecond)
	}()
	for {
		select {
		case err := <-deviceDone:
			if err != nil {
				t.Fatalf("cross-gateway key distribution: %v", err)
			}
			if !device.HasDataKey() {
				t.Fatal("device has no key")
			}
			// Encrypted data posted via gateway 1 decrypts with the
			// manager's issued copy.
			res, err := device.PostReading(ctx, []byte("cross-gw secret"))
			if err != nil {
				t.Fatal(err)
			}
			dep.flush(t) // the manager reads the posting below
			key, ok := dep.mgr.IssuedKey(device.Address())
			if !ok {
				t.Fatal("manager has no issued key")
			}
			stored, err := dep.mgr.Node().GetTransaction(res.Info.ID)
			if err != nil {
				t.Fatal(err)
			}
			body, err := dataauth.Open(stored.Payload, &key)
			if err != nil || string(body) != "cross-gw secret" {
				t.Fatalf("decrypt: %q, %v", body, err)
			}
			return
		default:
			if _, err := dep.mgr.PumpKeyDistribution(ctx); err != nil {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestGossipRejectsForgedTraffic(t *testing.T) {
	// A malicious peer joins the gossip fabric directly and sends
	// garbage: undecodable bytes, unsigned transactions, and
	// wrong-difficulty submissions. The node must stay healthy and
	// admit none of it.
	ctx := context.Background()
	dep := newMultiNode(t, 1, nil)
	evilNet, err := dep.bus.Join("evil")
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := dep.gateways[0].Tangle().Size()

	// Undecodable payload.
	_ = evilNet.Broadcast(ctx, gossip.Message{
		Type:   gossip.MsgTransaction,
		TxData: [][]byte{[]byte("not a transaction")},
	})

	// Well-formed but unsigned/unauthorized transaction.
	evilKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	g := dep.gateways[0].Tangle().Genesis()
	forged := &txn.Transaction{
		Trunk:     g[0],
		Branch:    g[1],
		Timestamp: time.Now(),
		Kind:      txn.KindData,
		Payload:   []byte("forged"),
	}
	forged.Sign(evilKey) // valid signature, but unauthorized sender
	_ = evilNet.Broadcast(ctx, gossip.Message{
		Type:   gossip.MsgTransaction,
		TxData: [][]byte{forged.Encode()},
	})

	// Tampered signature.
	tampered := forged.Clone()
	tampered.Signature[0] ^= 1
	_ = evilNet.Broadcast(ctx, gossip.Message{
		Type:   gossip.MsgTransaction,
		TxData: [][]byte{tampered.Encode()},
	})

	if got := dep.gateways[0].Tangle().Size(); got != sizeBefore {
		t.Errorf("forged gossip changed ledger size %d → %d", sizeBefore, got)
	}
	// The node still serves honest traffic afterwards.
	device := newTestDevice(t, dep.gateways[0])
	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := device.PostReading(ctx, []byte("still alive")); err != nil {
		t.Fatalf("post after forged gossip: %v", err)
	}
}
