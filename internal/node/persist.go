package node

import (
	"errors"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/store"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// Persistence: a full node configured with PersistPath journals every
// admitted transaction to an append-only log and replays it on startup,
// so a gateway restart loses nothing (the durability half of the
// paper's §VIII "storage limitations" open problem).

// ErrNotPersistent reports persistence operations on a memory-only node.
var ErrNotPersistent = errors.New("node has no persistence configured")

// EnablePersistence opens (or creates) the transaction log at path on
// the real filesystem, replays its records into the node's ledger, and
// journals every subsequently admitted transaction. Call once, before
// serving traffic.
func (n *FullNode) EnablePersistence(path string) (replayed int, err error) {
	return n.EnablePersistenceFS(chaos.OS(), path)
}

// EnablePersistenceFS is EnablePersistence against an arbitrary
// filesystem — the seam the chaos torture and soak suites inject disk
// faults through.
func (n *FullNode) EnablePersistenceFS(fs chaos.FS, path string) (replayed int, err error) {
	n.pendingMu.Lock()
	if n.journal != nil {
		n.pendingMu.Unlock()
		return 0, fmt.Errorf("persistence already enabled at %s", n.journal.Path())
	}
	n.pendingMu.Unlock()

	// The cold index opens BEFORE the journal replays: a compacted
	// (generation ≥ 1) segment replays boundary records through Restore,
	// whose duplicate and pruned-parent checks consult the persisted
	// cold membership — it has to be installed for them to keep their
	// exact pre-restart semantics.
	coldIdx, err := store.OpenColdIndex(fs, path+".cold")
	if err != nil {
		return 0, fmt.Errorf("enable persistence: open cold index: %w", err)
	}
	if err := n.tangle.SetColdStore(coldIdx); err != nil {
		coldIdx.Close()
		return 0, fmt.Errorf("enable persistence: %w", err)
	}
	n.tangle.RestoreColdEpoch(coldIdx.Epoch())

	// Admission journals after attach, outside any shared lock, so with
	// concurrent submitters a child can reach the journal just before
	// its parent (journal order is not attach order). Replay therefore
	// stashes generation-0 unknown-parent records instead of aborting
	// and retries the stash to a fixpoint after the scan; only records
	// that STILL do not resolve mean what a gen-0 orphan always meant —
	// a foreign or corrupt log.
	var deferredOrphans []*txn.Transaction
	log, err := store.OpenFSGen(fs, path, func(t *txn.Transaction, gen uint64) error {
		err := n.replayTransaction(t, gen)
		if gen == 0 && errors.Is(err, tangle.ErrUnknownParent) {
			deferredOrphans = append(deferredOrphans, t)
			return nil
		}
		return err
	})
	if err != nil {
		coldIdx.Close()
		return 0, fmt.Errorf("enable persistence: %w", err)
	}
	for len(deferredOrphans) > 0 {
		progress := false
		rest := deferredOrphans[:0]
		for _, t := range deferredOrphans {
			switch err := n.replayTransaction(t, 0); {
			case err == nil:
				progress = true
			case errors.Is(err, tangle.ErrUnknownParent):
				rest = append(rest, t)
			default:
				log.Close()
				coldIdx.Close()
				return 0, fmt.Errorf("enable persistence: %w", err)
			}
		}
		deferredOrphans = rest
		if !progress {
			log.Close()
			coldIdx.Close()
			return 0, fmt.Errorf("enable persistence: %d journaled records never resolve a parent: %w",
				len(deferredOrphans), tangle.ErrUnknownParent)
		}
	}
	// Re-prune the evidence window to the persisted snapshot epoch:
	// replay re-observes every journaled list, and without this a
	// restart would resurrect versions the pre-crash node had already
	// pruned — the window must be a function of durable state, not of
	// restart count, for its memory bound to hold across reboots.
	if epoch := coldIdx.Epoch(); !epoch.IsZero() {
		n.registry.PruneVersions(epoch, evidenceMinVersions)
	}
	log.SetBatchConfig(store.BatchConfig{
		MaxBatch: n.cfg.JournalMaxBatch,
		MaxDelay: n.cfg.JournalMaxDelay,
	})
	n.pendingMu.Lock()
	n.journal = log
	n.coldIdx = coldIdx
	n.pendingMu.Unlock()
	return log.Len(), nil
}

// JournalHealthy reports the journal's state: true when persistence is
// enabled, the log is open, and no write or sync has failed. A node
// with a poisoned journal keeps serving reads but must be restarted
// (re-replaying the durable prefix) before its journal can be trusted
// again — the Supervisor's watchdog does exactly that.
func (n *FullNode) JournalHealthy() bool {
	n.pendingMu.Lock()
	log := n.journal
	n.pendingMu.Unlock()
	return log != nil && log.Healthy()
}

// JournalError returns the sticky I/O error that poisoned the journal
// (nil while healthy or memory-only).
func (n *FullNode) JournalError() error {
	n.pendingMu.Lock()
	log := n.journal
	n.pendingMu.Unlock()
	if log == nil {
		return nil
	}
	return log.Err()
}

// JournalStats returns the journal's recovery stats and current
// generation; ok is false on a memory-only node.
func (n *FullNode) JournalStats() (stats store.RecoveryStats, generation uint64, ok bool) {
	n.pendingMu.Lock()
	log := n.journal
	n.pendingMu.Unlock()
	if log == nil {
		return store.RecoveryStats{}, 0, false
	}
	return log.Stats(), log.Generation(), true
}

// ClosePersistence flushes and closes the journal and cold index.
func (n *FullNode) ClosePersistence() error {
	n.pendingMu.Lock()
	log := n.journal
	idx := n.coldIdx
	n.journal = nil
	n.coldIdx = nil
	n.pendingMu.Unlock()
	if log == nil {
		return ErrNotPersistent
	}
	err := log.Close()
	if idx != nil {
		if cerr := idx.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// replayTransaction re-admits a journaled transaction at startup. It
// runs the same structural pipeline as live admission but skips the
// rate limiter and the PoW check: the transaction met the difficulty
// demanded *at its original admission*, which the credit state seen
// during replay cannot reconstruct exactly — and the log is local,
// already-trusted state, not an untrusted submission.
func (n *FullNode) replayTransaction(t *txn.Transaction, generation uint64) error {
	if n.tangle.Contains(t.ID()) {
		return nil // duplicate record (e.g. log shared with a sync)
	}
	if err := t.VerifyBasic(); err != nil {
		return fmt.Errorf("journaled transaction invalid: %w", err)
	}
	if t.Kind == txn.KindTransfer {
		n.pendingMu.Lock()
		n.pending[t.ID()] = t.Clone()
		n.pendingMu.Unlock()
	}
	// The journal does not record shards; re-derive the namespace from
	// the kind and this gateway's own region, exactly as live admission
	// of a local submission would.
	shard := shardFor(t.Kind, n.cfg.ShardID)
	info, err := n.tangle.AttachShard(t, shard)
	if generation > 0 &&
		(errors.Is(err, tangle.ErrUnknownParent) || errors.Is(err, tangle.ErrSnapshottedParent)) {
		// The journal is written in attachment order and recovery only
		// truncates its tail, so in a compacted segment (generation > 0)
		// a replayed record with an absent parent can only be sitting on
		// a snapshot boundary: compaction rewrote the log down to the
		// live working set and the parent was folded away before the
		// crash. Restore re-creates the boundary shape. A generation-0
		// segment was never compacted, so there an absent parent keeps
		// meaning what it always did — a foreign or corrupt log — and
		// aborts the open.
		info, err = n.tangle.RestoreShard(t, shard)
	}
	if err != nil {
		n.pendingMu.Lock()
		delete(n.pending, t.ID())
		n.pendingMu.Unlock()
		return err
	}
	n.engine.Ledger().RecordTransaction(t.Sender(), info.ID, 1, t.Timestamp)
	if t.Kind == txn.KindAuthorization {
		// Observe, not Apply: stale lists are fine during replay — the
		// newest wins the live view — and every valid list records into
		// the evidence window so replayed nodes take the same admission
		// verdicts as the nodes that saw the lists live.
		_, _ = n.registry.Observe(t, t.Timestamp)
	}
	// Quality punishments re-derive deterministically from the replayed
	// data stream (the validator's per-device history rebuilds in log
	// order), timestamped at the original admission so hyperbolic decay
	// continues from where it was. Double-spend punishments likewise
	// re-fire through the tangle's conflict detector; lazy-tip events
	// are the one class that may not re-derive (parent ages are a
	// property of the original arrival timing).
	n.checkQuality(t, info.ID, t.Timestamp)
	n.drainDeferred()
	return nil
}

// Compact bounds the node's memory: it snapshots old confirmed
// transactions out of the tangle and prunes the credit ledger's
// transaction records older than keep (malicious-event records are kept
// forever — punishment "cannot be eliminated"). It returns the number
// of tangle vertices and credit records dropped. keep must comfortably
// exceed both the credit window ΔT and the confirmation horizon;
// values below ΔT are raised by the credit ledger itself.
func (n *FullNode) Compact(keep time.Duration) (tangleDropped, creditDropped int) {
	now := n.cfg.Clock.Now()
	// The tangle must not prune inside the credit window: a transaction
	// record younger than ΔT still contributes to CrP, and RescanCredit
	// parity requires the evidence to stay resident. The credit ledger
	// clamps itself; mirror that for the tangle cutoff.
	if dt := n.engine.Ledger().Params().DeltaT; keep < dt {
		keep = dt
	}
	tangleDropped = n.tangle.SnapshotEpoch(now, keep, n.cfg.SnapshotEpoch)
	creditDropped = n.engine.Ledger().Prune(now, keep)
	// The evidence window prunes on the SAME quantized cutoff as the
	// tangle snapshot: list versions older than the epoch boundary can
	// only be evidence for transactions the snapshot already folded
	// away. Keeping the grids aligned is also what makes the window
	// reconstructible — replay re-observes the journal's lists and
	// re-prunes to the persisted epoch, landing on the identical set.
	cutoff := now.Add(-keep)
	if n.cfg.SnapshotEpoch > 0 {
		cutoff = cutoff.Truncate(n.cfg.SnapshotEpoch)
	}
	n.registry.PruneVersions(cutoff, evidenceMinVersions)
	return tangleDropped, creditDropped
}

// evidenceMinVersions is the floor PruneVersions keeps regardless of
// age: the current list plus its predecessor, so a verdict straddling
// the newest revision never hits a gap.
const evidenceMinVersions = 2

// CompactJournal rewrites the journal to exactly the tangle's current
// contents (write-temp/fsync/atomic-rename; see store.Compact). Run it
// after Compact so the on-disk log shrinks with the in-memory state —
// otherwise the journal grows forever and replay re-admits vertices the
// snapshot already folded away. Genesis is skipped: every node derives
// it from configuration, and replay would reject it as a duplicate
// root. Returns the record count of the new segment.
func (n *FullNode) CompactJournal() (records int, err error) {
	n.pendingMu.Lock()
	log := n.journal
	n.pendingMu.Unlock()
	if log == nil {
		return 0, ErrNotPersistent
	}
	all := n.tangle.Export()
	txs := all[:0]
	for _, t := range all {
		if t.Kind != txn.KindGenesis {
			txs = append(txs, t)
		}
	}
	if err := log.Compact(txs); err != nil {
		return 0, fmt.Errorf("compact journal: %w", err)
	}
	return len(txs), nil
}

// journalAppend records an admitted transaction; called from the
// submission edge. Append blocks through the group-commit barrier, so
// admission is only reported after the fsync covering the record — many
// concurrent submitters share one flush.
func (n *FullNode) journalAppend(t *txn.Transaction) {
	n.pendingMu.Lock()
	log := n.journal
	n.pendingMu.Unlock()
	if log == nil {
		return
	}
	// Journal failures must not fail admission (the ledger is already
	// updated); they surface through the JournalErrors counter so
	// operators notice a dying disk.
	if err := log.Append(t); err != nil {
		n.counters.JournalErrors.Inc()
	}
}

// journalBatch records a whole relay-admitted batch behind a single
// durability barrier (one write + one fsync for the batch); called at
// the end of admitGossipBatch.
func (n *FullNode) journalBatch(txs []*txn.Transaction) {
	if len(txs) == 0 {
		return
	}
	n.pendingMu.Lock()
	log := n.journal
	n.pendingMu.Unlock()
	if log == nil {
		return
	}
	if err := log.AppendBatch(txs); err != nil {
		n.counters.JournalErrors.Inc()
	}
}
