package node_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/clock"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/quality"
	"github.com/b-iot/biot/internal/store"
	"github.com/b-iot/biot/internal/txn"
)

func TestPersistenceRestartRestoresLedger(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "gateway.log")

	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	deviceKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}

	boot := func() (*node.Manager, *node.FullNode, int) {
		full, err := node.NewFull(node.FullConfig{
			Key:        managerKey,
			Role:       identity.RoleManager,
			ManagerPub: managerKey.Public(),
			Credit:     testParams(),
		})
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := full.EnablePersistence(path)
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := node.NewManager(full)
		if err != nil {
			t.Fatal(err)
		}
		return mgr, full, replayed
	}

	// First life: authorize, post readings, transfer.
	mgr, full, replayed := boot()
	if replayed != 0 {
		t.Fatalf("fresh boot replayed %d", replayed)
	}
	device, err := node.NewLight(node.LightConfig{Key: deviceKey, Gateway: full})
	if err != nil {
		t.Fatal(err)
	}
	mgr.AuthorizeDevice(deviceKey.Public(), deviceKey.BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	var lastID [32]byte
	for i := 0; i < 5; i++ {
		res, err := device.PostReading(ctx, []byte("persisted"))
		if err != nil {
			t.Fatal(err)
		}
		lastID = res.Info.ID
	}
	sizeBefore := full.Tangle().Size()
	diffBefore := full.DifficultyFor(deviceKey.Address())
	if err := full.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	// Second life: everything is back.
	_, full2, replayed2 := boot()
	if replayed2 != 6 { // auth list + 5 readings
		t.Errorf("replayed = %d, want 6", replayed2)
	}
	if got := full2.Tangle().Size(); got != sizeBefore {
		t.Errorf("size after restart = %d, want %d", got, sizeBefore)
	}
	if !full2.Tangle().Contains(lastID) {
		t.Error("last reading lost across restart")
	}
	if !full2.Registry().IsAuthorizedDevice(deviceKey.Address()) {
		t.Error("authorization lost across restart")
	}
	if got := full2.DifficultyFor(deviceKey.Address()); got > diffBefore {
		t.Errorf("credit history lost: difficulty %d > %d", got, diffBefore)
	}
	// And the restarted node keeps serving + journaling.
	device2, err := node.NewLight(node.LightConfig{Key: deviceKey, Gateway: full2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := device2.PostReading(ctx, []byte("after restart")); err != nil {
		t.Fatalf("post after restart: %v", err)
	}
	if err := full2.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	// Third life sees the post-restart record too.
	_, _, replayed3 := boot()
	if replayed3 != 7 {
		t.Errorf("third boot replayed %d, want 7", replayed3)
	}
}

func TestEnablePersistenceTwice(t *testing.T) {
	dep := newTestDeployment(t)
	path := filepath.Join(t.TempDir(), "x.log")
	if _, err := dep.full.EnablePersistence(path); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.full.EnablePersistence(path); err == nil {
		t.Error("second enable accepted")
	}
	if err := dep.full.ClosePersistence(); err != nil {
		t.Fatal(err)
	}
	if err := dep.full.ClosePersistence(); !errors.Is(err, node.ErrNotPersistent) {
		t.Errorf("close without journal: %v", err)
	}
}

func TestPersistenceForeignLogRejected(t *testing.T) {
	// A log written under a different manager (different genesis) must
	// not replay: parents are unknown.
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "foreign.log")

	depA := newTestDeployment(t)
	if _, err := depA.full.EnablePersistence(path); err != nil {
		t.Fatal(err)
	}
	device := newTestDevice(t, depA.full)
	depA.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := depA.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if err := depA.full.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	depB := newTestDeployment(t) // different manager key → different genesis
	if _, err := depB.full.EnablePersistence(path); err == nil {
		t.Error("foreign log replayed cleanly")
	}
}

func TestQualityPunishmentSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "q.log")
	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	deviceKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	boot := func() (*node.Manager, *node.FullNode) {
		full, err := node.NewFull(node.FullConfig{
			Key:        managerKey,
			Role:       identity.RoleManager,
			ManagerPub: managerKey.Public(),
			Credit:     testParams(),
			Quality:    quality.NewValidator(nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := full.EnablePersistence(path); err != nil {
			t.Fatal(err)
		}
		mgr, err := node.NewManager(full)
		if err != nil {
			t.Fatal(err)
		}
		return mgr, full
	}

	mgr, full := boot()
	device, err := node.NewLight(node.LightConfig{Key: deviceKey, Gateway: full})
	if err != nil {
		t.Fatal(err)
	}
	mgr.AuthorizeDevice(deviceKey.Public(), deviceKey.BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := device.PostReading(ctx, []byte("sensor=temperature;seq=1;t=1;value=9999")); err != nil {
		t.Fatal(err)
	}
	punished := full.DifficultyFor(deviceKey.Address())
	if punished <= testParams().InitialDifficulty {
		t.Fatalf("no punishment applied: %d", punished)
	}
	if err := full.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	_, full2 := boot()
	events := full2.Engine().Ledger().Events(deviceKey.Address())
	found := false
	for _, ev := range events {
		if ev.Behaviour == core.BehaviourProtocol {
			found = true
		}
	}
	if !found {
		t.Error("quality punishment not re-derived on replay")
	}
	if got := full2.DifficultyFor(deviceKey.Address()); got <= testParams().InitialDifficulty {
		t.Errorf("difficulty after restart = %d, want punished", got)
	}
	if err := full2.ClosePersistence(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactBoundsMemory(t *testing.T) {
	ctx := context.Background()
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     testParams(),
		Clock:      clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		t.Fatal(err)
	}
	device := newTestDevice(t, full)
	mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		clk.Advance(time.Minute)
		if _, err := device.PostReading(ctx, []byte("old data")); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := full.Tangle().Size()
	tangleDropped, _ := full.Compact(10 * time.Minute)
	if tangleDropped == 0 {
		t.Fatal("compact dropped nothing")
	}
	if got := full.Tangle().Size(); got != sizeBefore-tangleDropped {
		t.Errorf("size = %d after dropping %d from %d", got, tangleDropped, sizeBefore)
	}
	// The node keeps serving after compaction.
	if _, err := device.PostReading(ctx, []byte("after compaction")); err != nil {
		t.Fatalf("post after compact: %v", err)
	}
}

// TestCompactedJournalRecovers pins the crash-recovery path the
// supervisor's compaction loop depends on: after Compact+CompactJournal,
// the rewritten journal's earliest records reference parents that the
// snapshot folded away, and a restarted node must replay them as
// pruned-boundary roots rather than abort on unknown parents.
func TestCompactedJournalRecovers(t *testing.T) {
	ctx := context.Background()
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	fs := chaos.NewMemFS(42)
	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	boot := func() (*node.FullNode, *node.Manager, int) {
		full, err := node.NewFull(node.FullConfig{
			Key:        managerKey,
			Role:       identity.RoleManager,
			ManagerPub: managerKey.Public(),
			Credit:     testParams(),
			Clock:      clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := full.EnablePersistenceFS(fs, "compact.journal")
		if err != nil {
			t.Fatalf("enable persistence: %v", err)
		}
		mgr, err := node.NewManager(full)
		if err != nil {
			t.Fatal(err)
		}
		return full, mgr, replayed
	}

	full, mgr, _ := boot()
	device := newTestDevice(t, full)
	mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	var lastID [32]byte
	for i := 0; i < 40; i++ {
		clk.Advance(time.Minute)
		res, err := device.PostReading(ctx, []byte("aged"))
		if err != nil {
			t.Fatal(err)
		}
		lastID = res.Info.ID
	}
	tangleDropped, _ := full.Compact(10 * time.Minute)
	if tangleDropped == 0 {
		t.Fatal("compact dropped nothing")
	}
	compacted, err := full.CompactJournal()
	if err != nil {
		t.Fatal(err)
	}
	liveSize := full.Tangle().Size()
	if err := full.ClosePersistence(); err != nil {
		t.Fatal(err)
	}
	full.Close()

	// Crash: reboot the disk (the compacted segment was synced by the
	// atomic rename, so it survives) and replay it into a fresh node.
	fs.Reboot()
	full2, _, replayed := boot()
	defer full2.Close()
	if replayed != compacted {
		t.Errorf("replayed %d of %d compacted records", replayed, compacted)
	}
	if got := full2.Tangle().Size(); got != liveSize {
		t.Errorf("recovered size = %d, want %d", got, liveSize)
	}
	if !full2.Tangle().Contains(lastID) {
		t.Error("newest reading lost across compacted recovery")
	}
	if full2.Tangle().SnapshottedCount() == 0 {
		t.Error("recovery recorded no snapshot boundary")
	}
	// The recovered node keeps serving and journaling.
	device2 := newTestDevice(t, full2)
	mgr2, err := node.NewManager(full2)
	if err != nil {
		t.Fatal(err)
	}
	mgr2.AuthorizeDevice(device2.Key().Public(), device2.Key().BoxPublic())
	if _, err := mgr2.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := device2.PostReading(ctx, []byte("after recovery")); err != nil {
		t.Fatalf("post after compacted recovery: %v", err)
	}
}

func TestPersistenceReplayToleratesJournalReorder(t *testing.T) {
	// Admission journals after attach outside any shared lock, so with
	// concurrent submitters a child can hit the journal just before its
	// parent. Replay must tolerate that reorder in a generation-0
	// segment (deferred-orphan retry) instead of rejecting the log as
	// foreign. Simulate the worst case by rewriting a journal fully
	// reversed — every child strictly precedes its parents.
	ctx := context.Background()
	fs := chaos.NewMemFS(11)
	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	build := func() *node.FullNode {
		full, err := node.NewFull(node.FullConfig{
			Key:        managerKey,
			Role:       identity.RoleManager,
			ManagerPub: managerKey.Public(),
			Credit:     testParams(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return full
	}

	full := build()
	if _, err := full.EnablePersistenceFS(fs, "ordered.journal"); err != nil {
		t.Fatal(err)
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		t.Fatal(err)
	}
	device := newTestDevice(t, full)
	mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	var ids [][32]byte
	for i := 0; i < 5; i++ {
		res, err := device.PostReading(ctx, []byte("reordered"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.Info.ID)
	}
	if err := full.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	var txs []*txn.Transaction
	l, err := store.OpenFS(fs, "ordered.journal", func(tx *txn.Transaction) error {
		txs = append(txs, tx)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := store.OpenFS(fs, "reversed.journal", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(txs) - 1; i >= 0; i-- {
		if err := l2.Append(txs[i]); err != nil {
			t.Fatal(err)
		}
	}
	l2.Close()

	full2 := build()
	replayed, err := full2.EnablePersistenceFS(fs, "reversed.journal")
	if err != nil {
		t.Fatalf("reversed journal rejected: %v", err)
	}
	if replayed != len(txs) {
		t.Errorf("replayed %d of %d records", replayed, len(txs))
	}
	for _, id := range ids {
		if !full2.Tangle().Contains(id) {
			t.Errorf("reading %x lost across reordered replay", id[:4])
		}
	}
	// A truly foreign log must STILL be rejected: its orphans never
	// resolve, so the retry loop makes no progress.
	foreign := build()
	if _, err := foreign.EnablePersistenceFS(chaos.NewMemFS(12), "empty.journal"); err != nil {
		t.Fatal(err)
	}
	// (covered by TestPersistenceForeignLogRejected; retained here as a
	// reminder that the reorder tolerance is gen-0 fixpoint, not "accept
	// anything")
	_ = foreign.ClosePersistence()
}
