package node_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/pow"
	"github.com/b-iot/biot/internal/txn"
)

// stubNet is a controllable gossip.Network for pipeline tests: Peers
// and Request can be gated to stall the dispatcher or the per-peer
// senders at precise points, and every sent batch is recorded.
type stubNet struct {
	peerNames []string
	peersGate chan struct{} // when non-nil, Peers blocks until closed
	reqGate   chan struct{} // when non-nil, Request blocks until closed

	mu      sync.Mutex
	batches []int // TxData length of each Request, in arrival order
	total   int
}

func (s *stubNet) Self() string { return "stub" }

func (s *stubNet) Peers() []string {
	if s.peersGate != nil {
		<-s.peersGate
	}
	return s.peerNames
}

func (s *stubNet) Broadcast(ctx context.Context, msg gossip.Message) error { return nil }

func (s *stubNet) Request(ctx context.Context, peer string, msg gossip.Message) (gossip.Message, error) {
	if s.reqGate != nil {
		<-s.reqGate
	}
	s.mu.Lock()
	s.batches = append(s.batches, len(msg.TxData))
	s.total += len(msg.TxData)
	s.mu.Unlock()
	return gossip.Message{}, nil
}

func (s *stubNet) SetHandler(h gossip.Handler) {}
func (s *stubNet) Close() error                { return nil }

func (s *stubNet) snapshot() (batches []int, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.batches...), s.total
}

// newPipelineNode builds a manager full node over a stub network (the
// manager address is always authorized, so tests can submit directly).
func newPipelineNode(t *testing.T, net gossip.Network, queue, peerQueue, batch int) *node.FullNode {
	t.Helper()
	key, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	full, err := node.NewFull(node.FullConfig{
		Key:                key,
		Role:               identity.RoleManager,
		ManagerPub:         key.Public(),
		Credit:             testParams(),
		Network:            net,
		BroadcastQueue:     queue,
		BroadcastPeerQueue: peerQueue,
		BroadcastBatch:     batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = full.Close() })
	return full
}

// mineOwnTx builds a valid node-signed transaction ready to Submit.
func mineOwnTx(t *testing.T, full *node.FullNode, payload string) *txn.Transaction {
	t.Helper()
	trunk, branch, err := full.TipsForApproval()
	if err != nil {
		t.Fatal(err)
	}
	tr := &txn.Transaction{
		Trunk:     trunk,
		Branch:    branch,
		Timestamp: full.Clock().Now(),
		Kind:      txn.KindData,
		Payload:   []byte(payload),
	}
	tr.Sign(full.Key())
	w := pow.Worker{}
	if _, err := w.Attach(context.Background(), tr, full.DifficultyFor(full.Address())); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSubmitBacklogBackpressure(t *testing.T) {
	ctx := context.Background()
	net := &stubNet{peerNames: []string{"peer"}, peersGate: make(chan struct{})}
	full := newPipelineNode(t, net, 1, 0, 0) // intake capacity 1

	// With the dispatcher stalled in Peers, at most two submissions pass
	// (one held by the dispatcher, one in the intake) before the typed
	// backpressure error surfaces.
	var backlogTx *txn.Transaction
	var backlogErr error
	for i := 0; i < 10; i++ {
		tr := mineOwnTx(t, full, fmt.Sprintf("bp-%d", i))
		if _, err := full.Submit(ctx, tr); err != nil {
			backlogTx, backlogErr = tr, err
			break
		}
	}
	if backlogErr == nil {
		t.Fatal("saturated pipeline accepted every submission")
	}
	if !errors.Is(backlogErr, node.ErrBroadcastBacklog) {
		t.Fatalf("err = %v, want ErrBroadcastBacklog", backlogErr)
	}
	// Backpressure fires before admission: the ledger must not contain
	// the rejected transaction.
	if full.Tangle().Contains(backlogTx.ID()) {
		t.Error("rejected submission was attached anyway")
	}

	close(net.peersGate)
	if err := full.FlushBroadcast(ctx); err != nil {
		t.Fatal(err)
	}
	// The pipeline recovers once drained.
	if _, err := full.Submit(ctx, mineOwnTx(t, full, "bp-after")); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if err := full.FlushBroadcast(ctx); err != nil {
		t.Fatal(err)
	}
	if d := full.Pipeline().QueueDepth.Value(); d != 0 {
		t.Errorf("queue depth after flush = %d", d)
	}
}

func TestBroadcastBatchesCoalesce(t *testing.T) {
	ctx := context.Background()
	const n, maxBatch = 20, 8
	net := &stubNet{peerNames: []string{"peer"}, reqGate: make(chan struct{})}
	full := newPipelineNode(t, net, 64, 64, maxBatch)

	// The sender stalls on its first Request while the rest of the
	// submissions pile up behind it, forcing coalescing.
	for i := 0; i < n; i++ {
		if _, err := full.Submit(ctx, mineOwnTx(t, full, fmt.Sprintf("batch-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	close(net.reqGate)
	if err := full.FlushBroadcast(ctx); err != nil {
		t.Fatal(err)
	}

	batches, total := net.snapshot()
	if total != n {
		t.Fatalf("delivered %d transactions, want %d", total, n)
	}
	if len(batches) >= n {
		t.Errorf("no coalescing: %d batches for %d transactions", len(batches), n)
	}
	multi := false
	for _, size := range batches {
		if size > maxBatch {
			t.Errorf("batch of %d exceeds cap %d", size, maxBatch)
		}
		if size > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("expected at least one multi-transaction batch")
	}

	p := full.Pipeline()
	if got := p.TxBroadcast.Value(); got != int64(n) {
		t.Errorf("TxBroadcast = %d, want %d", got, n)
	}
	if got := p.BatchesSent.Value(); got != int64(len(batches)) {
		t.Errorf("BatchesSent = %d, want %d", got, len(batches))
	}
	if p.AdmitLatency.Count() < n || p.AttachLatency.Count() < n {
		t.Error("per-stage latency histograms missing samples")
	}
}

func TestSlowPeerDropsNotStalls(t *testing.T) {
	ctx := context.Background()
	const n = 10
	net := &stubNet{peerNames: []string{"slow"}, reqGate: make(chan struct{})}
	full := newPipelineNode(t, net, 64, 1, 1) // peer queue of one, no batching

	// Every submission returns promptly even though the peer accepts
	// nothing: overflow drops rather than stalling admission.
	for i := 0; i < n; i++ {
		if _, err := full.Submit(ctx, mineOwnTx(t, full, fmt.Sprintf("slow-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	close(net.reqGate)
	if err := full.FlushBroadcast(ctx); err != nil {
		t.Fatal(err)
	}

	p := full.Pipeline()
	_, total := net.snapshot()
	if p.PeerDrops.Value() == 0 {
		t.Error("expected drops for the slow peer")
	}
	if got := p.PeerDrops.Value() + int64(total); got != n {
		t.Errorf("drops+delivered = %d, want %d", got, n)
	}
}

func TestConcurrentSubmitPipeline(t *testing.T) {
	ctx := context.Background()
	const workers, perWorker = 8, 5
	net := &stubNet{peerNames: []string{"a", "b"}}
	full := newPipelineNode(t, net, 0, 0, 0)

	// Mine outside the submission window so the race is on Submit.
	txs := make([]*txn.Transaction, workers*perWorker)
	for i := range txs {
		txs[i] = mineOwnTx(t, full, fmt.Sprintf("conc-%d", i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(txs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := full.Submit(ctx, txs[w*perWorker+i]); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent submit: %v", err)
	}
	if err := full.FlushBroadcast(ctx); err != nil {
		t.Fatal(err)
	}
	for _, tr := range txs {
		if !full.Tangle().Contains(tr.ID()) {
			t.Fatalf("transaction %s missing after concurrent submit", tr.ID().Short())
		}
	}
	if got := full.CountersView().Accepted.Value(); got != int64(len(txs)) {
		t.Errorf("accepted = %d, want %d", got, len(txs))
	}
	// Both peers saw every transaction (queues were unbounded enough).
	_, total := net.snapshot()
	if total != len(txs)*2 {
		t.Errorf("delivered %d, want %d", total, len(txs)*2)
	}
}

func TestCloseIsIdempotentAndLocalOnly(t *testing.T) {
	ctx := context.Background()
	net := &stubNet{peerNames: []string{"peer"}}
	full := newPipelineNode(t, net, 0, 0, 0)

	if _, err := full.Submit(ctx, mineOwnTx(t, full, "pre-close")); err != nil {
		t.Fatal(err)
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
	// Admission keeps working after close; only fan-out stops.
	tr := mineOwnTx(t, full, "post-close")
	if _, err := full.Submit(ctx, tr); err != nil {
		t.Fatalf("submit after close: %v", err)
	}
	if !full.Tangle().Contains(tr.ID()) {
		t.Error("post-close submission not attached locally")
	}
	if err := full.FlushBroadcast(ctx); err != nil {
		t.Fatalf("flush after close: %v", err)
	}
}
