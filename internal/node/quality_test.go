package node_test

import (
	"context"
	"testing"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/quality"
)

func newQualityDeployment(t *testing.T) (*node.Manager, *node.FullNode) {
	t.Helper()
	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     testParams(),
		Quality:    quality.NewValidator(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, full
}

func TestQualityViolationPunishedThroughCredit(t *testing.T) {
	ctx := context.Background()
	mgr, full := newQualityDeployment(t)
	device := newTestDevice(t, full)
	mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}

	// Clean reading: no violation, no punishment.
	if _, err := device.PostReading(ctx, []byte("sensor=temperature;seq=1;t=1;value=21.0")); err != nil {
		t.Fatal(err)
	}
	if got := full.CountersView().QualityViolations.Value(); got != 0 {
		t.Fatalf("violations after clean reading = %d", got)
	}
	before := full.DifficultyFor(device.Address())

	// Implausible reading: accepted (evidence stays on the ledger) but
	// punished.
	res, err := device.PostReading(ctx, []byte("sensor=temperature;seq=2;t=2;value=5000"))
	if err != nil {
		t.Fatalf("implausible reading rejected outright: %v", err)
	}
	if !full.Tangle().Contains(res.Info.ID) {
		t.Error("evidence not on ledger")
	}
	if got := full.CountersView().QualityViolations.Value(); got != 1 {
		t.Errorf("violations = %d, want 1", got)
	}
	after := full.DifficultyFor(device.Address())
	if after <= before {
		t.Errorf("difficulty %d → %d, want raised", before, after)
	}
	events := full.Engine().Ledger().Events(device.Address())
	found := false
	for _, ev := range events {
		if ev.Behaviour == core.BehaviourProtocol {
			found = true
		}
	}
	if !found {
		t.Error("no protocol event recorded")
	}
}

func TestQualitySkipsEncryptedReadings(t *testing.T) {
	ctx := context.Background()
	mgr, full := newQualityDeployment(t)
	device := newTestDevice(t, full)
	mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.StartKeyDistribution(ctx, device.Address()); err != nil {
		t.Fatal(err)
	}
	// Complete key distribution quickly in-process.
	driveKeyDistribution(t, mgr, device)

	// An "implausible" value inside an encrypted envelope is opaque to
	// the gateway: no violation recorded.
	if _, err := device.PostReading(ctx, []byte("sensor=temperature;seq=99;t=1;value=5000")); err != nil {
		t.Fatal(err)
	}
	if got := full.CountersView().QualityViolations.Value(); got != 0 {
		t.Errorf("violations on encrypted payload = %d", got)
	}
}
