package node

import (
	"sync"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// Quarantine-and-repair lane for relayed transactions whose admission
// evidence cannot be resolved yet (DESIGN.md §15): a sync or gossip
// transaction whose authorization ancestor has not attached, or whose
// evidence scan hits a list-sequence gap, parks here instead of being
// dropped — dropping it would orphan its descendants, which is exactly
// the interleaving behind the old revocation-storm flake. Entries are
// retried whenever an authorization list lands (kickQuarantine) and
// expire on a per-entry TTL; the map is capacity-bounded with FIFO
// eviction, so a hostile flood of unresolvable transactions costs
// O(cap) memory and nothing more.

const (
	// defaultQuarantineCap bounds parked entries.
	defaultQuarantineCap = 256
	// defaultQuarantineTTL is how long an entry may wait for its
	// missing evidence before being dropped (sync re-offers it later if
	// it ever resolves).
	defaultQuarantineTTL = 30 * time.Second
)

// quarEntry is one parked transaction.
type quarEntry struct {
	tx *txn.Transaction
	// from is the peer that relayed it (the anti-entropy probe target).
	from string
	// missingSeq is the first unobserved list sequence blocking the
	// evidence verdict; 0 when the block is an unattached parent.
	missingSeq uint64
	// shard is the namespace hint the transaction arrived with, so a
	// later kick attaches it into the same shard its relay targeted.
	shard uint32
	// deadline is the entry's TTL expiry.
	deadline time.Time
}

// quarantine is the bounded parking lot. Safe for concurrent use.
type quarantine struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	entries map[hashutil.Hash]*quarEntry
	order   []hashutil.Hash // FIFO insertion order for capacity eviction
}

func newQuarantine(capacity int, ttl time.Duration) *quarantine {
	if capacity <= 0 {
		capacity = defaultQuarantineCap
	}
	if ttl <= 0 {
		ttl = defaultQuarantineTTL
	}
	return &quarantine{
		cap:     capacity,
		ttl:     ttl,
		entries: make(map[hashutil.Hash]*quarEntry, capacity),
	}
}

// park inserts (or refreshes) an entry. fresh reports whether the
// transaction was not already parked; evicted is how many oldest
// entries were displaced to stay under capacity.
func (q *quarantine) park(t *txn.Transaction, from string, missingSeq uint64, now time.Time, shard uint32) (fresh bool, evicted int) {
	id := t.ID()
	q.mu.Lock()
	defer q.mu.Unlock()
	if e, ok := q.entries[id]; ok {
		// Already parked: refresh the blocking reason but keep the
		// original deadline — re-offers must not extend a stay forever.
		e.missingSeq = missingSeq
		e.from = from
		e.shard = shard
		return false, 0
	}
	q.entries[id] = &quarEntry{tx: t, from: from, missingSeq: missingSeq, shard: shard, deadline: now.Add(q.ttl)}
	q.order = append(q.order, id)
	for len(q.entries) > q.cap {
		victim := q.order[0]
		q.order = q.order[1:]
		if _, ok := q.entries[victim]; ok {
			delete(q.entries, victim)
			evicted++
		}
	}
	return true, evicted
}

// repark reinserts a drained entry, preserving its original deadline.
func (q *quarantine) repark(e *quarEntry) {
	id := e.tx.ID()
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.entries[id]; ok {
		return
	}
	q.entries[id] = e
	q.order = append(q.order, id)
	for len(q.entries) > q.cap {
		victim := q.order[0]
		q.order = q.order[1:]
		delete(q.entries, victim)
	}
}

// drain removes and returns every parked entry in FIFO order.
func (q *quarantine) drain() []*quarEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) == 0 {
		return nil
	}
	out := make([]*quarEntry, 0, len(q.entries))
	for _, id := range q.order {
		if e, ok := q.entries[id]; ok {
			out = append(out, e)
		}
	}
	q.entries = make(map[hashutil.Hash]*quarEntry, q.cap)
	q.order = q.order[:0]
	return out
}

// size reports the number of parked entries.
func (q *quarantine) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}
