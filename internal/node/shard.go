package node

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/gossip"
)

// Two-tier sharded deployment (DESIGN.md §16). Region-local gateway
// clusters admit light-node traffic against their own tangle namespace
// and their own credit view; the inter-gateway backbone reconciles the
// shards. Reconciliation is two pulls per backbone peer:
//
//   - a scoped sync of namespace 0, so control-plane history (genesis,
//     authorization lists, key distribution) replicates globally while
//     each region's data namespace stays region-local, and
//   - a paged credit-digest exchange, so a device roaming between
//     regions carries its earned credit — and therefore its PoW
//     difficulty — instead of being re-issued the newcomer penalty.
//
// Both lanes reuse the regional machinery: scoped sync pages flow
// through the same cursor logic as syncFrom (cursors keyed
// "peer#shard"), and digest merges route through the credit ledger's
// own idempotent mutation paths, so reconciling twice moves nothing.

const (
	// creditPageAccounts bounds one credit-digest page.
	creditPageAccounts = 64
	// defaultReconcileInterval paces RunReconcileLoop when the config
	// leaves ReconcileInterval zero.
	defaultReconcileInterval = 2 * time.Second
)

// ShardID returns the data namespace this gateway admits into.
func (n *FullNode) ShardID() uint32 { return n.cfg.ShardID }

// serveCreditPage answers one MsgCreditRequest: a bounded page of this
// node's credit state, address-ordered, JSON-encoded in TxData[0].
func (n *FullNode) serveCreditPage(msg gossip.Message) (*gossip.Message, error) {
	now := n.cfg.Clock.Now()
	page, next, total, more := n.engine.Ledger().DigestPage(int(msg.Offset), creditPageAccounts, now, 0)
	data, err := json.Marshal(page)
	if err != nil {
		return nil, fmt.Errorf("encode credit digest: %w", err)
	}
	return &gossip.Message{
		Type:   gossip.MsgCreditResponse,
		TxData: [][]byte{data},
		Offset: uint64(next),
		Total:  uint64(total),
		More:   more,
	}, nil
}

// scopedCursorKey names the persisted sync cursor for one (peer, shard)
// pair; unscoped cursors keep using the bare peer name.
func scopedCursorKey(peer string, shard uint32) string {
	return fmt.Sprintf("%s#%d", peer, shard)
}

// syncShardFrom pulls one namespace from one peer over net, admitting
// in order — the scoped twin of syncFrom. The cursor walks the PEER'S
// per-shard attachment order and persists under "peer#shard", so a
// steady-state reconcile only pages the namespace's new tail.
func (n *FullNode) syncShardFrom(ctx context.Context, net gossip.Network, peer string, shard uint32) {
	if net == nil {
		return
	}
	key := scopedCursorKey(peer, shard)
	cursor := n.cursorFor(key)
	clean := true
	for page := 0; page < maxSyncPages; page++ {
		if ctx.Err() != nil {
			return
		}
		reply, err := net.Request(ctx, peer, gossip.Message{
			Type:   gossip.MsgSyncRequest,
			Have:   n.recentHave(),
			Offset: cursor,
			Shard:  uint64(shard),
			Scoped: true,
		})
		if err != nil || reply.Type != gossip.MsgSyncResponse {
			return
		}
		if reply.Total < cursor {
			// The peer's namespace shrank past our cursor (restart or
			// snapshot compaction): rewind and re-page.
			cursor = 0
			clean = true
			n.setCursor(key, 0)
			continue
		}
		n.counters.BackboneSyncPages.Inc()
		if n.admitGossipBatch(ctx, peer, reply.TxData, false, shard) > 0 {
			// Dirty page: keep the persisted cursor at it so the next
			// reconcile round re-offers it (see syncFrom).
			clean = false
		}
		if reply.Offset <= cursor {
			return // no forward progress: a confused peer must not spin us
		}
		cursor = reply.Offset
		if clean {
			n.setCursor(key, cursor)
		}
		if !reply.More {
			return
		}
	}
}

// pullCreditFrom pages the peer's full credit digest and merges it.
// Digest pages always restart from offset 0: the account set mutates
// between rounds (admissions, pruning), and merging is idempotent, so
// re-shipping a window of bounded pages is cheaper than tracking a
// cursor that can silently skip accounts sorted behind it.
func (n *FullNode) pullCreditFrom(ctx context.Context, net gossip.Network, peer string) core.MergeStats {
	var st core.MergeStats
	if net == nil {
		return st
	}
	for offset, page := uint64(0), 0; page < maxSyncPages; page++ {
		if ctx.Err() != nil {
			return st
		}
		reply, err := net.Request(ctx, peer, gossip.Message{
			Type:   gossip.MsgCreditRequest,
			Offset: offset,
		})
		if err != nil || reply.Type != gossip.MsgCreditResponse || len(reply.TxData) == 0 {
			return st
		}
		var digest core.CreditDigest
		if json.Unmarshal(reply.TxData[0], &digest) != nil {
			return st
		}
		s := n.engine.Ledger().Merge(digest)
		st.TxsMerged += s.TxsMerged
		st.EventsMerged += s.EventsMerged
		if !reply.More || reply.Offset <= offset {
			return st
		}
		offset = reply.Offset
	}
	return st
}

// Reconcile runs one round: for every backbone peer, pull the control
// namespace (scoped sync) and the credit digest; then pull credit
// digests from regional peers too. The regional pull matters because
// merged remote credit is ledger-only state — it rides no transaction,
// so the regional sync lanes never carry it; without the pull, credit
// a border gateway merged over the backbone would stay stuck there
// instead of reaching the region's other gateways. No-op when the node
// has neither fabric. Safe to call concurrently with admissions.
func (n *FullNode) Reconcile(ctx context.Context) {
	bb, reg := n.cfg.Backbone, n.cfg.Network
	if bb == nil && reg == nil {
		return
	}
	if bb != nil {
		for _, peer := range bb.Peers() {
			n.syncShardFrom(ctx, bb, peer, 0)
			st := n.pullCreditFrom(ctx, bb, peer)
			n.counters.CreditTxsMerged.Add(int64(st.TxsMerged))
			n.counters.CreditEventsMerged.Add(int64(st.EventsMerged))
		}
	}
	if reg != nil {
		for _, peer := range reg.Peers() {
			st := n.pullCreditFrom(ctx, reg, peer)
			n.counters.CreditTxsMerged.Add(int64(st.TxsMerged))
			n.counters.CreditEventsMerged.Add(int64(st.EventsMerged))
		}
	}
	n.lastReconcile.Store(n.cfg.Clock.Now().UnixNano())
}

// RunReconcileLoop reconciles on the configured cadence until ctx is
// cancelled. Gateways in a sharded deployment run it as a background
// goroutine next to the supervisor's compaction loop.
func (n *FullNode) RunReconcileLoop(ctx context.Context) {
	interval := n.cfg.ReconcileInterval
	if interval <= 0 {
		interval = defaultReconcileInterval
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			n.Reconcile(ctx)
		}
	}
}

// ReconcileLag reports the time since the last completed backbone
// round; ok is false when no round has completed yet (or the node has
// no backbone).
func (n *FullNode) ReconcileLag() (lag time.Duration, ok bool) {
	at := n.lastReconcile.Load()
	if at == 0 {
		return 0, false
	}
	return n.cfg.Clock.Now().Sub(time.Unix(0, at)), true
}
