package node_test

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
)

// region is one shard's gateway cluster in the two-tier test topology.
type region struct {
	shard    uint32
	gateways []*node.FullNode
	devices  []*node.LightNode
}

// shardIDSet collects one namespace's resident IDs as a set (attachment
// order legitimately differs between peers; convergence is on the set).
func shardIDSet(n *node.FullNode, shard uint32) map[hashutil.Hash]struct{} {
	ids := n.Tangle().OrderedShardIDs(shard, 0, 1<<30)
	set := make(map[hashutil.Hash]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return set
}

func sameIDSet(a, b map[hashutil.Hash]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if _, ok := b[id]; !ok {
			return false
		}
	}
	return true
}

// TestShardedRegionsConvergeWithoutLeakage drives the full two-tier
// topology: a manager on the backbone, two regions of two gateways
// each (shards 1 and 2) on their own regional buses, with one gateway
// per region also attached to the backbone. Light-node traffic
// interleaves across both gateways of both regions while regional
// paged syncs and backbone reconciliation rounds run in between. The
// properties:
//
//   - the control namespace (0) converges to the same set everywhere,
//     even though it grows past one sync page;
//   - each region's data namespace converges across that region's
//     gateways;
//   - no data namespace ever leaks across the backbone — region A
//     holds nothing of shard 2, region B nothing of shard 1, the
//     manager nothing of either;
//   - credit earned in region A is carried to region B's border
//     gateway by the digest exchange, and a full two-way exchange
//     makes the border gateways agree on it exactly.
func TestShardedRegionsConvergeWithoutLeakage(t *testing.T) {
	ctx := context.Background()
	backbone := gossip.NewBus()
	t.Cleanup(func() { _ = backbone.Close() })

	mgrKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mgrNet, err := backbone.Join("manager")
	if err != nil {
		t.Fatal(err)
	}
	mgrFull, err := node.NewFull(node.FullConfig{
		Key:        mgrKey,
		Role:       identity.RoleManager,
		ManagerPub: mgrKey.Public(),
		Credit:     testParams(),
		Network:    mgrNet,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := node.NewManager(mgrFull)
	if err != nil {
		t.Fatal(err)
	}

	regions := make([]*region, 2)
	for r := range regions {
		regions[r] = &region{shard: uint32(r + 1)}
	}
	for r, reg := range regions {
		bus := gossip.NewBus()
		t.Cleanup(func() { _ = bus.Close() })
		for g := 0; g < 2; g++ {
			key, err := identity.Generate()
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("gw-%d-%d", r, g)
			net, err := bus.Join(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := node.FullConfig{
				Key:        key,
				Role:       identity.RoleGateway,
				ManagerPub: mgrKey.Public(),
				Credit:     testParams(),
				Network:    net,
				ShardID:    reg.shard,
			}
			if g == 0 {
				// The region's border gateway also joins the backbone.
				bb, err := backbone.Join(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Backbone = bb
			}
			gw, err := node.NewFull(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reg.gateways = append(reg.gateways, gw)
			dev := newTestDevice(t, gw)
			mgr.AuthorizeDevice(dev.Key().Public(), dev.Key().BoxPublic())
			reg.devices = append(reg.devices, dev)
		}
	}
	if _, err := mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}

	quiesce := func() {
		if err := mgrFull.FlushBroadcast(ctx); err != nil {
			t.Fatal(err)
		}
		for _, reg := range regions {
			for _, gw := range reg.gateways {
				if err := gw.FlushBroadcast(ctx); err != nil {
					t.Fatal(err)
				}
			}
			reg.gateways[0].Reconcile(ctx)
			for _, gw := range reg.gateways {
				gw.SyncAll(ctx)
			}
		}
	}
	quiesce()

	// Interleave light-node traffic across both gateways of both
	// regions, with sync/reconcile rounds mixed in mid-stream.
	for i := 0; i < 24; i++ {
		for _, reg := range regions {
			dev := reg.devices[i%len(reg.devices)]
			if _, err := dev.PostReading(ctx, []byte(fmt.Sprintf("r%d-s%d", i, reg.shard))); err != nil {
				t.Fatalf("shard %d reading %d: %v", reg.shard, i, err)
			}
		}
		if i%6 == 5 {
			quiesce()
		}
	}

	// Grow the control namespace past one sync page (syncPageSize=256)
	// so backbone reconciliation demonstrably pages.
	for i := 0; i < 280; i++ {
		if _, err := mgr.PublishAuthorization(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Two quiesce rounds: the first ships state between border
	// gateways, the second settles anything the first round created.
	quiesce()
	quiesce()

	fulls := []*node.FullNode{mgrFull}
	for _, reg := range regions {
		fulls = append(fulls, reg.gateways...)
	}

	// Control namespace: identical everywhere, and larger than a page.
	ns0 := shardIDSet(mgrFull, 0)
	if len(ns0) <= 256 {
		t.Fatalf("control namespace has %d vertices; test must exceed one sync page", len(ns0))
	}
	for i, n := range fulls {
		if got := shardIDSet(n, 0); !sameIDSet(ns0, got) {
			t.Fatalf("node %d control namespace diverged: %d vs %d vertices", i, len(got), len(ns0))
		}
	}

	// Data namespaces: converged inside a region, absent outside it.
	for r, reg := range regions {
		want := shardIDSet(reg.gateways[0], reg.shard)
		if len(want) == 0 {
			t.Fatalf("region %d admitted no data traffic", r)
		}
		if !sameIDSet(want, shardIDSet(reg.gateways[1], reg.shard)) {
			t.Fatalf("region %d gateways diverged on shard %d", r, reg.shard)
		}
		other := regions[1-r].shard
		for g, gw := range reg.gateways {
			if n := gw.Tangle().ShardSize(other); n != 0 {
				t.Fatalf("region %d gateway %d leaked %d vertices of shard %d", r, g, n, other)
			}
		}
		if n := mgrFull.Tangle().ShardSize(reg.shard); n != 0 {
			t.Fatalf("manager leaked %d vertices of shard %d", n, reg.shard)
		}
	}

	// The backbone demonstrably paged the >1-page control namespace.
	for r, reg := range regions {
		if pages := reg.gateways[0].CountersView().BackboneSyncPages.Value(); pages < 2 {
			t.Fatalf("region %d border gateway pulled %d backbone pages, want >= 2", r, pages)
		}
	}

	// Roaming credit: region A's device earned all its credit in region
	// A, yet region B's border gateway now evaluates a positive CrP for
	// it, and the two border gateways agree exactly after the full
	// two-way exchange.
	now := time.Now()
	roamer := regions[0].devices[0].Key().Address()
	a := regions[0].gateways[0].Engine().Ledger().CreditOf(roamer, now)
	b := regions[1].gateways[0].Engine().Ledger().CreditOf(roamer, now)
	if b.CrP <= 0 {
		t.Fatalf("roamed credit not carried to region B: %+v", b)
	}
	if math.Abs(a.Cr-b.Cr) > 1e-9 || math.Abs(a.CrP-b.CrP) > 1e-9 || math.Abs(a.CrN-b.CrN) > 1e-9 {
		t.Fatalf("border gateways disagree on roamed credit: %+v vs %+v", a, b)
	}
}
