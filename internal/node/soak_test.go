package node_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/node"
)

// TestSoakFiveNodeConvergence is the deterministic multi-node soak
// harness: five full nodes (manager + four gateways) on an in-memory
// bus with injected delivery latency, ten devices submitting hundreds
// of readings from concurrent goroutines, and a mid-run partition of
// one gateway. After the partition heals and sync runs to fixpoint,
// every node must hold the identical tangle and derive the identical
// credit state for every device.
//
// Determinism: the deployment shares one seeded virtual clock (all
// transactions in a phase carry the same timestamp, so credit records
// are order-independent), phases are separated by WaitGroup barriers
// rather than wall-clock sleeps, and convergence is reached by syncing
// to fixpoint rather than waiting.
func TestSoakFiveNodeConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("soak harness mines hundreds of proofs of work")
	}
	const (
		gatewayCount = 4  // plus the manager: five full nodes
		deviceCount  = 10 // two per full node
		perPhase     = 10 // submissions per device per phase
		phases       = 3  // 10 devices × 10 × 3 = 300 submissions
	)
	ctx := context.Background()
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	dep := newMultiNode(t, gatewayCount, clk)
	dep.bus.SetLatency(50 * time.Microsecond)

	fulls := append([]*node.FullNode{dep.mgr.Node()}, dep.gateways...)

	// Two devices per full node, all authorized up front.
	devices := make([]*node.LightNode, deviceCount)
	for i := range devices {
		devices[i] = newTestDevice(t, fulls[i%len(fulls)])
		dep.mgr.AuthorizeDevice(devices[i].Key().Public(), devices[i].Key().BoxPublic())
	}
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}

	// runPhase drives every device concurrently and joins at a barrier.
	runPhase := func(phase int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, deviceCount)
		for d, dev := range devices {
			wg.Add(1)
			go func(d int, dev *node.LightNode) {
				defer wg.Done()
				for i := 0; i < perPhase; i++ {
					payload := []byte(fmt.Sprintf("soak p%d d%d i%d", phase, d, i))
					if _, err := dev.PostReading(ctx, payload); err != nil {
						errs <- fmt.Errorf("phase %d device %d: %w", phase, d, err)
						return
					}
				}
			}(d, dev)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	runPhase(0)
	clk.Advance(time.Second)

	// Mid-run partition: gw-2 is cut off from everyone. Its own devices
	// keep submitting (local admission stays up); fan-out to and from it
	// fails or drops until the partition heals.
	dep.bus.Isolate("gw-2")
	runPhase(1)
	clk.Advance(time.Second)
	dep.bus.Restore("gw-2")

	runPhase(2)
	clk.Advance(time.Second)

	// Drain every async pipeline, then pull-sync to fixpoint: repeated
	// rounds until all five nodes expose identical transaction sets.
	dep.flush(t)
	idSet := func(n *node.FullNode) map[string]bool {
		set := make(map[string]bool)
		for _, tr := range n.Tangle().Export() {
			set[tr.ID().String()] = true
		}
		return set
	}
	equalSets := func(a, b map[string]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for id := range a {
			if !b[id] {
				return false
			}
		}
		return true
	}
	converged := false
	for round := 0; round < 20 && !converged; round++ {
		for _, n := range fulls {
			n.SyncAll(ctx)
		}
		converged = true
		ref := idSet(fulls[0])
		for _, n := range fulls[1:] {
			if !equalSets(ref, idSet(n)) {
				converged = false
				break
			}
		}
	}
	if !converged {
		for i, n := range fulls {
			t.Logf("node %d tangle size %d", i, n.Tangle().Size())
		}
		t.Fatal("nodes did not converge to identical tangles")
	}

	// Every submission made it into the shared ledger (none lost to the
	// partition, the async pipeline, or slow-peer drops).
	wantTxs := deviceCount * perPhase * phases
	ref := fulls[0].Tangle().Size()
	if ref < wantTxs {
		t.Errorf("converged tangle has %d transactions, want ≥ %d", ref, wantTxs)
	}

	// Credit convergence: every node independently derives the same
	// credit state — and therefore the same PoW difficulty — for every
	// device ("the credit value cannot be forged or tampered").
	now := clk.Now()
	for d, dev := range devices {
		refCredit := fmt.Sprintf("%+v", fulls[0].Engine().CreditOf(dev.Address(), now))
		refDiff := fulls[0].DifficultyFor(dev.Address())
		for i, n := range fulls[1:] {
			if got := fmt.Sprintf("%+v", n.Engine().CreditOf(dev.Address(), now)); got != refCredit {
				t.Errorf("device %d: node %d credit %s != %s", d, i+1, got, refCredit)
			}
			if got := n.DifficultyFor(dev.Address()); got != refDiff {
				t.Errorf("device %d: node %d difficulty %d != %d", d, i+1, got, refDiff)
			}
		}
	}
}
