package node

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// Supervisor owns a FullNode's lifecycle: ordered start/stop, a
// watchdog that restarts a node whose journal poisoned or whose
// transport died (with capped exponential backoff), periodic state +
// journal compaction, and the health snapshot behind the RPC server's
// /healthz and /readyz endpoints.
//
// The supervised unit is (network attachment + node + journal),
// constructed fresh on every (re)start by the Build closure — a
// restart is a real restart, re-replaying the durable journal into a
// fresh ledger, not a reuse of possibly-diverged in-memory state.
//
// Ordering invariants:
//
//   - Graceful stop: readiness drops first (load balancers stop
//     routing), the broadcast pipeline flushes (in-flight admissions
//     reach peers), the pipeline closes, the network detaches, the
//     journal closes last (everything admitted is journaled by then).
//   - Crash stop (Kill): the network dies first — exactly what a
//     machine loss looks like to peers — then the pipeline and journal
//     are abandoned without flushing.
type Supervisor struct {
	cfg SupervisorConfig
	fs  chaos.FS

	mu       sync.Mutex
	node     *FullNode
	state    SupervisorState
	replayed int
	stopCh   chan struct{} // closes when Stop/Kill tears the loops down

	ready    atomic.Bool
	restarts atomic.Int64

	wg sync.WaitGroup // watchdog + compaction loops
}

// SupervisorConfig configures a Supervisor.
type SupervisorConfig struct {
	// Build constructs the node and its network attachment. Called on
	// every (re)start; it must return a fresh node each time (the
	// previous one's network has been closed).
	Build func() (*FullNode, error)

	// PersistPath enables journaling at this path on FS (chaos.OS()
	// when FS is nil). Empty runs the node memory-only — the watchdog
	// then only guards the transport.
	PersistPath string
	FS          chaos.FS

	// WatchInterval is the watchdog probe period; zero disables the
	// watchdog (Start/Stop/Kill still work).
	WatchInterval time.Duration
	// BackoffBase/BackoffMax shape the restart backoff: the first
	// restart waits BackoffBase, doubling per consecutive failure up to
	// BackoffMax. Defaults: 100ms / 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxRestarts caps watchdog restarts; exceeding it parks the
	// supervisor in StateFailed (operators page). Zero means unlimited.
	MaxRestarts int

	// CompactEvery, when positive, runs Compact(CompactKeep) +
	// CompactJournal on that period.
	CompactEvery time.Duration
	CompactKeep  time.Duration
}

// SupervisorState enumerates the lifecycle states.
type SupervisorState int32

const (
	StateStopped SupervisorState = iota
	StateRunning
	StateDraining
	StateFailed
)

// String implements fmt.Stringer.
func (s SupervisorState) String() string {
	switch s {
	case StateStopped:
		return "stopped"
	case StateRunning:
		return "running"
	case StateDraining:
		return "draining"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ComponentHealth is one subsystem's verdict in a health snapshot.
type ComponentHealth struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Health is the supervisor's observable state, served by /healthz.
type Health struct {
	State    string `json:"state"`
	Ready    bool   `json:"ready"`
	Restarts int64  `json:"restarts"`
	// Replayed is the journal record count recovered at the last start.
	Replayed  int             `json:"replayed"`
	Journal   ComponentHealth `json:"journal"`
	Transport ComponentHealth `json:"transport"`
	Pipeline  ComponentHealth `json:"pipeline"`
	// Memory is the node's footprint: the quantities the hot/cold split
	// keeps O(frontier) (zero value while the node is down).
	Memory MemoryStats `json:"memory"`
}

// ErrSupervisorRunning reports a Start on a running supervisor.
var ErrSupervisorRunning = errors.New("supervisor already running")

// NewSupervisor validates cfg and returns an idle supervisor; call
// Start to bring the node up.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Build == nil {
		return nil, errors.New("supervisor requires a Build closure")
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	fs := cfg.FS
	if fs == nil {
		fs = chaos.OS()
	}
	return &Supervisor{cfg: cfg, fs: fs, state: StateStopped}, nil
}

// Start builds the node, replays the journal, marks the supervisor
// ready, and launches the watchdog and compaction loops.
func (s *Supervisor) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.node != nil {
		return ErrSupervisorRunning
	}
	if err := s.startLocked(); err != nil {
		return err
	}
	s.stopCh = make(chan struct{})
	if s.cfg.WatchInterval > 0 {
		s.wg.Add(1)
		go s.watch(s.stopCh)
	}
	if s.cfg.CompactEvery > 0 {
		s.wg.Add(1)
		go s.compactLoop(s.stopCh)
	}
	return nil
}

// startLocked builds and wires one supervised unit. Caller holds mu.
func (s *Supervisor) startLocked() error {
	n, err := s.cfg.Build()
	if err != nil {
		return fmt.Errorf("build supervised node: %w", err)
	}
	if s.cfg.PersistPath != "" {
		replayed, err := n.EnablePersistenceFS(s.fs, s.cfg.PersistPath)
		if err != nil {
			_ = n.Close()
			if net := n.Network(); net != nil {
				_ = net.Close()
			}
			if bb := n.Backbone(); bb != nil {
				_ = bb.Close()
			}
			return fmt.Errorf("supervised persistence: %w", err)
		}
		s.replayed = replayed
	}
	s.node = n
	s.state = StateRunning
	s.ready.Store(true)
	return nil
}

// teardownLocked dismantles the supervised unit. Caller holds mu.
func (s *Supervisor) teardownLocked(ctx context.Context, graceful bool) {
	n := s.node
	if n == nil {
		return
	}
	s.ready.Store(false)
	if graceful {
		s.state = StateDraining
		// Flush before close: every admission accepted while we were
		// ready reaches the peers that can still hear us.
		_ = n.FlushBroadcast(ctx)
		_ = n.Close()
		if net := n.Network(); net != nil {
			_ = net.Close()
		}
	} else {
		// Crash: the network vanishes first (peers see a dead machine),
		// nothing flushes.
		if net := n.Network(); net != nil {
			_ = net.Close()
		}
		_ = n.Close()
	}
	if bb := n.Backbone(); bb != nil {
		_ = bb.Close()
	}
	if s.cfg.PersistPath != "" {
		_ = n.ClosePersistence()
	}
	s.node = nil
}

// Stop gracefully drains and stops the node and the supervisor loops.
// ctx bounds the drain. Safe to call when already stopped.
func (s *Supervisor) Stop(ctx context.Context) error {
	s.mu.Lock()
	if s.stopCh != nil {
		close(s.stopCh)
		s.stopCh = nil
	}
	s.teardownLocked(ctx, true)
	s.state = StateStopped
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Kill simulates a crash: the node is torn down abruptly — no drain,
// no flush — and the supervisor loops stop. The journal keeps exactly
// what Append had already synced. The chaos soak uses this to model
// machine loss.
func (s *Supervisor) Kill() {
	s.mu.Lock()
	if s.stopCh != nil {
		close(s.stopCh)
		s.stopCh = nil
	}
	s.teardownLocked(context.Background(), false)
	s.state = StateStopped
	s.mu.Unlock()
	s.wg.Wait()
}

// Node returns the currently supervised node (nil when down). Callers
// holding the pointer across a restart see the old, closed node; the
// RPC layer re-resolves per request via WithNodeSource.
func (s *Supervisor) Node() *FullNode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node
}

// State returns the lifecycle state.
func (s *Supervisor) State() SupervisorState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Ready reports the readiness gate: true only while the node is up and
// not draining.
func (s *Supervisor) Ready() bool { return s.ready.Load() }

// Restarts returns the number of watchdog-initiated restarts.
func (s *Supervisor) Restarts() int64 { return s.restarts.Load() }

// Health returns the health snapshot /healthz serves.
func (s *Supervisor) Health() Health {
	s.mu.Lock()
	n := s.node
	state := s.state
	replayed := s.replayed
	s.mu.Unlock()

	h := Health{
		State:    state.String(),
		Ready:    s.ready.Load(),
		Restarts: s.restarts.Load(),
		Replayed: replayed,
	}
	if n == nil {
		down := ComponentHealth{OK: false, Detail: "node down"}
		h.Journal, h.Transport, h.Pipeline = down, down, down
		return h
	}
	if s.cfg.PersistPath == "" {
		h.Journal = ComponentHealth{OK: true, Detail: "memory-only"}
	} else if n.JournalHealthy() {
		_, gen, _ := n.JournalStats()
		h.Journal = ComponentHealth{OK: true, Detail: fmt.Sprintf("generation %d", gen)}
	} else {
		detail := "journal unhealthy"
		if err := n.JournalError(); err != nil {
			detail = fmt.Sprintf("journal poisoned: %v", err)
		}
		h.Journal = ComponentHealth{OK: false, Detail: detail}
	}
	if n.TransportHealthy() {
		h.Transport = ComponentHealth{OK: true}
	} else {
		h.Transport = ComponentHealth{OK: false, Detail: "broadcast pipeline closed"}
	}
	if n.PipelineSaturated() {
		h.Pipeline = ComponentHealth{OK: false, Detail: fmt.Sprintf(
			"intake queue saturated (%d)", n.Pipeline().QueueDepth.Value())}
	} else {
		h.Pipeline = ComponentHealth{OK: true, Detail: fmt.Sprintf(
			"queue depth %d", n.Pipeline().QueueDepth.Value())}
	}
	h.Memory = n.MemoryStats()
	return h
}

// ErrNodeDown reports a Gateway call while the supervised node is
// down (crashed, restarting, or stopped).
var ErrNodeDown = errors.New("supervised node is down")

// Gateway returns a node.Gateway view that re-resolves the supervised
// node on every call, so light-node and RPC bindings survive watchdog
// restarts instead of holding a pointer to a dead instance.
func (s *Supervisor) Gateway() Gateway { return supervisedGateway{s} }

type supervisedGateway struct{ s *Supervisor }

var _ Gateway = supervisedGateway{}

func (g supervisedGateway) TipsForApproval() (trunk, branch hashutil.Hash, err error) {
	n := g.s.Node()
	if n == nil {
		return hashutil.Hash{}, hashutil.Hash{}, ErrNodeDown
	}
	return n.TipsForApproval()
}

func (g supervisedGateway) DifficultyFor(addr identity.Address) int {
	n := g.s.Node()
	if n == nil {
		return 0
	}
	return n.DifficultyFor(addr)
}

func (g supervisedGateway) GetTransaction(id hashutil.Hash) (*txn.Transaction, error) {
	n := g.s.Node()
	if n == nil {
		return nil, ErrNodeDown
	}
	return n.GetTransaction(id)
}

func (g supervisedGateway) Submit(ctx context.Context, t *txn.Transaction) (tangle.Info, error) {
	n := g.s.Node()
	if n == nil {
		return tangle.Info{}, ErrNodeDown
	}
	return n.Submit(ctx, t)
}

func (g supervisedGateway) TransactionsByKind(kind txn.Kind, offset int) ([]*txn.Transaction, error) {
	n := g.s.Node()
	if n == nil {
		return nil, ErrNodeDown
	}
	return n.TransactionsByKind(kind, offset)
}

// healthyProbe is the watchdog's restart predicate: restart when the
// journal poisoned (persistent nodes) or the transport died under us.
// Pipeline saturation is load, not failure — it sheds through /readyz,
// not through a restart.
func (s *Supervisor) healthyProbe(n *FullNode) bool {
	if s.cfg.PersistPath != "" && !n.JournalHealthy() {
		return false
	}
	return n.TransportHealthy()
}

// watch probes the supervised node every WatchInterval and restarts it
// on failure with capped exponential backoff.
func (s *Supervisor) watch(stopCh chan struct{}) {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.WatchInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stopCh:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		n, state := s.node, s.state
		s.mu.Unlock()
		if state != StateRunning || n == nil || s.healthyProbe(n) {
			continue
		}
		if !s.restart(stopCh) {
			return
		}
	}
}

// restart tears the sick node down and brings a fresh one up, backing
// off between failed attempts. It returns false when the supervisor
// should stop trying (parked failed, or stopCh closed).
func (s *Supervisor) restart(stopCh chan struct{}) bool {
	backoff := s.cfg.BackoffBase
	for {
		count := s.restarts.Add(1)
		if s.cfg.MaxRestarts > 0 && count > int64(s.cfg.MaxRestarts) {
			s.restarts.Add(-1) // the cap-refusal is not a restart
			s.mu.Lock()
			s.teardownLocked(context.Background(), false)
			s.state = StateFailed
			s.mu.Unlock()
			return false
		}
		s.mu.Lock()
		// Teardown is non-graceful: a poisoned journal's pipeline may
		// hold unjournaled admissions, but flushing them to peers would
		// advertise state this node loses on replay.
		s.teardownLocked(context.Background(), false)
		err := s.startLocked()
		s.mu.Unlock()
		if err == nil {
			return true
		}
		select {
		case <-stopCh:
			return false
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > s.cfg.BackoffMax {
			backoff = s.cfg.BackoffMax
		}
	}
}

// compactLoop periodically snapshots in-memory state and rewrites the
// journal to match.
func (s *Supervisor) compactLoop(stopCh chan struct{}) {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.CompactEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stopCh:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		n, state := s.node, s.state
		s.mu.Unlock()
		if state != StateRunning || n == nil {
			continue
		}
		n.Compact(s.cfg.CompactKeep)
		if s.cfg.PersistPath != "" {
			_, _ = n.CompactJournal()
		}
	}
}
