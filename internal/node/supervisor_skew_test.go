package node_test

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
)

// TestSupervisorWatchdogUnderClockSkew runs two supervised gateways
// whose clocks drift ±30s off the manager's, poisons one journal so
// the watchdog must restart it, and asserts the restarted node
// reconverges with the skewed cluster: identical tangles on every
// node and incremental credit in parity with the RescanCredit oracle.
// The watchdog itself runs on real time (WatchInterval is a wall-clock
// ticker), so a skewed node clock must not break restart/backoff.
func TestSupervisorWatchdogUnderClockSkew(t *testing.T) {
	ctx := context.Background()
	base := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	dep := newMultiNode(t, 0, base)

	const skew = 30 * time.Second
	type skewedGateway struct {
		sup *node.Supervisor
		fs  *chaos.MemFS
		clk *chaos.SkewClock
	}
	var gws []skewedGateway
	for i, offset := range []time.Duration{skew, -skew} {
		fs := chaos.NewMemFS(int64(100 + i))
		clk := chaos.NewSkewClock(base, 0, int64(200+i))
		clk.Jump(offset)
		if got := clk.Offset(); got != offset {
			t.Fatalf("gateway %d offset = %v, want %v", i, got, offset)
		}
		name := fmt.Sprintf("gw-skew-%d", i)
		gwKey, err := identity.Generate()
		if err != nil {
			t.Fatal(err)
		}
		sup, err := node.NewSupervisor(node.SupervisorConfig{
			Build: func() (*node.FullNode, error) {
				net, err := dep.bus.Join(name)
				if err != nil {
					return nil, err
				}
				n, err := node.NewFull(node.FullConfig{
					Key:        gwKey,
					Role:       identity.RoleGateway,
					ManagerPub: dep.mgrKey.Public(),
					Credit:     testParams(),
					Clock:      clk,
					Network:    net,
				})
				if err != nil {
					net.Close()
					return nil, err
				}
				return n, nil
			},
			PersistPath:   name + ".journal",
			FS:            fs,
			WatchInterval: 5 * time.Millisecond,
			BackoffBase:   time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sup.Start(); err != nil {
			t.Fatal(err)
		}
		defer sup.Stop(ctx)
		gws = append(gws, skewedGateway{sup: sup, fs: fs, clk: clk})
	}

	// One device per skewed gateway, plus traffic before the fault.
	var devices []*node.LightNode
	for _, gw := range gws {
		device := newTestDevice(t, gw.sup.Gateway())
		dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
		devices = append(devices, device)
	}
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if err := dep.mgr.Node().FlushBroadcast(ctx); err != nil {
		t.Fatal(err)
	}
	post := func(tag string) {
		t.Helper()
		for i, device := range devices {
			if _, err := device.PostReading(ctx, []byte(fmt.Sprintf("%s d%d", tag, i))); err != nil {
				t.Fatalf("%s device %d: %v", tag, i, err)
			}
		}
		base.Advance(time.Second)
	}
	post("pre-fault")

	// Poison the fast gateway's journal: the next append's fsync fails,
	// the node goes unhealthy, and the real-time watchdog must restart
	// it even though the node's own clock runs 30s in the future.
	gws[0].fs.InjectSyncError(nil)
	if _, err := devices[0].PostReading(ctx, []byte("poisoning")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if gws[0].sup.Restarts() > 0 && gws[0].sup.Ready() {
			if n := gws[0].sup.Node(); n != nil && n.JournalHealthy() {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never restarted the skewed gateway: restarts=%d health=%+v",
				gws[0].sup.Restarts(), gws[0].sup.Health())
		}
		time.Sleep(time.Millisecond)
	}
	if gws[0].sup.State() != node.StateRunning {
		t.Fatalf("restarted gateway state = %v, want running", gws[0].sup.State())
	}
	if gws[1].sup.Restarts() != 0 {
		t.Fatalf("healthy gateway restarted %d times", gws[1].sup.Restarts())
	}

	// Traffic after the restart, then pull-sync the cluster to a
	// fixpoint: the replayed+restarted node and the −30s node must both
	// hold the same tangle as the manager.
	post("post-restart")
	fulls := []*node.FullNode{dep.mgr.Node()}
	for _, gw := range gws {
		fulls = append(fulls, gw.sup.Node())
	}
	for _, n := range fulls {
		if err := n.FlushBroadcast(ctx); err != nil {
			t.Fatal(err)
		}
	}
	converged := false
	for round := 0; round < 20 && !converged; round++ {
		for _, n := range fulls {
			n.SyncAll(ctx)
		}
		converged = true
		ref := tangleIDs(fulls[0])
		for _, n := range fulls[1:] {
			got := tangleIDs(n)
			if len(got) != len(ref) {
				converged = false
				break
			}
			for id := range ref {
				if !got[id] {
					converged = false
					break
				}
			}
		}
	}
	if !converged {
		t.Fatal("skewed cluster never reconverged after the watchdog restart")
	}

	// Every node's incremental credit matches its rescan oracle at the
	// unskewed base instant — in the past for the +30s node (rewind
	// path) and the future for the −30s node.
	now := base.Now()
	const eps = 1e-9
	for i, n := range fulls {
		ledger := n.Engine().Ledger()
		for _, addr := range ledger.Nodes() {
			oracle := ledger.RescanCredit(addr, now)
			got := ledger.CreditOf(addr, now)
			for _, pair := range [][2]float64{
				{got.CrP, oracle.CrP}, {got.CrN, oracle.CrN}, {got.Cr, oracle.Cr},
			} {
				if rel := math.Abs(pair[0]-pair[1]) / (1 + math.Abs(pair[0]) + math.Abs(pair[1])); rel > eps {
					t.Fatalf("node %d credit parity broken for %s: incremental %+v vs oracle %+v",
						i, addr, got, oracle)
				}
			}
		}
	}
}

func tangleIDs(n *node.FullNode) map[string]bool {
	set := make(map[string]bool)
	for _, tr := range n.Tangle().Export() {
		set[tr.ID().String()] = true
	}
	return set
}
