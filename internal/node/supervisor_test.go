package node_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
)

// supervisedGatewayConfig builds a Supervisor for one gateway that
// re-joins bus under name on every (re)start and journals to fs.
func supervisedGatewayConfig(t *testing.T, bus *gossip.Bus, name string, mgrPub identity.PublicKey, fs chaos.FS) node.SupervisorConfig {
	t.Helper()
	gwKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return node.SupervisorConfig{
		Build: func() (*node.FullNode, error) {
			net, err := bus.Join(name)
			if err != nil {
				return nil, err
			}
			n, err := node.NewFull(node.FullConfig{
				Key:        gwKey,
				Role:       identity.RoleGateway,
				ManagerPub: mgrPub,
				Credit:     testParams(),
				Network:    net,
			})
			if err != nil {
				net.Close()
				return nil, err
			}
			return n, nil
		},
		PersistPath: name + ".journal",
		FS:          fs,
	}
}

func TestSupervisorLifecycleAndDrain(t *testing.T) {
	ctx := context.Background()
	dep := newMultiNode(t, 1, nil)
	fs := chaos.NewMemFS(1)
	cfg := supervisedGatewayConfig(t, dep.bus, "gw-sup", dep.mgrKey.Public(), fs)
	sup, err := node.NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sup.Ready() || sup.State() != node.StateStopped {
		t.Fatal("idle supervisor claims readiness")
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); !errors.Is(err, node.ErrSupervisorRunning) {
		t.Fatalf("double start err = %v", err)
	}
	if !sup.Ready() || sup.State() != node.StateRunning {
		t.Fatalf("state=%v ready=%v after start", sup.State(), sup.Ready())
	}
	h := sup.Health()
	if !h.Journal.OK || !h.Transport.OK || !h.Pipeline.OK || !h.Ready {
		t.Fatalf("health after start: %+v", h)
	}

	// Submissions through the supervisor's gateway delegate land and
	// are journaled.
	device := newTestDevice(t, sup.Gateway())
	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if err := dep.mgr.Node().FlushBroadcast(ctx); err != nil {
		t.Fatal(err)
	}
	const readings = 5
	for i := 0; i < readings; i++ {
		if _, err := device.PostReading(ctx, []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("reading %d: %v", i, err)
		}
	}

	if err := sup.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if sup.Ready() || sup.State() != node.StateStopped || sup.Node() != nil {
		t.Fatal("supervisor still live after stop")
	}
	if _, err := device.PostReading(ctx, []byte("late")); !errors.Is(err, node.ErrNodeDown) {
		t.Fatalf("reading against stopped supervisor err = %v", err)
	}

	// Restart replays the journal: the readings (and the authorization
	// the gateway heard) are back.
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop(ctx)
	if h := sup.Health(); h.Replayed < readings {
		t.Fatalf("replayed %d records, want ≥ %d", h.Replayed, readings)
	}
	if _, err := device.PostReading(ctx, []byte("after-restart")); err != nil {
		t.Fatalf("reading after restart: %v", err)
	}
}

func TestSupervisorWatchdogRestartsPoisonedJournal(t *testing.T) {
	ctx := context.Background()
	dep := newMultiNode(t, 1, nil)
	fs := chaos.NewMemFS(2)
	cfg := supervisedGatewayConfig(t, dep.bus, "gw-dog", dep.mgrKey.Public(), fs)
	cfg.WatchInterval = 5 * time.Millisecond
	cfg.BackoffBase = time.Millisecond
	sup, err := node.NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop(ctx)

	device := newTestDevice(t, sup.Gateway())
	dep.mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
	if _, err := dep.mgr.PublishAuthorization(ctx); err != nil {
		t.Fatal(err)
	}
	if err := dep.mgr.Node().FlushBroadcast(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := device.PostReading(ctx, []byte("pre-fault")); err != nil {
		t.Fatal(err)
	}

	// Poison the journal: the next append's fsync fails. Admission
	// still succeeds (journal errors don't fail the ledger) but the
	// node is now unhealthy, and the watchdog must notice and restart.
	fs.InjectSyncError(nil)
	if _, err := device.PostReading(ctx, []byte("poisoning")); err != nil {
		t.Fatal(err)
	}
	if sup.Node().JournalHealthy() {
		t.Fatal("journal still healthy after injected sync failure")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if sup.Restarts() > 0 && sup.Ready() {
			if n := sup.Node(); n != nil && n.JournalHealthy() {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never restarted: restarts=%d health=%+v", sup.Restarts(), sup.Health())
		}
		time.Sleep(time.Millisecond)
	}

	// The restarted node replays the durable prefix and serves traffic.
	if _, err := device.PostReading(ctx, []byte("post-restart")); err != nil {
		t.Fatalf("reading after watchdog restart: %v", err)
	}
}

func TestSupervisorMaxRestartsParksFailed(t *testing.T) {
	ctx := context.Background()
	dep := newMultiNode(t, 1, nil)
	fs := chaos.NewMemFS(3)
	cfg := supervisedGatewayConfig(t, dep.bus, "gw-park", dep.mgrKey.Public(), fs)
	inner := cfg.Build
	started := false
	cfg.Build = func() (*node.FullNode, error) {
		if started {
			return nil, errors.New("scripted build failure")
		}
		started = true
		return inner()
	}
	cfg.WatchInterval = 5 * time.Millisecond
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 2 * time.Millisecond
	cfg.MaxRestarts = 3
	sup, err := node.NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop(ctx)

	// Kill the transport out from under the supervisor: unhealthy, and
	// every rebuild fails.
	sup.Node().Close()

	deadline := time.Now().Add(5 * time.Second)
	for sup.State() != node.StateFailed {
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never parked: state=%v restarts=%d", sup.State(), sup.Restarts())
		}
		time.Sleep(time.Millisecond)
	}
	if sup.Ready() {
		t.Fatal("failed supervisor claims readiness")
	}
	if h := sup.Health(); h.State != "failed" || h.Journal.OK {
		t.Fatalf("failed health = %+v", h)
	}
}

// TestSupervisorGoroutineLeak starts a supervised node on a real TCP
// transport, soaks it briefly, stops it, and asserts the goroutine
// count returns to baseline — pinning FullNode/Supervisor/transport
// Close ordering under -race.
func TestSupervisorGoroutineLeak(t *testing.T) {
	ctx := context.Background()
	mgrKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	run := func(round int) {
		fs := chaos.NewMemFS(int64(round))
		peer, err := gossip.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer peer.Close()
		peer.SetHandler(gossip.HandlerFunc(func(string, gossip.Message) (*gossip.Message, error) {
			return &gossip.Message{}, nil
		}))

		sup, err := node.NewSupervisor(node.SupervisorConfig{
			Build: func() (*node.FullNode, error) {
				net, err := gossip.ListenTCP("127.0.0.1:0")
				if err != nil {
					return nil, err
				}
				net.AddPeer(peer.Self())
				n, err := node.NewFull(node.FullConfig{
					Key:        mgrKey,
					Role:       identity.RoleManager,
					ManagerPub: mgrKey.Public(),
					Credit:     testParams(),
					Network:    net,
				})
				if err != nil {
					net.Close()
					return nil, err
				}
				return n, nil
			},
			PersistPath:   "leak.journal",
			FS:            fs,
			WatchInterval: 2 * time.Millisecond,
			CompactEvery:  3 * time.Millisecond,
			CompactKeep:   time.Hour,
			BackoffBase:   time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sup.Start(); err != nil {
			t.Fatal(err)
		}
		mgr, err := node.NewManager(sup.Node())
		if err != nil {
			t.Fatal(err)
		}
		device := newTestDevice(t, sup.Gateway())
		mgr.AuthorizeDevice(device.Key().Public(), device.Key().BoxPublic())
		if _, err := mgr.PublishAuthorization(ctx); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := device.PostReading(ctx, []byte(fmt.Sprintf("soak-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := sup.Stop(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		run(round)
	}

	// Goroutines wind down asynchronously after Close returns; poll
	// briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 { // slack for runtime/test helpers
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			stacks := string(buf[:n])
			// Trim to the interesting part for the failure message.
			if i := strings.Index(stacks, "\n\n"); i > 0 && len(stacks) > 4000 {
				stacks = stacks[:4000]
			}
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, now, stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
