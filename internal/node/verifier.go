package node

import (
	"container/list"
	"runtime"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/authz"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

// verifiedCacheSize bounds the LRU of recently verified transaction
// IDs. Gossip is redundant by design — the same transaction arrives
// from several peers and again in sync pages — and signature + PoW
// verification is the admitted hot cost of the inbound path, so a hit
// here skips the entire ECDSA check for an echo.
const verifiedCacheSize = 8192

// verifiedCache is a small mutex-guarded LRU set of transaction IDs
// whose structural, signature and relay-PoW checks already passed on
// this node. Membership does NOT cache an authorization verdict: the
// evidence-at-admission gate is re-evaluated at the attach stage on
// every attempt (it is monotone — a cached Authorized can only stay
// authorized — but an Unresolved entry must keep retrying as lists
// arrive).
type verifiedCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently touched; values are hashutil.Hash
	index map[hashutil.Hash]*list.Element
}

func newVerifiedCache(capacity int) *verifiedCache {
	return &verifiedCache{
		cap:   capacity,
		order: list.New(),
		index: make(map[hashutil.Hash]*list.Element, capacity),
	}
}

// Contains reports (and refreshes) membership.
func (c *verifiedCache) Contains(id hashutil.Hash) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[id]
	if ok {
		c.order.MoveToFront(el)
	}
	return ok
}

// Add inserts id, evicting the least recently touched entry at capacity.
func (c *verifiedCache) Add(id hashutil.Hash) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[id]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.index[id] = c.order.PushFront(id)
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.index, last.Value.(hashutil.Hash))
	}
}

// newVerifySem sizes the inbound verification pool: verification is
// CPU-bound (ECDSA + hashing), so the bound is the core count, shared
// across every concurrently arriving gossip batch.
func newVerifySem() chan struct{} {
	return make(chan struct{}, runtime.GOMAXPROCS(0))
}

// verifyCached runs the full inbound verification for one transaction,
// short-circuiting through the verified-ID LRU on gossip echoes. It
// performs exactly the batch path's checks in the same order —
// precheckInbound (structure, evidence gate, relay PoW floor) then the
// Ed25519 signature — so the two paths count rejections identically.
func (n *FullNode) verifyCached(t *txn.Transaction, now time.Time) error {
	id := t.ID()
	if n.verified.Contains(id) {
		n.pipeline.VerifyCacheHits.Inc()
		return nil
	}
	start := time.Now()
	err := n.precheckInbound(t)
	if err == nil {
		if serr := identity.Verify(t.Issuer, t.SigningBytes(), t.Signature); serr != nil {
			n.counters.Rejected.Inc()
			err = serr
		}
	}
	n.pipeline.VerifyLatency.Observe(time.Since(start))
	if err == nil {
		n.verified.Add(id)
	}
	return err
}

// batchVerifyChunk caps how many signatures one VerifyBatch call
// settles. The shared-ladder saving grows with batch size but so does
// the cost of a fallback (one bad signature re-verifies the whole
// chunk per-signature), and chunking is also what spreads a large
// inbound batch across the verification pool's cores.
const batchVerifyChunk = 64

// verifyInboundBatch verifies a run of transactions and returns the
// survivors in input order. The serialized attach that follows stays
// out of this stage, so the expensive checks of independent
// transactions overlap across cores — and across concurrently arriving
// batches from different peers.
//
// The work runs in two stages. Stage one performs the cheap
// per-transaction checks inline: verified-LRU lookup, structure,
// authorization, and the relay PoW floor — all allocation-free against
// the decoded transaction's cached encoding. Stage two settles every
// surviving signature with chunked identity.VerifyBatch calls on the
// verification pool: a chunk of k costs one shared doubling ladder
// instead of k independent double-scalar multiplications, and a failed
// chunk falls back to per-signature attribution so offenders are
// rejected exactly as the sequential path would.
//
// DisableBatchVerify restores the old one-verification-per-transaction
// path; the latency harness uses it as the measured baseline.
func (n *FullNode) verifyInboundBatch(txs []*txn.Transaction, now time.Time) []*txn.Transaction {
	switch len(txs) {
	case 0:
		return nil
	case 1:
		if n.verifyCached(txs[0], now) != nil {
			return nil
		}
		return txs
	}
	if n.cfg.DisableBatchVerify {
		return n.verifyInboundEach(txs, now)
	}

	ok := make([]bool, len(txs))
	pending := make([]int, 0, len(txs)) // indices awaiting signature settlement
	for i, t := range txs {
		if n.verified.Contains(t.ID()) {
			n.pipeline.VerifyCacheHits.Inc()
			ok[i] = true
			continue
		}
		if n.precheckInbound(t) == nil {
			pending = append(pending, i)
		}
	}

	var wg sync.WaitGroup
	for start := 0; start < len(pending); start += batchVerifyChunk {
		end := start + batchVerifyChunk
		if end > len(pending) {
			end = len(pending)
		}
		chunk := pending[start:end]
		n.verifySem <- struct{}{} // global CPU bound across batches
		n.pipeline.VerifyBusy.Inc()
		n.pipeline.VerifyPeak.StoreMax(n.pipeline.VerifyBusy.Value())
		wg.Add(1)
		go func(chunk []int) {
			defer wg.Done()
			defer func() {
				n.pipeline.VerifyBusy.Dec()
				<-n.verifySem
			}()
			pubs := make([]identity.PublicKey, len(chunk))
			msgs := make([][]byte, len(chunk))
			sigs := make([][]byte, len(chunk))
			for j, i := range chunk {
				pubs[j] = txs[i].Issuer
				msgs[j] = txs[i].SigningBytes()
				sigs[j] = txs[i].Signature
			}
			start := time.Now()
			errs := identity.VerifyBatch(pubs, msgs, sigs)
			n.pipeline.VerifyLatency.Observe(time.Since(start))
			n.pipeline.BatchVerifies.Inc()
			n.pipeline.BatchVerified.Add(int64(len(chunk)))
			if errs != nil {
				n.pipeline.BatchFallbacks.Inc()
			}
			for j, i := range chunk {
				if errs != nil && errs[j] != nil {
					n.counters.Rejected.Inc()
					continue
				}
				ok[i] = true
				n.verified.Add(txs[i].ID())
			}
		}(chunk)
	}
	wg.Wait()

	out := txs[:0]
	for i, t := range txs {
		if ok[i] {
			out = append(out, t)
		}
	}
	return out
}

// precheckInbound runs every relay-admission check except the
// signature: structure, the evidence-at-admission authorization gate,
// and the relay PoW floor — the Ed25519 verification is factored out
// for batch settlement.
//
// The authorization gate here is advisory DoS protection, not the
// decision: only a DEFINITIVE Unauthorized verdict (the sender is a
// member of no retained list version reachable from the transaction's
// evidence — a Sybil) rejects early, sparing the signature work.
// Authorized and Unresolved both continue; the authoritative verdict
// is re-taken at the attach stage, where an Unresolved transaction
// parks in quarantine instead of being dropped.
func (n *FullNode) precheckInbound(t *txn.Transaction) error {
	if err := t.VerifyStructure(); err != nil {
		n.counters.Rejected.Inc()
		return err
	}
	if t.Kind == txn.KindAuthorization {
		if t.Sender() != n.registry.Manager() {
			n.counters.Unauthorized.Inc()
			return authz.ErrNotManager
		}
	} else if verdict, _, ok := n.relayAuthVerdict(t); ok && verdict == authz.VerdictUnauthorized {
		n.counters.StaleAuthRejects.Inc()
		return ErrUnauthorizedDevice
	}
	return n.verifyRelayDifficulty(t)
}

// verifyInboundEach is the per-transaction baseline: every transaction
// pays its own full verifyCached on the pool, one goroutine each.
func (n *FullNode) verifyInboundEach(txs []*txn.Transaction, now time.Time) []*txn.Transaction {
	ok := make([]bool, len(txs))
	var wg sync.WaitGroup
	for i := range txs {
		n.verifySem <- struct{}{} // global CPU bound across batches
		n.pipeline.VerifyBusy.Inc()
		n.pipeline.VerifyPeak.StoreMax(n.pipeline.VerifyBusy.Value())
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				n.pipeline.VerifyBusy.Dec()
				<-n.verifySem
			}()
			ok[i] = n.verifyCached(txs[i], now) == nil
		}(i)
	}
	wg.Wait()
	out := txs[:0]
	for i, t := range txs {
		if ok[i] {
			out = append(out, t)
		}
	}
	return out
}
