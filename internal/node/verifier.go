package node

import (
	"container/list"
	"runtime"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// verifiedCacheSize bounds the LRU of recently verified transaction
// IDs. Gossip is redundant by design — the same transaction arrives
// from several peers and again in sync pages — and signature + PoW
// verification is the admitted hot cost of the inbound path, so a hit
// here skips the entire ECDSA check for an echo.
const verifiedCacheSize = 8192

// verifiedCache is a small mutex-guarded LRU set of transaction IDs
// whose structural, signature, authorization and PoW checks already
// passed on this node.
type verifiedCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently touched; values are hashutil.Hash
	index map[hashutil.Hash]*list.Element
}

func newVerifiedCache(capacity int) *verifiedCache {
	return &verifiedCache{
		cap:   capacity,
		order: list.New(),
		index: make(map[hashutil.Hash]*list.Element, capacity),
	}
}

// Contains reports (and refreshes) membership.
func (c *verifiedCache) Contains(id hashutil.Hash) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[id]
	if ok {
		c.order.MoveToFront(el)
	}
	return ok
}

// Add inserts id, evicting the least recently touched entry at capacity.
func (c *verifiedCache) Add(id hashutil.Hash) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[id]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.index[id] = c.order.PushFront(id)
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.index, last.Value.(hashutil.Hash))
	}
}

// newVerifySem sizes the inbound verification pool: verification is
// CPU-bound (ECDSA + hashing), so the bound is the core count, shared
// across every concurrently arriving gossip batch.
func newVerifySem() chan struct{} {
	return make(chan struct{}, runtime.GOMAXPROCS(0))
}

// verifyCached runs the full inbound verification for one transaction,
// short-circuiting through the verified-ID LRU on gossip echoes.
func (n *FullNode) verifyCached(t *txn.Transaction, now time.Time) error {
	id := t.ID()
	if n.verified.Contains(id) {
		n.pipeline.VerifyCacheHits.Inc()
		return nil
	}
	start := time.Now()
	err := n.verifyIdentity(t)
	if err == nil {
		// Relayed work is checked against the floor, not this node's
		// credit view — see verifyRelayDifficulty.
		err = n.verifyRelayDifficulty(t)
	}
	n.pipeline.VerifyLatency.Observe(time.Since(start))
	if err == nil {
		n.verified.Add(id)
	}
	return err
}

// verifyInboundBatch verifies a run of transactions concurrently on the
// node's verification pool and returns the survivors in input order.
// The serialized attach that follows stays out of this stage, so the
// expensive checks of independent transactions overlap across cores —
// and across concurrently arriving batches from different peers.
func (n *FullNode) verifyInboundBatch(txs []*txn.Transaction, now time.Time) []*txn.Transaction {
	switch len(txs) {
	case 0:
		return nil
	case 1:
		if n.verifyCached(txs[0], now) != nil {
			return nil
		}
		return txs
	}
	ok := make([]bool, len(txs))
	var wg sync.WaitGroup
	for i := range txs {
		n.verifySem <- struct{}{} // global CPU bound across batches
		n.pipeline.VerifyBusy.Inc()
		n.pipeline.VerifyPeak.StoreMax(n.pipeline.VerifyBusy.Value())
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				n.pipeline.VerifyBusy.Dec()
				<-n.verifySem
			}()
			ok[i] = n.verifyCached(txs[i], now) == nil
		}(i)
	}
	wg.Wait()
	out := txs[:0]
	for i, t := range txs {
		if ok[i] {
			out = append(out, t)
		}
	}
	return out
}
