package pow

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// cancelCheckInterval is how many attempts a search goroutine runs
// between context checks; small enough that cancellation is prompt,
// large enough that ctx.Err() stays off the hot path.
const cancelCheckInterval = 1024

// SearchParallel fans the nonce space across Parallelism goroutines (0
// selects GOMAXPROCS) in disjoint strides: worker i scans nonces i,
// i+W, i+2W, … for stride width W. The first hit does not win outright —
// every sibling keeps scanning until its next candidate nonce exceeds
// the best hit found so far, so the returned nonce is always the
// globally minimal valid nonce, identical to what the serial Search
// returns. That makes the result deterministic regardless of goroutine
// scheduling.
//
// CostFactor semantics are preserved (each worker burns the same extra
// rounds per attempt) and MaxAttempts bounds the total attempts summed
// across all workers: when the shared budget runs out before a hit, the
// search fails with ErrExhausted just like the serial path.
func (w *Worker) SearchParallel(ctx context.Context, trunk, branch hashutil.Hash, difficulty int) (Result, error) {
	if difficulty < MinDifficulty || difficulty > MaxDifficulty {
		return Result{}, fmt.Errorf("%w: %d not in [%d, %d]",
			ErrBadDifficulty, difficulty, MinDifficulty, MaxDifficulty)
	}
	workers := w.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return w.Search(ctx, trunk, branch, difficulty)
	}
	start := time.Now()

	// Precompute the fixed prefix hash(TX1) || hash(TX2) once; each
	// worker copies it so nonce writes never share memory.
	inner1 := hashutil.Sum(trunk[:])
	inner2 := hashutil.Sum(branch[:])
	var prefix [hashutil.Size*2 + 8]byte
	copy(prefix[:hashutil.Size], inner1[:])
	copy(prefix[hashutil.Size:], inner2[:])

	var (
		best     atomic.Uint64 // lowest valid nonce found so far
		attempts atomic.Uint64 // shared MaxAttempts budget
		wg       sync.WaitGroup
	)
	best.Store(math.MaxUint64)
	results := make([]Result, workers)
	found := make([]bool, workers)

	extra := w.CostFactor - 1
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			msg := prefix
			var local uint64
			for nonce := uint64(lane); ; nonce += uint64(workers) {
				// A candidate above the best hit cannot improve the
				// result: this lane is done.
				if nonce >= best.Load() {
					return
				}
				if local%cancelCheckInterval == 0 && ctx.Err() != nil {
					return
				}
				if w.MaxAttempts != 0 && attempts.Add(1) > w.MaxAttempts {
					return
				}
				local++
				binary.BigEndian.PutUint64(msg[hashutil.Size*2:], nonce)
				digest := hashutil.Sum(msg[:])
				// Device emulation: burn extra rounds per attempt,
				// exactly as the serial path does.
				burn := digest
				for r := 0; r < extra; r++ {
					burn = hashutil.Sum(burn[:])
				}
				_ = burn
				if digest.MeetsDifficulty(difficulty) {
					results[lane] = Result{Nonce: nonce, Digest: digest}
					found[lane] = true
					// Lower best monotonically; a concurrent smaller
					// hit must not be overwritten.
					for {
						cur := best.Load()
						if nonce >= cur || best.CompareAndSwap(cur, nonce) {
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil && best.Load() == math.MaxUint64 {
		return Result{}, err
	}
	winner := -1
	for i, ok := range found {
		if ok && (winner < 0 || results[i].Nonce < results[winner].Nonce) {
			winner = i
		}
	}
	if winner < 0 {
		return Result{}, fmt.Errorf("%w after %d attempts", ErrExhausted, attempts.Load())
	}
	res := results[winner]
	res.Attempts = attempts.Load()
	if w.MaxAttempts != 0 && res.Attempts > w.MaxAttempts {
		res.Attempts = w.MaxAttempts
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// AttachParallel runs SearchParallel for t's parents and stores the
// winning nonce on t — the multi-core analogue of Attach.
func (w *Worker) AttachParallel(ctx context.Context, t *txn.Transaction, difficulty int) (Result, error) {
	res, err := w.SearchParallel(ctx, t.Trunk, t.Branch, difficulty)
	if err != nil {
		return Result{}, err
	}
	t.Nonce = res.Nonce
	return res, nil
}
