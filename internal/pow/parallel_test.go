package pow

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// TestSearchParallelEquivalence: the parallel search must return exactly
// the nonce the serial search finds — the globally minimal valid one —
// for any worker count, so verification and credit accounting cannot
// tell the two paths apart.
func TestSearchParallelEquivalence(t *testing.T) {
	cases := []struct {
		name        string
		difficulty  int
		parallelism int
	}{
		{"d8/2lanes", 8, 2},
		{"d8/4lanes", 8, 4},
		{"d10/4lanes", 10, 4},
		{"d10/8lanes", 10, 8},
		{"d12/3lanes", 12, 3},
		{"d8/gomaxprocs", 8, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				trunk := hashutil.Sum(fmt.Appendf(nil, "trunk-%s-%d", tc.name, i))
				branch := hashutil.Sum(fmt.Appendf(nil, "branch-%s-%d", tc.name, i))

				serial := &Worker{}
				want, err := serial.Search(context.Background(), trunk, branch, tc.difficulty)
				if err != nil {
					t.Fatalf("serial search: %v", err)
				}
				par := &Worker{Parallelism: tc.parallelism}
				got, err := par.SearchParallel(context.Background(), trunk, branch, tc.difficulty)
				if err != nil {
					t.Fatalf("parallel search: %v", err)
				}
				if got.Nonce != want.Nonce {
					t.Errorf("nonce = %d, serial found %d", got.Nonce, want.Nonce)
				}
				if got.Digest != want.Digest {
					t.Errorf("digest mismatch: %s vs %s", got.Digest.Short(), want.Digest.Short())
				}
				if err := Verify(trunk, branch, got.Nonce, tc.difficulty); err != nil {
					t.Errorf("winning nonce fails verification: %v", err)
				}
			}
		})
	}
}

// TestSearchParallelDeterministic: repeated runs under different lane
// counts must agree with each other — scheduling cannot change the
// winner.
func TestSearchParallelDeterministic(t *testing.T) {
	trunk := hashutil.Sum([]byte("det-trunk"))
	branch := hashutil.Sum([]byte("det-branch"))
	var first Result
	for run := 0; run < 5; run++ {
		w := &Worker{Parallelism: 1 + run}
		res, err := w.SearchParallel(context.Background(), trunk, branch, 10)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = res
			continue
		}
		if res.Nonce != first.Nonce {
			t.Fatalf("run %d found nonce %d, first run found %d", run, res.Nonce, first.Nonce)
		}
	}
}

// TestSearchParallelExhausted: MaxAttempts is a shared budget; when it
// splits across workers without a hit the search reports ErrExhausted,
// same as serial.
func TestSearchParallelExhausted(t *testing.T) {
	cases := []struct {
		name        string
		maxAttempts uint64
		parallelism int
	}{
		{"budget64/2lanes", 64, 2},
		{"budget1000/4lanes", 1000, 4},
		{"budget4096/8lanes", 4096, 8},
		{"budget7/8lanes", 7, 8}, // fewer attempts than lanes
	}
	trunk := hashutil.Sum([]byte("exhaust-trunk"))
	branch := hashutil.Sum([]byte("exhaust-branch"))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := &Worker{MaxAttempts: tc.maxAttempts, Parallelism: tc.parallelism}
			_, err := w.SearchParallel(context.Background(), trunk, branch, MaxDifficulty)
			if !errors.Is(err, ErrExhausted) {
				t.Fatalf("err = %v, want ErrExhausted", err)
			}
		})
	}
}

// TestSearchParallelCancel: cancellation returns promptly even on an
// effectively unsolvable difficulty.
func TestSearchParallelCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{Parallelism: 4}
	done := make(chan error, 1)
	go func() {
		_, err := w.SearchParallel(ctx, hashutil.Sum([]byte("c1")), hashutil.Sum([]byte("c2")), MaxDifficulty)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parallel search did not return after cancellation")
	}
}

// TestSearchParallelCostFactorMonotonic: raising CostFactor burns more
// hash rounds per attempt, so wall time over a fixed attempt budget must
// grow. The 512× factor gap keeps the comparison robust on noisy hosts.
func TestSearchParallelCostFactorMonotonic(t *testing.T) {
	trunk := hashutil.Sum([]byte("cf-trunk"))
	branch := hashutil.Sum([]byte("cf-branch"))
	elapsed := func(cost int) time.Duration {
		w := &Worker{CostFactor: cost, MaxAttempts: 2048, Parallelism: 2}
		start := time.Now()
		_, err := w.SearchParallel(context.Background(), trunk, branch, MaxDifficulty)
		if !errors.Is(err, ErrExhausted) {
			t.Fatalf("cost %d: err = %v, want ErrExhausted", cost, err)
		}
		return time.Since(start)
	}
	// Best-of-three per factor to shrug off scheduler noise.
	best := func(cost int) time.Duration {
		b := elapsed(cost)
		for i := 0; i < 2; i++ {
			if d := elapsed(cost); d < b {
				b = d
			}
		}
		return b
	}
	cheap, dear := best(1), best(512)
	if dear <= cheap {
		t.Errorf("cost factor 512 ran in %v, not slower than factor 1's %v", dear, cheap)
	}
}

// TestSearchParallelBadDifficulty mirrors the serial input validation.
func TestSearchParallelBadDifficulty(t *testing.T) {
	w := &Worker{Parallelism: 2}
	for _, d := range []int{0, -1, MaxDifficulty + 1} {
		if _, err := w.SearchParallel(context.Background(), hashutil.Hash{}, hashutil.Hash{}, d); !errors.Is(err, ErrBadDifficulty) {
			t.Errorf("difficulty %d: err = %v, want ErrBadDifficulty", d, err)
		}
	}
}

// TestAttachParallel stores the winning nonce on the transaction.
func TestAttachParallel(t *testing.T) {
	tr := &txn.Transaction{Trunk: hashutil.Sum([]byte("pa")), Branch: hashutil.Sum([]byte("pb"))}
	w := &Worker{Parallelism: 4}
	res, err := w.AttachParallel(context.Background(), tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nonce != res.Nonce {
		t.Errorf("tx nonce %d != result nonce %d", tr.Nonce, res.Nonce)
	}
	if err := Verify(tr.Trunk, tr.Branch, tr.Nonce, 8); err != nil {
		t.Errorf("attached nonce fails verification: %v", err)
	}
}
