// Package pow implements the proof-of-work algorithm of the paper's
// Eqn 6: search for a nonce such that
//
//	output = hash{hash(TX1) || hash(TX2) || nonce}
//
// has at least `difficulty` leading zero bits. "We can control the
// difficulty of PoW through adjusting the demand of minimum length of
// prefix zero of the target hash string" (§IV-B).
//
// Difficulty is measured in bits, so expected work doubles per unit —
// the exponential running-time curve of the paper's Fig 7.
//
// A CostFactor knob performs additional hash rounds per nonce attempt to
// emulate slow hardware (the paper's Raspberry Pi 3B) on fast machines;
// it scales absolute times without changing the curve's shape.
package pow

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// Difficulty bounds. MinDifficulty mirrors the paper ("the minimum
// difficulty of PoW is 1"); MaxDifficulty caps the credit mechanism's
// punishment so verification stays well-defined ("the maximum should not
// exceed the length of hash").
const (
	MinDifficulty = 1
	MaxDifficulty = 48
)

// Worker searches PoW nonces. The zero value is a valid worker with
// CostFactor 1 (no device emulation).
type Worker struct {
	// CostFactor emulates slower hardware: each nonce attempt performs
	// CostFactor-1 extra SHA-256 rounds. 0 and 1 both mean "no
	// emulation".
	CostFactor int

	// MaxAttempts bounds the search; 0 means unbounded. When the bound
	// is hit, Search returns ErrExhausted. For SearchParallel the bound
	// is a shared budget across all lanes.
	MaxAttempts uint64

	// Parallelism is the number of goroutines SearchParallel fans the
	// nonce space across; 0 selects GOMAXPROCS, 1 degenerates to the
	// serial Search. Plain Search ignores it (IoT devices are modelled
	// single-core; gateways and benches opt in).
	Parallelism int
}

// Result describes a successful PoW search.
type Result struct {
	Nonce    uint64
	Digest   hashutil.Hash
	Attempts uint64
	Elapsed  time.Duration
}

// Search errors.
var (
	ErrBadDifficulty = errors.New("difficulty out of range")
	ErrExhausted     = errors.New("nonce search exhausted attempt budget")
)

// ClampDifficulty forces d into [MinDifficulty, MaxDifficulty].
func ClampDifficulty(d int) int {
	if d < MinDifficulty {
		return MinDifficulty
	}
	if d > MaxDifficulty {
		return MaxDifficulty
	}
	return d
}

// Search finds a nonce for the given parents meeting difficulty. It
// honours ctx cancellation (checked every 1024 attempts) so a light node
// can abandon work when resubmitting against fresh tips.
func (w *Worker) Search(ctx context.Context, trunk, branch hashutil.Hash, difficulty int) (Result, error) {
	if difficulty < MinDifficulty || difficulty > MaxDifficulty {
		return Result{}, fmt.Errorf("%w: %d not in [%d, %d]",
			ErrBadDifficulty, difficulty, MinDifficulty, MaxDifficulty)
	}
	start := time.Now()

	// Precompute the fixed prefix hash(TX1) || hash(TX2) once.
	inner1 := hashutil.Sum(trunk[:])
	inner2 := hashutil.Sum(branch[:])
	var msg [hashutil.Size*2 + 8]byte
	copy(msg[:hashutil.Size], inner1[:])
	copy(msg[hashutil.Size:], inner2[:])

	extra := w.CostFactor - 1
	var attempts uint64
	for nonce := uint64(0); ; nonce++ {
		if nonce%1024 == 0 && ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		if w.MaxAttempts != 0 && attempts >= w.MaxAttempts {
			return Result{}, fmt.Errorf("%w after %d attempts", ErrExhausted, attempts)
		}
		attempts++
		binary.BigEndian.PutUint64(msg[hashutil.Size*2:], nonce)
		digest := hashutil.Sum(msg[:])
		// Device emulation: burn extra rounds per attempt. The burn
		// must not influence which nonces are valid — the protocol
		// judges the canonical Eqn-6 digest only.
		burn := digest
		for i := 0; i < extra; i++ {
			burn = hashutil.Sum(burn[:])
		}
		_ = burn
		if digest.MeetsDifficulty(difficulty) {
			return Result{
				Nonce:    nonce,
				Digest:   digest,
				Attempts: attempts,
				Elapsed:  time.Since(start),
			}, nil
		}
	}
}

// Attach signs nothing and mutates nothing except the nonce: it runs
// Search for t's parents and stores the winning nonce on t.
func (w *Worker) Attach(ctx context.Context, t *txn.Transaction, difficulty int) (Result, error) {
	res, err := w.Search(ctx, t.Trunk, t.Branch, difficulty)
	if err != nil {
		return Result{}, err
	}
	t.Nonce = res.Nonce
	return res, nil
}

// Verify checks that nonce satisfies difficulty for the given parents.
// Verification is a single hash regardless of difficulty — the
// asymmetry that makes PoW usable as an admission filter.
func Verify(trunk, branch hashutil.Hash, nonce uint64, difficulty int) error {
	if difficulty < MinDifficulty || difficulty > MaxDifficulty {
		return fmt.Errorf("%w: %d", ErrBadDifficulty, difficulty)
	}
	digest := txn.PowDigest(trunk, branch, nonce)
	if !digest.MeetsDifficulty(difficulty) {
		return fmt.Errorf("%w: digest has %d leading zero bits, need %d",
			txn.ErrInsufficientWork, digest.LeadingZeroBits(), difficulty)
	}
	return nil
}

// ExpectedAttempts returns the mean number of nonce attempts required at
// the given difficulty: 2^difficulty.
func ExpectedAttempts(difficulty int) float64 {
	return float64(uint64(1) << uint(ClampDifficulty(difficulty)))
}
