package pow

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

func parents(tag string) (hashutil.Hash, hashutil.Hash) {
	return hashutil.Sum([]byte("trunk-" + tag)), hashutil.Sum([]byte("branch-" + tag))
}

func TestSearchFindsValidNonce(t *testing.T) {
	w := &Worker{}
	trunk, branch := parents("basic")
	for _, d := range []int{1, 4, 8, 12} {
		t.Run(fmt.Sprintf("D=%d", d), func(t *testing.T) {
			res, err := w.Search(context.Background(), trunk, branch, d)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(trunk, branch, res.Nonce, d); err != nil {
				t.Errorf("found nonce does not verify: %v", err)
			}
			if res.Attempts == 0 {
				t.Error("zero attempts reported")
			}
			if res.Digest != txn.PowDigest(trunk, branch, res.Nonce) {
				t.Error("result digest is not the canonical Eqn-6 output")
			}
		})
	}
}

func TestSearchDifficultyBounds(t *testing.T) {
	w := &Worker{}
	trunk, branch := parents("bounds")
	for _, d := range []int{0, -1, MaxDifficulty + 1} {
		if _, err := w.Search(context.Background(), trunk, branch, d); !errors.Is(err, ErrBadDifficulty) {
			t.Errorf("difficulty %d: err = %v, want ErrBadDifficulty", d, err)
		}
	}
}

func TestSearchContextCancel(t *testing.T) {
	w := &Worker{}
	trunk, branch := parents("cancel")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Search(ctx, trunk, branch, 40); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSearchExhaustsBudget(t *testing.T) {
	w := &Worker{MaxAttempts: 4}
	trunk, branch := parents("budget")
	if _, err := w.Search(context.Background(), trunk, branch, 40); !errors.Is(err, ErrExhausted) {
		t.Errorf("err = %v, want ErrExhausted", err)
	}
}

func TestCostFactorPreservesCanonicalDigest(t *testing.T) {
	// Device emulation burns cycles but must not change which nonces
	// are valid — the emulated worker's results must verify with the
	// plain rule.
	trunk, branch := parents("cost")
	slow := &Worker{CostFactor: 16}
	res, err := slow.Search(context.Background(), trunk, branch, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(trunk, branch, res.Nonce, 6); err != nil {
		t.Errorf("emulated worker's nonce invalid under plain verify: %v", err)
	}
}

func TestCostFactorSlowsSearch(t *testing.T) {
	trunk, branch := parents("slowdown")
	fast := &Worker{}
	slow := &Worker{CostFactor: 64}
	const d = 10
	var fastTotal, slowTotal time.Duration
	for i := 0; i < 3; i++ {
		fr, err := fast.Search(context.Background(), trunk, branch, d)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := slow.Search(context.Background(), trunk, branch, d)
		if err != nil {
			t.Fatal(err)
		}
		fastTotal += fr.Elapsed
		slowTotal += sr.Elapsed
	}
	if slowTotal < fastTotal*4 {
		t.Errorf("cost factor 64 only slowed search %v → %v", fastTotal, slowTotal)
	}
}

func TestAttachSetsNonce(t *testing.T) {
	w := &Worker{}
	tx := &txn.Transaction{Trunk: hashutil.Sum([]byte("a")), Branch: hashutil.Sum([]byte("b"))}
	res, err := w.Attach(context.Background(), tx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Nonce != res.Nonce {
		t.Error("Attach did not store the nonce")
	}
	if err := tx.VerifyPoW(8); err != nil {
		t.Errorf("attached tx pow invalid: %v", err)
	}
}

func TestVerifyRejectsWrongNonce(t *testing.T) {
	trunk, branch := parents("verify")
	w := &Worker{}
	res, err := w.Search(context.Background(), trunk, branch, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(trunk, branch, res.Nonce+1, 12); err == nil {
		// The next nonce could coincidentally also satisfy d=12; check
		// the digest to distinguish a real failure from luck.
		if !txn.PowDigest(trunk, branch, res.Nonce+1).MeetsDifficulty(12) {
			t.Error("wrong nonce verified")
		}
	}
	if err := Verify(trunk, branch, res.Nonce, 0); !errors.Is(err, ErrBadDifficulty) {
		t.Errorf("difficulty 0: err = %v", err)
	}
}

func TestVerifyBindsParents(t *testing.T) {
	trunk, branch := parents("bind")
	w := &Worker{}
	res, err := w.Search(context.Background(), trunk, branch, 12)
	if err != nil {
		t.Fatal(err)
	}
	other := hashutil.Sum([]byte("other"))
	if err := Verify(other, branch, res.Nonce, 12); err == nil {
		if !txn.PowDigest(other, branch, res.Nonce).MeetsDifficulty(12) {
			t.Error("nonce verified for the wrong trunk")
		}
	}
}

func TestExpectedAttemptsDoubles(t *testing.T) {
	for d := MinDifficulty; d < 30; d++ {
		if ExpectedAttempts(d+1) != 2*ExpectedAttempts(d) {
			t.Fatalf("expected attempts not doubling at %d", d)
		}
	}
}

// TestAttemptsScaleWithDifficulty is the statistical heart of Fig 7:
// mean attempts ≈ 2^d. With a handful of trials we only assert a loose
// monotonic sandwich to keep the test deterministic enough.
func TestAttemptsScaleWithDifficulty(t *testing.T) {
	w := &Worker{}
	mean := func(d int) float64 {
		const trials = 12
		var total uint64
		for i := 0; i < trials; i++ {
			trunk, branch := parents(fmt.Sprintf("scale-%d-%d", d, i))
			res, err := w.Search(context.Background(), trunk, branch, d)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Attempts
		}
		return float64(total) / trials
	}
	m6, m10 := mean(6), mean(10)
	// Expected ratio 16; accept anything comfortably above 3 to avoid
	// flaky failures from the geometric distribution's variance.
	if m10 < 3*m6 {
		t.Errorf("attempts did not scale: mean(6)=%.0f mean(10)=%.0f", m6, m10)
	}
}

func TestClampDifficulty(t *testing.T) {
	if ClampDifficulty(-5) != MinDifficulty {
		t.Error("low clamp failed")
	}
	if ClampDifficulty(1000) != MaxDifficulty {
		t.Error("high clamp failed")
	}
	if ClampDifficulty(10) != 10 {
		t.Error("in-range value clamped")
	}
}
